// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§V), plus microbenchmarks of the substrates. Each figure
// benchmark regenerates the corresponding rows/series at the quick scale
// and prints them once; timings report the cost of one full regeneration.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Individual figures:
//
//	go test -bench=BenchmarkFigure5 -benchmem
package repro_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/encode"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/rollout"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// campaign is shared across figure benchmarks so trained agents are reused,
// exactly as the paper reuses one trained model per workload across figures.
var (
	campaignOnce sync.Once
	campaign     *experiments.Campaign
)

func sharedCampaign() *experiments.Campaign {
	campaignOnce.Do(func() {
		c, err := experiments.NewCampaign(experiments.QuickScale())
		if err != nil {
			panic(err)
		}
		campaign = c
	})
	return campaign
}

var printOnce sync.Map

// printFigure emits a figure's rows exactly once per `go test` process.
func printFigure(key string, emit func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		emit()
	}
}

// ---------------------------------------------------------------------------
// Figure 1 — motivating example.

func BenchmarkFigure1Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if r.FixedWeightMakespanH != 3 || r.OptimalMakespanH != 2 {
			b.Fatalf("motivation broken: fixed=%v optimal=%v", r.FixedWeightMakespanH, r.OptimalMakespanH)
		}
		printFigure("fig1", func() { experiments.FprintFigure1(os.Stdout, r) })
	}
}

// ---------------------------------------------------------------------------
// Table III — workload generation ladder.

func BenchmarkTableIIIWorkloads(b *testing.B) {
	sc := experiments.QuickScale()
	sys := sc.System()
	for i := 0; i < b.N; i++ {
		base := workload.GenerateBase(workload.GeneratorConfig{
			System: sys, Duration: sc.TraceDuration, MeanInterarrival: sc.MeanInterarrival, Seed: sc.Seed,
		})
		pool := workload.AssignDarshanBB(base, sys.Capacities[1], sc.Seed+1)
		demands := make(map[string]float64, 5)
		for _, scenario := range workload.Scenarios() {
			jobs := workload.Apply(base, pool, scenario, sys, sc.Seed+2)
			tot := 0.0
			for _, j := range jobs {
				tot += float64(j.Demand[1]) * j.Walltime
			}
			demands[scenario.Name] = tot
		}
		if demands["S2"] <= demands["S1"] || demands["S4"] <= demands["S3"] {
			b.Fatal("Table III contention ladder violated")
		}
		printFigure("table3", func() {
			fmt.Println("Table III — BB demand ladder (unit-seconds of burst-buffer request):")
			for _, name := range experiments.WorkloadNames() {
				fmt.Printf("  %-3s %.3g\n", name, demands[name])
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 3 — MLP vs CNN state module.

func BenchmarkFigure3MLPvsCNN(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(c)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig3", func() { experiments.FprintFigure3(os.Stdout, rows) })
	}
}

// ---------------------------------------------------------------------------
// Figure 4 — curriculum orderings.

func BenchmarkFigure4TrainingOrder(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure4(c, "S4")
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig4", func() { experiments.FprintFigure4(os.Stdout, series) })
	}
}

// ---------------------------------------------------------------------------
// Figures 5-7 — the four-method comparison.

var (
	rows56Once sync.Once
	rows56     []experiments.MethodReports
	rows56Err  error
)

func sharedRows56(b *testing.B) []experiments.MethodReports {
	rows56Once.Do(func() {
		rows56, rows56Err = experiments.Figures56(sharedCampaign())
	})
	if rows56Err != nil {
		b.Fatal(rows56Err)
	}
	return rows56
}

func BenchmarkFigure5SystemMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sharedRows56(b)
		printFigure("fig5", func() { experiments.FprintFigure5(os.Stdout, rows) })
	}
}

func BenchmarkFigure6UserMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sharedRows56(b)
		printFigure("fig6", func() { experiments.FprintFigure6(os.Stdout, rows) })
	}
}

func BenchmarkFigure7Kiviat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sharedRows56(b)
		kv := experiments.Figure7(rows)
		if len(kv) != 5 {
			b.Fatal("kiviat incomplete")
		}
		printFigure("fig7", func() { experiments.FprintFigure7(os.Stdout, rows) })
	}
}

// ---------------------------------------------------------------------------
// Figures 8 and 9 — dynamic resource prioritizing.

func BenchmarkFigure8RbbTimeline(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		samples, err := experiments.Figure8(c)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig8", func() { experiments.FprintFigure8(os.Stdout, samples) })
	}
}

func BenchmarkFigure9RbbBoxplot(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(c)
		if err != nil {
			b.Fatal(err)
		}
		if rows[4].Stats.Mean <= rows[0].Stats.Mean {
			b.Fatal("S5 r_BB should dominate S1 (paper Figure 9)")
		}
		printFigure("fig9", func() { experiments.FprintFigure9(os.Stdout, rows) })
	}
}

// ---------------------------------------------------------------------------
// Figure 10 — three schedulable resources.

func BenchmarkFigure10ThreeResource(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(c)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("fig10", func() { experiments.FprintFigure10(os.Stdout, rows) })
	}
}

// ---------------------------------------------------------------------------
// §V-F — decision latency at the paper's full Theta scale (the 11410-input
// network of §IV-C). The paper reports < 2 s for two resources and < 3 s for
// three on a 2 GHz quad-core PC.

func BenchmarkOverheadDecision2R(b *testing.B) {
	agent, ctx := experiments.OverheadContext(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Pick(ctx)
	}
}

func BenchmarkOverheadDecision3R(b *testing.B) {
	agent, ctx := experiments.OverheadContext(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Pick(ctx)
	}
}

// ---------------------------------------------------------------------------
// Ablations of the design choices DESIGN.md calls out.

func BenchmarkAblationGoalVector(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGoal(c)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("abl-goal", func() {
			experiments.FprintAblation(os.Stdout, "dynamic vs fixed goal vector (S5)", rows)
		})
	}
}

func BenchmarkAblationStateNets(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStateNets(c.M)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("abl-nets", func() {
			experiments.FprintAblation(os.Stdout, "single vs per-resource state nets (S4)", rows)
		})
	}
}

func BenchmarkAblationWindowSize(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWindow(c.M, []int{1, 5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("abl-window", func() {
			experiments.FprintAblation(os.Stdout, "window size sweep, GA picker (S4)", rows)
		})
	}
}

func BenchmarkAblationBackfill(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBackfill(c.M)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("abl-backfill", func() {
			experiments.FprintAblation(os.Stdout, "EASY backfilling on/off (S4)", rows)
		})
	}
}

func BenchmarkAblationPickers(b *testing.B) {
	c := sharedCampaign()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPickers(c.M)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("abl-pickers", func() {
			experiments.FprintAblation(os.Stdout, "list-scheduling picker family (S4)", rows)
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks.

func benchSystem() cluster.Config {
	return workload.ThetaScaled(16)
}

func BenchmarkSimulatorFCFS(b *testing.B) {
	sys := benchSystem()
	base := workload.GenerateBase(workload.GeneratorConfig{
		System: sys, Duration: 86400, MeanInterarrival: 60, Seed: 3,
	})
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], 4)
	scn, _ := workload.ScenarioByName("S4")
	jobs := workload.Apply(base, pool, scn, sys, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(sys, sched.NewWindowPolicy(sched.FCFS{}, 10))
		if err := s.Load(job.CloneAll(jobs)); err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/run")
}

func BenchmarkStateEncoding(b *testing.B) {
	sys := benchSystem()
	cl := cluster.New(sys)
	for id := 1; id <= 20; id++ {
		_ = cl.Allocate(id, []int{8, 2}, 0, float64(1000*id))
	}
	var window []*job.Job
	for i := 0; i < 10; i++ {
		window = append(window, &job.Job{
			ID: 100 + i, Runtime: 3600, Walltime: 5400, Demand: []int{16, 4},
		})
	}
	cfg := encode.NewConfig(10, sys.Capacities)
	ctx := &sched.PickContext{Now: 500, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := cfg.Encode(ctx)
		if len(v) != cfg.StateDim() {
			b.Fatal("bad encoding")
		}
	}
}

func BenchmarkDFPForward(b *testing.B) {
	cfg := dfp.DefaultConfig(746, 2, 10)
	agent := dfp.New(cfg)
	state := make([]float64, 746)
	meas := []float64{0.5, 0.4}
	goal := agent.ExtendGoal([]float64{0.6, 0.4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Predict(state, meas, goal)
	}
}

func BenchmarkDFPTrainStep(b *testing.B) {
	cfg := dfp.DefaultConfig(256, 2, 10)
	cfg.BatchSize = 16
	agent := dfp.New(cfg)
	state := make([]float64, 256)
	goal := []float64{0.5, 0.5}
	for ep := 0; ep < 4; ep++ {
		for t := 0; t < 40; t++ {
			agent.Act(state, []float64{0.5, 0.5}, goal, 10, true)
		}
		agent.EndEpisode()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStep()
	}
}

// trainReadyAgent builds a DefaultConfig-scale agent with a populated replay
// buffer for the TrainStep benchmarks.
func trainReadyAgent(workers int) *dfp.Agent {
	cfg := dfp.DefaultConfig(256, 2, 10)
	cfg.Workers = workers
	agent := dfp.New(cfg)
	state := make([]float64, 256)
	goal := []float64{0.5, 0.5}
	for ep := 0; ep < 8; ep++ {
		for t := 0; t < 40; t++ {
			agent.Act(state, []float64{0.5, 0.5}, goal, 10, true)
		}
		agent.EndEpisode()
	}
	return agent
}

// BenchmarkTrainStep measures the batched sparse-dueling training engine at
// DefaultConfig scale (BatchSize 32), sharded across all cores.
func BenchmarkTrainStep(b *testing.B) {
	agent := trainReadyAgent(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStep()
	}
}

// BenchmarkTrainStepSingleWorker isolates the batched kernels from the
// parallel sharding (Workers=1).
func BenchmarkTrainStepSingleWorker(b *testing.B) {
	agent := trainReadyAgent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStep()
	}
}

// BenchmarkTrainStepReference is the pre-refactor per-sample scalar path
// with the dense dueling backward — the baseline the batched engine is
// required to beat by >=3x.
func BenchmarkTrainStepReference(b *testing.B) {
	agent := trainReadyAgent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStepReference()
	}
}

// BenchmarkTrainStepPaperScale runs one batched training step on the
// full-scale §IV-C network. Expensive (~seconds per op): run with
// -benchtime=1x.
func BenchmarkTrainStepPaperScale(b *testing.B) {
	cfg := dfp.PaperScaleConfig(11410, 2, 10)
	agent := dfp.New(cfg)
	state := make([]float64, cfg.StateDim)
	goal := []float64{0.5, 0.5}
	// EpsStart=1 makes training Acts random (no forward pass), so the
	// replay fill is cheap even at paper scale.
	for ep := 0; ep < 4; ep++ {
		for t := 0; t < 40; t++ {
			agent.Act(state, []float64{0.5, 0.5}, goal, 10, true)
		}
		agent.EndEpisode()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStep()
	}
}

// BenchmarkActInference measures one greedy decision at experiment scale
// (the QuickScale-campaign network size). Like BenchmarkDecisionLatency it
// must run at 0 allocs/op.
func BenchmarkActInference(b *testing.B) {
	cfg := dfp.DefaultConfig(256, 2, 10)
	agent := dfp.New(cfg)
	state := make([]float64, cfg.StateDim)
	meas := []float64{0.5, 0.4}
	goal := []float64{0.6, 0.4}
	agent.Act(state, meas, goal, 10, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Act(state, meas, goal, 10, false)
	}
}

// BenchmarkDecisionLatency is the §V-F headline number: one greedy Act call
// on the full-scale §IV-C network (4000/1000 state module, 512-wide
// streams, the 11410-feature Theta encoding). Acceptance target: 0 allocs/op
// in steady state — the forward pass runs entirely through agent-owned
// scratch buffers.
func BenchmarkDecisionLatency(b *testing.B) {
	cfg := dfp.PaperScaleConfig(11410, 2, 10)
	agent := dfp.New(cfg)
	state := make([]float64, cfg.StateDim)
	for i := range state {
		state[i] = float64(i%7) * 0.1
	}
	meas := []float64{0.5, 0.4}
	goal := []float64{0.6, 0.4}
	agent.Act(state, meas, goal, 10, false) // warm scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Act(state, meas, goal, 10, false)
	}
}

// ---------------------------------------------------------------------------
// internal/rollout — parallel episode collection. Sub-benchmarks fix the
// worker count; episodes/sec is the comparison axis. StepsPerEpisode=-1
// disables gradient steps so the measurement isolates rollout+ingest — the
// part of the training loop the harness parallelizes (gradient steps scale
// separately via dfp.Config.Workers). Greedy exploration (eps=0) makes
// every decision pay the full forward pass, the realistic steady state.

func episodeThroughputAgent(sys cluster.Config) *core.MRSch {
	return core.New(sys, core.Options{
		Window:  8,
		Seed:    11,
		Workers: 1,
		Mutate: func(c *dfp.Config) {
			c.StateHidden = []int{64, 32}
			c.StateOut = 32
			c.ModuleHidden = 16
			c.StreamHidden = 32
			c.Offsets = []int{1, 2, 4, 8}
			c.TemporalWeights = []float64{0, 0.5, 0.5, 1}
			c.EpsStart = 0
			c.EpsMin = 0
		},
	})
}

func episodeThroughputSets(sys cluster.Config) []core.JobSet {
	base := workload.GenerateBase(workload.GeneratorConfig{
		System: sys, Duration: 0.5 * 86400, MeanInterarrival: 120, Seed: 9,
	})
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], 10)
	scn, _ := workload.ScenarioByName("S4")
	var sets []core.JobSet
	for i, jobs := range workload.SampledSets(base, 8, 40, 12) {
		sets = append(sets, core.JobSet{
			Kind: core.Sampled,
			Jobs: workload.Apply(jobs, pool, scn, sys, 13+int64(i)),
		})
	}
	return sets
}

func BenchmarkEpisodeThroughput(b *testing.B) {
	sys := workload.ThetaScaled(32)
	sets := episodeThroughputSets(sys)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			agent := episodeThroughputAgent(sys)
			learner := rollout.NewMRSchLearner(agent, core.TrainConfig{
				System:          sys,
				StepsPerEpisode: -1, // pure collection
			})
			cfg := rollout.Config{Workers: workers, Seed: 7}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rollout.Train(learner, cfg, sets); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(sets))*float64(b.N)/b.Elapsed().Seconds(), "episodes/sec")
		})
	}
}

// BenchmarkPipelinedThroughput compares barrier and pipelined rollout-
// training end to end: the same curriculum with real gradient steps
// (StepsPerEpisode=8) so there is training work for the pipeline to hide
// behind collection. episodes/sec is the comparison axis; the speedup target
// is a multicore property (on a single-CPU host both modes collapse to the
// serial rate and the pipelined row is the overhead regression guard — see
// BENCH_rollout.json).
func BenchmarkPipelinedThroughput(b *testing.B) {
	sys := workload.ThetaScaled(32)
	sets := episodeThroughputSets(sys)
	for _, mode := range []struct {
		name      string
		pipelined bool
	}{{"barrier", false}, {"pipelined", true}} {
		b.Run(mode.name, func(b *testing.B) {
			agent := episodeThroughputAgent(sys)
			learner := rollout.NewMRSchLearner(agent, core.TrainConfig{
				System:          sys,
				StepsPerEpisode: 8,
			})
			cfg := rollout.Config{Workers: 4, Seed: 7, Pipelined: mode.pipelined}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rollout.Train(learner, cfg, sets); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(sets))*float64(b.N)/b.Elapsed().Seconds(), "episodes/sec")
		})
	}
}

func BenchmarkGAPick(b *testing.B) {
	sys := benchSystem()
	cl := cluster.New(sys)
	var window []*job.Job
	for i := 0; i < 10; i++ {
		window = append(window, &job.Job{
			ID: i + 1, Runtime: 3600, Walltime: 5400,
			Demand: []int{16 * (i%4 + 1), 3 * (i % 5)},
		})
	}
	ctx := &sched.PickContext{Now: 0, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
	picker := experiments.NewGA(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		picker.Pick(ctx)
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	sys := benchSystem()
	for i := 0; i < b.N; i++ {
		jobs := workload.GenerateBase(workload.GeneratorConfig{
			System: sys, Duration: 86400, MeanInterarrival: 60, Seed: int64(i),
		})
		if len(jobs) == 0 {
			b.Fatal("no jobs")
		}
	}
}
