// Command mrsch-exp regenerates the paper's evaluation figures (§V) as text
// tables — the MLP-vs-CNN ablation (Figure 3), curriculum orderings
// (Figure 4), the four-method comparison (Figures 5-7), dynamic resource
// prioritizing (Figures 8-9), the three-resource case study (Figure 10),
// and the Figure 1 motivating example — and runs declarative scenario
// campaigns (internal/scenario).
//
// Usage:
//
//	mrsch-exp [-scale quick|standard|tiny] [-fig all|1|3|4|5|6|7|8|9|10|sweep] [-parallel 4] [-pipeline]
//	mrsch-exp -campaign spec.json [-parallel 4] [-pipeline] [-checkpoint dir [-resume]] [-report file]
//	mrsch-exp -campaign paper|theta-variants|theta-skew [-scale quick]
//	mrsch-exp -campaign spec.json -dry-run
//	mrsch-exp -campaign spec.json -workers 4 [-fault-plan faults.json]
//	mrsch-exp -campaign spec.json -workers 4 -listen :7077
//	mrsch-exp -worker [-connect host:7077]
//	mrsch-exp -prune -checkpoint dir [-dry-run]
//	mrsch-exp -dump-campaign paper|theta-variants|theta-skew [-scale quick]
//	mrsch-exp -list
//
// -campaign runs a campaign spec: a JSON file (see -dump-campaign for the
// format), or a builtin campaign name. Cells fan out across the -parallel
// worker pool; per-cell seeding derives from the cell's grid index, so
// results are identical for every worker count.
//
// -dump-campaign writes a builtin campaign as JSON to stdout at the
// selected -scale — the starting point for custom specs, and the golden
// file CI pins (specs/paper-campaign.json).
//
// -list prints the builtin scenarios (Table III S1-S10 and the
// ingested-trace transfer family T1-T5), methods, variant axes (div,
// interarrival, walltime-noise, zipf user skew, and Markov-modulated
// bursty arrivals), and campaigns, generated from the spec registry.
//
// -parallel N runs training rollouts and campaign evaluation episodes on N
// simulator environments concurrently (0 = all CPU cores). The "sweep"
// figure fans the full S1-S10 x method scenario grid across the same worker
// pool. Results are reproducible for any fixed N (see internal/rollout).
//
// -pipeline overlaps every training campaign's episode collection with its
// gradient steps against a versioned weight snapshot (rollout.Config
// .Pipelined) and shards the replay buffer per rollout worker. Campaigns
// stay reproducible for a fixed (seed, -parallel) pair but differ from
// barrier-mode campaigns (one-round policy lag); figure tables trained
// either way keep their qualitative shape.
//
// -checkpoint DIR (campaign mode only) makes campaign runs durable twice
// over: trained family models are stored content-addressed in DIR (keyed
// by scenario family plus a hash of the spec and training settings), so
// re-running a finished campaign retrains zero models; and in-process
// family training writes round-granular checkpoints there, so -resume
// continues a preempted training run bitwise identically instead of
// restarting it.
//
// -workers N runs the campaign through the fault-tolerant distributed
// coordinator (internal/distrib) over N worker processes instead of
// in-process goroutines. By default the workers are re-invocations of this
// binary with -worker, speaking the frame protocol over stdio; with
// -listen ADDR the coordinator instead waits for N workers to dial in over
// TCP (start them with -worker -connect HOST:PORT; they must share the
// coordinator's filesystem so the model store resolves). Family models are
// trained exactly once by the coordinator before distribution; the collated
// table is byte-identical to the in-process run.
//
// -fault-plan FILE (with -workers) injects deterministic worker sabotage
// from a JSON map of worker id to fault plan (see distrib.FaultPlan) —
// the robustness smoke CI runs.
//
// -dry-run with -campaign validates and prints the expanded grid without
// evaluating it; with -prune it lists prunable entries without deleting.
//
// -report FILE additionally writes the campaign table (exactly as printed,
// without the surrounding timing lines) to FILE, so two runs can be
// compared byte-for-byte.
//
// -telemetry-addr ADDR exposes live campaign metrics (training and, with
// -workers, coordinator counters) plus /health and pprof over HTTP, and
// -journal FILE appends run events as JSONL. Both are observe-only
// (rollout rule 11, distrib rule 10): campaign tables are byte-identical
// with or without them.
//
// -prune garbage-collects the -checkpoint model store: entries whose
// content-addressed name no builtin campaign (at any builtin scale, either
// training mode, the trained-method axis included) can produce are
// deleted. Stores holding models from custom spec files or -seed overrides
// should -dry-run first: those keys are outside the builtin envelope.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick, standard, or tiny")
	figFlag := flag.String("fig", "all", "comma-separated figures to run: 1,3,4,5,6,7,8,9,10,sweep or all")
	seed := flag.Int64("seed", 0, "override campaign seed (0 keeps the scale default)")
	parallel := flag.Int("parallel", 1, "parallel rollout environments (0 = all CPU cores)")
	pipeline := flag.Bool("pipeline", false, "overlap collection with training against a versioned weight snapshot")
	campaignFlag := flag.String("campaign", "", "run a campaign: a spec JSON file or a builtin name (paper, theta-variants)")
	checkpoint := flag.String("checkpoint", "", "campaign mode: directory for the family-model store and training checkpoints")
	resume := flag.Bool("resume", false, "campaign mode: resume preempted family training from -checkpoint")
	dumpFlag := flag.String("dump-campaign", "", "write a builtin campaign spec (paper, theta-variants) as JSON to stdout and exit")
	listFlag := flag.Bool("list", false, "list builtin scenarios, methods, theta-variant axes, and campaigns, then exit")
	workerFlag := flag.Bool("worker", false, "run as a distributed campaign worker (protocol on stdio, or TCP with -connect)")
	connectFlag := flag.String("connect", "", "worker mode: dial the coordinator at host:port instead of using stdio")
	distWorkers := flag.Int("workers", 0, "campaign mode: distribute cells over N worker processes (0 = in-process)")
	listenFlag := flag.String("listen", "", "campaign mode: accept -workers N TCP workers at this address instead of spawning them")
	faultFlag := flag.String("fault-plan", "", "campaign mode with -workers: JSON file mapping worker id to an injected fault plan")
	dryRun := flag.Bool("dry-run", false, "with -campaign: validate and print the grid without running; with -prune: list without deleting")
	reportFlag := flag.String("report", "", "campaign mode: also write the campaign table to this file (byte-comparable across runs)")
	pruneFlag := flag.Bool("prune", false, "garbage-collect the -checkpoint model store against the builtin-campaign keep-set")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /health, and pprof over HTTP at this address (empty = off)")
	journalPath := flag.String("journal", "", "append run events as JSONL to this file (empty = off)")
	flag.Parse()

	// Kernel-set attribution goes to stderr only: worker mode speaks the
	// distrib frame protocol on stdout, which must stay clean.
	logger := telemetry.NewLogger(os.Stderr, "mrsch-exp")
	logger.Event("kernel", "set", nn.KernelName(), "features", nn.KernelFeatures())

	if *workerFlag {
		runWorker(*connectFlag)
		return
	}
	if *listFlag {
		printRegistry()
		return
	}

	// Telemetry is observe-only end to end (rollout rule 11, distrib rule
	// 10): campaign and figure results are identical with or without it.
	var tel telemetrySinks
	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		tsrv, err := telemetry.ListenAndServe(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: -telemetry-addr: %v\n", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		logger.Event("telemetry", "addr", tsrv.Addr())
		tel.reg = reg
	}
	if *journalPath != "" {
		j, err := telemetry.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: -journal: %v\n", err)
			os.Exit(1)
		}
		defer j.Close()
		tel.journal = j
	}

	// A negative -parallel used to fall back to all cores silently via the
	// rollout.ResolveWorkers n<=0 convention; reject it instead.
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "mrsch-exp: -parallel must be >= 0 (0 = all CPU cores), got %d\n", *parallel)
		os.Exit(2)
	}

	scaleSpec, err := scenario.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(2)
	}
	if *seed != 0 {
		scaleSpec.Seed = *seed
	}

	if *dumpFlag != "" {
		spec, err := scenario.CampaignByName(*dumpFlag, scaleSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
			os.Exit(2)
		}
		if err := spec.Dump(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "mrsch-exp: -resume requires -checkpoint DIR (there is nothing to resume from)")
		os.Exit(2)
	}
	if *pruneFlag {
		if *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "mrsch-exp: -prune requires -checkpoint DIR (the model store to collect)")
			os.Exit(2)
		}
		runPrune(*checkpoint, *parallel, *dryRun)
		return
	}
	if *distWorkers < 0 {
		fmt.Fprintf(os.Stderr, "mrsch-exp: -workers must be >= 0, got %d\n", *distWorkers)
		os.Exit(2)
	}
	if (*listenFlag != "" || *faultFlag != "") && *distWorkers == 0 {
		fmt.Fprintln(os.Stderr, "mrsch-exp: -listen and -fault-plan apply to distributed campaigns; set -workers N")
		os.Exit(2)
	}
	if *campaignFlag != "" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		runCampaign(*campaignFlag, scaleSpec, *parallel, *pipeline, *checkpoint, *resume, set["scale"], set["seed"], *seed, distConfig{
			workers:   *distWorkers,
			listen:    *listenFlag,
			faultPlan: *faultFlag,
			dryRun:    *dryRun,
			report:    *reportFlag,
		}, tel)
		return
	}
	if *checkpoint != "" {
		fmt.Fprintln(os.Stderr, "mrsch-exp: -checkpoint applies to campaign mode only; run it with -campaign (figure-mode training is not checkpointed)")
		os.Exit(2)
	}
	if *distWorkers > 0 || *dryRun || *reportFlag != "" {
		fmt.Fprintln(os.Stderr, "mrsch-exp: -workers, -dry-run, and -report apply to campaign mode; run them with -campaign")
		os.Exit(2)
	}

	runFigures(scaleSpec, *figFlag, *parallel, *pipeline, tel)
}

// telemetrySinks carries the process-wide telemetry knobs (-telemetry-addr,
// -journal) into campaign and figure runs.
type telemetrySinks struct {
	reg     *telemetry.Registry
	journal *telemetry.Journal
}

// runWorker is the -worker entry point: serve the distributed campaign
// protocol on stdio (the ProcPool arrangement) or over TCP with -connect.
// Stdout is the protocol channel, so all logging goes to stderr.
func runWorker(connect string) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mrsch-exp: "+format+"\n", args...)
	}
	var conn io.ReadWriteCloser
	if connect != "" {
		c, err := net.Dial("tcp", connect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: worker: %v\n", err)
			os.Exit(1)
		}
		conn = c
	} else {
		conn = stdioConn{}
	}
	if err := distrib.ServeWorker(conn, distrib.WorkerOptions{Logf: logf}); err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-exp: worker: %v\n", err)
		os.Exit(1)
	}
}

// stdioConn adapts the process's stdin/stdout to the connection interface
// ServeWorker wants.
type stdioConn struct{}

func (stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }
func (stdioConn) Close() error {
	os.Stdin.Close()
	return os.Stdout.Close()
}

// runPrune garbage-collects the model store (-prune).
func runPrune(dir string, workers int, dryRun bool) {
	kept, pruned, err := experiments.PruneModelStore(dir, workers, dryRun)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(1)
	}
	verb := "pruned"
	if dryRun {
		verb = "would prune"
	}
	for _, name := range pruned {
		fmt.Printf("%s %s\n", verb, name)
	}
	fmt.Printf("model store %s: %d entr(ies) kept, %d %s\n", dir, len(kept), len(pruned), verb)
}

// distConfig carries the distributed-campaign flags into runCampaign.
type distConfig struct {
	workers   int    // worker processes (0 = run in-process)
	listen    string // accept TCP workers here instead of spawning
	faultPlan string // JSON fault-injection file
	dryRun    bool   // validate and print the grid, don't run
	report    string // also write the campaign table to this file
}

// runCampaign resolves a builtin name or spec file and runs it. A spec
// file carries its own scale, so an explicit -scale is rejected rather
// than silently ignored; an explicit -seed overrides the file's seed.
func runCampaign(ref string, scaleSpec scenario.ScaleSpec, parallel int, pipeline bool, checkpoint string, resume bool, scaleSet, seedSet bool, seed int64, dist distConfig, tel telemetrySinks) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.CampaignByName(ref, scaleSpec)
	if err != nil {
		f, ferr := os.Open(ref)
		if ferr != nil {
			fail(fmt.Errorf("-campaign %q is neither a builtin campaign nor a readable spec file: %w", ref, ferr))
		}
		spec, err = scenario.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if scaleSet {
			fail(fmt.Errorf("-scale applies to builtin campaigns only; spec file %s carries its own scale (%s)", ref, spec.Scale.Name))
		}
		if seedSet {
			spec.Scale.Seed = seed
		}
	}
	if dist.dryRun {
		if err := dryRunCampaign(os.Stdout, spec); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("MRSch campaign %s — scale=%s (Theta/%d, seed %d), %d scenarios x %d methods\n\n",
		spec.Name, spec.Scale.Name, spec.Scale.Div, spec.Scale.Seed, len(spec.Scenarios), len(spec.Methods))
	start := time.Now()
	opt := experiments.CampaignOptions{
		Workers:       parallel,
		Pipelined:     pipeline,
		ModelDir:      checkpoint,
		CheckpointDir: checkpoint,
		Resume:        resume,
		Metrics:       tel.reg,
		Journal:       tel.journal,
	}
	if checkpoint != "" {
		opt.OnModel = func(family, action, path string) {
			switch action {
			case "cached":
				fmt.Printf("family %s: reusing stored model %s\n", family, path)
			case "trained":
				fmt.Printf("family %s: trained and stored %s\n", family, path)
			}
		}
	}
	var results []experiments.CellResult
	if dist.workers > 0 {
		results, err = runDistributed(spec, opt, dist, tel)
	} else {
		results, err = experiments.RunCampaign(spec, opt)
	}
	// Cell failures don't abort the rest of the grid: print whatever
	// completed before reporting the failures.
	if len(results) > 0 {
		if rerr := renderResults(spec.Name, results, dist.report); rerr != nil {
			fail(rerr)
		}
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ncampaign finished in %v\n", time.Since(start).Round(time.Millisecond))
}

// runDistributed runs the campaign through the internal/distrib coordinator
// over worker processes (spawned, or dialing in over TCP with -listen).
func runDistributed(spec scenario.CampaignSpec, opt experiments.CampaignOptions, dist distConfig, tel telemetrySinks) ([]experiments.CellResult, error) {
	var faults distrib.Faults
	if dist.faultPlan != "" {
		f, err := os.Open(dist.faultPlan)
		if err != nil {
			return nil, fmt.Errorf("-fault-plan: %w", err)
		}
		faults, err = distrib.LoadFaults(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	var pool distrib.Pool
	if dist.listen != "" {
		lp, err := distrib.NewListenPool(dist.listen, dist.workers)
		if err != nil {
			return nil, err
		}
		defer lp.Close()
		fmt.Fprintf(os.Stderr, "mrsch-exp: waiting for %d worker(s) on %s (start them with -worker -connect)\n",
			dist.workers, lp.Addr())
		pool = lp
	} else {
		pool = &distrib.ProcPool{Args: []string{"-worker"}, N: dist.workers}
	}
	dopt := distrib.Options{
		Seed:    spec.Scale.Seed,
		Faults:  faults,
		Metrics: tel.reg,
		Journal: tel.journal,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mrsch-exp: "+format+"\n", args...)
		},
	}
	return distrib.Run(spec, opt, dopt, pool)
}

// dryRunCampaign validates the spec and prints its expanded grid without
// evaluating anything.
func dryRunCampaign(w io.Writer, spec scenario.CampaignSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return err
	}
	cells := spec.Expand()
	fmt.Fprintf(w, "campaign %s: %d cells, fingerprint %s\n", spec.Name, len(cells), fp)
	for _, c := range cells {
		fmt.Fprintf(w, "  %4d  %s\n", c.Index, c.Label())
	}
	return nil
}

// renderResults prints the campaign table and, with -report, writes the
// identical bytes to a file for byte-for-byte comparison across runs.
func renderResults(name string, results []experiments.CellResult, report string) error {
	var buf bytes.Buffer
	experiments.FprintCells(&buf, name, results)
	if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
		return err
	}
	if report != "" {
		if err := os.WriteFile(report, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("-report: %w", err)
		}
	}
	return nil
}

// printRegistry renders the builtin spec registry (-list).
func printRegistry() {
	fmt.Println("Builtin scenarios:")
	for _, sp := range scenario.Builtins() {
		fmt.Printf("  %-4s (%d resources)  %s\n", sp.Name, sp.Arity(), sp.Describe())
	}
	fmt.Println("\nIngested-trace scenarios (cross-machine transfer; see workload.BuiltinTraces):")
	for _, sp := range scenario.TraceBuiltins() {
		fmt.Printf("  %-4s (%d resources)  %s\n", sp.Name, sp.Arity(), sp.Describe())
	}
	fmt.Println("\nMethods:")
	for _, k := range scenario.Kinds() {
		m := scenario.MethodSpec{Kind: k}
		fmt.Printf("  %-13s (kind %-12s)  %s\n", m.DisplayName(), k, m.Describe())
	}
	fmt.Println("\nVariant axes (scenario suffix: S4@<short>=<value>, comma-separated, each at most once):")
	for _, ax := range scenario.Axes() {
		fmt.Printf("  %-15s (short %-4s, ladder %v)  %s\n", ax.Name, ax.Short, ax.Values, ax.Description)
	}
	fmt.Printf("  %-15s (value <factor>x<frac>, e.g. S4@burst=5x0.25)  Markov-modulated bursty arrivals: gaps shrink to 1/factor for a stationary frac of submissions (dwell %d arrivals)\n",
		scenario.AxisBurst, scenario.DefaultBurstDwell)
	fmt.Println("\nBuiltin campaigns (-campaign / -dump-campaign):")
	for _, c := range scenario.BuiltinCampaigns(scenario.QuickScaleSpec()) {
		fmt.Printf("  %-15s %d scenarios x %d methods  %s\n", c.Name, len(c.Scenarios), len(c.Methods), c.Description)
	}
}

// runFigures reproduces the paper figures (the legacy mode).
func runFigures(scaleSpec scenario.ScaleSpec, figs string, parallel int, pipeline bool, tel telemetrySinks) {
	sc := experiments.ScaleFromSpec(scaleSpec)
	sc.RolloutWorkers = parallel
	sc.Pipelined = pipeline
	sc.Metrics = tel.reg
	sc.Journal = tel.journal

	want := map[string]bool{}
	if figs == "all" {
		for _, f := range []string{"1", "3", "4", "5", "6", "7", "8", "9", "10", "ablations", "sweep"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	mode := "barrier"
	if sc.Pipelined {
		mode = "pipelined"
	}
	fmt.Printf("MRSch experiment campaign — scale=%s (Theta/%d, window %d, seed %d, %s training)\n\n",
		sc.Name, sc.Div, sc.Window, sc.Seed, mode)
	start := time.Now()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(1)
	}

	c, err := experiments.NewCampaign(sc)
	if err != nil {
		fail(err)
	}

	if want["1"] {
		r, err := experiments.Figure1()
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure1(os.Stdout, r)
		fmt.Println()
	}
	if want["3"] {
		rows, err := experiments.Figure3(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure3(os.Stdout, rows)
		fmt.Println()
	}
	if want["4"] {
		series, err := experiments.Figure4(c, "S4")
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure4(os.Stdout, series)
		fmt.Println()
	}
	var rows56 []experiments.MethodReports
	if want["5"] || want["6"] || want["7"] {
		var err error
		rows56, err = experiments.Figures56(c)
		if err != nil {
			fail(err)
		}
	}
	if want["5"] {
		experiments.FprintFigure5(os.Stdout, rows56)
		fmt.Println()
	}
	if want["6"] {
		experiments.FprintFigure6(os.Stdout, rows56)
		fmt.Println()
	}
	if want["7"] {
		experiments.FprintFigure7(os.Stdout, rows56)
		fmt.Println()
	}
	if want["8"] {
		samples, err := experiments.Figure8(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure8(os.Stdout, samples)
		fmt.Println()
	}
	if want["9"] {
		rows, err := experiments.Figure9(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure9(os.Stdout, rows)
		fmt.Println()
	}
	if want["10"] {
		rows, err := experiments.Figure10(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure10(os.Stdout, rows)
		fmt.Println()
	}
	if want["sweep"] {
		results, err := experiments.RunSweep(c.M, experiments.SweepGrid(nil), sc.RolloutWorkers)
		if err != nil {
			fail(err)
		}
		experiments.FprintSweep(os.Stdout, results)
		fmt.Println()
	}
	if want["ablations"] {
		if rows, err := experiments.AblationGoal(c); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "dynamic vs fixed goal vector (S5)", rows)
		}
		if rows, err := experiments.AblationStateNets(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "single vs per-resource state nets (S4)", rows)
		}
		if rows, err := experiments.AblationWindow(c.M, nil); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "window size sweep (S4)", rows)
		}
		if rows, err := experiments.AblationBackfill(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "EASY backfilling on/off (S4)", rows)
		}
		if rows, err := experiments.AblationPickers(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "list-scheduling pickers (S4)", rows)
		}
		fmt.Println()
	}
	fmt.Printf("campaign finished in %v\n", time.Since(start).Round(time.Millisecond))
}
