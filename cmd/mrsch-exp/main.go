// Command mrsch-exp regenerates the paper's evaluation figures (§V) as text
// tables: the MLP-vs-CNN ablation (Figure 3), curriculum orderings
// (Figure 4), the four-method comparison (Figures 5-7), dynamic resource
// prioritizing (Figures 8-9), the three-resource case study (Figure 10),
// and the Figure 1 motivating example.
//
// Usage:
//
//	mrsch-exp [-scale quick|standard|tiny] [-fig all|1|3|4|5|6|7|8|9|10|sweep] [-parallel 4] [-pipeline]
//
// -parallel N runs training rollouts and sweep evaluation episodes on N
// simulator environments concurrently (0 = all CPU cores). The "sweep"
// figure fans the full S1-S10 x method scenario grid across the same worker
// pool. Results are reproducible for any fixed N (see internal/rollout).
//
// -pipeline overlaps every training campaign's episode collection with its
// gradient steps against a versioned weight snapshot (rollout.Config
// .Pipelined) and shards the replay buffer per rollout worker. Campaigns
// stay reproducible for a fixed (seed, -parallel) pair but differ from
// barrier-mode campaigns (one-round policy lag); figure tables trained
// either way keep their qualitative shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick, standard, or tiny")
	figFlag := flag.String("fig", "all", "comma-separated figures to run: 1,3,4,5,6,7,8,9,10,sweep or all")
	seed := flag.Int64("seed", 0, "override campaign seed (0 keeps the scale default)")
	parallel := flag.Int("parallel", 1, "parallel rollout environments (0 = all CPU cores)")
	pipeline := flag.Bool("pipeline", false, "overlap collection with training against a versioned weight snapshot")
	flag.Parse()

	// A negative -parallel used to fall back to all cores silently via the
	// rollout.ResolveWorkers n<=0 convention; reject it instead.
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "mrsch-exp: -parallel must be >= 0 (0 = all CPU cores), got %d\n", *parallel)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "standard":
		sc = experiments.StandardScale()
	case "tiny":
		sc = experiments.QuickScale()
		sc.Name = "tiny"
		sc.Div = 64
		sc.TraceDuration = 0.4 * 86400
		sc.SetsPerKind = 2
		sc.SetSize = 30
	default:
		fmt.Fprintf(os.Stderr, "mrsch-exp: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.RolloutWorkers = *parallel
	sc.Pipelined = *pipeline

	want := map[string]bool{}
	if *figFlag == "all" {
		for _, f := range []string{"1", "3", "4", "5", "6", "7", "8", "9", "10", "ablations", "sweep"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figFlag, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	mode := "barrier"
	if sc.Pipelined {
		mode = "pipelined"
	}
	fmt.Printf("MRSch experiment campaign — scale=%s (Theta/%d, window %d, seed %d, %s training)\n\n",
		sc.Name, sc.Div, sc.Window, sc.Seed, mode)
	start := time.Now()
	c := experiments.NewCampaign(sc)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(1)
	}

	if want["1"] {
		r, err := experiments.Figure1()
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure1(os.Stdout, r)
		fmt.Println()
	}
	if want["3"] {
		rows, err := experiments.Figure3(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure3(os.Stdout, rows)
		fmt.Println()
	}
	if want["4"] {
		series, err := experiments.Figure4(c, "S4")
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure4(os.Stdout, series)
		fmt.Println()
	}
	var rows56 []experiments.MethodReports
	if want["5"] || want["6"] || want["7"] {
		var err error
		rows56, err = experiments.Figures56(c)
		if err != nil {
			fail(err)
		}
	}
	if want["5"] {
		experiments.FprintFigure5(os.Stdout, rows56)
		fmt.Println()
	}
	if want["6"] {
		experiments.FprintFigure6(os.Stdout, rows56)
		fmt.Println()
	}
	if want["7"] {
		experiments.FprintFigure7(os.Stdout, rows56)
		fmt.Println()
	}
	if want["8"] {
		samples, err := experiments.Figure8(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure8(os.Stdout, samples)
		fmt.Println()
	}
	if want["9"] {
		rows, err := experiments.Figure9(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure9(os.Stdout, rows)
		fmt.Println()
	}
	if want["10"] {
		rows, err := experiments.Figure10(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure10(os.Stdout, rows)
		fmt.Println()
	}
	if want["sweep"] {
		results, err := experiments.RunSweep(c.M, experiments.SweepGrid(nil), sc.RolloutWorkers)
		if err != nil {
			fail(err)
		}
		experiments.FprintSweep(os.Stdout, results)
		fmt.Println()
	}
	if want["ablations"] {
		if rows, err := experiments.AblationGoal(c); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "dynamic vs fixed goal vector (S5)", rows)
		}
		if rows, err := experiments.AblationStateNets(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "single vs per-resource state nets (S4)", rows)
		}
		if rows, err := experiments.AblationWindow(c.M, nil); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "window size sweep (S4)", rows)
		}
		if rows, err := experiments.AblationBackfill(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "EASY backfilling on/off (S4)", rows)
		}
		if rows, err := experiments.AblationPickers(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "list-scheduling pickers (S4)", rows)
		}
		fmt.Println()
	}
	fmt.Printf("campaign finished in %v\n", time.Since(start).Round(time.Millisecond))
}
