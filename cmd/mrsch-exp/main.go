// Command mrsch-exp regenerates the paper's evaluation figures (§V) as text
// tables — the MLP-vs-CNN ablation (Figure 3), curriculum orderings
// (Figure 4), the four-method comparison (Figures 5-7), dynamic resource
// prioritizing (Figures 8-9), the three-resource case study (Figure 10),
// and the Figure 1 motivating example — and runs declarative scenario
// campaigns (internal/scenario).
//
// Usage:
//
//	mrsch-exp [-scale quick|standard|tiny] [-fig all|1|3|4|5|6|7|8|9|10|sweep] [-parallel 4] [-pipeline]
//	mrsch-exp -campaign spec.json [-parallel 4] [-pipeline] [-checkpoint dir [-resume]]
//	mrsch-exp -campaign paper|theta-variants [-scale quick]
//	mrsch-exp -dump-campaign paper|theta-variants [-scale quick]
//	mrsch-exp -list
//
// -campaign runs a campaign spec: a JSON file (see -dump-campaign for the
// format), or a builtin campaign name. Cells fan out across the -parallel
// worker pool; per-cell seeding derives from the cell's grid index, so
// results are identical for every worker count.
//
// -dump-campaign writes a builtin campaign as JSON to stdout at the
// selected -scale — the starting point for custom specs, and the golden
// file CI pins (specs/paper-campaign.json).
//
// -list prints the builtin scenarios, methods, theta-variant axes, and
// campaigns, generated from the spec registry.
//
// -parallel N runs training rollouts and campaign evaluation episodes on N
// simulator environments concurrently (0 = all CPU cores). The "sweep"
// figure fans the full S1-S10 x method scenario grid across the same worker
// pool. Results are reproducible for any fixed N (see internal/rollout).
//
// -pipeline overlaps every training campaign's episode collection with its
// gradient steps against a versioned weight snapshot (rollout.Config
// .Pipelined) and shards the replay buffer per rollout worker. Campaigns
// stay reproducible for a fixed (seed, -parallel) pair but differ from
// barrier-mode campaigns (one-round policy lag); figure tables trained
// either way keep their qualitative shape.
//
// -checkpoint DIR (campaign mode only) makes campaign runs durable twice
// over: trained family models are stored content-addressed in DIR (keyed
// by scenario family plus a hash of the spec and training settings), so
// re-running a finished campaign retrains zero models; and in-process
// family training writes round-granular checkpoints there, so -resume
// continues a preempted training run bitwise identically instead of
// restarting it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick, standard, or tiny")
	figFlag := flag.String("fig", "all", "comma-separated figures to run: 1,3,4,5,6,7,8,9,10,sweep or all")
	seed := flag.Int64("seed", 0, "override campaign seed (0 keeps the scale default)")
	parallel := flag.Int("parallel", 1, "parallel rollout environments (0 = all CPU cores)")
	pipeline := flag.Bool("pipeline", false, "overlap collection with training against a versioned weight snapshot")
	campaignFlag := flag.String("campaign", "", "run a campaign: a spec JSON file or a builtin name (paper, theta-variants)")
	checkpoint := flag.String("checkpoint", "", "campaign mode: directory for the family-model store and training checkpoints")
	resume := flag.Bool("resume", false, "campaign mode: resume preempted family training from -checkpoint")
	dumpFlag := flag.String("dump-campaign", "", "write a builtin campaign spec (paper, theta-variants) as JSON to stdout and exit")
	listFlag := flag.Bool("list", false, "list builtin scenarios, methods, theta-variant axes, and campaigns, then exit")
	flag.Parse()

	if *listFlag {
		printRegistry()
		return
	}

	// A negative -parallel used to fall back to all cores silently via the
	// rollout.ResolveWorkers n<=0 convention; reject it instead.
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "mrsch-exp: -parallel must be >= 0 (0 = all CPU cores), got %d\n", *parallel)
		os.Exit(2)
	}

	scaleSpec, err := scenario.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(2)
	}
	if *seed != 0 {
		scaleSpec.Seed = *seed
	}

	if *dumpFlag != "" {
		spec, err := scenario.CampaignByName(*dumpFlag, scaleSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
			os.Exit(2)
		}
		if err := spec.Dump(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "mrsch-exp: -resume requires -checkpoint DIR (there is nothing to resume from)")
		os.Exit(2)
	}
	if *campaignFlag != "" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		runCampaign(*campaignFlag, scaleSpec, *parallel, *pipeline, *checkpoint, *resume, set["scale"], set["seed"], *seed)
		return
	}
	if *checkpoint != "" {
		fmt.Fprintln(os.Stderr, "mrsch-exp: -checkpoint applies to campaign mode only; run it with -campaign (figure-mode training is not checkpointed)")
		os.Exit(2)
	}

	runFigures(scaleSpec, *figFlag, *parallel, *pipeline)
}

// runCampaign resolves a builtin name or spec file and runs it. A spec
// file carries its own scale, so an explicit -scale is rejected rather
// than silently ignored; an explicit -seed overrides the file's seed.
func runCampaign(ref string, scaleSpec scenario.ScaleSpec, parallel int, pipeline bool, checkpoint string, resume bool, scaleSet, seedSet bool, seed int64) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.CampaignByName(ref, scaleSpec)
	if err != nil {
		f, ferr := os.Open(ref)
		if ferr != nil {
			fail(fmt.Errorf("-campaign %q is neither a builtin campaign nor a readable spec file: %w", ref, ferr))
		}
		spec, err = scenario.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if scaleSet {
			fail(fmt.Errorf("-scale applies to builtin campaigns only; spec file %s carries its own scale (%s)", ref, spec.Scale.Name))
		}
		if seedSet {
			spec.Scale.Seed = seed
		}
	}
	fmt.Printf("MRSch campaign %s — scale=%s (Theta/%d, seed %d), %d scenarios x %d methods\n\n",
		spec.Name, spec.Scale.Name, spec.Scale.Div, spec.Scale.Seed, len(spec.Scenarios), len(spec.Methods))
	start := time.Now()
	opt := experiments.CampaignOptions{
		Workers:       parallel,
		Pipelined:     pipeline,
		ModelDir:      checkpoint,
		CheckpointDir: checkpoint,
		Resume:        resume,
	}
	if checkpoint != "" {
		opt.OnModel = func(family, action, path string) {
			switch action {
			case "cached":
				fmt.Printf("family %s: reusing stored model %s\n", family, path)
			case "trained":
				fmt.Printf("family %s: trained and stored %s\n", family, path)
			}
		}
	}
	results, err := experiments.RunCampaign(spec, opt)
	// Cell failures don't abort the rest of the grid: print whatever
	// completed before reporting the failures.
	if len(results) > 0 {
		experiments.FprintCells(os.Stdout, spec.Name, results)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ncampaign finished in %v\n", time.Since(start).Round(time.Millisecond))
}

// printRegistry renders the builtin spec registry (-list).
func printRegistry() {
	fmt.Println("Builtin scenarios:")
	for _, sp := range scenario.Builtins() {
		fmt.Printf("  %-4s (%d resources)  %s\n", sp.Name, sp.Arity(), sp.Describe())
	}
	fmt.Println("\nMethods:")
	for _, k := range scenario.Kinds() {
		m := scenario.MethodSpec{Kind: k}
		fmt.Printf("  %-13s (kind %-12s)  %s\n", m.DisplayName(), k, m.Describe())
	}
	fmt.Println("\nTheta-variant axes (scenario suffix: S4@<short>=<value>):")
	for _, ax := range scenario.Axes() {
		fmt.Printf("  %-15s (short %-3s, ladder %v)  %s\n", ax.Name, ax.Short, ax.Values, ax.Description)
	}
	fmt.Println("\nBuiltin campaigns (-campaign / -dump-campaign):")
	for _, c := range scenario.BuiltinCampaigns(scenario.QuickScaleSpec()) {
		fmt.Printf("  %-15s %d scenarios x %d methods  %s\n", c.Name, len(c.Scenarios), len(c.Methods), c.Description)
	}
}

// runFigures reproduces the paper figures (the legacy mode).
func runFigures(scaleSpec scenario.ScaleSpec, figs string, parallel int, pipeline bool) {
	sc := experiments.ScaleFromSpec(scaleSpec)
	sc.RolloutWorkers = parallel
	sc.Pipelined = pipeline

	want := map[string]bool{}
	if figs == "all" {
		for _, f := range []string{"1", "3", "4", "5", "6", "7", "8", "9", "10", "ablations", "sweep"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	mode := "barrier"
	if sc.Pipelined {
		mode = "pipelined"
	}
	fmt.Printf("MRSch experiment campaign — scale=%s (Theta/%d, window %d, seed %d, %s training)\n\n",
		sc.Name, sc.Div, sc.Window, sc.Seed, mode)
	start := time.Now()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mrsch-exp: %v\n", err)
		os.Exit(1)
	}

	c, err := experiments.NewCampaign(sc)
	if err != nil {
		fail(err)
	}

	if want["1"] {
		r, err := experiments.Figure1()
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure1(os.Stdout, r)
		fmt.Println()
	}
	if want["3"] {
		rows, err := experiments.Figure3(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure3(os.Stdout, rows)
		fmt.Println()
	}
	if want["4"] {
		series, err := experiments.Figure4(c, "S4")
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure4(os.Stdout, series)
		fmt.Println()
	}
	var rows56 []experiments.MethodReports
	if want["5"] || want["6"] || want["7"] {
		var err error
		rows56, err = experiments.Figures56(c)
		if err != nil {
			fail(err)
		}
	}
	if want["5"] {
		experiments.FprintFigure5(os.Stdout, rows56)
		fmt.Println()
	}
	if want["6"] {
		experiments.FprintFigure6(os.Stdout, rows56)
		fmt.Println()
	}
	if want["7"] {
		experiments.FprintFigure7(os.Stdout, rows56)
		fmt.Println()
	}
	if want["8"] {
		samples, err := experiments.Figure8(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure8(os.Stdout, samples)
		fmt.Println()
	}
	if want["9"] {
		rows, err := experiments.Figure9(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure9(os.Stdout, rows)
		fmt.Println()
	}
	if want["10"] {
		rows, err := experiments.Figure10(c)
		if err != nil {
			fail(err)
		}
		experiments.FprintFigure10(os.Stdout, rows)
		fmt.Println()
	}
	if want["sweep"] {
		results, err := experiments.RunSweep(c.M, experiments.SweepGrid(nil), sc.RolloutWorkers)
		if err != nil {
			fail(err)
		}
		experiments.FprintSweep(os.Stdout, results)
		fmt.Println()
	}
	if want["ablations"] {
		if rows, err := experiments.AblationGoal(c); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "dynamic vs fixed goal vector (S5)", rows)
		}
		if rows, err := experiments.AblationStateNets(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "single vs per-resource state nets (S4)", rows)
		}
		if rows, err := experiments.AblationWindow(c.M, nil); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "window size sweep (S4)", rows)
		}
		if rows, err := experiments.AblationBackfill(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "EASY backfilling on/off (S4)", rows)
		}
		if rows, err := experiments.AblationPickers(c.M); err != nil {
			fail(err)
		} else {
			experiments.FprintAblation(os.Stdout, "list-scheduling pickers (S4)", rows)
		}
		fmt.Println()
	}
	fmt.Printf("campaign finished in %v\n", time.Since(start).Round(time.Millisecond))
}
