// Command mrsch-gen generates workload traces: the synthetic Theta-like
// base trace (§IV-A), a Table III scenario (S1-S5), or a power-extended
// §V-E scenario (S6-S10), written in the plain-text trace format of
// internal/job.
//
// Usage:
//
//	mrsch-gen -scenario base|S1..S10 [-div 16] [-days 2] [-gap 110]
//	          [-seed 1] [-out trace.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "base", "base, S1..S5, or S6..S10")
	div := flag.Int("div", 16, "Theta scale divisor")
	days := flag.Float64("days", 2, "trace duration in days")
	gap := flag.Float64("gap", 110, "peak mean inter-arrival seconds")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	sys := workload.ThetaScaled(*div)
	gcfg := workload.GeneratorConfig{
		System:           sys,
		Duration:         *days * 86400,
		MeanInterarrival: *gap,
		Seed:             *seed,
	}
	base := workload.GenerateBase(gcfg)
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], *seed+1)

	var jobs []*job.Job
	var names []string
	switch {
	case *scenario == "base":
		jobs, names = base, sys.Resources
	default:
		if sc, err := workload.ScenarioByName(*scenario); err == nil {
			jobs = workload.Apply(base, pool, sc, sys, *seed+2)
			names = sys.Resources
			break
		}
		psys := workload.WithPower(sys)
		found := false
		for _, psc := range workload.PowerScenarios() {
			if psc.Name == *scenario {
				jobs = workload.ApplyPower(base, pool, psc, psys, *seed+2)
				names = psys.Resources
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "mrsch-gen: unknown scenario %q\n", *scenario)
			os.Exit(2)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := job.WriteTrace(w, jobs, names); err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mrsch-gen: wrote %d jobs (%s, %s)\n", len(jobs), *scenario, describe(sys, names))
}

func describe(sys cluster.Config, names []string) string {
	if len(names) == 3 {
		return fmt.Sprintf("%d nodes, %d TB bb, power-extended", sys.Capacities[0], sys.Capacities[1])
	}
	return fmt.Sprintf("%d nodes, %d TB bb", sys.Capacities[0], sys.Capacities[1])
}
