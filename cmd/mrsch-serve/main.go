// Command mrsch-serve is the scheduler-as-a-service decision daemon: it
// loads a trained MRSch model (mrsch-train output) and answers "here is
// the queue and the cluster state, what do I schedule next?" over TCP,
// coalescing concurrent requests into batched forward passes. Served
// decisions are byte-identical to offline core.MRSch decisions for the
// same model and state, at every batch size — see the internal/serve
// package documentation for the full contract.
//
// Usage:
//
//	mrsch-serve -model mrsch-S4.model [-scale quick|standard] [-listen :7643] [-max-batch 16] [-max-wait 200us]
//
// SIGHUP re-reads -model and hot-swaps the weights without dropping a
// request; clients can do the same remotely over the swap admin frame.
// The daemon drains gracefully on SIGINT/SIGTERM: admitted requests are
// answered before their connections close.
//
// -telemetry-addr ADDR exposes live serving metrics (decision and batch
// counters, batch-size and latency histograms, model version) plus /health
// and pprof over HTTP, and -journal FILE appends model-swap JSONL events;
// both are contract-neutral (serve package doc, rule 7), so served decision
// bytes are identical with or without them.
//
// The same binary is the load generator:
//
//	mrsch-serve -loadgen -connect host:7643 [-clients 4] [-requests 100] [-rate 0] [-workload S1] [-scale quick]
//
// which harvests decision instants from the named workload's trace (FCFS
// replay), replays them from -clients concurrent clients, and prints
// decision throughput with p50/p99/p999 latency as JSON (the
// BENCH_serve.json rows).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	model := flag.String("model", "", "trained weights file (mrsch-train output); empty serves the untrained network")
	scaleFlag := flag.String("scale", "quick", "system scale the model was trained at: quick or standard")
	listen := flag.String("listen", "127.0.0.1:7643", "TCP listen address")
	maxBatch := flag.Int("max-batch", 16, "max concurrent requests coalesced into one forward pass")
	maxWait := flag.Duration("max-wait", 200*time.Microsecond, "max time the first request of a batch waits for company (0 = no waiting)")
	loadgen := flag.Bool("loadgen", false, "run as load generator instead of daemon")
	connect := flag.String("connect", "", "loadgen: daemon address to hammer")
	clients := flag.Int("clients", 2, "loadgen: concurrent clients")
	requests := flag.Int("requests", 100, "loadgen: requests per client")
	rate := flag.Float64("rate", 0, "loadgen: per-client request rate in req/s (0 = closed loop)")
	wl := flag.String("workload", "S1", "loadgen: Table III workload whose trace seeds the request pool")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /health, and pprof over HTTP at this address (empty = off)")
	journalPath := flag.String("journal", "", "append daemon events (model swaps) as JSONL to this file (empty = off)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "standard":
		sc = experiments.StandardScale()
	default:
		fmt.Fprintf(os.Stderr, "mrsch-serve: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	if *loadgen {
		if err := runLoadgen(sc, *connect, *clients, *requests, *rate, *wl); err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runDaemon(sc, *model, *listen, *maxBatch, *maxWait, *telemetryAddr, *journalPath); err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-serve: %v\n", err)
		os.Exit(1)
	}
}

// runDaemon serves decisions until SIGINT/SIGTERM, hot-swapping the model
// file on SIGHUP.
func runDaemon(sc experiments.Scale, model, listen string, maxBatch int, maxWait time.Duration, telemetryAddr, journalPath string) error {
	logger := telemetry.NewLogger(os.Stderr, "mrsch-serve")
	// Telemetry is contract-neutral (serve doc rule 7): both knobs are
	// plain opt-ins that cannot perturb decision bytes.
	var reg *telemetry.Registry
	if telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		tsrv, err := telemetry.ListenAndServe(telemetryAddr, reg)
		if err != nil {
			return fmt.Errorf("-telemetry-addr: %w", err)
		}
		defer tsrv.Close()
		logger.Event("telemetry", "addr", tsrv.Addr())
	}
	var journal *telemetry.Journal
	if journalPath != "" {
		j, err := telemetry.OpenJournal(journalPath)
		if err != nil {
			return fmt.Errorf("-journal: %w", err)
		}
		defer j.Close()
		journal = j
	}
	// The agent must be built with the exact architecture mrsch-train
	// used, or the weight file will not load.
	agent := experiments.NewMRSchUntrained(sc, false)
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			return err
		}
		err = agent.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", model, err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "mrsch-serve: warning: no -model given, serving the untrained network")
	}
	sys := sc.System()
	srv, err := serve.NewServer(agent, sys, serve.Config{
		MaxBatch: maxBatch,
		MaxWait:  maxWait,
		Metrics:  reg,
		Journal:  journal,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	logger.Event("kernel", "set", nn.KernelName(), "features", nn.KernelFeatures())
	logger.Event("serving", "system", sys.Name, "addr", ln.Addr(), "window", agent.Enc.Window,
		"model_version", srv.ModelVersion(), "max_batch", maxBatch, "max_wait", maxWait, "kernel", nn.KernelName())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		for sig := range sigs {
			if sig != syscall.SIGHUP {
				fmt.Fprintf(os.Stderr, "mrsch-serve: %s, draining\n", sig)
				srv.Shutdown()
				return
			}
			// SIGHUP: re-read the model file and swap without dropping a
			// request. A failed reload keeps the current version serving.
			if model == "" {
				fmt.Fprintln(os.Stderr, "mrsch-serve: SIGHUP ignored: no -model to reload")
				continue
			}
			f, err := os.Open(model)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrsch-serve: reload: %v\n", err)
				continue
			}
			v, err := srv.Swap(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrsch-serve: reload rejected, still serving version %d: %v\n", v, err)
			}
		}
	}()
	return srv.Serve(ln)
}

// runLoadgen replays trace decision instants against a live daemon and
// prints the scorecard as JSON.
func runLoadgen(sc experiments.Scale, connect string, clients, requests int, rate float64, wl string) error {
	if connect == "" {
		return fmt.Errorf("-loadgen requires -connect host:port")
	}
	m, err := experiments.Prepare(sc)
	if err != nil {
		return err
	}
	// Probe the daemon's window so the sampled instants match what it
	// serves.
	probe, err := serve.Dial(connect)
	if err != nil {
		return err
	}
	window := probe.Window()
	probe.Close()
	trace, err := serve.SampleRequests(sc.System(), m.Workload(wl), window, 512)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mrsch-serve: replaying %d sampled decision instants from %s against %s (%d clients x %d requests)\n",
		len(trace), wl, connect, clients, requests)
	res, err := serve.RunLoadgen(serve.LoadgenOptions{
		Addr:      connect,
		Clients:   clients,
		PerClient: requests,
		Rate:      rate,
		Trace:     trace,
	})
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
