// Command mrsch-sim replays one workload through one scheduling method and
// prints the §IV-B metrics. It is the single-run counterpart of mrsch-exp:
// useful for trying a scheduler on a generated trace file or on a built-in
// scenario — Table III S1-S10, the ingested-trace transfer family T1-T5,
// and variant syntax all resolve (e.g. "S4@wtn=0.5", "S4@zipf=0.9",
// "S4@burst=5x0.25"; see internal/scenario). Variant and trace scenarios
// prepare their own base materials, exactly like the campaign runner, so
// e.g. `-method mrsch -model s4.model -workload T4` measures cross-machine
// transfer of an S4-trained model.
//
// Usage:
//
//	mrsch-sim -method mrsch|optimization|rl|fcfs -workload S1..S10|T1..T5
//	          [-scale quick|standard] [-model mrsch-s1.model]
//	mrsch-sim -method fcfs -trace trace.txt -div 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	method := flag.String("method", "fcfs", "mrsch, optimization, rl, or fcfs")
	wl := flag.String("workload", "S1", "built-in workload S1-S10")
	traceFile := flag.String("trace", "", "replay a trace file instead of a built-in workload")
	div := flag.Int("div", 16, "Theta divisor for -trace replays")
	scaleFlag := flag.String("scale", "quick", "quick or standard")
	model := flag.String("model", "", "pre-trained MRSch weights (otherwise trains in-process)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "standard":
		sc = experiments.StandardScale()
	default:
		fmt.Fprintf(os.Stderr, "mrsch-sim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	sys, jobs, power := loadWorkload(sc, *wl, *traceFile, *div)
	powerIdx := -1
	if power {
		powerIdx = 2
	}

	var report metrics.Report
	var err error
	switch *method {
	case "fcfs":
		report, err = experiments.Evaluate(sys, experiments.FCFSPolicy(sc.Window), jobs, experiments.MethodHeuristic, *wl, powerIdx)
	case "optimization":
		policy := sched.NewWindowPolicy(experiments.NewGA(sc.Seed+29), sc.Window)
		report, err = experiments.Evaluate(sys, policy, jobs, experiments.MethodOptimize, *wl, powerIdx)
	case "rl":
		m, perr := materialsFor(sc, *wl)
		if perr != nil {
			fail(perr)
		}
		var agent interface {
			Policy() *sched.WindowPolicy
		}
		agent, err = experiments.TrainScalarRL(m, trainingFamily(*wl), sys, power)
		if err == nil {
			report, err = experiments.Evaluate(sys, agent.Policy(), jobs, experiments.MethodScalarRL, *wl, powerIdx)
		}
	case "mrsch":
		var agent *core.MRSch
		agent, err = mrschAgent(sc, *wl, power, *model)
		if err == nil {
			report, err = experiments.Evaluate(sys, agent.Policy(), jobs, experiments.MethodMRSch, *wl, powerIdx)
		}
	default:
		fmt.Fprintf(os.Stderr, "mrsch-sim: unknown method %q\n", *method)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	fmt.Println(report.String())
}

// loadWorkload resolves either a trace file or a built-in scenario.
func loadWorkload(sc experiments.Scale, wl, traceFile string, div int) (cluster.Config, []*job.Job, bool) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		jobs, err := job.ReadTrace(f)
		if err != nil {
			fail(err)
		}
		if len(jobs) == 0 {
			fail(fmt.Errorf("trace %s is empty", traceFile))
		}
		if len(jobs[0].Demand) == 3 {
			return workload.WithPower(workload.ThetaScaled(div)), jobs, true
		}
		return workload.ThetaScaled(div), jobs, false
	}
	sp, err := scenario.ByName(wl)
	if err != nil {
		fail(err)
	}
	m, err := experiments.PrepareFor(sc, sp)
	if err != nil {
		fail(err)
	}
	jobs, err := m.WorkloadSpec(sp)
	if err != nil {
		fail(err)
	}
	return m.SystemFor(sp), jobs, sp.Power
}

// materialsFor prepares the materials a workload trains against: variant
// and trace scenarios fold their base-trace overrides into the scale
// (experiments.PrepareFor, the campaign runner's path); trace-file labels
// fall back to the plain campaign materials.
func materialsFor(sc experiments.Scale, wl string) (*experiments.Materials, error) {
	if sp, err := scenario.ByName(wl); err == nil {
		return experiments.PrepareFor(sc, sp)
	}
	return experiments.Prepare(sc)
}

// mrschAgent loads pre-trained weights or trains in-process.
func mrschAgent(sc experiments.Scale, wl string, power bool, model string) (*core.MRSch, error) {
	if model != "" {
		agent := experiments.NewMRSchUntrained(sc, power)
		f, err := os.Open(model)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := agent.Load(f); err != nil {
			return nil, err
		}
		return agent, nil
	}
	m, err := materialsFor(sc, wl)
	if err != nil {
		return nil, err
	}
	if power {
		return experiments.TrainMRSchPower(m, trainingFamily(wl))
	}
	agent, _, err := experiments.TrainMRSch(m, trainingFamily(wl), false)
	return agent, err
}

// trainingFamily resolves the workload's model family: theta variants train
// on their base scenario's curriculum (matching the campaign runner) and
// are evaluated on the variant workload. Trace-file labels pass through.
func trainingFamily(wl string) string {
	if sp, err := scenario.ByName(wl); err == nil {
		return sp.FamilyName()
	}
	return wl
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mrsch-sim: %v\n", err)
	os.Exit(1)
}
