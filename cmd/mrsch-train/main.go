// Command mrsch-train curriculum-trains an MRSch agent for a Table III
// workload (§III-D: sampled -> real -> synthetic job sets) and saves the
// network weights for later use by mrsch-sim.
//
// Usage:
//
//	mrsch-train -workload S4 [-scale quick|standard] [-parallel 4] [-pipeline] [-out mrsch-s4.model]
//
// -parallel N collects training episodes from N simulator environments
// concurrently (0 = all CPU cores) through the internal/rollout harness;
// results are bitwise reproducible for any fixed N (see the rollout package
// documentation for the determinism contract).
//
// -pipeline additionally overlaps collection with training: round k+1 rolls
// out against a versioned weight snapshot while round k's gradient steps run,
// and the replay buffer is sharded per rollout worker. Runs stay bitwise
// reproducible for a fixed (seed, -parallel) pair but differ from barrier-
// mode runs (the collection policy lags one round); with -validate, the
// validation protocol scores the live weights as usual while only snapshot
// readers are in flight.
//
// -checkpoint DIR makes the run durable: the agent's full training state
// (weights, Adam moments, replay rings, epsilon and rng cursors) is written
// atomically to DIR at every round boundary. -resume restarts an
// interrupted run from its checkpoint — bitwise identical to never having
// been interrupted for the same (-workload, -scale, -parallel, -pipeline)
// flags, which the checkpoint records (including a hash of the full scale
// spec) and verifies. With no checkpoint file present, -resume starts
// fresh, so a preemptable job can always launch with both flags.
// -checkpoint-every N throttles writes to every Nth round boundary (the
// final boundary always writes) when serializing the replay buffer every
// round would rival the round's training time. -validate composes with
// -checkpoint: the §IV-A model-selection state (best validation score and
// the weight snapshot that scored it) is checkpointed alongside the agent
// state, so a resumed validated run keeps a best model found before the
// interruption; validated and plain checkpoints use distinct keys and
// never resume each other's files.
//
// -telemetry-addr ADDR exposes live training metrics (round and episode
// counters, gradient-step latency, replay occupancy) plus /health and pprof
// over HTTP, and -journal FILE appends per-round JSONL events; both are
// observe-only (rollout package doc, rule 11), so instrumented runs stay
// bitwise identical to bare ones.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	wl := flag.String("workload", "S1", "Table III workload (S1-S5)")
	scaleFlag := flag.String("scale", "quick", "training scale: quick or standard")
	out := flag.String("out", "", "weights output file (default mrsch-<workload>.model)")
	cnn := flag.Bool("cnn", false, "use the CNN state module (Figure 3 ablation)")
	validate := flag.Bool("validate", false, "keep the best weights by validation score (§IV-A protocol)")
	parallel := flag.Int("parallel", 1, "parallel rollout environments (0 = all CPU cores)")
	pipeline := flag.Bool("pipeline", false, "overlap collection with training against a versioned weight snapshot")
	checkpoint := flag.String("checkpoint", "", "directory for round-boundary training checkpoints (empty = no checkpointing)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "write a checkpoint every N round boundaries (the final boundary always writes)")
	resume := flag.Bool("resume", false, "resume from the checkpoint in -checkpoint if one exists (requires identical flags)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /health, and pprof over HTTP at this address (empty = off)")
	journalPath := flag.String("journal", "", "append run events as JSONL to this file (empty = off)")
	flag.Parse()

	// Attribute every run to its kernel set up front (MRSCH_KERNEL forces
	// one; see internal/nn/kernel).
	logger := telemetry.NewLogger(os.Stderr, "mrsch-train")
	logger.Event("kernel", "set", nn.KernelName(), "features", nn.KernelFeatures())

	// Flag combinations fail loudly: a negative -parallel used to fall back
	// to all cores silently (the rollout.ResolveWorkers n<=0 convention),
	// which silently un-pins a run the user thought was deterministic across
	// machines.
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "mrsch-train: -parallel must be >= 0 (0 = all CPU cores), got %d\n", *parallel)
		os.Exit(2)
	}
	if *pipeline && *parallel == 1 {
		fmt.Fprintln(os.Stderr, "mrsch-train: note: -pipeline with -parallel 1 overlaps each episode's collection with the previous episode's gradient steps only; raise -parallel for wider rounds")
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "mrsch-train: -resume requires -checkpoint DIR (there is nothing to resume from)")
		os.Exit(2)
	}
	if *checkpointEvery < 1 {
		fmt.Fprintf(os.Stderr, "mrsch-train: -checkpoint-every must be >= 1, got %d\n", *checkpointEvery)
		os.Exit(2)
	}
	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "standard":
		sc = experiments.StandardScale()
	default:
		fmt.Fprintf(os.Stderr, "mrsch-train: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	// Reject unknown workloads before generating materials; curricula exist
	// for the two-resource Table III scenarios only.
	if sp, err := scenario.ByName(*wl); err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(2)
	} else if sp.Power || sp.IsVariant() {
		fmt.Fprintf(os.Stderr, "mrsch-train: -workload %s: train on a Table III base scenario (S1-S5); power and theta-variant cells reuse their family's model\n", *wl)
		os.Exit(2)
	}

	sc.RolloutWorkers = *parallel
	sc.Pipelined = *pipeline
	sc.CheckpointDir = *checkpoint
	sc.CheckpointEvery = *checkpointEvery
	sc.Resume = *resume

	// Telemetry is observe-only (rollout doc rule 11): wiring it cannot
	// perturb the run, so both knobs are plain opt-ins.
	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		tsrv, err := telemetry.ListenAndServe(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-train: -telemetry-addr: %v\n", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		logger.Event("telemetry", "addr", tsrv.Addr())
		sc.Metrics = reg
	}
	if *journalPath != "" {
		j, err := telemetry.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrsch-train: -journal: %v\n", err)
			os.Exit(1)
		}
		defer j.Close()
		sc.Journal = j
	}
	resumedAt := 0
	sc.OnCheckpoint = func(action string, episodes int) {
		if action == "resume" {
			resumedAt = episodes
			fmt.Printf("resumed from checkpoint: %d episode(s) already trained\n", episodes)
		}
	}

	mode := "barrier"
	if sc.Pipelined {
		mode = "pipelined"
	}
	m, err := experiments.Prepare(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("training MRSch on %s (scale %s: Theta/%d, %d sets x %d jobs per kind, %d rollout workers, %s)\n",
		*wl, sc.Name, sc.Div, sc.SetsPerKind, sc.SetSize, rollout.ResolveWorkers(sc.RolloutWorkers), mode)
	var agent *core.MRSch
	var results []core.EpisodeResult
	if *validate {
		var best core.ValidationMetrics
		agent, results, best, err = experiments.TrainMRSchValidated(m, *wl)
		if err == nil {
			fmt.Printf("best validation score %.4f (mean utilization), wait %.2f h, slowdown %.2f\n",
				best.Score, best.AvgWaitSec/3600, best.AvgSlowdown)
		}
	} else {
		agent, results, err = experiments.TrainMRSch(m, *wl, *cnn)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	for i, r := range results {
		fmt.Printf("  episode %2d [%s] loss=%.4f eps=%.3f\n", resumedAt+i+1, r.Set, r.Loss, r.Epsilon)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("mrsch-%s.model", *wl)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := agent.Save(f); err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("saved weights to %s (%d parameters)\n", path, agent.Agent.NumParams())
}
