// Command mrsch-train curriculum-trains an MRSch agent for a Table III
// workload (§III-D: sampled -> real -> synthetic job sets) and saves the
// network weights for later use by mrsch-sim.
//
// Usage:
//
//	mrsch-train -workload S4 [-scale quick|standard] [-parallel 4] [-out mrsch-s4.model]
//
// -parallel N collects training episodes from N simulator environments
// concurrently (0 = all CPU cores) through the internal/rollout harness;
// results are bitwise reproducible for any fixed N (see the rollout package
// documentation for the determinism contract).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rollout"
)

func main() {
	wl := flag.String("workload", "S1", "Table III workload (S1-S5)")
	scaleFlag := flag.String("scale", "quick", "training scale: quick or standard")
	out := flag.String("out", "", "weights output file (default mrsch-<workload>.model)")
	cnn := flag.Bool("cnn", false, "use the CNN state module (Figure 3 ablation)")
	validate := flag.Bool("validate", false, "keep the best weights by validation score (§IV-A protocol)")
	parallel := flag.Int("parallel", 1, "parallel rollout environments (0 = all CPU cores)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "standard":
		sc = experiments.StandardScale()
	default:
		fmt.Fprintf(os.Stderr, "mrsch-train: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	sc.RolloutWorkers = *parallel

	m := experiments.Prepare(sc)
	fmt.Printf("training MRSch on %s (scale %s: Theta/%d, %d sets x %d jobs per kind, %d rollout workers)\n",
		*wl, sc.Name, sc.Div, sc.SetsPerKind, sc.SetSize, rollout.ResolveWorkers(sc.RolloutWorkers))
	var agent *core.MRSch
	var results []core.EpisodeResult
	var err error
	if *validate {
		var best core.ValidationMetrics
		agent, results, best, err = experiments.TrainMRSchValidated(m, *wl)
		if err == nil {
			fmt.Printf("best validation score %.4f (mean utilization), wait %.2f h, slowdown %.2f\n",
				best.Score, best.AvgWaitSec/3600, best.AvgSlowdown)
		}
	} else {
		agent, results, err = experiments.TrainMRSch(m, *wl, *cnn)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	for i, r := range results {
		fmt.Printf("  episode %2d [%s] loss=%.4f eps=%.3f\n", i+1, r.Set, r.Loss, r.Epsilon)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("mrsch-%s.model", *wl)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := agent.Save(f); err != nil {
		fmt.Fprintf(os.Stderr, "mrsch-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("saved weights to %s (%d parameters)\n", path, agent.Agent.NumParams())
}
