// Package repro is a from-scratch Go reproduction of "MRSch: Multi-Resource
// Scheduling for HPC" (Li et al., IEEE CLUSTER 2022).
//
// The implementation lives under internal/: the neural-network substrate
// (nn), the Direct Future Prediction algorithm (dfp), the MRSch agent
// (core), the CQSim-equivalent event-driven simulator (sim), the scheduling
// framework with window-based reservation and EASY backfilling (sched), the
// comparison baselines (ga, rl), the workload generators (workload), the
// evaluation metrics (metrics), and the figure-regeneration harness
// (experiments). Executables are under cmd/, runnable walkthroughs under
// examples/, and the benchmark harness that regenerates every figure of the
// paper's evaluation is bench_test.go in this directory.
//
// # Performance engine
//
// The learning hot path is a zero-steady-state-allocation batched engine:
//
//   - Inference: dfp.Agent.Act runs the full forward pass (three input
//     modules, dueling streams, goal scoring) through agent-owned scratch
//     buffers — 0 heap allocations per decision. BenchmarkDecisionLatency
//     measures the paper's §V-F full-scale network (11410 inputs,
//     4000/1000/512 widths) at ~39 ms per decision on one 2.7 GHz core
//     against the paper's reported < 2 s.
//
//   - Training: dfp.Agent.TrainStep gathers each minibatch into row-major
//     matrices and drives the nn package's cache-blocked batch kernels once
//     per shard instead of once per sample, backpropagates the dueling
//     action stream sparsely (only the taken action's slice, with a
//     rank-collapsed mean correction), and shards the batch across
//     dfp.Config.Workers goroutines with per-worker gradients reduced in
//     fixed order — bitwise deterministic for any fixed worker count. The
//     pre-refactor scalar path is retained as TrainStepReference and
//     equivalence-tested against the engine to ≤1e-12.
//
// Benchmarks live in bench_test.go (BenchmarkTrainStep*, BenchmarkAct*,
// BenchmarkDecisionLatency); BENCH_dfp.json records the current snapshot
// against the seed baseline, and ROADMAP.md's Performance section describes
// the methodology.
package repro
