// Package repro is a from-scratch Go reproduction of "MRSch: Multi-Resource
// Scheduling for HPC" (Li et al., IEEE CLUSTER 2022).
//
// The implementation lives under internal/: the neural-network substrate
// (nn), the Direct Future Prediction algorithm (dfp), the MRSch agent
// (core), the CQSim-equivalent event-driven simulator (sim), the scheduling
// framework with window-based reservation and EASY backfilling (sched), the
// comparison baselines (ga, rl), the workload generators (workload), the
// evaluation metrics (metrics), and the figure-regeneration harness
// (experiments). Executables are under cmd/, runnable walkthroughs under
// examples/, and the benchmark harness that regenerates every figure of the
// paper's evaluation is bench_test.go in this directory.
package repro
