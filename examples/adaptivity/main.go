// Adaptivity: watch MRSch's dynamic resource prioritizing (Figures 8 and 9).
//
// Runs a trained agent on the burst-buffer-heavy S5 workload and prints the
// Eq. (1) goal-vector value for the burst buffer (r_BB) as the simulation
// progresses, followed by its box statistics on every Table III workload.
// A scalar-reward RL scheduler would hold r_BB fixed at 0.5; MRSch raises it
// when pending burst-buffer demand outweighs CPU demand and lowers it when
// the pressure drains.
//
// Run with:
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
)

func main() {
	sc := experiments.QuickScale()
	sc.Div = 48
	sc.TraceDuration = 0.5 * 86400
	sc.SetsPerKind = 3
	sc.SetSize = 50
	c, err := experiments.NewCampaign(sc)
	if err != nil {
		log.Fatal(err)
	}

	samples, err := experiments.Figure8(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("r_BB over time under S5 (each bar is one scheduling decision):")
	fmt.Println()
	step := len(samples) / 24
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(samples); i += step {
		s := samples[i]
		bar := strings.Repeat("#", int(s.RBB*40))
		fmt.Printf("  %6.2fh  %.3f  %s\n", s.T/3600, s.RBB, bar)
	}

	fmt.Println()
	rows, err := experiments.Figure9(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("r_BB distribution per workload (Figure 9):")
	fmt.Printf("  %-4s %8s %8s %8s %8s %8s %8s\n", "", "min", "q1", "median", "q3", "max", "mean")
	for _, r := range rows {
		s := r.Stats
		fmt.Printf("  %-4s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.Workload, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
	}
	fmt.Println()
	fmt.Println("The scalar-RL baseline would sit at 0.500 on every row; the rising")
	fmt.Println("mean from S1 to S5 is the dynamic prioritizing of §III-B at work.")
}
