// Figure 1: the paper's motivating example (§I).
//
// Four one-hour jobs contend for two resources on an empty system. A method
// that fixes the priority of each resource (equal weights) greedily packs
// the "heaviest" jobs first and needs three hours; the ideal complementary
// pairing — {J1,J3} then {J2,J4} — finishes in two. MRSch's dynamic resource
// prioritizing exists precisely to escape this trap.
//
// Run with:
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Figure 1 — why fixed per-resource priorities fail")
	fmt.Println()
	fmt.Println("  job   demand A   demand B")
	fmt.Println("  J1       55%        10%")
	fmt.Println("  J2       50%        40%")
	fmt.Println("  J3       40%        60%")
	fmt.Println("  J4       50%        10%")
	fmt.Println()

	r, err := experiments.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fixed-weight greedy schedule: %.0f hours ({J3,J2} -> {J1} -> {J4})\n", r.FixedWeightMakespanH)
	fmt.Printf("  ideal packing:                %.0f hours ({J1,J3} -> {J2,J4})\n", r.OptimalMakespanH)
	fmt.Println()
	fmt.Println("Statically weighting multiple resources wastes an hour on this tiny")
	fmt.Println("queue; MRSch adjusts the goal vector (Eq. 1) to avoid such traps.")
}
