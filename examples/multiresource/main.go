// Multi-resource comparison: the paper's §V-C experiment in miniature.
//
// Replays one Table III workload (default S4: 75% of jobs request 20-285 TB
// of burst buffer) through all four scheduling methods — MRSch, the
// multi-objective GA ("Optimization"), the fixed-weight policy gradient
// ("Scalar RL"), and FCFS ("Heuristic") — and prints the Figure 5/6 metrics
// plus the Figure 7 Kiviat areas.
//
// Run with:
//
//	go run ./examples/multiresource [-workload S1..S5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	wl := flag.String("workload", "S4", "Table III workload (S1-S5)")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.Div = 48 // a bit smaller than the benchmark scale: this is a demo
	sc.TraceDuration = 0.5 * 86400
	sc.SetsPerKind = 3
	sc.SetSize = 50

	fmt.Printf("comparing 4 methods on %s (Theta/%d, %.1f-day trace)\n\n", *wl, sc.Div, sc.TraceDuration/86400)
	c, err := experiments.NewCampaign(sc)
	if err != nil {
		log.Fatal(err)
	}
	sys := sc.System()
	jobs := c.M.Workload(*wl)

	var reports []metrics.Report
	add := func(r metrics.Report, err error) {
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, r)
	}

	agent, err := c.MRSchAgent(*wl, false, false)
	if err != nil {
		log.Fatal(err)
	}
	add(experiments.Evaluate(sys, agent.Policy(), jobs, experiments.MethodMRSch, *wl, -1))

	gaPolicy := sched.NewWindowPolicy(experiments.NewGA(sc.Seed+29), sc.Window)
	add(experiments.Evaluate(sys, gaPolicy, jobs, experiments.MethodOptimize, *wl, -1))

	rlAgent, err := experiments.TrainScalarRL(c.M, *wl, sys, false)
	if err != nil {
		log.Fatal(err)
	}
	add(experiments.Evaluate(sys, rlAgent.Policy(), jobs, experiments.MethodScalarRL, *wl, -1))

	add(experiments.Evaluate(sys, experiments.FCFSPolicy(sc.Window), jobs, experiments.MethodHeuristic, *wl, -1))

	fmt.Println("           method   node-util    bb-util   avg-wait   slowdown   kiviat-area")
	areas := experiments.OverallScore(reports, false)
	for i, rep := range reports {
		fmt.Printf("%17s   %8.1f%%  %8.1f%%  %7.2f h  %9.2f  %12.3f\n",
			rep.Method, rep.Utilization[0]*100, rep.Utilization[1]*100,
			rep.AvgWaitHours(), rep.AvgSlowdown, areas[i])
	}
	fmt.Println()
	fmt.Println("(larger Kiviat area = better overall, as in Figure 7)")
}
