// Power-capped scheduling: the §V-E case study with three resources.
//
// Extends the machine with a power budget (1 kW units, scaled from Theta's
// 500 kW), gives every job a power profile of 100-215 W per node, and
// compares MRSch against FCFS on an S9-style workload (the power-extended
// S4). The goal vector now has three entries — node, burst-buffer, and power
// priorities — and MRSch rebalances them as contention shifts.
//
// Run with:
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	sc := experiments.QuickScale()
	sc.Div = 48
	sc.TraceDuration = 0.5 * 86400
	sc.SetsPerKind = 3
	sc.SetSize = 50

	psys := sc.PowerSystem()
	fmt.Printf("three-resource system: %d nodes, %d TB burst buffer, %d kW power budget\n\n",
		psys.Capacities[0], psys.Capacities[1], psys.Capacities[2])

	c, err := experiments.NewCampaign(sc)
	if err != nil {
		log.Fatal(err)
	}
	jobs := c.M.PowerWorkload("S9")

	agent, err := c.MRSchAgent("S9", false, true)
	if err != nil {
		log.Fatal(err)
	}
	mrsch, err := experiments.Evaluate(psys, agent.Policy(), jobs, experiments.MethodMRSch, "S9", 2)
	if err != nil {
		log.Fatal(err)
	}
	fcfs, err := experiments.Evaluate(psys, experiments.FCFSPolicy(sc.Window), jobs, experiments.MethodHeuristic, "S9", 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("    method   node-util    bb-util   avg power   avg-wait   slowdown")
	printRow := func(r metrics.Report) {
		fmt.Printf("%10s   %8.1f%%  %8.1f%%  %7.1f kW  %7.2f h  %9.2f\n",
			r.Method, r.Utilization[0]*100, r.Utilization[1]*100,
			r.AvgSysPowerKW, r.AvgWaitHours(), r.AvgSlowdown)
	}
	printRow(mrsch)
	printRow(fcfs)
	fmt.Println()
	fmt.Println("The site objective of §V-E is to maximize node and burst-buffer")
	fmt.Println("utilization and the power consumption of running jobs within the")
	fmt.Println("budget; MRSch extends to R resources by adding measurement and goal")
	fmt.Println("entries, with no structural change.")
}
