// Quickstart: simulate a small multi-resource cluster under two schedulers.
//
// This example builds a 64-node machine with a 24 TB burst buffer, generates
// a few hours of synthetic jobs with burst-buffer requests, and replays them
// through the FCFS heuristic and through an MRSch agent trained for a few
// quick episodes, printing the paper's four evaluation metrics for each.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	// 1. Describe the machine: every resource is a pool of units.
	sys := cluster.Config{
		Name:       "demo",
		Resources:  []string{"nodes", "bb_tb"},
		Capacities: []int{64, 24},
	}

	// 2. Generate a workload: a synthetic Theta-like arrival stream with
	//    Darshan-style burst-buffer requests, then the Table III "S4"
	//    transformation (75% of jobs request a large burst-buffer share).
	gen := workload.GeneratorConfig{System: sys, Duration: 8 * 3600, MeanInterarrival: 60, Seed: 7}
	base := workload.GenerateBase(gen)
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], 8)
	s4, err := workload.ScenarioByName("S4")
	if err != nil {
		log.Fatal(err)
	}
	jobs := workload.Apply(base, pool, s4, sys, 9)
	fmt.Printf("workload: %d jobs over 8 hours on %d nodes / %d TB burst buffer\n\n",
		len(jobs), sys.Capacities[0], sys.Capacities[1])

	// 3. Baseline: FCFS with EASY backfilling (the paper's Heuristic).
	fcfs, err := experiments.Evaluate(sys, experiments.FCFSPolicy(10), jobs, "Heuristic", "S4", -1)
	if err != nil {
		log.Fatal(err)
	}

	// 4. MRSch: train a compact agent for a handful of episodes on sampled
	//    job sets, then evaluate greedily.
	agent := core.New(sys, core.Options{
		Window: 10,
		Seed:   1,
		Mutate: func(c *dfp.Config) {
			c.EpsDecay = 0.7 // short demo: reach exploitation quickly
			c.Offsets = []int{1, 2, 4, 8}
			c.TemporalWeights = []float64{0, 0.5, 0.5, 1}
		},
	})
	for episode := 0; episode < 8; episode++ {
		sets := workload.SampledSets(jobs, 1, 40, int64(100+episode))
		train := workload.Apply(sets[0], pool, s4, sys, int64(200+episode))
		res, err := core.TrainEpisode(agent, core.TrainConfig{System: sys, StepsPerEpisode: 16},
			core.JobSet{Kind: core.Sampled, Jobs: train})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("training episode %d: loss=%.4f epsilon=%.2f\n", episode+1, res.Loss, res.Epsilon)
	}
	fmt.Println()
	mrsch, err := experiments.Evaluate(sys, agent.Policy(), jobs, "MRSch", "S4", -1)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare the four §IV-B metrics.
	fmt.Println("            method   node-util    bb-util   avg-wait   avg-slowdown")
	printRow := func(name string, r metrics.Report) {
		fmt.Printf("%18s   %8.1f%%  %8.1f%%  %7.2f h  %12.2f\n",
			name, r.Utilization[0]*100, r.Utilization[1]*100, r.AvgWaitHours(), r.AvgSlowdown)
	}
	printRow("Heuristic (FCFS)", fcfs)
	printRow("MRSch", mrsch)
}
