// Integration tests: end-to-end flows across packages, mirroring how a
// downstream user would assemble the library (trace IO -> workload
// transformation -> simulation -> metrics -> agent persistence).
package repro_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPipelineTraceToMetrics drives the whole stack: generate, persist,
// reload, transform, simulate under every built-in picker, and collect
// metrics — asserting cross-cutting invariants at each stage.
func TestPipelineTraceToMetrics(t *testing.T) {
	sys := workload.ThetaScaled(64)
	base := workload.GenerateBase(workload.GeneratorConfig{
		System: sys, Duration: 0.3 * 86400, MeanInterarrival: 180, Seed: 101,
	})
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], 102)
	s4, err := workload.ScenarioByName("S4")
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.Apply(base, pool, s4, sys, 103)

	// Round-trip through the on-disk trace format.
	dir := t.TempDir()
	path := filepath.Join(dir, "s4.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.WriteTrace(f, jobs, sys.Resources); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := job.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(jobs) {
		t.Fatalf("trace round trip lost jobs: %d vs %d", len(reloaded), len(jobs))
	}

	// Simulate under every picker; identical workloads, independent sims.
	pickers := map[string]sched.Picker{
		"fcfs":    sched.FCFS{},
		"tetris":  sched.Tetris{},
		"sjf":     sched.SJF{},
		"largest": sched.LargestFirst{},
		"ga":      experiments.NewGA(1),
	}
	for name, p := range pickers {
		s := sim.New(sys, sched.NewWindowPolicy(p, 10))
		if err := s.Load(job.CloneAll(reloaded)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := metrics.Collect(name, "S4", s, -1)
		if rep.Jobs != len(reloaded) {
			t.Fatalf("%s finished %d of %d jobs", name, rep.Jobs, len(reloaded))
		}
		if rep.AvgSlowdown < 1 || math.IsNaN(rep.AvgSlowdown) {
			t.Fatalf("%s slowdown %v", name, rep.AvgSlowdown)
		}
		for r, u := range rep.Utilization {
			if u < 0 || u > 1 {
				t.Fatalf("%s resource %d utilization %v", name, r, u)
			}
		}
	}
}

// TestPipelineSWFImport feeds an SWF-exported trace back through the
// Darshan assignment and a simulation — the real-log path a Theta operator
// would take.
func TestPipelineSWFImport(t *testing.T) {
	sys := workload.ThetaScaled(64)
	base := workload.GenerateBase(workload.GeneratorConfig{
		System: sys, Duration: 0.2 * 86400, MeanInterarrival: 200, Seed: 201,
	})
	var buf bytes.Buffer
	if err := job.WriteSWF(&buf, base, job.SWFOptions{ProcsPerNode: 1}); err != nil {
		t.Fatal(err)
	}
	imported, skipped, err := job.ReadSWF(&buf, job.SWFOptions{ProcsPerNode: 1, Resources: 2})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(imported) != len(base) {
		t.Fatalf("SWF round trip: %d jobs (%d skipped), want %d", len(imported), skipped, len(base))
	}
	workload.AssignDarshanBB(imported, sys.Capacities[1], 202)
	s := sim.New(sys, sched.NewWindowPolicy(sched.FCFS{}, 10))
	if err := s.Load(imported); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.Finished()) != len(imported) {
		t.Fatal("SWF-imported workload did not complete")
	}
}

// TestPipelineAgentPersistence trains briefly, saves, reloads into a fresh
// agent, and verifies identical behaviour on the test workload.
func TestPipelineAgentPersistence(t *testing.T) {
	sys := workload.ThetaScaled(64)
	opts := core.Options{
		Window: 6,
		Seed:   5,
		Mutate: func(c *dfp.Config) {
			c.StateHidden = []int{32}
			c.StateOut = 16
			c.ModuleHidden = 8
			c.StreamHidden = 16
			c.Offsets = []int{1, 2, 4}
			c.TemporalWeights = []float64{0, 0.5, 1}
			c.EpsDecay = 0.6
		},
	}
	agent := core.New(sys, opts)

	base := workload.GenerateBase(workload.GeneratorConfig{
		System: sys, Duration: 0.15 * 86400, MeanInterarrival: 150, Seed: 301,
	})
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], 302)
	s2, _ := workload.ScenarioByName("S2")
	train := workload.Apply(base, pool, s2, sys, 303)
	if _, err := core.TrainEpisode(agent, core.TrainConfig{System: sys, StepsPerEpisode: 8},
		core.JobSet{Kind: core.Sampled, Jobs: train}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := core.New(sys, opts)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}

	run := func(m *core.MRSch) []float64 {
		s := sim.New(sys, m.Policy())
		if err := s.Load(job.CloneAll(train)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		starts := make([]float64, 0, len(s.Finished()))
		for _, j := range s.Finished() {
			starts = append(starts, j.Start)
		}
		return starts
	}
	a, b := run(agent), run(restored)
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at job %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPipelineThreeResourceEndToEnd exercises the §V-E path: power-extended
// system, power workload, power-aware metrics.
func TestPipelineThreeResourceEndToEnd(t *testing.T) {
	sys := workload.WithPower(workload.ThetaScaled(64))
	base := workload.GenerateBase(workload.GeneratorConfig{
		System: sys, Duration: 0.2 * 86400, MeanInterarrival: 200, Seed: 401,
	})
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], 402)
	psc := workload.PowerScenarios()[3] // S9
	jobs := workload.ApplyPower(base, pool, psc, sys, 403)

	s := sim.New(sys, sched.NewWindowPolicy(sched.Tetris{}, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rep := metrics.Collect("tetris", "S9", s, 2)
	if rep.AvgSysPowerKW <= 0 {
		t.Fatal("no power draw recorded")
	}
	if rep.AvgTotalPowerKW <= rep.AvgSysPowerKW {
		t.Fatal("idle power missing from total")
	}
	if rep.AvgSysPowerKW > float64(sys.Capacities[2]) {
		t.Fatalf("average draw %v exceeds the %d kW budget", rep.AvgSysPowerKW, sys.Capacities[2])
	}
}
