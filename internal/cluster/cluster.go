// Package cluster models a multi-resource HPC system: a set of schedulable
// resource pools (compute nodes, burst-buffer capacity, a power budget, ...)
// with unit-granular accounting, allocation/release, look-ahead queries used
// by reservation and EASY backfilling, and the per-unit availability data the
// MRSch state encoding consumes (§III-A of the paper).
package cluster

import (
	"fmt"
	"sort"
)

// Resource identifies a schedulable resource by index. By convention index 0
// is the primary compute resource (nodes).
type Resource int

// Config describes a system: resource names and capacities in units. The
// unit is whatever the administrator chooses (§III-A): a node for CPU, a TB
// for burst buffer, a kW for power.
type Config struct {
	Name       string
	Resources  []string
	Capacities []int
}

// ResourceIndex returns the index of the named resource, or -1 when the
// configuration does not schedule it. Callers use it instead of hard-coding
// positional conventions ("power is index 2") that break as soon as a
// campaign spec reorders or extends the resource set.
func (c Config) ResourceIndex(name string) int {
	for i, r := range c.Resources {
		if r == name {
			return i
		}
	}
	return -1
}

// Validate checks the configuration is usable.
func (c *Config) Validate() error {
	if len(c.Resources) == 0 {
		return fmt.Errorf("cluster: config %q has no resources", c.Name)
	}
	if len(c.Resources) != len(c.Capacities) {
		return fmt.Errorf("cluster: config %q has %d resource names but %d capacities", c.Name, len(c.Resources), len(c.Capacities))
	}
	for i, cap := range c.Capacities {
		if cap <= 0 {
			return fmt.Errorf("cluster: config %q resource %s capacity %d must be positive", c.Name, c.Resources[i], cap)
		}
	}
	return nil
}

// Alloc records one running job's holdings.
type Alloc struct {
	JobID  int
	Demand []int
	// Start is when the job began executing.
	Start float64
	// EstEnd is Start + the user walltime estimate — the completion time a
	// scheduler is allowed to plan with (§III-A).
	EstEnd float64
}

// Cluster is the live state of a multi-resource system.
type Cluster struct {
	cfg    Config
	free   []int
	allocs map[int]*Alloc // keyed by job ID
}

// New creates an idle cluster from cfg. It panics on an invalid config (a
// configuration is program input, not runtime data).
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	free := make([]int, len(cfg.Capacities))
	copy(free, cfg.Capacities)
	return &Cluster{cfg: cfg, free: free, allocs: make(map[int]*Alloc)}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumResources returns the number of schedulable resources.
func (c *Cluster) NumResources() int { return len(c.cfg.Capacities) }

// Capacity returns the total units of resource r.
func (c *Cluster) Capacity(r int) int { return c.cfg.Capacities[r] }

// Free returns the currently free units of resource r.
func (c *Cluster) Free(r int) int { return c.free[r] }

// FreeVec returns a copy of the free-units vector.
func (c *Cluster) FreeVec() []int {
	out := make([]int, len(c.free))
	copy(out, c.free)
	return out
}

// Used returns capacity-free for resource r.
func (c *Cluster) Used(r int) int { return c.cfg.Capacities[r] - c.free[r] }

// Usage returns the used fraction of each resource — the paper's
// measurement vector <Resource A util, Resource B util, ...>.
func (c *Cluster) Usage() []float64 {
	out := make([]float64, len(c.free))
	for r := range out {
		out[r] = float64(c.Used(r)) / float64(c.cfg.Capacities[r])
	}
	return out
}

// CanFit reports whether demand fits in the currently free resources.
func (c *Cluster) CanFit(demand []int) bool {
	if len(demand) != len(c.free) {
		return false
	}
	for r, d := range demand {
		if d > c.free[r] {
			return false
		}
	}
	return true
}

// Allocate reserves demand for jobID from now until an estimated end time.
// It returns an error if the job is already allocated or does not fit.
func (c *Cluster) Allocate(jobID int, demand []int, now, estEnd float64) error {
	if _, ok := c.allocs[jobID]; ok {
		return fmt.Errorf("cluster: job %d already allocated", jobID)
	}
	if len(demand) != len(c.free) {
		return fmt.Errorf("cluster: job %d demand has %d resources, cluster has %d", jobID, len(demand), len(c.free))
	}
	if !c.CanFit(demand) {
		return fmt.Errorf("cluster: job %d demand %v exceeds free %v", jobID, demand, c.free)
	}
	d := make([]int, len(demand))
	copy(d, demand)
	for r, need := range d {
		c.free[r] -= need
	}
	c.allocs[jobID] = &Alloc{JobID: jobID, Demand: d, Start: now, EstEnd: estEnd}
	return nil
}

// Release frees the resources held by jobID.
func (c *Cluster) Release(jobID int) error {
	a, ok := c.allocs[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %d not allocated", jobID)
	}
	for r, d := range a.Demand {
		c.free[r] += d
		if c.free[r] > c.cfg.Capacities[r] {
			return fmt.Errorf("cluster: release of job %d overflowed resource %d", jobID, r)
		}
	}
	delete(c.allocs, jobID)
	return nil
}

// Running returns the live allocations sorted by estimated end time then job
// ID (a deterministic order for look-ahead and encoding).
func (c *Cluster) Running() []*Alloc {
	out := make([]*Alloc, 0, len(c.allocs))
	for _, a := range c.allocs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstEnd != out[j].EstEnd {
			return out[i].EstEnd < out[j].EstEnd
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// NumRunning returns the number of live allocations.
func (c *Cluster) NumRunning() int { return len(c.allocs) }

// Reset returns the cluster to idle.
func (c *Cluster) Reset() {
	copy(c.free, c.cfg.Capacities)
	c.allocs = make(map[int]*Alloc)
}

// EarliestFit returns the earliest time >= now at which demand fits,
// assuming every running job releases its resources at its estimated end
// (walltime-based — the scheduler's view). The second return is the free
// vector at that time. A demand that can never fit (exceeds capacity)
// returns (-1, nil).
func (c *Cluster) EarliestFit(demand []int, now float64) (float64, []int) {
	for r, d := range demand {
		if d > c.cfg.Capacities[r] {
			return -1, nil
		}
	}
	free := c.FreeVec()
	fits := func() bool {
		for r, d := range demand {
			if d > free[r] {
				return false
			}
		}
		return true
	}
	if fits() {
		return now, free
	}
	for _, a := range c.Running() {
		for r, d := range a.Demand {
			free[r] += d
		}
		if fits() {
			t := a.EstEnd
			if t < now {
				t = now
			}
			return t, free
		}
	}
	// All running jobs released and it still doesn't fit: impossible since
	// we checked capacity; defensive fallback.
	return -1, nil
}

// FreeAt returns the projected free vector at time t (>= now), assuming
// estimated-end releases. Used to compute EASY backfilling's shadow free
// resources.
func (c *Cluster) FreeAt(t float64) []int {
	free := c.FreeVec()
	for _, a := range c.allocs {
		if a.EstEnd <= t {
			for r, d := range a.Demand {
				free[r] += d
			}
		}
	}
	return free
}

// CheckInvariants verifies conservation: free + sum(alloc demands) equals
// capacity for every resource. Tests call this after mutation sequences.
func (c *Cluster) CheckInvariants() error {
	for r := range c.free {
		total := c.free[r]
		for _, a := range c.allocs {
			total += a.Demand[r]
		}
		if total != c.cfg.Capacities[r] {
			return fmt.Errorf("cluster: resource %d accounts for %d units, capacity %d", r, total, c.cfg.Capacities[r])
		}
		if c.free[r] < 0 {
			return fmt.Errorf("cluster: resource %d free is negative: %d", r, c.free[r])
		}
	}
	return nil
}
