package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Name: "test", Resources: []string{"nodes", "bb"}, Capacities: []int{100, 40}}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "empty"},
		{Name: "arity", Resources: []string{"a"}, Capacities: []int{1, 2}},
		{Name: "zero", Resources: []string{"a"}, Capacities: []int{0}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("config %q should be invalid", bad[i].Name)
		}
	}
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAllocateRelease(t *testing.T) {
	c := New(testConfig())
	if err := c.Allocate(1, []int{60, 10}, 0, 100); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 40 || c.Free(1) != 30 {
		t.Fatalf("free = %d,%d", c.Free(0), c.Free(1))
	}
	u := c.Usage()
	if u[0] != 0.6 || u[1] != 0.25 {
		t.Fatalf("usage = %v", u)
	}
	// Double allocation of the same job must fail.
	if err := c.Allocate(1, []int{1, 0}, 0, 10); err == nil {
		t.Fatal("duplicate allocation accepted")
	}
	// Oversubscription must fail.
	if err := c.Allocate(2, []int{50, 0}, 0, 10); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if c.Free(0) != 100 || c.Free(1) != 40 {
		t.Fatal("release did not restore resources")
	}
	if err := c.Release(1); err == nil {
		t.Fatal("double release accepted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateDemandCopied(t *testing.T) {
	c := New(testConfig())
	d := []int{10, 5}
	if err := c.Allocate(1, d, 0, 50); err != nil {
		t.Fatal(err)
	}
	d[0] = 999 // caller mutates its slice; cluster must be unaffected
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCanFit(t *testing.T) {
	c := New(testConfig())
	if !c.CanFit([]int{100, 40}) {
		t.Fatal("full-capacity demand should fit on idle cluster")
	}
	if c.CanFit([]int{101, 0}) {
		t.Fatal("over-capacity demand fits")
	}
	if c.CanFit([]int{1}) {
		t.Fatal("wrong-arity demand fits")
	}
}

func TestRunningSorted(t *testing.T) {
	c := New(testConfig())
	_ = c.Allocate(3, []int{1, 0}, 0, 300)
	_ = c.Allocate(1, []int{1, 0}, 0, 100)
	_ = c.Allocate(2, []int{1, 0}, 0, 100)
	run := c.Running()
	if run[0].JobID != 1 || run[1].JobID != 2 || run[2].JobID != 3 {
		t.Fatalf("running order: %d,%d,%d", run[0].JobID, run[1].JobID, run[2].JobID)
	}
}

func TestEarliestFit(t *testing.T) {
	c := New(testConfig())
	_ = c.Allocate(1, []int{80, 0}, 0, 100)
	_ = c.Allocate(2, []int{15, 30}, 0, 200)

	// Fits now.
	at, free := c.EarliestFit([]int{5, 10}, 10)
	if at != 10 || free[0] != 5 {
		t.Fatalf("EarliestFit now: at=%v free=%v", at, free)
	}
	// Needs job 1's release.
	at, free = c.EarliestFit([]int{50, 0}, 10)
	if at != 100 {
		t.Fatalf("EarliestFit after j1: at=%v", at)
	}
	if free[0] != 85 {
		t.Fatalf("free at shadow = %v", free)
	}
	// Needs both releases.
	at, _ = c.EarliestFit([]int{90, 35}, 10)
	if at != 200 {
		t.Fatalf("EarliestFit after j2: at=%v", at)
	}
	// Impossible demand.
	at, _ = c.EarliestFit([]int{101, 0}, 10)
	if at != -1 {
		t.Fatalf("impossible demand: at=%v", at)
	}
}

func TestEarliestFitClampsToNow(t *testing.T) {
	c := New(testConfig())
	_ = c.Allocate(1, []int{100, 0}, 0, 50)
	// Asking at now=80 (> estEnd 50): release already overdue, so earliest is now.
	at, _ := c.EarliestFit([]int{10, 0}, 80)
	if at != 80 {
		t.Fatalf("EarliestFit should clamp to now, got %v", at)
	}
}

func TestFreeAt(t *testing.T) {
	c := New(testConfig())
	_ = c.Allocate(1, []int{30, 10}, 0, 100)
	_ = c.Allocate(2, []int{20, 5}, 0, 200)
	f := c.FreeAt(150)
	if f[0] != 100-20 || f[1] != 40-5 {
		t.Fatalf("FreeAt(150) = %v", f)
	}
	f = c.FreeAt(50)
	if f[0] != 50 {
		t.Fatalf("FreeAt(50) = %v", f)
	}
}

func TestReset(t *testing.T) {
	c := New(testConfig())
	_ = c.Allocate(1, []int{10, 10}, 0, 10)
	c.Reset()
	if c.Free(0) != 100 || c.NumRunning() != 0 {
		t.Fatal("Reset did not restore idle state")
	}
}

// Property: any sequence of feasible allocations and releases conserves
// resources exactly.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		live := []int{}
		nextID := 1
		ops := int(opsRaw)%100 + 10
		for i := 0; i < ops; i++ {
			if rng.Float64() < 0.6 {
				d := []int{rng.Intn(40) + 1, rng.Intn(20)}
				if c.CanFit(d) {
					if err := c.Allocate(nextID, d, float64(i), float64(i+rng.Intn(100)+1)); err != nil {
						return false
					}
					live = append(live, nextID)
					nextID++
				}
			} else if len(live) > 0 {
				k := rng.Intn(len(live))
				if err := c.Release(live[k]); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			}
			if err := c.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: EarliestFit never returns a time earlier than now, and the
// reported free vector admits the demand.
func TestEarliestFitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		for id := 1; id <= 6; id++ {
			d := []int{rng.Intn(30) + 1, rng.Intn(15)}
			if c.CanFit(d) {
				_ = c.Allocate(id, d, 0, float64(rng.Intn(500)+1))
			}
		}
		demand := []int{rng.Intn(100) + 1, rng.Intn(40)}
		now := float64(rng.Intn(100))
		at, free := c.EarliestFit(demand, now)
		if at < 0 {
			return demand[0] > 100 || demand[1] > 40
		}
		if at < now {
			return false
		}
		for r, d := range demand {
			if d > free[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceIndex(t *testing.T) {
	cfg := Config{
		Name:       "t",
		Resources:  []string{"nodes", "bb_tb", "power_kw"},
		Capacities: []int{4, 2, 2},
	}
	for i, name := range cfg.Resources {
		if got := cfg.ResourceIndex(name); got != i {
			t.Fatalf("ResourceIndex(%q) = %d, want %d", name, got, i)
		}
	}
	if got := cfg.ResourceIndex("gpu"); got != -1 {
		t.Fatalf("ResourceIndex(gpu) = %d, want -1", got)
	}
}
