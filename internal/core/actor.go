package core

import (
	"repro/internal/dfp"
	"repro/internal/encode"
	"repro/internal/sched"
)

// MRSchActor is a read-only rollout clone of an MRSch agent: it encodes
// states and computes the Eq. (1) goal vector exactly like the master's Pick,
// but acts through a dfp.Actor whose networks alias the master's weights
// while all mutable state (forward caches, exploration rng, episode record)
// is private. Multiple concurrency-safe actors may roll out episodes in
// parallel against one master, provided the master's weights are not updated
// until the rollouts finish — internal/rollout's round barrier guarantees
// that. Actors do not update LastGoal or invoke GoalHook; those observation
// hooks belong to the master's analysis paths (Figures 8/9).
type MRSchActor struct {
	enc       encode.Config
	ac        *dfp.Actor
	fixedGoal []float64
}

// Actor returns a rollout actor for the agent. The second result reports
// whether the actor is safe to run concurrently with other actors; it is
// false when a custom state module cannot be replicated by nn.SharedClone,
// in which case the actor borrows the master's own layers and must be the
// only one in use.
func (m *MRSch) Actor() (*MRSchActor, bool) {
	ac, parallel := m.Agent.Actor()
	return &MRSchActor{enc: m.Enc, ac: ac, fixedGoal: m.FixedGoal}, parallel
}

// SnapshotActor returns a rollout actor reading the agent's published
// copy-on-write weight snapshot (dfp.Agent.SnapshotActor) rather than the
// live weights, so it may roll out episodes concurrently with TrainStep —
// the contract pipelined training (internal/rollout Config.Pipelined) relies
// on. It reports false when the state module cannot be snapshot-cloned;
// unlike Actor there is no borrow-the-master fallback.
func (m *MRSch) SnapshotActor() (*MRSchActor, bool) {
	ac, ok := m.Agent.SnapshotActor()
	if !ok {
		return nil, false
	}
	return &MRSchActor{enc: m.Enc, ac: ac, fixedGoal: m.FixedGoal}, true
}

// PublishWeights advances the snapshot read by SnapshotActor clones to the
// current live weights. Call only with no snapshot actor mid-rollout.
func (m *MRSch) PublishWeights() { m.Agent.PublishWeights() }

var _ sched.Picker = (*MRSchActor)(nil)

// Reset prepares the actor for one episode: a fresh exploration rng at the
// given seed, the episode's epsilon (see dfp.Config.EpsilonAt), and an empty
// transcript.
func (a *MRSchActor) Reset(seed int64, eps float64) { a.ac.Reset(seed, eps) }

// Pick implements sched.Picker with the master's decision logic in
// exploration mode: encode the state, compute the dynamic goal vector, and
// let the DFP actor choose (and record) a window job.
func (a *MRSchActor) Pick(ctx *sched.PickContext) int {
	state := a.enc.Encode(ctx)
	goal := a.fixedGoal
	if goal == nil {
		goal = GoalVector(ctx)
	}
	return a.ac.Act(state, ctx.Usage, goal, len(ctx.Window))
}

// Policy wraps the actor in the shared window/reservation/backfilling driver
// with the master's window size.
func (a *MRSchActor) Policy() *sched.WindowPolicy {
	return sched.NewWindowPolicy(a, a.enc.Window)
}

// TakeTranscript detaches the episode recorded since the last Reset.
func (a *MRSchActor) TakeTranscript() *dfp.Transcript { return a.ac.TakeTranscript() }

// Ingest folds an actor-collected episode into the agent's replay buffer and
// decays its exploration schedule — the actor-path counterpart of the
// EndEpisode call in TrainEpisode.
func (m *MRSch) Ingest(t *dfp.Transcript) { m.Agent.IngestTranscript(t) }
