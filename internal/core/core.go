package core
