package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dfp"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

func sys() cluster.Config {
	return cluster.Config{Name: "c", Resources: []string{"nodes", "bb"}, Capacities: []int{16, 8}}
}

func mk(id int, submit, wall float64, nodes, bb int) *job.Job {
	return &job.Job{ID: id, Submit: submit, Runtime: wall, Walltime: wall, Demand: []int{nodes, bb}}
}

func tinyOptions(seed int64) Options {
	return Options{
		Window: 4,
		Seed:   seed,
		Mutate: func(c *dfp.Config) {
			c.StateHidden = []int{32}
			c.StateOut = 16
			c.ModuleHidden = 8
			c.StreamHidden = 16
			c.Offsets = []int{1, 2, 4}
			c.TemporalWeights = []float64{0, 0.5, 1}
		},
	}
}

func ctxWith(cl *cluster.Cluster, now float64, queue []*job.Job) *sched.PickContext {
	w := queue
	if len(w) > 4 {
		w = w[:4]
	}
	return &sched.PickContext{Now: now, Window: w, Queue: queue, Cluster: cl, Usage: cl.Usage()}
}

func TestGoalVectorUniformWhenIdle(t *testing.T) {
	cl := cluster.New(sys())
	g := GoalVector(ctxWith(cl, 0, nil))
	if len(g) != 2 || g[0] != 0.5 || g[1] != 0.5 {
		t.Fatalf("idle goal = %v, want uniform", g)
	}
}

func TestGoalVectorKnownValues(t *testing.T) {
	cl := cluster.New(sys())
	// One queued job: 8/16 nodes for 100s => 50; 4/8 bb for 100s => 50.
	queue := []*job.Job{mk(1, 0, 100, 8, 4)}
	g := GoalVector(ctxWith(cl, 0, queue))
	if math.Abs(g[0]-0.5) > 1e-12 || math.Abs(g[1]-0.5) > 1e-12 {
		t.Fatalf("balanced goal = %v", g)
	}
	// BB-heavy job: nodes 1/16*100 = 6.25; bb 8/8*100 = 100.
	queue = []*job.Job{mk(2, 0, 100, 1, 8)}
	g = GoalVector(ctxWith(cl, 0, queue))
	if g[1] <= g[0] {
		t.Fatalf("bb contention should dominate: %v", g)
	}
	want1 := 100.0 / (100.0 + 6.25)
	if math.Abs(g[1]-want1) > 1e-9 {
		t.Fatalf("g[1] = %v, want %v", g[1], want1)
	}
}

func TestGoalVectorIncludesRunningJobs(t *testing.T) {
	cl := cluster.New(sys())
	// Running job holds all BB with 50s remaining.
	if err := cl.Allocate(9, []int{1, 8}, 0, 50); err != nil {
		t.Fatal(err)
	}
	g := GoalVector(ctxWith(cl, 0, nil))
	if g[1] <= g[0] {
		t.Fatalf("running bb demand ignored: %v", g)
	}
	// After the estimate expires, remaining clamps to 0 -> uniform fallback.
	g = GoalVector(ctxWith(cl, 100, nil))
	if g[0] != 0.5 {
		t.Fatalf("overdue running job should contribute nothing: %v", g)
	}
}

// Property: the goal vector is always a probability simplex.
func TestGoalVectorSimplexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := cluster.New(sys())
		now := float64(rng.Intn(1000))
		for id := 1; id <= rng.Intn(5); id++ {
			d := []int{rng.Intn(8) + 1, rng.Intn(6)}
			if cl.CanFit(d) {
				_ = cl.Allocate(id, d, now, now+float64(rng.Intn(2000)))
			}
		}
		var queue []*job.Job
		for i := 0; i < rng.Intn(6); i++ {
			queue = append(queue, mk(100+i, now, float64(rng.Intn(5000)+1), rng.Intn(16)+1, rng.Intn(9)))
		}
		g := GoalVector(ctxWith(cl, now, queue))
		sum := 0.0
		for _, v := range g {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMRSchPickRecordsGoal(t *testing.T) {
	m := New(sys(), tinyOptions(5))
	cl := cluster.New(sys())
	queue := []*job.Job{mk(1, 0, 100, 2, 1), mk(2, 0, 100, 4, 2)}
	var hookGoals [][]float64
	m.GoalHook = func(now float64, g []float64) { hookGoals = append(hookGoals, g) }
	pick := m.Pick(ctxWith(cl, 0, queue))
	if pick < 0 || pick >= 2 {
		t.Fatalf("pick = %d out of window", pick)
	}
	if m.LastGoal == nil || len(hookGoals) != 1 {
		t.Fatal("goal not recorded")
	}
}

func TestMRSchEndToEndSimulation(t *testing.T) {
	// An untrained agent must still schedule every job (the framework
	// guarantees progress via reservation + backfilling).
	m := New(sys(), tinyOptions(7))
	rng := rand.New(rand.NewSource(3))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 40; i++ {
		clk += float64(rng.Intn(60))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(500)+10), rng.Intn(16)+1, rng.Intn(9)))
	}
	s := sim.New(sys(), m.Policy())
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State != job.Finished {
			t.Fatalf("job %d not finished", j.ID)
		}
	}
}

func TestTrainEpisodeAccumulatesExperienceAndLoss(t *testing.T) {
	m := New(sys(), tinyOptions(11))
	rng := rand.New(rand.NewSource(4))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 30; i++ {
		clk += float64(rng.Intn(40))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(300)+10), rng.Intn(12)+1, rng.Intn(7)))
	}
	cfg := TrainConfig{System: sys(), StepsPerEpisode: 4}
	res, err := TrainEpisode(m, cfg, JobSet{Kind: Sampled, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if m.Agent.ReplaySize() == 0 {
		t.Fatal("no experiences recorded")
	}
	if res.Loss < 0 {
		t.Fatal("no training happened")
	}
	if res.Epsilon >= 1.0 {
		t.Fatal("epsilon did not decay")
	}
	if m.Train {
		t.Fatal("Train flag must be reset after the episode")
	}
}

func TestTrainCurriculumRunsAllSets(t *testing.T) {
	m := New(sys(), tinyOptions(13))
	rng := rand.New(rand.NewSource(5))
	mkSet := func(kind JobSetKind) JobSet {
		var jobs []*job.Job
		clk := 0.0
		for i := 1; i <= 15; i++ {
			clk += float64(rng.Intn(40))
			jobs = append(jobs, mk(i, clk, float64(rng.Intn(200)+10), rng.Intn(10)+1, rng.Intn(5)))
		}
		return JobSet{Kind: kind, Jobs: jobs}
	}
	sets := []JobSet{mkSet(Sampled), mkSet(Real), mkSet(Synthetic)}
	results, err := TrainCurriculum(m, TrainConfig{System: sys(), StepsPerEpisode: 2}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Set != Sampled || results[2].Set != Synthetic {
		t.Fatal("set kinds not preserved in order")
	}
}

func TestSaveLoadPreservesDecisions(t *testing.T) {
	m := New(sys(), tinyOptions(17))
	cl := cluster.New(sys())
	queue := []*job.Job{mk(1, 0, 100, 2, 1), mk(2, 0, 50, 8, 4), mk(3, 0, 10, 1, 0)}
	want := m.Pick(ctxWith(cl, 0, queue))

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(sys(), tinyOptions(999))
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := m2.Pick(ctxWith(cl, 0, queue)); got != want {
		t.Fatalf("restored agent picked %d, original %d", got, want)
	}
}

func TestJobSetKindString(t *testing.T) {
	if Sampled.String() != "Sampled" || Real.String() != "Real" || Synthetic.String() != "Synthetic" {
		t.Fatal("kind strings wrong")
	}
}

func TestNewDefaultWindow(t *testing.T) {
	m := New(sys(), Options{Seed: 1, Mutate: func(c *dfp.Config) {
		c.StateHidden = []int{16}
		c.StateOut = 8
		c.ModuleHidden = 4
		c.StreamHidden = 8
	}})
	if m.Enc.Window != 10 {
		t.Fatalf("default window = %d, want 10 (paper)", m.Enc.Window)
	}
}
