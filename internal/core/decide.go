package core

import (
	"repro/internal/dfp"
	"repro/internal/encode"
	"repro/internal/sched"
)

// BatchDecider mirrors Pick for a batch of decision contexts, reading the
// agent's published weight snapshot instead of the live weights. It encodes
// each context, computes its Eq. (1) goal vector (or the agent's FixedGoal),
// and selects all actions in one batched greedy forward pass
// (dfp.BatchDecider). Row i's decision is byte-identical to
// m.Pick(ctxs[i]) with Train=false for the same published weights, at any
// batch size — the decision-service equivalence contract. Not safe for
// concurrent use; internal/serve pools deciders under its reader lock.
type BatchDecider struct {
	enc       encode.Config
	bd        *dfp.BatchDecider
	fixedGoal []float64

	states, meas, goals [][]float64
	valid               []int
}

// BatchDecider returns a batched snapshot-reading decider for the agent
// (materializing the weight snapshot from the current live weights on first
// use). It reports false when the agent's state module cannot be
// snapshot-cloned, like dfp.Agent.SnapshotDecider.
func (m *MRSch) BatchDecider() (*BatchDecider, bool) {
	bd, ok := m.Agent.SnapshotDecider()
	if !ok {
		return nil, false
	}
	return &BatchDecider{enc: m.Enc, bd: bd, fixedGoal: m.FixedGoal}, true
}

// Decide picks one window job per context, writing into dst (grown as
// needed).
func (d *BatchDecider) Decide(ctxs []*sched.PickContext, dst []int) []int {
	b := len(ctxs)
	if cap(d.states) < b {
		d.states = make([][]float64, b)
		d.meas = make([][]float64, b)
		d.goals = make([][]float64, b)
		d.valid = make([]int, b)
	}
	d.states, d.meas, d.goals, d.valid = d.states[:b], d.meas[:b], d.goals[:b], d.valid[:b]
	for i, ctx := range ctxs {
		d.states[i] = d.enc.Encode(ctx)
		d.meas[i] = ctx.Usage
		if d.fixedGoal != nil {
			d.goals[i] = d.fixedGoal
		} else {
			d.goals[i] = GoalVector(ctx)
		}
		d.valid[i] = len(ctx.Window)
	}
	return d.bd.DecideBatch(d.states, d.meas, d.goals, d.valid, dst)
}
