package core

import (
	"repro/internal/sched"
)

// GoalVector computes the dynamic resource priorities of Eq. (1):
//
//	r_j = sum_i P_ij * t_i / sum_j sum_i P_ij * t_i
//
// over all jobs in the system — queued jobs contribute their full
// user-supplied runtime estimate, running jobs their remaining estimate —
// where P_ij is job i's demand for resource j as a fraction of capacity.
// The value r_j is the normalized time it would take to drain all pending
// demand for resource j at full utilization: the fiercer the contention for
// a resource, the larger its weight (§III-B).
//
// The result is a probability simplex (non-negative, sums to 1); with no
// load at all it falls back to uniform weights.
func GoalVector(ctx *sched.PickContext) []float64 {
	r := ctx.Cluster.NumResources()
	acc := make([]float64, r)

	for _, j := range ctx.Queue {
		for res := 0; res < r; res++ {
			p := float64(j.Demand[res]) / float64(ctx.Cluster.Capacity(res))
			acc[res] += p * j.Walltime
		}
	}
	for _, a := range ctx.Cluster.Running() {
		remaining := a.EstEnd - ctx.Now
		if remaining < 0 {
			remaining = 0
		}
		for res := 0; res < r; res++ {
			p := float64(a.Demand[res]) / float64(ctx.Cluster.Capacity(res))
			acc[res] += p * remaining
		}
	}

	var total float64
	for _, v := range acc {
		total += v
	}
	if total <= 0 {
		uniform := make([]float64, r)
		for i := range uniform {
			uniform[i] = 1 / float64(r)
		}
		return uniform
	}
	for i := range acc {
		acc[i] /= total
	}
	return acc
}
