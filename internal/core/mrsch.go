// Package core implements MRSch, the paper's intelligent multi-resource
// scheduling agent (§III): the DFP-based decision network, the vector state
// encoding, dynamic resource prioritizing via the Eq. (1) goal vector, and
// the training strategy of §III-D. It plugs into the shared scheduling
// framework (window + reservation + EASY backfilling) as a sched.Picker.
package core

import (
	"io"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/dfp"
	"repro/internal/encode"
	"repro/internal/nn"
	"repro/internal/sched"
)

// MRSch is the scheduling agent. Between decisions it keeps the most recent
// goal vector so experiments can observe dynamic resource prioritizing
// (Figures 8 and 9).
type MRSch struct {
	Enc   encode.Config
	Agent *dfp.Agent

	// Train switches the agent to epsilon-greedy exploration with episode
	// recording.
	Train bool

	// FixedGoal, when non-nil, replaces the Eq. (1) dynamic goal vector
	// with a static one — the ablation that reduces MRSch to a fixed-
	// priority multi-objective agent (what Figure 9 contrasts against the
	// scalar-RL's implicit fixed 0.5/0.5).
	FixedGoal []float64

	// LastGoal is the goal vector used at the most recent pick.
	LastGoal []float64

	// GoalHook, when set, observes every computed goal vector with its
	// decision time (the sampling mechanism behind Figures 8/9).
	GoalHook func(now float64, goal []float64)
}

// Options tune the agent's construction beyond the defaults.
type Options struct {
	// Window is W (default 10, the paper's setting).
	Window int
	// UseCNN selects the convolutional state module (Figure 3 ablation).
	UseCNN bool
	// PerResourceNets builds one state sub-network per resource, each
	// seeing the job window plus its own resource's units — the §III-A
	// design alternative MRSch rejects (job information is encoded R times
	// and parameters fragment). Provided for the ablation benchmark.
	PerResourceNets bool
	// Seed fixes all stochastic behaviour of the agent.
	Seed int64
	// PaperScale selects the full-size §IV-C network (4000/1000/512).
	PaperScale bool
	// Workers shards each training minibatch across this many goroutines
	// (see dfp.Config.Workers); 0 uses all available cores, 1 forces the
	// single-threaded deterministic path.
	Workers int
	// Mutate, when non-nil, receives the dfp.Config before the agent is
	// built, for fine-grained overrides in tests and experiments.
	Mutate func(*dfp.Config)
}

// New constructs an MRSch agent for the given system.
func New(sys cluster.Config, opts Options) *MRSch {
	w := opts.Window
	if w <= 0 {
		w = 10
	}
	enc := encode.NewConfig(w, sys.Capacities)
	var cfg dfp.Config
	if opts.PaperScale {
		cfg = dfp.PaperScaleConfig(enc.StateDim(), enc.Resources(), w)
	} else {
		cfg = dfp.DefaultConfig(enc.StateDim(), enc.Resources(), w)
	}
	cfg.UseCNN = opts.UseCNN
	cfg.Workers = opts.Workers
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Mutate != nil {
		opts.Mutate(&cfg)
	}
	if opts.PerResourceNets {
		cfg.StateModule = perResourceStateModule(&enc, &cfg)
	}
	return &MRSch{Enc: enc, Agent: dfp.New(cfg)}
}

// perResourceStateModule builds the §III-A alternative state module: one
// MLP per resource, each consuming the job window plus that resource's unit
// section, outputs concatenated to StateOut. Hidden widths are divided
// across the branches so the parameter budget stays comparable to the
// single-network design.
func perResourceStateModule(enc *encode.Config, cfg *dfp.Config) nn.Layer {
	rng := rand.New(rand.NewSource(cfg.Seed + 971))
	r := enc.Resources()
	branches := make([]nn.Branch, 0, r)
	outPer := cfg.StateOut / r
	for res := 0; res < r; res++ {
		start, end := enc.UnitRange(res)
		in := enc.JobBlockLen() + (end - start)
		out := outPer
		if res == r-1 {
			out = cfg.StateOut - outPer*(r-1) // remainder keeps the total exact
		}
		layers := []nn.Layer{}
		prev := in
		for _, h := range cfg.StateHidden {
			hr := h / r
			if hr < 4 {
				hr = 4
			}
			layers = append(layers, nn.NewDense(prev, hr, nn.HeInit, rng), nn.NewLeakyReLU(0.01))
			prev = hr
		}
		layers = append(layers, nn.NewDense(prev, out, nn.HeInit, rng))
		branches = append(branches, nn.Branch{
			Ranges: [][2]int{{0, enc.JobBlockLen()}, {start, end}},
			Net:    nn.NewSequential(in, layers...),
		})
	}
	return nn.NewMultiBranch(enc.StateDim(), branches...)
}

var _ sched.Picker = (*MRSch)(nil)

// Pick implements sched.Picker: encode the state, compute the dynamic goal
// vector, and let the DFP agent choose a window job.
func (m *MRSch) Pick(ctx *sched.PickContext) int {
	state := m.Enc.Encode(ctx)
	goal := m.FixedGoal
	if goal == nil {
		goal = GoalVector(ctx)
	}
	m.LastGoal = goal
	if m.GoalHook != nil {
		m.GoalHook(ctx.Now, goal)
	}
	valid := len(ctx.Window)
	return m.Agent.Act(state, ctx.Usage, goal, valid, m.Train)
}

// Policy wraps the agent in the shared window/reservation/backfilling driver
// with the paper's window size.
func (m *MRSch) Policy() *sched.WindowPolicy {
	return sched.NewWindowPolicy(m, m.Enc.Window)
}

// Save persists the agent's network weights.
func (m *MRSch) Save(w io.Writer) error { return m.Agent.Save(w) }

// Load restores network weights into an identically-configured agent.
func (m *MRSch) Load(r io.Reader) error { return m.Agent.Load(r) }

// SaveState persists the agent's full training state (weights, optimizer
// moments, replay rings, epsilon and rng cursors) for crash-resume; see
// dfp.Agent.SaveState.
func (m *MRSch) SaveState(w io.Writer) error { return m.Agent.SaveState(w) }

// LoadState restores training state written by SaveState into an
// identically-configured agent, validating everything before applying.
func (m *MRSch) LoadState(r io.Reader) error { return m.Agent.LoadState(r) }
