package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
)

// JobSetKind labels the three curriculum set types of §III-D.
type JobSetKind int

// Curriculum job-set kinds.
const (
	Sampled   JobSetKind = iota // Poisson-arrival samples of the real trace
	Real                        // slices of the real trace
	Synthetic                   // generator-matched synthetic patterns
)

// String implements fmt.Stringer.
func (k JobSetKind) String() string {
	switch k {
	case Sampled:
		return "Sampled"
	case Real:
		return "Real"
	case Synthetic:
		return "Synthetic"
	default:
		return fmt.Sprintf("JobSetKind(%d)", int(k))
	}
}

// JobSet is one training unit: a batch of jobs replayed as a single episode.
type JobSet struct {
	Kind JobSetKind
	Jobs []*job.Job
}

// TrainConfig drives curriculum training (§III-D).
type TrainConfig struct {
	// System is the simulated machine.
	System cluster.Config
	// StepsPerEpisode is how many gradient steps follow each episode.
	StepsPerEpisode int
	// MaxEventsPerEpisode bounds a single episode's scheduling rounds
	// (0 = unlimited); guards against degenerate exploration livelock.
	MaxEventsPerEpisode int
}

// EpisodeResult reports one training episode.
type EpisodeResult struct {
	Set     JobSetKind
	Loss    float64 // mean MSE across the gradient steps (-1 if none ran)
	Epsilon float64
}

// TrainEpisode replays one job set through the simulator with the agent in
// exploration mode, then folds the episode into the replay buffer and takes
// gradient steps. It returns the mean training loss.
func TrainEpisode(m *MRSch, cfg TrainConfig, set JobSet) (EpisodeResult, error) {
	m.Train = true
	defer func() { m.Train = false }()

	policy := m.Policy()
	s := sim.New(cfg.System, policy)
	if cfg.MaxEventsPerEpisode > 0 {
		s.SetMaxEvents(cfg.MaxEventsPerEpisode)
	}
	if err := s.Load(job.CloneAll(set.Jobs)); err != nil {
		return EpisodeResult{}, fmt.Errorf("core: train episode: %w", err)
	}
	if err := s.Run(); err != nil {
		return EpisodeResult{}, fmt.Errorf("core: train episode: %w", err)
	}
	m.Agent.EndEpisode()

	steps := cfg.StepsPerEpisode
	if steps <= 0 {
		steps = 16
	}
	total, n := 0.0, 0
	for i := 0; i < steps; i++ {
		if l := m.Agent.TrainStep(); l >= 0 {
			total += l
			n++
		}
	}
	res := EpisodeResult{Set: set.Kind, Epsilon: m.Agent.Epsilon(), Loss: -1}
	if n > 0 {
		res.Loss = total / float64(n)
	}
	return res, nil
}

// TrainCurriculum trains over the job sets in order (the §III-D gradual-
// improvement principle: the set ordering *is* the experiment of Figure 4)
// and returns the per-episode loss curve.
func TrainCurriculum(m *MRSch, cfg TrainConfig, sets []JobSet) ([]EpisodeResult, error) {
	results := make([]EpisodeResult, 0, len(sets))
	for i, set := range sets {
		r, err := TrainEpisode(m, cfg, set)
		if err != nil {
			return results, fmt.Errorf("core: curriculum episode %d (%s): %w", i, set.Kind, err)
		}
		results = append(results, r)
	}
	return results, nil
}
