package core

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
)

// This file implements the paper's model-validation protocol (§IV-A): the
// trace is split chronologically into training, validation, and test
// portions; during training the agent is periodically evaluated greedily on
// the validation workload and the best-scoring weights are kept.

// ValidationMetrics summarizes one greedy evaluation on a held-out set.
type ValidationMetrics struct {
	// Utilization per resource, and the user-level metrics of §IV-B.
	Utilization []float64
	AvgWaitSec  float64
	AvgSlowdown float64
	// Score is the model-selection criterion: mean resource utilization
	// (the site objective the agent is trained to maximize).
	Score float64
}

// Validate replays jobs through the agent greedily (no exploration, no
// recording) and scores the outcome.
func Validate(m *MRSch, sys cluster.Config, jobs []*job.Job) (ValidationMetrics, error) {
	wasTraining := m.Train
	m.Train = false
	defer func() { m.Train = wasTraining }()

	s := sim.New(sys, m.Policy())
	if err := s.Load(job.CloneAll(jobs)); err != nil {
		return ValidationMetrics{}, fmt.Errorf("core: validate: %w", err)
	}
	if err := s.Run(); err != nil {
		return ValidationMetrics{}, fmt.Errorf("core: validate: %w", err)
	}
	var vm ValidationMetrics
	for r := 0; r < s.Cluster().NumResources(); r++ {
		u := s.Utilization(r)
		vm.Utilization = append(vm.Utilization, u)
		vm.Score += u
	}
	vm.Score /= float64(len(vm.Utilization))
	var wait, sd float64
	for _, j := range s.Finished() {
		wait += j.Wait()
		sd += j.Slowdown()
	}
	if n := len(s.Finished()); n > 0 {
		vm.AvgWaitSec = wait / float64(n)
		vm.AvgSlowdown = sd / float64(n)
	}
	return vm, nil
}

// SelectionConfig extends TrainConfig with a validation workload.
type SelectionConfig struct {
	TrainConfig
	// Validation is the held-out workload scored after every Every
	// episodes (Every <= 0 means every episode).
	Validation []*job.Job
	Every      int
}

// TrainCurriculumWithSelection trains over the ordered job sets while
// tracking validation score, and restores the best-scoring weights at the
// end — the paper's §IV-A protocol. It returns the per-episode results and
// the best validation metrics observed.
func TrainCurriculumWithSelection(m *MRSch, cfg SelectionConfig, sets []JobSet) ([]EpisodeResult, ValidationMetrics, error) {
	every := cfg.Every
	if every <= 0 {
		every = 1
	}
	var best ValidationMetrics
	var bestWeights []byte
	results := make([]EpisodeResult, 0, len(sets))
	for i, set := range sets {
		r, err := TrainEpisode(m, cfg.TrainConfig, set)
		if err != nil {
			return results, best, fmt.Errorf("core: selection episode %d: %w", i, err)
		}
		results = append(results, r)
		if len(cfg.Validation) == 0 || (i+1)%every != 0 {
			continue
		}
		vm, err := Validate(m, cfg.System, cfg.Validation)
		if err != nil {
			return results, best, err
		}
		if bestWeights == nil || vm.Score > best.Score {
			best = vm
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				return results, best, err
			}
			bestWeights = buf.Bytes()
		}
	}
	if bestWeights != nil {
		if err := m.Load(bytes.NewReader(bestWeights)); err != nil {
			return results, best, err
		}
	}
	return results, best, nil
}
