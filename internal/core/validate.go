package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/nn"
	"repro/internal/sim"
)

// This file implements the paper's model-validation protocol (§IV-A): the
// trace is split chronologically into training, validation, and test
// portions; during training the agent is periodically evaluated greedily on
// the validation workload and the best-scoring weights are kept.

// ValidationMetrics summarizes one greedy evaluation on a held-out set.
type ValidationMetrics struct {
	// Utilization per resource, and the user-level metrics of §IV-B.
	Utilization []float64
	AvgWaitSec  float64
	AvgSlowdown float64
	// Score is the model-selection criterion: mean resource utilization
	// (the site objective the agent is trained to maximize).
	Score float64
}

// Validate replays jobs through the agent greedily (no exploration, no
// recording) and scores the outcome.
func Validate(m *MRSch, sys cluster.Config, jobs []*job.Job) (ValidationMetrics, error) {
	wasTraining := m.Train
	m.Train = false
	defer func() { m.Train = wasTraining }()

	s := sim.New(sys, m.Policy())
	if err := s.Load(job.CloneAll(jobs)); err != nil {
		return ValidationMetrics{}, fmt.Errorf("core: validate: %w", err)
	}
	if err := s.Run(); err != nil {
		return ValidationMetrics{}, fmt.Errorf("core: validate: %w", err)
	}
	var vm ValidationMetrics
	for r := 0; r < s.Cluster().NumResources(); r++ {
		u := s.Utilization(r)
		vm.Utilization = append(vm.Utilization, u)
		vm.Score += u
	}
	vm.Score /= float64(len(vm.Utilization))
	var wait, sd float64
	for _, j := range s.Finished() {
		wait += j.Wait()
		sd += j.Slowdown()
	}
	if n := len(s.Finished()); n > 0 {
		vm.AvgWaitSec = wait / float64(n)
		vm.AvgSlowdown = sd / float64(n)
	}
	return vm, nil
}

// SelectionConfig extends TrainConfig with a validation workload.
type SelectionConfig struct {
	TrainConfig
	// Validation is the held-out workload scored after every Every
	// episodes (Every <= 0 means every episode).
	Validation []*job.Job
	Every      int
}

// Selection tracks the §IV-A model-selection protocol across a training
// run: every Every episodes the agent is scored greedily on the validation
// workload and the best-scoring weights are snapshotted; Finish restores
// them. It is the single implementation of the protocol, consumed by the
// serial TrainCurriculumWithSelection below and, as an AfterEpisode hook,
// by the parallel rollout harness (experiments.TrainMRSchValidated) —
// rollout calls the hook between rounds, when the weights are stable.
type Selection struct {
	m          *MRSch
	sys        cluster.Config
	validation []*job.Job
	every      int

	best        ValidationMetrics
	bestWeights []byte
}

// NewSelection prepares the protocol for one training run. every <= 0 means
// validate after every episode.
func NewSelection(m *MRSch, sys cluster.Config, validation []*job.Job, every int) *Selection {
	if every <= 0 {
		every = 1
	}
	return &Selection{m: m, sys: sys, validation: validation, every: every}
}

// AfterEpisode scores the agent when episode i completes a validation
// interval and snapshots the weights on a new best score. Its signature
// matches the rollout harness's AfterEpisode hook.
func (s *Selection) AfterEpisode(i int, _ EpisodeResult) error {
	if len(s.validation) == 0 || (i+1)%s.every != 0 {
		return nil
	}
	vm, err := Validate(s.m, s.sys, s.validation)
	if err != nil {
		return err
	}
	if s.bestWeights == nil || vm.Score > s.best.Score {
		s.best = vm
		var buf bytes.Buffer
		if err := s.m.Save(&buf); err != nil {
			return err
		}
		s.bestWeights = buf.Bytes()
	}
	return nil
}

// selectionMagic versions the serialized model-selection state.
const selectionMagic = "mrsch-selection-v1"

func init() {
	// Fixed-order gob type-ID claim, keeping encoded bytes history-free
	// (see nn.GobWarmup).
	nn.RegisterGobContainer(func(enc *gob.Encoder) { enc.Encode(&selectionState{}) })
}

// selectionState is the serializable §IV-A protocol state: the best
// validation metrics seen so far and the weight snapshot that scored them.
type selectionState struct {
	Magic       string
	Best        ValidationMetrics
	BestWeights []byte
}

// SaveState persists the protocol's progress so a checkpointed validated
// training run can resume without silently losing the best weights seen
// before the interruption (experiments wires it into the train checkpoint).
func (s *Selection) SaveState(w io.Writer) error {
	st := selectionState{Magic: selectionMagic, Best: s.best, BestWeights: s.bestWeights}
	return nn.EncodeChecksummed(w, &st)
}

// LoadState restores protocol state written by SaveState. Nothing is
// mutated on error.
func (s *Selection) LoadState(r io.Reader) error {
	var st selectionState
	if err := nn.DecodeChecksummed(r, &st); err != nil {
		return fmt.Errorf("core: selection state: %w", err)
	}
	if st.Magic != selectionMagic {
		return fmt.Errorf("core: selection state: bad magic %q (want %q; corrupt file or incompatible format version)", st.Magic, selectionMagic)
	}
	s.best = st.Best
	s.bestWeights = st.BestWeights
	return nil
}

// Finish restores the best-scoring weights (when any validation ran) and
// returns the best metrics observed.
func (s *Selection) Finish() (ValidationMetrics, error) {
	if s.bestWeights != nil {
		if err := s.m.Load(bytes.NewReader(s.bestWeights)); err != nil {
			return s.best, err
		}
	}
	return s.best, nil
}

// TrainCurriculumWithSelection trains over the ordered job sets while
// tracking validation score, and restores the best-scoring weights at the
// end — the paper's §IV-A protocol. It returns the per-episode results and
// the best validation metrics observed.
func TrainCurriculumWithSelection(m *MRSch, cfg SelectionConfig, sets []JobSet) ([]EpisodeResult, ValidationMetrics, error) {
	sel := NewSelection(m, cfg.System, cfg.Validation, cfg.Every)
	results := make([]EpisodeResult, 0, len(sets))
	for i, set := range sets {
		r, err := TrainEpisode(m, cfg.TrainConfig, set)
		if err != nil {
			return results, sel.best, fmt.Errorf("core: selection episode %d: %w", i, err)
		}
		results = append(results, r)
		if err := sel.AfterEpisode(i, r); err != nil {
			return results, sel.best, err
		}
	}
	best, err := sel.Finish()
	return results, best, err
}
