package core

import (
	"math/rand"
	"testing"

	"repro/internal/job"
)

func randomJobs(seed int64, n int) []*job.Job {
	rng := rand.New(rand.NewSource(seed))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= n; i++ {
		clk += float64(rng.Intn(40))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(300)+10), rng.Intn(12)+1, rng.Intn(7)))
	}
	return jobs
}

func TestValidateScoresGreedily(t *testing.T) {
	m := New(sys(), tinyOptions(31))
	m.Train = true // Validate must not disturb this flag permanently
	vm, err := Validate(m, sys(), randomJobs(1, 25))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Train {
		t.Fatal("Validate clobbered the Train flag")
	}
	if len(vm.Utilization) != 2 {
		t.Fatalf("utilization arity %d", len(vm.Utilization))
	}
	if vm.Score <= 0 || vm.Score > 1 {
		t.Fatalf("score = %v", vm.Score)
	}
	if vm.AvgSlowdown < 1 {
		t.Fatalf("slowdown = %v", vm.AvgSlowdown)
	}
	// Validation must not record experience.
	if m.Agent.ReplaySize() != 0 {
		t.Fatal("validation added replay experiences")
	}
}

func TestTrainWithSelectionKeepsBestWeights(t *testing.T) {
	m := New(sys(), tinyOptions(37))
	valid := randomJobs(2, 20)
	var sets []JobSet
	for i := 0; i < 4; i++ {
		sets = append(sets, JobSet{Kind: Sampled, Jobs: randomJobs(int64(10+i), 20)})
	}
	cfg := SelectionConfig{
		TrainConfig: TrainConfig{System: sys(), StepsPerEpisode: 4},
		Validation:  valid,
		Every:       1,
	}
	results, best, err := TrainCurriculumWithSelection(m, cfg, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d episodes", len(results))
	}
	if best.Score <= 0 {
		t.Fatalf("best score %v", best.Score)
	}
	// The restored weights must reproduce the best validation score.
	vm, err := Validate(m, sys(), valid)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Score < best.Score-1e-9 {
		t.Fatalf("restored score %v < best %v", vm.Score, best.Score)
	}
}

func TestTrainWithSelectionNoValidationSet(t *testing.T) {
	m := New(sys(), tinyOptions(41))
	sets := []JobSet{{Kind: Sampled, Jobs: randomJobs(3, 15)}}
	cfg := SelectionConfig{TrainConfig: TrainConfig{System: sys(), StepsPerEpisode: 2}}
	results, best, err := TrainCurriculumWithSelection(m, cfg, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || best.Score != 0 {
		t.Fatalf("results=%d best=%v", len(results), best)
	}
}
