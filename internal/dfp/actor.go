// Parallel-rollout support. An Actor is a read-only inference clone of an
// Agent: its networks alias the master's weight Values (via nn.SharedClone)
// while its forward caches, scratch buffers, exploration rng, and episode
// record are private. Any number of actors may therefore run epsilon-greedy
// episodes concurrently against one set of weights, as long as nothing
// updates those weights until the rollouts finish — the synchronization
// contract internal/rollout's round barrier provides. Collected episodes are
// handed back to the master as opaque Transcripts and folded into the replay
// buffer with Agent.IngestTranscript, which reproduces EndEpisode's
// experience construction exactly.
package dfp

import (
	"math/rand"

	"repro/internal/nn"
)

// modules groups the five networks of the DFP architecture: the three input
// modules and the two dueling streams.
type modules struct {
	state nn.Layer
	meas  *nn.Sequential
	goal  *nn.Sequential
	exp   *nn.Sequential // joint -> PredDim
	act   *nn.Sequential // joint -> Actions*PredDim
}

// all returns the networks in the canonical parameter order (state, meas,
// goal, exp, act) — the order Agent.params, Save, and Load rely on.
func (m *modules) all() []nn.Layer {
	return []nn.Layer{m.state, m.meas, m.goal, m.exp, m.act}
}

// cloneVia replicates the five networks through the given nn cloner
// (nn.SharedClone for live-weight replicas, nn.SnapshotClone for published-
// snapshot replicas). It reports false when the state module cannot be
// replicated — the built-in modules always can.
func (m *modules) cloneVia(clone func(nn.Layer) (nn.Layer, bool)) (modules, bool) {
	stateC, ok := clone(m.state)
	if !ok {
		return modules{}, false
	}
	measC, _ := clone(m.meas)
	goalC, _ := clone(m.goal)
	expC, _ := clone(m.exp)
	actC, _ := clone(m.act)
	return modules{
		state: stateC,
		meas:  measC.(*nn.Sequential),
		goal:  goalC.(*nn.Sequential),
		exp:   expC.(*nn.Sequential),
		act:   actC.(*nn.Sequential),
	}, true
}

// sharedClone returns a replica whose parameters alias the receiver's weight
// Values but whose gradients and forward state are private. It reports false
// when a custom state module cannot be replicated by nn.SharedClone.
func (m *modules) sharedClone() (modules, bool) { return m.cloneVia(nn.SharedClone) }

// snapshotClone returns a replica whose parameters alias the published
// copy-on-write weight snapshot (nn.SnapshotClone) with private forward
// state, so it can run forward passes concurrently with TrainStep. It
// reports false when any module cannot be snapshot-cloned (custom
// SharedCloner state modules alias live values by construction).
func (m *modules) snapshotClone() (modules, bool) { return m.cloneVia(nn.SnapshotClone) }

// inferScratch owns the buffers of one zero-allocation inference pass.
// Every holder of a modules value pairs it with its own inferScratch, so
// forward passes never share mutable state across goroutines.
type inferScratch struct {
	goalExt     nn.Vec
	joint       nn.Vec
	exp         nn.Vec
	act         nn.Vec
	meanA       nn.Vec
	predBacking nn.Vec
	predRows    [][]float64
	predOutBack nn.Vec      // backs the rows Predict hands out
	predOut     [][]float64 // row headers returned by Predict, reused per call
	score       nn.Vec
}

// forwardDueling runs the full network through the provided scratch buffers
// and returns per-action prediction rows aliasing the scratch backing array
// (valid until the next call with the same scratch). Zero heap allocations
// in steady state. The layers retain forward state, so a single-sample
// backward may follow immediately (the master agent's reference path).
func (m *modules) forwardDueling(cfg *Config, s *inferScratch, state, meas, goalExt []float64) [][]float64 {
	so, h := cfg.StateOut, cfg.ModuleHidden
	pd, n := cfg.PredDim(), cfg.Actions
	jd := so + 2*h

	s.joint = nn.Ensure(s.joint, jd)
	forwardInto1(m.state, s.joint[:so], state)
	forwardInto1(m.meas, s.joint[so:so+h], meas)
	forwardInto1(m.goal, s.joint[so+h:], goalExt)

	s.exp = nn.Ensure(s.exp, pd)
	s.act = nn.Ensure(s.act, n*pd)
	exp := m.exp.ForwardInto(s.exp, s.joint)
	act := m.act.ForwardInto(s.act, s.joint)

	// Dueling combine: p_a = E + A_a - mean_a(A).
	s.meanA = nn.Ensure(s.meanA, pd)
	meanA := s.meanA
	nn.Fill(meanA, 0)
	for ai := 0; ai < n; ai++ {
		row := act[ai*pd : (ai+1)*pd]
		for k, v := range row {
			meanA[k] += v
		}
	}
	for k := range meanA {
		meanA[k] /= float64(n)
	}
	s.predBacking = nn.Ensure(s.predBacking, n*pd)
	if len(s.predRows) != n {
		s.predRows = make([][]float64, n)
	}
	for ai := 0; ai < n; ai++ {
		row := act[ai*pd : (ai+1)*pd]
		p := s.predBacking[ai*pd : (ai+1)*pd]
		for k := range p {
			p[k] = exp[k] + row[k] - meanA[k]
		}
		s.predRows[ai] = p
	}
	return s.predRows
}

// forwardInto1 runs one module's scratch-buffer forward, falling back to the
// allocating path for layers outside this package's substrate.
func forwardInto1(l nn.Layer, dst, x []float64) {
	if bl, ok := l.(nn.BufferedLayer); ok {
		bl.ForwardInto(dst, x)
		return
	}
	copy(dst, l.Forward(x))
}

// scoreInto collapses predictions into one scalar objective per action: the
// dot product of the extended goal with each action's prediction.
func scoreInto(dst []float64, preds [][]float64, goalExt []float64) []float64 {
	for i, p := range preds {
		dst[i] = nn.Dot(goalExt, p)
	}
	return dst
}

// Actor is a read-only rollout clone of an Agent. It always acts in
// exploration mode (the epsilon-greedy policy of §IV-C) and records every
// decision; the recorded episode is retrieved with TakeTranscript and folded
// into the master with Agent.IngestTranscript. Reset it with the episode's
// deterministic seed and exploration rate before each rollout.
//
// An Actor is not safe for concurrent use by multiple goroutines, but
// distinct concurrency-safe actors (see Agent.Actor) may run concurrently
// with each other — not with TrainStep, which updates the shared weights.
type Actor struct {
	cfg  *Config
	nets modules
	scr  inferScratch

	rng   *rand.Rand
	eps   float64
	steps []*stepRecord
}

// Actor returns a rollout actor for the agent. The second result reports
// whether the actor is safe to run concurrently with other actors: when a
// custom StateModule cannot be replicated by nn.SharedClone, the returned
// actor borrows the master's own layers and must be the only actor in use
// (internal/rollout falls back to serial collection in that case).
func (a *Agent) Actor() (*Actor, bool) {
	nets, ok := a.nets.sharedClone()
	if !ok {
		nets = a.nets
	}
	return &Actor{
		cfg:  &a.cfg,
		nets: nets,
		rng:  rand.New(rand.NewSource(a.cfg.Seed)),
		eps:  a.eps,
	}, ok
}

// SnapshotActor returns a rollout actor reading the published copy-on-write
// weight snapshot instead of the live weights (materializing the snapshot
// from the current weights on first use). Snapshot actors may run
// concurrently with each other AND with TrainStep — training mutates only
// the live Values — which is the property pipelined rollout-training
// (internal/rollout Config.Pipelined) is built on. The weights they see
// advance only when PublishWeights runs, which in turn must happen with no
// snapshot actor mid-rollout. The second result reports false when a custom
// state module cannot be snapshot-cloned; there is no borrow-the-master
// fallback, because a borrowed actor could never overlap training.
func (a *Agent) SnapshotActor() (*Actor, bool) {
	nets, ok := a.nets.snapshotClone()
	if !ok {
		return nil, false
	}
	return &Actor{
		cfg:  &a.cfg,
		nets: nets,
		rng:  rand.New(rand.NewSource(a.cfg.Seed)),
		eps:  a.eps,
	}, true
}

// PublishWeights copies the live network weights into the snapshot read by
// SnapshotActor clones and bumps the version (nn.PublishParams). Call it
// only at a synchronization point with no snapshot actor mid-rollout; the
// actors observe the new weights on their next forward pass.
func (a *Agent) PublishWeights() { nn.PublishParams(a.params) }

// Reset prepares the actor for one episode: a fresh rng at the given seed,
// the episode's exploration rate (see Config.EpsilonAt), and an empty
// transcript.
func (ac *Actor) Reset(seed int64, eps float64) {
	ac.rng = rand.New(rand.NewSource(seed))
	ac.eps = eps
	ac.steps = nil
}

// Act selects an action among the first valid actions under the actor's
// epsilon-greedy policy and records the decision. It consumes the actor's
// rng exactly like the master's training-mode Act consumes the agent rng:
// one Float64 per decision plus one Intn when exploring.
func (ac *Actor) Act(state, meas, goal []float64, valid int) int {
	if valid <= 0 || valid > ac.cfg.Actions {
		valid = ac.cfg.Actions
	}
	ac.scr.goalExt = nn.Ensure(ac.scr.goalExt, ac.cfg.GoalDim())
	goalExt := ac.cfg.extendGoalInto(ac.scr.goalExt, goal)
	var action int
	if ac.rng.Float64() < ac.eps {
		action = ac.rng.Intn(valid)
	} else {
		ac.scr.score = nn.Ensure(ac.scr.score, ac.cfg.Actions)
		scores := scoreInto(ac.scr.score, ac.nets.forwardDueling(ac.cfg, &ac.scr, state, meas, goalExt), goalExt)
		action = nn.ArgMax(scores[:valid])
	}
	ac.steps = append(ac.steps, &stepRecord{
		state:  append([]float64(nil), state...),
		meas:   append([]float64(nil), meas...),
		goal:   append([]float64(nil), goalExt...),
		action: action,
		valid:  valid,
	})
	return action
}

// Steps returns the number of decisions recorded since the last Reset or
// TakeTranscript.
func (ac *Actor) Steps() int { return len(ac.steps) }

// Transcript is one episode's recorded decisions, opaque to callers. It is
// produced by Actor.TakeTranscript and consumed by Agent.IngestTranscript.
type Transcript struct {
	steps []*stepRecord
}

// Len returns the number of recorded decisions.
func (t *Transcript) Len() int { return len(t.steps) }

// TakeTranscript detaches and returns the episode recorded so far, leaving
// the actor empty for the next rollout.
func (ac *Actor) TakeTranscript() *Transcript {
	t := &Transcript{steps: ac.steps}
	ac.steps = nil
	return t
}

// IngestTranscript folds an actor-collected episode into the replay buffer
// and decays epsilon, exactly as EndEpisode does for episodes recorded by
// the master agent itself.
func (a *Agent) IngestTranscript(t *Transcript) {
	a.ingest(t.steps)
}
