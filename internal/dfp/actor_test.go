package dfp

import (
	"bytes"
	"math/rand"
	"testing"
)

// actorTestAgent builds a small agent with a filled replay buffer seed.
func actorTestAgent(t *testing.T) *Agent {
	t.Helper()
	cfg := DefaultConfig(24, 2, 5)
	cfg.Offsets = []int{1, 2, 4}
	cfg.TemporalWeights = []float64{0.5, 0.5, 1}
	cfg.StateHidden = []int{16}
	cfg.StateOut = 8
	cfg.ModuleHidden = 8
	cfg.StreamHidden = 8
	cfg.Workers = 1
	return New(cfg)
}

func randInputs(rng *rand.Rand, stateDim, meas int) ([]float64, []float64, []float64) {
	state := make([]float64, stateDim)
	for i := range state {
		state[i] = rng.Float64()
	}
	m := make([]float64, meas)
	g := make([]float64, meas)
	for i := range m {
		m[i] = rng.Float64()
		g[i] = rng.Float64()
	}
	return state, m, g
}

// A greedy actor (eps=0) must pick exactly what the master's greedy Act
// picks: they share weights, so the forward passes are identical arithmetic.
func TestActorMatchesGreedyMaster(t *testing.T) {
	a := actorTestAgent(t)
	ac, parallel := a.Actor()
	if !parallel {
		t.Fatal("built-in modules should be shared-clonable")
	}
	ac.Reset(99, 0) // eps=0: greedy
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		state, meas, goal := randInputs(rng, a.cfg.StateDim, a.cfg.Measurements)
		want := a.Act(state, meas, goal, 5, false)
		got := ac.Act(state, meas, goal, 5)
		if got != want {
			t.Fatalf("step %d: actor picked %d, master %d", i, got, want)
		}
	}
	if ac.Steps() != 20 {
		t.Fatalf("actor recorded %d steps, want 20", ac.Steps())
	}
}

// Ingesting an actor transcript must produce the same replay contents and
// epsilon decay as the master recording the identical episode itself.
func TestIngestTranscriptMatchesEndEpisode(t *testing.T) {
	master := actorTestAgent(t)
	viaActor := actorTestAgent(t)

	// Drive both with the same decision sequence. Master records through
	// training-mode Act at eps=0 (deterministic, greedy); the actor records
	// the same inputs at eps=0. The viaActor master also runs training-mode
	// Acts (discarded below) so both agent rngs consume identically and the
	// subsequent TrainStep samples the same minibatch.
	master.eps = 0
	viaActor.eps = 0
	ac, _ := viaActor.Actor()
	ac.Reset(1, 0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		state, meas, goal := randInputs(rng, master.cfg.StateDim, master.cfg.Measurements)
		master.Act(state, meas, goal, 5, true)
		viaActor.Act(state, meas, goal, 5, true)
		ac.Act(state, meas, goal, 5)
	}
	master.EndEpisode()
	viaActor.episode = nil // keep only the actor-collected copy
	viaActor.IngestTranscript(ac.TakeTranscript())

	if master.ReplaySize() != viaActor.ReplaySize() {
		t.Fatalf("replay sizes differ: %d vs %d", master.ReplaySize(), viaActor.ReplaySize())
	}
	for i := 0; i < master.ReplaySize(); i++ {
		em, ea := master.replay.shards[0].buf[i], viaActor.replay.shards[0].buf[i]
		if em.Action != ea.Action {
			t.Fatalf("experience %d action: %d vs %d", i, em.Action, ea.Action)
		}
		for k := range em.Target {
			if em.Target[k] != ea.Target[k] || em.Mask[k] != ea.Mask[k] {
				t.Fatalf("experience %d target/mask mismatch at %d", i, k)
			}
		}
	}

	// Same replay + same rng state => identical training step and weights.
	lm := master.TrainStep()
	la := viaActor.TrainStep()
	if lm != la {
		t.Fatalf("train losses differ: %v vs %v", lm, la)
	}
	var bm, ba bytes.Buffer
	if err := master.Save(&bm); err != nil {
		t.Fatal(err)
	}
	if err := viaActor.Save(&ba); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bm.Bytes(), ba.Bytes()) {
		t.Fatal("weights diverged after identical episode + train step")
	}
}

// EpsilonAt must reproduce the value Epsilon reports after i ingested
// episodes — the contract rollout actors rely on.
func TestEpsilonAtMatchesDecay(t *testing.T) {
	a := actorTestAgent(t)
	for i := 0; i < 40; i++ {
		if got, want := a.cfg.EpsilonAt(i), a.Epsilon(); got != want {
			t.Fatalf("episode %d: EpsilonAt=%v, live epsilon=%v", i, got, want)
		}
		a.IngestTranscript(&Transcript{})
	}
}

// An actor transcript collected concurrently-safely must leave the master's
// own episode recording untouched.
func TestActorRecordingIsIndependent(t *testing.T) {
	a := actorTestAgent(t)
	ac, _ := a.Actor()
	ac.Reset(5, 1) // eps=1: pure random exploration, no forward pass
	rng := rand.New(rand.NewSource(3))
	state, meas, goal := randInputs(rng, a.cfg.StateDim, a.cfg.Measurements)
	for i := 0; i < 6; i++ {
		ac.Act(state, meas, goal, 5)
	}
	if len(a.episode) != 0 {
		t.Fatalf("actor recording leaked %d steps into the master", len(a.episode))
	}
	if tr := ac.TakeTranscript(); tr.Len() != 6 {
		t.Fatalf("transcript has %d steps, want 6", tr.Len())
	}
	if ac.Steps() != 0 {
		t.Fatal("TakeTranscript did not clear the actor")
	}
}
