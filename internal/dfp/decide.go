// The batched greedy decider behind the decision service (internal/serve).
// A BatchDecider scores B decision requests in ONE batched forward pass per
// module — the admission-batching amortization — while keeping every row's
// arithmetic bitwise identical to the single-sample greedy path (Agent.Act
// with train=false):
//
//   - Dense.ForwardBatchInto computes every sample row with the same kernel
//     primitives in the same order regardless of batch size (ForwardInto IS
//     ForwardBatchInto with bsz=1), so each row of a batched matmul is
//     bitwise equal to the single-sample product under whichever nn kernel
//     set the process runs — the Set contract in internal/nn/kernel.
//     Activations are elementwise, and nn.Batched's per-row adapter falls
//     back to the single path outright.
//   - The dueling combine, goal extension, scoring dot product, and argmax
//     below reproduce forwardDueling/scoreInto/Act operation for operation.
//
// Together that yields the serve contract's headline guarantee: the action
// chosen for a request does not depend on which other requests happened to
// share its batch.
package dfp

import (
	"fmt"

	"repro/internal/nn"
)

// BatchDecider is a read-only batched inference clone of an Agent, reading
// the published copy-on-write weight snapshot (nn.SnapshotClone). Any number
// of deciders may run concurrently with each other; weight publication
// (Agent.Load + PublishWeights) must be mutually excluded against in-flight
// Decide calls — the synchronization internal/serve's engine provides with a
// reader/writer lock. A BatchDecider is not safe for concurrent use by
// multiple goroutines; callers pool them.
type BatchDecider struct {
	cfg  *Config
	nets modules

	stateNet nn.BatchLayer

	// Scratch, Ensure-grown and reused across calls: steady-state Decide
	// performs zero heap allocations, matching the single-sample Act.
	stateB, measB, goalExtB nn.Vec
	jsB, jmB, jgB, jointB   nn.Vec
	expB, actB              nn.Vec
	meanA, predRow, score   nn.Vec
}

// SnapshotDecider returns a batched greedy decider reading the published
// weight snapshot (materialized from the current live weights on first use).
// It reports false when a custom state module cannot be snapshot-cloned,
// exactly like SnapshotActor.
func (a *Agent) SnapshotDecider() (*BatchDecider, bool) {
	nets, ok := a.nets.snapshotClone()
	if !ok {
		return nil, false
	}
	return &BatchDecider{
		cfg:      &a.cfg,
		nets:     nets,
		stateNet: nn.Batched(nets.state),
	}, true
}

// DecideBatch greedily selects one action per request row. states[i] is the
// encoded state, meas[i] the measurement vector, goals[i] the per-measurement
// goal (pre-extension), and valid[i] the number of valid actions (clamped to
// [1, Actions] like Act). Results are written into dst (grown as needed) and
// returned. Row i's action is bitwise identical to
// Agent.Act(states[i], meas[i], goals[i], valid[i], false) at any batch size.
func (d *BatchDecider) DecideBatch(states, meas, goals [][]float64, valid []int, dst []int) []int {
	b := len(states)
	if len(meas) != b || len(goals) != b || len(valid) != b {
		panic(fmt.Sprintf("dfp: DecideBatch got %d states, %d meas, %d goals, %d valid", b, len(meas), len(goals), len(valid)))
	}
	if cap(dst) < b {
		dst = make([]int, b)
	}
	dst = dst[:b]
	if b == 0 {
		return dst
	}
	cfg := d.cfg
	sd, m, gd := cfg.StateDim, cfg.Measurements, cfg.GoalDim()
	pd, n := cfg.PredDim(), cfg.Actions
	so, h := cfg.StateOut, cfg.ModuleHidden
	jd := so + 2*h

	// Gather rows into row-major input matrices; extendGoalInto validates
	// each goal's length, and the copies below validate states and meas.
	d.stateB = nn.Ensure(d.stateB, b*sd)
	d.measB = nn.Ensure(d.measB, b*m)
	d.goalExtB = nn.Ensure(d.goalExtB, b*gd)
	for i := 0; i < b; i++ {
		if len(states[i]) != sd {
			panic(fmt.Sprintf("dfp: DecideBatch row %d state has %d elements, want %d", i, len(states[i]), sd))
		}
		if len(meas[i]) != m {
			panic(fmt.Sprintf("dfp: DecideBatch row %d meas has %d elements, want %d", i, len(meas[i]), m))
		}
		copy(d.stateB[i*sd:(i+1)*sd], states[i])
		copy(d.measB[i*m:(i+1)*m], meas[i])
		cfg.extendGoalInto(d.goalExtB[i*gd:(i+1)*gd], goals[i])
	}

	// One batched forward per module, interleaved into the joint rows (the
	// training engine's layout), then one batched forward per stream.
	d.jsB = nn.Ensure(d.jsB, b*so)
	d.jmB = nn.Ensure(d.jmB, b*h)
	d.jgB = nn.Ensure(d.jgB, b*h)
	js := d.stateNet.ForwardBatchInto(d.jsB, d.stateB, b)
	jm := d.nets.meas.ForwardBatchInto(d.jmB, d.measB, b)
	jg := d.nets.goal.ForwardBatchInto(d.jgB, d.goalExtB, b)
	d.jointB = nn.Ensure(d.jointB, b*jd)
	for i := 0; i < b; i++ {
		row := d.jointB[i*jd : (i+1)*jd]
		copy(row[:so], js[i*so:(i+1)*so])
		copy(row[so:so+h], jm[i*h:(i+1)*h])
		copy(row[so+h:], jg[i*h:(i+1)*h])
	}
	d.expB = nn.Ensure(d.expB, b*pd)
	d.actB = nn.Ensure(d.actB, b*n*pd)
	exp := d.nets.exp.ForwardBatchInto(d.expB, d.jointB, b)
	act := d.nets.act.ForwardBatchInto(d.actB, d.jointB, b)

	// Per-row dueling combine, scoring, and argmax — the exact arithmetic of
	// forwardDueling and scoreInto, row by row.
	d.meanA = nn.Ensure(d.meanA, pd)
	d.predRow = nn.Ensure(d.predRow, pd)
	d.score = nn.Ensure(d.score, n)
	for i := 0; i < b; i++ {
		expRow := exp[i*pd : (i+1)*pd]
		actRow := act[i*n*pd : (i+1)*n*pd]
		goalExt := d.goalExtB[i*gd : (i+1)*gd]
		nn.Fill(d.meanA, 0)
		for ai := 0; ai < n; ai++ {
			row := actRow[ai*pd : (ai+1)*pd]
			for k, v := range row {
				d.meanA[k] += v
			}
		}
		for k := range d.meanA {
			d.meanA[k] /= float64(n)
		}
		for ai := 0; ai < n; ai++ {
			row := actRow[ai*pd : (ai+1)*pd]
			for k := range d.predRow {
				d.predRow[k] = expRow[k] + row[k] - d.meanA[k]
			}
			d.score[ai] = nn.Dot(goalExt, d.predRow)
		}
		v := valid[i]
		if v <= 0 || v > n {
			v = n
		}
		dst[i] = nn.ArgMax(d.score[:v])
	}
	return dst
}
