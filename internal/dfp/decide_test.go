package dfp

import (
	"math/rand"
	"testing"
)

// randomInputs draws n random (state, meas, goal, valid) rows for an agent.
func randomInputs(cfg *Config, rng *rand.Rand, n int) (states, meas, goals [][]float64, valid []int) {
	randVec := func(d int) []float64 {
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	for i := 0; i < n; i++ {
		states = append(states, randVec(cfg.StateDim))
		meas = append(meas, randVec(cfg.Measurements))
		g := make([]float64, cfg.Measurements)
		total := 0.0
		for k := range g {
			g[k] = rng.Float64()
			total += g[k]
		}
		for k := range g {
			g[k] /= total
		}
		goals = append(goals, g)
		valid = append(valid, 1+rng.Intn(cfg.Actions))
	}
	return
}

// TestDecideBatchMatchesActAtEveryBatchSize is the bitwise serve-equivalence
// property at the dfp layer: for random inputs, DecideBatch over batch sizes
// {1, 4, max} selects exactly the action the single-sample greedy Act
// selects, row for row — the batch a request lands in never changes its
// decision.
func TestDecideBatchMatchesActAtEveryBatchSize(t *testing.T) {
	cfg := DefaultConfig(24, 2, 6)
	cfg.Seed = 71
	a := New(cfg)
	rng := rand.New(rand.NewSource(9))
	const total = 48
	states, meas, goals, valid := randomInputs(&a.cfg, rng, total)

	// Single-sample greedy reference.
	want := make([]int, total)
	for i := 0; i < total; i++ {
		want[i] = a.Act(states[i], meas[i], goals[i], valid[i], false)
	}

	d, ok := a.SnapshotDecider()
	if !ok {
		t.Fatal("SnapshotDecider unsupported for a built-in state module")
	}
	for _, bs := range []int{1, 4, total} {
		got := make([]int, 0, total)
		for lo := 0; lo < total; lo += bs {
			hi := lo + bs
			if hi > total {
				hi = total
			}
			got = append(got, d.DecideBatch(states[lo:hi], meas[lo:hi], goals[lo:hi], valid[lo:hi], nil)...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch size %d: row %d decided %d, single-sample path decided %d", bs, i, got[i], want[i])
			}
		}
	}
}

// TestDecideBatchFollowsPublishedWeights pins the snapshot semantics: a
// decider keeps answering from the last published version while the live
// weights train, and flips to the new weights on PublishWeights — never to a
// blend.
func TestDecideBatchFollowsPublishedWeights(t *testing.T) {
	cfg := DefaultConfig(24, 2, 6)
	cfg.Seed = 5
	cfg.BatchSize = 8
	a := New(cfg)
	rng := rand.New(rand.NewSource(11))
	states, meas, goals, valid := randomInputs(&a.cfg, rng, 32)

	d, ok := a.SnapshotDecider()
	if !ok {
		t.Fatal("SnapshotDecider unsupported")
	}
	before := append([]int(nil), d.DecideBatch(states, meas, goals, valid, nil)...)

	// Train until the greedy policy moves on at least one row (bounded; the
	// random net at this scale shifts within a few steps).
	feedEpisode(a, rng)
	changed := false
	for step := 0; step < 200 && !changed; step++ {
		a.TrainStep()
		for i := range states {
			if a.Act(states[i], meas[i], goals[i], valid[i], false) != before[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Skip("training never moved the greedy policy on these rows")
	}

	// Unpublished: the decider still answers from the old version.
	stale := d.DecideBatch(states, meas, goals, valid, nil)
	for i := range before {
		if stale[i] != before[i] {
			t.Fatalf("row %d moved before PublishWeights: %d -> %d", i, before[i], stale[i])
		}
	}

	// Published: the decider now matches the live greedy policy exactly.
	a.PublishWeights()
	fresh := d.DecideBatch(states, meas, goals, valid, nil)
	for i := range states {
		want := a.Act(states[i], meas[i], goals[i], valid[i], false)
		if fresh[i] != want {
			t.Fatalf("row %d after publish decided %d, live Act decided %d", i, fresh[i], want)
		}
	}
}

// feedEpisode records one exploratory episode so the replay buffer has
// something to train on.
func feedEpisode(a *Agent, rng *rand.Rand) {
	states, meas, goals, valid := randomInputs(&a.cfg, rng, 40)
	for i := range states {
		a.Act(states[i], meas[i], goals[i], valid[i], true)
	}
	a.EndEpisode()
}
