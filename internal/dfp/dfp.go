package dfp

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/nn"
)

// Config describes a DFP agent. Zero fields take defaults (see New).
type Config struct {
	// StateDim is the length of the state vector (from internal/encode).
	StateDim int
	// Measurements is M, the number of tracked objectives (resource
	// utilizations).
	Measurements int
	// Actions is the number of candidate actions (the window size W).
	Actions int

	// Offsets are the temporal offsets (in decision steps) at which future
	// measurement changes are predicted.
	Offsets []int
	// TemporalWeights weight each offset when scoring actions; the DFP
	// paper emphasizes the far future ([0,0,0,0.5,0.5,1]).
	TemporalWeights []float64

	// StateHidden are the state-module layer widths. The paper's full-scale
	// Theta network is [4000, 1000]; experiments default to a scaled stack.
	StateHidden []int
	// StateOut is the state module's output width (512 in the paper).
	StateOut int
	// ModuleHidden is the width of the 3-layer measurement and goal modules
	// (128 in the paper).
	ModuleHidden int
	// StreamHidden is the hidden width of the expectation/action streams.
	StreamHidden int

	// UseCNN selects the original DFP convolutional state module instead of
	// MRSch's MLP (Figure 3 ablation).
	UseCNN bool
	// CNNChannels/CNNKernel/CNNStride/CNNPool fix the conv geometry.
	CNNChannels, CNNKernel, CNNStride, CNNPool int

	// StateModule, when non-nil, replaces the built-in state module with a
	// caller-provided network mapping StateDim inputs to StateOut outputs.
	// Used for the §III-A one-net-vs-per-resource-nets ablation, where the
	// caller knows the encoding layout. Takes precedence over UseCNN.
	StateModule nn.Layer

	// LR is the Adam learning rate.
	LR float64
	// GradClip caps per-parameter gradient L2 norms (0 disables).
	GradClip float64
	// EpsStart/EpsDecay/EpsMin drive the epsilon-greedy exploration
	// schedule; the paper uses eps=1.0 decaying by 0.995 (§IV-C).
	EpsStart, EpsDecay, EpsMin float64
	// ReplayCap bounds the experience buffer.
	ReplayCap int
	// ReplayShards splits the replay buffer into that many independent
	// rings (capacity divided evenly): insertion round-robins the shards,
	// sampling round-robins the non-empty shards with a uniform draw inside
	// each. Distinct shards can be appended to concurrently by their owning
	// writers, which is what lets a parallel rollout harness compose with
	// Workers without funneling through one ring. 0 or 1 keeps the single
	// reference ring, whose sampling arithmetic is bit-for-bit the
	// pre-sharding buffer; like Workers, any fixed value is deterministic
	// run to run but different values sample in different (equally valid)
	// orders.
	ReplayShards int
	// BatchSize is the minibatch size per training step.
	BatchSize int
	// Workers is the number of goroutines TrainStep shards each minibatch
	// across, each accumulating into per-worker gradient buffers that are
	// reduced in worker order before the Adam step. 0 defaults to
	// runtime.GOMAXPROCS(0). Workers=1 runs the single-threaded engine,
	// whose arithmetic matches the pre-batched scalar reference
	// (TrainStepReference) to floating-point reassociation (~1e-12); any
	// fixed value is bitwise deterministic run to run. Custom StateModules
	// that nn.SharedClone cannot replicate fall back to a single worker.
	Workers int
	// Seed makes the agent deterministic: with a fixed Seed and a fixed
	// Workers value, training is bitwise reproducible run to run. Note the
	// Workers=0 default resolves to the host's core count, whose shard
	// boundaries affect floating-point summation order — pin Workers
	// explicitly (e.g. 1) when bitwise reproducibility across machines
	// matters.
	Seed int64
}

// DefaultConfig returns the experiment-scale configuration for a given
// state dimension, measurement count, and action count.
func DefaultConfig(stateDim, measurements, actions int) Config {
	return Config{
		StateDim:        stateDim,
		Measurements:    measurements,
		Actions:         actions,
		Offsets:         []int{1, 2, 4, 8, 16, 32},
		TemporalWeights: []float64{0, 0, 0, 0.5, 0.5, 1},
		StateHidden:     []int{128, 64},
		StateOut:        64,
		ModuleHidden:    32,
		StreamHidden:    64,
		CNNChannels:     8,
		CNNKernel:       8,
		CNNStride:       4,
		CNNPool:         2,
		LR:              1e-3,
		GradClip:        5,
		EpsStart:        1.0,
		EpsDecay:        0.995,
		EpsMin:          0.02,
		ReplayCap:       20000,
		BatchSize:       32,
		Seed:            1,
	}
}

// PaperScaleConfig returns the full-scale network of §IV-C: state module
// 4000/1000 hidden with a 512-wide output, 128-wide measurement and goal
// modules. Used by the decision-latency benchmark (§V-F).
func PaperScaleConfig(stateDim, measurements, actions int) Config {
	cfg := DefaultConfig(stateDim, measurements, actions)
	cfg.StateHidden = []int{4000, 1000}
	cfg.StateOut = 512
	cfg.ModuleHidden = 128
	cfg.StreamHidden = 512
	return cfg
}

// PredDim returns the length of the per-action prediction vector
// (offsets x measurements).
func (c *Config) PredDim() int { return len(c.Offsets) * c.Measurements }

// GoalDim returns the network's goal-input length (same as PredDim: the
// per-measurement goal extended across offsets by the temporal weights).
func (c *Config) GoalDim() int { return c.PredDim() }

func (c *Config) validate() error {
	if c.StateDim <= 0 || c.Measurements <= 0 || c.Actions <= 0 {
		return fmt.Errorf("dfp: dims must be positive: state=%d meas=%d actions=%d",
			c.StateDim, c.Measurements, c.Actions)
	}
	if len(c.Offsets) == 0 {
		return fmt.Errorf("dfp: no temporal offsets")
	}
	if len(c.TemporalWeights) != len(c.Offsets) {
		return fmt.Errorf("dfp: %d temporal weights for %d offsets", len(c.TemporalWeights), len(c.Offsets))
	}
	prev := 0
	for _, o := range c.Offsets {
		if o <= prev {
			return fmt.Errorf("dfp: offsets must be strictly increasing and positive, got %v", c.Offsets)
		}
		prev = o
	}
	if c.ReplayShards < 0 {
		return fmt.Errorf("dfp: ReplayShards must be >= 0, got %d", c.ReplayShards)
	}
	return nil
}

// Agent is a DFP agent.
type Agent struct {
	cfg Config

	// nets holds the five networks; scr the inference scratch. Act and
	// Predict run entirely through these agent-owned buffers, so a
	// steady-state Act performs zero heap allocations (§V-F decision-latency
	// requirement). Rollout actors (actor.go) pair SharedClone replicas of
	// nets with their own scratch.
	nets modules
	scr  inferScratch

	params []*nn.Param
	opt    *nn.Adam
	rng    *rand.Rand
	// rngSrc is rng's underlying source; its draw cursor is what
	// SaveState/LoadState (state.go) persist to resume the stream exactly.
	rngSrc *nn.CursorSource

	eps     float64
	replay  *replay
	episode []*stepRecord

	trainSteps int

	// Training engine state (engine.go).
	workers  []*trainWorker
	batchBuf []*Experience
	headWcol nn.Vec // per-step column-collapsed action-head weights (PredDim x StreamHidden)
}

type stepRecord struct {
	state  []float64
	meas   []float64
	goal   []float64 // extended goal (PredDim)
	action int
	valid  int // number of valid actions at that step
}

// New constructs an agent. It panics on an invalid configuration.
func New(cfg Config) *Agent {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	// The agent rng rides a CursorSource so its position can be
	// checkpointed; the draw streams are bit-identical to rand.NewSource.
	src := nn.NewCursorSource(cfg.Seed)
	rng := rand.New(src)
	a := &Agent{
		cfg:    cfg,
		rng:    rng,
		rngSrc: src,
		eps:    cfg.EpsStart,
		replay: newReplay(cfg.ReplayCap, cfg.ReplayShards),
	}
	a.nets.state = buildStateModule(&cfg, rng)
	h := cfg.ModuleHidden
	a.nets.meas = nn.NewSequential(cfg.Measurements,
		nn.NewDense(cfg.Measurements, h, nn.HeInit, rng), nn.NewLeakyReLU(0.01),
		nn.NewDense(h, h, nn.HeInit, rng), nn.NewLeakyReLU(0.01),
		nn.NewDense(h, h, nn.HeInit, rng),
	)
	a.nets.goal = nn.NewSequential(cfg.GoalDim(),
		nn.NewDense(cfg.GoalDim(), h, nn.HeInit, rng), nn.NewLeakyReLU(0.01),
		nn.NewDense(h, h, nn.HeInit, rng), nn.NewLeakyReLU(0.01),
		nn.NewDense(h, h, nn.HeInit, rng),
	)
	jointDim := cfg.StateOut + 2*h
	a.nets.exp = nn.NewSequential(jointDim,
		nn.NewDense(jointDim, cfg.StreamHidden, nn.HeInit, rng), nn.NewLeakyReLU(0.01),
		nn.NewDense(cfg.StreamHidden, cfg.PredDim(), nn.XavierInit, rng),
	)
	a.nets.act = nn.NewSequential(jointDim,
		nn.NewDense(jointDim, cfg.StreamHidden, nn.HeInit, rng), nn.NewLeakyReLU(0.01),
		nn.NewDense(cfg.StreamHidden, cfg.Actions*cfg.PredDim(), nn.XavierInit, rng),
	)
	for _, net := range a.nets.all() {
		a.params = append(a.params, net.Params()...)
	}
	a.opt = nn.NewAdam(cfg.LR)
	return a
}

func buildStateModule(cfg *Config, rng *rand.Rand) nn.Layer {
	if cfg.StateModule != nil {
		if got := cfg.StateModule.OutSize(cfg.StateDim); got != cfg.StateOut {
			panic(fmt.Sprintf("dfp: custom state module outputs %d, config wants %d", got, cfg.StateOut))
		}
		return cfg.StateModule
	}
	if cfg.UseCNN {
		conv := nn.NewConv1D(1, cfg.StateDim, cfg.CNNChannels, cfg.CNNKernel, cfg.CNNStride, rng)
		pool := nn.NewMaxPool1D(cfg.CNNChannels, conv.OutLen(), cfg.CNNPool)
		flat := cfg.CNNChannels * pool.OutLen()
		return nn.NewSequential(cfg.StateDim,
			conv, nn.NewLeakyReLU(0.01),
			pool,
			nn.NewDense(flat, cfg.StateOut, nn.HeInit, rng),
		)
	}
	layers := []nn.Layer{}
	in := cfg.StateDim
	for _, hdim := range cfg.StateHidden {
		layers = append(layers, nn.NewDense(in, hdim, nn.HeInit, rng), nn.NewLeakyReLU(0.01))
		in = hdim
	}
	layers = append(layers, nn.NewDense(in, cfg.StateOut, nn.HeInit, rng))
	return nn.NewSequential(cfg.StateDim, layers...)
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.eps }

// EpsilonAt returns the exploration rate in effect for 0-based episode i of
// a training run: EpsStart decayed i times, floored at EpsMin after every
// decay — exactly the value Epsilon reports after i EndEpisode (or
// IngestTranscript) calls. Rollout actors are reset with this value so a
// parallel harness reproduces the serial exploration schedule.
func (c *Config) EpsilonAt(episode int) float64 {
	eps := c.EpsStart
	for i := 0; i < episode; i++ {
		eps *= c.EpsDecay
		if eps < c.EpsMin {
			eps = c.EpsMin
		}
	}
	return eps
}

// NumParams returns the number of learnable scalars across all modules.
func (a *Agent) NumParams() int {
	n := 0
	for _, p := range a.params {
		n += len(p.Value)
	}
	return n
}

// ExtendGoal expands a per-measurement goal vector across the temporal
// offsets using the configured temporal weights, producing the network's
// goal input (and the scoring weights for action selection).
func (a *Agent) ExtendGoal(goal []float64) []float64 {
	return a.cfg.extendGoalInto(make([]float64, a.cfg.GoalDim()), goal)
}

// extendGoalInto is the zero-allocation ExtendGoal used by Act (agent and
// actor alike).
func (c *Config) extendGoalInto(dst, goal []float64) []float64 {
	if len(goal) != c.Measurements {
		panic(fmt.Sprintf("dfp: goal has %d entries, want %d", len(goal), c.Measurements))
	}
	i := 0
	for k := range c.Offsets {
		w := c.TemporalWeights[k]
		for _, g := range goal {
			dst[i] = w * g
			i++
		}
	}
	return dst
}

// forwardScratch runs the full network through agent-owned scratch buffers
// and returns per-action prediction rows aliasing an internal backing array
// (valid until the next forwardScratch). Zero heap allocations in steady
// state. The layers retain forward state for the single-sample backward.
// The shared implementation (modules.forwardDueling, actor.go) also serves
// rollout actors with their own scratch.
func (a *Agent) forwardScratch(state, meas, goalExt []float64) [][]float64 {
	return a.nets.forwardDueling(&a.cfg, &a.scr, state, meas, goalExt)
}

// forward runs the full network and returns freshly-allocated per-action
// predictions, each of length PredDim. It is the scalar reference
// implementation retained for gradient checks and equivalence tests; hot
// paths use forwardScratch. The layers retain forward state, so
// backwardFromPredGrads may be called immediately afterwards.
func (a *Agent) forward(state, meas, goalExt []float64) [][]float64 {
	js := a.nets.state.Forward(state)
	jm := a.nets.meas.Forward(meas)
	jg := a.nets.goal.Forward(goalExt)
	joint := nn.Concat(js, jm, jg)
	exp := a.nets.exp.Forward(joint)
	act := a.nets.act.Forward(joint)

	pd := a.cfg.PredDim()
	// Dueling combine: p_a = E + A_a - mean_a(A).
	meanA := make([]float64, pd)
	for ai := 0; ai < a.cfg.Actions; ai++ {
		row := act[ai*pd : (ai+1)*pd]
		for k, v := range row {
			meanA[k] += v
		}
	}
	for k := range meanA {
		meanA[k] /= float64(a.cfg.Actions)
	}
	preds := make([][]float64, a.cfg.Actions)
	for ai := 0; ai < a.cfg.Actions; ai++ {
		row := act[ai*pd : (ai+1)*pd]
		p := make([]float64, pd)
		for k := range p {
			p[k] = exp[k] + row[k] - meanA[k]
		}
		preds[ai] = p
	}
	return preds
}

// backwardFromPredGrads backpropagates gradients of the loss with respect to
// the per-action predictions through the dueling combine, both streams, the
// concatenation, and the three input modules, accumulating parameter
// gradients. It is the dense reference backward; the training engine's
// sparse path (engine.go) produces the same gradients while only propagating
// the taken action's PredDim slice through the action stream.
func (a *Agent) backwardFromPredGrads(grads [][]float64) {
	pd := a.cfg.PredDim()
	n := a.cfg.Actions

	gradExp := make([]float64, pd)
	sumGrad := make([]float64, pd)
	for ai := 0; ai < n; ai++ {
		for k, g := range grads[ai] {
			gradExp[k] += g
			sumGrad[k] += g
		}
	}
	gradAct := make([]float64, n*pd)
	for ai := 0; ai < n; ai++ {
		for k, g := range grads[ai] {
			gradAct[ai*pd+k] = g - sumGrad[k]/float64(n)
		}
	}

	gJointExp := a.nets.exp.Backward(gradExp)
	gJointAct := a.nets.act.Backward(gradAct)
	gJoint := nn.Add(gJointExp, gJointAct)

	so := a.cfg.StateOut
	h := a.cfg.ModuleHidden
	a.nets.state.Backward(gJoint[:so])
	a.nets.meas.Backward(gJoint[so : so+h])
	a.nets.goal.Backward(gJoint[so+h:])
}

// Predict returns the per-action predicted future-measurement changes for
// the given inputs (inference only). The returned rows are agent-owned
// scratch — valid until this agent's next Predict call, and not clobbered
// by Act — so the steady-state forward path is uniformly zero-alloc.
// Callers that need the rows beyond the next Predict must copy them.
func (a *Agent) Predict(state, meas, goalExt []float64) [][]float64 {
	preds := a.forwardScratch(state, meas, goalExt)
	n, pd := len(preds), a.cfg.PredDim()
	a.scr.predOutBack = nn.Ensure(a.scr.predOutBack, n*pd)
	if len(a.scr.predOut) != n {
		a.scr.predOut = make([][]float64, n)
	}
	for i, p := range preds {
		row := a.scr.predOutBack[i*pd : (i+1)*pd]
		copy(row, p)
		a.scr.predOut[i] = row
	}
	return a.scr.predOut
}

// Score collapses predictions into one scalar objective per action:
// the dot product of the extended goal with each action's prediction.
func (a *Agent) Score(preds [][]float64, goalExt []float64) []float64 {
	return scoreInto(make([]float64, len(preds)), preds, goalExt)
}

// Act selects an action among the first valid actions. In training mode it
// follows the epsilon-greedy policy of §IV-C; otherwise it acts greedily on
// the predicted outcomes. Inference-mode Act performs zero heap allocations
// in steady state: the whole forward pass runs through agent-owned scratch
// buffers.
func (a *Agent) Act(state, meas, goal []float64, valid int, train bool) int {
	if valid <= 0 || valid > a.cfg.Actions {
		valid = a.cfg.Actions
	}
	a.scr.goalExt = nn.Ensure(a.scr.goalExt, a.cfg.GoalDim())
	goalExt := a.cfg.extendGoalInto(a.scr.goalExt, goal)
	var action int
	if train && a.rng.Float64() < a.eps {
		action = a.rng.Intn(valid)
	} else {
		a.scr.score = nn.Ensure(a.scr.score, a.cfg.Actions)
		scores := scoreInto(a.scr.score, a.forwardScratch(state, meas, goalExt), goalExt)
		action = nn.ArgMax(scores[:valid])
	}
	if train {
		a.episode = append(a.episode, &stepRecord{
			state:  append([]float64(nil), state...),
			meas:   append([]float64(nil), meas...),
			goal:   append([]float64(nil), goalExt...),
			action: action,
			valid:  valid,
		})
	}
	return action
}

// EndEpisode converts the recorded episode into replay experiences: for each
// step, the target is the realized measurement change at every temporal
// offset, with offsets that run past the episode end masked out. It then
// decays epsilon. Actor-collected episodes go through the same logic via
// IngestTranscript (actor.go).
func (a *Agent) EndEpisode() {
	steps := a.episode
	a.episode = nil
	a.ingest(steps)
}

func (a *Agent) ingest(steps []*stepRecord) {
	pd := a.cfg.PredDim()
	m := a.cfg.Measurements
	for t, st := range steps {
		target := make([]float64, pd)
		mask := make([]bool, pd)
		any := false
		for k, off := range a.cfg.Offsets {
			tf := t + off
			if tf >= len(steps) {
				continue
			}
			for mi := 0; mi < m; mi++ {
				target[k*m+mi] = steps[tf].meas[mi] - st.meas[mi]
				mask[k*m+mi] = true
			}
			any = true
		}
		if !any {
			continue
		}
		a.replay.add(&Experience{
			State: st.state, Meas: st.meas, Goal: st.goal,
			Action: st.action, Target: target, Mask: mask,
		})
	}
	a.eps *= a.cfg.EpsDecay
	if a.eps < a.cfg.EpsMin {
		a.eps = a.cfg.EpsMin
	}
}

// ReplaySize returns the number of stored experiences.
func (a *Agent) ReplaySize() int { return a.replay.len() }

// Save writes all network weights to w.
func (a *Agent) Save(w io.Writer) error { return nn.SaveWeights(w, a.params) }

// Load restores network weights written by Save into an agent constructed
// with the same Config.
func (a *Agent) Load(r io.Reader) error { return nn.LoadWeights(r, a.params) }
