package dfp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func smallConfig() Config {
	cfg := DefaultConfig(12, 2, 3)
	cfg.Offsets = []int{1, 2}
	cfg.TemporalWeights = []float64{0.5, 1}
	cfg.StateHidden = []int{8}
	cfg.StateOut = 6
	cfg.ModuleHidden = 5
	cfg.StreamHidden = 7
	cfg.Seed = 3
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.StateDim = 0 },
		func(c *Config) { c.Offsets = nil },
		func(c *Config) { c.Offsets = []int{2, 1} },
		func(c *Config) { c.Offsets = []int{0, 1} },
		func(c *Config) { c.TemporalWeights = []float64{1} },
	}
	for i, mut := range bad {
		cfg := smallConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestForwardShapes(t *testing.T) {
	a := New(smallConfig())
	state := make([]float64, 12)
	meas := []float64{0.5, 0.2}
	goalExt := a.ExtendGoal([]float64{0.7, 0.3})
	preds := a.forward(state, meas, goalExt)
	if len(preds) != 3 {
		t.Fatalf("preds for %d actions", len(preds))
	}
	for _, p := range preds {
		if len(p) != a.cfg.PredDim() {
			t.Fatalf("pred dim %d, want %d", len(p), a.cfg.PredDim())
		}
		if !nn.IsFinite(p) {
			t.Fatal("non-finite prediction")
		}
	}
}

func TestExtendGoal(t *testing.T) {
	a := New(smallConfig())
	got := a.ExtendGoal([]float64{0.6, 0.4})
	want := []float64{0.3, 0.2, 0.6, 0.4} // offsets weights 0.5 and 1
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExtendGoal = %v, want %v", got, want)
		}
	}
}

// The decisive test for the hand-wired topology: analytic gradients through
// dueling combine, both streams, concat, and all three modules must match
// finite differences.
func TestFullTopologyGradCheck(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	rng := rand.New(rand.NewSource(17))
	state := make([]float64, cfg.StateDim)
	for i := range state {
		state[i] = rng.NormFloat64() * 0.3
	}
	meas := []float64{0.4, 0.6}
	goalExt := a.ExtendGoal([]float64{0.8, 0.2})
	action := 1
	target := make([]float64, cfg.PredDim())
	for i := range target {
		target[i] = rng.NormFloat64() * 0.1
	}
	mask := make([]bool, cfg.PredDim())
	for i := range mask {
		mask[i] = i%2 == 0 // exercise masking in the gradient path too
	}

	loss := func() float64 {
		preds := a.forward(state, meas, goalExt)
		l, _ := nn.MaskedMSE(preds[action], target, mask)
		return l
	}
	backward := func() {
		preds := a.forward(state, meas, goalExt)
		_, grad := nn.MaskedMSE(preds[action], target, mask)
		grads := make([][]float64, cfg.Actions)
		zero := make([]float64, cfg.PredDim())
		for ai := range grads {
			if ai == action {
				grads[ai] = grad
			} else {
				grads[ai] = zero
			}
		}
		a.backwardFromPredGrads(grads)
	}
	if worst := nn.GradCheck(a.params, loss, backward, 1e-5, 40); worst > 1e-3 {
		t.Fatalf("DFP topology gradient check failed: max rel err %v", worst)
	}
}

func TestCNNVariantGradCheck(t *testing.T) {
	cfg := smallConfig()
	cfg.StateDim = 24
	cfg.UseCNN = true
	cfg.CNNChannels = 3
	cfg.CNNKernel = 4
	cfg.CNNStride = 2
	cfg.CNNPool = 2
	a := New(cfg)
	rng := rand.New(rand.NewSource(4))
	state := make([]float64, cfg.StateDim)
	for i := range state {
		state[i] = rng.NormFloat64() * 0.3
	}
	meas := []float64{0.4, 0.6}
	goalExt := a.ExtendGoal([]float64{0.5, 0.5})
	target := make([]float64, cfg.PredDim())
	mask := make([]bool, cfg.PredDim())
	for i := range mask {
		mask[i] = true
	}
	loss := func() float64 {
		preds := a.forward(state, meas, goalExt)
		l, _ := nn.MaskedMSE(preds[0], target, mask)
		return l
	}
	backward := func() {
		preds := a.forward(state, meas, goalExt)
		_, grad := nn.MaskedMSE(preds[0], target, mask)
		grads := make([][]float64, cfg.Actions)
		zero := make([]float64, cfg.PredDim())
		for ai := range grads {
			if ai == 0 {
				grads[ai] = grad
			} else {
				grads[ai] = zero
			}
		}
		a.backwardFromPredGrads(grads)
	}
	if worst := nn.GradCheck(a.params, loss, backward, 1e-5, 30); worst > 1e-3 {
		t.Fatalf("CNN DFP gradient check failed: %v", worst)
	}
}

func TestActGreedyPicksBestScore(t *testing.T) {
	a := New(smallConfig())
	state := make([]float64, 12)
	meas := []float64{0.5, 0.5}
	goal := []float64{0.5, 0.5}
	goalExt := a.ExtendGoal(goal)
	preds := a.Predict(state, meas, goalExt)
	scores := a.Score(preds, goalExt)
	want := nn.ArgMax(scores)
	if got := a.Act(state, meas, goal, 3, false); got != want {
		t.Fatalf("Act = %d, argmax score = %d", got, want)
	}
}

func TestActRespectsValidPrefix(t *testing.T) {
	a := New(smallConfig())
	state := make([]float64, 12)
	meas := []float64{0.5, 0.5}
	goal := []float64{0.5, 0.5}
	for trial := 0; trial < 50; trial++ {
		if got := a.Act(state, meas, goal, 1, true); got != 0 {
			t.Fatalf("Act with valid=1 returned %d", got)
		}
	}
}

func TestEpisodeRecordingAndTargets(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	state := make([]float64, cfg.StateDim)
	goal := []float64{0.5, 0.5}
	// Deterministic measurement sequence.
	seq := [][]float64{{0, 0}, {0.1, 0.2}, {0.3, 0.1}, {0.6, 0.4}}
	a.eps = 0 // force greedy so no randomness in recording
	for _, m := range seq {
		a.Act(state, m, goal, cfg.Actions, true)
	}
	if len(a.episode) != 4 {
		t.Fatalf("episode length %d", len(a.episode))
	}
	a.EndEpisode()
	// Steps 0,1,2 have at least offset-1 targets; step 3 has none.
	if got := a.ReplaySize(); got != 3 {
		t.Fatalf("replay size %d, want 3", got)
	}
	// Inspect the first stored experience: offsets {1,2}, M=2.
	e := a.replay.shards[0].buf[0]
	// target for offset 1 = seq[1]-seq[0] = {0.1,0.2}; offset 2 = seq[2]-seq[0] = {0.3,0.1}
	want := []float64{0.1, 0.2, 0.3, 0.1}
	for i := range want {
		if math.Abs(e.Target[i]-want[i]) > 1e-12 || !e.Mask[i] {
			t.Fatalf("experience target = %v mask = %v, want %v", e.Target, e.Mask, want)
		}
	}
	// Second experience (t=1): offset 2 would need t=3 -> valid; t=2 offset2 -> t=4 invalid.
	e2 := a.replay.shards[0].buf[2] // t=2
	if e2.Mask[2] || e2.Mask[3] {
		t.Fatalf("t=2 offset-2 slots must be masked, mask=%v", e2.Mask)
	}
	if !e2.Mask[0] || !e2.Mask[1] {
		t.Fatalf("t=2 offset-1 slots must be valid, mask=%v", e2.Mask)
	}
}

func TestEpsilonDecay(t *testing.T) {
	cfg := smallConfig()
	cfg.EpsStart = 1.0
	cfg.EpsDecay = 0.5
	cfg.EpsMin = 0.2
	a := New(cfg)
	a.EndEpisode()
	if math.Abs(a.Epsilon()-0.5) > 1e-12 {
		t.Fatalf("eps after 1 episode = %v", a.Epsilon())
	}
	for i := 0; i < 10; i++ {
		a.EndEpisode()
	}
	if a.Epsilon() != 0.2 {
		t.Fatalf("eps floor = %v, want 0.2", a.Epsilon())
	}
}

// A synthetic environment where action k deterministically adds drift[k] to
// the measurements. After training, the agent's greedy action under a goal
// must be the action whose drift scores highest for that goal — and the
// choice must flip when the goal flips. This is the essence of DFP's
// goal-switching claim (§II-B).
func TestAgentLearnsGoalDependentPolicy(t *testing.T) {
	cfg := smallConfig()
	cfg.StateDim = 4
	cfg.LR = 3e-3
	cfg.EpsStart = 1.0
	cfg.EpsDecay = 0.97
	cfg.Seed = 11
	a := New(cfg)

	drift := [][]float64{
		{0.08, 0.0},  // action 0 helps measurement 0
		{0.0, 0.08},  // action 1 helps measurement 1
		{0.02, 0.02}, // action 2 is mediocre for both
	}
	state := []float64{0.1, 0.2, 0.3, 0.4}
	rng := rand.New(rand.NewSource(7))
	goals := [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}}

	for ep := 0; ep < 60; ep++ {
		m := []float64{0.2, 0.2}
		goal := goals[ep%len(goals)]
		for step := 0; step < 24; step++ {
			act := a.Act(state, m, goal, cfg.Actions, true)
			next := make([]float64, 2)
			for i := range next {
				next[i] = m[i] + drift[act][i] + rng.NormFloat64()*0.001
			}
			m = next
		}
		a.EndEpisode()
		for k := 0; k < 8; k++ {
			a.TrainStep()
		}
	}

	m := []float64{0.2, 0.2}
	if got := a.Act(state, m, []float64{1, 0}, cfg.Actions, false); got != 0 {
		t.Fatalf("goal (1,0): picked action %d, want 0", got)
	}
	if got := a.Act(state, m, []float64{0, 1}, cfg.Actions, false); got != 1 {
		t.Fatalf("goal (0,1): picked action %d, want 1", got)
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 21
	cfg.LR = 1e-2
	a := New(cfg)
	// Fill replay with a fixed mapping: constant inputs, constant target.
	target := []float64{0.3, -0.2, 0.1, 0.4}
	mask := []bool{true, true, true, true}
	for i := 0; i < 64; i++ {
		a.replay.add(&Experience{
			State:  make([]float64, cfg.StateDim),
			Meas:   []float64{0.5, 0.5},
			Goal:   a.ExtendGoal([]float64{0.5, 0.5}),
			Action: i % cfg.Actions,
			Target: target,
			Mask:   mask,
		})
	}
	first := a.TrainStep()
	var last float64
	for i := 0; i < 150; i++ {
		last = a.TrainStep()
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
	if last > first*0.2 {
		t.Fatalf("loss barely decreased: first %v, last %v", first, last)
	}
}

func TestTrainStepEmptyReplay(t *testing.T) {
	a := New(smallConfig())
	if got := a.TrainStep(); got != -1 {
		t.Fatalf("TrainStep on empty replay = %v, want -1", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	state := make([]float64, cfg.StateDim)
	meas := []float64{0.4, 0.6}
	goalExt := a.ExtendGoal([]float64{0.5, 0.5})
	want := a.Predict(state, meas, goalExt)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 999 // different init; weights must come from the file
	b := New(cfg2)
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := b.Predict(state, meas, goalExt)
	for ai := range want {
		for k := range want[ai] {
			if math.Abs(got[ai][k]-want[ai][k]) > 1e-15 {
				t.Fatal("restored agent predicts differently")
			}
		}
	}
}

func TestReplayRing(t *testing.T) {
	r := newReplay(3, 1)
	for i := 0; i < 5; i++ {
		r.add(&Experience{Action: i})
	}
	if r.len() != 3 {
		t.Fatalf("replay len = %d, want 3", r.len())
	}
	// Oldest entries (0,1) must have been evicted.
	for _, e := range r.shards[0].buf {
		if e.Action < 2 {
			t.Fatalf("stale experience %d retained", e.Action)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if e := r.sample(rng); e == nil {
			t.Fatal("sample returned nil")
		}
	}
}

func TestPaperScaleConfigDims(t *testing.T) {
	cfg := PaperScaleConfig(11410, 2, 10)
	if cfg.StateHidden[0] != 4000 || cfg.StateHidden[1] != 1000 || cfg.StateOut != 512 {
		t.Fatalf("paper-scale stack = %v out %d", cfg.StateHidden, cfg.StateOut)
	}
	if cfg.ModuleHidden != 128 {
		t.Fatalf("module width = %d", cfg.ModuleHidden)
	}
}
