// Package dfp implements Direct Future Prediction (Dosovitskiy & Koltun,
// ICLR 2017), the multi-objective reinforcement-learning algorithm MRSch is
// built on (§II-B of the paper). A DFP agent is trained to predict, for each
// candidate action, how a vector of measurements will change at several
// temporal offsets into the future, conditioned on the current sensory
// state, the current measurements, and a goal vector expressing the relative
// importance of each measurement. Acting greedily means choosing the action
// whose predicted future-measurement changes score highest under the goal.
//
// The network follows the paper's architecture: three input modules (state,
// measurement, goal) whose outputs are concatenated into a joint
// representation, processed by two parallel streams — an expectation stream
// and an action stream normalized across actions (the dueling decomposition
// of Wang et al.) — and summed into per-action predictions. The state module
// is an MLP in MRSch; the original DFP's convolutional module is provided as
// an option for the Figure 3 ablation.
//
// # Engine invariants
//
// The hot paths are engineered for throughput, and each fast path carries a
// retained reference it must match:
//
//   - Inference (Act, Predict) runs through agent-owned scratch buffers with
//     zero steady-state heap allocations; forwardDueling is shared verbatim
//     between the master agent and every rollout actor.
//
//   - TrainStep processes each minibatch through batched matrix-matrix
//     kernels with a sparse dueling backward, sharded across Config.Workers
//     goroutines whose per-worker gradients reduce in fixed worker order
//     (engine.go). It must match the scalar TrainStepReference to ≤1e-12,
//     consume the agent rng identically, and stay at 0 allocs/op in steady
//     state — all equivalence- and property-tested in engine_test.go.
//
//   - The replay buffer (replay.go) is sharded into independent rings sized
//     by Config.ReplayShards: insertion round-robins the shards (or targets
//     one explicitly via addTo, so distinct writers can append lock-free),
//     eviction is oldest-first per shard, and sampling round-robins the
//     non-empty shards deterministically with one uniform draw inside the
//     selected shard. With ReplayShards<=1 the layout, eviction order, and
//     rng consumption are bit-for-bit the pre-sharding single ring — the
//     reference barrier-mode training is checked against.
//
// # Weight snapshots and rollout actors
//
// Two clone flavors serve the parallel harnesses in internal/rollout:
//
//   - Agent.Actor pairs nn.SharedClone replicas (weights alias the live
//     Values) with private scratch — safe to run concurrently with other
//     actors but not with TrainStep, the barrier-mode contract.
//
//   - Agent.SnapshotActor pairs nn.SnapshotClone replicas (weights alias the
//     published copy-on-write snapshot, see the nn package doc) with private
//     scratch — safe to run concurrently with TrainStep, because training
//     mutates only the live Values. Agent.PublishWeights advances the
//     snapshot at a synchronization point with no snapshot actor mid-
//     forward; internal/rollout's pipelined mode provides exactly that
//     point between rounds.
//
// # Durable state
//
// Save/Load persist weights only (the model-file format). SaveState/
// LoadState (state.go) persist the agent's complete training state —
// weights, published snapshot buffers, Adam moments and step counter, the
// sharded replay rings with their cursors, the epsilon schedule position,
// the rng draw cursor, and any in-flight episode — in a versioned,
// SHA-256-checksummed container. Saving at a quiescent point and loading
// into an identically-configured agent resumes training bit-for-bit
// (internal/rollout's round-boundary checkpoint hook is that point; see
// its package doc, rules 9-10). LoadState validates the entire container
// against the agent before mutating anything: corrupt, truncated, or
// mismatched input fails with a descriptive error and no partial state.
package dfp
