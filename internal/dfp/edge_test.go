package dfp

import (
	"math"
	"testing"
)

func TestActClampsInvalidValidCount(t *testing.T) {
	a := New(smallConfig())
	state := make([]float64, 12)
	meas := []float64{0.5, 0.5}
	goal := []float64{0.5, 0.5}
	// valid <= 0 and valid > Actions must both clamp to the full range.
	for _, valid := range []int{0, -3, 99} {
		got := a.Act(state, meas, goal, valid, false)
		if got < 0 || got >= a.cfg.Actions {
			t.Fatalf("valid=%d produced action %d", valid, got)
		}
	}
}

func TestExtendGoalRejectsWrongArity(t *testing.T) {
	a := New(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-arity goal accepted")
		}
	}()
	a.ExtendGoal([]float64{1})
}

func TestEndEpisodeOnEmptyEpisode(t *testing.T) {
	a := New(smallConfig())
	a.EndEpisode() // must not panic
	if a.ReplaySize() != 0 {
		t.Fatal("phantom experiences")
	}
}

func TestShortEpisodeFullyMasked(t *testing.T) {
	// A single-step episode has no future at any offset: nothing stored.
	a := New(smallConfig())
	a.eps = 0
	a.Act(make([]float64, 12), []float64{0.1, 0.2}, []float64{0.5, 0.5}, 3, true)
	a.EndEpisode()
	if a.ReplaySize() != 0 {
		t.Fatalf("replay has %d from a 1-step episode", a.ReplaySize())
	}
}

func TestScoreIsGoalLinear(t *testing.T) {
	// Doubling the goal doubles every action's score (dot-product scoring).
	a := New(smallConfig())
	state := make([]float64, 12)
	meas := []float64{0.4, 0.6}
	g1 := a.ExtendGoal([]float64{0.3, 0.7})
	g2 := a.ExtendGoal([]float64{0.6, 1.4})
	preds := a.Predict(state, meas, g1)
	s1 := a.Score(preds, g1)
	s2 := a.Score(preds, g2)
	for i := range s1 {
		if math.Abs(s2[i]-2*s1[i]) > 1e-9 {
			t.Fatalf("score not linear in goal: %v vs %v", s1[i], s2[i])
		}
	}
}

func TestNumParamsPositiveAndStable(t *testing.T) {
	a := New(smallConfig())
	n := a.NumParams()
	if n <= 0 {
		t.Fatal("no parameters")
	}
	a.TrainStep() // no-op on empty replay
	if a.NumParams() != n {
		t.Fatal("parameter count changed")
	}
}
