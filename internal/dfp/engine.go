// The minibatch training engine. One TrainStep samples a minibatch, shards
// it across Config.Workers goroutines, and runs one *batched* forward and
// backward pass per shard through the nn package's matrix-matrix kernels —
// replacing the pre-refactor per-sample scalar loop. Three ideas carry the
// speedup:
//
//  1. Batched kernels: each worker gathers its shard into row-major
//     matrices and drives Dense/activation layers through
//     ForwardBatchInto/BackwardBatchInto, so loop overhead amortizes and
//     the Dense kernels run cache-blocked 4-way-unrolled matrix-matrix
//     loops against L1-resident weight tiles.
//
//  2. Sparse dueling backward: the gradient of the masked MSE with respect
//     to the action stream's output is e_a⊗g − (1/n)·1⊗g (only the taken
//     action's PredDim slice is nonzero before mean subtraction). Instead
//     of materializing the dense Actions×PredDim gradient per sample, the
//     engine propagates only the taken slice through the action head and
//     accumulates the rank-deficient −(1/n)·1⊗g correction once per shard
//     (using Σ_b g_b⊗h_b), exactly reproducing the dense arithmetic at a
//     fraction of the FLOPs. The input gradient's mean term reuses a
//     per-step column-collapse of the head weights (headWcol).
//
//  3. Data parallelism: workers 1..N-1 run on nn.SharedClone replicas whose
//     parameters alias the master weight Values but own private gradient
//     buffers; gradients are reduced into the master in fixed worker order
//     before the Adam step, so a given Workers setting is bitwise
//     deterministic run to run.
package dfp

import (
	"runtime"
	"sync"

	"repro/internal/nn"
)

// trainWorker owns one shard's network view and scratch buffers. Worker 0
// views the agent's own layers (gradients accumulate directly into the
// master); higher workers hold SharedClone replicas with shadow gradients.
type trainWorker struct {
	a *Agent

	stateNet nn.BatchLayer
	measNet  nn.BatchLayer
	goalNet  nn.BatchLayer
	expNet   nn.BatchLayer
	trunk    nn.BatchLayer // action stream minus its final Dense
	head     *nn.Dense     // StreamHidden -> Actions*PredDim

	params []*nn.Param // replica params in master order; nil for worker 0

	// Scratch, all Ensure-grown and reused across steps.
	stateB, measB, goalB   nn.Vec
	jsB, jmB, jgB          nn.Vec
	jointB                 nn.Vec
	expOutB, hB, actOutB   nn.Vec
	gB, predRow, meanA     nn.Vec
	dJointExpB, dJointActB nn.Vec
	dHB                    nn.Vec
	stateGB, measGB, goalG nn.Vec
	gsum, bsum             nn.Vec

	loss float64
}

// splitActStream views an action-stream Sequential as trunk + final Dense.
func splitActStream(act *nn.Sequential) (nn.BatchLayer, *nn.Dense) {
	last := len(act.Layers) - 1
	return &nn.Sequential{Layers: act.Layers[:last]}, act.Layers[last].(*nn.Dense)
}

// ensureWorkers builds the worker pool on first use (lazily, so inference-
// only agents at paper scale never pay for replica gradient buffers).
func (a *Agent) ensureWorkers() {
	if a.workers != nil {
		return
	}
	nw := a.cfg.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	trunk, head := splitActStream(a.nets.act)
	a.workers = []*trainWorker{{
		a:        a,
		stateNet: nn.Batched(a.nets.state),
		measNet:  a.nets.meas,
		goalNet:  a.nets.goal,
		expNet:   a.nets.exp,
		trunk:    trunk,
		head:     head,
	}}
	for w := 1; w < nw; w++ {
		tw, ok := a.newReplicaWorker()
		if !ok {
			break // un-cloneable custom state module: single worker
		}
		a.workers = append(a.workers, tw)
	}
}

func (a *Agent) newReplicaWorker() (*trainWorker, bool) {
	nets, ok := a.nets.sharedClone()
	if !ok {
		return nil, false
	}
	trunk, head := splitActStream(nets.act)
	tw := &trainWorker{
		a:        a,
		stateNet: nn.Batched(nets.state),
		measNet:  nets.meas,
		goalNet:  nets.goal,
		expNet:   nets.exp,
		trunk:    trunk,
		head:     head,
	}
	for _, net := range nets.all() {
		tw.params = append(tw.params, net.Params()...)
	}
	return tw, true
}

// computeHeadWcol collapses the action head's weight blocks across actions:
// headWcol[k*sh+j] = Σ_a W[(a*pd+k)*sh+j]. The sparse backward's input-
// gradient mean term needs (Σ_a W_a)ᵀ·g, so collapsing once per step turns
// an O(Actions·PredDim·StreamHidden) per-sample cost into a per-step one.
func (a *Agent) computeHeadWcol() {
	pd, n, sh := a.cfg.PredDim(), a.cfg.Actions, a.cfg.StreamHidden
	w := a.workers[0].head.W.Value
	a.headWcol = nn.Ensure(a.headWcol, pd*sh)
	nn.Fill(a.headWcol, 0)
	for ai := 0; ai < n; ai++ {
		for k := 0; k < pd; k++ {
			wc := a.headWcol[k*sh : (k+1)*sh]
			row := w[(ai*pd+k)*sh : (ai*pd+k+1)*sh]
			for j, v := range row {
				wc[j] += v
			}
		}
	}
}

// TrainStep samples one minibatch from replay, regresses the taken actions'
// predictions toward the realized future changes (masked MSE), and applies
// one Adam update. The minibatch runs through the batched engine described
// at the top of this file. It returns the mean per-sample loss, or -1 if
// the replay buffer is still empty.
func (a *Agent) TrainStep() float64 {
	if a.replay.len() == 0 {
		return -1
	}
	batch := a.cfg.BatchSize
	if batch > a.replay.len() {
		batch = a.replay.len()
	}
	// The sample sequence consumes the rng identically regardless of worker
	// count, so exploration and sampling are reproducible across Workers
	// settings.
	a.batchBuf = a.batchBuf[:0]
	for b := 0; b < batch; b++ {
		a.batchBuf = append(a.batchBuf, a.replay.sample(a.rng))
	}
	a.ensureWorkers()
	nw := len(a.workers)
	if nw > batch {
		nw = batch
	}
	a.computeHeadWcol()
	shard := (batch + nw - 1) / nw
	if nw == 1 {
		a.workers[0].run(a.batchBuf)
	} else {
		var wg sync.WaitGroup
		for w := 1; w < nw; w++ {
			lo := w * shard
			hi := min(lo+shard, batch)
			if lo >= hi {
				a.workers[w].loss = 0
				continue
			}
			wg.Add(1)
			go func(tw *trainWorker, exps []*Experience) {
				defer wg.Done()
				tw.run(exps)
			}(a.workers[w], a.batchBuf[lo:hi])
		}
		a.workers[0].run(a.batchBuf[:shard])
		wg.Wait()
	}
	total := 0.0
	for w := 0; w < nw; w++ {
		total += a.workers[w].loss
	}
	// Reduce shadow gradients into the master in fixed worker order.
	for w := 1; w < nw; w++ {
		for i, p := range a.workers[w].params {
			nn.AddTo(a.params[i].Grad, p.Grad)
			nn.Fill(p.Grad, 0)
		}
	}
	// Average accumulated gradients over the minibatch, clip, and update —
	// one fused pass per parameter.
	a.opt.StepScaled(a.params, 1/float64(batch), a.cfg.GradClip)
	a.trainSteps++
	return total / float64(batch)
}

// run processes one shard: gather, one batched forward, per-sample dueling
// combine and loss, and one batched backward with the sparse action-head
// path.
func (tw *trainWorker) run(exps []*Experience) {
	tw.loss = 0
	bs := len(exps)
	if bs == 0 {
		return
	}
	cfg := &tw.a.cfg
	sd, m, gd := cfg.StateDim, cfg.Measurements, cfg.GoalDim()
	pd, n := cfg.PredDim(), cfg.Actions
	so, h, sh := cfg.StateOut, cfg.ModuleHidden, cfg.StreamHidden
	jd := so + 2*h

	// Gather the shard into row-major input matrices.
	tw.stateB = nn.Ensure(tw.stateB, bs*sd)
	tw.measB = nn.Ensure(tw.measB, bs*m)
	tw.goalB = nn.Ensure(tw.goalB, bs*gd)
	for b, e := range exps {
		copy(tw.stateB[b*sd:(b+1)*sd], e.State)
		copy(tw.measB[b*m:(b+1)*m], e.Meas)
		copy(tw.goalB[b*gd:(b+1)*gd], e.Goal)
	}

	// Batched forward through the three modules, interleaved into the joint
	// representation.
	tw.jsB = nn.Ensure(tw.jsB, bs*so)
	tw.jmB = nn.Ensure(tw.jmB, bs*h)
	tw.jgB = nn.Ensure(tw.jgB, bs*h)
	js := tw.stateNet.ForwardBatchInto(tw.jsB, tw.stateB, bs)
	jm := tw.measNet.ForwardBatchInto(tw.jmB, tw.measB, bs)
	jg := tw.goalNet.ForwardBatchInto(tw.jgB, tw.goalB, bs)
	tw.jointB = nn.Ensure(tw.jointB, bs*jd)
	for b := 0; b < bs; b++ {
		row := tw.jointB[b*jd : (b+1)*jd]
		copy(row[:so], js[b*so:(b+1)*so])
		copy(row[so:so+h], jm[b*h:(b+1)*h])
		copy(row[so+h:], jg[b*h:(b+1)*h])
	}

	// Batched forward through both streams.
	tw.expOutB = nn.Ensure(tw.expOutB, bs*pd)
	tw.hB = nn.Ensure(tw.hB, bs*sh)
	tw.actOutB = nn.Ensure(tw.actOutB, bs*n*pd)
	expOut := tw.expNet.ForwardBatchInto(tw.expOutB, tw.jointB, bs)
	hB := tw.trunk.ForwardBatchInto(tw.hB, tw.jointB, bs)
	actOut := tw.head.ForwardBatchInto(tw.actOutB, hB, bs)

	// Dueling combine and masked-MSE gradient per sample: only the taken
	// action's prediction enters the loss, so gB carries one PredDim row
	// per sample.
	tw.gB = nn.Ensure(tw.gB, bs*pd)
	tw.predRow = nn.Ensure(tw.predRow, pd)
	tw.meanA = nn.Ensure(tw.meanA, pd)
	invN := 1 / float64(n)
	for b, e := range exps {
		actRow := actOut[b*n*pd : (b+1)*n*pd]
		meanA := tw.meanA
		nn.Fill(meanA, 0)
		for ai := 0; ai < n; ai++ {
			row := actRow[ai*pd : (ai+1)*pd]
			for k, v := range row {
				meanA[k] += v
			}
		}
		taken := actRow[e.Action*pd : (e.Action+1)*pd]
		for k := 0; k < pd; k++ {
			tw.predRow[k] = expOut[b*pd+k] + taken[k] - meanA[k]/float64(n)
		}
		tw.loss += nn.MaskedMSEInto(tw.gB[b*pd:(b+1)*pd], tw.predRow, e.Target, e.Mask)
	}

	// Expectation stream: dL/dE is just g, batched straight through.
	tw.dJointExpB = nn.Ensure(tw.dJointExpB, bs*jd)
	dJoint := tw.expNet.BackwardBatchInto(tw.dJointExpB, tw.gB, bs)

	// Action head, sparse path. Per sample only the taken block receives
	// +g⊗h; the −(1/n)·1⊗g mean term is accumulated in gsum/bsum and
	// applied to every block once per shard.
	headW, headWG, headBG := tw.head.W.Value, tw.head.W.Grad, tw.head.B.Grad
	wcol := tw.a.headWcol
	tw.gsum = nn.Ensure(tw.gsum, pd*sh)
	tw.bsum = nn.Ensure(tw.bsum, pd)
	nn.Fill(tw.gsum, 0)
	nn.Fill(tw.bsum, 0)
	tw.dHB = nn.Ensure(tw.dHB, bs*sh)
	nn.Fill(tw.dHB, 0)
	for b, e := range exps {
		g := tw.gB[b*pd : (b+1)*pd]
		hrow := hB[b*sh : (b+1)*sh]
		dh := tw.dHB[b*sh : (b+1)*sh]
		base := e.Action * pd
		for k, gk := range g {
			if gk == 0 {
				continue
			}
			tw.bsum[k] += gk
			headBG[base+k] += gk
			row := headW[(base+k)*sh : (base+k+1)*sh]
			grow := headWG[(base+k)*sh : (base+k+1)*sh]
			gs := tw.gsum[k*sh : (k+1)*sh]
			wc := wcol[k*sh : (k+1)*sh]
			gkn := gk * invN
			for j := 0; j < sh; j++ {
				t := gk * hrow[j]
				grow[j] += t
				gs[j] += t
				dh[j] += gk*row[j] - gkn*wc[j]
			}
		}
	}
	for ai := 0; ai < n; ai++ {
		for k := 0; k < pd; k++ {
			headBG[ai*pd+k] -= tw.bsum[k] * invN
			grow := headWG[(ai*pd+k)*sh : (ai*pd+k+1)*sh]
			gs := tw.gsum[k*sh : (k+1)*sh]
			for j, v := range gs {
				grow[j] -= v * invN
			}
		}
	}

	// Trunk backward, then sum both streams' joint gradients and split them
	// across the three input modules.
	tw.dJointActB = nn.Ensure(tw.dJointActB, bs*jd)
	dJointAct := tw.trunk.BackwardBatchInto(tw.dJointActB, tw.dHB, bs)
	nn.AddTo(dJoint, dJointAct)

	tw.stateGB = nn.Ensure(tw.stateGB, bs*so)
	tw.measGB = nn.Ensure(tw.measGB, bs*h)
	tw.goalG = nn.Ensure(tw.goalG, bs*h)
	for b := 0; b < bs; b++ {
		row := dJoint[b*jd : (b+1)*jd]
		copy(tw.stateGB[b*so:(b+1)*so], row[:so])
		copy(tw.measGB[b*h:(b+1)*h], row[so:so+h])
		copy(tw.goalG[b*h:(b+1)*h], row[so+h:])
	}
	backwardBatchNoInput(tw.stateNet, tw.stateGB, bs)
	backwardBatchNoInput(tw.measNet, tw.measGB, bs)
	backwardBatchNoInput(tw.goalNet, tw.goalG, bs)
}

// backwardBatchNoInput elides the module's first-layer input gradient (the
// module input is data, so nobody consumes it) when the module is a plain
// Sequential; custom modules take the generic path.
func backwardBatchNoInput(l nn.BatchLayer, grad nn.Vec, bsz int) {
	if s, ok := l.(*nn.Sequential); ok {
		s.BackwardBatchNoInput(grad, bsz)
		return
	}
	l.BackwardBatchInto(nil, grad, bsz)
}

// TrainStepReference is the pre-batched scalar training step: one forward
// and one dense dueling backward per sample, in sample order. It is
// retained as the arithmetic reference for the batched engine — equivalence
// tests assert TrainStep matches it to ≤1e-12 — and as the baseline for
// BenchmarkTrainStepReference. It consumes the rng exactly like TrainStep.
func (a *Agent) TrainStepReference() float64 {
	if a.replay.len() == 0 {
		return -1
	}
	batch := a.cfg.BatchSize
	if batch > a.replay.len() {
		batch = a.replay.len()
	}
	pd := a.cfg.PredDim()
	total := 0.0
	for b := 0; b < batch; b++ {
		e := a.replay.sample(a.rng)
		preds := a.forward(e.State, e.Meas, e.Goal)
		loss, grad := nn.MaskedMSE(preds[e.Action], e.Target, e.Mask)
		total += loss
		grads := make([][]float64, a.cfg.Actions)
		zero := make([]float64, pd)
		for ai := range grads {
			if ai == e.Action {
				grads[ai] = grad
			} else {
				grads[ai] = zero
			}
		}
		a.backwardFromPredGrads(grads)
	}
	for _, p := range a.params {
		nn.Scale(p.Grad, 1/float64(batch))
	}
	if a.cfg.GradClip > 0 {
		nn.ClipGrads(a.params, a.cfg.GradClip)
	}
	a.opt.Step(a.params)
	a.trainSteps++
	return total / float64(batch)
}
