package dfp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// fillReplay stores a deterministic, varied set of experiences in a's
// replay buffer (mixed actions, partially-masked targets).
func fillReplay(a *Agent, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := a.cfg
	pd := cfg.PredDim()
	for i := 0; i < count; i++ {
		state := make([]float64, cfg.StateDim)
		for j := range state {
			state[j] = rng.NormFloat64() * 0.4
		}
		meas := make([]float64, cfg.Measurements)
		for j := range meas {
			meas[j] = rng.Float64()
		}
		goal := make([]float64, cfg.Measurements)
		for j := range goal {
			goal[j] = rng.Float64()
		}
		target := make([]float64, pd)
		mask := make([]bool, pd)
		for j := range target {
			target[j] = rng.NormFloat64() * 0.2
			mask[j] = rng.Float64() < 0.8
		}
		a.replay.add(&Experience{
			State:  state,
			Meas:   meas,
			Goal:   a.ExtendGoal(goal),
			Action: rng.Intn(cfg.Actions),
			Target: target,
			Mask:   mask,
		})
	}
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

// compareAgents asserts every parameter of the two agents matches within
// rel.
func compareAgents(t *testing.T, x, y *Agent, rel float64, label string) {
	t.Helper()
	for i := range x.params {
		if d := maxRelDiff(x.params[i].Value, y.params[i].Value); d > rel {
			t.Fatalf("%s: param %s diverges by %g (tol %g)", label, x.params[i].Name, d, rel)
		}
	}
}

// TestTrainStepMatchesReference: the batched sparse engine must reproduce
// the scalar reference arithmetic (same samples, same rng draws) to within
// floating-point reassociation across multiple optimizer steps.
func TestTrainStepMatchesReference(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	newEngine := New(cfg)
	reference := New(smallConfig())
	fillReplay(newEngine, 80, 5)
	fillReplay(reference, 80, 5)

	for step := 0; step < 25; step++ {
		ln := newEngine.TrainStep()
		lr := reference.TrainStepReference()
		if math.Abs(ln-lr) > 1e-10*math.Max(1, math.Abs(lr)) {
			t.Fatalf("step %d: loss %v (batched) vs %v (reference)", step, ln, lr)
		}
	}
	compareAgents(t, newEngine, reference, 1e-9, "batched-vs-reference")
}

// TestTrainStepWorkerCountEquivalence: sharding the minibatch across
// workers must not change the result beyond reduction-order float noise.
func TestTrainStepWorkerCountEquivalence(t *testing.T) {
	mk := func(workers int) *Agent {
		cfg := smallConfig()
		cfg.Workers = workers
		a := New(cfg)
		fillReplay(a, 64, 9)
		return a
	}
	single := mk(1)
	quad := mk(4)
	for step := 0; step < 25; step++ {
		l1 := single.TrainStep()
		l4 := quad.TrainStep()
		if math.Abs(l1-l4) > 1e-10*math.Max(1, math.Abs(l1)) {
			t.Fatalf("step %d: loss %v (1 worker) vs %v (4 workers)", step, l1, l4)
		}
	}
	compareAgents(t, single, quad, 1e-9, "workers-1-vs-4")
	if len(quad.workers) != 4 {
		t.Fatalf("expected 4 workers, built %d", len(quad.workers))
	}
}

// TestTrainStepDeterminism: a fixed Workers setting must be bitwise
// reproducible run to run.
func TestTrainStepDeterminism(t *testing.T) {
	mk := func() *Agent {
		cfg := smallConfig()
		cfg.Workers = 3
		a := New(cfg)
		fillReplay(a, 50, 13)
		return a
	}
	x, y := mk(), mk()
	for step := 0; step < 10; step++ {
		if lx, ly := x.TrainStep(), y.TrainStep(); lx != ly {
			t.Fatalf("step %d: losses differ bitwise: %v vs %v", step, lx, ly)
		}
	}
	for i := range x.params {
		for j := range x.params[i].Value {
			if x.params[i].Value[j] != y.params[i].Value[j] {
				t.Fatalf("param %s not bitwise deterministic", x.params[i].Name)
			}
		}
	}
}

// TestTrainStepCNNFallback: the CNN state module exercises the Conv1D /
// MaxPool1D batch kernels inside the engine.
func TestTrainStepCNNFallback(t *testing.T) {
	cfg := smallConfig()
	cfg.StateDim = 24
	cfg.UseCNN = true
	cfg.CNNChannels = 3
	cfg.CNNKernel = 4
	cfg.CNNStride = 2
	cfg.CNNPool = 2
	cfg.Workers = 2
	batched := New(cfg)
	cfgRef := cfg
	cfgRef.Workers = 1
	reference := New(cfgRef)
	fillReplay(batched, 40, 21)
	fillReplay(reference, 40, 21)
	for step := 0; step < 10; step++ {
		lb := batched.TrainStep()
		lr := reference.TrainStepReference()
		if math.Abs(lb-lr) > 1e-10*math.Max(1, math.Abs(lr)) {
			t.Fatalf("step %d: CNN loss %v vs reference %v", step, lb, lr)
		}
	}
	compareAgents(t, batched, reference, 1e-9, "cnn-batched-vs-reference")
}

// TestTrainStepCustomStateModuleFallsBack: a custom module that SharedClone
// cannot replicate must degrade to one worker, not crash or corrupt.
func TestTrainStepCustomStateModuleFallsBack(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(2))
	cfg.StateModule = &opaqueModule{inner: nn.NewDense(cfg.StateDim, cfg.StateOut, nn.HeInit, rng)}
	cfg.Workers = 4
	a := New(cfg)
	fillReplay(a, 30, 3)
	if l := a.TrainStep(); math.IsNaN(l) || l < 0 {
		t.Fatalf("TrainStep with custom module returned %v", l)
	}
	if len(a.workers) != 1 {
		t.Fatalf("un-cloneable module must force 1 worker, got %d", len(a.workers))
	}
}

// opaqueModule hides a Dense behind a type SharedClone does not know.
type opaqueModule struct{ inner *nn.Dense }

func (o *opaqueModule) Forward(x nn.Vec) nn.Vec  { return o.inner.Forward(x) }
func (o *opaqueModule) Backward(g nn.Vec) nn.Vec { return o.inner.Backward(g) }
func (o *opaqueModule) Params() []*nn.Param      { return o.inner.Params() }
func (o *opaqueModule) OutSize(in int) int       { return o.inner.OutSize(in) }

// TestActZeroAlloc: steady-state inference must not touch the heap — the
// acceptance target behind BenchmarkDecisionLatency (§V-F).
func TestActZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(64, 2, 10)
	a := New(cfg)
	state := make([]float64, 64)
	meas := []float64{0.4, 0.6}
	goal := []float64{0.7, 0.3}
	a.Act(state, meas, goal, 10, false) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		a.Act(state, meas, goal, 10, false)
	})
	if allocs != 0 {
		t.Fatalf("inference Act allocates %v times per call, want 0", allocs)
	}
}

// TestForwardScratchMatchesReference: the scratch forward used by Act must
// agree with the allocating reference forward bit for bit.
func TestForwardScratchMatchesReference(t *testing.T) {
	a := New(smallConfig())
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		state := make([]float64, a.cfg.StateDim)
		for i := range state {
			state[i] = rng.NormFloat64()
		}
		meas := []float64{rng.Float64(), rng.Float64()}
		goalExt := a.ExtendGoal([]float64{rng.Float64(), rng.Float64()})
		want := a.forward(state, meas, goalExt)
		got := a.forwardScratch(state, meas, goalExt)
		for ai := range want {
			for k := range want[ai] {
				if want[ai][k] != got[ai][k] {
					t.Fatalf("trial %d action %d slot %d: scratch %v != reference %v",
						trial, ai, k, got[ai][k], want[ai][k])
				}
			}
		}
	}
}
