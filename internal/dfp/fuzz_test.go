package dfp

import (
	"bytes"
	"testing"
)

// FuzzAgentLoadState drives arbitrary bytes through the checkpoint
// decoder. Invariants under fuzzing: LoadState never panics, and a load
// that returns an error leaves the agent bit-for-bit unchanged (the
// no-partial-state contract). CI runs a short -fuzztime smoke; the seeded
// corpus covers the valid container plus the classic corruptions.
func FuzzAgentLoadState(f *testing.F) {
	agent := goldenAgent()
	var valid bytes.Buffer
	if err := agent.SaveState(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:37])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	f.Add([]byte("mrsch-dfp-state-v1"))

	target := New(goldenConfig())
	f.Fuzz(func(t *testing.T, data []byte) {
		var before bytes.Buffer
		if err := target.SaveState(&before); err != nil {
			t.Fatal(err)
		}
		if err := target.LoadState(bytes.NewReader(data)); err != nil {
			var after bytes.Buffer
			if err := target.SaveState(&after); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before.Bytes(), after.Bytes()) {
				t.Fatal("failed LoadState mutated the agent")
			}
		}
	})
}
