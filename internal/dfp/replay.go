package dfp

import "math/rand"

// Experience is one training sample: the inputs observed at a decision, the
// action taken, and the realized future-measurement changes (Target) with a
// validity mask for offsets that ran past the end of the episode.
type Experience struct {
	State  []float64
	Meas   []float64
	Goal   []float64 // extended goal (PredDim)
	Action int
	Target []float64
	Mask   []bool
}

// replay is a fixed-capacity ring buffer with uniform sampling.
type replay struct {
	buf  []*Experience
	next int
	full bool
}

func newReplay(capacity int) *replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &replay{buf: make([]*Experience, capacity)}
}

func (r *replay) add(e *Experience) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *replay) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

func (r *replay) sample(rng *rand.Rand) *Experience {
	return r.buf[rng.Intn(r.len())]
}
