package dfp

import (
	"fmt"
	"math/rand"
)

// Experience is one training sample: the inputs observed at a decision, the
// action taken, and the realized future-measurement changes (Target) with a
// validity mask for offsets that ran past the end of the episode.
type Experience struct {
	State  []float64
	Meas   []float64
	Goal   []float64 // extended goal (PredDim)
	Action int
	Target []float64
	Mask   []bool
}

// replayShard is one fixed-capacity ring: oldest-first eviction, uniform
// intra-shard sampling. It is the pre-sharding replay buffer verbatim.
type replayShard struct {
	buf  []*Experience
	next int
	full bool
}

func (s *replayShard) add(e *Experience) {
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
}

func (s *replayShard) len() int {
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// replay is the experience buffer, sharded into independent rings so that
// (a) distinct writers can each own a shard and append without any shared
// mutable state (the ingestion side of pipelined training), and (b) sampling
// never walks one global ring whose mutation would have to be serialized
// against Config.Workers gradient shards. Insertion round-robins shards via
// an internal cursor (or targets an explicit shard via addTo); eviction is
// oldest-first within each shard, so global eviction tracks insertion order.
//
// Sampling round-robins the non-empty shards deterministically and draws
// uniformly within the selected shard — one rng.Intn per draw. With a single
// shard this is bit-for-bit the pre-sharding ring buffer: the same insertion
// order, the same eviction order, and the same rng consumption, which is
// what keeps barrier-mode training byte-identical across the refactor.
// With S equally-loaded shards the draw is uniform over the buffer; shards
// of unequal fill are weighted by visit (small shards sample slightly hot),
// an accepted bias in exchange for lock-free composition.
type replay struct {
	shards    []replayShard
	addCur    int // next shard add appends to
	sampleCur int // next shard sample visits
}

// newReplay builds a buffer of the given total capacity split exactly
// across shards: the first capacity mod shards shards hold one extra slot,
// so the shard sizes sum to capacity and Config.ReplayCap stays a hard
// bound. capacity <= 0 is clamped to 1; shards <= 0 collapse to the
// single-ring reference layout.
func newReplay(capacity, shards int) *replay {
	if capacity <= 0 {
		capacity = 1
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	base, rem := capacity/shards, capacity%shards
	r := &replay{shards: make([]replayShard, shards)}
	for i := range r.shards {
		n := base
		if i < rem {
			n++
		}
		r.shards[i].buf = make([]*Experience, n)
	}
	return r
}

// add appends to the next shard in round-robin order. Single-writer only —
// concurrent writers must each own a shard through addTo.
func (r *replay) add(e *Experience) {
	r.shards[r.addCur].add(e)
	r.addCur++
	if r.addCur == len(r.shards) {
		r.addCur = 0
	}
}

// addTo appends to shard (shard mod #shards). Distinct shards may be written
// concurrently by their owning goroutines with no synchronization; a single
// shard is single-writer. Callers that interleave addTo with the round-robin
// add own the resulting order.
func (r *replay) addTo(shard int, e *Experience) {
	r.shards[shard%len(r.shards)].add(e)
}

// numShards reports the shard count (for sizing per-worker ingest fan-out).
func (r *replay) numShards() int { return len(r.shards) }

func (r *replay) len() int {
	n := 0
	for i := range r.shards {
		n += r.shards[i].len()
	}
	return n
}

// sample draws one experience: advance the shard cursor to the next
// non-empty shard (deterministic, rng-free) and draw uniformly within it
// (exactly one rng.Intn, matching the pre-sharding reference). It panics on
// an empty buffer — callers gate on len() as TrainStep does. Zero heap
// allocations.
func (r *replay) sample(rng *rand.Rand) *Experience {
	for range r.shards {
		s := &r.shards[r.sampleCur]
		r.sampleCur++
		if r.sampleCur == len(r.shards) {
			r.sampleCur = 0
		}
		if n := s.len(); n > 0 {
			return s.buf[rng.Intn(n)]
		}
	}
	panic(fmt.Sprintf("dfp: sample from empty replay (%d shards)", len(r.shards)))
}
