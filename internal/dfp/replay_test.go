package dfp

import (
	"math/rand"
	"sync"
	"testing"
)

func exp(id int) *Experience {
	return &Experience{Action: id, State: []float64{float64(id)}}
}

// ids returns the Action tags currently stored, in shard-then-slot order.
func ids(r *replay) []int {
	var out []int
	for si := range r.shards {
		s := &r.shards[si]
		for i := 0; i < s.len(); i++ {
			out = append(out, s.buf[i].Action)
		}
	}
	return out
}

// Before wraparound the single ring stores insertions in order; after
// wraparound the oldest entries are evicted first and the write cursor
// cycles — the FIFO eviction contract the agent's uniform sampling assumes.
func TestReplayWraparoundEvictionOrder(t *testing.T) {
	r := newReplay(4, 1)
	for i := 0; i < 3; i++ {
		r.add(exp(i))
	}
	if r.len() != 3 {
		t.Fatalf("len %d, want 3", r.len())
	}
	if got := ids(r); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("pre-wrap contents %v", got)
	}

	r.add(exp(3)) // buffer now full: [0 1 2 3]
	r.add(exp(4)) // evicts 0 -> [4 1 2 3]
	r.add(exp(5)) // evicts 1 -> [4 5 2 3]
	if r.len() != 4 {
		t.Fatalf("post-wrap len %d, want capacity 4", r.len())
	}
	got := ids(r)
	want := []int{4, 5, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-wrap contents %v, want %v", got, want)
		}
	}

	// Another full cycle evicts everything from the first generation.
	for i := 6; i < 10; i++ {
		r.add(exp(i))
	}
	for _, id := range ids(r) {
		if id < 6 {
			t.Fatalf("generation-1 experience %d survived two wraparounds: %v", id, ids(r))
		}
	}
}

// Capacity splits ceil-evenly across shards; insertion round-robins so each
// shard sees every k-th experience, and eviction stays FIFO per shard.
func TestReplayShardedInsertionAndEviction(t *testing.T) {
	r := newReplay(6, 3) // 3 shards x 2 slots
	if r.numShards() != 3 {
		t.Fatalf("numShards %d", r.numShards())
	}
	for i := 0; i < 6; i++ {
		r.add(exp(i))
	}
	if r.len() != 6 {
		t.Fatalf("len %d, want 6", r.len())
	}
	// Shard s holds experiences s, s+3 (insertion order preserved).
	got := ids(r)
	want := []int{0, 3, 1, 4, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharded contents %v, want %v", got, want)
		}
	}
	// Next add round-robins back to shard 0 and evicts its oldest (0).
	r.add(exp(6))
	for _, id := range ids(r) {
		if id == 0 {
			t.Fatalf("oldest shard-0 entry not evicted: %v", ids(r))
		}
	}
	if r.len() != 6 {
		t.Fatalf("len %d after eviction, want 6", r.len())
	}
}

// More shards than capacity clamps to one slot per shard rather than
// allocating empty rings.
func TestReplayShardsClampedToCapacity(t *testing.T) {
	r := newReplay(2, 8)
	if r.numShards() != 2 {
		t.Fatalf("numShards %d, want 2", r.numShards())
	}
	r.add(exp(1))
	r.add(exp(2))
	r.add(exp(3)) // wraps shard 0
	if r.len() != 2 {
		t.Fatalf("len %d, want 2", r.len())
	}
}

// Shard sizes sum to exactly the configured capacity for any shard count —
// Config.ReplayCap is a hard bound, never rounded up per shard.
func TestReplayCapacityExactAcrossShards(t *testing.T) {
	for _, tc := range []struct{ cap, shards int }{
		{1000, 6}, {7, 3}, {5, 5}, {20000, 7}, {9, 4},
	} {
		r := newReplay(tc.cap, tc.shards)
		total := 0
		for i := range r.shards {
			total += len(r.shards[i].buf)
		}
		if total != tc.cap {
			t.Fatalf("cap=%d shards=%d: shard sizes sum to %d", tc.cap, tc.shards, total)
		}
		for i := 0; i < 3*tc.cap; i++ {
			r.add(exp(i))
		}
		if r.len() != tc.cap {
			t.Fatalf("cap=%d shards=%d: len %d after overfill", tc.cap, tc.shards, r.len())
		}
	}
}

// Single-shard sampling must consume the rng exactly like the pre-sharding
// ring: one Intn(len) per draw over the same contents. This is the
// arithmetic that keeps barrier-mode training byte-identical across the
// sharding refactor.
func TestReplaySingleShardSamplingMatchesReference(t *testing.T) {
	const cap, n = 8, 11
	r := newReplay(cap, 1)
	var ref []*Experience // reference: plain ring
	refNext, refFull := 0, false
	refBuf := make([]*Experience, cap)
	for i := 0; i < n; i++ {
		e := exp(i)
		r.add(e)
		refBuf[refNext] = e
		refNext++
		if refNext == cap {
			refNext, refFull = 0, true
		}
	}
	refLen := refNext
	if refFull {
		refLen = cap
	}
	ref = refBuf[:refLen]

	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	for i := 0; i < 64; i++ {
		got := r.sample(rngA)
		want := ref[rngB.Intn(refLen)]
		if got != want {
			t.Fatalf("draw %d: got experience %d, reference %d", i, got.Action, want.Action)
		}
	}
}

// Sampling round-robins the non-empty shards deterministically: with equal
// fill every shard is visited in turn; empty shards are skipped without
// consuming randomness.
func TestReplayShardedSamplingRoundRobin(t *testing.T) {
	r := newReplay(9, 3)
	// Fill only shards 0 and 2 (via addTo); shard 1 stays empty.
	for i := 0; i < 3; i++ {
		r.addTo(0, exp(i))
		r.addTo(2, exp(100+i))
	}
	rng := rand.New(rand.NewSource(5))
	var shardSeq []int
	for i := 0; i < 8; i++ {
		e := r.sample(rng)
		if e.Action < 100 {
			shardSeq = append(shardSeq, 0)
		} else {
			shardSeq = append(shardSeq, 2)
		}
	}
	// Strict alternation 0,2,0,2,... — shard 1 never sampled, never blocks.
	for i, s := range shardSeq {
		want := 0
		if i%2 == 1 {
			want = 2
		}
		if s != want {
			t.Fatalf("draw sequence %v: draw %d from shard %d, want %d", shardSeq, i, s, want)
		}
	}

	// Determinism: the same rng seed replays the same draw sequence.
	r2 := newReplay(9, 3)
	for i := 0; i < 3; i++ {
		r2.addTo(0, exp(i))
		r2.addTo(2, exp(100+i))
	}
	rngA, rngB := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		if a, b := r.sample(rngA), r2.sample(rngB); a.Action != b.Action {
			t.Fatalf("draw %d diverges: %d vs %d", i, a.Action, b.Action)
		}
	}
}

// Distinct shards accept concurrent owner-writes with no synchronization —
// the lock-free ingestion property the sharding exists for. Run under
// -race in CI.
func TestReplayConcurrentShardOwners(t *testing.T) {
	const shards, perShard = 4, 200
	r := newReplay(shards*64, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				r.addTo(s, exp(s*1000+i))
			}
		}(s)
	}
	wg.Wait()
	if r.len() != shards*64 {
		t.Fatalf("len %d, want %d (all shards full)", r.len(), shards*64)
	}
	// Every surviving experience belongs to the shard that wrote it.
	for si := range r.shards {
		for i := 0; i < r.shards[si].len(); i++ {
			if owner := r.shards[si].buf[i].Action / 1000; owner != si {
				t.Fatalf("shard %d holds experience from writer %d", si, owner)
			}
		}
	}
}

// sample on an empty buffer is a programming error and must fail loudly.
func TestReplayEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sample on empty replay did not panic")
		}
	}()
	newReplay(4, 2).sample(rand.New(rand.NewSource(1)))
}
