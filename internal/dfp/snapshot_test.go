package dfp

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nn"
)

func snapshotTestAgent(t *testing.T) *Agent {
	t.Helper()
	cfg := DefaultConfig(12, 2, 4)
	cfg.Workers = 1
	cfg.StateHidden = []int{16}
	cfg.StateOut = 8
	cfg.ModuleHidden = 6
	cfg.StreamHidden = 8
	cfg.Offsets = []int{1, 2}
	cfg.TemporalWeights = []float64{0.5, 1}
	cfg.BatchSize = 8
	a := New(cfg)
	// Fill the replay buffer so TrainStep has something to regress on.
	state := make([]float64, cfg.StateDim)
	for ep := 0; ep < 3; ep++ {
		for step := 0; step < 12; step++ {
			state[0] = float64(step)
			a.Act(state, []float64{0.3, 0.6}, []float64{0.5, 0.5}, cfg.Actions, true)
		}
		a.EndEpisode()
	}
	return a
}

// A snapshot actor's weights stay frozen while TrainStep mutates the live
// weights, and advance exactly when PublishWeights runs — the property that
// makes collection safe to overlap with training.
func TestSnapshotActorFrozenUntilPublish(t *testing.T) {
	a := snapshotTestAgent(t)
	ac, ok := a.SnapshotActor()
	if !ok {
		t.Fatal("SnapshotActor rejected the built-in modules")
	}
	actorW := ac.nets.meas.Params()[0].Value
	liveW := a.nets.meas.Params()[0].Value
	if &actorW[0] == &liveW[0] {
		t.Fatal("snapshot actor aliases the live weights")
	}
	before := append([]float64(nil), liveW...)

	if loss := a.TrainStep(); loss < 0 {
		t.Fatal("TrainStep found empty replay")
	}
	changed := false
	for i := range liveW {
		if liveW[i] != before[i] {
			changed = true
		}
		if actorW[i] != before[i] {
			t.Fatalf("snapshot weight %d moved with training: %v vs frozen %v", i, actorW[i], before[i])
		}
	}
	if !changed {
		t.Fatal("TrainStep did not change the live weights (test is vacuous)")
	}

	a.PublishWeights()
	for i := range liveW {
		if actorW[i] != liveW[i] {
			t.Fatalf("snapshot weight %d = %v after publish, want live %v", i, actorW[i], liveW[i])
		}
	}
}

// Snapshot actors may run rollouts concurrently with TrainStep: disjoint
// buffers, no synchronization. Run under -race in CI.
func TestSnapshotActorConcurrentWithTraining(t *testing.T) {
	a := snapshotTestAgent(t)
	const actors = 3
	acs := make([]*Actor, actors)
	for i := range acs {
		ac, ok := a.SnapshotActor()
		if !ok {
			t.Fatal("SnapshotActor rejected the built-in modules")
		}
		acs[i] = ac
	}
	state := make([]float64, a.cfg.StateDim)
	var wg sync.WaitGroup
	for i, ac := range acs {
		wg.Add(1)
		go func(i int, ac *Actor) {
			defer wg.Done()
			ac.Reset(int64(i), 0) // greedy: every Act pays the full forward
			for step := 0; step < 50; step++ {
				ac.Act(state, []float64{0.4, 0.5}, []float64{0.5, 0.5}, a.cfg.Actions)
			}
		}(i, ac)
	}
	for k := 0; k < 10; k++ {
		a.TrainStep()
	}
	wg.Wait()
	// Joined: publishing here is the synchronization point the pipelined
	// harness uses between rounds.
	a.PublishWeights()
}

// A custom state module outside the SnapshotClone substrate must be
// rejected rather than silently borrowing the master (a borrowed actor
// could never overlap training).
func TestSnapshotActorRejectsCustomStateModule(t *testing.T) {
	cfg := DefaultConfig(8, 2, 3)
	rng := rand.New(rand.NewSource(4))
	cfg.Workers = 1
	cfg.StateModule = &opaqueModule{inner: nn.NewDense(cfg.StateDim, cfg.StateOut, nn.HeInit, rng)}
	a := New(cfg)
	if _, ok := a.SnapshotActor(); ok {
		t.Fatal("SnapshotActor accepted an un-cloneable custom state module")
	}
}
