// Durable agent state. Save (dfp.go) persists weights only — the model-file
// format consumed by evaluation. SaveState persists everything training
// needs to resume bit-for-bit: weights, published snapshot buffers, Adam
// moments and step counter (nn.TrainState), the sharded replay rings with
// their wraparound and round-robin cursors, the epsilon schedule position,
// the rng cursor, and any in-flight episode record. LoadState validates the
// whole container against the receiving agent's architecture before
// mutating anything: corrupt, truncated, or mismatched input fails with a
// descriptive error and leaves the agent untouched.
package dfp

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/nn"
)

// stateMagic versions the container. Bump it when the format changes
// incompatibly; LoadState reports a mismatch instead of misreading.
const stateMagic = "mrsch-dfp-state-v1"

func init() {
	// Fixed-order gob type-ID claim, keeping encoded bytes history-free
	// (see nn.GobWarmup).
	nn.RegisterGobContainer(func(enc *gob.Encoder) { enc.Encode(&agentState{}) })
}

// savedShard is one replay ring: the stored experiences in buffer-index
// order (the filled prefix when the ring has not wrapped, the whole buffer
// when it has), plus the ring geometry.
type savedShard struct {
	Cap   int
	Next  int
	Full  bool
	Items []Experience
}

// savedStep mirrors stepRecord (whose fields are unexported) for gob.
type savedStep struct {
	State  []float64
	Meas   []float64
	Goal   []float64
	Action int
	Valid  int
}

// agentState is the gob container written by SaveState.
type agentState struct {
	Magic string

	// Architecture guards: a checkpoint only loads into an agent whose
	// dimensions, seed, and replay layout match the one that wrote it.
	StateDim     int
	Measurements int
	Actions      int
	PredDim      int
	Seed         int64

	Train nn.TrainState

	RngCursor  uint64
	Eps        float64
	TrainSteps int

	Shards    []savedShard
	AddCur    int
	SampleCur int

	Episode []savedStep
}

// SaveState writes the agent's full training state to w. The agent must be
// quiescent — no TrainStep or rollout in flight — which is exactly the
// state internal/rollout's round-boundary checkpoint hook guarantees.
func (a *Agent) SaveState(w io.Writer) error {
	st := agentState{
		Magic:        stateMagic,
		StateDim:     a.cfg.StateDim,
		Measurements: a.cfg.Measurements,
		Actions:      a.cfg.Actions,
		PredDim:      a.cfg.PredDim(),
		Seed:         a.cfg.Seed,
		Train:        nn.CaptureTrainState(a.params, a.opt),
		RngCursor:    a.rngSrc.Cursor(),
		Eps:          a.eps,
		TrainSteps:   a.trainSteps,
		AddCur:       a.replay.addCur,
		SampleCur:    a.replay.sampleCur,
	}
	for i := range a.replay.shards {
		s := &a.replay.shards[i]
		sv := savedShard{Cap: len(s.buf), Next: s.next, Full: s.full}
		for _, e := range s.buf[:s.len()] {
			sv.Items = append(sv.Items, *e)
		}
		st.Shards = append(st.Shards, sv)
	}
	for _, rec := range a.episode {
		st.Episode = append(st.Episode, savedStep{
			State: rec.state, Meas: rec.meas, Goal: rec.goal,
			Action: rec.action, Valid: rec.valid,
		})
	}
	if err := nn.EncodeChecksummed(w, &st); err != nil {
		return fmt.Errorf("dfp: save state: %w", err)
	}
	return nil
}

// LoadState restores state previously written by SaveState into an agent
// constructed with the same Config. The container is decoded and validated
// in full first; any error — decode failure, version mismatch, or a
// mismatch with this agent's architecture, seed, or replay layout — is
// returned with nothing applied.
func (a *Agent) LoadState(r io.Reader) error {
	var st agentState
	if err := nn.DecodeChecksummed(r, &st); err != nil {
		return fmt.Errorf("dfp: load state: %w", err)
	}
	if err := a.checkState(&st); err != nil {
		return fmt.Errorf("dfp: load state: %w", err)
	}

	// Validation passed: apply every section. Apply cannot fail after Check.
	if err := st.Train.Apply(a.params, a.opt); err != nil {
		return fmt.Errorf("dfp: load state: %w", err) // unreachable: checked above
	}
	a.rngSrc.SeekTo(st.RngCursor)
	a.eps = st.Eps
	a.trainSteps = st.TrainSteps
	a.replay.addCur = st.AddCur
	a.replay.sampleCur = st.SampleCur
	for i := range a.replay.shards {
		s := &a.replay.shards[i]
		sv := &st.Shards[i]
		s.next = sv.Next
		s.full = sv.Full
		for j := range s.buf {
			s.buf[j] = nil
		}
		for j := range sv.Items {
			e := sv.Items[j]
			s.buf[j] = &e
		}
	}
	a.episode = nil
	for _, rec := range st.Episode {
		a.episode = append(a.episode, &stepRecord{
			state: rec.State, meas: rec.Meas, goal: rec.Goal,
			action: rec.Action, valid: rec.Valid,
		})
	}
	return nil
}

// checkState validates the decoded container against the agent without
// mutating anything.
func (a *Agent) checkState(st *agentState) error {
	if st.Magic != stateMagic {
		return fmt.Errorf("bad magic %q (want %q; corrupt file or incompatible format version)", st.Magic, stateMagic)
	}
	pd := a.cfg.PredDim()
	if st.StateDim != a.cfg.StateDim || st.Measurements != a.cfg.Measurements ||
		st.Actions != a.cfg.Actions || st.PredDim != pd {
		return fmt.Errorf("architecture mismatch: state was saved for dims state=%d meas=%d actions=%d pred=%d, agent has state=%d meas=%d actions=%d pred=%d",
			st.StateDim, st.Measurements, st.Actions, st.PredDim,
			a.cfg.StateDim, a.cfg.Measurements, a.cfg.Actions, pd)
	}
	if st.Seed != a.cfg.Seed {
		return fmt.Errorf("seed mismatch: state was saved at seed %d, agent runs seed %d (the rng cursor is only meaningful for the saved seed)", st.Seed, a.cfg.Seed)
	}
	if st.RngCursor > nn.MaxRngCursor {
		return fmt.Errorf("rng cursor %d exceeds the plausible maximum %d (corrupt or hand-crafted state; replaying it would hang the loader)", st.RngCursor, uint64(nn.MaxRngCursor))
	}
	if err := st.Train.Check(a.params); err != nil {
		return err
	}
	if st.Eps < 0 || st.Eps > 1 {
		return fmt.Errorf("epsilon %g outside [0,1]", st.Eps)
	}
	if st.TrainSteps < 0 {
		return fmt.Errorf("negative train-step counter %d", st.TrainSteps)
	}
	if len(st.Shards) != len(a.replay.shards) {
		return fmt.Errorf("replay layout mismatch: state has %d shards, agent has %d (ReplayShards must match the saving configuration)",
			len(st.Shards), len(a.replay.shards))
	}
	if st.AddCur < 0 || st.AddCur >= len(a.replay.shards) || st.SampleCur < 0 || st.SampleCur >= len(a.replay.shards) {
		return fmt.Errorf("replay cursors out of range: add=%d sample=%d for %d shards", st.AddCur, st.SampleCur, len(a.replay.shards))
	}
	for i := range st.Shards {
		sv := &st.Shards[i]
		cap := len(a.replay.shards[i].buf)
		if sv.Cap != cap {
			return fmt.Errorf("replay shard %d capacity mismatch: state has %d, agent has %d (ReplayCap must match the saving configuration)", i, sv.Cap, cap)
		}
		if sv.Next < 0 || sv.Next >= cap {
			return fmt.Errorf("replay shard %d wraparound cursor %d out of range [0,%d)", i, sv.Next, cap)
		}
		want := sv.Next
		if sv.Full {
			want = cap
		}
		if len(sv.Items) != want {
			return fmt.Errorf("replay shard %d has %d stored experiences, geometry implies %d (next=%d full=%v)",
				i, len(sv.Items), want, sv.Next, sv.Full)
		}
		for j := range sv.Items {
			if err := a.checkExperience(&sv.Items[j]); err != nil {
				return fmt.Errorf("replay shard %d experience %d: %w", i, j, err)
			}
		}
	}
	for i := range st.Episode {
		rec := &st.Episode[i]
		if len(rec.State) != a.cfg.StateDim || len(rec.Meas) != a.cfg.Measurements || len(rec.Goal) != pd {
			return fmt.Errorf("episode step %d vector lengths state=%d meas=%d goal=%d, want %d/%d/%d",
				i, len(rec.State), len(rec.Meas), len(rec.Goal), a.cfg.StateDim, a.cfg.Measurements, pd)
		}
		if rec.Action < 0 || rec.Action >= a.cfg.Actions || rec.Valid <= 0 || rec.Valid > a.cfg.Actions {
			return fmt.Errorf("episode step %d action %d / valid %d out of range for %d actions", i, rec.Action, rec.Valid, a.cfg.Actions)
		}
	}
	return nil
}

// checkExperience validates one replay sample's vector lengths and action.
func (a *Agent) checkExperience(e *Experience) error {
	pd := a.cfg.PredDim()
	if len(e.State) != a.cfg.StateDim || len(e.Meas) != a.cfg.Measurements || len(e.Goal) != pd ||
		len(e.Target) != pd || len(e.Mask) != pd {
		return fmt.Errorf("vector lengths state=%d meas=%d goal=%d target=%d mask=%d, want %d/%d/%d/%d/%d",
			len(e.State), len(e.Meas), len(e.Goal), len(e.Target), len(e.Mask),
			a.cfg.StateDim, a.cfg.Measurements, pd, pd, pd)
	}
	if e.Action < 0 || e.Action >= a.cfg.Actions {
		return fmt.Errorf("action %d out of range for %d actions", e.Action, a.cfg.Actions)
	}
	return nil
}
