package dfp

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nn"
)

// goldenStatePath is the committed format-stability fixture: a checkpoint
// written by this package at format v1. Regenerate (after a DELIBERATE
// format change, bumping stateMagic) with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenStateFixture ./internal/dfp/
var goldenStatePath = filepath.Join("..", "..", "specs", "golden-dfp-state-v1.ckpt")

// goldenConfig is the fixture's architecture: small, sharded replay with a
// capacity low enough that the fixture exercises ring wraparound.
func goldenConfig() Config {
	cfg := smallConfig()
	cfg.Workers = 1
	cfg.ReplayCap = 16
	cfg.ReplayShards = 2
	cfg.BatchSize = 4
	return cfg
}

// goldenAgent builds the deterministic agent the fixture snapshots: a
// wrapped replay buffer, a few gradient steps (Adam moments + rng
// movement), an in-flight episode record, and a materialized published
// snapshot (the pipelined-training buffer).
func goldenAgent() *Agent {
	a := New(goldenConfig())
	fillReplay(a, 24, 5) // 24 > cap 16: both rings wrap
	for i := 0; i < 6; i++ {
		a.TrainStep()
	}
	rng := rand.New(rand.NewSource(9))
	state := make([]float64, a.cfg.StateDim)
	meas := make([]float64, a.cfg.Measurements)
	goal := make([]float64, a.cfg.Measurements)
	for i := 0; i < 3; i++ {
		for j := range state {
			state[j] = rng.NormFloat64()
		}
		for j := range meas {
			meas[j] = rng.Float64()
		}
		for j := range goal {
			goal[j] = rng.Float64()
		}
		a.Act(state, meas, goal, a.cfg.Actions, true) // records an in-flight episode step
	}
	a.SnapshotActor()
	a.PublishWeights()
	return a
}

func stateBytes(t *testing.T, a *Agent) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func weightBytes(t *testing.T, a *Agent) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// SaveState -> LoadState into a fresh agent must reproduce the full
// training state: identical re-serialization, and bit-identical training
// continuation (losses, rng-driven sampling, epsilon, weights).
func TestStateRoundTrip(t *testing.T) {
	a := goldenAgent()
	saved := stateBytes(t, a)

	b := New(goldenConfig())
	if err := b.LoadState(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if got := stateBytes(t, b); !bytes.Equal(got, saved) {
		t.Fatal("re-serialized state differs from the loaded bytes")
	}
	if a.ReplaySize() != b.ReplaySize() || a.Epsilon() != b.Epsilon() {
		t.Fatalf("surface state differs: replay %d/%d eps %g/%g", a.ReplaySize(), b.ReplaySize(), a.Epsilon(), b.Epsilon())
	}

	// Continue training both: the trajectories must stay bitwise equal
	// through episode ingestion and further gradient steps.
	a.EndEpisode()
	b.EndEpisode()
	for i := 0; i < 5; i++ {
		la, lb := a.TrainStep(), b.TrainStep()
		if la != lb {
			t.Fatalf("step %d: loss %v != %v after resume", i, la, lb)
		}
	}
	if !bytes.Equal(weightBytes(t, a), weightBytes(t, b)) {
		t.Fatal("weights diverged after resumed training")
	}
}

// Corrupt input — any flipped byte or truncation anywhere in the file —
// must fail loudly and leave the receiving agent untouched.
func TestLoadStateCorruptionRejectedWithoutPartialApply(t *testing.T) {
	saved := stateBytes(t, goldenAgent())

	fresh := func() (*Agent, []byte) {
		b := New(goldenConfig())
		return b, stateBytes(t, b)
	}
	check := func(label string, data []byte) {
		t.Helper()
		b, before := fresh()
		if err := b.LoadState(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: corrupt state accepted", label)
		}
		if after := stateBytes(t, b); !bytes.Equal(before, after) {
			t.Fatalf("%s: failed load mutated the agent (no-partial-state contract)", label)
		}
	}

	check("empty", nil)
	for _, frac := range []int{10, 3, 2} {
		check("truncated", saved[:len(saved)/frac])
	}
	check("truncated-by-one", saved[:len(saved)-1])
	step := len(saved)/97 + 1
	for off := 0; off < len(saved); off += step {
		mutated := append([]byte(nil), saved...)
		mutated[off] ^= 0x40
		check("bitflip", mutated)
	}
}

// A version-mismatched container (wrong inner magic) is named as such.
func TestLoadStateVersionMismatch(t *testing.T) {
	a := goldenAgent()
	var buf bytes.Buffer
	st := agentState{Magic: "mrsch-dfp-state-v0"}
	if err := nn.EncodeChecksummed(&buf, &st); err != nil {
		t.Fatal(err)
	}
	err := a.LoadState(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want a magic/version error, got %v", err)
	}
}

// State only loads into the agent configuration that wrote it: dimension,
// seed, and replay-layout drift are all named in the error.
func TestLoadStateConfigMismatch(t *testing.T) {
	saved := stateBytes(t, goldenAgent())
	cases := []struct {
		label  string
		mutate func(*Config)
		want   string
	}{
		{"dims", func(c *Config) { c.StateDim = 13 }, "architecture mismatch"},
		{"seed", func(c *Config) { c.Seed = 4 }, "seed mismatch"},
		{"shards", func(c *Config) { c.ReplayShards = 1 }, "replay layout mismatch"},
		{"capacity", func(c *Config) { c.ReplayCap = 32 }, "capacity mismatch"},
	}
	for _, tc := range cases {
		cfg := goldenConfig()
		tc.mutate(&cfg)
		b := New(cfg)
		err := b.LoadState(bytes.NewReader(saved))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.label, tc.want, err)
		}
	}
}

// The committed fixture must keep loading — and re-serializing to its
// exact committed bytes — for as long as stateMagic says v1. If this test
// fails, the change broke the on-disk format: either restore
// compatibility or bump the version (with a loud error for old files) and
// regenerate the fixture.
func TestGoldenStateFixture(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		data := stateBytes(t, goldenAgent())
		if err := os.WriteFile(goldenStatePath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", goldenStatePath, len(data))
	}
	data, err := os.ReadFile(goldenStatePath)
	if err != nil {
		t.Fatalf("golden fixture missing (generate with UPDATE_GOLDEN=1): %v", err)
	}
	b := New(goldenConfig())
	if err := b.LoadState(bytes.NewReader(data)); err != nil {
		t.Fatalf("golden v1 fixture no longer loads: %v", err)
	}
	if got := stateBytes(t, b); !bytes.Equal(got, data) {
		t.Fatal("golden fixture round-trip drifted: load+save no longer reproduces the committed bytes")
	}
	// Spot-check the restored surface: the fixture has a wrapped 16-slot
	// replay, a 3-step in-flight episode, and an advanced rng cursor.
	if b.ReplaySize() != 16 {
		t.Errorf("restored replay size %d, want 16", b.ReplaySize())
	}
	if len(b.episode) != 3 {
		t.Errorf("restored in-flight episode has %d steps, want 3", len(b.episode))
	}
	if b.rngSrc.Cursor() == 0 {
		t.Error("restored rng cursor is zero; the fixture should have consumed draws")
	}
	if b.trainSteps != 6 {
		t.Errorf("restored trainSteps %d, want 6", b.trainSteps)
	}
}
