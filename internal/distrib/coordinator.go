package distrib

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// The coordinator: expands a campaign into cells, shards them over a pool of
// workers, and survives the workers. All scheduling state lives in one
// event-loop goroutine; per-worker reader goroutines only forward frames.

// Pool abstracts where workers come from: spawned processes (ProcPool),
// dialed-in TCP connections (ListenPool), or in-process goroutines over
// pipes (PoolOf — the fault-injection tests). Start is called once per
// worker id, sequentially, before distribution begins.
type Pool interface {
	Size() int
	Start(id int) (io.ReadWriteCloser, error)
}

// Options tune the coordinator's robustness machinery. The zero value gets
// sane defaults (500ms heartbeats, 5s liveness timeout, 3 attempts per cell,
// 250ms–10s exponential backoff).
type Options struct {
	// HeartbeatInterval is the cadence workers are told to prove liveness
	// at; HeartbeatTimeout is how long the coordinator waits past the last
	// frame before declaring a worker dead (rule 4).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// CellDeadline bounds one cell evaluation on one worker (0 = no bound).
	// A worker that blows the deadline is severed and its cell requeued.
	CellDeadline time.Duration
	// MaxAttempts bounds distributed attempts per cell; a cell that fails
	// them all is relegated to the in-process fallback (rule 6).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential requeue delay:
	// attempt n waits base<<(n-1) capped at max, halved and jittered.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter (deterministic tests pin it).
	Seed int64
	// DisableFallback turns graceful degradation into a hard error: if the
	// pool empties or a cell exhausts MaxAttempts, Run fails instead of
	// finishing the work in-process.
	DisableFallback bool
	// Faults maps worker id → injected sabotage (tests and the CI smoke).
	Faults Faults
	// OnEvent observes every scheduling decision; Logf gets progress lines.
	OnEvent func(Event)
	Logf    func(format string, args ...any)
	// Metrics, when set, receives the distrib_* counters (heartbeats,
	// assignments, requeues, worker deaths, fallbacks, late results).
	// Telemetry is observe-only and cannot perturb scheduling (rule 10).
	Metrics *telemetry.Registry
	// Journal, when set, mirrors every scheduling Event as one JSONL line
	// (event "distrib_<kind>" with worker/cell/attempt fields).
	Journal *telemetry.Journal
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// EventKind classifies coordinator scheduling events.
type EventKind string

const (
	// EventAssign: a cell was assigned to a worker (Attempt counts from 1).
	EventAssign EventKind = "assign"
	// EventResult: a cell's first valid result arrived and was collated.
	EventResult EventKind = "result"
	// EventDuplicate: a result for an already-collated cell was dropped.
	EventDuplicate EventKind = "duplicate"
	// EventCorrupt: a worker's stream produced a damaged frame (severed).
	EventCorrupt EventKind = "corrupt"
	// EventTimeout: a worker missed its heartbeat or cell deadline (severed).
	EventTimeout EventKind = "timeout"
	// EventWorkerDead: a worker's connection ended (EOF, fatal, write error).
	EventWorkerDead EventKind = "worker-dead"
	// EventRequeue: a dead worker's in-flight cell went back in the queue.
	EventRequeue EventKind = "requeue"
	// EventFallback: a cell was evaluated in-process by the coordinator.
	EventFallback EventKind = "fallback"
	// EventLateResult: a result from a severed (presumed-dead) worker was
	// accepted and collated — the worker resurrected after its sever.
	// Emitted alongside the cell's EventResult for visibility (rule 2's
	// late-acceptance path used to be silent).
	EventLateResult EventKind = "late-result"
)

// Event is one observed scheduling decision. Cell is -1 when the event is
// not about a particular cell.
type Event struct {
	Kind    EventKind
	Worker  int
	Cell    int
	Attempt int
	Err     string
}

// wevent is what a per-worker reader goroutine forwards to the event loop:
// one decoded frame, or the read error that ended the stream.
type wevent struct {
	w   *workerState
	msg *message
	err error
}

type workerState struct {
	id   int
	conn io.ReadWriteCloser

	alive bool
	ready bool // hello seen, config sent
	idle  bool

	cell       int // in-flight cell index, -1 when idle
	attempt    int // attempt number of the in-flight cell
	lastHeard  time.Time
	assignedAt time.Time
}

// pendingCell is a queued (or requeued) cell: attempts already consumed and
// the earliest instant it may be reassigned (backoff; rule 6).
type pendingCell struct {
	cell      int
	attempts  int
	notBefore time.Time
}

// distribMetrics caches the coordinator's counters at wire-up time. With a
// nil registry they are live orphans; either way the event loop schedules
// identically (rule 10).
type distribMetrics struct {
	heartbeats   *telemetry.Counter
	assigns      *telemetry.Counter
	results      *telemetry.Counter
	duplicates   *telemetry.Counter
	requeues     *telemetry.Counter
	workerDeaths *telemetry.Counter
	fallbacks    *telemetry.Counter
	lateResults  *telemetry.Counter
}

func newDistribMetrics(reg *telemetry.Registry) distribMetrics {
	return distribMetrics{
		heartbeats:   reg.Counter("distrib_heartbeats_total"),
		assigns:      reg.Counter("distrib_assigns_total"),
		results:      reg.Counter("distrib_results_total"),
		duplicates:   reg.Counter("distrib_duplicates_total"),
		requeues:     reg.Counter("distrib_requeues_total"),
		workerDeaths: reg.Counter("distrib_worker_deaths_total"),
		fallbacks:    reg.Counter("distrib_fallback_cells_total"),
		lateResults:  reg.Counter("distrib_late_results_total"),
	}
}

type coordinator struct {
	opt  Options
	m    distribMetrics
	run  *experiments.CampaignRun
	spec scenario.CampaignSpec
	fp   string

	cfg message // config template; Worker and Plan filled per worker

	workers  []*workerState
	pending  []pendingCell
	fallback []int

	results []experiments.CellResult
	done    []bool
	failed  map[int]string // terminal per-cell evaluation errors
	nDone   int

	rng      *rand.Rand
	events   chan wevent
	loopDone chan struct{}
}

// Run executes the campaign over the pool and returns results in expansion
// order, byte-identical to what the single-process experiments.RunCampaign
// produces for the same spec and options (rule 9). Family models are
// resolved exactly once, up front, into the content-addressed model store;
// when the campaign has trained methods and copt.ModelDir is empty, a
// temporary store is created for the run and removed afterwards.
func Run(spec scenario.CampaignSpec, copt experiments.CampaignOptions, opt Options, pool Pool) ([]experiments.CellResult, error) {
	opt = opt.withDefaults()
	if copt.NoTrain {
		return nil, fmt.Errorf("distrib: the coordinator trains; NoTrain is for workers")
	}
	if needsModelStore(spec) && copt.ModelDir == "" {
		dir, err := os.MkdirTemp("", "mrsch-distrib-store-")
		if err != nil {
			return nil, fmt.Errorf("distrib: temp model store: %w", err)
		}
		defer os.RemoveAll(dir)
		copt.ModelDir = dir
		opt.Logf("distrib: using temporary model store %s", dir)
	}

	// Exactly-once training (rule 7): every cell resolves here, serially,
	// before any worker sees an assignment. Trained family models land in
	// the store; workers run NoTrain and can only load them.
	run, err := experiments.OpenCampaign(spec, copt)
	if err != nil {
		return nil, err
	}
	cells := run.Cells()
	for _, cell := range cells {
		if err := run.ResolveCell(cell); err != nil {
			return nil, err
		}
	}

	var specBuf strings.Builder
	if err := spec.Dump(&specBuf); err != nil {
		return nil, err
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}

	c := &coordinator{
		opt:  opt,
		m:    newDistribMetrics(opt.Metrics),
		run:  run,
		spec: spec,
		fp:   fp,
		cfg: message{
			Type:            msgConfig,
			Proto:           ProtocolVersion,
			Spec:            []byte(specBuf.String()),
			Fingerprint:     fp,
			ModelDir:        copt.ModelDir,
			Workers:         rollout.ResolveWorkers(copt.Workers),
			Pipelined:       copt.Pipelined,
			HeartbeatMillis: opt.HeartbeatInterval.Milliseconds(),
		},
		results:  make([]experiments.CellResult, len(cells)),
		done:     make([]bool, len(cells)),
		failed:   make(map[int]string),
		rng:      rand.New(rand.NewSource(opt.Seed)),
		events:   make(chan wevent, 64),
		loopDone: make(chan struct{}),
	}
	for i, cell := range cells {
		c.results[i] = experiments.CellResult{Cell: cell}
		c.pending = append(c.pending, pendingCell{cell: i})
	}

	c.startWorkers(pool)
	c.loop()
	c.shutdown()

	if err := c.runFallback(); err != nil {
		return c.results, err
	}
	return c.collate()
}

// needsModelStore reports whether any method trains in-process (an explicit
// Model file is its own store).
func needsModelStore(spec scenario.CampaignSpec) bool {
	for _, m := range spec.Methods {
		if m.Kind.Trained() && m.Model == "" {
			return true
		}
	}
	return false
}

// startWorkers brings up the pool: one connection and one reader goroutine
// per worker. A worker that fails to start is simply absent — the campaign
// degrades rather than aborts (rule 8).
func (c *coordinator) startWorkers(pool Pool) {
	now := time.Now()
	for id := 0; id < pool.Size(); id++ {
		conn, err := pool.Start(id)
		if err != nil {
			c.opt.Logf("distrib: worker %d failed to start: %v", id, err)
			continue
		}
		w := &workerState{id: id, conn: conn, alive: true, cell: -1, lastHeard: now}
		c.workers = append(c.workers, w)
		go func() {
			for {
				m, err := readFrame(w.conn)
				select {
				case c.events <- wevent{w: w, msg: m, err: err}:
				case <-c.loopDone:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

// loop is the scheduling event loop: it runs until every cell is collated,
// every remaining cell is relegated to fallback, or the pool is empty.
func (c *coordinator) loop() {
	tick := c.opt.HeartbeatInterval / 2
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for c.nDone < len(c.results) && c.outstanding() > 0 {
		if c.aliveCount() == 0 {
			return // pool empty; the rest runs in-process (rule 8)
		}
		c.dispatch()
		select {
		case ev := <-c.events:
			c.handleEvent(ev)
		case <-ticker.C:
			c.checkTimeouts()
		}
	}
}

// outstanding counts cells still eligible for distribution: queued plus
// in-flight. Cells relegated to fallback are no longer outstanding.
func (c *coordinator) outstanding() int {
	n := len(c.pending)
	for _, w := range c.workers {
		if w.alive && w.cell >= 0 {
			n++
		}
	}
	return n
}

func (c *coordinator) aliveCount() int {
	n := 0
	for _, w := range c.workers {
		if w.alive {
			n++
		}
	}
	return n
}

func (c *coordinator) handleEvent(ev wevent) {
	w := ev.w
	if ev.err != nil {
		kind := EventWorkerDead
		if errors.Is(ev.err, ErrCorruptFrame) {
			kind = EventCorrupt
		}
		c.workerDead(w, kind, ev.err)
		return
	}
	m := ev.msg
	if !w.alive {
		// A frame that raced the sever. A valid result for an uncollated
		// cell is still a result — first valid result wins, whoever
		// computed it (rule 2) — but a resurrection must not be silent:
		// if the late result collates, announce it (EventLateResult).
		if m.Type == msgResult {
			preDone := c.nDone
			c.handleResult(w, m)
			if c.nDone > preDone {
				c.event(Event{Kind: EventLateResult, Worker: w.id, Cell: m.Cell})
			}
		}
		return
	}
	w.lastHeard = time.Now()
	switch m.Type {
	case msgHello:
		if m.Proto != ProtocolVersion {
			c.workerDead(w, EventWorkerDead,
				fmt.Errorf("distrib: worker %d speaks protocol %d, coordinator %d", w.id, m.Proto, ProtocolVersion))
			return
		}
		cfg := c.cfg
		cfg.Worker = w.id
		cfg.Plan = c.opt.Faults[w.id]
		if err := writeFrame(w.conn, &cfg); err != nil {
			c.workerDead(w, EventWorkerDead, err)
			return
		}
		w.ready = true
		w.idle = true
	case msgHeartbeat:
		// lastHeard already refreshed. Heartbeats are counted but not
		// journaled — they are liveness noise, not scheduling decisions.
		c.m.heartbeats.Inc()
	case msgResult:
		c.handleResult(w, m)
	case msgFatal:
		c.workerDead(w, EventWorkerDead, fmt.Errorf("distrib: worker %d: %s", w.id, m.Err))
	default:
		c.workerDead(w, EventCorrupt, fmt.Errorf("distrib: worker %d sent unexpected %s frame", w.id, m.Type))
	}
}

// handleResult collates one result frame with exactly-once semantics:
// the first valid result for a cell wins, every later copy is dropped
// (rule 2). A result carrying the wrong campaign fingerprint is protocol
// corruption, not data.
func (c *coordinator) handleResult(w *workerState, m *message) {
	if m.Fingerprint != c.fp {
		c.workerDead(w, EventCorrupt,
			fmt.Errorf("distrib: worker %d returned a result for campaign fingerprint %s, want %s", w.id, m.Fingerprint, c.fp))
		return
	}
	cell := m.Cell
	if cell < 0 || cell >= len(c.results) {
		c.workerDead(w, EventCorrupt, fmt.Errorf("distrib: worker %d returned out-of-grid cell %d", w.id, cell))
		return
	}
	if w.alive && w.cell == cell {
		w.cell = -1
		w.idle = true
	}
	if c.done[cell] {
		c.event(Event{Kind: EventDuplicate, Worker: w.id, Cell: cell})
		return
	}
	c.markDone(cell)
	if m.CellErr != "" {
		// Deterministic evaluation failure: retrying elsewhere would fail
		// identically, so it is terminal (rule 3).
		c.failed[cell] = m.CellErr
	} else {
		c.results[cell].Report = m.Report
	}
	c.event(Event{Kind: EventResult, Worker: w.id, Cell: cell, Err: m.CellErr})
}

// markDone collates a cell and retracts any queued or fallback copy of it
// (a late result may land after the cell was requeued).
func (c *coordinator) markDone(cell int) {
	c.done[cell] = true
	c.nDone++
	for i, p := range c.pending {
		if p.cell == cell {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	for i, f := range c.fallback {
		if f == cell {
			c.fallback = append(c.fallback[:i], c.fallback[i+1:]...)
			break
		}
	}
}

// workerDead severs a worker and requeues its in-flight cell (rule 4/5).
func (c *coordinator) workerDead(w *workerState, kind EventKind, err error) {
	if !w.alive {
		return
	}
	w.alive = false
	w.ready = false
	w.idle = false
	w.conn.Close()
	c.event(Event{Kind: kind, Worker: w.id, Cell: w.cell, Err: err.Error()})
	if w.cell >= 0 && !c.done[w.cell] {
		c.requeue(w.cell, w.attempt)
	}
	w.cell = -1
}

// requeue puts a failed attempt's cell back in the queue behind an
// exponential, jittered backoff — or relegates it to the in-process
// fallback once MaxAttempts distributed attempts are spent (rule 6).
func (c *coordinator) requeue(cell, attempts int) {
	if attempts >= c.opt.MaxAttempts {
		c.fallback = append(c.fallback, cell)
		c.event(Event{Kind: EventFallback, Worker: -1, Cell: cell, Attempt: attempts})
		return
	}
	d := c.opt.BackoffBase << uint(attempts-1)
	if d > c.opt.BackoffMax || d <= 0 {
		d = c.opt.BackoffMax
	}
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.pending = append(c.pending, pendingCell{cell: cell, attempts: attempts, notBefore: time.Now().Add(jittered)})
	c.event(Event{Kind: EventRequeue, Worker: -1, Cell: cell, Attempt: attempts})
}

// dispatch hands eligible queued cells to ready idle workers.
func (c *coordinator) dispatch() {
	now := time.Now()
	for _, w := range c.workers {
		if !w.alive || !w.ready || !w.idle {
			continue
		}
		i := -1
		for j, p := range c.pending {
			if !p.notBefore.After(now) {
				i = j
				break
			}
		}
		if i < 0 {
			return
		}
		p := c.pending[i]
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		w.cell = p.cell
		w.attempt = p.attempts + 1
		w.idle = false
		w.assignedAt = now
		if err := writeFrame(w.conn, &message{Type: msgAssign, Cell: p.cell}); err != nil {
			c.workerDead(w, EventWorkerDead, err)
			continue
		}
		c.event(Event{Kind: EventAssign, Worker: w.id, Cell: p.cell, Attempt: w.attempt})
	}
}

// checkTimeouts severs workers that missed their heartbeat window or blew
// the per-cell deadline (rule 4).
func (c *coordinator) checkTimeouts() {
	now := time.Now()
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		switch {
		case now.Sub(w.lastHeard) > c.opt.HeartbeatTimeout:
			c.workerDead(w, EventTimeout,
				fmt.Errorf("distrib: worker %d silent for %v (heartbeat timeout %v)", w.id, now.Sub(w.lastHeard).Round(time.Millisecond), c.opt.HeartbeatTimeout))
		case c.opt.CellDeadline > 0 && w.cell >= 0 && now.Sub(w.assignedAt) > c.opt.CellDeadline:
			c.workerDead(w, EventTimeout,
				fmt.Errorf("distrib: worker %d exceeded the %v cell deadline on cell %d", w.id, c.opt.CellDeadline, w.cell))
		}
	}
}

// shutdown ends surviving workers cleanly and releases the readers.
func (c *coordinator) shutdown() {
	for _, w := range c.workers {
		if !w.alive {
			continue
		}
		writeFrame(w.conn, &message{Type: msgShutdown}) // best effort
		w.conn.Close()
		w.alive = false
	}
	close(c.loopDone)
}

// runFallback finishes every uncollated cell in-process, in expansion
// order, on the coordinator's already-resolved run (rule 8) — or reports
// them as an error when fallback is disabled.
func (c *coordinator) runFallback() error {
	var remaining []int
	for i := range c.results {
		if !c.done[i] {
			remaining = append(remaining, i)
		}
	}
	if len(remaining) == 0 {
		return nil
	}
	if c.opt.DisableFallback {
		labels := make([]string, len(remaining))
		for i, cell := range remaining {
			labels[i] = c.results[cell].Cell.Label()
		}
		return fmt.Errorf("distrib: campaign %s: %d cell(s) undone with fallback disabled: %s",
			c.spec.Name, len(remaining), strings.Join(labels, "; "))
	}
	c.opt.Logf("distrib: evaluating %d remaining cell(s) in-process", len(remaining))
	for _, i := range remaining {
		c.event(Event{Kind: EventFallback, Worker: -1, Cell: i})
		cell := c.results[i].Cell
		res, err := c.run.EvalCell(cell)
		c.done[i] = true
		c.nDone++
		if err != nil {
			c.failed[i] = err.Error()
			continue
		}
		c.results[i] = res
	}
	return nil
}

// collate returns the results in expansion order; the error (if any) names
// every terminally failed cell, mirroring experiments.RunCampaign.
func (c *coordinator) collate() ([]experiments.CellResult, error) {
	if len(c.failed) == 0 {
		return c.results, nil
	}
	cells := make([]int, 0, len(c.failed))
	for cell := range c.failed {
		cells = append(cells, cell)
	}
	sort.Ints(cells)
	msgs := make([]string, len(cells))
	for i, cell := range cells {
		msgs[i] = fmt.Sprintf("%s: %s", c.results[cell].Cell.Label(), c.failed[cell])
	}
	return c.results, fmt.Errorf("distrib: campaign %s: %d cell(s) failed: %s",
		c.spec.Name, len(cells), strings.Join(msgs, "; "))
}

// event forwards one scheduling decision to the observer, the counters,
// the journal, and the log — every mirror is observe-only (rule 10).
func (c *coordinator) event(ev Event) {
	switch ev.Kind {
	case EventAssign:
		c.m.assigns.Inc()
	case EventResult:
		c.m.results.Inc()
	case EventDuplicate:
		c.m.duplicates.Inc()
	case EventRequeue:
		c.m.requeues.Inc()
	case EventFallback:
		c.m.fallbacks.Inc()
	case EventLateResult:
		c.m.lateResults.Inc()
	case EventCorrupt, EventTimeout, EventWorkerDead:
		c.m.workerDeaths.Inc()
	}
	if ev.Err != "" {
		c.opt.Journal.Event("distrib_"+string(ev.Kind), "worker", ev.Worker, "cell", ev.Cell, "attempt", ev.Attempt, "error", ev.Err)
	} else {
		c.opt.Journal.Event("distrib_"+string(ev.Kind), "worker", ev.Worker, "cell", ev.Cell, "attempt", ev.Attempt)
	}
	if c.opt.OnEvent != nil {
		c.opt.OnEvent(ev)
	}
	if ev.Err != "" {
		c.opt.Logf("distrib: %s worker=%d cell=%d attempt=%d: %s", ev.Kind, ev.Worker, ev.Cell, ev.Attempt, ev.Err)
	} else {
		c.opt.Logf("distrib: %s worker=%d cell=%d attempt=%d", ev.Kind, ev.Worker, ev.Cell, ev.Attempt)
	}
}
