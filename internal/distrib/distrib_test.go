package distrib

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// The fault-injection suite: every test runs a real campaign through the
// real wire protocol — ServeWorker goroutines over net.Pipe ends (PoolOf) —
// under a deliberately hostile FaultPlan, and asserts the campaign still
// produces output byte-identical to the uninterrupted single-process
// experiments.RunCampaign (contract rule 9).

// testSpec is a small fcfs-only campaign: two scenario families (one a
// theta-variant, so variant materials resolve on workers too) replicated
// over two seeds — four cells, enough to keep two workers busy.
func testSpec(t *testing.T) scenario.CampaignSpec {
	t.Helper()
	var scs []scenario.ScenarioSpec
	for _, name := range []string{"S2", "S4@ia=1.5"} {
		sp, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, sp)
	}
	return scenario.CampaignSpec{
		Name:      "distrib-test",
		Scale:     scenario.TinyScaleSpec(),
		Scenarios: scs,
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindHeuristic}},
		Seeds:     []int64{5, 23},
	}
}

// render produces the campaign's report bytes — the artifact rule 9 requires
// to be identical however the cells were computed.
func render(name string, results []experiments.CellResult) []byte {
	var buf bytes.Buffer
	experiments.FprintCells(&buf, name, results)
	return buf.Bytes()
}

// testPool runs n in-process workers over synchronous pipes. The cleanup
// waits for every ServeWorker goroutine: after Run severs the connections
// they must all come home (a stuck worker is itself a bug).
func testPool(t *testing.T, n int) Pool {
	t.Helper()
	var wg sync.WaitGroup
	t.Cleanup(wg.Wait)
	return PoolOf(n, func(id int) (io.ReadWriteCloser, error) {
		coord, work := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ServeWorker(work, WorkerOptions{})
		}()
		return coord, nil
	})
}

// fastOptions shrinks every robustness timescale so fault recovery happens
// in milliseconds, and records the scheduling decisions for assertions
// (OnEvent fires on Run's own goroutine — no locking needed).
func fastOptions(events *[]Event) Options {
	return Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		BackoffBase:       time.Millisecond,
		BackoffMax:        5 * time.Millisecond,
		Seed:              1,
		OnEvent:           func(ev Event) { *events = append(*events, ev) },
		// Every test coordinator runs with instruments and a journal
		// active: rule 10 says telemetry cannot perturb scheduling, so the
		// whole fault matrix doubles as its enforcement suite.
		Metrics: telemetry.NewRegistry(),
		Journal: telemetry.NewJournal(io.Discard),
	}
}

func countKind(events []Event, kind EventKind) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// assertExactlyOnce verifies rule 2 from the event stream: every cell was
// collated exactly once.
func assertExactlyOnce(t *testing.T, events []Event, cells int) {
	t.Helper()
	collated := make(map[int]int)
	for _, ev := range events {
		if ev.Kind == EventResult {
			collated[ev.Cell]++
		}
	}
	for cell, n := range collated {
		if n > 1 {
			t.Errorf("cell %d collated %d times", cell, n)
		}
	}
	if len(collated) > cells {
		t.Errorf("%d distinct cells collated, grid has %d", len(collated), cells)
	}
}

// A fault-free distributed run is byte-identical to the single-process
// campaign (rule 9), with every cell computed remotely exactly once.
func TestRunMatchesInProcess(t *testing.T) {
	spec := testSpec(t)
	ref, err := experiments.RunCampaign(spec, experiments.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	got, err := Run(spec, experiments.CampaignOptions{Workers: 1}, fastOptions(&events), testPool(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("distributed results differ from in-process RunCampaign")
	}
	if !bytes.Equal(render(spec.Name, ref), render(spec.Name, got)) {
		t.Fatal("distributed report bytes differ from in-process RunCampaign")
	}
	assertExactlyOnce(t, events, len(spec.Expand()))
	if n := countKind(events, EventResult); n != len(spec.Expand()) {
		t.Fatalf("%d results collated, want %d", n, len(spec.Expand()))
	}
	if n := countKind(events, EventFallback); n != 0 {
		t.Fatalf("%d cells fell back in-process in a healthy run", n)
	}
}

// The fault matrix: each sabotage shape from the FaultPlan harness, injected
// into worker 0, must end with a report byte-identical to the uninterrupted
// single-process run — and the coordinator must have visibly survived it
// (the expected scheduling events appear).
func TestFaultInjectionMatrix(t *testing.T) {
	spec := testSpec(t)
	cells := len(spec.Expand())
	ref, err := experiments.RunCampaign(spec, experiments.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := render(spec.Name, ref)

	cases := []struct {
		name  string
		plan  FaultPlan
		kinds []EventKind
	}{
		// Worker dies the instant its first cell arrives (rule 4 → 6).
		{"kill_at_cell", FaultPlan{KillAtCell: 1}, []EventKind{EventWorkerDead, EventRequeue}},
		// Worker evaluates, then dies before sending — the work is lost and
		// must be redone elsewhere.
		{"kill_after_eval", FaultPlan{KillAfterEval: 1}, []EventKind{EventWorkerDead, EventRequeue}},
		// Worker stays alive but falls silent: only the heartbeat timeout
		// can reclaim its cell (rule 4).
		{"heartbeat_mute", FaultPlan{MuteAtCell: 1}, []EventKind{EventTimeout, EventRequeue}},
		// Result frame arrives whole but damaged (checksum mismatch): the
		// peer is corrupt, sever and requeue (rule 5).
		{"corrupt_result", FaultPlan{CorruptResult: 1}, []EventKind{EventCorrupt, EventRequeue}},
		// Crash mid-write: a truncated frame is damage, not data (rule 5).
		{"truncate_result", FaultPlan{TruncateResult: 1}, []EventKind{EventCorrupt, EventRequeue}},
		// The same result delivered twice: the second copy is dropped
		// (rule 2).
		{"duplicate_result", FaultPlan{DuplicateResult: 1}, []EventKind{EventDuplicate}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var events []Event
			opt := fastOptions(&events)
			opt.Faults = Faults{0: tc.plan}
			got, err := Run(spec, experiments.CampaignOptions{Workers: 1}, opt, testPool(t, 2))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, render(spec.Name, got)) {
				t.Fatal("report after fault injection differs from the uninterrupted single-process run")
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatal("results after fault injection differ from the uninterrupted single-process run")
			}
			assertExactlyOnce(t, events, cells)
			for _, kind := range tc.kinds {
				if countKind(events, kind) == 0 {
					t.Errorf("fault never surfaced: no %s event in %v", kind, events)
				}
			}
		})
	}
}

// Exactly-once training (rule 7): the coordinator resolves the family model
// once, before distribution; a worker killed after evaluating a trained
// cell forces a retry that must reload the stored model, never retrain. A
// second campaign against the same store trains zero models.
func TestExactlyOnceTraining(t *testing.T) {
	sp, err := scenario.ByName("S2")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "distrib-trained",
		Scale:     scenario.TinyScaleSpec(),
		Scenarios: []scenario.ScenarioSpec{sp},
		Methods: []scenario.MethodSpec{
			{Kind: scenario.KindMRSch, Train: true},
			{Kind: scenario.KindHeuristic},
		},
	}
	store := t.TempDir()
	counts := func(trained, cached *int) experiments.CampaignOptions {
		return experiments.CampaignOptions{
			Workers:  1,
			ModelDir: store,
			OnModel: func(family, action, path string) {
				switch action {
				case "trained":
					*trained++
				case "cached":
					*cached++
				}
			},
		}
	}

	refStore := t.TempDir()
	ref, err := experiments.RunCampaign(spec, experiments.CampaignOptions{Workers: 1, ModelDir: refStore})
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	opt := fastOptions(&events)
	opt.Faults = Faults{0: {KillAfterEval: 1}}
	var trained1, cached1 int
	got1, err := Run(spec, counts(&trained1, &cached1), opt, testPool(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if trained1 != 1 || cached1 != 0 {
		t.Fatalf("first run trained %d, cached %d models; want exactly 1 trained (rule 7)", trained1, cached1)
	}
	if countKind(events, EventRequeue) == 0 {
		t.Fatal("the injected kill never forced a retry")
	}
	if !bytes.Equal(render(spec.Name, ref), render(spec.Name, got1)) {
		t.Fatal("distributed trained-campaign report differs from the in-process run")
	}

	// Re-run against the populated store: zero training, byte-identical.
	var events2 []Event
	var trained2, cached2 int
	got2, err := Run(spec, counts(&trained2, &cached2), fastOptions(&events2), testPool(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if trained2 != 0 {
		t.Fatalf("re-run against a populated store trained %d model(s), want 0", trained2)
	}
	if cached2 == 0 {
		t.Fatal("re-run never loaded the stored model")
	}
	if !bytes.Equal(render(spec.Name, got1), render(spec.Name, got2)) {
		t.Fatal("re-run against the same store changed the report")
	}
}

// Rule 8: the pool is an optimization, not a dependency. With no workers at
// all the campaign degrades to in-process evaluation and still matches the
// single-process run; with fallback disabled it fails loudly instead.
func TestEmptyPoolFallsBack(t *testing.T) {
	spec := testSpec(t)
	ref, err := experiments.RunCampaign(spec, experiments.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	got, err := Run(spec, experiments.CampaignOptions{Workers: 1}, fastOptions(&events), testPool(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("fallback results differ from in-process RunCampaign")
	}
	if n := countKind(events, EventFallback); n != len(spec.Expand()) {
		t.Fatalf("%d fallback events, want one per cell (%d)", n, len(spec.Expand()))
	}

	opt := fastOptions(&events)
	opt.DisableFallback = true
	if _, err := Run(spec, experiments.CampaignOptions{Workers: 1}, opt, testPool(t, 0)); err == nil {
		t.Fatal("empty pool with fallback disabled must fail")
	} else if !strings.Contains(err.Error(), "fallback disabled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// The coordinator owns training; a NoTrain coordinator is a misconfigured
// worker and is rejected up front.
func TestCoordinatorRejectsNoTrain(t *testing.T) {
	if _, err := Run(testSpec(t), experiments.CampaignOptions{NoTrain: true}, Options{}, testPool(t, 0)); err == nil {
		t.Fatal("Run accepted NoTrain")
	}
}
