// Package distrib is the fault-tolerant distributed campaign runner: a
// coordinator expands a scenario.CampaignSpec into its deterministic cell
// grid and shards the cells over a pool of workers — subprocesses over
// stdio, remote processes over TCP, or in-process goroutines in tests — all
// speaking one length-prefixed, CRC-checked frame protocol. The point is
// robustness: workers may crash, stall, babble corruption, or deliver
// results twice, and the campaign still finishes with output byte-identical
// to a single-process run.
//
// # The delivery and exactly-once contract
//
// This is the canonical statement of the distributed runner's rules; the
// frame, worker, and coordinator sources cross-reference it by number.
//
//  1. The cell is the unit of distribution. CampaignSpec.Expand is a pure
//     function of the spec, every per-cell seed derives from Cell.Index,
//     and evaluation reads only frozen models and materials (the
//     internal/rollout determinism contract), so one cell evaluated on any
//     worker — or in-process — produces identical bytes. Everything else
//     in this contract leans on that. Workers on one host inherit the same
//     nn kernel set automatically; a fleet spanning hosts with different
//     CPU support must pin one (MRSCH_KERNEL=go) to keep cell bytes
//     machine-independent (internal/nn "Kernel dispatch").
//
//  2. Collation is exactly-once by first-valid-result-wins. The first
//     result frame for a cell is collated; every later copy — a duplicated
//     frame, or a retry racing a slow worker whose result then arrives —
//     is dropped as a duplicate. A late result from a presumed-dead worker
//     is still accepted if its cell is uncollated: by rule 1 it is the
//     same bytes any retry would produce.
//
//  3. A cell evaluation error reported by a worker is terminal. By rule 1
//     the failure is deterministic — retrying elsewhere fails identically
//     — so the coordinator records it and never requeues the cell.
//
//  4. Liveness is proven, not assumed. Workers heartbeat between results;
//     a worker silent past the heartbeat timeout, or holding one cell past
//     the per-cell deadline, is severed and its in-flight cell requeued.
//
//  5. Damage is death. A frame with a bad length, checksum, or encoding —
//     or a result carrying the wrong campaign fingerprint — marks the
//     whole peer corrupt: the connection is abandoned without
//     resynchronization and in-flight work is requeued. The CRC makes a
//     flipped byte indistinguishable from a hostile stream, and the
//     cheapest correct response to either is a new worker.
//
//  6. Retries back off exponentially with jitter. A requeued cell waits
//     base<<(attempt-1), capped, halved, and jittered before reassignment;
//     after MaxAttempts distributed attempts it is relegated to the
//     in-process fallback rather than retried forever.
//
//  7. Training happens exactly once, before distribution. The coordinator
//     resolves every trained family model into the content-addressed model
//     store (experiments.CampaignOptions.ModelDir) while expanding the
//     campaign; workers run with NoTrain set and can only load stored
//     weights. A cell retried on three different workers loads the same
//     model file three times — it can never retrain it, so re-running a
//     finished campaign against the same store trains zero models.
//
//  8. The pool is an optimization, never a dependency. If workers fail to
//     start, die faster than cells finish, or the pool empties entirely,
//     the coordinator finishes every uncollated cell in-process on its
//     already-resolved run. A distributed campaign degrades to
//     experiments.RunCampaign; it does not abort.
//
//  9. The output is byte-identical to single-process execution. Results
//     collate in expansion order regardless of completion order, gob
//     framing round-trips float64 bits exactly, and rules 1-8 guarantee
//     each collated report equals the one RunCampaign would compute — so
//     the rendered campaign table is byte-for-byte the same, faults or no
//     faults.
//
//  10. Telemetry is contract-neutral. Wiring Options.Metrics/Options.Journal
//     (internal/telemetry) mirrors the Event stream into counters and JSONL
//     after each scheduling decision is made — atomic adds and buffered
//     writes that never feed assignment, requeue, timeout, or collation
//     logic — so rules 1-9, and rule 9's byte-identity in particular, hold
//     with telemetry enabled. The fault-injection suite runs with
//     instruments active to enforce this. A late result accepted from a
//     severed worker (rule 2) additionally announces itself as
//     EventLateResult, so resurrections are visible instead of silently
//     collated.
package distrib
