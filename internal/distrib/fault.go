package distrib

import (
	"encoding/json"
	"fmt"
	"io"
)

// Deterministic fault injection. A FaultPlan makes a worker sabotage itself
// at an exact, reproducible point in its assignment stream — the test
// harness (and the CI smoke) runs real campaigns through real failures and
// then demands byte-identical collated reports. All counters are 1-based
// ordinals over the worker's OWN assignments ("the 2nd cell this worker is
// handed"), not global cell indices: which cells land on which worker
// depends on timing, but the Nth assignment is well defined under any
// interleaving.
//
// The zero value injects nothing.
type FaultPlan struct {
	// KillAtCell severs the connection upon receiving the Nth assignment,
	// before evaluating it — a worker OOM-killed mid-campaign. The
	// assignment is lost and must be requeued onto a survivor.
	KillAtCell int `json:"kill_at_cell,omitempty"`
	// KillAfterEval evaluates the Nth assignment fully, then severs without
	// sending the result — paid compute lost, same requeue obligation.
	KillAfterEval int `json:"kill_after_eval,omitempty"`
	// CorruptResult flips a byte inside the Nth result frame's payload
	// (checksum left stale), so the coordinator sees a damaged frame.
	CorruptResult int `json:"corrupt_result,omitempty"`
	// TruncateResult writes only the first half of the Nth result frame and
	// severs — the mid-write crash shape of a frame.
	TruncateResult int `json:"truncate_result,omitempty"`
	// DuplicateResult transmits the Nth result frame twice — the retried
	// send of a flaky network layer. Exactly-once collation must drop the
	// second copy.
	DuplicateResult int `json:"duplicate_result,omitempty"`
	// MuteAtCell stops heartbeats AND stalls evaluation upon receiving the
	// Nth assignment: the worker is alive but silent, the shape a heartbeat
	// timeout exists to catch. The stall holds until the coordinator severs
	// the connection.
	MuteAtCell int `json:"mute_at_cell,omitempty"`
}

// Zero reports whether the plan injects nothing.
func (p FaultPlan) Zero() bool { return p == FaultPlan{} }

// Validate rejects negative ordinals.
func (p FaultPlan) Validate() error {
	for _, v := range []struct {
		name string
		n    int
	}{
		{"kill_at_cell", p.KillAtCell},
		{"kill_after_eval", p.KillAfterEval},
		{"corrupt_result", p.CorruptResult},
		{"truncate_result", p.TruncateResult},
		{"duplicate_result", p.DuplicateResult},
		{"mute_at_cell", p.MuteAtCell},
	} {
		if v.n < 0 {
			return fmt.Errorf("distrib: fault plan: %s %d must be >= 0 (0 = off)", v.name, v.n)
		}
	}
	return nil
}

// Faults maps worker id → that worker's plan: the -fault-plan file format.
// Workers without an entry run clean.
type Faults map[int]FaultPlan

// LoadFaults reads a Faults map from strict JSON (unknown fault names are
// rejected — a typoed fault must not silently run a clean campaign).
func LoadFaults(r io.Reader) (Faults, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f Faults
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("distrib: decoding fault plan: %w", err)
	}
	for id, plan := range f {
		if id < 0 {
			return nil, fmt.Errorf("distrib: fault plan: negative worker id %d", id)
		}
		if err := plan.Validate(); err != nil {
			return nil, err
		}
	}
	return f, nil
}
