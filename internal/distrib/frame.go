package distrib

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/metrics"
)

// The wire format. Every message travels in one length-prefixed frame:
//
//	uint32 payload length (big endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload: one gob-encoded message value
//
// Frames are self-delimiting and independently decodable — each payload is
// its own gob stream — so a single damaged frame is detectable (CRC or gob
// failure) without desynchronizing a healthy stream, and a truncated frame
// surfaces as an unexpected EOF. Either way the receiver treats the peer as
// corrupt (contract rule 5): there is no in-band resynchronization, the
// connection is abandoned and the peer's in-flight work requeued.

// ProtocolVersion gates the handshake: a worker and coordinator built from
// different protocol revisions refuse to pair instead of mis-decoding each
// other's frames.
const ProtocolVersion = 1

// maxFrameBytes bounds a frame's declared payload length. A corrupt length
// prefix must not make the receiver allocate gigabytes before the CRC gets a
// chance to reject the payload.
const maxFrameBytes = 64 << 20

// ErrCorruptFrame marks a frame whose length, checksum, or encoding is
// damaged. The coordinator maps it to worker death (rule 5).
var ErrCorruptFrame = errors.New("distrib: corrupt frame")

type msgType uint8

const (
	// msgHello (worker → coordinator) opens the handshake.
	msgHello msgType = iota + 1
	// msgConfig (coordinator → worker) carries the campaign and the
	// worker's runtime settings; sent exactly once, before any assignment.
	msgConfig
	// msgAssign (coordinator → worker) assigns one grid cell.
	msgAssign
	// msgResult (worker → coordinator) returns one evaluated cell.
	msgResult
	// msgHeartbeat (worker → coordinator) proves liveness between results.
	msgHeartbeat
	// msgFatal (worker → coordinator) reports an unrecoverable worker-side
	// setup error (e.g. the campaign spec failed to load) before death.
	msgFatal
	// msgShutdown (coordinator → worker) ends a drained worker cleanly.
	msgShutdown
)

func (t msgType) String() string {
	switch t {
	case msgHello:
		return "hello"
	case msgConfig:
		return "config"
	case msgAssign:
		return "assign"
	case msgResult:
		return "result"
	case msgHeartbeat:
		return "heartbeat"
	case msgFatal:
		return "fatal"
	case msgShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("msgType(%d)", uint8(t))
}

// message is the single payload type of every frame; which fields are
// meaningful depends on Type. One struct keeps the protocol boring: no
// per-type decoders, no partial decodes.
type message struct {
	Type msgType

	// Hello: protocol version of the worker binary.
	Proto int

	// Config: the campaign spec in canonical Dump JSON, its fingerprint,
	// the model-store directory, the worker's id and fault plan, the
	// coordinator's resolved rollout worker count and training mode (the
	// model-store key depends on them), and the heartbeat cadence.
	Spec            []byte
	Fingerprint     string
	ModelDir        string
	Worker          int
	Plan            FaultPlan
	Workers         int
	Pipelined       bool
	HeartbeatMillis int64

	// Assign and Result: the cell's expansion index. Results echo the
	// config fingerprint so a coordinator never collates a result computed
	// against a different grid.
	Cell int
	// Result: exactly one of Report (success) or CellErr (a deterministic
	// evaluation failure — terminal, never retried; rule 3).
	Report  metrics.Report
	CellErr string

	// Fatal: the worker-side setup error.
	Err string
}

// writeFrame encodes m and writes it as one frame. Writers serialize frames
// themselves (the worker interleaves results and heartbeats from two
// goroutines behind a mutex).
func writeFrame(w io.Writer, m *message) error {
	payload, err := encodeMessage(m)
	if err != nil {
		return err
	}
	return writeRawFrame(w, payload, len(payload), crc32.ChecksumIEEE(payload))
}

// encodeMessage gob-encodes one message as an independent stream.
func encodeMessage(m *message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("distrib: encoding %s frame: %w", m.Type, err)
	}
	if buf.Len() > maxFrameBytes {
		return nil, fmt.Errorf("distrib: %s frame of %d bytes exceeds the %d-byte frame bound", m.Type, buf.Len(), maxFrameBytes)
	}
	return buf.Bytes(), nil
}

// writeRawFrame writes a frame from pre-encoded payload bytes, with the
// length and checksum the header claims. The fault harness calls it with a
// deliberately wrong combination (flipped payload byte, over-long declared
// length) to manufacture the corrupt and truncated frames of rule 5; every
// healthy path goes through writeFrame.
func writeRawFrame(w io.Writer, payload []byte, declaredLen int, sum uint32) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(declaredLen))
	binary.BigEndian.PutUint32(hdr[4:8], sum)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("distrib: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("distrib: writing frame payload: %w", err)
	}
	return nil
}

// readFrame reads and decodes one frame. io.EOF passes through untouched so
// callers can distinguish a clean close from damage; any length, checksum,
// or decode problem wraps ErrCorruptFrame.
func readFrame(r io.Reader) (*message, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("distrib: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d-byte bound", ErrCorruptFrame, n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload (%d bytes declared): %v", ErrCorruptFrame, n, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (header %08x, payload %08x)", ErrCorruptFrame, sum, got)
	}
	var m message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorruptFrame, err)
	}
	return &m, nil
}
