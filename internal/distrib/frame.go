package distrib

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// The wire format: one gob-encoded message value per internal/wire frame
// (uint32 big-endian length, uint32 CRC-32 IEEE, payload). Each payload is
// its own gob stream, so a single damaged frame is detectable (CRC or gob
// failure) without desynchronizing a healthy stream, and a truncated frame
// surfaces as an unexpected EOF. Either way the receiver treats the peer as
// corrupt (contract rule 5): there is no in-band resynchronization, the
// connection is abandoned and the peer's in-flight work requeued. The frame
// codec itself lives in internal/wire, shared with the decision service
// (internal/serve); this file owns only the gob message layer.

// ProtocolVersion gates the handshake — in both directions: the coordinator
// rejects a worker hello carrying another version, and the worker rejects a
// config frame carrying another version, each naming the peer's version in
// the error. Two binaries built from different protocol revisions refuse to
// pair instead of mis-decoding each other's frames.
const ProtocolVersion = 1

// maxFrameBytes is the shared frame bound (see wire.MaxFrameBytes).
const maxFrameBytes = wire.MaxFrameBytes

// ErrCorruptFrame marks a frame whose length, checksum, or encoding is
// damaged. The coordinator maps it to worker death (rule 5). It aliases
// wire.ErrCorruptFrame so errors.Is matches across both packages.
var ErrCorruptFrame = wire.ErrCorruptFrame

type msgType uint8

const (
	// msgHello (worker → coordinator) opens the handshake.
	msgHello msgType = iota + 1
	// msgConfig (coordinator → worker) carries the campaign and the
	// worker's runtime settings; sent exactly once, before any assignment.
	msgConfig
	// msgAssign (coordinator → worker) assigns one grid cell.
	msgAssign
	// msgResult (worker → coordinator) returns one evaluated cell.
	msgResult
	// msgHeartbeat (worker → coordinator) proves liveness between results.
	msgHeartbeat
	// msgFatal (worker → coordinator) reports an unrecoverable worker-side
	// setup error (e.g. the campaign spec failed to load) before death.
	msgFatal
	// msgShutdown (coordinator → worker) ends a drained worker cleanly.
	msgShutdown
)

func (t msgType) String() string {
	switch t {
	case msgHello:
		return "hello"
	case msgConfig:
		return "config"
	case msgAssign:
		return "assign"
	case msgResult:
		return "result"
	case msgHeartbeat:
		return "heartbeat"
	case msgFatal:
		return "fatal"
	case msgShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("msgType(%d)", uint8(t))
}

// message is the single payload type of every frame; which fields are
// meaningful depends on Type. One struct keeps the protocol boring: no
// per-type decoders, no partial decodes.
type message struct {
	Type msgType

	// Hello and Config: protocol version of the sending binary. Both sides
	// of the handshake validate it and name the peer's version on mismatch.
	Proto int

	// Config: the campaign spec in canonical Dump JSON, its fingerprint,
	// the model-store directory, the worker's id and fault plan, the
	// coordinator's resolved rollout worker count and training mode (the
	// model-store key depends on them), and the heartbeat cadence.
	Spec            []byte
	Fingerprint     string
	ModelDir        string
	Worker          int
	Plan            FaultPlan
	Workers         int
	Pipelined       bool
	HeartbeatMillis int64

	// Assign and Result: the cell's expansion index. Results echo the
	// config fingerprint so a coordinator never collates a result computed
	// against a different grid.
	Cell int
	// Result: exactly one of Report (success) or CellErr (a deterministic
	// evaluation failure — terminal, never retried; rule 3).
	Report  metrics.Report
	CellErr string

	// Fatal: the worker-side setup error.
	Err string
}

// writeFrame encodes m and writes it as one frame. Writers serialize frames
// themselves (the worker interleaves results and heartbeats from two
// goroutines behind a mutex).
func writeFrame(w io.Writer, m *message) error {
	payload, err := encodeMessage(m)
	if err != nil {
		return err
	}
	return wire.WriteFrame(w, payload)
}

// encodeMessage gob-encodes one message as an independent stream.
func encodeMessage(m *message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("distrib: encoding %s frame: %w", m.Type, err)
	}
	if buf.Len() > maxFrameBytes {
		return nil, fmt.Errorf("distrib: %s frame of %d bytes exceeds the %d-byte frame bound", m.Type, buf.Len(), maxFrameBytes)
	}
	return buf.Bytes(), nil
}

// writeRawFrame writes a frame from pre-encoded payload bytes, with the
// length and checksum the header claims (wire.WriteRawFrame). The fault
// harness calls it with a deliberately wrong combination (flipped payload
// byte, over-long declared length) to manufacture the corrupt and truncated
// frames of rule 5; every healthy path goes through writeFrame.
func writeRawFrame(w io.Writer, payload []byte, declaredLen int, sum uint32) error {
	return wire.WriteRawFrame(w, payload, declaredLen, sum)
}

// readFrame reads and decodes one frame. io.EOF passes through untouched so
// callers can distinguish a clean close from damage; any length, checksum,
// or decode problem wraps ErrCorruptFrame.
func readFrame(r io.Reader) (*message, error) {
	payload, err := wire.ReadFrame(r)
	if err != nil {
		return nil, err
	}
	m, err := decodeMessage(payload)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// decodeMessage decodes one verified frame payload into a message; gob
// damage wraps ErrCorruptFrame like any other frame corruption. It is the
// layer the shared FuzzDecodeFrame corpus drives for this protocol.
func decodeMessage(payload []byte) (*message, error) {
	var m message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorruptFrame, err)
	}
	return &m, nil
}
