package distrib

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestWorkerRejectsCoordinatorProtocol covers the worker side of the
// bidirectional handshake: a config frame from a coordinator speaking
// another protocol revision is rejected before anything in it is trusted,
// and the error names the peer's version (the operator of a mixed-binary
// deployment needs to know which side to upgrade).
func TestWorkerRejectsCoordinatorProtocol(t *testing.T) {
	coord, work := net.Pipe()
	defer coord.Close()

	errc := make(chan error, 1)
	go func() { errc <- ServeWorker(work, WorkerOptions{}) }()

	// Drain the worker's hello, then answer with a config frame from the
	// future.
	if _, err := readFrame(coord); err != nil {
		t.Fatalf("reading hello: %v", err)
	}
	if err := writeFrame(coord, &message{Type: msgConfig, Proto: ProtocolVersion + 41}); err != nil {
		t.Fatalf("writing config: %v", err)
	}
	// The worker reports the mismatch as a fatal frame, then dies.
	m, err := readFrame(coord)
	if err != nil {
		t.Fatalf("reading fatal: %v", err)
	}
	if m.Type != msgFatal {
		t.Fatalf("worker answered %s, want fatal", m.Type)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("ServeWorker accepted a mismatched coordinator protocol")
		}
		for _, want := range []string{"protocol 42", "worker 1"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not contain %q", err, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit on protocol mismatch")
	}
}

// TestCoordinatorSendsProtocolVersion pins the config frame to carry the
// coordinator's protocol version — the field the worker-side check reads.
// Without it the worker would see Proto 0 from every healthy coordinator.
// The test plays the worker itself: hello in, config out, then dies; the
// campaign finishes through the in-process fallback.
func TestCoordinatorSendsProtocolVersion(t *testing.T) {
	spec := testSpec(t)
	coordEnd, testEnd := net.Pipe()
	pool := PoolOf(1, func(id int) (io.ReadWriteCloser, error) { return coordEnd, nil })

	var events []Event
	done := make(chan error, 1)
	go func() {
		_, err := Run(spec, experiments.CampaignOptions{Workers: 1}, fastOptions(&events), pool)
		done <- err
	}()

	if err := writeFrame(testEnd, &message{Type: msgHello, Proto: ProtocolVersion}); err != nil {
		t.Fatalf("writing hello: %v", err)
	}
	cfg, err := readFrame(testEnd)
	if err != nil {
		t.Fatalf("reading config: %v", err)
	}
	if cfg.Type != msgConfig {
		t.Fatalf("coordinator answered %s, want config", cfg.Type)
	}
	if cfg.Proto != ProtocolVersion {
		t.Fatalf("config frame carried protocol %d, want %d", cfg.Proto, ProtocolVersion)
	}
	testEnd.Close() // die; the fallback finishes the campaign
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// FuzzDecodeMessage wires distrib's gob message layer to the same shared
// fuzz discipline as wire.FuzzDecodeFrame: arbitrary verified payloads must
// decode or fail loudly with ErrCorruptFrame, never panic. The corpus seeds
// real encoded messages plus the standard damage taxonomy (truncation,
// bitflip, garbage).
func FuzzDecodeMessage(f *testing.F) {
	encode := func(m *message) []byte {
		payload, err := encodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		return payload
	}
	hello := encode(&message{Type: msgHello, Proto: ProtocolVersion})
	cfg := encode(&message{Type: msgConfig, Proto: ProtocolVersion, Spec: []byte("{}"), Fingerprint: "abc", Worker: 3})
	result := encode(&message{Type: msgResult, Worker: 1, Cell: 7, Fingerprint: "abc"})

	f.Add([]byte(nil))
	f.Add(hello)
	f.Add(cfg)
	f.Add(result)
	f.Add(cfg[:len(cfg)/2])
	bitflip := append([]byte(nil), result...)
	bitflip[len(bitflip)/3] ^= 0x10
	f.Add(bitflip)
	f.Add([]byte("not a gob stream at all"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeMessage(payload)
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("decode failure %v does not wrap ErrCorruptFrame", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}
