package distrib

import (
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// The late-result path (rule 2's "a late result from a presumed-dead worker
// is still accepted"): timing makes it nearly impossible to hit through the
// fault matrix, so this white-box test feeds a coordinator a result frame
// from an already-severed worker directly. The result must collate, and —
// the rule 10 visibility fix — the resurrection must surface as an
// EventLateResult and a distrib_late_results_total tick instead of being
// silently folded into the grid.
func TestLateResultFromSeveredWorkerIsVisible(t *testing.T) {
	var events []Event
	reg := telemetry.NewRegistry()
	c := &coordinator{
		opt: Options{
			OnEvent: func(ev Event) { events = append(events, ev) },
			Metrics: reg,
		}.withDefaults(),
		m:       newDistribMetrics(reg),
		fp:      "test-fp",
		results: make([]experiments.CellResult, 2),
		done:    make([]bool, 2),
		failed:  map[int]string{},
		rng:     rand.New(rand.NewSource(1)),
	}
	w := &workerState{id: 3, alive: false, cell: -1}

	late := &message{Type: msgResult, Fingerprint: "test-fp", Cell: 1}
	c.handleEvent(wevent{w: w, msg: late})

	if !c.done[1] || c.nDone != 1 {
		t.Fatal("a late result for an uncollated cell must still collate (rule 2)")
	}
	if countKind(events, EventResult) != 1 {
		t.Errorf("want 1 result event, got %v", events)
	}
	if countKind(events, EventLateResult) != 1 {
		t.Errorf("want 1 late-result event announcing the resurrection, got %v", events)
	}
	counters := map[string]uint64{}
	for _, cv := range reg.Snapshot().Counters {
		counters[cv.Name] = cv.Value
	}
	if counters["distrib_late_results_total"] != 1 {
		t.Errorf("distrib_late_results_total = %d, want 1", counters["distrib_late_results_total"])
	}

	// A second copy of the same frame is a duplicate (rule 2), not another
	// resurrection.
	c.handleEvent(wevent{w: w, msg: late})
	if c.nDone != 1 {
		t.Fatal("duplicate late result must not collate twice")
	}
	if countKind(events, EventDuplicate) != 1 || countKind(events, EventLateResult) != 1 {
		t.Errorf("duplicate late result must surface as duplicate only, got %v", events)
	}
}
