package distrib

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// The new realistic-workload axes (zipf user skew, bursty arrivals, ingested
// traces) travel the wire as ordinary spec fields, so a campaign exercising
// all three must be byte-identical between distributed and single-process
// execution — workers prepare the variant materials themselves from nothing
// but the cell spec (rule 9 applied to the tentpole axes).
func TestNewAxesCampaignMatchesInProcess(t *testing.T) {
	var scs []scenario.ScenarioSpec
	for _, name := range []string{"S4", "S4@zipf=0.9", "S4@burst=4x0.3", "T4"} {
		sp, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, sp)
	}
	spec := scenario.CampaignSpec{
		Name:      "distrib-new-axes",
		Scale:     scenario.TinyScaleSpec(),
		Scenarios: scs,
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindHeuristic}},
		Seeds:     []int64{5, 23},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	ref, err := experiments.RunCampaign(spec, experiments.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	got, err := Run(spec, experiments.CampaignOptions{Workers: 1}, fastOptions(&events), testPool(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("distributed new-axes results differ from in-process RunCampaign")
	}
	if !bytes.Equal(render(spec.Name, ref), render(spec.Name, got)) {
		t.Fatal("distributed new-axes report bytes differ from in-process RunCampaign")
	}
	assertExactlyOnce(t, events, len(spec.Expand()))
	if n := countKind(events, EventResult); n != len(spec.Expand()) {
		t.Fatalf("%d results collated, want %d", n, len(spec.Expand()))
	}

	// The per-user metrics ride the same gob payload: the zipf cells must
	// come back attributed, the plain cells unattributed.
	for _, r := range got {
		attributed := r.Report.Users > 0
		wantAttributed := r.Cell.Scenario.ZipfUsers > 0 || r.Cell.Scenario.Trace != ""
		if attributed != wantAttributed {
			t.Errorf("%s: users=%d, attribution should be %v", r.Cell.Label(), r.Report.Users, wantAttributed)
		}
	}
}
