package distrib

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Worker pools. Three shapes share the Pool interface: subprocesses over
// stdio (ProcPool, the `mrsch-exp -workers N` path), remote workers dialing
// in over TCP (ListenPool, the `-listen`/`-connect` path), and in-process
// goroutines over pipes (PoolOf, the test harness).

// poolFunc adapts a size and a start function into a Pool.
type poolFunc struct {
	n     int
	start func(id int) (io.ReadWriteCloser, error)
}

func (p poolFunc) Size() int                                { return p.n }
func (p poolFunc) Start(id int) (io.ReadWriteCloser, error) { return p.start(id) }

// PoolOf builds a Pool from a size and a per-worker start function. The
// fault-injection tests use it to run ServeWorker goroutines over net.Pipe
// ends — same protocol, same faults, no processes.
func PoolOf(n int, start func(id int) (io.ReadWriteCloser, error)) Pool {
	return poolFunc{n: n, start: start}
}

// ProcPool launches worker subprocesses speaking the protocol over their
// stdin/stdout. The workers inherit the coordinator's filesystem, so the
// model store needs no copying.
type ProcPool struct {
	// Binary is the worker executable; empty means this process's own
	// binary (os.Executable), the `mrsch-exp -workers N` arrangement.
	Binary string
	// Args are the worker-mode arguments, e.g. ["-worker"].
	Args []string
	// N is the number of workers to launch.
	N int
	// Stderr receives the workers' log output (default os.Stderr).
	Stderr io.Writer
}

func (p *ProcPool) Size() int { return p.N }

func (p *ProcPool) Start(id int) (io.ReadWriteCloser, error) {
	bin := p.Binary
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("distrib: locating worker binary: %w", err)
		}
		bin = exe
	}
	cmd := exec.Command(bin, p.Args...)
	if p.Stderr != nil {
		cmd.Stderr = p.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %d stdin: %w", id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %d stdout: %w", id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: starting worker %d: %w", id, err)
	}
	return &procConn{r: stdout, w: stdin, cmd: cmd}, nil
}

// procConn is a worker subprocess as a ReadWriteCloser. Close severs the
// pipes immediately and reaps the process in the background, killing it if
// it lingers — the coordinator's event loop must never block on a corpse.
type procConn struct {
	r    io.ReadCloser
	w    io.WriteCloser
	cmd  *exec.Cmd
	once sync.Once
}

func (c *procConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *procConn) Write(p []byte) (int, error) { return c.w.Write(p) }

func (c *procConn) Close() error {
	c.once.Do(func() {
		c.w.Close()
		c.r.Close()
		kill := time.AfterFunc(3*time.Second, func() {
			if c.cmd.Process != nil {
				c.cmd.Process.Kill()
			}
		})
		go func() {
			c.cmd.Wait()
			kill.Stop()
		}()
	})
	return nil
}

// ListenPool accepts workers that dial in over TCP (`mrsch-exp -worker
// -connect host:port` against a coordinator running `-listen addr`).
// Start blocks until the next worker connects. TCP workers must see the
// model store directory at the same path as the coordinator (shared
// filesystem); rule 7's exactly-once training depends on it.
type ListenPool struct {
	ln net.Listener
	n  int
}

// NewListenPool listens on addr for n workers.
func NewListenPool(addr string, n int) (*ListenPool, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distrib: listen %s: %w", addr, err)
	}
	return &ListenPool{ln: ln, n: n}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (p *ListenPool) Addr() string { return p.ln.Addr().String() }

func (p *ListenPool) Size() int { return p.n }

func (p *ListenPool) Start(id int) (io.ReadWriteCloser, error) {
	conn, err := p.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("distrib: accepting worker %d: %w", id, err)
	}
	return conn, nil
}

// Close stops accepting new workers.
func (p *ListenPool) Close() error { return p.ln.Close() }
