package distrib

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// The worker side of the protocol: one process (or, in tests, one
// goroutine) that evaluates assigned campaign cells serially and streams
// results back. Workers are deliberately stateless beyond their caches — a
// worker learns the campaign from its config frame, never trains
// (experiments.CampaignOptions.NoTrain; rule 7), and can be killed at any
// instant without the campaign losing anything but the in-flight cell.

// faultError marks a deliberate, plan-injected death so the -worker exit
// path can distinguish sabotage from a genuine failure in logs.
type faultError struct{ name string }

func (e faultError) Error() string {
	return fmt.Sprintf("distrib: fault injected: %s", e.name)
}

// WorkerOptions tune ServeWorker.
type WorkerOptions struct {
	// Logf, when non-nil, receives progress lines (stderr on a worker
	// process, t.Logf in tests).
	Logf func(format string, args ...any)
}

type worker struct {
	conn io.ReadWriteCloser
	wmu  sync.Mutex // serializes frames: results vs heartbeats
	logf func(string, ...any)

	id    int
	run   *experiments.CampaignRun
	cells []scenario.Cell
	fp    string
	plan  FaultPlan

	assigned int // assignments received (1-based ordinals for FaultPlan)
	results  int // result frames attempted
	muted    atomic.Bool
	done     chan struct{} // closed when the connection is severed
}

// ServeWorker speaks the worker protocol on conn until shutdown, a severed
// connection, or an injected fault. It is the body of `mrsch-exp -worker`
// and runs in-process (over a pipe) in the fault-injection tests.
func ServeWorker(conn io.ReadWriteCloser, opt WorkerOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	w := &worker{conn: conn, logf: logf, done: make(chan struct{})}

	msgs := make(chan *message)
	var readErr error
	go func() {
		defer close(w.done)
		defer close(msgs)
		for {
			m, err := readFrame(conn)
			if err != nil {
				if err != io.EOF {
					readErr = err
				}
				return
			}
			msgs <- m
		}
	}()

	if err := w.send(&message{Type: msgHello, Proto: ProtocolVersion}); err != nil {
		return err
	}
	for m := range msgs {
		switch m.Type {
		case msgConfig:
			if err := w.configure(m); err != nil {
				w.send(&message{Type: msgFatal, Worker: w.id, Err: err.Error()})
				return err
			}
		case msgAssign:
			if w.run == nil {
				err := fmt.Errorf("distrib: worker: assign before config")
				w.send(&message{Type: msgFatal, Worker: w.id, Err: err.Error()})
				return err
			}
			if err := w.handleAssign(m.Cell); err != nil {
				return err
			}
		case msgShutdown:
			w.logf("worker %d: shutdown after %d cell(s)", w.id, w.assigned)
			return nil
		default:
			return fmt.Errorf("distrib: worker: unexpected %s frame", m.Type)
		}
	}
	if readErr != nil {
		return fmt.Errorf("distrib: worker %d: connection severed: %w", w.id, readErr)
	}
	return fmt.Errorf("distrib: worker %d: coordinator closed the connection without shutdown", w.id)
}

// configure builds the worker's campaign run from the config frame and
// starts the heartbeat loop.
func (w *worker) configure(m *message) error {
	// Reject a coordinator from another protocol revision before trusting
	// anything else in the frame — and name its version, so an operator
	// staring at a mixed-binary deployment knows which side to upgrade.
	if m.Proto != ProtocolVersion {
		return fmt.Errorf("distrib: worker config: coordinator speaks protocol %d, worker %d", m.Proto, ProtocolVersion)
	}
	spec, err := scenario.Load(bytes.NewReader(m.Spec))
	if err != nil {
		return fmt.Errorf("distrib: worker config: %w", err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return fmt.Errorf("distrib: worker config: %w", err)
	}
	if fp != m.Fingerprint {
		return fmt.Errorf("distrib: worker config: spec fingerprint %s does not match the coordinator's %s", fp, m.Fingerprint)
	}
	if err := m.Plan.Validate(); err != nil {
		return err
	}
	// NoTrain: every trained family model must already sit in the store the
	// coordinator populated (rule 7). Workers and Pipelined mirror the
	// coordinator's training settings — the store key and the loaded model
	// architecture are functions of them.
	run, err := experiments.OpenCampaign(spec, experiments.CampaignOptions{
		Workers:   m.Workers,
		Pipelined: m.Pipelined,
		ModelDir:  m.ModelDir,
		NoTrain:   true,
	})
	if err != nil {
		return err
	}
	w.id = m.Worker
	w.run = run
	w.cells = run.Cells()
	w.fp = m.Fingerprint
	w.plan = m.Plan
	w.logf("worker %d: campaign %s configured (%d cells, fingerprint %s)", w.id, spec.Name, len(w.cells), fp)

	interval := time.Duration(m.HeartbeatMillis) * time.Millisecond
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	go w.heartbeatLoop(interval)
	return nil
}

func (w *worker) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			if w.muted.Load() {
				continue
			}
			// A send error means the connection died; the reader notices
			// and ends the serve loop, so drop it here.
			w.send(&message{Type: msgHeartbeat, Worker: w.id})
		}
	}
}

// handleAssign evaluates one cell and sends its result, with the fault plan
// consulted at every stage boundary.
func (w *worker) handleAssign(cell int) error {
	w.assigned++
	if w.plan.KillAtCell == w.assigned {
		w.conn.Close()
		return faultError{"kill_at_cell"}
	}
	if w.plan.MuteAtCell == w.assigned {
		// Alive but silent: heartbeats stop and the evaluation stalls until
		// the coordinator gives up on us and severs the connection.
		w.muted.Store(true)
		<-w.done
		return faultError{"mute_at_cell"}
	}
	if cell < 0 || cell >= len(w.cells) {
		err := fmt.Errorf("distrib: worker %d: assigned cell %d outside grid [0, %d)", w.id, cell, len(w.cells))
		w.send(&message{Type: msgFatal, Worker: w.id, Err: err.Error()})
		return err
	}
	c := w.cells[cell]
	out := &message{Type: msgResult, Worker: w.id, Cell: cell, Fingerprint: w.fp}
	if err := w.run.ResolveCell(c); err != nil {
		out.CellErr = err.Error()
	} else if res, err := w.run.EvalCell(c); err != nil {
		out.CellErr = err.Error()
	} else {
		out.Report = res.Report
	}
	if w.plan.KillAfterEval == w.assigned {
		w.conn.Close()
		return faultError{"kill_after_eval"}
	}
	w.logf("worker %d: cell %d (%s) done", w.id, cell, c.Label())
	return w.sendResult(out)
}

// sendResult transmits one result frame, applying the frame-level faults.
func (w *worker) sendResult(m *message) error {
	w.results++
	n := w.results
	payload, err := encodeMessage(m)
	if err != nil {
		return err
	}
	sum := wire.Checksum(payload)
	w.wmu.Lock()
	defer w.wmu.Unlock()
	switch {
	case w.plan.CorruptResult == n:
		// Flip a payload byte under the original checksum: the frame
		// arrives whole but provably damaged.
		bad := append([]byte(nil), payload...)
		bad[len(bad)/2] ^= 0xff
		writeRawFrame(w.conn, bad, len(bad), sum)
		return nil // keep serving; the coordinator severs us on receipt
	case w.plan.TruncateResult == n:
		// Declare the full length, deliver half, die — a crash mid-write.
		writeRawFrame(w.conn, payload[:len(payload)/2], len(payload), sum)
		w.conn.Close()
		return faultError{"truncate_result"}
	case w.plan.DuplicateResult == n:
		if err := writeRawFrame(w.conn, payload, len(payload), sum); err != nil {
			return err
		}
		return writeRawFrame(w.conn, payload, len(payload), sum)
	default:
		return writeRawFrame(w.conn, payload, len(payload), sum)
	}
}

// send writes one well-formed frame under the write mutex.
func (w *worker) send(m *message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, m)
}
