// Package encode implements MRSch's vector-based state representation
// (§III-A of the paper), shared by the MRSch agent and the scalar-RL
// baseline so the two learn from identical observations.
//
// Each of the W window jobs contributes R+2 elements: its demand for every
// resource as a fraction of system capacity, its user-supplied runtime
// estimate, and its queued time (both normalized). Each resource unit
// contributes 2 elements: an availability bit and the time until the unit's
// estimated availability (zero when free). For the paper's Theta setup
// (W=10, R=2, N1+N2=5685 units) this yields the 11410-element state vector
// reported in §IV-C.
package encode

import (
	"fmt"

	"repro/internal/sched"
)

// Config fixes the geometry and normalization of the encoding.
type Config struct {
	// Window is W, the number of job slots encoded.
	Window int
	// Units is the per-resource unit count (the cluster capacities).
	Units []int
	// TimeScale converts seconds to the network's time unit (default 1h).
	TimeScale float64
	// MaxScaled caps normalized times so outliers cannot dwarf the rest of
	// the input (default 48 time units).
	MaxScaled float64
}

// NewConfig returns an encoding for window size w over a system with the
// given per-resource unit counts, using default normalization.
func NewConfig(w int, units []int) Config {
	u := make([]int, len(units))
	copy(u, units)
	return Config{Window: w, Units: u, TimeScale: 3600, MaxScaled: 48}
}

// Resources returns R, the number of schedulable resources.
func (c *Config) Resources() int { return len(c.Units) }

// StateDim returns the encoded vector length: (R+2)*W + 2*sum(Units).
func (c *Config) StateDim() int {
	total := 0
	for _, n := range c.Units {
		total += n
	}
	return (len(c.Units)+2)*c.Window + 2*total
}

// JobSlotDim returns the per-job element count (R+2).
func (c *Config) JobSlotDim() int { return len(c.Units) + 2 }

// JobBlockLen returns the length of the window-jobs section of the state
// vector ((R+2)*W), which precedes the per-unit sections.
func (c *Config) JobBlockLen() int { return c.JobSlotDim() * c.Window }

// UnitRange returns the half-open index range of resource r's unit section
// within the state vector. Together with JobBlockLen it defines the layout
// consumed by per-resource state modules (the §III-A design alternative).
func (c *Config) UnitRange(r int) (start, end int) {
	start = c.JobBlockLen()
	for i := 0; i < r; i++ {
		start += 2 * c.Units[i]
	}
	return start, start + 2*c.Units[r]
}

func (c *Config) clampTime(seconds float64) float64 {
	if seconds < 0 {
		seconds = 0
	}
	t := seconds / c.TimeScale
	if t > c.MaxScaled {
		t = c.MaxScaled
	}
	return t
}

// Encode builds the state vector for one scheduling instant. Missing window
// slots (queue shorter than W) encode as zeros.
func (c *Config) Encode(ctx *sched.PickContext) []float64 {
	if len(c.Units) != ctx.Cluster.NumResources() {
		panic(fmt.Sprintf("encode: config has %d resources, cluster %d", len(c.Units), ctx.Cluster.NumResources()))
	}
	out := make([]float64, 0, c.StateDim())

	// Job slots.
	for i := 0; i < c.Window; i++ {
		if i < len(ctx.Window) {
			j := ctx.Window[i]
			for r, n := range c.Units {
				out = append(out, float64(j.Demand[r])/float64(n))
			}
			out = append(out, c.clampTime(j.Walltime))
			out = append(out, c.clampTime(ctx.Now-j.Submit))
		} else {
			for k := 0; k < c.JobSlotDim(); k++ {
				out = append(out, 0)
			}
		}
	}

	// Resource units: running allocations (sorted by estimated end) occupy
	// units front-to-back; remaining units are free.
	running := ctx.Cluster.Running()
	for r, n := range c.Units {
		filled := 0
		for _, a := range running {
			need := a.Demand[r]
			if need <= 0 {
				continue
			}
			until := c.clampTime(a.EstEnd - ctx.Now)
			for k := 0; k < need && filled < n; k++ {
				out = append(out, 0, until)
				filled++
			}
		}
		for ; filled < n; filled++ {
			out = append(out, 1, 0)
		}
	}
	return out
}
