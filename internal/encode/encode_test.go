package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sched"
)

func sys() cluster.Config {
	return cluster.Config{Name: "e", Resources: []string{"nodes", "bb"}, Capacities: []int{8, 4}}
}

func mk(id int, submit, wall float64, nodes, bb int) *job.Job {
	return &job.Job{ID: id, Submit: submit, Runtime: wall, Walltime: wall, Demand: []int{nodes, bb}}
}

func ctxWith(cl *cluster.Cluster, now float64, window ...*job.Job) *sched.PickContext {
	return &sched.PickContext{Now: now, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
}

func TestStateDimMatchesPaperFormula(t *testing.T) {
	// Paper §IV-C: [4W + 2N1 + 2N2] for R=2. W=10, N1+N2=5685 -> 11410.
	c := NewConfig(10, []int{4392, 1293})
	if got := c.StateDim(); got != 4*10+2*(4392+1293) {
		t.Fatalf("StateDim = %d", got)
	}
	if c.JobSlotDim() != 4 {
		t.Fatalf("JobSlotDim = %d", c.JobSlotDim())
	}
}

func TestEncodeIdleCluster(t *testing.T) {
	cl := cluster.New(sys())
	c := NewConfig(2, sys().Capacities)
	v := c.Encode(ctxWith(cl, 0))
	if len(v) != c.StateDim() {
		t.Fatalf("len = %d, want %d", len(v), c.StateDim())
	}
	// All job slots zero.
	for i := 0; i < 2*c.JobSlotDim(); i++ {
		if v[i] != 0 {
			t.Fatalf("empty window slot has value at %d", i)
		}
	}
	// All units available: pairs (1, 0).
	units := v[2*c.JobSlotDim():]
	for i := 0; i < len(units); i += 2 {
		if units[i] != 1 || units[i+1] != 0 {
			t.Fatalf("idle unit %d encoded as (%v,%v)", i/2, units[i], units[i+1])
		}
	}
}

func TestEncodeJobSlots(t *testing.T) {
	cl := cluster.New(sys())
	c := NewConfig(2, sys().Capacities)
	c.TimeScale = 100
	j := mk(1, 0, 200, 4, 1) // half the nodes, quarter of bb, 2 time units
	v := c.Encode(ctxWith(cl, 50, j))
	// Slot 0: [4/8, 1/4, 200/100, (50-0)/100]
	want := []float64{0.5, 0.25, 2.0, 0.5}
	for i, w := range want {
		if v[i] != w {
			t.Fatalf("slot0[%d] = %v, want %v", i, v[i], w)
		}
	}
	// Slot 1 empty.
	for i := 4; i < 8; i++ {
		if v[i] != 0 {
			t.Fatalf("slot1[%d] = %v, want 0", i-4, v[i])
		}
	}
}

func TestEncodeOccupiedUnits(t *testing.T) {
	cl := cluster.New(sys())
	c := NewConfig(1, sys().Capacities)
	c.TimeScale = 100
	if err := cl.Allocate(7, []int{3, 2}, 0, 250); err != nil {
		t.Fatal(err)
	}
	v := c.Encode(ctxWith(cl, 50))
	units := v[c.JobSlotDim():]
	// Nodes: first 3 units occupied with time (250-50)/100 = 2.0.
	for u := 0; u < 3; u++ {
		if units[2*u] != 0 || units[2*u+1] != 2.0 {
			t.Fatalf("node unit %d = (%v,%v)", u, units[2*u], units[2*u+1])
		}
	}
	// Remaining 5 node units free.
	for u := 3; u < 8; u++ {
		if units[2*u] != 1 || units[2*u+1] != 0 {
			t.Fatalf("node unit %d = (%v,%v)", u, units[2*u], units[2*u+1])
		}
	}
	// BB units: 2 occupied, 2 free.
	bb := units[16:]
	if bb[0] != 0 || bb[1] != 2.0 || bb[4] != 1 {
		t.Fatalf("bb units = %v", bb[:8])
	}
}

func TestEncodeTimeClamping(t *testing.T) {
	cl := cluster.New(sys())
	c := NewConfig(1, sys().Capacities)
	c.TimeScale = 1
	c.MaxScaled = 10
	j := mk(1, 0, 1e9, 1, 0)
	v := c.Encode(ctxWith(cl, 0, j))
	if v[2] != 10 {
		t.Fatalf("walltime not clamped: %v", v[2])
	}
	// Negative remaining time (overdue allocation) clamps to zero.
	if err := cl.Allocate(9, []int{1, 0}, 0, 5); err != nil {
		t.Fatal(err)
	}
	v = c.Encode(ctxWith(cl, 50))
	units := v[c.JobSlotDim():]
	if units[1] != 0 {
		t.Fatalf("overdue unit time = %v, want 0", units[1])
	}
}

// Property: encoding always has exactly StateDim elements, values are
// finite, availability bits are 0/1, and fractions lie in [0,1].
func TestEncodeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := cluster.New(sys())
		now := float64(rng.Intn(1000))
		for id := 1; id <= rng.Intn(4); id++ {
			d := []int{rng.Intn(4) + 1, rng.Intn(3)}
			if cl.CanFit(d) {
				_ = cl.Allocate(id, d, now, now+float64(rng.Intn(5000)))
			}
		}
		var window []*job.Job
		for i := 0; i < rng.Intn(5); i++ {
			window = append(window, mk(100+i, now-float64(rng.Intn(100)), float64(rng.Intn(10000)+1), rng.Intn(8)+1, rng.Intn(5)))
		}
		c := NewConfig(3, sys().Capacities)
		v := c.Encode(ctxWith(cl, now, window...))
		if len(v) != c.StateDim() {
			return false
		}
		for _, x := range v {
			if x < 0 || x != x { // negative or NaN
				return false
			}
		}
		// Availability bits in the unit section are 0 or 1.
		units := v[3*c.JobSlotDim():]
		for i := 0; i < len(units); i += 2 {
			if units[i] != 0 && units[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMismatchedClusterPanics(t *testing.T) {
	cl := cluster.New(sys())
	c := NewConfig(2, []int{8}) // one resource vs cluster's two
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on resource-arity mismatch")
		}
	}()
	c.Encode(ctxWith(cl, 0))
}
