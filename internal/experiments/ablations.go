package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Ablations of the design choices DESIGN.md calls out. Each returns labelled
// reports on a fixed workload so the effect of one mechanism is isolated:
//
//   - dynamic vs fixed goal vector (§III-B — the heart of MRSch)
//   - single state network vs one per resource (§III-A design discussion)
//   - window size (§III-C: W=10 in the paper)
//   - EASY backfilling on/off (§III-C)
//   - list-scheduling picker family (related-work context: FCFS, Tetris,
//     SJF, LargestFirst)

// AblationRow is one labelled configuration's outcome.
type AblationRow struct {
	Name   string
	Report metrics.Report
}

// AblationGoal compares the trained MRSch agent on S5 with its own Eq. (1)
// dynamic goal against the same weights forced to a fixed uniform goal.
// The gap is the isolated value of dynamic resource prioritizing.
func AblationGoal(c *Campaign) ([]AblationRow, error) {
	sys := c.M.Scale.System()
	jobs := c.M.Workload("S5")
	agent, err := c.MRSchAgent("S5", false, false)
	if err != nil {
		return nil, err
	}
	dynamic, err := Evaluate(sys, agent.Policy(), jobs, "dynamic-goal", "S5", -1)
	if err != nil {
		return nil, err
	}
	agent.FixedGoal = []float64{0.5, 0.5}
	fixed, err := Evaluate(sys, agent.Policy(), jobs, "fixed-goal", "S5", -1)
	agent.FixedGoal = nil
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Name: "dynamic goal (Eq. 1)", Report: dynamic},
		{Name: "fixed goal (0.5/0.5)", Report: fixed},
	}, nil
}

// AblationStateNets trains two otherwise-identical agents on S4: one with
// MRSch's single state network, one with the per-resource networks the
// paper rejects (job info encoded R times).
func AblationStateNets(m *Materials) ([]AblationRow, error) {
	sys := m.Scale.System()
	jobs := m.Workload("S4")
	byKind := m.CurriculumSets("S4")
	order := Ordering{core.Sampled, core.Real, core.Synthetic}
	sets := order.Sets(byKind)

	var rows []AblationRow
	for _, variant := range []struct {
		name string
		per  bool
	}{
		{"single state net", false},
		{"per-resource nets", true},
	} {
		opts := m.Scale.mrschOptions(m.Scale.Seed+47, false)
		opts.PerResourceNets = variant.per
		agent := core.New(sys, opts)
		_, err := core.TrainCurriculum(agent, core.TrainConfig{
			System:          sys,
			StepsPerEpisode: m.Scale.StepsPerEpisode,
		}, sets)
		if err != nil {
			return nil, err
		}
		rep, err := Evaluate(sys, agent.Policy(), jobs, variant.name, "S4", -1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: variant.name, Report: rep})
	}
	return rows, nil
}

// AblationWindow sweeps the scheduling window size with the GA picker
// (training-free, so the sweep isolates the window mechanism itself).
func AblationWindow(m *Materials, sizes []int) ([]AblationRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 5, 10, 20}
	}
	sys := m.Scale.System()
	jobs := m.Workload("S4")
	var rows []AblationRow
	for _, w := range sizes {
		policy := sched.NewWindowPolicy(NewGA(m.Scale.Seed+43), w)
		rep, err := Evaluate(sys, policy, jobs, fmt.Sprintf("W=%d", w), "S4", -1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: fmt.Sprintf("window %d", w), Report: rep})
	}
	return rows, nil
}

// AblationBackfill runs FCFS with and without EASY backfilling.
func AblationBackfill(m *Materials) ([]AblationRow, error) {
	sys := m.Scale.System()
	jobs := m.Workload("S4")
	var rows []AblationRow
	for _, variant := range []struct {
		name     string
		backfill bool
	}{
		{"EASY backfilling on", true},
		{"EASY backfilling off", false},
	} {
		policy := sched.NewWindowPolicy(sched.FCFS{}, m.Scale.Window)
		policy.Backfill = variant.backfill
		rep, err := Evaluate(sys, policy, jobs, variant.name, "S4", -1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: variant.name, Report: rep})
	}
	return rows, nil
}

// AblationPickers compares the list-scheduling picker family inside the
// shared framework.
func AblationPickers(m *Materials) ([]AblationRow, error) {
	sys := m.Scale.System()
	jobs := m.Workload("S4")
	pickers := []struct {
		name string
		p    sched.Picker
	}{
		{"FCFS", sched.FCFS{}},
		{"Tetris packing", sched.Tetris{}},
		{"SJF", sched.SJF{}},
		{"LargestFirst", sched.LargestFirst{}},
	}
	var rows []AblationRow
	for _, pk := range pickers {
		rep, err := Evaluate(sys, sched.NewWindowPolicy(pk.p, m.Scale.Window), jobs, pk.name, "S4", -1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Name: pk.name, Report: rep})
	}
	return rows, nil
}

// FprintAblation renders ablation rows as a metric table.
func FprintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — %s\n", title)
	fmt.Fprintf(w, "  %-22s %10s %10s %10s %12s\n", "", "node-util", "bb-util", "wait h", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %9.1f%% %9.1f%% %10.2f %12.2f\n",
			r.Name, r.Report.Utilization[0]*100, r.Report.Utilization[1]*100,
			r.Report.AvgWaitHours(), r.Report.AvgSlowdown)
	}
}
