package experiments

import (
	"bytes"
	"testing"
)

func TestAblationGoalDynamicVsFixed(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	rows, err := AblationGoal(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "dynamic goal (Eq. 1)" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Report.Jobs == 0 {
			t.Fatalf("%s: no jobs completed", r.Name)
		}
	}
	// The FixedGoal must have been reset after the ablation.
	agent, err := c.MRSchAgent("S5", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if agent.FixedGoal != nil {
		t.Fatal("ablation leaked FixedGoal into the shared agent")
	}
	var buf bytes.Buffer
	FprintAblation(&buf, "goal", rows)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationStateNets(t *testing.T) {
	m := MustPrepare(tinyScale())
	rows, err := AblationStateNets(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Report.Jobs == 0 {
			t.Fatalf("%s completed no jobs", r.Name)
		}
	}
}

func TestAblationWindowSweep(t *testing.T) {
	m := MustPrepare(tinyScale())
	rows, err := AblationWindow(m, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Name != "window 1" || rows[1].Name != "window 4" {
		t.Fatalf("labels: %s / %s", rows[0].Name, rows[1].Name)
	}
}

func TestAblationBackfill(t *testing.T) {
	m := MustPrepare(tinyScale())
	rows, err := AblationBackfill(m)
	if err != nil {
		t.Fatal(err)
	}
	on, off := rows[0].Report, rows[1].Report
	// Backfilling must not hurt node utilization (EASY's whole point).
	if on.Utilization[0] < off.Utilization[0]-1e-9 {
		t.Fatalf("backfill reduced utilization: %v vs %v", on.Utilization[0], off.Utilization[0])
	}
}

func TestAblationPickers(t *testing.T) {
	m := MustPrepare(tinyScale())
	rows, err := AblationPickers(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d pickers", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Report.Jobs == 0 {
			t.Fatalf("%s starved the workload", r.Name)
		}
	}
	for _, want := range []string{"FCFS", "Tetris packing", "SJF", "LargestFirst"} {
		if !names[want] {
			t.Fatalf("missing picker %s", want)
		}
	}
}
