package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// The seed-axis aggregation of FprintCells: replicated (scenario, method)
// pairs get a mean±sd row per §IV-B metric. The rendering is pinned
// byte-for-byte — it is part of the campaign output surface.
func TestFprintCellsSeedAggregate(t *testing.T) {
	sp := scenario.ScenarioSpec{Name: "S4", BBProb: 0.5, MinTB: 1, MaxTB: 10}
	fcfs := scenario.MethodSpec{Kind: scenario.KindHeuristic}
	mrsch := scenario.MethodSpec{Kind: scenario.KindMRSch, Train: true}
	rep := func(u0, u1, waitSec, sd float64) metrics.Report {
		return metrics.Report{Utilization: []float64{u0, u1}, AvgWaitSec: waitSec, AvgSlowdown: sd}
	}
	results := []CellResult{
		{Cell: scenario.Cell{Index: 0, Scenario: sp, Method: mrsch, Seed: 101}, Report: rep(0.84, 0.62, 7200, 3.5)},
		{Cell: scenario.Cell{Index: 1, Scenario: sp, Method: mrsch, Seed: 102}, Report: rep(0.80, 0.58, 9000, 4.5)},
		{Cell: scenario.Cell{Index: 2, Scenario: sp, Method: fcfs, Seed: 101}, Report: rep(0.70, 0.50, 14400, 8)},
		{Cell: scenario.Cell{Index: 3, Scenario: sp, Method: fcfs, Seed: 102}, Report: rep(0.74, 0.54, 10800, 6)},
	}
	var buf bytes.Buffer
	FprintCells(&buf, "agg-demo", results)
	want := "Campaign agg-demo — scenario x method x seed grid (episode per cell):\n" +
		"  scenario         method        res     util[0]   util[1]  wait(h)  slowdown\n" +
		"  S4#101           MRSch         2         0.840     0.620     2.00      3.50\n" +
		"  S4#102           MRSch         2         0.800     0.580     2.50      4.50\n" +
		"  S4#101           Heuristic     2         0.700     0.500     4.00      8.00\n" +
		"  S4#102           Heuristic     2         0.740     0.540     3.00      6.00\n" +
		"\n" +
		"  Across seed replicates (mean±sd):\n" +
		"  scenario         method        n             util[0]         util[1]         wait(h)        slowdown\n" +
		"  S4               MRSch         2        0.820±0.028     0.600±0.028     2.250±0.354     4.000±0.707 \n" +
		"  S4               Heuristic     2        0.720±0.028     0.520±0.028     3.500±0.707     7.000±1.414 \n"
	if got := buf.String(); got != want {
		t.Fatalf("aggregated rendering drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Campaigns without a seed axis render exactly as before — no aggregate
// block — including when several cells failed (failed CellResults carry
// their real Cell, so distinct failures must not collapse into one
// phantom replicated group).
func TestFprintCellsNoSeedAxisUnchanged(t *testing.T) {
	sp := scenario.ScenarioSpec{Name: "S1", BBProb: 0.2, MinTB: 1, MaxTB: 10}
	sp2 := scenario.ScenarioSpec{Name: "S2", BBProb: 0.4, MinTB: 1, MaxTB: 10}
	fcfs := scenario.MethodSpec{Kind: scenario.KindHeuristic}
	results := []CellResult{
		{
			Cell:   scenario.Cell{Index: 0, Scenario: sp, Method: fcfs},
			Report: metrics.Report{Utilization: []float64{0.5, 0.4}, AvgWaitSec: 3600, AvgSlowdown: 2},
		},
		{Cell: scenario.Cell{Index: 1, Scenario: sp2, Method: fcfs}}, // failed: zero Report
		{Cell: scenario.Cell{Index: 2, Scenario: scenario.ScenarioSpec{Name: "S3"}, Method: fcfs}},
	}
	var buf bytes.Buffer
	FprintCells(&buf, "plain", results)
	if strings.Contains(buf.String(), "Across seed replicates") {
		t.Fatalf("aggregate block rendered without replicates:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "S2") || !strings.Contains(buf.String(), "(failed)") {
		t.Fatalf("failed cells lost their scenario label:\n%s", buf.String())
	}
}

// End-to-end: a campaign with a Seeds axis replicates every cell and the
// rendered table carries the aggregate rows.
func TestCampaignSeedAxisEndToEnd(t *testing.T) {
	sc := tinyScale()
	base, err := scenario.ByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "seeded",
		Scale:     sc.Spec(),
		Scenarios: []scenario.ScenarioSpec{base},
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindHeuristic}},
		Seeds:     []int64{21, 22, 23},
	}
	results, err := RunCampaign(spec, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d cells, want 3 seed replicates", len(results))
	}
	var buf bytes.Buffer
	FprintCells(&buf, spec.Name, results)
	out := buf.String()
	if !strings.Contains(out, "Across seed replicates") {
		t.Fatalf("no aggregate block for a seeded campaign:\n%s", out)
	}
	if !strings.Contains(out, "S1               Heuristic     3 ") {
		t.Fatalf("aggregate row missing the replicate count:\n%s", out)
	}
}
