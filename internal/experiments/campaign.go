package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rl"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// This file runs declarative campaigns (internal/scenario): the spec's
// scenario x method x seed axes expand into cells, per-cell base materials
// and per-family trained models resolve serially up front, and the cells
// then fan out across the internal/rollout worker pool as independent
// evaluation episodes. Per-cell seeding derives from Cell.Index, so results
// are identical for every worker count.

// CellResult pairs one expanded campaign cell with its §IV-B metrics.
type CellResult struct {
	Cell   scenario.Cell
	Report metrics.Report
}

// CampaignOptions are the runtime knobs deliberately kept out of the
// serialized spec: how wide to fan out, the training mode for in-process
// family models, and the durability knobs (model store + checkpoints).
type CampaignOptions struct {
	// Workers bounds parallel evaluation episodes and training rollout
	// environments (0 = all CPU cores).
	Workers int
	// Pipelined trains family models with collection overlapped against a
	// versioned weight snapshot (rollout.Config.Pipelined).
	Pipelined bool
	// ModelDir, when non-empty, is the content-addressed model store:
	// every in-process-trained family model is saved there under a name
	// derived from the scenario family and a hash of everything its
	// weights are a deterministic function of (method, family, base
	// materials, scale spec, worker count, training mode). A later
	// campaign whose key hashes to an existing file loads it instead of
	// retraining — re-running a finished campaign trains zero models.
	ModelDir string
	// CheckpointDir/CheckpointEvery/Resume make the in-process family
	// training runs durable at round granularity (see the matching Scale
	// fields): a preempted campaign re-run with Resume continues each
	// partially trained family model from its last written boundary.
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	// OnModel, when non-nil, observes family-model resolution: action is
	// "trained" (trained in-process this run), "cached" (loaded from the
	// ModelDir store), or "file" (loaded from an explicit MethodSpec.Model
	// path). path names the file involved ("" for in-process training
	// with no store).
	OnModel func(family, action, path string)
	// NoTrain forbids in-process training: every trained family model must
	// resolve from the ModelDir store or an explicit MethodSpec.Model file.
	// Distributed workers (internal/distrib) run with NoTrain set — the
	// coordinator resolves every family model exactly once before cells fan
	// out, so a cell retried on another worker can never retrain a model.
	NoTrain bool
	// Metrics/Journal wire telemetry through to the training harness
	// (Scale.Metrics/Journal → rollout.Config). Observe-only; excluded
	// from model-store keys like every other runtime knob.
	Metrics *telemetry.Registry
	Journal *telemetry.Journal
}

// CampaignRun holds the resolved state shared by a campaign's cells. All
// maps are populated serially (ResolveCell) before cells fan out and are
// read-only afterwards. RunCampaign drives the whole lifecycle in-process;
// the distributed runner (internal/distrib) opens a run per process and
// resolves cells lazily as they are assigned.
type CampaignRun struct {
	spec      scenario.CampaignSpec
	opt       CampaignOptions
	baseScale Scale
	materials map[string]*Materials
	mrsch     map[string]*core.MRSch
	scalarRL  map[string]*rl.Scheduler
}

// OpenCampaign validates the spec and prepares a run whose cells can be
// resolved and evaluated individually. Nothing heavy happens here: base
// materials and family models resolve on the first ResolveCell that needs
// them.
func OpenCampaign(spec scenario.CampaignSpec, opt CampaignOptions) (*CampaignRun, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	baseScale := ScaleFromSpec(spec.Scale)
	baseScale.RolloutWorkers = opt.Workers
	baseScale.Pipelined = opt.Pipelined
	baseScale.CheckpointDir = opt.CheckpointDir
	baseScale.CheckpointEvery = opt.CheckpointEvery
	baseScale.Resume = opt.Resume
	baseScale.Metrics = opt.Metrics
	baseScale.Journal = opt.Journal
	if opt.ModelDir != "" {
		if err := os.MkdirAll(opt.ModelDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: campaign %s: model store: %w", spec.Name, err)
		}
	}
	return &CampaignRun{
		spec:      spec,
		opt:       opt,
		baseScale: baseScale,
		materials: make(map[string]*Materials),
		mrsch:     make(map[string]*core.MRSch),
		scalarRL:  make(map[string]*rl.Scheduler),
	}, nil
}

// Spec returns the run's campaign spec.
func (r *CampaignRun) Spec() scenario.CampaignSpec { return r.spec }

// Cells returns the run's deterministic grid expansion.
func (r *CampaignRun) Cells() []scenario.Cell { return r.spec.Expand() }

// ResolveCell prepares everything the cell's evaluation needs: its base
// materials and, for trained methods, its family model (trained in-process,
// loaded from the ModelDir store, or loaded from an explicit weights file
// — see CampaignOptions.NoTrain). Resolution is cached, so re-resolving a
// cell or resolving a sibling of the same family is free. Not safe to call
// concurrently: callers resolve serially, then fan evaluation out.
func (r *CampaignRun) ResolveCell(cell scenario.Cell) error {
	if _, err := r.resolveMaterials(cell); err != nil {
		return fmt.Errorf("experiments: campaign %s: %s: %w", r.spec.Name, cell.Label(), err)
	}
	if err := r.resolveModel(cell); err != nil {
		return fmt.Errorf("experiments: campaign %s: %s: %w", r.spec.Name, cell.Label(), err)
	}
	return nil
}

// RunCampaign validates and expands the spec, resolves variant materials
// and family models, and evaluates every cell, returning results in
// expansion order. Cell failures don't abort the rest of the grid; the
// returned error names every failed cell.
func RunCampaign(spec scenario.CampaignSpec, opt CampaignOptions) ([]CellResult, error) {
	run, err := OpenCampaign(spec, opt)
	if err != nil {
		return nil, err
	}
	cells := run.Cells()
	for _, cell := range cells {
		if err := run.ResolveCell(cell); err != nil {
			return nil, err
		}
	}
	return run.evalCells(cells, opt.Workers)
}

// evalCells fans the prepared cells across the worker pool.
func (r *CampaignRun) evalCells(cells []scenario.Cell, workers int) ([]CellResult, error) {
	results, errs := rollout.MapCollect(workers, cells, func(_, _ int, cell scenario.Cell) (CellResult, error) {
		return r.evalCell(cell)
	})
	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", cells[i].Label(), err))
		}
	}
	if failed != nil {
		return results, fmt.Errorf("experiments: campaign %s: %d cell(s) failed: %s",
			r.spec.Name, len(failed), strings.Join(failed, "; "))
	}
	return results, nil
}

// ScaleForSpec folds a scenario's base-trace overrides — div, interarrival,
// burst, trace — into a scale: the single place the spec axes become
// generator inputs, shared by the campaign runner and the cmd binaries'
// standalone evaluation paths. Evaluation-side axes (walltime noise, zipf
// ownership) don't touch the scale; Materials.WorkloadSpec applies them.
func ScaleForSpec(sc Scale, sp scenario.ScenarioSpec) Scale {
	if sp.Div > 0 {
		sc.Div = sp.Div
	}
	if sp.InterarrivalScale > 0 && sp.InterarrivalScale != 1 {
		sc.MeanInterarrival *= sp.InterarrivalScale
	}
	if sp.Burst != nil {
		sc.Burst = sp.Burst
	}
	if sp.Trace != "" {
		sc.Trace = sp.Trace
	}
	return sc
}

// PrepareFor prepares the materials a scenario evaluates against: Prepare
// at ScaleForSpec's folded scale, with the interarrival factor recorded so
// WorkloadSpec's checkSpec accepts the spec it was built for.
func PrepareFor(sc Scale, sp scenario.ScenarioSpec) (*Materials, error) {
	m, err := Prepare(ScaleForSpec(sc, sp))
	if err != nil {
		return nil, err
	}
	if sp.InterarrivalScale > 0 && sp.InterarrivalScale != 1 {
		m.InterarrivalScale = sp.InterarrivalScale
	}
	return m, nil
}

// scaleFor derives the cell's effective scale: the campaign scale with the
// cell's replicate seed and the scenario's base-trace overrides applied.
func (r *CampaignRun) scaleFor(cell scenario.Cell) Scale {
	sc := r.baseScale
	if cell.Seed != 0 {
		sc.Seed = cell.Seed
	}
	return ScaleForSpec(sc, cell.Scenario)
}

// materialsKey identifies one set of base materials. The burst and trace
// segments are conditional so every pre-existing key is unchanged.
func materialsKey(sc Scale) string {
	key := fmt.Sprintf("div=%d|ia=%g|seed=%d", sc.Div, sc.MeanInterarrival, sc.Seed)
	if sc.Burst != nil {
		key += fmt.Sprintf("|burst=%gx%g@%g", sc.Burst.Factor, sc.Burst.Frac, sc.Burst.Dwell)
	}
	if sc.Trace != "" {
		key += "|trace=" + sc.Trace
	}
	return key
}

// resolveMaterials prepares (and caches) the cell's base materials. Called
// serially before the fan-out; evalCell only reads the cache.
func (r *CampaignRun) resolveMaterials(cell scenario.Cell) (*Materials, error) {
	sc := r.scaleFor(cell)
	key := materialsKey(sc)
	if m, ok := r.materials[key]; ok {
		return m, nil
	}
	m, err := Prepare(sc)
	if err != nil {
		return nil, err
	}
	if sp := cell.Scenario; sp.InterarrivalScale > 0 && sp.InterarrivalScale != 1 {
		m.InterarrivalScale = sp.InterarrivalScale
	}
	r.materials[key] = m
	return m, nil
}

func (r *CampaignRun) materialsOf(cell scenario.Cell) *Materials {
	return r.materials[materialsKey(r.scaleFor(cell))]
}

// modelKey identifies one trained model: a method's model is shared by
// every cell whose scenario family, arity, and base materials match.
func (r *CampaignRun) modelKey(cell scenario.Cell) string {
	sp := cell.Scenario
	return fmt.Sprintf("%s|%s|cnn=%v|power=%v|file=%s|%s",
		cell.Method.Kind, sp.FamilyName(), cell.Method.CNN, sp.Power,
		cell.Method.Model, materialsKey(r.scaleFor(cell)))
}

// resolveModel trains or loads the cell's model if its method needs one and
// the family doesn't have it yet. Called serially before the fan-out:
// training itself parallelizes across rollout workers, and evaluation cells
// must only ever read frozen weights.
func (r *CampaignRun) resolveModel(cell scenario.Cell) error {
	method := cell.Method
	if !method.Kind.Trained() {
		return nil
	}
	if method.Model == "" && !method.Train {
		return fmt.Errorf("method %s needs a trained model: set train=true or reference a model file", method.Kind)
	}
	sp := cell.Scenario
	if sp.Power && sp.PowerBudgetKW != 0 && method.Train {
		return fmt.Errorf("scenario %s: train=true with a power_budget_kw override is unsupported (the state encoding is sized by the budget); train at the default budget and load the model file", sp.Name)
	}
	key := r.modelKey(cell)
	m := r.materialsOf(cell)
	family := sp.FamilyName()
	switch method.Kind {
	case scenario.KindMRSch:
		if _, ok := r.mrsch[key]; ok {
			return nil
		}
		stored := r.storePath(cell)
		// Power families train through TrainMRSchPower, which builds the
		// MLP state module regardless of method.CNN; every load path must
		// mirror that construction or the saved weights won't fit.
		cnn := method.CNN && !sp.Power
		var agent *core.MRSch
		var err error
		switch {
		case method.Model != "":
			agent, err = loadMRSchModel(m, sp, cnn, method.Model)
			r.notifyModel(family, "file", method.Model, err)
		case stored != "" && fileExists(stored):
			agent, err = loadMRSchModel(m, sp, cnn, stored)
			r.notifyModel(family, "cached", stored, err)
		case r.opt.NoTrain:
			return errNoTrain(family, stored)
		default:
			if sp.Power {
				agent, err = TrainMRSchPower(m, family)
			} else {
				agent, _, err = TrainMRSch(m, family, method.CNN)
			}
			if err == nil && stored != "" {
				err = storeModel(stored, agent.Save)
			}
			r.notifyModel(family, "trained", stored, err)
		}
		if err != nil {
			return fmt.Errorf("model for family %s: %w", family, err)
		}
		agent.Train = false
		r.mrsch[key] = agent
	case scenario.KindScalarRL:
		if _, ok := r.scalarRL[key]; ok {
			return nil
		}
		stored := r.storePath(cell)
		var agent *rl.Scheduler
		var err error
		if stored != "" && fileExists(stored) {
			agent, err = loadScalarRLModel(m, sp, stored)
			r.notifyModel(family, "cached", stored, err)
		} else if r.opt.NoTrain {
			return errNoTrain(family, stored)
		} else {
			agent, err = TrainScalarRL(m, family, m.SystemFor(sp), sp.Power)
			if err == nil && stored != "" {
				err = storeModel(stored, agent.Save)
			}
			r.notifyModel(family, "trained", stored, err)
		}
		if err != nil {
			return fmt.Errorf("model for family %s: %w", family, err)
		}
		r.scalarRL[key] = agent
	}
	return nil
}

// storePath returns the content-addressed model-store path for the cell's
// trained family model, or "" when the store is disabled or the method
// references an explicit weights file (which IS its own store). The name
// hashes everything the trained weights are a deterministic function of:
// the model key (method kind, family, CNN/power flags, base materials),
// the full scale spec, the effective rollout worker count, and the
// training mode — so a campaign re-run under identical settings maps to
// the same file, and a run under different settings cannot silently load
// weights trained another way.
func (r *CampaignRun) storePath(cell scenario.Cell) string {
	if r.opt.ModelDir == "" || cell.Method.Model != "" {
		return ""
	}
	spec, err := json.Marshal(r.spec.Scale)
	if err != nil {
		return "" // unreachable: ScaleSpec marshals; disable the store rather than mis-key it
	}
	content := fmt.Sprintf("v1|%s|scale=%s|workers=%d|pipelined=%v",
		r.modelKey(cell), spec, rollout.ResolveWorkers(r.baseScale.RolloutWorkers), r.baseScale.Pipelined)
	name := fmt.Sprintf("%s-%s-%s.model",
		cell.Method.Kind, sanitizeName(cell.Scenario.FamilyName()), modelStoreKeyHash(content))
	return filepath.Join(r.opt.ModelDir, name)
}

// notifyModel reports a family-model resolution to the OnModel observer
// (successful resolutions only; failures surface through the error path).
func (r *CampaignRun) notifyModel(family, action, path string, err error) {
	if err == nil && r.opt.OnModel != nil {
		r.opt.OnModel(family, action, path)
	}
}

// errNoTrain names a family model a NoTrain run could not resolve. The
// store path is part of the message: on a distributed worker it tells the
// operator whether the store was never populated or the worker is pointed
// at the wrong directory.
func errNoTrain(family, stored string) error {
	where := "no model store configured"
	if stored != "" {
		where = fmt.Sprintf("store file %s does not exist", stored)
	}
	return fmt.Errorf("family %s needs a trained model but in-process training is disabled (NoTrain): %s", family, where)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// storeModel atomically writes a trained model's weights into the store.
func storeModel(path string, save func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return err
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("model store: %w", err)
	}
	return nil
}

// loadMRSchModel builds the campaign-architecture agent for the cell's
// system and restores saved weights (cmd/mrsch-train output or a model-
// store entry) into it.
func loadMRSchModel(m *Materials, sp scenario.ScenarioSpec, cnn bool, path string) (*core.MRSch, error) {
	agent := core.New(m.SystemFor(sp), m.Scale.mrschOptions(m.Scale.Seed+11, cnn))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := agent.Load(f); err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return agent, nil
}

// loadScalarRLModel builds the campaign-architecture scalar-RL scheduler
// (the shared scalarRLConfig construction TrainScalarRL uses) and
// restores model-store weights into it.
func loadScalarRLModel(m *Materials, sp scenario.ScenarioSpec, path string) (*rl.Scheduler, error) {
	agent := rl.New(m.SystemFor(sp), m.Scale.scalarRLConfig())
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := agent.Load(f); err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return agent, nil
}

// EvalCell runs one resolved grid cell as an independent evaluation
// episode. The cell must have been ResolveCell'd first; evaluation reads
// only frozen models and cached materials, so distinct cells may be
// evaluated concurrently (RunCampaign fans them over the rollout pool, a
// distributed worker runs them one at a time).
func (r *CampaignRun) EvalCell(cell scenario.Cell) (CellResult, error) {
	return r.evalCell(cell)
}

// evalCell runs one grid cell as an independent evaluation episode. Error
// results still carry the cell (with a zero Report), so partial campaign
// renderings label failed cells by name instead of collapsing them into
// one anonymous row.
func (r *CampaignRun) evalCell(cell scenario.Cell) (CellResult, error) {
	failed := CellResult{Cell: cell}
	m := r.materialsOf(cell)
	if m == nil {
		// Unreachable through RunCampaign (resolveMaterials runs first);
		// guards adapters that seed the materials map themselves.
		return failed, fmt.Errorf("no materials prepared for scale %q", materialsKey(r.scaleFor(cell)))
	}
	sp := cell.Scenario
	sys := m.SystemFor(sp)
	jobs, err := m.WorkloadSpec(sp)
	if err != nil {
		return failed, err
	}
	policy, err := r.cellPolicy(m, cell)
	if err != nil {
		return failed, err
	}
	rep, err := Evaluate(sys, policy, jobs, cell.Method.DisplayName(), sp.Name, sys.ResourceIndex("power_kw"))
	if err != nil {
		return failed, err
	}
	return CellResult{Cell: cell, Report: rep}, nil
}

// cellPolicy builds the cell's scheduling policy. Training-free methods
// construct fresh; trained methods wrap a read-only actor clone of the
// family's frozen model, so cells sharing one model may run concurrently.
// All seeding derives from Cell.Index.
func (r *CampaignRun) cellPolicy(m *Materials, cell scenario.Cell) (*sched.WindowPolicy, error) {
	switch cell.Method.Kind {
	case scenario.KindHeuristic:
		return FCFSPolicy(m.Scale.Window), nil
	case scenario.KindOptimize:
		return sched.NewWindowPolicy(NewGA(m.Scale.Seed+7000+int64(cell.Index)), m.Scale.Window), nil
	case scenario.KindMRSch:
		agent := r.mrsch[r.modelKey(cell)]
		actor, parallel := agent.Actor()
		if !parallel {
			return nil, fmt.Errorf("method mrsch: state module is not clonable for parallel evaluation")
		}
		actor.Reset(m.Scale.Seed+9000+int64(cell.Index), 0) // eps 0: greedy
		return actor.Policy(), nil
	case scenario.KindScalarRL:
		agent := r.scalarRL[r.modelKey(cell)]
		actor, parallel := agent.Actor()
		if !parallel {
			return nil, fmt.Errorf("method scalar-rl: network is not clonable for parallel evaluation")
		}
		actor.Reset(m.Scale.Seed + 9000 + int64(cell.Index))
		return actor.Policy(), nil
	}
	return nil, fmt.Errorf("unknown method kind %q", cell.Method.Kind)
}

// FprintCells renders campaign results as one table row per cell and —
// when the campaign replicates cells across a seed axis — appends a
// mean/spread aggregation across the replicates of each (scenario, method)
// pair (the per-cell reports carry everything needed; see fprintSeedAggregate).
func FprintCells(w io.Writer, name string, results []CellResult) {
	fmt.Fprintf(w, "Campaign %s — scenario x method x seed grid (episode per cell):\n", name)
	fmt.Fprintf(w, "  %-16s %-13s %-5s %9s %9s %8s %9s\n",
		"scenario", "method", "res", "util[0]", "util[1]", "wait(h)", "slowdown")
	for _, r := range results {
		name := r.Cell.Scenario.Name
		if r.Cell.Seed != 0 {
			name = fmt.Sprintf("%s#%d", name, r.Cell.Seed)
		}
		if len(r.Report.Utilization) < 2 {
			// A zero-value report: the cell failed (the caller has the
			// per-cell error) or was never run.
			fmt.Fprintf(w, "  %-16s %-13s %-5d %s\n",
				name, r.Cell.Method.DisplayName(), r.Cell.Scenario.Arity(), "(failed)")
			continue
		}
		fmt.Fprintf(w, "  %-16s %-13s %-5d %9.3f %9.3f %8.2f %9.2f\n",
			name, r.Cell.Method.DisplayName(), r.Cell.Scenario.Arity(),
			r.Report.Utilization[0], r.Report.Utilization[1],
			r.Report.AvgWaitHours(), r.Report.AvgSlowdown)
	}
	fprintSeedAggregate(w, results)
}

// fprintSeedAggregate renders the seed-axis summary: one row per
// (scenario, method) pair that has more than one seed replicate, showing
// mean ± sample standard deviation of each §IV-B metric across the
// replicates that produced a report. Campaigns without a seed axis (every
// pair appears once) print nothing extra.
func fprintSeedAggregate(w io.Writer, results []CellResult) {
	type groupKey struct{ scenario, method string }
	var order []groupKey
	total := make(map[groupKey]int)
	reports := make(map[groupKey][]metrics.Report)
	replicated := false
	for _, r := range results {
		k := groupKey{r.Cell.Scenario.Name, r.Cell.Method.DisplayName()}
		if total[k] == 0 {
			order = append(order, k)
		}
		total[k]++
		if total[k] > 1 {
			replicated = true
		}
		if len(r.Report.Utilization) >= 2 {
			reports[k] = append(reports[k], r.Report)
		}
	}
	if !replicated {
		return
	}
	fmt.Fprintf(w, "\n  Across seed replicates (mean±sd):\n")
	fmt.Fprintf(w, "  %-16s %-13s %-5s %15s %15s %15s %15s\n",
		"scenario", "method", "n", "util[0]", "util[1]", "wait(h)", "slowdown")
	for _, k := range order {
		if total[k] < 2 {
			continue
		}
		reps := reports[k]
		if len(reps) == 0 {
			fmt.Fprintf(w, "  %-16s %-13s %-5d %s\n", k.scenario, k.method, total[k], "(all replicates failed)")
			continue
		}
		metric := func(f func(metrics.Report) float64) string {
			mean, sd := meanSpread(reps, f)
			return fmt.Sprintf("%8.3f±%-6.3f", mean, sd)
		}
		fmt.Fprintf(w, "  %-16s %-13s %-5d %s %s %s %s\n",
			k.scenario, k.method, len(reps),
			metric(func(r metrics.Report) float64 { return r.Utilization[0] }),
			metric(func(r metrics.Report) float64 { return r.Utilization[1] }),
			metric(metrics.Report.AvgWaitHours),
			metric(func(r metrics.Report) float64 { return r.AvgSlowdown }))
	}
}

// meanSpread computes the mean and sample standard deviation (0 for a
// single replicate) of f over the reports.
func meanSpread(reps []metrics.Report, f func(metrics.Report) float64) (mean, sd float64) {
	for _, r := range reps {
		mean += f(r)
	}
	mean /= float64(len(reps))
	if len(reps) < 2 {
		return mean, 0
	}
	for _, r := range reps {
		d := f(r) - mean
		sd += d * d
	}
	return mean, math.Sqrt(sd / float64(len(reps)-1))
}
