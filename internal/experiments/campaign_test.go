package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// The method constants the figures print are the display names of the
// scenario registry — the adapter contract between the two layers.
func TestMethodConstantsMatchScenarioRegistry(t *testing.T) {
	want := map[string]scenario.MethodKind{
		MethodMRSch:     scenario.KindMRSch,
		MethodOptimize:  scenario.KindOptimize,
		MethodScalarRL:  scenario.KindScalarRL,
		MethodHeuristic: scenario.KindHeuristic,
	}
	for name, kind := range want {
		if kind.DisplayName() != name {
			t.Fatalf("kind %s displays as %q, want %q", kind, kind.DisplayName(), name)
		}
		m, err := scenario.MethodByName(name)
		if err != nil || m.Kind != kind {
			t.Fatalf("MethodByName(%q) = %v, %v", name, m, err)
		}
	}
}

// The redesign contract: SweepGrid(nil) yields the same cells in the same
// order as before the spec layer existed (hard-coded here from the
// pre-redesign implementation).
func TestSweepGridMatchesLegacyCells(t *testing.T) {
	var want []SweepCell
	for _, wl := range []string{"S1", "S2", "S3", "S4", "S5"} {
		for _, method := range []string{"Heuristic", "Optimization"} {
			want = append(want, SweepCell{Workload: wl, Method: method})
		}
	}
	for _, wl := range []string{"S6", "S7", "S8", "S9", "S10"} {
		for _, method := range []string{"Heuristic", "Optimization"} {
			want = append(want, SweepCell{Workload: wl, Method: method, Power: true})
		}
	}
	if got := SweepGrid(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("SweepGrid(nil) drifted from the legacy cells:\n got %+v\nwant %+v", got, want)
	}
}

// The paper campaign expanded through the spec layer evaluates to exactly
// the results the legacy RunSweep adapter produces for the same grid.
func TestPaperCampaignMatchesLegacySweep(t *testing.T) {
	sc := tinyScale()
	m := MustPrepare(sc)
	grid := SweepGrid([]string{MethodHeuristic})
	legacy, err := RunSweep(m, grid, 2)
	if err != nil {
		t.Fatal(err)
	}

	spec := scenario.PaperCampaign(sc.Spec())
	spec.Methods = []scenario.MethodSpec{{Kind: scenario.KindHeuristic}}
	results, err := RunCampaign(spec, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(legacy) {
		t.Fatalf("%d campaign cells vs %d legacy cells", len(results), len(legacy))
	}
	for i := range results {
		if results[i].Cell.Scenario.Name != legacy[i].Cell.Workload {
			t.Fatalf("cell %d: %s vs %s", i, results[i].Cell.Scenario.Name, legacy[i].Cell.Workload)
		}
		if !reflect.DeepEqual(results[i].Report, legacy[i].Report) {
			t.Fatalf("cell %d (%s): campaign report differs from legacy sweep:\n%+v\nvs\n%+v",
				i, legacy[i].Cell.Workload, results[i].Report, legacy[i].Report)
		}
	}
}

// A JSON round trip of the campaign spec changes nothing about the run.
func TestCampaignJSONRoundTripSameResults(t *testing.T) {
	spec := scenario.PaperCampaign(tinyScale().Spec())
	spec.Scenarios = spec.Scenarios[:2]
	spec.Methods = []scenario.MethodSpec{{Kind: scenario.KindHeuristic}}

	var buf bytes.Buffer
	if err := spec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := scenario.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunCampaign(spec, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	roundTripped, err := RunCampaign(loaded, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, roundTripped) {
		t.Fatal("round-tripped campaign produced different results")
	}
}

// Theta-variant cells run end-to-end: each axis changes the inputs it
// claims to change, results are worker-count independent, and reports carry
// completed jobs.
func TestThetaVariantCellsRunEndToEnd(t *testing.T) {
	sc := tinyScale()
	base, err := scenario.ByName("S4")
	if err != nil {
		t.Fatal(err)
	}
	var variants []scenario.ScenarioSpec
	for _, ref := range []string{"S4@wtn=0.5", "S4@ia=0.75", "S4@div=32"} {
		sp, err := scenario.ByName(ref)
		if err != nil {
			t.Fatal(err)
		}
		variants = append(variants, sp)
	}
	spec := scenario.CampaignSpec{
		Name:      "variant-smoke",
		Scale:     sc.Spec(),
		Scenarios: append([]scenario.ScenarioSpec{base}, variants...),
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindHeuristic}},
	}
	serial, err := RunCampaign(spec, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(spec, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("campaign results depend on worker count")
	}
	byName := map[string]CellResult{}
	for _, r := range serial {
		if r.Report.Jobs == 0 {
			t.Fatalf("%s completed no jobs", r.Cell.Label())
		}
		byName[r.Cell.Scenario.Name] = r
	}
	// Each variant must actually differ from the base cell (the axes are
	// live, not decorative).
	baseRep := byName["S4"].Report
	for _, v := range variants {
		if reflect.DeepEqual(byName[v.Name].Report, baseRep) {
			t.Fatalf("variant %s reproduced the base report exactly; its axis did nothing", v.Name)
		}
	}
	var buf bytes.Buffer
	FprintCells(&buf, spec.Name, serial)
	if buf.Len() == 0 {
		t.Fatal("empty campaign rendering")
	}
}

// Trained methods: train=true builds one model per scenario family and
// reuses it across the family's cells; a model file reloads into a fresh
// campaign identically.
func TestCampaignTrainsOneModelPerFamily(t *testing.T) {
	sc := tinyScale()
	base, err := scenario.ByName("S4")
	if err != nil {
		t.Fatal(err)
	}
	variant, err := scenario.ByName("S4@wtn=0.5")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "trained-smoke",
		Scale:     sc.Spec(),
		Scenarios: []scenario.ScenarioSpec{base, variant},
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindMRSch, Train: true}},
	}
	results, err := RunCampaign(spec, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d cells, want 2", len(results))
	}
	for _, r := range results {
		if r.Report.Jobs == 0 {
			t.Fatalf("%s completed no jobs", r.Cell.Label())
		}
	}

	// Save the family model the same way mrsch-train would and rerun the
	// campaign loading it from the file: the model-reference path must
	// produce the same reports without retraining. The reference training
	// pins the same rollout worker count the campaign used.
	sc.RolloutWorkers = 2
	m := MustPrepare(sc)
	agent, _, err := TrainMRSch(m, "S4", false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s4.model")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec.Methods = []scenario.MethodSpec{{Kind: scenario.KindMRSch, Model: path}}
	loaded, err := RunCampaign(spec, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if !reflect.DeepEqual(results[i].Report, loaded[i].Report) {
			t.Fatalf("cell %d: model-file run differs from in-process training", i)
		}
	}
}

func TestCampaignRejectsUntrainedModelMethods(t *testing.T) {
	spec := scenario.PaperCampaign(tinyScale().Spec())
	spec.Methods = []scenario.MethodSpec{{Kind: scenario.KindMRSch}} // no train, no model
	if _, err := RunCampaign(spec, CampaignOptions{Workers: 1}); err == nil {
		t.Fatal("campaign accepted a trained method with neither train nor model")
	}
}

func TestPrepareRejectsDegenerateScales(t *testing.T) {
	cases := []func(*Scale){
		func(s *Scale) { s.Div = 0 },
		func(s *Scale) { s.Div = -4 },
		func(s *Scale) { s.Window = 0 },
		func(s *Scale) { s.SetSize = -1 },
		func(s *Scale) { s.TraceDuration = 0 },
		func(s *Scale) { s.SetsPerKind = 0 },
		func(s *Scale) { s.MeanInterarrival = 0 },
	}
	for i, mutate := range cases {
		sc := tinyScale()
		mutate(&sc)
		if _, err := Prepare(sc); err == nil {
			t.Fatalf("case %d: Prepare accepted %+v", i, sc)
		}
	}
	if _, err := Prepare(tinyScale()); err != nil {
		t.Fatalf("Prepare rejected a valid scale: %v", err)
	}
}
