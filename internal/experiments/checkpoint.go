package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/nn"
	"repro/internal/rollout"
)

// This file makes training runs durable. A run with Scale.CheckpointDir set
// writes its full agent state to one file at every round boundary (the
// rollout.Config.Checkpoint hook, rules 9-10 of the rollout package doc);
// with Scale.Resume set it restores that file and continues from the
// recorded boundary, bitwise identical to never having been interrupted.
// The file is a gob container pairing the agent's own state blob
// (dfp.Agent.SaveState / rl.Scheduler.SaveState) with a manifest of the
// settings the equivalence contract depends on — episode counts, effective
// worker count, pipelined mode, and the rollout seed — all of which are
// verified on resume and rejected loudly on mismatch.

// ckptMagic versions the checkpoint container format.
const ckptMagic = "mrsch-train-ckpt-v1"

func init() {
	// Fixed-order gob type-ID claim, keeping encoded bytes history-free
	// (see nn.GobWarmup).
	nn.RegisterGobContainer(func(enc *gob.Encoder) {
		enc.Encode(&trainCheckpoint{})
		enc.Encode(&validatedState{})
	})
}

// trainCheckpoint is the on-disk container: the resume manifest plus the
// agent state blob.
type trainCheckpoint struct {
	Magic string
	// Key names the training run (method kind, scenario family, arity).
	Key string
	// SpecHash digests the full scale spec the run's materials and
	// curriculum derive from: an edit that keeps the episode count but
	// changes the job sets (set_size, trace_duration, eps_decay, ...)
	// must not silently resume old-curriculum state on new episodes.
	SpecHash string
	// Episodes is the number of episodes fully reduced into the agent;
	// Total the run's episode count (a second curriculum guard).
	Episodes int
	Total    int
	// Workers/Pipelined/Seed pin the rollout settings the bitwise resume
	// contract requires (rollout doc rules 9-10).
	Workers   int
	Pipelined bool
	Seed      int64
	// Agent is the agent's own serialized state (dfp or rl SaveState).
	Agent []byte
}

// trainKey names a training run for checkpoint files and log lines.
func trainKey(kind, family string, cnn, power bool) string {
	key := kind + "-" + family
	if cnn {
		key += "-cnn"
	}
	if power {
		key += "-power"
	}
	return key
}

// sanitizeName maps an arbitrary key to a filesystem-safe token: runs of
// anything outside [A-Za-z0-9._-] collapse to one '-'.
func sanitizeName(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			b.WriteRune(r)
			dash = false
		default:
			if !dash {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.Trim(b.String(), "-")
}

// checkpointPath is the run's checkpoint file under dir. The name carries
// the scale-spec hash: runs over different materials — a campaign's seed
// replicates or div/ia variants of one family, or an edited spec — each
// get their own file instead of colliding on (and then refusing) each
// other's state, so a fleet launched with -resume from day one always
// either resumes its own run or starts fresh.
func checkpointPath(dir, key, specHash string) string {
	return filepath.Join(dir, "train-"+sanitizeName(key)+"-"+specHash+".ckpt")
}

// writeFileAtomic writes data to path via a temp file + fsync + rename +
// directory fsync, so neither a crash mid-write nor a power loss shortly
// after the rename can leave a truncated checkpoint where a complete
// older one (or nothing) should be.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Flush the data before the rename publishes it: on journaling
	// filesystems with delayed allocation, rename-before-flush can
	// survive a power cut as a zero-length file at the final path.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Persist the rename itself (the directory entry).
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// wireCheckpoint arms cfg with the scale's durable-training knobs for one
// run: a round-boundary save hook writing to the key's file under
// CheckpointDir, and — with Resume set and a checkpoint present — a
// validated restore through load with cfg.Resume pointing at the recorded
// boundary. save/load abstract the agent kind (core.MRSch or
// rl.Scheduler). total is the run's episode count. No CheckpointDir means
// no-op.
func (s Scale) wireCheckpoint(cfg *rollout.Config, key string, total int,
	save func(io.Writer) error, load func(io.Reader) error) error {
	if s.CheckpointDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("experiments: checkpoint dir: %w", err)
	}
	workers := rollout.ResolveWorkers(cfg.Workers)
	specHash, err := s.specHash()
	if err != nil {
		return err
	}
	path := checkpointPath(s.CheckpointDir, key, specHash)

	if s.Resume {
		done, err := resumeCheckpoint(path, key, specHash, total, workers, cfg, load)
		if err != nil {
			return err
		}
		if done >= 0 {
			cfg.Resume = done
			if s.OnCheckpoint != nil {
				s.OnCheckpoint("resume", done)
			}
		}
	}

	every := s.CheckpointEvery
	if every < 1 {
		every = 1
	}
	boundaries := 0
	cfg.Checkpoint = func(done int) error {
		// Throttle to every Nth round boundary; the final boundary always
		// writes so a completed run's checkpoint is its final state.
		boundaries++
		if boundaries%every != 0 && done != total {
			return nil
		}
		var agent bytes.Buffer
		if err := save(&agent); err != nil {
			return err
		}
		var buf bytes.Buffer
		ck := trainCheckpoint{
			Magic:     ckptMagic,
			Key:       key,
			SpecHash:  specHash,
			Episodes:  done,
			Total:     total,
			Workers:   workers,
			Pipelined: cfg.Pipelined,
			Seed:      cfg.Seed,
			Agent:     agent.Bytes(),
		}
		if err := nn.EncodeChecksummed(&buf, &ck); err != nil {
			return fmt.Errorf("encoding checkpoint: %w", err)
		}
		if err := writeFileAtomic(path, buf.Bytes()); err != nil {
			return fmt.Errorf("writing checkpoint %s: %w", path, err)
		}
		if s.OnCheckpoint != nil {
			s.OnCheckpoint("save", done)
		}
		return nil
	}
	return nil
}

// validatedMagic versions the composite validated-training state.
const validatedMagic = "mrsch-validated-state-v1"

// validatedState is the agent-state blob of a validated training run: the
// agent's own training state composed with the §IV-A model-selection state
// (core.Selection), so -validate runs checkpoint and resume without losing
// the best weights seen before an interruption.
type validatedState struct {
	Magic     string
	Agent     []byte
	Selection []byte
}

// validatedSaver bundles an agent's SaveState with its selection's into one
// wireCheckpoint save function.
func validatedSaver(agent interface{ SaveState(io.Writer) error }, sel interface{ SaveState(io.Writer) error }) func(io.Writer) error {
	return func(w io.Writer) error {
		var a, s bytes.Buffer
		if err := agent.SaveState(&a); err != nil {
			return err
		}
		if err := sel.SaveState(&s); err != nil {
			return err
		}
		return nn.EncodeChecksummed(w, &validatedState{Magic: validatedMagic, Agent: a.Bytes(), Selection: s.Bytes()})
	}
}

// validatedLoader is the matching wireCheckpoint load function: both
// sections decode and validate before either side is mutated.
func validatedLoader(agent interface{ LoadState(io.Reader) error }, sel interface{ LoadState(io.Reader) error }) func(io.Reader) error {
	return func(r io.Reader) error {
		var st validatedState
		if err := nn.DecodeChecksummed(r, &st); err != nil {
			return fmt.Errorf("validated state: %w", err)
		}
		if st.Magic != validatedMagic {
			return fmt.Errorf("validated state: bad magic %q (want %q; checkpoint was written without -validate?)", st.Magic, validatedMagic)
		}
		if err := agent.LoadState(bytes.NewReader(st.Agent)); err != nil {
			return err
		}
		return sel.LoadState(bytes.NewReader(st.Selection))
	}
}

// specHash digests the scale spec the run's materials and curriculum are
// a deterministic function of.
func (s Scale) specHash() (string, error) {
	spec, err := json.Marshal(s.Spec())
	if err != nil {
		return "", fmt.Errorf("experiments: hashing scale spec: %w", err)
	}
	return modelStoreKeyHash("scale|" + string(spec)), nil
}

// resumeCheckpoint reads and validates the checkpoint at path and restores
// the agent state through load. It returns the recorded episode boundary,
// -1 when no checkpoint exists (fresh start), or an error when the file is
// unreadable or was written under incompatible settings.
func resumeCheckpoint(path, key, specHash string, total, workers int, cfg *rollout.Config, load func(io.Reader) error) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return -1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("experiments: resume: %w", err)
	}
	var ck trainCheckpoint
	if err := nn.DecodeChecksummed(bytes.NewReader(data), &ck); err != nil {
		return 0, fmt.Errorf("experiments: resume %s: %w", path, err)
	}
	if ck.Magic != ckptMagic {
		return 0, fmt.Errorf("experiments: resume %s: bad magic %q (want %q; corrupt file or incompatible format version)", path, ck.Magic, ckptMagic)
	}
	if ck.Key != key {
		return 0, fmt.Errorf("experiments: resume %s: checkpoint is for run %q, this run is %q", path, ck.Key, key)
	}
	if ck.SpecHash != specHash {
		return 0, fmt.Errorf("experiments: resume %s: checkpoint was written for a different scale spec (curriculum/materials drifted between runs; bitwise resume requires an identical spec)", path)
	}
	if ck.Total != total {
		return 0, fmt.Errorf("experiments: resume %s: checkpoint expects %d episodes, this run has %d (curriculum drifted between runs)", path, ck.Total, total)
	}
	if ck.Workers != workers {
		return 0, fmt.Errorf("experiments: resume %s: checkpoint was written with %d rollout workers, this run uses %d (bitwise resume requires identical -parallel)", path, ck.Workers, workers)
	}
	if ck.Pipelined != cfg.Pipelined {
		return 0, fmt.Errorf("experiments: resume %s: checkpoint was written with pipelined=%v, this run uses %v (bitwise resume requires identical -pipeline)", path, ck.Pipelined, cfg.Pipelined)
	}
	if ck.Seed != cfg.Seed {
		return 0, fmt.Errorf("experiments: resume %s: checkpoint was written at rollout seed %d, this run uses %d", path, ck.Seed, cfg.Seed)
	}
	if ck.Episodes < 0 || ck.Episodes > ck.Total {
		return 0, fmt.Errorf("experiments: resume %s: recorded boundary %d outside [0, %d]", path, ck.Episodes, ck.Total)
	}
	if err := load(bytes.NewReader(ck.Agent)); err != nil {
		return 0, fmt.Errorf("experiments: resume %s: %w", path, err)
	}
	return ck.Episodes, nil
}

// modelStoreKeyHash content-addresses a trained family model: the hash
// covers everything the trained weights are a deterministic function of.
func modelStoreKeyHash(content string) string {
	sum := sha256.Sum256([]byte(content))
	return fmt.Sprintf("%x", sum[:8])
}
