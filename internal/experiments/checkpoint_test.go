package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// Training with CheckpointDir writes a checkpoint at every round boundary;
// re-running with Resume picks up the final checkpoint and finishes
// instantly with identical weights.
func TestTrainCheckpointAndResumeFinishedRun(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.RolloutWorkers = 2
	sc.CheckpointDir = dir
	var saves, resumes []int
	sc.OnCheckpoint = func(action string, episodes int) {
		switch action {
		case "save":
			saves = append(saves, episodes)
		case "resume":
			resumes = append(resumes, episodes)
		}
	}

	m := MustPrepare(sc)
	agent1, results1, err := TrainMRSch(m, "S4", false)
	if err != nil {
		t.Fatal(err)
	}
	total := len(results1)
	if total == 0 {
		t.Fatal("no episodes trained")
	}
	if len(saves) == 0 || saves[len(saves)-1] != total {
		t.Fatalf("checkpoint saves %v never reached the final boundary %d", saves, total)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("checkpoint dir holds %v, want exactly one .ckpt", files)
	}

	sc.Resume = true
	m2 := MustPrepare(sc)
	agent2, results2, err := TrainMRSch(m2, "S4", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results2) != 0 {
		t.Fatalf("resumed finished run trained %d episodes, want 0", len(results2))
	}
	if len(resumes) != 1 || resumes[0] != total {
		t.Fatalf("resume events %v, want [%d]", resumes, total)
	}
	var w1, w2 bytes.Buffer
	if err := agent1.Save(&w1); err != nil {
		t.Fatal(err)
	}
	if err := agent2.Save(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("resumed weights differ from the run that wrote the checkpoint")
	}
}

// A checkpoint written under one (workers, pipelined) setting refuses to
// resume under another — silently continuing would break the bitwise
// contract.
func TestTrainResumeRejectsSettingsDrift(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.RolloutWorkers = 2
	sc.CheckpointDir = dir
	if _, _, err := TrainMRSch(MustPrepare(sc), "S4", false); err != nil {
		t.Fatal(err)
	}

	drift := sc
	drift.RolloutWorkers = 1
	drift.Resume = true
	if _, _, err := TrainMRSch(MustPrepare(drift), "S4", false); err == nil || !strings.Contains(err.Error(), "rollout workers") {
		t.Fatalf("worker drift: want a rollout-workers error, got %v", err)
	}

	drift = sc
	drift.Pipelined = true
	drift.Resume = true
	if _, _, err := TrainMRSch(MustPrepare(drift), "S4", false); err == nil || !strings.Contains(err.Error(), "pipelined") {
		t.Fatalf("mode drift: want a pipelined error, got %v", err)
	}

	// A curriculum edit that keeps the episode count (SetsPerKind) but
	// changes every job set maps to a different per-spec checkpoint file:
	// the edited run must start fresh (full episode stream, no resume)
	// instead of resuming old-curriculum state — Total, Workers, Seed,
	// and the network dims all still match here, so only the spec hash
	// separates the two runs.
	drift = sc
	drift.SetSize = sc.SetSize + 5
	drift.Resume = true
	resumed := false
	drift.OnCheckpoint = func(action string, _ int) { resumed = resumed || action == "resume" }
	_, results, err := TrainMRSch(MustPrepare(drift), "S4", false)
	if err != nil {
		t.Fatalf("curriculum drift: edited spec must start fresh, got %v", err)
	}
	if resumed || len(results) == 0 {
		t.Fatalf("curriculum drift: run resumed foreign state (resumed=%v, %d episodes)", resumed, len(results))
	}
}

// A campaign whose cells train several models of one family — here a seed
// axis — must give each its own checkpoint file: launching with
// -checkpoint -resume from the very first run may not trip over a
// sibling's state.
func TestCampaignSeedAxisWithCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	base, err := scenario.ByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "seeded-ckpt",
		Scale:     sc.Spec(),
		Scenarios: []scenario.ScenarioSpec{base},
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindMRSch, Train: true}},
		Seeds:     []int64{21, 22},
	}
	opt := CampaignOptions{Workers: 2, ModelDir: dir, CheckpointDir: dir, Resume: true}
	first, err := RunCampaign(spec, opt)
	if err != nil {
		t.Fatalf("first seeded run with -checkpoint -resume: %v", err)
	}
	if len(first) != 2 {
		t.Fatalf("%d cells, want 2", len(first))
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 2 {
		t.Fatalf("checkpoint files %v, want one per seed replicate", files)
	}
	second, err := RunCampaign(spec, opt)
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Report, second[i].Report) {
			t.Fatalf("cell %d drifted across the checkpointed re-run", i)
		}
	}
}

// Power families train with the MLP state module regardless of the
// method's cnn flag (TrainMRSchPower); the store's load path must mirror
// that, or a finished power+cnn campaign cannot be re-run.
func TestCampaignModelStorePowerCNNReload(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	power, err := scenario.ByName("S6")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "power-cnn-store",
		Scale:     sc.Spec(),
		Scenarios: []scenario.ScenarioSpec{power},
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindMRSch, Train: true, CNN: true}},
	}
	opt := CampaignOptions{Workers: 2, ModelDir: dir}
	first, err := RunCampaign(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	opt.OnModel = func(_, action, _ string) {
		if action == "cached" {
			cached++
		}
	}
	second, err := RunCampaign(spec, opt)
	if err != nil {
		t.Fatalf("re-run of a finished power+cnn campaign: %v", err)
	}
	if cached != 1 {
		t.Fatalf("re-run cached %d models, want 1", cached)
	}
	if !reflect.DeepEqual(first[0].Report, second[0].Report) {
		t.Fatal("cached power model produced a different report")
	}
}

// CheckpointEvery throttles writes to every Nth round boundary but always
// writes the final one.
func TestCheckpointEveryThrottles(t *testing.T) {
	sc := tinyScale()
	sc.RolloutWorkers = 2
	sc.CheckpointDir = t.TempDir()
	sc.CheckpointEvery = 2
	var saves []int
	sc.OnCheckpoint = func(action string, episodes int) {
		if action == "save" {
			saves = append(saves, episodes)
		}
	}
	_, results, err := TrainMRSch(MustPrepare(sc), "S4", false)
	if err != nil {
		t.Fatal(err)
	}
	total := len(results)
	if len(saves) == 0 || saves[len(saves)-1] != total {
		t.Fatalf("saves %v must end at the final boundary %d", saves, total)
	}
	// Round width 2 over `total` episodes: boundaries at 2, 4, ..., total;
	// every=2 keeps the even-numbered boundaries plus the final one.
	var want []int
	for b, i := 2, 1; b <= total; b, i = b+2, i+1 {
		if i%2 == 0 || b == total {
			want = append(want, b)
		}
	}
	if !reflect.DeepEqual(saves, want) {
		t.Fatalf("throttled saves %v, want %v", saves, want)
	}
}

// The campaign model store: the first run trains and stores one model per
// (family, method kind); a re-run of the identical campaign loads every
// model from the store and retrains nothing, producing identical reports.
func TestCampaignModelStoreSkipsRetraining(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	base, err := scenario.ByName("S4")
	if err != nil {
		t.Fatal(err)
	}
	variant, err := scenario.ByName("S4@wtn=0.5")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "store-smoke",
		Scale:     sc.Spec(),
		Scenarios: []scenario.ScenarioSpec{base, variant},
		Methods: []scenario.MethodSpec{
			{Kind: scenario.KindMRSch, Train: true},
			{Kind: scenario.KindScalarRL, Train: true},
		},
	}
	run := func() ([]CellResult, map[string]int, []string) {
		actions := map[string]int{}
		var stored []string
		results, err := RunCampaign(spec, CampaignOptions{
			Workers:  2,
			ModelDir: dir,
			OnModel: func(family, action, path string) {
				actions[action]++
				if path != "" {
					stored = append(stored, path)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return results, actions, stored
	}

	first, actions1, stored1 := run()
	if actions1["trained"] != 2 || actions1["cached"] != 0 {
		t.Fatalf("first run actions %v, want 2 trained / 0 cached", actions1)
	}
	for _, p := range stored1 {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("stored model %s missing: %v", p, err)
		}
	}

	second, actions2, _ := run()
	if actions2["trained"] != 0 || actions2["cached"] != 2 {
		t.Fatalf("re-run actions %v, want 0 trained / 2 cached (the store must skip retraining)", actions2)
	}
	if len(first) != len(second) {
		t.Fatalf("cell counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Report, second[i].Report) {
			t.Fatalf("cell %d: cached-model report differs from trained-model report", i)
		}
	}

	// Different training settings must hash to different store entries:
	// a pipelined re-run may not load barrier-trained weights.
	actions3 := map[string]int{}
	if _, err := RunCampaign(spec, CampaignOptions{
		Workers: 2, Pipelined: true, ModelDir: dir,
		OnModel: func(_, action, _ string) { actions3[action]++ },
	}); err != nil {
		t.Fatal(err)
	}
	if actions3["cached"] != 0 || actions3["trained"] != 2 {
		t.Fatalf("pipelined re-run actions %v, want fresh training (store keys must cover the training mode)", actions3)
	}
}
