package experiments

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// mustCampaign builds a Campaign for a vetted test scale.
func mustCampaign(t *testing.T, sc Scale) *Campaign {
	t.Helper()
	c, err := NewCampaign(sc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// tinyScale keeps unit tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{
		ScaleSpec: scenario.ScaleSpec{
			Name:             "tiny",
			Div:              64,
			TraceDuration:    0.4 * 86400,
			MeanInterarrival: 200,
			Window:           6,
			SetsPerKind:      2,
			SetSize:          25,
			StepsPerEpisode:  6,
			EpsDecay:         0.7,
			Seed:             5,
		},
		RolloutWorkers: 1,
	}
}

func TestFigure1ReproducesTheMotivation(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedWeightMakespanH != 3 {
		t.Fatalf("fixed-weight makespan = %v h, want 3 (paper)", r.FixedWeightMakespanH)
	}
	if r.OptimalMakespanH != 2 {
		t.Fatalf("optimal makespan = %v h, want 2 (paper)", r.OptimalMakespanH)
	}
	var buf bytes.Buffer
	FprintFigure1(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestPrepareMaterials(t *testing.T) {
	m := MustPrepare(tinyScale())
	if len(m.Base) == 0 || len(m.Test) == 0 || len(m.Train) == 0 {
		t.Fatalf("materials empty: base=%d train=%d test=%d", len(m.Base), len(m.Train), len(m.Test))
	}
	for _, wl := range WorkloadNames() {
		jobs := m.Workload(wl)
		if len(jobs) != len(m.Test) {
			t.Fatalf("%s: %d jobs, want %d", wl, len(jobs), len(m.Test))
		}
		if jobs[0].Submit != 0 {
			t.Fatalf("%s not rebased: first submit %v", wl, jobs[0].Submit)
		}
	}
	for _, wl := range PowerWorkloadNames() {
		jobs := m.PowerWorkload(wl)
		if len(jobs) == 0 || len(jobs[0].Demand) != 3 {
			t.Fatalf("%s power workload malformed", wl)
		}
	}
}

func TestCurriculumSetsCoverAllKinds(t *testing.T) {
	m := MustPrepare(tinyScale())
	byKind := m.CurriculumSets("S4")
	for _, kind := range []core.JobSetKind{core.Sampled, core.Real, core.Synthetic} {
		sets := byKind[kind]
		if len(sets) != tinyScale().SetsPerKind {
			t.Fatalf("%v: %d sets", kind, len(sets))
		}
		for _, set := range sets {
			if len(set) == 0 {
				t.Fatalf("%v: empty set", kind)
			}
		}
	}
}

func TestOrderingsAreSixPermutations(t *testing.T) {
	os := Orderings()
	if len(os) != 6 {
		t.Fatalf("%d orderings", len(os))
	}
	seen := map[string]bool{}
	for _, o := range os {
		if seen[o.Label()] {
			t.Fatalf("duplicate ordering %s", o.Label())
		}
		seen[o.Label()] = true
		kinds := map[core.JobSetKind]bool{o[0]: true, o[1]: true, o[2]: true}
		if len(kinds) != 3 {
			t.Fatalf("ordering %s is not a permutation", o.Label())
		}
	}
	if !seen["Sampled+Real+Synthetic"] {
		t.Fatal("paper's best ordering missing")
	}
}

func TestTrainMRSchProducesWorkingAgent(t *testing.T) {
	m := MustPrepare(tinyScale())
	agent, results, err := TrainMRSch(m, "S1", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3*tinyScale().SetsPerKind {
		t.Fatalf("%d episodes, want %d", len(results), 3*tinyScale().SetsPerKind)
	}
	rep, err := Evaluate(m.Scale.System(), agent.Policy(), m.Workload("S1"), MethodMRSch, "S1", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(m.Test) {
		t.Fatalf("evaluated %d jobs, want %d", rep.Jobs, len(m.Test))
	}
	if rep.Utilization[0] <= 0 || rep.Utilization[0] > 1 {
		t.Fatalf("node utilization %v out of range", rep.Utilization[0])
	}
}

func TestFigures56AllMethodsComplete(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	rows, err := Figures56(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d workloads", len(rows))
	}
	for _, row := range rows {
		if len(row.Reports) != 4 {
			t.Fatalf("%s: %d methods", row.Workload, len(row.Reports))
		}
		for i, r := range row.Reports {
			if r.Method != Methods()[i] {
				t.Fatalf("method order broken: %s at %d", r.Method, i)
			}
			if r.Jobs == 0 {
				t.Fatalf("%s/%s completed no jobs", row.Workload, r.Method)
			}
			for _, u := range r.Utilization {
				if u < 0 || u > 1 {
					t.Fatalf("%s/%s utilization %v", row.Workload, r.Method, u)
				}
			}
			if r.AvgSlowdown < 1 {
				t.Fatalf("%s/%s slowdown %v < 1", row.Workload, r.Method, r.AvgSlowdown)
			}
		}
	}
	// Renderers must not crash and must mention every workload.
	var buf bytes.Buffer
	FprintFigure5(&buf, rows)
	FprintFigure6(&buf, rows)
	FprintFigure7(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty figure rendering")
	}

	kv := Figure7(rows)
	for wl, mat := range kv {
		for _, mrow := range mat {
			for _, v := range mrow {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%s kiviat value %v", wl, v)
				}
			}
		}
	}
}

func TestFigure4SeriesShape(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	series, err := Figure4(c, "S4")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Loss) == 0 {
			t.Fatalf("%s: empty loss curve", s.Label)
		}
		for _, l := range s.Loss {
			if l < 0 || math.IsNaN(l) {
				t.Fatalf("%s: bad loss %v", s.Label, l)
			}
		}
	}
	var buf bytes.Buffer
	FprintFigure4(&buf, series)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestFigure8And9GoalDynamics(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	samples, err := Figure8(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range samples {
		if s.RBB < 0 || s.RBB > 1 {
			t.Fatalf("r_BB %v out of [0,1]", s.RBB)
		}
	}
	rows, err := Figure9(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d box rows", len(rows))
	}
	for _, r := range rows {
		if r.Stats.N == 0 {
			t.Fatalf("%s: empty stats", r.Workload)
		}
		if r.Stats.Min < 0 || r.Stats.Max > 1 {
			t.Fatalf("%s: r_BB range [%v,%v]", r.Workload, r.Stats.Min, r.Stats.Max)
		}
	}
	// The paper's key observation: r_BB varies (unlike scalar RL's fixed
	// 0.5) and S5 has the heaviest BB preference of the ladder.
	if rows[4].Stats.Max == rows[4].Stats.Min {
		t.Fatal("r_BB never changed on S5; dynamic prioritizing is broken")
	}
	if rows[4].Stats.Mean <= rows[0].Stats.Mean {
		t.Fatalf("S5 mean r_BB (%v) should exceed S1's (%v)", rows[4].Stats.Mean, rows[0].Stats.Mean)
	}
	var buf bytes.Buffer
	FprintFigure8(&buf, samples)
	FprintFigure9(&buf, rows)
}

func TestFigure10ThreeResources(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	rows, err := Figure10(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d workloads", len(rows))
	}
	for _, row := range rows {
		for _, r := range row.Reports {
			if len(r.Utilization) != 3 {
				t.Fatalf("%s/%s: %d resources", row.Workload, r.Method, len(r.Utilization))
			}
			if r.AvgSysPowerKW <= 0 {
				t.Fatalf("%s/%s: no power accounted", row.Workload, r.Method)
			}
		}
	}
	kv := Figure10Kiviat(rows)
	if len(kv["S6"][0]) != 5 {
		t.Fatalf("power kiviat has %d axes, want 5", len(kv["S6"][0]))
	}
	var buf bytes.Buffer
	FprintFigure10(&buf, rows)
}

func TestOverallScoreOrdersByArea(t *testing.T) {
	reports := []metrics.Report{
		{Method: "good", Utilization: []float64{0.9, 0.9}, AvgWaitSec: 10, AvgSlowdown: 1.5},
		{Method: "bad", Utilization: []float64{0.3, 0.3}, AvgWaitSec: 100, AvgSlowdown: 8},
	}
	scores := OverallScore(reports, false)
	if scores[0] <= scores[1] {
		t.Fatalf("scores = %v", scores)
	}
}

func TestMeanLoss(t *testing.T) {
	s := Fig4Series{Loss: []float64{5, 4, 3, 2, 1}}
	if got := MeanLoss(s, 2); got != 1.5 {
		t.Fatalf("MeanLoss = %v", got)
	}
	if got := MeanLoss(s, 99); got != 3 {
		t.Fatalf("MeanLoss all = %v", got)
	}
	if !math.IsNaN(MeanLoss(Fig4Series{}, 3)) {
		t.Fatal("empty series should be NaN")
	}
}

func TestOptimalBatchesBruteForce(t *testing.T) {
	jobs := figure1Jobs()
	if got := optimalBatches(jobs, []int{100, 100}); got != 2 {
		t.Fatalf("optimal batches = %d, want 2", got)
	}
	// All four together need 195/120: infeasible in one batch; two jobs
	// whose sum exceeds capacity force >= 2 batches.
	if got := optimalBatches(jobs[:1], []int{100, 100}); got != 1 {
		t.Fatalf("single job batches = %d", got)
	}
}
