package experiments

import (
	"bytes"
	"testing"
)

func TestFigure3BothVariantsEvaluate(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	rows, err := Figure3(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MLP.Jobs == 0 || r.CNN.Jobs == 0 {
			t.Fatalf("%s: incomplete runs", r.Workload)
		}
		if r.MLP.Jobs != r.CNN.Jobs {
			t.Fatalf("%s: variants saw different workloads", r.Workload)
		}
	}
	var buf bytes.Buffer
	FprintFigure3(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestCampaignCachesAgents(t *testing.T) {
	c := mustCampaign(t, tinyScale())
	a1, err := c.MRSchAgent("S1", false, false)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.MRSchAgent("S1", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("agent not cached: retraining on every figure")
	}
	// Different variants are distinct cache entries.
	a3, err := c.MRSchAgent("S1", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("CNN variant shared the MLP cache slot")
	}
}
