package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// WorkloadNames are the Table III scenarios in plotting order, read from
// the scenario registry.
func WorkloadNames() []string { return builtinNames(false) }

// PowerWorkloadNames are the §V-E scenarios, read from the registry.
func PowerWorkloadNames() []string { return builtinNames(true) }

func builtinNames(power bool) []string {
	var names []string
	for _, sp := range scenario.Builtins() {
		if sp.Power == power {
			names = append(names, sp.Name)
		}
	}
	return names
}

// Campaign caches trained agents so the figures can share them (the paper
// trains one agent per workload and reuses it across Figures 5-9).
type Campaign struct {
	M      *Materials
	agents map[string]*core.MRSch
}

// NewCampaign validates the scale and prepares materials for it.
func NewCampaign(sc Scale) (*Campaign, error) {
	m, err := Prepare(sc)
	if err != nil {
		return nil, err
	}
	return &Campaign{M: m, agents: make(map[string]*core.MRSch)}, nil
}

// MRSchAgent returns the (cached) trained agent for a workload; set cnn for
// the Figure 3 convolutional variant, power for S6-S10.
func (c *Campaign) MRSchAgent(wl string, cnn, power bool) (*core.MRSch, error) {
	key := fmt.Sprintf("%s/cnn=%v/power=%v", wl, cnn, power)
	if a, ok := c.agents[key]; ok {
		return a, nil
	}
	var agent *core.MRSch
	var err error
	if power {
		agent, err = TrainMRSchPower(c.M, wl)
	} else {
		agent, _, err = TrainMRSch(c.M, wl, cnn)
	}
	if err != nil {
		return nil, err
	}
	c.agents[key] = agent
	return agent, nil
}

// ---------------------------------------------------------------------------
// Figure 1 — the motivating example (§I).

// Figure1Result compares a fixed-priority greedy schedule against the
// optimal complementary packing for the introductory four-job example.
type Figure1Result struct {
	FixedWeightMakespanH float64
	OptimalMakespanH     float64
}

// figure1Jobs reconstructs the §I example. The published figure's exact
// percentages are in an image, so we use demands that exhibit the same
// phenomenon: complementary pairs {J1,J3} and {J2,J4} finish in 2 h, while
// equal-weight greedy selection schedules {J3,J2} first and needs 3 h.
func figure1Jobs() []*job.Job {
	mk := func(id, a, b int) *job.Job {
		return &job.Job{ID: id, Submit: 0, Runtime: 3600, Walltime: 3600, Demand: []int{a, b}}
	}
	return []*job.Job{mk(1, 55, 10), mk(2, 50, 40), mk(3, 40, 60), mk(4, 50, 10)}
}

func figure1System() cluster.Config {
	return cluster.Config{Name: "fig1", Resources: []string{"A", "B"}, Capacities: []int{100, 100}}
}

// fixedWeightGreedy picks the fitting window job with the largest
// equal-weighted demand (the "fixed priority per resource" strawman of §I);
// if nothing fits it yields the heaviest job for reservation.
type fixedWeightGreedy struct{}

func (fixedWeightGreedy) Pick(ctx *sched.PickContext) int {
	best, bestScore := -1, -1.0
	fallback, fallbackScore := 0, -1.0
	for i, j := range ctx.Window {
		score := 0.0
		for r, d := range j.Demand {
			score += 0.5 * float64(d) / float64(ctx.Cluster.Capacity(r))
		}
		if score > fallbackScore {
			fallback, fallbackScore = i, score
		}
		if ctx.Cluster.CanFit(j.Demand) && score > bestScore {
			best, bestScore = i, score
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}

// Figure1 simulates the fixed-weight schedule and brute-forces the optimal
// batch packing (all jobs run one hour, so makespan = number of batches).
func Figure1() (Figure1Result, error) {
	sys := figure1System()
	jobs := figure1Jobs()
	fixed, err := Evaluate(sys, sched.NewWindowPolicy(fixedWeightGreedy{}, 4), job.CloneAll(jobs), "FixedWeight", "Fig1", -1)
	if err != nil {
		return Figure1Result{}, err
	}
	batches := optimalBatches(jobs, sys.Capacities)
	return Figure1Result{
		FixedWeightMakespanH: fixed.MakespanSec / 3600,
		OptimalMakespanH:     float64(batches),
	}, nil
}

// optimalBatches finds the minimal number of capacity-feasible batches
// covering all (equal-runtime) jobs, by exhaustive search over assignments.
// Exponential, but the example has four jobs.
func optimalBatches(jobs []*job.Job, caps []int) int {
	n := len(jobs)
	best := n
	assign := make([]int, n)
	var rec func(i, used int)
	feasible := func(batch int) bool {
		load := make([]int, len(caps))
		for k := 0; k < n; k++ {
			if assign[k] == batch {
				for r, d := range jobs[k].Demand {
					load[r] += d
					if load[r] > caps[r] {
						return false
					}
				}
			}
		}
		return true
	}
	rec = func(i, used int) {
		if used >= best {
			return
		}
		if i == n {
			best = used
			return
		}
		for b := 1; b <= used+1; b++ {
			assign[i] = b
			if feasible(b) {
				next := used
				if b > used {
					next = b
				}
				rec(i+1, next)
			}
		}
		assign[i] = 0
	}
	rec(0, 0)
	return best
}

// ---------------------------------------------------------------------------
// Figure 3 — MLP vs CNN state modules (§V-A).

// Fig3Row holds both variants' reports for one workload.
type Fig3Row struct {
	Workload string
	MLP, CNN metrics.Report
}

// Figure3 trains an MLP-state and a CNN-state MRSch per workload and
// evaluates both on the test workload.
func Figure3(c *Campaign) ([]Fig3Row, error) {
	sys := c.M.Scale.System()
	var rows []Fig3Row
	for _, wl := range WorkloadNames() {
		jobs := c.M.Workload(wl)
		mlpAgent, err := c.MRSchAgent(wl, false, false)
		if err != nil {
			return nil, err
		}
		mlp, err := Evaluate(sys, mlpAgent.Policy(), jobs, "MLP", wl, -1)
		if err != nil {
			return nil, err
		}
		cnnAgent, err := c.MRSchAgent(wl, true, false)
		if err != nil {
			return nil, err
		}
		cnn, err := Evaluate(sys, cnnAgent.Policy(), jobs, "CNN", wl, -1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{Workload: wl, MLP: mlp, CNN: cnn})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — curriculum orderings (§V-B).

// Fig4Series is one ordering's training-loss curve.
type Fig4Series struct {
	Label string
	Loss  []float64
}

// Figure4 trains six fresh agents, one per curriculum ordering, on the same
// scenario and budget, and returns their loss curves.
func Figure4(c *Campaign, scenario string) ([]Fig4Series, error) {
	var out []Fig4Series
	for _, order := range Orderings() {
		results, err := TrainMRSchOrdered(c.M, scenario, order, c.M.Scale.Seed+23)
		if err != nil {
			return nil, err
		}
		losses := make([]float64, 0, len(results))
		for _, r := range results {
			if r.Loss >= 0 {
				losses = append(losses, r.Loss)
			}
		}
		out = append(out, Fig4Series{Label: order.Label(), Loss: losses})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 5, 6, 7 — the four-method comparison (§V-C).

// MethodReports holds the four methods' reports for one workload, in
// Methods() order.
type MethodReports struct {
	Workload string
	Reports  []metrics.Report
}

// Figures56 runs MRSch, Optimization, Scalar RL and Heuristic on S1-S5.
// Figure 5 reads the utilizations, Figure 6 the wait/slowdown.
func Figures56(c *Campaign) ([]MethodReports, error) {
	sys := c.M.Scale.System()
	var out []MethodReports
	for _, wl := range WorkloadNames() {
		jobs := c.M.Workload(wl)
		var reports []metrics.Report

		agent, err := c.MRSchAgent(wl, false, false)
		if err != nil {
			return nil, err
		}
		r, err := Evaluate(sys, agent.Policy(), jobs, MethodMRSch, wl, -1)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		r, err = Evaluate(sys, sched.NewWindowPolicy(NewGA(c.M.Scale.Seed+29), c.M.Scale.Window), jobs, MethodOptimize, wl, -1)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		rlAgent, err := TrainScalarRL(c.M, wl, sys, false)
		if err != nil {
			return nil, err
		}
		r, err = Evaluate(sys, rlAgent.Policy(), jobs, MethodScalarRL, wl, -1)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		r, err = Evaluate(sys, FCFSPolicy(c.M.Scale.Window), jobs, MethodHeuristic, wl, -1)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		out = append(out, MethodReports{Workload: wl, Reports: reports})
	}
	return out, nil
}

// Figure7 normalizes Figures56 rows into the radar-chart values the paper
// plots (one [method][axis] matrix per workload).
func Figure7(rows []MethodReports) map[string][][]float64 {
	out := make(map[string][][]float64, len(rows))
	for _, row := range rows {
		out[row.Workload] = metrics.Kiviat(row.Reports, false)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figures 8 and 9 — dynamic resource prioritizing (§V-D).

// GoalSample is one Eq. (1) evaluation: decision time and r_BB.
type GoalSample struct {
	T   float64
	RBB float64
}

// goalTrace runs the trained agent over a workload collecting r_BB samples.
func (c *Campaign) goalTrace(wl string) ([]GoalSample, error) {
	agent, err := c.MRSchAgent(wl, false, false)
	if err != nil {
		return nil, err
	}
	var samples []GoalSample
	agent.GoalHook = func(now float64, g []float64) {
		samples = append(samples, GoalSample{T: now, RBB: g[1]})
	}
	defer func() { agent.GoalHook = nil }()
	_, err = Evaluate(c.M.Scale.System(), agent.Policy(), c.M.Workload(wl), MethodMRSch, wl, -1)
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// Figure8 returns the r_BB fluctuation during a 12-hour window of the S5
// run (the paper samples a random 12 hours; we take the window starting at
// one quarter of the trace for reproducibility).
func Figure8(c *Campaign) ([]GoalSample, error) {
	samples, err := c.goalTrace("S5")
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("experiments: no goal samples collected")
	}
	end := samples[len(samples)-1].T
	start := end * 0.25
	windowEnd := start + 12*3600
	var out []GoalSample
	for _, s := range samples {
		if s.T >= start && s.T <= windowEnd {
			out = append(out, s)
		}
	}
	if len(out) == 0 { // short traces: return everything
		out = samples
	}
	return out, nil
}

// Fig9Row is one workload's r_BB box statistics.
type Fig9Row struct {
	Workload string
	Stats    metrics.BoxStats
}

// Figure9 computes r_BB box plots for S1-S5.
func Figure9(c *Campaign) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, wl := range WorkloadNames() {
		samples, err := c.goalTrace(wl)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = s.RBB
		}
		rows = append(rows, Fig9Row{Workload: wl, Stats: metrics.Box(vals)})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — three schedulable resources (§V-E).

// Figure10 runs the four methods on the power-extended S6-S10 workloads.
func Figure10(c *Campaign) ([]MethodReports, error) {
	psys := c.M.Scale.PowerSystem()
	powerIdx := 2
	var out []MethodReports
	for _, wl := range PowerWorkloadNames() {
		jobs := c.M.PowerWorkload(wl)
		var reports []metrics.Report

		agent, err := c.MRSchAgent(wl, false, true)
		if err != nil {
			return nil, err
		}
		r, err := Evaluate(psys, agent.Policy(), jobs, MethodMRSch, wl, powerIdx)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		r, err = Evaluate(psys, sched.NewWindowPolicy(NewGA(c.M.Scale.Seed+31), c.M.Scale.Window), jobs, MethodOptimize, wl, powerIdx)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		rlAgent, err := TrainScalarRL(c.M, wl, psys, true)
		if err != nil {
			return nil, err
		}
		r, err = Evaluate(psys, rlAgent.Policy(), jobs, MethodScalarRL, wl, powerIdx)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		r, err = Evaluate(psys, FCFSPolicy(c.M.Scale.Window), jobs, MethodHeuristic, wl, powerIdx)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)

		out = append(out, MethodReports{Workload: wl, Reports: reports})
	}
	return out, nil
}

// Figure10Kiviat normalizes Figure10 rows with the power axis included.
func Figure10Kiviat(rows []MethodReports) map[string][][]float64 {
	out := make(map[string][][]float64, len(rows))
	for _, row := range rows {
		out[row.Workload] = metrics.Kiviat(row.Reports, true)
	}
	return out
}

// ---------------------------------------------------------------------------
// §V-F — runtime overhead.

// OverheadContext builds a full-Theta-scale agent (the §IV-C network:
// 11410-input state module with 4000/1000 hidden layers) and a representative
// decision context, for timing a single scheduling decision.
func OverheadContext(resources int) (*core.MRSch, *sched.PickContext) {
	var sys cluster.Config
	if resources >= 3 {
		sys = cluster.Config{
			Name:       "theta+power",
			Resources:  []string{"nodes", "bb_tb", "power_kw"},
			Capacities: []int{4392, 1293, 500},
		}
	} else {
		sys = cluster.Config{
			Name:       "theta",
			Resources:  []string{"nodes", "bb_tb"},
			Capacities: []int{4392, 1293},
		}
	}
	agent := core.New(sys, core.Options{Window: 10, Seed: 1, PaperScale: true})
	cl := cluster.New(sys)
	// Half-loaded machine with a full window of waiting jobs.
	demand := []int{512, 100}
	if resources >= 3 {
		demand = append(demand, 40)
	}
	for id := 1; id <= 4; id++ {
		_ = cl.Allocate(id, demand, 0, float64(3600*id))
	}
	var window []*job.Job
	for i := 0; i < 10; i++ {
		d := []int{128 << (i % 4), 10 * (i + 1)}
		if resources >= 3 {
			d = append(d, 10+i)
		}
		window = append(window, &job.Job{
			ID: 100 + i, Submit: 0, Runtime: 3600, Walltime: 5400, Demand: d,
		})
	}
	ctx := &sched.PickContext{Now: 1800, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
	return agent, ctx
}

// ---------------------------------------------------------------------------
// Shape checks shared by tests and EXPERIMENTS.md tooling.

// OverallScore is the Kiviat polygon area, the paper's "larger area =
// better overall performance" aggregate.
func OverallScore(reports []metrics.Report, withPower bool) []float64 {
	rows := metrics.Kiviat(reports, withPower)
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = metrics.KiviatArea(row)
	}
	return out
}

// MeanLoss returns the average of a Figure 4 loss series' last k points
// (convergence quality).
func MeanLoss(series Fig4Series, k int) float64 {
	n := len(series.Loss)
	if n == 0 {
		return math.NaN()
	}
	if k > n {
		k = n
	}
	sum := 0.0
	for _, v := range series.Loss[n-k:] {
		sum += v
	}
	return sum / float64(k)
}
