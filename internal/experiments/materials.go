package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Materials bundles everything a campaign needs: the scaled machine, the
// base trace with its Darshan-derived request pool, the Table III workloads
// (test split), and the curriculum job sets built from the training split.
type Materials struct {
	Scale Scale

	// Base is the synthetic Theta-like trace; Pool the burst-buffer request
	// pool mined from it (§IV-A).
	Base []*job.Job
	Pool []float64

	// Train/Valid/Test are the chronological split of the base trace
	// (§IV-A: 3.5 months training, two weeks validation, remainder test).
	Train, Valid, Test []*job.Job

	// InterarrivalScale records the theta-variant interarrival factor
	// already folded into Scale.MeanInterarrival (0 or 1 = none). The
	// campaign runner sets it when preparing variant materials, so
	// WorkloadSpec can verify a spec against the materials it is handed.
	InterarrivalScale float64
}

// Prepare generates the campaign's raw materials deterministically. The
// scale is validated first: nonpositive sizing fields fail loudly here
// instead of flowing silently into trace generation. The base trace is the
// synthetic generator's output — Markov-modulated when the scale sets
// Burst — or, when the scale names a Trace, an ingested SWF log rescaled
// onto the scaled system (workload.LoadTraceBase).
func Prepare(sc Scale) (*Materials, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sys := sc.System()
	var base []*job.Job
	if sc.Trace != "" {
		var err error
		base, err = workload.LoadTraceBase(sc.Trace, sys, sc.TraceDuration, sc.MeanInterarrival)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	} else {
		gcfg := workload.GeneratorConfig{
			System:           sys,
			Duration:         sc.TraceDuration,
			MeanInterarrival: sc.MeanInterarrival,
			Seed:             sc.Seed,
		}
		if sc.Burst != nil {
			b := sc.Burst.Config()
			gcfg.Burst = &b
		}
		base = workload.GenerateBase(gcfg)
	}
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], sc.Seed+1)
	train, valid, test := workload.PaperSplit(base)
	if len(test) == 0 { // degenerate tiny traces: evaluate on everything
		train, valid, test = base, base, base
	}
	if len(valid) == 0 {
		valid = train
	}
	return &Materials{Scale: sc, Base: base, Pool: pool, Train: train, Valid: valid, Test: test}, nil
}

// MustPrepare is Prepare for callers whose scale is a vetted builtin;
// it panics on validation failure.
func MustPrepare(sc Scale) *Materials {
	m, err := Prepare(sc)
	if err != nil {
		panic(err)
	}
	return m
}

// checkSpec verifies the spec's base-trace overrides match the materials:
// a Div or interarrival variant needs its own Prepare'd materials (the
// campaign runner resolves them); silently evaluating it against mismatched
// materials would report results for a scenario that was never built.
func (m *Materials) checkSpec(sp scenario.ScenarioSpec) error {
	if sp.Div > 0 && sp.Div != m.Scale.Div {
		return fmt.Errorf("experiments: scenario %s wants div %d but materials were prepared at div %d", sp.Name, sp.Div, m.Scale.Div)
	}
	want, have := sp.InterarrivalScale, m.InterarrivalScale
	if want == 0 {
		want = 1
	}
	if have == 0 {
		have = 1
	}
	if want != have {
		return fmt.Errorf("experiments: scenario %s scales interarrival x%g but materials carry x%g; prepare variant materials first (RunCampaign does)", sp.Name, want, have)
	}
	if sp.Trace != "" && sp.Trace != m.Scale.Trace {
		return fmt.Errorf("experiments: scenario %s replays trace %q but materials were prepared from %q", sp.Name, sp.Trace, orSynthetic(m.Scale.Trace))
	}
	if sp.Burst != nil && (m.Scale.Burst == nil || *sp.Burst != *m.Scale.Burst) {
		return fmt.Errorf("experiments: scenario %s wants bursty arrivals (%s) but materials carry a different arrival process; prepare variant materials first (RunCampaign does)", sp.Name, sp.Burst.Describe())
	}
	return nil
}

func orSynthetic(trace string) string {
	if trace == "" {
		return "the synthetic generator"
	}
	return trace
}

// WorkloadSpec builds the scenario's evaluation workload over the test
// split: the Table III transform (plus the §V-E power profile for power
// specs), then — when the spec asks — lognormal walltime-estimate noise
// and Zipf-skewed user ownership. Base-trace variant axes (div,
// interarrival, burst, trace) must already be reflected in the materials'
// scale; checkSpec rejects mismatches.
func (m *Materials) WorkloadSpec(sp scenario.ScenarioSpec) ([]*job.Job, error) {
	if err := m.checkSpec(sp); err != nil {
		return nil, err
	}
	var jobs []*job.Job
	if sp.Power {
		sys, budget := m.powerSystemFor(sp)
		jobs = workload.ApplyPowerBudget(m.Test, m.Pool, sp.PowerMix(), sys, budget, m.Scale.Seed+100)
	} else {
		jobs = workload.Apply(m.Test, m.Pool, sp.Mix(), m.Scale.System(), m.Scale.Seed+100)
	}
	if sp.WalltimeNoiseSigma > 0 {
		jobs = workload.NoiseWalltimes(jobs, sp.WalltimeNoiseSigma, m.Scale.Seed+170)
	}
	if sp.ZipfUsers > 0 {
		jobs = workload.AssignZipfUsers(jobs, sp.ZipfUsers, sp.ZipfTheta, m.Scale.Seed+190)
	}
	return rebase(jobs), nil
}

// SystemFor returns the system the scenario evaluates on (power-extended
// for power specs, with the spec's budget override applied).
func (m *Materials) SystemFor(sp scenario.ScenarioSpec) cluster.Config {
	if sp.Power {
		sys, _ := m.powerSystemFor(sp)
		return sys
	}
	return m.Scale.System()
}

// powerSystemFor resolves the power-extended system and effective budget.
func (m *Materials) powerSystemFor(sp scenario.ScenarioSpec) (cluster.Config, int) {
	budget := sp.PowerBudgetKW
	if budget <= 0 {
		budget = workload.ThetaPowerBudgetKW
	}
	return workload.WithPowerBudget(m.Scale.System(), budget), budget
}

// ValidationWorkload builds the named scenario's Table III mix over the
// validation split (§IV-A model selection). Resolution goes through
// scenario.ByName, so trace-family names ("T4") and variant syntax work;
// only the mix applies here — validation always runs unperturbed.
func (m *Materials) ValidationWorkload(name string) []*job.Job {
	sp, err := scenario.ByName(name)
	if err != nil {
		panic(err)
	}
	return rebase(workload.Apply(m.Valid, m.Pool, sp.Mix(), m.Scale.System(), m.Scale.Seed+150))
}

// Workload builds the named builtin scenario over the test split — the
// string-keyed adapter over WorkloadSpec (variant syntax like "S4@wtn=0.5"
// resolves too; see scenario.ByName). Unknown names panic: the legacy
// callers treat names as program constants.
func (m *Materials) Workload(name string) []*job.Job {
	sp, err := scenario.ByName(name)
	if err != nil {
		panic(err)
	}
	jobs, err := m.WorkloadSpec(sp)
	if err != nil {
		panic(err)
	}
	return jobs
}

// PowerWorkload builds an S6-S10 workload over the test split.
func (m *Materials) PowerWorkload(name string) []*job.Job {
	sp, err := scenario.ByName(name)
	if err == nil && !sp.Power {
		err = fmt.Errorf("experiments: %s is not a power scenario", name)
	}
	if err != nil {
		panic(err)
	}
	jobs, err := m.WorkloadSpec(sp)
	if err != nil {
		panic(err)
	}
	return jobs
}

// rebase shifts arrivals so the workload starts at time zero.
func rebase(jobs []*job.Job) []*job.Job {
	if len(jobs) == 0 {
		return jobs
	}
	t0 := jobs[0].Submit
	for _, j := range jobs {
		j.Submit -= t0
	}
	return jobs
}

// CurriculumSets builds the three §III-D set kinds for the named scenario
// from the training split: sampled (Poisson arrivals), real (trace slices),
// and synthetic (fresh generator output), each transformed by the scenario.
func (m *Materials) CurriculumSets(scenarioName string) map[core.JobSetKind][][]*job.Job {
	sp, err := scenario.ByName(scenarioName)
	if err != nil {
		panic(err)
	}
	sc := sp.Mix()
	s := m.Scale
	sys := s.System()
	apply := func(sets [][]*job.Job, seedOff int64) [][]*job.Job {
		out := make([][]*job.Job, len(sets))
		for i, set := range sets {
			out[i] = workload.Apply(set, m.Pool, sc, sys, s.Seed+seedOff+int64(i))
		}
		return out
	}
	// Sampled and real sets inherit the materials' arrival process (bursty
	// or trace-derived) through m.Train; the synthetic sets regenerate it,
	// so a bursty campaign injects the same modulation into its curriculum.
	var burst *workload.Burst
	if s.Burst != nil {
		b := s.Burst.Config()
		burst = &b
	}
	sampled := apply(workload.SampledSets(m.Train, s.SetsPerKind, s.SetSize, s.Seed+200), 300)
	real := apply(workload.RealSets(m.Train, s.SetsPerKind, s.SetSize), 400)
	synth := workload.SyntheticSets(sys, sc, s.SetsPerKind, s.SetSize, m.meanGap(), s.Seed+500, burst)
	return map[core.JobSetKind][][]*job.Job{
		core.Sampled:   sampled,
		core.Real:      real,
		core.Synthetic: synth,
	}
}

func (m *Materials) meanGap() float64 {
	if len(m.Train) < 2 {
		return m.Scale.MeanInterarrival
	}
	span := m.Train[len(m.Train)-1].Submit - m.Train[0].Submit
	if span <= 0 {
		return m.Scale.MeanInterarrival
	}
	return span / float64(len(m.Train)-1)
}

// Ordering is a curriculum ordering of the three set kinds (Figure 4).
type Ordering [3]core.JobSetKind

// Orderings returns all six permutations, labelled as the paper's legend.
func Orderings() []Ordering {
	return []Ordering{
		{core.Real, core.Sampled, core.Synthetic},
		{core.Real, core.Synthetic, core.Sampled},
		{core.Synthetic, core.Real, core.Sampled},
		{core.Synthetic, core.Sampled, core.Real},
		{core.Sampled, core.Synthetic, core.Real},
		{core.Sampled, core.Real, core.Synthetic},
	}
}

// Label renders an ordering like "Sampled+Real+Synthetic".
func (o Ordering) Label() string {
	return o[0].String() + "+" + o[1].String() + "+" + o[2].String()
}

// Sets flattens curriculum sets in this ordering into the episode sequence.
func (o Ordering) Sets(byKind map[core.JobSetKind][][]*job.Job) []core.JobSet {
	var out []core.JobSet
	for _, kind := range o {
		for _, jobs := range byKind[kind] {
			out = append(out, core.JobSet{Kind: kind, Jobs: jobs})
		}
	}
	return out
}
