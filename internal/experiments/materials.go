package experiments

import (
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

// Materials bundles everything a campaign needs: the scaled machine, the
// base trace with its Darshan-derived request pool, the Table III workloads
// (test split), and the curriculum job sets built from the training split.
type Materials struct {
	Scale Scale

	// Base is the synthetic Theta-like trace; Pool the burst-buffer request
	// pool mined from it (§IV-A).
	Base []*job.Job
	Pool []float64

	// Train/Valid/Test are the chronological split of the base trace
	// (§IV-A: 3.5 months training, two weeks validation, remainder test).
	Train, Valid, Test []*job.Job
}

// Prepare generates the campaign's raw materials deterministically.
func Prepare(sc Scale) *Materials {
	sys := sc.System()
	gcfg := workload.GeneratorConfig{
		System:           sys,
		Duration:         sc.TraceDuration,
		MeanInterarrival: sc.MeanInterarrival,
		Seed:             sc.Seed,
	}
	base := workload.GenerateBase(gcfg)
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], sc.Seed+1)
	train, valid, test := workload.PaperSplit(base)
	if len(test) == 0 { // degenerate tiny traces: evaluate on everything
		train, valid, test = base, base, base
	}
	if len(valid) == 0 {
		valid = train
	}
	return &Materials{Scale: sc, Base: base, Pool: pool, Train: train, Valid: valid, Test: test}
}

// ValidationWorkload builds the named Table III scenario over the
// validation split (§IV-A model selection).
func (m *Materials) ValidationWorkload(name string) []*job.Job {
	sc, err := workload.ScenarioByName(name)
	if err != nil {
		panic(err)
	}
	return rebase(workload.Apply(m.Valid, m.Pool, sc, m.Scale.System(), m.Scale.Seed+150))
}

// Workload builds the named Table III scenario over the test split.
func (m *Materials) Workload(name string) []*job.Job {
	sc, err := workload.ScenarioByName(name)
	if err != nil {
		panic(err)
	}
	return rebase(workload.Apply(m.Test, m.Pool, sc, m.Scale.System(), m.Scale.Seed+100))
}

// PowerWorkload builds an S6-S10 workload over the test split.
func (m *Materials) PowerWorkload(name string) []*job.Job {
	for _, psc := range workload.PowerScenarios() {
		if psc.Name == name {
			return rebase(workload.ApplyPower(m.Test, m.Pool, psc, m.Scale.PowerSystem(), m.Scale.Seed+100))
		}
	}
	panic("experiments: unknown power workload " + name)
}

// rebase shifts arrivals so the workload starts at time zero.
func rebase(jobs []*job.Job) []*job.Job {
	if len(jobs) == 0 {
		return jobs
	}
	t0 := jobs[0].Submit
	for _, j := range jobs {
		j.Submit -= t0
	}
	return jobs
}

// CurriculumSets builds the three §III-D set kinds for the named scenario
// from the training split: sampled (Poisson arrivals), real (trace slices),
// and synthetic (fresh generator output), each transformed by the scenario.
func (m *Materials) CurriculumSets(scenario string) map[core.JobSetKind][][]*job.Job {
	sc, err := workload.ScenarioByName(scenario)
	if err != nil {
		panic(err)
	}
	s := m.Scale
	sys := s.System()
	apply := func(sets [][]*job.Job, seedOff int64) [][]*job.Job {
		out := make([][]*job.Job, len(sets))
		for i, set := range sets {
			out[i] = workload.Apply(set, m.Pool, sc, sys, s.Seed+seedOff+int64(i))
		}
		return out
	}
	sampled := apply(workload.SampledSets(m.Train, s.SetsPerKind, s.SetSize, s.Seed+200), 300)
	real := apply(workload.RealSets(m.Train, s.SetsPerKind, s.SetSize), 400)
	synth := workload.SyntheticSets(sys, sc, s.SetsPerKind, s.SetSize, m.meanGap(), s.Seed+500)
	return map[core.JobSetKind][][]*job.Job{
		core.Sampled:   sampled,
		core.Real:      real,
		core.Synthetic: synth,
	}
}

func (m *Materials) meanGap() float64 {
	if len(m.Train) < 2 {
		return m.Scale.MeanInterarrival
	}
	span := m.Train[len(m.Train)-1].Submit - m.Train[0].Submit
	if span <= 0 {
		return m.Scale.MeanInterarrival
	}
	return span / float64(len(m.Train)-1)
}

// Ordering is a curriculum ordering of the three set kinds (Figure 4).
type Ordering [3]core.JobSetKind

// Orderings returns all six permutations, labelled as the paper's legend.
func Orderings() []Ordering {
	return []Ordering{
		{core.Real, core.Sampled, core.Synthetic},
		{core.Real, core.Synthetic, core.Sampled},
		{core.Synthetic, core.Real, core.Sampled},
		{core.Synthetic, core.Sampled, core.Real},
		{core.Sampled, core.Synthetic, core.Real},
		{core.Sampled, core.Real, core.Synthetic},
	}
}

// Label renders an ordering like "Sampled+Real+Synthetic".
func (o Ordering) Label() string {
	return o[0].String() + "+" + o[1].String() + "+" + o[2].String()
}

// Sets flattens curriculum sets in this ordering into the episode sequence.
func (o Ordering) Sets(byKind map[core.JobSetKind][][]*job.Job) []core.JobSet {
	var out []core.JobSet
	for _, kind := range o {
		for _, jobs := range byKind[kind] {
			out = append(out, core.JobSet{Kind: kind, Jobs: jobs})
		}
	}
	return out
}
