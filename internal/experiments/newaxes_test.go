package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// End-to-end coverage for the realistic-workload axes at the campaign layer:
// zipf, burst, and trace scenarios expand into cells, run identically under
// any worker count, and visibly change what the simulator sees.
func TestNewAxisCampaignEndToEnd(t *testing.T) {
	sc := tinyScale()
	var scenarios []scenario.ScenarioSpec
	for _, ref := range []string{"S4", "S4@zipf=0.9", "S4@burst=4x0.3", "T4"} {
		sp, err := scenario.ByName(ref)
		if err != nil {
			t.Fatal(err)
		}
		scenarios = append(scenarios, sp)
	}
	spec := scenario.CampaignSpec{
		Name:      "new-axes-smoke",
		Scale:     sc.Spec(),
		Scenarios: scenarios,
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindHeuristic}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	serial, err := RunCampaign(spec, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(spec, CampaignOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("new-axis campaign results depend on worker count")
	}

	byName := map[string]CellResult{}
	for _, r := range serial {
		if r.Report.Jobs == 0 {
			t.Fatalf("%s completed no jobs", r.Cell.Label())
		}
		byName[r.Cell.Scenario.Name] = r
	}
	base := byName["S4"].Report

	// zipf attributes ownership without touching scheduling: the per-user
	// metrics appear, everything the scheduler decides is unchanged.
	zipf := byName["S4@zipf=0.9"].Report
	if base.Users != 0 || zipf.Users == 0 {
		t.Fatalf("user attribution wrong: base users %d, zipf users %d", base.Users, zipf.Users)
	}
	if zipf.TopUserShare <= 1.0/float64(zipf.Users) {
		t.Fatalf("theta 0.9 produced no skew: top share %g over %d users", zipf.TopUserShare, zipf.Users)
	}
	if zipf.Jobs != base.Jobs || zipf.AvgWaitSec != base.AvgWaitSec || !reflect.DeepEqual(zipf.Utilization, base.Utilization) {
		t.Fatal("zipf attribution changed scheduling outcomes (schedulers must stay user-blind)")
	}

	// burst and trace replace the arrival process / base trace entirely.
	if burst := byName["S4@burst=4x0.3"].Report; burst.Jobs == base.Jobs && burst.AvgWaitSec == base.AvgWaitSec {
		t.Fatal("burst axis is decorative: report identical to base")
	}
	if tr := byName["T4"].Report; tr.Jobs == base.Jobs && tr.AvgWaitSec == base.AvgWaitSec {
		t.Fatal("trace axis is decorative: report identical to base")
	}
	if byName["T4"].Report.Users == 0 {
		t.Fatal("ingested trace lost its user attribution")
	}
}

// The theta-skew builtin campaign must expand and validate like any other
// registered campaign (its cells are exercised at tiny scale elsewhere; here
// we pin the spec-layer contract the driver relies on).
func TestThetaSkewCampaignExpands(t *testing.T) {
	sc := tinyScale()
	spec := scenario.ThetaSkewCampaign(sc.Spec())
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	seeds := len(spec.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	if want := len(spec.Scenarios) * len(spec.Methods) * seeds; len(cells) != want {
		t.Fatalf("theta-skew expanded to %d cells, want %d", len(cells), want)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d: seeds would drift across workers", i, c.Index)
		}
	}
}

// Cross-machine transfer, the tentpole's third axis: a model trained on the
// synthetic S4 curriculum, saved to a weights file, evaluates on the
// ingested-trace T4 scenario through the ordinary campaign model-file path.
func TestTraceTransferFromModelFile(t *testing.T) {
	sc := tinyScale()
	m, err := Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	agent, _, err := TrainMRSch(m, "S4", false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s4.model")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	t4, err := scenario.ByName("T4")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "transfer-smoke",
		Scale:     sc.Spec(),
		Scenarios: []scenario.ScenarioSpec{t4},
		Methods: []scenario.MethodSpec{
			{Kind: scenario.KindMRSch, Model: path},
			{Kind: scenario.KindHeuristic},
		},
	}
	results, err := RunCampaign(spec, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Report.Jobs == 0 {
			t.Fatalf("%s completed no jobs on the transferred trace", r.Cell.Label())
		}
		if r.Report.Utilization[0] <= 0 {
			t.Fatalf("%s reports zero node utilization", r.Cell.Label())
		}
	}
}
