package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// A pipelined scale must plumb end to end: the harness runs in pipelined
// mode (snapshot actors + publish), the agent's replay is sharded per
// rollout worker, and the campaign stays deterministic for the fixed
// (Seed, RolloutWorkers) pair.
func TestTrainMRSchPipelinedDeterministic(t *testing.T) {
	run := func() ([]core.EpisodeResult, []byte) {
		sc := tinyScale()
		sc.RolloutWorkers = 2
		sc.Pipelined = true
		m := MustPrepare(sc)
		agent, results, err := TrainMRSch(m, "S2", false)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := agent.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return results, buf.Bytes()
	}
	r1, w1 := run()
	r2, w2 := run()
	if len(r1) == 0 || len(r1) != len(r2) {
		t.Fatalf("result lengths %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("pipelined campaign not reproducible at episode %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if !bytes.Equal(w1, w2) {
		t.Fatal("pipelined campaign weights differ across runs")
	}
}

// The validated trainer composes with pipelined collection: the §IV-A
// model-selection hook runs on the reduce goroutine while only snapshot
// readers are in flight (rollout package doc, rule 8).
func TestTrainMRSchValidatedPipelined(t *testing.T) {
	sc := tinyScale()
	sc.RolloutWorkers = 2
	sc.Pipelined = true
	m := MustPrepare(sc)
	_, results, best, err := TrainMRSchValidated(m, "S2")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no episodes")
	}
	if best.Score <= 0 {
		t.Fatalf("validation never scored: %+v", best)
	}
}
