package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/rollout"
	"repro/internal/scenario"
)

// Model-store garbage collection. The store is content-addressed — every
// entry's name hashes the campaign settings its weights are a function of —
// so entries orphaned by spec changes (a retuned scale, a renamed family, a
// different training mode) accumulate silently. PruneModelStore removes the
// entries no builtin campaign can address anymore.
//
// The keep-set is deliberately conservative: it enumerates every builtin
// campaign at every builtin scale, with the trained-method axis (mrsch,
// mrsch+cnn, scalar-rl) added to each campaign's method list, under both
// training modes and a ladder of plausible worker counts. Entries keyed by
// anything outside that envelope — a custom spec file, a -seed override, a
// hand-edited scale — are reported as prunable, which is why -dry-run
// exists and should be run first when a store mixes builtin and custom
// campaigns.

// trainedMethodVariants are the method specs a user can add to a builtin
// campaign to train models into the store.
func trainedMethodVariants() []scenario.MethodSpec {
	return []scenario.MethodSpec{
		{Kind: scenario.KindMRSch, Train: true},
		{Kind: scenario.KindMRSch, Train: true, CNN: true},
		{Kind: scenario.KindScalarRL, Train: true},
	}
}

// builtinScaleSpecs enumerates the named sizings builtin campaigns run at.
func builtinScaleSpecs() []scenario.ScaleSpec {
	return []scenario.ScaleSpec{
		scenario.QuickScaleSpec(),
		scenario.StandardScaleSpec(),
		scenario.TinyScaleSpec(),
	}
}

// keepWorkerCounts returns the resolved rollout worker counts the keep-set
// covers: the caller's own setting plus a ladder of common explicit counts
// and the all-cores default (the store key hashes the resolved count).
func keepWorkerCounts(workers int) []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{rollout.ResolveWorkers(workers), 1, 2, 4, 8, 16, rollout.ResolveWorkers(0), runtime.NumCPU()} {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// PruneKeepSet computes the set of store file names (base names) reachable
// from the builtin-campaign envelope for a store rooted at dir.
func PruneKeepSet(dir string, workers int) (map[string]bool, error) {
	keep := make(map[string]bool)
	for _, scale := range builtinScaleSpecs() {
		for _, spec := range scenario.BuiltinCampaigns(scale) {
			spec.Methods = append(append([]scenario.MethodSpec{}, spec.Methods...), trainedMethodVariants()...)
			for _, pipelined := range []bool{false, true} {
				for _, w := range keepWorkerCounts(workers) {
					run, err := OpenCampaign(spec, CampaignOptions{
						Workers:   w,
						Pipelined: pipelined,
						ModelDir:  dir,
					})
					if err != nil {
						return nil, fmt.Errorf("experiments: prune keep-set: %w", err)
					}
					for _, cell := range run.Cells() {
						if !cell.Method.Kind.Trained() || cell.Method.Model != "" {
							continue
						}
						if p := run.storePath(cell); p != "" {
							keep[filepath.Base(p)] = true
						}
					}
				}
			}
		}
	}
	return keep, nil
}

// PruneModelStore partitions dir's *.model entries into kept and prunable
// by the builtin-campaign keep-set and, unless dryRun is set, deletes the
// prunable ones. Non-store files (checkpoint manifests, anything not
// *.model) are never touched. Both lists come back sorted.
func PruneModelStore(dir string, workers int, dryRun bool) (kept, pruned []string, err error) {
	keep, err := PruneKeepSet(dir, workers)
	if err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: prune: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".model") {
			continue
		}
		if keep[name] {
			kept = append(kept, name)
			continue
		}
		if !dryRun {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return kept, pruned, fmt.Errorf("experiments: prune %s: %w", name, err)
			}
		}
		pruned = append(pruned, name)
	}
	sort.Strings(kept)
	sort.Strings(pruned)
	return kept, pruned, nil
}
