package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// PruneModelStore: entries reachable from the builtin campaign envelope
// survive, orphans go, and nothing that isn't a *.model file is touched.
func TestPruneModelStore(t *testing.T) {
	store := t.TempDir()
	sp, err := scenario.ByName("S2")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CampaignSpec{
		Name:      "prune-test",
		Scale:     scenario.TinyScaleSpec(),
		Scenarios: []scenario.ScenarioSpec{sp},
		Methods:   []scenario.MethodSpec{{Kind: scenario.KindMRSch, Train: true}},
	}
	if _, err := RunCampaign(spec, CampaignOptions{Workers: 1, ModelDir: store}); err != nil {
		t.Fatal(err)
	}
	models, err := filepath.Glob(filepath.Join(store, "*.model"))
	if err != nil || len(models) != 1 {
		t.Fatalf("campaign left %d model(s) in the store (err %v)", len(models), err)
	}
	live := filepath.Base(models[0])

	// An orphan with a store-shaped name, and a bystander file the pruner
	// must never consider.
	orphan := "mrsch-S4-deadbeefdeadbeef.model"
	for _, name := range []string{orphan, "notes.txt"} {
		if err := os.WriteFile(filepath.Join(store, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	kept, pruned, err := PruneModelStore(store, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != orphan {
		t.Fatalf("dry run would prune %v, want [%s]", pruned, orphan)
	}
	if len(kept) != 1 || kept[0] != live {
		t.Fatalf("dry run keeps %v, want [%s]", kept, live)
	}
	if _, err := os.Stat(filepath.Join(store, orphan)); err != nil {
		t.Fatal("dry run deleted the orphan")
	}

	if _, pruned, err = PruneModelStore(store, 1, false); err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != orphan {
		t.Fatalf("pruned %v, want [%s]", pruned, orphan)
	}
	if _, err := os.Stat(filepath.Join(store, orphan)); !os.IsNotExist(err) {
		t.Fatalf("orphan still present after prune (err %v)", err)
	}
	for _, name := range []string{live, "notes.txt"} {
		if _, err := os.Stat(filepath.Join(store, name)); err != nil {
			t.Fatalf("prune removed %s: %v", name, err)
		}
	}

	// A reachable store never shrinks: prune again, nothing to do.
	if _, pruned, err = PruneModelStore(store, 1, false); err != nil {
		t.Fatal(err)
	} else if len(pruned) != 0 {
		t.Fatalf("second prune removed %v", pruned)
	}
}
