package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// Rendering helpers: each figure gets a text table mirroring what the paper
// plots, so a run of cmd/mrsch-exp (or the benchmarks) reproduces the
// figures as rows/series.

// FprintFigure1 prints the motivating example's makespans.
func FprintFigure1(w io.Writer, r Figure1Result) {
	fmt.Fprintln(w, "Figure 1 — fixed priority vs ideal scheduling (makespan, hours)")
	fmt.Fprintf(w, "  fixed-weight greedy: %.0f h\n", r.FixedWeightMakespanH)
	fmt.Fprintf(w, "  ideal packing:       %.0f h\n", r.OptimalMakespanH)
}

// FprintFigure3 prints the MLP-vs-CNN table (four metrics per workload).
func FprintFigure3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3 — state module ablation (MLP vs CNN)")
	fmt.Fprintf(w, "  %-4s %22s %22s %20s %18s\n", "", "NodeUtil% (MLP/CNN)", "BBUtil% (MLP/CNN)", "Wait h (MLP/CNN)", "Slowdown (MLP/CNN)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-4s %10.1f /%8.1f %10.1f /%8.1f %9.2f /%7.2f %8.2f /%6.2f\n",
			r.Workload,
			r.MLP.Utilization[0]*100, r.CNN.Utilization[0]*100,
			r.MLP.Utilization[1]*100, r.CNN.Utilization[1]*100,
			r.MLP.AvgWaitHours(), r.CNN.AvgWaitHours(),
			r.MLP.AvgSlowdown, r.CNN.AvgSlowdown)
	}
}

// FprintFigure4 prints each ordering's loss series.
func FprintFigure4(w io.Writer, series []Fig4Series) {
	fmt.Fprintln(w, "Figure 4 — training loss by curriculum ordering (MSE per episode)")
	for _, s := range series {
		fmt.Fprintf(w, "  %-28s", s.Label)
		for _, l := range s.Loss {
			fmt.Fprintf(w, " %7.4f", l)
		}
		fmt.Fprintln(w)
	}
}

// FprintFigure5 prints the system-level metric rows.
func FprintFigure5(w io.Writer, rows []MethodReports) {
	fmt.Fprintln(w, "Figure 5 — system-level metrics")
	fmt.Fprintf(w, "  %-4s %-12s %14s %14s\n", "", "method", "NodeUtil %", "BBUtil %")
	for _, row := range rows {
		for _, r := range row.Reports {
			fmt.Fprintf(w, "  %-4s %-12s %14.1f %14.1f\n", row.Workload, r.Method,
				r.Utilization[0]*100, r.Utilization[1]*100)
		}
	}
}

// FprintFigure6 prints the user-level metric rows.
func FprintFigure6(w io.Writer, rows []MethodReports) {
	fmt.Fprintln(w, "Figure 6 — user-level metrics")
	fmt.Fprintf(w, "  %-4s %-12s %14s %14s\n", "", "method", "AvgWait h", "AvgSlowdown")
	for _, row := range rows {
		for _, r := range row.Reports {
			fmt.Fprintf(w, "  %-4s %-12s %14.2f %14.2f\n", row.Workload, r.Method,
				r.AvgWaitHours(), r.AvgSlowdown)
		}
	}
}

// FprintFigure7 prints the Kiviat matrices (1 = best per axis) and polygon
// areas.
func FprintFigure7(w io.Writer, rows []MethodReports) {
	fmt.Fprintln(w, "Figure 7 — Kiviat (normalized axes; larger area = better overall)")
	axes := metrics.KiviatAxes(false)
	fmt.Fprintf(w, "  %-4s %-12s", "", "method")
	for _, a := range axes {
		fmt.Fprintf(w, " %24s", a)
	}
	fmt.Fprintf(w, " %8s\n", "area")
	kv := Figure7(rows)
	for _, row := range rows {
		mat := kv[row.Workload]
		for i, r := range row.Reports {
			fmt.Fprintf(w, "  %-4s %-12s", row.Workload, r.Method)
			for _, v := range mat[i] {
				fmt.Fprintf(w, " %24.3f", v)
			}
			fmt.Fprintf(w, " %8.3f\n", metrics.KiviatArea(mat[i]))
		}
	}
}

// FprintFigure8 prints the r_BB time series.
func FprintFigure8(w io.Writer, samples []GoalSample) {
	fmt.Fprintln(w, "Figure 8 — r_BB fluctuation (12-hour window, S5)")
	for i, s := range samples {
		if i%8 == 0 && i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  (%6.2fh %.3f)", s.T/3600, s.RBB)
	}
	fmt.Fprintln(w)
}

// FprintFigure9 prints the r_BB box statistics per workload.
func FprintFigure9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9 — r_BB box plot per workload")
	fmt.Fprintf(w, "  %-4s %8s %8s %8s %8s %8s %8s %6s\n", "", "min", "q1", "median", "q3", "max", "mean", "n")
	for _, r := range rows {
		s := r.Stats
		fmt.Fprintf(w, "  %-4s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %6d\n",
			r.Workload, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.N)
	}
}

// FprintFigure10 prints the three-resource comparison with the power axis.
func FprintFigure10(w io.Writer, rows []MethodReports) {
	fmt.Fprintln(w, "Figure 10 — three schedulable resources (S6-S10)")
	fmt.Fprintf(w, "  %-4s %-12s %12s %12s %12s %12s %12s %8s\n",
		"", "method", "NodeUtil %", "BBUtil %", "Power kW", "Wait h", "Slowdown", "area")
	kv := Figure10Kiviat(rows)
	for _, row := range rows {
		mat := kv[row.Workload]
		for i, r := range row.Reports {
			fmt.Fprintf(w, "  %-4s %-12s %12.1f %12.1f %12.1f %12.2f %12.2f %8.3f\n",
				row.Workload, r.Method,
				r.Utilization[0]*100, r.Utilization[1]*100, r.AvgSysPowerKW,
				r.AvgWaitHours(), r.AvgSlowdown, metrics.KiviatArea(mat[i]))
		}
	}
}
