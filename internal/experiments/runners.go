package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/ga"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rl"
	"repro/internal/rollout"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Method names as the paper labels them (§IV-D). They are the display
// names of the scenario.MethodKind registry (asserted by tests);
// scenario.MethodByName resolves either form.
const (
	MethodMRSch     = "MRSch"
	MethodOptimize  = "Optimization"
	MethodScalarRL  = "Scalar RL"
	MethodHeuristic = "Heuristic"
)

// Methods lists the comparison in the paper's plotting order.
func Methods() []string {
	return []string{MethodMRSch, MethodOptimize, MethodScalarRL, MethodHeuristic}
}

// Evaluate replays jobs through the policy on a fresh cluster and collects
// the §IV-B metrics. powerIdx is the power resource index or -1.
func Evaluate(sys cluster.Config, policy sim.Policy, jobs []*job.Job, method, wl string, powerIdx int) (metrics.Report, error) {
	s := sim.New(sys, policy)
	if err := s.Load(job.CloneAll(jobs)); err != nil {
		return metrics.Report{}, fmt.Errorf("experiments: %s on %s: %w", method, wl, err)
	}
	if err := s.Run(); err != nil {
		return metrics.Report{}, fmt.Errorf("experiments: %s on %s: %w", method, wl, err)
	}
	return metrics.Collect(method, wl, s, powerIdx), nil
}

// mrschOptions returns the experiment-scale agent options for a system.
func (s Scale) mrschOptions(seed int64, useCNN bool) core.Options {
	return core.Options{
		Window: s.Window,
		UseCNN: useCNN,
		Seed:   seed,
		Mutate: func(c *dfp.Config) {
			c.EpsDecay = s.EpsDecay
			// Short episodes: keep offsets inside the horizon.
			c.Offsets = []int{1, 2, 4, 8, 16}
			c.TemporalWeights = []float64{0, 0, 0.5, 0.5, 1}
			if s.Pipelined {
				// Pipelined campaigns shard the replay buffer per rollout
				// worker. Ingestion is still serial today (ROADMAP: parallel
				// transcript ingestion), so this fixes the shard layout those
				// campaigns will keep when round-level ingest lands, at the
				// cost of a shard-count-dependent sampling order — pipelined
				// runs already diverge from barrier runs by design.
				c.ReplayShards = rollout.ResolveWorkers(s.RolloutWorkers)
			}
		},
	}
}

// NewMRSchUntrained builds the campaign-architecture agent without training,
// so saved weights (cmd/mrsch-train) can be loaded into it.
func NewMRSchUntrained(sc Scale, power bool) *core.MRSch {
	sys := sc.System()
	if power {
		sys = sc.PowerSystem()
	}
	return core.New(sys, sc.mrschOptions(sc.Seed+11, false))
}

// TrainMRSch builds and curriculum-trains an MRSch agent for the scenario,
// using the paper's best ordering (sampled -> real -> synthetic, §V-B).
// Episodes are collected through the internal/rollout harness, with
// Scale.RolloutWorkers simulator environments in parallel. With
// Scale.CheckpointDir set, the run writes a resumable checkpoint at every
// round boundary and — with Scale.Resume — continues a previously
// interrupted run bitwise identically (the returned results are then the
// remaining tail of the episode stream).
func TrainMRSch(m *Materials, scenario string, useCNN bool) (*core.MRSch, []core.EpisodeResult, error) {
	sys := m.Scale.System()
	agent := core.New(sys, m.Scale.mrschOptions(m.Scale.Seed+11, useCNN))
	byKind := m.CurriculumSets(scenario)
	order := Ordering{core.Sampled, core.Real, core.Synthetic}
	sets := order.Sets(byKind)
	cfg := m.Scale.rolloutConfig()
	if err := m.Scale.wireCheckpoint(&cfg, trainKey("mrsch", scenario, useCNN, false), len(sets), agent.SaveState, agent.LoadState); err != nil {
		return agent, nil, err
	}
	results, err := rollout.Train(rollout.NewMRSchLearner(agent, core.TrainConfig{
		System:          sys,
		StepsPerEpisode: m.Scale.StepsPerEpisode,
	}), cfg, sets)
	return agent, results, err
}

// TrainMRSchValidated curriculum-trains with the §IV-A model-selection
// protocol: every second episode the agent is scored greedily on the
// validation workload and the best weights are restored at the end. The
// validation runs hook into the rollout harness between episodes (weights
// are stable there — no rollouts in flight), so the protocol composes with
// parallel collection unchanged. With Scale.CheckpointDir set, the round
// checkpoints carry the selection state (best score and weights) alongside
// the agent state, so a resumed validated run keeps a best model found
// before the interruption; the "-validated" key suffix keeps these
// checkpoints from colliding with plain TrainMRSch ones.
func TrainMRSchValidated(m *Materials, scenario string) (*core.MRSch, []core.EpisodeResult, core.ValidationMetrics, error) {
	sys := m.Scale.System()
	agent := core.New(sys, m.Scale.mrschOptions(m.Scale.Seed+11, false))
	byKind := m.CurriculumSets(scenario)
	order := Ordering{core.Sampled, core.Real, core.Synthetic}
	sel := core.NewSelection(agent, sys, m.ValidationWorkload(scenario), 2)
	sets := order.Sets(byKind)

	cfg := m.Scale.rolloutConfig()
	cfg.AfterEpisode = sel.AfterEpisode
	if err := m.Scale.wireCheckpoint(&cfg, trainKey("mrsch", scenario, false, false)+"-validated", len(sets),
		validatedSaver(agent, sel), validatedLoader(agent, sel)); err != nil {
		return agent, nil, core.ValidationMetrics{}, err
	}
	results, err := rollout.Train(rollout.NewMRSchLearner(agent, core.TrainConfig{
		System:          sys,
		StepsPerEpisode: m.Scale.StepsPerEpisode,
	}), cfg, sets)
	if err != nil {
		return agent, results, core.ValidationMetrics{}, err
	}
	best, err := sel.Finish()
	return agent, results, best, err
}

// TrainMRSchOrdered trains a fresh agent with an explicit curriculum
// ordering (Figure 4).
func TrainMRSchOrdered(m *Materials, scenario string, order Ordering, seed int64) ([]core.EpisodeResult, error) {
	sys := m.Scale.System()
	agent := core.New(sys, m.Scale.mrschOptions(seed, false))
	byKind := m.CurriculumSets(scenario)
	return rollout.Train(rollout.NewMRSchLearner(agent, core.TrainConfig{
		System:          sys,
		StepsPerEpisode: m.Scale.StepsPerEpisode,
	}), m.Scale.rolloutConfig(), order.Sets(byKind))
}

// TrainMRSchPower trains an agent on the three-resource system for an
// S6-S10 workload (§V-E). Power workloads reuse the scenario transform of
// their S1-S5 counterpart for the curriculum.
func TrainMRSchPower(m *Materials, powerName string) (*core.MRSch, error) {
	psys := m.Scale.PowerSystem()
	agent := core.New(psys, m.Scale.mrschOptions(m.Scale.Seed+13, false))
	sets := m.powerCurriculum(powerName)
	cfg := m.Scale.rolloutConfig()
	if err := m.Scale.wireCheckpoint(&cfg, trainKey("mrsch", powerName, false, true), len(sets), agent.SaveState, agent.LoadState); err != nil {
		return agent, err
	}
	_, err := rollout.Train(rollout.NewMRSchLearner(agent, core.TrainConfig{
		System:          psys,
		StepsPerEpisode: m.Scale.StepsPerEpisode,
	}), cfg, sets)
	return agent, err
}

// powerCurriculum builds sampled and real training sets carrying power
// demands for an S6-S10 workload.
func (m *Materials) powerCurriculum(powerName string) []core.JobSet {
	for i, p := range workload.PowerScenarios() {
		if p.Name != powerName {
			continue
		}
		s := m.Scale
		psys := s.PowerSystem()
		var sets []core.JobSet
		for _, kind := range []core.JobSetKind{core.Sampled, core.Real} {
			var raw [][]*job.Job
			if kind == core.Sampled {
				raw = workload.SampledSets(m.Train, s.SetsPerKind, s.SetSize, s.Seed+600+int64(i))
			} else {
				raw = workload.RealSets(m.Train, s.SetsPerKind, s.SetSize)
			}
			for k, set := range raw {
				jobs := workload.ApplyPower(set, m.Pool, p, psys, s.Seed+700+int64(k))
				sets = append(sets, core.JobSet{Kind: kind, Jobs: jobs})
			}
		}
		return sets
	}
	panic("experiments: unknown power workload " + powerName)
}

// scalarRLConfig is the single source of the campaign-architecture
// scalar-RL configuration: training (TrainScalarRL) and model-store
// reloading (loadScalarRLModel) must construct identical schedulers or
// stored weights stop fitting.
func (s Scale) scalarRLConfig() rl.Config {
	cfg := rl.DefaultConfig()
	cfg.Window = s.Window
	cfg.Seed = s.Seed + 17
	return cfg
}

// TrainScalarRL trains the fixed-weight policy-gradient baseline on the same
// sampled sets as MRSch (episode count matched for fairness), through the
// same rollout harness.
func TrainScalarRL(m *Materials, scenario string, sys cluster.Config, powerAware bool) (*rl.Scheduler, error) {
	agent := rl.New(sys, m.Scale.scalarRLConfig())

	var sets []core.JobSet
	if powerAware {
		sets = m.powerCurriculum(scenario)
	} else {
		byKind := m.CurriculumSets(scenario)
		order := Ordering{core.Sampled, core.Real, core.Synthetic}
		sets = order.Sets(byKind)
	}
	rcfg := m.Scale.rolloutConfig()
	if err := m.Scale.wireCheckpoint(&rcfg, trainKey("scalar-rl", scenario, false, powerAware), len(sets), agent.SaveState, agent.LoadState); err != nil {
		return nil, err
	}
	if _, err := rollout.Train(rollout.NewScalarRLLearner(agent, core.TrainConfig{
		System: sys,
	}), rcfg, sets); err != nil {
		return nil, fmt.Errorf("experiments: scalar RL training: %w", err)
	}
	return agent, nil
}

// NewGA returns the Optimization baseline picker.
func NewGA(seed int64) sched.Picker {
	cfg := ga.DefaultConfig()
	cfg.Seed = seed
	return ga.New(cfg)
}

// FCFSPolicy returns the Heuristic baseline policy.
func FCFSPolicy(window int) *sched.WindowPolicy {
	return sched.NewWindowPolicy(sched.FCFS{}, window)
}
