// Package experiments regenerates every figure of the paper's evaluation
// (§V): the MLP-vs-CNN state-module ablation (Figure 3), the curriculum-
// ordering convergence study (Figure 4), the system- and user-level
// comparisons of the four scheduling methods (Figures 5-7), the dynamic
// resource-prioritizing traces (Figures 8-9), the three-resource case study
// (Figure 10), and the decision-latency measurement (§V-F). Each experiment
// is a pure function of an explicit Scale, so the same code runs a
// CI-sized replica or a heavier standalone configuration. Campaigns beyond
// the paper grid are declared with internal/scenario specs and run through
// RunCampaign.
package experiments

import (
	"repro/internal/cluster"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Scale fixes the size of an experimental campaign. All randomness derives
// from Seed, so campaigns are reproducible. The sizing is the embedded
// scenario.ScaleSpec (the serializable form — its fields promote, so
// s.Div, s.Window, ... read as before); RolloutWorkers and Pipelined are
// runtime knobs raised by the cmd binaries, never part of a spec.
type Scale struct {
	scenario.ScaleSpec

	// RolloutWorkers is the number of simulator environments the training
	// harness (internal/rollout) rolls out concurrently; 0 means all CPU
	// cores (the package-wide rollout.ResolveWorkers convention). The
	// built-in scales pin it to 1 — the serial-equivalent path that is
	// deterministic across machines — and the cmd binaries raise it via
	// -parallel. See the internal/rollout package doc for the determinism
	// contract.
	RolloutWorkers int
	// Pipelined overlaps episode collection with gradient steps in every
	// training campaign of the scale (rollout.Config.Pipelined): round k+1
	// rolls out against a versioned weight snapshot while round k trains,
	// and the MRSch replay buffer is sharded per rollout worker
	// (dfp.Config.ReplayShards). Off by default — barrier mode is the
	// bitwise-reproducibility reference — and raised by the cmd binaries
	// via -pipeline. Pipelined campaigns are deterministic for a fixed
	// (Seed, RolloutWorkers) pair but differ from barrier-mode campaigns;
	// see rollout's package doc, rules 6-8.
	Pipelined bool
	// CheckpointDir, when non-empty, makes every training campaign of the
	// scale durable: the full agent state (weights, optimizer moments,
	// replay rings, epsilon and rng cursors) is written atomically to a
	// per-run file under the directory at every round boundary
	// (rollout.Config.Checkpoint, rules 9-10 of the rollout package doc).
	// Raised by the cmd binaries via -checkpoint.
	CheckpointDir string
	// CheckpointEvery throttles checkpoint writes to every Nth round
	// boundary (0 or 1 = every round). The final boundary always writes,
	// so a completed run's checkpoint is its final state; a crash between
	// throttled writes just replays up to N rounds on resume. Raise it
	// when serializing the replay buffer every round would rival the
	// round's own training time.
	CheckpointEvery int
	// Resume makes training runs restart from their run's checkpoint file
	// under CheckpointDir (each run writes one file, named by its training
	// key) instead of episode zero. A resumed
	// run is bitwise identical to an uninterrupted one for the same
	// (Seed, RolloutWorkers, Pipelined) settings; a checkpoint written
	// under different settings is rejected loudly rather than silently
	// diverging. With no checkpoint file present the run starts fresh
	// (first launch of a preemptable job). Raised via -resume.
	Resume bool
	// OnCheckpoint, when non-nil, observes checkpoint traffic: action is
	// "save" after each round-boundary write and "resume" after a
	// successful restore, episodes the cumulative episode count. Used by
	// the cmd binaries for progress lines and by tests.
	OnCheckpoint func(action string, episodes int)
	// Metrics/Journal, when set, wire the training harness's telemetry
	// (rollout.Config.Metrics/Journal). Runtime knobs like the rest of
	// this block: observe-only (rollout doc rule 11) and never part of a
	// spec, so they cannot perturb model-store keys or checkpoints.
	Metrics *telemetry.Registry
	Journal *telemetry.Journal
}

// ScaleFromSpec materializes a runnable Scale from its serializable sizing;
// the runtime knobs start at their deterministic defaults (1 rollout
// worker, barrier training).
func ScaleFromSpec(sp scenario.ScaleSpec) Scale {
	return Scale{ScaleSpec: sp, RolloutWorkers: 1}
}

// Spec returns the serializable sizing of the scale.
func (s Scale) Spec() scenario.ScaleSpec { return s.ScaleSpec }

// Validate rejects sizing that would silently generate a degenerate trace
// or curriculum (nonpositive Div, Window, SetSize, TraceDuration, ...).
func (s Scale) Validate() error { return s.Spec().Validate() }

// rolloutConfig derives the training-harness configuration for the scale.
func (s Scale) rolloutConfig() rollout.Config {
	return rollout.Config{
		Workers:   s.RolloutWorkers,
		Seed:      s.Seed + 7,
		Pipelined: s.Pipelined,
		Metrics:   s.Metrics,
		Journal:   s.Journal,
	}
}

// QuickScale is the CI-sized campaign used by `go test` and the default
// benchmarks: a 1/32 Theta and a compressed training budget (the builtin
// scenario.QuickScaleSpec sizing).
func QuickScale() Scale { return ScaleFromSpec(scenario.QuickScaleSpec()) }

// StandardScale is a heavier campaign for standalone runs of cmd/mrsch-exp:
// a 1/16 Theta, a two-day trace, and a longer curriculum.
func StandardScale() Scale { return ScaleFromSpec(scenario.StandardScaleSpec()) }

// TinyScale is the smallest builtin campaign, used by CI campaign smokes
// and `-scale tiny`.
func TinyScale() Scale { return ScaleFromSpec(scenario.TinyScaleSpec()) }

// System returns the scaled two-resource machine.
func (s Scale) System() cluster.Config { return workload.ThetaScaled(s.Div) }

// PowerSystem returns the scaled three-resource machine of §V-E.
func (s Scale) PowerSystem() cluster.Config { return workload.WithPower(s.System()) }
