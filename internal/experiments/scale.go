// Package experiments regenerates every figure of the paper's evaluation
// (§V): the MLP-vs-CNN state-module ablation (Figure 3), the curriculum-
// ordering convergence study (Figure 4), the system- and user-level
// comparisons of the four scheduling methods (Figures 5-7), the dynamic
// resource-prioritizing traces (Figures 8-9), the three-resource case study
// (Figure 10), and the decision-latency measurement (§V-F). Each experiment
// is a pure function of an explicit Scale, so the same code runs a
// CI-sized replica or a heavier standalone configuration.
package experiments

import (
	"repro/internal/cluster"
	"repro/internal/rollout"
	"repro/internal/workload"
)

// Scale fixes the size of an experimental campaign. All randomness derives
// from Seed, so campaigns are reproducible.
type Scale struct {
	Name string
	// Div scales the Theta machine (nodes and burst buffer divided by Div).
	Div int
	// TraceDuration and MeanInterarrival shape the base trace.
	TraceDuration    float64
	MeanInterarrival float64
	// Window is W (the paper uses 10).
	Window int
	// SetsPerKind and SetSize size the curriculum (§III-D): SetsPerKind job
	// sets of each of the three kinds, SetSize jobs each.
	SetsPerKind int
	SetSize     int
	// StepsPerEpisode is gradient steps after each training episode.
	StepsPerEpisode int
	// EpsDecay overrides the paper's per-episode 0.995 decay so short
	// campaigns still reach exploitation.
	EpsDecay float64
	// Seed roots all randomness.
	Seed int64
	// RolloutWorkers is the number of simulator environments the training
	// harness (internal/rollout) rolls out concurrently; 0 means all CPU
	// cores (the package-wide rollout.ResolveWorkers convention). The
	// built-in scales pin it to 1 — the serial-equivalent path that is
	// deterministic across machines — and the cmd binaries raise it via
	// -parallel. See the internal/rollout package doc for the determinism
	// contract.
	RolloutWorkers int
	// Pipelined overlaps episode collection with gradient steps in every
	// training campaign of the scale (rollout.Config.Pipelined): round k+1
	// rolls out against a versioned weight snapshot while round k trains,
	// and the MRSch replay buffer is sharded per rollout worker
	// (dfp.Config.ReplayShards). Off by default — barrier mode is the
	// bitwise-reproducibility reference — and raised by the cmd binaries
	// via -pipeline. Pipelined campaigns are deterministic for a fixed
	// (Seed, RolloutWorkers) pair but differ from barrier-mode campaigns;
	// see rollout's package doc, rules 6-8.
	Pipelined bool
}

// rolloutConfig derives the training-harness configuration for the scale.
func (s Scale) rolloutConfig() rollout.Config {
	return rollout.Config{Workers: s.RolloutWorkers, Seed: s.Seed + 7, Pipelined: s.Pipelined}
}

// QuickScale is the CI-sized campaign used by `go test` and the default
// benchmarks: a 1/32 Theta and a compressed training budget. Figures keep
// their qualitative shape at this scale; absolute numbers shift.
func QuickScale() Scale {
	return Scale{
		Name:             "quick",
		Div:              32,
		TraceDuration:    1.0 * 86400,
		MeanInterarrival: 110,
		Window:           10,
		SetsPerKind:      5,
		SetSize:          80,
		StepsPerEpisode:  32,
		EpsDecay:         0.78,
		Seed:             1,
		RolloutWorkers:   1,
	}
}

// StandardScale is a heavier campaign for standalone runs of cmd/mrsch-exp:
// a 1/16 Theta, a two-day trace, and a longer curriculum.
func StandardScale() Scale {
	return Scale{
		Name:             "standard",
		Div:              16,
		TraceDuration:    2 * 86400,
		MeanInterarrival: 110,
		Window:           10,
		SetsPerKind:      8,
		SetSize:          100,
		StepsPerEpisode:  32,
		EpsDecay:         0.88,
		Seed:             1,
		RolloutWorkers:   1,
	}
}

// System returns the scaled two-resource machine.
func (s Scale) System() cluster.Config { return workload.ThetaScaled(s.Div) }

// PowerSystem returns the scaled three-resource machine of §V-E.
func (s Scale) PowerSystem() cluster.Config { return workload.WithPower(s.System()) }
