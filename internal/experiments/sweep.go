package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// This file is the legacy string-keyed surface of the episode-sweep mode,
// kept as a thin adapter over the declarative campaign engine
// (internal/scenario + campaign.go): SweepGrid enumerates the paper
// campaign's cells under their historical names and RunSweep evaluates them
// through the same per-cell path as RunCampaign, byte-identical to the
// pre-spec implementation.

// SweepCell is one evaluation episode of the grid: a workload on its system
// arity under one scheduling method.
type SweepCell struct {
	Workload string // a builtin scenario name (S1-S10) or variant syntax ("S4@wtn=0.5")
	Method   string // a method display name or kind (e.g. MethodHeuristic, "fcfs")
	Power    bool   // S6-S10: three-resource system with a power budget
}

// SweepResult pairs a grid cell with its collected §IV-B metrics.
type SweepResult struct {
	Cell   SweepCell
	Report metrics.Report
}

// SweepGrid enumerates the workload x method grid in deterministic order:
// every Table III scenario (two-resource mixes), then every power scenario
// (three-resource mixes), for each of the given training-free methods.
// Methods defaults to {Heuristic, Optimization} when nil. It is the
// expansion of scenario.PaperCampaign restricted to the requested methods.
func SweepGrid(methods []string) []SweepCell {
	if methods == nil {
		methods = []string{MethodHeuristic, MethodOptimize}
	}
	var grid []SweepCell
	for _, sp := range scenario.Builtins() {
		for _, method := range methods {
			grid = append(grid, SweepCell{Workload: sp.Name, Method: method, Power: sp.Power})
		}
	}
	return grid
}

// cellsFromGrid adapts legacy sweep cells to expanded campaign cells,
// preserving indices (per-cell policy seeding derives from them).
func cellsFromGrid(grid []SweepCell) ([]scenario.Cell, error) {
	cells := make([]scenario.Cell, len(grid))
	for i, c := range grid {
		sp, err := scenario.ByName(c.Workload)
		if err != nil {
			return nil, err
		}
		if c.Power != sp.Power {
			return nil, fmt.Errorf("experiments: sweep cell %s: Power=%v contradicts the scenario (arity %d)", c.Workload, c.Power, sp.Arity())
		}
		method, err := scenario.MethodByName(c.Method)
		if err != nil {
			return nil, err
		}
		cells[i] = scenario.Cell{Index: i, Scenario: sp, Method: method}
	}
	return cells, nil
}

// RunSweep evaluates every cell of the grid as an independent simulation
// episode across up to `workers` goroutines (0 = all cores), returning
// results in grid order. Each cell builds its own policy (seeded by cell
// index) and workload, so results are identical for every worker count —
// evaluation episodes, unlike training episodes, share no learner state.
// Only training-free methods participate: trained agents go through the
// figure pipelines or a campaign spec with train/model methods.
func RunSweep(m *Materials, grid []SweepCell, workers int) ([]SweepResult, error) {
	cells, err := cellsFromGrid(grid)
	if err != nil {
		return nil, err
	}
	for _, cell := range cells {
		if cell.Method.Kind.Trained() {
			return nil, fmt.Errorf("experiments: sweep method %q needs training; use the figure pipelines or a campaign spec", cell.Method.DisplayName())
		}
		// Base-trace variants (div/ia) need their own materials, which only
		// RunCampaign resolves; reject them here instead of failing cell by
		// cell mid-sweep.
		if err := m.checkSpec(cell.Scenario); err != nil {
			return nil, err
		}
	}
	run := &CampaignRun{
		spec:      scenario.CampaignSpec{Name: "sweep", Scale: m.Scale.Spec()},
		baseScale: m.Scale,
		materials: map[string]*Materials{materialsKey(m.Scale): m},
	}
	results, err := run.evalCells(cells, workers)
	if err != nil {
		return nil, err
	}
	out := make([]SweepResult, len(results))
	for i, r := range results {
		out[i] = SweepResult{Cell: grid[i], Report: r.Report}
	}
	return out, nil
}

// FprintSweep renders sweep results as one table row per cell.
func FprintSweep(w io.Writer, results []SweepResult) {
	fmt.Fprintln(w, "Scenario sweep — workload x method grid (episode per cell):")
	fmt.Fprintf(w, "  %-4s %-13s %-5s %9s %9s %8s %9s\n",
		"wl", "method", "res", "util[0]", "util[1]", "wait(h)", "slowdown")
	for _, r := range results {
		res := "2"
		if r.Cell.Power {
			res = "3"
		}
		fmt.Fprintf(w, "  %-4s %-13s %-5s %9.3f %9.3f %8.2f %9.2f\n",
			r.Cell.Workload, r.Cell.Method, res,
			r.Report.Utilization[0], r.Report.Utilization[1],
			r.Report.AvgWaitHours(), r.Report.AvgSlowdown)
	}
}
