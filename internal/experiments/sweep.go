package experiments

import (
	"fmt"
	"io"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rollout"
	"repro/internal/sched"
)

// This file implements the episode-sweep mode: independent evaluation
// episodes over the full scenario grid — the Table III burst-buffer ladder
// S1-S5 on the two-resource Theta variant and the §V-E power-capped S6-S10
// on the three-resource system — fanned across the same worker pool
// (internal/rollout) that collects training episodes, so scenario sweeps and
// training share one engine.

// SweepCell is one evaluation episode of the grid: a workload on its system
// arity under one scheduling method.
type SweepCell struct {
	Workload string // S1-S10
	Method   string // MethodHeuristic or MethodOptimize
	Power    bool   // S6-S10: three-resource system with a power budget
}

// SweepResult pairs a grid cell with its collected §IV-B metrics.
type SweepResult struct {
	Cell   SweepCell
	Report metrics.Report
}

// SweepGrid enumerates the workload x method grid in deterministic order:
// every Table III scenario (two-resource mixes), then every power scenario
// (three-resource mixes), for each of the given training-free methods.
// Methods defaults to {Heuristic, Optimization} when nil.
func SweepGrid(methods []string) []SweepCell {
	if methods == nil {
		methods = []string{MethodHeuristic, MethodOptimize}
	}
	var grid []SweepCell
	for _, wl := range WorkloadNames() {
		for _, method := range methods {
			grid = append(grid, SweepCell{Workload: wl, Method: method})
		}
	}
	for _, wl := range PowerWorkloadNames() {
		for _, method := range methods {
			grid = append(grid, SweepCell{Workload: wl, Method: method, Power: true})
		}
	}
	return grid
}

// RunSweep evaluates every cell of the grid as an independent simulation
// episode across up to `workers` goroutines (0 = all cores), returning
// results in grid order. Each cell builds its own policy (seeded by cell
// index) and workload, so results are identical for every worker count —
// evaluation episodes, unlike training episodes, share no learner state.
func RunSweep(m *Materials, grid []SweepCell, workers int) ([]SweepResult, error) {
	return rollout.Map(workers, grid, func(_, idx int, cell SweepCell) (SweepResult, error) {
		sys := m.Scale.System()
		powerIdx := -1
		if cell.Power {
			sys = m.Scale.PowerSystem()
			powerIdx = 2
		}
		policy, err := sweepPolicy(m, cell, idx)
		if err != nil {
			return SweepResult{}, err
		}
		var jobs []*job.Job
		if cell.Power {
			jobs = m.PowerWorkload(cell.Workload)
		} else {
			jobs = m.Workload(cell.Workload)
		}
		rep, err := Evaluate(sys, policy, jobs, cell.Method, cell.Workload, powerIdx)
		if err != nil {
			return SweepResult{}, err
		}
		return SweepResult{Cell: cell, Report: rep}, nil
	})
}

// sweepPolicy builds the cell's scheduling policy. Only training-free
// methods participate in sweeps; trained agents go through the figure
// pipelines, which own their training budgets.
func sweepPolicy(m *Materials, cell SweepCell, idx int) (*sched.WindowPolicy, error) {
	switch cell.Method {
	case MethodHeuristic:
		return FCFSPolicy(m.Scale.Window), nil
	case MethodOptimize:
		return sched.NewWindowPolicy(NewGA(m.Scale.Seed+7000+int64(idx)), m.Scale.Window), nil
	default:
		return nil, fmt.Errorf("experiments: sweep method %q needs training; use the figure pipelines", cell.Method)
	}
}

// FprintSweep renders sweep results as one table row per cell.
func FprintSweep(w io.Writer, results []SweepResult) {
	fmt.Fprintln(w, "Scenario sweep — workload x method grid (episode per cell):")
	fmt.Fprintf(w, "  %-4s %-13s %-5s %9s %9s %8s %9s\n",
		"wl", "method", "res", "util[0]", "util[1]", "wait(h)", "slowdown")
	for _, r := range results {
		res := "2"
		if r.Cell.Power {
			res = "3"
		}
		fmt.Fprintf(w, "  %-4s %-13s %-5s %9.3f %9.3f %8.2f %9.2f\n",
			r.Cell.Workload, r.Cell.Method, res,
			r.Report.Utilization[0], r.Report.Utilization[1],
			r.Report.AvgWaitHours(), r.Report.AvgSlowdown)
	}
}
