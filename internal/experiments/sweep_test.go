package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSweepGridShape(t *testing.T) {
	grid := SweepGrid(nil)
	if len(grid) != 20 { // (5 + 5 workloads) x 2 methods
		t.Fatalf("%d cells, want 20", len(grid))
	}
	twoRes, threeRes := 0, 0
	for _, c := range grid {
		if c.Power {
			threeRes++
		} else {
			twoRes++
		}
	}
	if twoRes != 10 || threeRes != 10 {
		t.Fatalf("arity split %d/%d, want 10/10", twoRes, threeRes)
	}
}

// Sweep cells are independent evaluation episodes, so the worker count must
// not change any result — unlike training, where it changes the (equally
// valid) interleaving.
func TestSweepIndependentOfWorkerCount(t *testing.T) {
	m := MustPrepare(tinyScale())
	grid := SweepGrid([]string{MethodHeuristic})
	serial, err := RunSweep(m, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(m, grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sweep results depend on worker count")
	}
	for i, r := range serial {
		if r.Cell != grid[i] {
			t.Fatalf("result %d out of grid order: %+v", i, r.Cell)
		}
		if r.Report.Jobs == 0 {
			t.Fatalf("%s/%s completed no jobs", r.Cell.Workload, r.Cell.Method)
		}
		wantRes := 2
		if r.Cell.Power {
			wantRes = 3
		}
		if len(r.Report.Utilization) != wantRes {
			t.Fatalf("%s: %d resources, want %d", r.Cell.Workload, len(r.Report.Utilization), wantRes)
		}
	}
	var buf bytes.Buffer
	FprintSweep(&buf, serial)
	if buf.Len() == 0 {
		t.Fatal("empty sweep rendering")
	}
}

func TestSweepRejectsTrainedMethods(t *testing.T) {
	m := MustPrepare(tinyScale())
	_, err := RunSweep(m, []SweepCell{{Workload: "S1", Method: MethodMRSch}}, 1)
	if err == nil {
		t.Fatal("sweep accepted a method that needs training")
	}
}

// Base-trace variants need their own materials, which only RunCampaign
// prepares; RunSweep must reject them with an error, not evaluate them
// against mismatched materials (or crash).
func TestSweepRejectsBaseTraceVariants(t *testing.T) {
	m := MustPrepare(tinyScale())
	for _, wl := range []string{"S4@div=16", "S4@ia=0.75"} {
		_, err := RunSweep(m, []SweepCell{{Workload: wl, Method: MethodHeuristic}}, 1)
		if err == nil {
			t.Fatalf("sweep accepted %s against base materials", wl)
		}
	}
	// Walltime noise applies at workload construction and is fine.
	res, err := RunSweep(m, []SweepCell{{Workload: "S4@wtn=0.5", Method: MethodHeuristic}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Report.Jobs == 0 {
		t.Fatalf("wtn variant sweep cell produced %+v", res)
	}
}
