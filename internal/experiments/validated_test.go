package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestTrainMRSchValidatedSelectsModel(t *testing.T) {
	m := MustPrepare(tinyScale())
	agent, results, best, err := TrainMRSchValidated(m, "S2")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3*tinyScale().SetsPerKind {
		t.Fatalf("%d episodes", len(results))
	}
	if best.Score <= 0 || best.Score > 1 {
		t.Fatalf("validation score %v", best.Score)
	}
	// The selected agent must still schedule the test workload.
	rep, err := Evaluate(m.Scale.System(), agent.Policy(), m.Workload("S2"), MethodMRSch, "S2", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("selected agent completed nothing")
	}
}

// Crash-resume equivalence for validated training: the round checkpoints
// carry the §IV-A selection state, so a run resumed from a mid-run
// checkpoint finishes with the same final weights AND the same best
// validation metrics as a run that was never interrupted — including a best
// model found before the interruption point.
func TestValidatedTrainCheckpointResumeEquivalence(t *testing.T) {
	sc := tinyScale()
	sc.RolloutWorkers = 2

	// Uninterrupted reference, no checkpointing.
	refAgent, refResults, refBest, err := TrainMRSchValidated(MustPrepare(sc), "S2")
	if err != nil {
		t.Fatal(err)
	}
	total := len(refResults)
	if total < 2 {
		t.Fatalf("reference run trained %d episodes, too few to interrupt", total)
	}
	var refWeights bytes.Buffer
	if err := refAgent.Save(&refWeights); err != nil {
		t.Fatal(err)
	}

	// Checkpointed run: stash a copy of the checkpoint file as it stood at
	// the first mid-run round boundary — the state a crash right after that
	// round would leave behind. Boundaries fall on round edges (a multiple
	// of the worker count), so the test discovers the boundary instead of
	// hardcoding one.
	dir := t.TempDir()
	crashDir := t.TempDir()
	at := 0
	ckpt := sc
	ckpt.CheckpointDir = dir
	ckpt.OnCheckpoint = func(action string, episodes int) {
		if action != "save" || at != 0 || episodes == 0 || episodes >= total {
			return
		}
		at = episodes
		files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
		if err != nil || len(files) != 1 {
			t.Errorf("mid-run checkpoint: glob %v err %v", files, err)
			return
		}
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Error(err)
			return
		}
		if err := os.WriteFile(filepath.Join(crashDir, filepath.Base(files[0])), data, 0o644); err != nil {
			t.Error(err)
		}
	}
	ckptAgent, _, ckptBest, err := TrainMRSchValidated(MustPrepare(ckpt), "S2")
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint writes are pure observers: the checkpointed run must match
	// the reference bitwise.
	var ckptWeights bytes.Buffer
	if err := ckptAgent.Save(&ckptWeights); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refWeights.Bytes(), ckptWeights.Bytes()) {
		t.Fatal("checkpointed run weights differ from the uncheckpointed reference")
	}
	if !reflect.DeepEqual(refBest, ckptBest) {
		t.Fatalf("checkpointed run best %+v, reference %+v", ckptBest, refBest)
	}
	if entries, _ := filepath.Glob(filepath.Join(crashDir, "*.ckpt")); at == 0 || len(entries) != 1 {
		t.Fatalf("no mid-run checkpoint captured (boundary %d, %d file(s))", at, len(entries))
	}

	// Resume from the crash point and finish the run.
	res := sc
	res.CheckpointDir = crashDir
	res.Resume = true
	resumedAt := -1
	res.OnCheckpoint = func(action string, episodes int) {
		if action == "resume" {
			resumedAt = episodes
		}
	}
	resAgent, resResults, resBest, err := TrainMRSchValidated(MustPrepare(res), "S2")
	if err != nil {
		t.Fatal(err)
	}
	if resumedAt != at {
		t.Fatalf("resumed at boundary %d, want %d", resumedAt, at)
	}
	if len(resResults) != total-at {
		t.Fatalf("resumed run trained %d episodes, want the %d-episode tail", len(resResults), total-at)
	}
	var resWeights bytes.Buffer
	if err := resAgent.Save(&resWeights); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refWeights.Bytes(), resWeights.Bytes()) {
		t.Fatal("resumed run final weights differ from the uninterrupted reference")
	}
	if !reflect.DeepEqual(refBest, resBest) {
		t.Fatalf("resumed run best %+v, reference %+v", resBest, refBest)
	}
}

// A finished validated run resumed against its own checkpoint trains zero
// episodes and still reports the recorded best — the selection state
// (metrics and weight snapshot) round-trips through the checkpoint file.
func TestValidatedTrainResumeFinishedRunKeepsSelection(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.CheckpointDir = dir
	agent1, results1, best1, err := TrainMRSchValidated(MustPrepare(sc), "S2")
	if err != nil {
		t.Fatal(err)
	}
	if len(results1) == 0 || best1.Score == 0 {
		t.Fatalf("degenerate first run: %d episodes, best %+v", len(results1), best1)
	}

	sc.Resume = true
	agent2, results2, best2, err := TrainMRSchValidated(MustPrepare(sc), "S2")
	if err != nil {
		t.Fatal(err)
	}
	if len(results2) != 0 {
		t.Fatalf("resumed finished run trained %d episodes, want 0", len(results2))
	}
	if !reflect.DeepEqual(best1, best2) {
		t.Fatalf("selection state lost across resume: best %+v, want %+v", best2, best1)
	}
	var w1, w2 bytes.Buffer
	if err := agent1.Save(&w1); err != nil {
		t.Fatal(err)
	}
	if err := agent2.Save(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("resumed weights differ from the run that wrote the checkpoint")
	}
}

func TestValidationWorkloadDistinctFromTest(t *testing.T) {
	sc := tinyScale()
	sc.TraceDuration = 0.8 * 86400 // long enough for a non-degenerate split
	m := MustPrepare(sc)
	valid := m.ValidationWorkload("S1")
	test := m.Workload("S1")
	if len(valid) == 0 || len(test) == 0 {
		t.Fatalf("empty split: valid=%d test=%d", len(valid), len(test))
	}
	if len(m.Valid) >= len(m.Train) {
		t.Fatalf("validation split (%d) should be much smaller than training (%d)",
			len(m.Valid), len(m.Train))
	}
}
