package experiments

import "testing"

func TestTrainMRSchValidatedSelectsModel(t *testing.T) {
	m := MustPrepare(tinyScale())
	agent, results, best, err := TrainMRSchValidated(m, "S2")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3*tinyScale().SetsPerKind {
		t.Fatalf("%d episodes", len(results))
	}
	if best.Score <= 0 || best.Score > 1 {
		t.Fatalf("validation score %v", best.Score)
	}
	// The selected agent must still schedule the test workload.
	rep, err := Evaluate(m.Scale.System(), agent.Policy(), m.Workload("S2"), MethodMRSch, "S2", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("selected agent completed nothing")
	}
}

func TestValidationWorkloadDistinctFromTest(t *testing.T) {
	sc := tinyScale()
	sc.TraceDuration = 0.8 * 86400 // long enough for a non-degenerate split
	m := MustPrepare(sc)
	valid := m.ValidationWorkload("S1")
	test := m.Workload("S1")
	if len(valid) == 0 || len(test) == 0 {
		t.Fatalf("empty split: valid=%d test=%d", len(valid), len(test))
	}
	if len(m.Valid) >= len(m.Train) {
		t.Fatalf("validation split (%d) should be much smaller than training (%d)",
			len(m.Valid), len(m.Train))
	}
}
