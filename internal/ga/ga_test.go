package ga

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false},
		{[]float64{1, 2}, []float64{1, 1}, true},
		{[]float64{0, 2}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNonDominatedSortKnown(t *testing.T) {
	objs := [][]float64{
		{1, 1}, // dominated by everything on the front
		{3, 1}, // front 0
		{2, 2}, // front 0
		{1, 3}, // front 0
		{2, 1}, // front 1 (dominated by {3,1} and {2,2})
	}
	fronts := NonDominatedSort(objs)
	if len(fronts) != 3 {
		t.Fatalf("fronts = %d, want 3", len(fronts))
	}
	got := append([]int(nil), fronts[0]...)
	sort.Ints(got)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front0 = %v, want %v", got, want)
		}
	}
	if fronts[1][0] != 4 || fronts[2][0] != 0 {
		t.Fatalf("fronts = %v", fronts)
	}
}

// Property: every individual lands in exactly one front, and no individual
// dominates another within the same front.
func TestNonDominatedSortProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%30 + 2
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		fronts := NonDominatedSort(objs)
		seen := make([]bool, n)
		for _, front := range fronts {
			for _, i := range front {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
			for _, i := range front {
				for _, j := range front {
					if i != j && Dominates(objs[i], objs[j]) {
						return false
					}
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCrowdingDistanceBoundaries(t *testing.T) {
	objs := [][]float64{{0, 3}, {1, 2}, {2, 1}, {3, 0}}
	front := []int{0, 1, 2, 3}
	d := CrowdingDistance(objs, front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("boundary distances not infinite: %v", d)
	}
	if math.IsInf(d[1], 1) || d[1] <= 0 {
		t.Fatalf("interior distance = %v", d[1])
	}
}

func TestCrowdingDistanceSmallFronts(t *testing.T) {
	objs := [][]float64{{1, 1}, {2, 2}}
	d := CrowdingDistance(objs, []int{0})
	if !math.IsInf(d[0], 1) {
		t.Fatal("singleton front must be infinite")
	}
	if got := CrowdingDistance(objs, nil); len(got) != 0 {
		t.Fatal("empty front should return empty distances")
	}
}

func TestKneePicksBalanced(t *testing.T) {
	objs := [][]float64{{1, 0}, {0.7, 0.7}, {0, 1}}
	front := []int{0, 1, 2}
	if got := Knee(objs, front); got != 1 {
		t.Fatalf("Knee = %d, want 1 (balanced)", got)
	}
	if got := Knee(objs, nil); got != -1 {
		t.Fatal("Knee of empty front should be -1")
	}
}

func TestOrderCrossoverIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(9) + 2
		p1 := rng.Perm(n)
		p2 := rng.Perm(n)
		child := orderCrossover(p1, p2, rng)
		seen := make([]bool, n)
		for _, v := range child {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("child %v is not a permutation of 0..%d", child, n-1)
			}
			seen[v] = true
		}
	}
}

func TestSwapMutatePreservesPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := rng.Perm(8)
	swapMutate(p, rng)
	seen := make([]bool, 8)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("mutation broke permutation: %v", p)
		}
		seen[v] = true
	}
	one := []int{0}
	swapMutate(one, rng) // must not panic
}

func gaCluster() cluster.Config {
	return cluster.Config{Name: "g", Resources: []string{"A", "B"}, Capacities: []int{100, 100}}
}

func mkPct(id int, a, b int, runtime float64) *job.Job {
	return &job.Job{ID: id, Submit: 0, Runtime: runtime, Walltime: runtime, Demand: []int{a, b}}
}

// The Figure 1 scenario: four jobs where fixed-arrival FCFS wastes an hour
// but a packing-aware method achieves the 2-hour makespan. The GA picker
// must find the complementary pairing.
func TestGAFindsComplementaryPairing(t *testing.T) {
	// J1=(55,10) J2=(50,40) J3=(40,60) J4=(50,10):
	// optimal pairs {J1,J3} and {J2,J4} -> makespan 2h.
	jobs := []*job.Job{
		mkPct(1, 55, 10, 3600),
		mkPct(2, 50, 40, 3600),
		mkPct(3, 40, 60, 3600),
		mkPct(4, 50, 10, 3600),
	}
	p := sched.NewWindowPolicy(New(DefaultConfig()), 10)
	s := sim.New(gaCluster(), p)
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	makespan := 0.0
	for _, j := range jobs {
		if j.End > makespan {
			makespan = j.End
		}
	}
	if makespan > 2*3600+1 {
		t.Fatalf("GA makespan = %v h, want 2h", makespan/3600)
	}
}

func TestGAPickReturnsFittingJobWhenPossible(t *testing.T) {
	cl := cluster.New(gaCluster())
	// Occupy most of resource A so only the small job fits.
	if err := cl.Allocate(99, []int{90, 0}, 0, 1000); err != nil {
		t.Fatal(err)
	}
	window := []*job.Job{
		mkPct(1, 50, 10, 100), // does not fit (A)
		mkPct(2, 5, 5, 100),   // fits
	}
	ctx := &sched.PickContext{Now: 0, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
	g := New(DefaultConfig())
	if got := g.Pick(ctx); got != 1 {
		t.Fatalf("Pick = %d, want 1 (the fitting job)", got)
	}
}

func TestGAPickSingletonAndEmpty(t *testing.T) {
	cl := cluster.New(gaCluster())
	g := New(DefaultConfig())
	ctx := &sched.PickContext{Now: 0, Window: []*job.Job{mkPct(1, 5, 5, 10)}, Cluster: cl}
	if got := g.Pick(ctx); got != 0 {
		t.Fatalf("singleton Pick = %d", got)
	}
	ctx.Window = nil
	if got := g.Pick(ctx); got != -1 {
		t.Fatalf("empty Pick = %d", got)
	}
}

func TestGADeterministicForSeed(t *testing.T) {
	mkCtx := func() *sched.PickContext {
		cl := cluster.New(gaCluster())
		window := []*job.Job{
			mkPct(1, 55, 10, 100), mkPct(2, 50, 40, 100),
			mkPct(3, 40, 60, 100), mkPct(4, 50, 10, 100),
		}
		return &sched.PickContext{Now: 0, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
	}
	a := New(DefaultConfig()).Pick(mkCtx())
	b := New(DefaultConfig()).Pick(mkCtx())
	if a != b {
		t.Fatalf("same seed, different picks: %d vs %d", a, b)
	}
}
