// Package ga implements the paper's "Optimization" comparison method
// (§IV-D): multi-resource scheduling formulated as a multi-objective
// optimization problem and solved with a genetic algorithm, following Fan et
// al., "Scheduling Beyond CPUs for HPC" [13]. The GA searches orderings of
// the window jobs, scores each ordering by the per-resource utilization a
// greedy packing of it would achieve, keeps the Pareto-efficient orderings
// via non-dominated sorting with crowding distance (NSGA-II), and picks the
// knee of the first front for decision-making.
package ga

import (
	"math"
	"sort"
)

// Dominates reports whether objective vector a Pareto-dominates b under
// maximization: a is no worse in every objective and strictly better in at
// least one.
func Dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			better = true
		}
	}
	return better
}

// NonDominatedSort partitions indices 0..len(objs)-1 into Pareto fronts
// (fast non-dominated sort). Front 0 is the non-dominated set.
func NonDominatedSort(objs [][]float64) [][]int {
	n := len(objs)
	dominatedBy := make([]int, n) // count of individuals dominating i
	dominates := make([][]int, n) // individuals i dominates
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(objs[i], objs[j]) {
				dominates[i] = append(dominates[i], j)
			} else if Dominates(objs[j], objs[i]) {
				dominatedBy[i]++
			}
		}
		if dominatedBy[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominates[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// CrowdingDistance returns the NSGA-II crowding distance of each member of
// front (indexed parallel to front). Boundary solutions get +Inf.
func CrowdingDistance(objs [][]float64, front []int) []float64 {
	m := len(front)
	dist := make([]float64, m)
	if m == 0 {
		return dist
	}
	if m <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	numObj := len(objs[front[0]])
	order := make([]int, m) // positions into front
	for k := 0; k < numObj; k++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return objs[front[order[a]]][k] < objs[front[order[b]]][k]
		})
		lo := objs[front[order[0]]][k]
		hi := objs[front[order[m-1]]][k]
		dist[order[0]] = math.Inf(1)
		dist[order[m-1]] = math.Inf(1)
		span := hi - lo
		if span == 0 {
			continue
		}
		for i := 1; i < m-1; i++ {
			gap := objs[front[order[i+1]]][k] - objs[front[order[i-1]]][k]
			dist[order[i]] += gap / span
		}
	}
	return dist
}

// Knee returns the member of front whose min-max-normalized objective sum is
// largest — the balanced compromise used for decision-making once the Pareto
// set has been explored.
func Knee(objs [][]float64, front []int) int {
	if len(front) == 0 {
		return -1
	}
	numObj := len(objs[front[0]])
	lo := make([]float64, numObj)
	hi := make([]float64, numObj)
	for k := 0; k < numObj; k++ {
		lo[k], hi[k] = math.Inf(1), math.Inf(-1)
	}
	for _, i := range front {
		for k, v := range objs[i] {
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	best, bestScore := front[0], math.Inf(-1)
	for _, i := range front {
		score := 0.0
		for k, v := range objs[i] {
			span := hi[k] - lo[k]
			if span > 0 {
				score += (v - lo[k]) / span
			} else {
				score += 1
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
