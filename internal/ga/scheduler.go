package ga

import (
	"math/rand"

	"repro/internal/sched"
)

// Config tunes the GA picker. The defaults follow the scale of [13]: a small
// population evolved for a few dozen generations per scheduling instance,
// which keeps decision latency well inside the paper's 15-30 s budget.
type Config struct {
	Population  int
	Generations int
	CrossProb   float64
	MutProb     float64
	Seed        int64
}

// DefaultConfig returns the settings used in the experiments.
func DefaultConfig() Config {
	return Config{Population: 24, Generations: 30, CrossProb: 0.9, MutProb: 0.2, Seed: 1}
}

// Scheduler is the multi-objective GA picker. For a fair comparison it uses
// the same window as MRSch (§IV-D).
type Scheduler struct {
	cfg Config
	rng *rand.Rand
}

// New builds a GA scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Population < 4 {
		cfg.Population = 4
	}
	if cfg.Generations < 1 {
		cfg.Generations = 1
	}
	return &Scheduler{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

var _ sched.Picker = (*Scheduler)(nil)

// Pick implements sched.Picker: evolve orderings of the window, keep the
// Pareto-best, and return the first job of the knee ordering that fits (or
// the knee's head job, which then becomes the reservation).
func (g *Scheduler) Pick(ctx *sched.PickContext) int {
	w := len(ctx.Window)
	if w == 0 {
		return -1
	}
	if w == 1 {
		return 0
	}

	pop := make([][]int, g.cfg.Population)
	for i := range pop {
		pop[i] = g.rng.Perm(w)
	}
	objs := make([][]float64, len(pop))
	for i, perm := range pop {
		objs[i] = g.evaluate(ctx, perm)
	}

	for gen := 0; gen < g.cfg.Generations; gen++ {
		fronts := NonDominatedSort(objs)
		rank := make([]int, len(pop))
		crowd := make([]float64, len(pop))
		for fi, front := range fronts {
			d := CrowdingDistance(objs, front)
			for k, idx := range front {
				rank[idx] = fi
				crowd[idx] = d[k]
			}
		}
		next := make([][]int, 0, len(pop))
		for len(next) < len(pop) {
			p1 := g.tournament(rank, crowd)
			p2 := g.tournament(rank, crowd)
			var child []int
			if g.rng.Float64() < g.cfg.CrossProb {
				child = orderCrossover(pop[p1], pop[p2], g.rng)
			} else {
				child = append([]int(nil), pop[p1]...)
			}
			if g.rng.Float64() < g.cfg.MutProb {
				swapMutate(child, g.rng)
			}
			next = append(next, child)
		}
		// Elitism: preserve the current front-0 knee in slot 0.
		if len(fronts) > 0 {
			if knee := Knee(objs, fronts[0]); knee >= 0 {
				next[0] = append([]int(nil), pop[knee]...)
			}
		}
		pop = next
		for i, perm := range pop {
			objs[i] = g.evaluate(ctx, perm)
		}
	}

	fronts := NonDominatedSort(objs)
	knee := Knee(objs, fronts[0])
	perm := pop[knee]

	free := ctx.Cluster.FreeVec()
	for _, wi := range perm {
		if fitsVec(ctx.Window[wi].Demand, free) {
			return wi
		}
	}
	return perm[0]
}

// evaluate greedily packs jobs in permutation order onto the current free
// resources and returns the resulting per-resource utilization — the
// multi-objective fitness (maximize each resource's utilization).
func (g *Scheduler) evaluate(ctx *sched.PickContext, perm []int) []float64 {
	cl := ctx.Cluster
	free := cl.FreeVec()
	for _, wi := range perm {
		d := ctx.Window[wi].Demand
		if fitsVec(d, free) {
			for r, need := range d {
				free[r] -= need
			}
		}
	}
	out := make([]float64, cl.NumResources())
	for r := range out {
		out[r] = float64(cl.Capacity(r)-free[r]) / float64(cl.Capacity(r))
	}
	return out
}

func (g *Scheduler) tournament(rank []int, crowd []float64) int {
	a := g.rng.Intn(len(rank))
	b := g.rng.Intn(len(rank))
	if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
		return a
	}
	return b
}

func fitsVec(demand, free []int) bool {
	for r, d := range demand {
		if d > free[r] {
			return false
		}
	}
	return true
}

// orderCrossover is the OX operator: keep p1's segment [a,b] in place and
// fill the remaining positions, starting after b and wrapping, with the
// missing values in the order they appear in p2 (also scanned from b+1).
func orderCrossover(p1, p2 []int, rng *rand.Rand) []int {
	n := len(p1)
	a, b := rng.Intn(n), rng.Intn(n)
	if a > b {
		a, b = b, a
	}
	child := make([]int, n)
	used := make([]bool, n)
	for i := a; i <= b; i++ {
		child[i] = p1[i]
		used[p1[i]] = true
	}
	pos := (b + 1) % n
	for k := 0; k < n; k++ {
		v := p2[(b+1+k)%n]
		if used[v] {
			continue
		}
		for pos >= a && pos <= b {
			pos = (pos + 1) % n
		}
		child[pos] = v
		used[v] = true
		pos = (pos + 1) % n
	}
	return child
}

func swapMutate(perm []int, rng *rand.Rand) {
	n := len(perm)
	if n < 2 {
		return
	}
	a, b := rng.Intn(n), rng.Intn(n)
	perm[a], perm[b] = perm[b], perm[a]
}
