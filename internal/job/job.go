// Package job defines the multi-resource HPC job model used throughout the
// reproduction and a plain-text trace format for persisting workloads.
//
// A job is rigid (fixed resource demand, as §I of the paper emphasizes for
// HPC), requests an integral number of units of each schedulable resource
// (nodes, burst-buffer TB, power kW, ...), and carries both its actual
// runtime (known to the trace/simulator) and the user-supplied walltime
// estimate (the only duration the scheduler may see).
package job

import (
	"fmt"
	"sort"
)

// State is a job's position in its lifecycle.
type State int

// Job lifecycle states.
const (
	Queued State = iota
	Running
	Finished
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Job is a rigid multi-resource batch job. Times are seconds from the start
// of the trace. Demand[r] is the number of units of resource r requested;
// the meaning of a unit (node, TB, kW) is fixed by the cluster configuration
// the job is scheduled on.
type Job struct {
	ID       int
	Submit   float64
	Runtime  float64 // actual runtime from the trace; hidden from schedulers
	Walltime float64 // user-supplied estimate; what schedulers plan with
	Demand   []int
	// User attributes the job to a submitting user or project (0 =
	// unattributed). Ownership is workload metadata: schedulers in this
	// reproduction are user-blind, so User feeds per-user accounting
	// (metrics) and the Zipf-skew workload axis, never placement.
	User int

	// Simulation state, managed by internal/sim.
	State State
	Start float64
	End   float64
}

// Validate reports whether the job is well-formed for a system with
// resources capacities caps (nil caps skips the capacity check).
func (j *Job) Validate(caps []int) error {
	if j.Submit < 0 {
		return fmt.Errorf("job %d: negative submit time %v", j.ID, j.Submit)
	}
	if j.Runtime <= 0 {
		return fmt.Errorf("job %d: non-positive runtime %v", j.ID, j.Runtime)
	}
	if j.Walltime <= 0 {
		return fmt.Errorf("job %d: non-positive walltime %v", j.ID, j.Walltime)
	}
	if len(j.Demand) == 0 {
		return fmt.Errorf("job %d: no resource demands", j.ID)
	}
	if caps != nil && len(caps) != len(j.Demand) {
		return fmt.Errorf("job %d: %d demands for %d resources", j.ID, len(j.Demand), len(caps))
	}
	for r, d := range j.Demand {
		if d < 0 {
			return fmt.Errorf("job %d: negative demand %d for resource %d", j.ID, d, r)
		}
		if caps != nil && d > caps[r] {
			return fmt.Errorf("job %d: demand %d exceeds capacity %d of resource %d", j.ID, d, caps[r], r)
		}
	}
	if j.Demand[0] <= 0 {
		return fmt.Errorf("job %d: primary resource demand must be positive", j.ID)
	}
	return nil
}

// Wait returns the queuing delay of a finished or running job.
func (j *Job) Wait() float64 { return j.Start - j.Submit }

// Slowdown returns the ratio of response time (wait+runtime) to runtime,
// the responsiveness metric of §IV-B.
func (j *Job) Slowdown() float64 {
	if j.Runtime <= 0 {
		return 1
	}
	return (j.Wait() + j.Runtime) / j.Runtime
}

// Clone returns a deep copy of the job with simulation state reset, so a
// single workload can be replayed through many schedulers independently.
func (j *Job) Clone() *Job {
	d := make([]int, len(j.Demand))
	copy(d, j.Demand)
	return &Job{
		ID:       j.ID,
		Submit:   j.Submit,
		Runtime:  j.Runtime,
		Walltime: j.Walltime,
		Demand:   d,
		User:     j.User,
	}
}

// CloneAll deep-copies a slice of jobs, resetting simulation state.
func CloneAll(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

// SortBySubmit orders jobs by submit time (stable on ID for ties), the order
// a trace-driven simulator replays them in.
func SortBySubmit(jobs []*Job) {
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
}

// TotalDemandSeconds returns, per resource, the sum over jobs of
// demand*walltime — the numerator of the paper's Eq. (1) before
// normalization (using estimates, as the scheduler would).
func TotalDemandSeconds(jobs []*Job, resources int) []float64 {
	out := make([]float64, resources)
	for _, j := range jobs {
		for r := 0; r < resources && r < len(j.Demand); r++ {
			out[r] += float64(j.Demand[r]) * j.Walltime
		}
	}
	return out
}
