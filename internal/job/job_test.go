package job

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkJob(id int, submit, runtime float64, demand ...int) *Job {
	return &Job{ID: id, Submit: submit, Runtime: runtime, Walltime: runtime * 1.5, Demand: demand}
}

func TestValidate(t *testing.T) {
	caps := []int{100, 50}
	good := mkJob(1, 0, 60, 10, 5)
	if err := good.Validate(caps); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"negative submit", func(j *Job) { j.Submit = -1 }},
		{"zero runtime", func(j *Job) { j.Runtime = 0 }},
		{"zero walltime", func(j *Job) { j.Walltime = 0 }},
		{"no demands", func(j *Job) { j.Demand = nil }},
		{"wrong arity", func(j *Job) { j.Demand = []int{1} }},
		{"negative demand", func(j *Job) { j.Demand = []int{5, -1} }},
		{"over capacity", func(j *Job) { j.Demand = []int{101, 5} }},
		{"zero primary", func(j *Job) { j.Demand = []int{0, 5} }},
	}
	for _, tc := range cases {
		j := mkJob(2, 0, 60, 10, 5)
		tc.mut(j)
		if err := j.Validate(caps); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestWaitAndSlowdown(t *testing.T) {
	j := mkJob(1, 100, 50, 4)
	j.Start = 130
	if j.Wait() != 30 {
		t.Fatalf("Wait = %v, want 30", j.Wait())
	}
	if got := j.Slowdown(); math.Abs(got-(30+50)/50.0) > 1e-12 {
		t.Fatalf("Slowdown = %v", got)
	}
}

func TestCloneResetsSimulationState(t *testing.T) {
	j := mkJob(1, 0, 10, 3, 2)
	j.State = Running
	j.Start = 5
	c := j.Clone()
	if c.State != Queued || c.Start != 0 {
		t.Fatal("Clone must reset simulation state")
	}
	c.Demand[0] = 99
	if j.Demand[0] == 99 {
		t.Fatal("Clone aliased Demand")
	}
}

func TestSortBySubmitStable(t *testing.T) {
	jobs := []*Job{mkJob(3, 10, 1, 1), mkJob(1, 5, 1, 1), mkJob(2, 5, 1, 1)}
	SortBySubmit(jobs)
	if jobs[0].ID != 1 || jobs[1].ID != 2 || jobs[2].ID != 3 {
		t.Fatalf("order = %d,%d,%d", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestTotalDemandSeconds(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Walltime: 10, Demand: []int{2, 0}},
		{ID: 2, Walltime: 5, Demand: []int{1, 4}},
	}
	got := TotalDemandSeconds(jobs, 2)
	if got[0] != 25 || got[1] != 20 {
		t.Fatalf("TotalDemandSeconds = %v", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs := []*Job{
		mkJob(1, 0, 100, 16, 5),
		mkJob(2, 30.5, 200, 8, 0),
		mkJob(3, 61.25, 50, 128, 40),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, jobs, []string{"nodes", "bb"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip count %d, want %d", len(back), len(jobs))
	}
	for i, j := range jobs {
		b := back[i]
		if b.ID != j.ID || math.Abs(b.Submit-j.Submit) > 1e-3 ||
			math.Abs(b.Runtime-j.Runtime) > 1e-3 || b.Demand[0] != j.Demand[0] || b.Demand[1] != j.Demand[1] {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, b, j)
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		jobs := make([]*Job, count)
		for i := range jobs {
			jobs[i] = &Job{
				ID:       i + 1,
				Submit:   float64(rng.Intn(100000)) / 4,
				Runtime:  float64(rng.Intn(10000)+1) / 2,
				Walltime: float64(rng.Intn(20000)+1) / 2,
				Demand:   []int{rng.Intn(100) + 1, rng.Intn(50)},
			}
		}
		SortBySubmit(jobs)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, jobs, []string{"nodes", "bb"}); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil || len(back) != len(jobs) {
			return false
		}
		for i := range jobs {
			if back[i].ID != jobs[i].ID || back[i].Demand[0] != jobs[i].Demand[0] {
				return false
			}
			if math.Abs(back[i].Submit-jobs[i].Submit) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := []string{
		"1 0 10",                     // too few fields
		"x 0 10 20 4",                // bad id
		"1 zero 10 20 4",             // bad submit
		"1 0 10 20 4\n2 0 10 20 4 7", // inconsistent columns
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("malformed trace accepted: %q", c)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "# header\n\n1 0 10 20 4 2\n# trailing\n"
	jobs, err := ReadTrace(strings.NewReader(in))
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs=%v err=%v", jobs, err)
	}
}
