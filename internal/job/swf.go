package job

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Standard Workload Format (SWF) support. SWF is the archive format of the
// Parallel Workloads Archive and the format Theta-style production logs are
// commonly released in; the paper's evaluation starts from such a log
// (§IV-A). An SWF record has 18 whitespace-separated fields:
//
//	 1 job number          7 used memory
//	 2 submit time         8 requested processors
//	 3 wait time           9 requested time (walltime)
//	 4 run time           10 requested memory
//	 5 allocated procs    11 status
//	 6 average cpu time   12-18 user/group/app/queue/partition/preceding/think
//
// ReadSWF maps each record onto the multi-resource Job model: submit <- f2,
// runtime <- f4, walltime <- f9 (falling back to runtime when absent),
// nodes <- f5/ppn (falling back to f8), user <- f12 when present. The
// burst-buffer column is left at zero — workload.AssignDarshanBB fills it,
// mirroring the paper's Darshan join. Records with unusable times or sizes
// (canceled jobs, the -1 sentinels of SWF, non-finite or absurdly large
// values in damaged logs) are skipped; the count of skipped records is
// returned. Structurally broken lines (too few fields, a non-numeric job
// number) are errors: the parser always returns an error rather than
// panicking, whatever the input (FuzzParseSWF pins this).

// SWFOptions tunes SWF interpretation.
type SWFOptions struct {
	// ProcsPerNode divides SWF processor counts into node units
	// (Theta's KNL nodes expose 64 cores; default 1 keeps procs as-is).
	ProcsPerNode int
	// Resources is the demand arity of produced jobs (>=1; node demand
	// occupies index 0, remaining resources start at zero).
	Resources int
	// MaxJobs truncates the import (0 = everything).
	MaxJobs int
}

// ReadSWF parses SWF records from r.
func ReadSWF(r io.Reader, opts SWFOptions) (jobs []*Job, skipped int, err error) {
	if opts.ProcsPerNode <= 0 {
		opts.ProcsPerNode = 1
	}
	if opts.Resources <= 0 {
		opts.Resources = 2
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 9 {
			return nil, skipped, fmt.Errorf("job: swf line %d: %d fields, need >= 9", lineNo, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, skipped, fmt.Errorf("job: swf line %d: job number: %w", lineNo, err)
		}
		submit := parseSWFFloat(f[1])
		runtime := parseSWFFloat(f[3])
		procs := swfCount(f[4])
		if procs <= 0 {
			procs = swfCount(f[7]) // fall back to requested
		}
		walltime := parseSWFFloat(f[8])
		if !(walltime > 0) || walltime > maxSWFSeconds {
			walltime = runtime
		}
		// Skip records a simulator cannot replay: the -1 sentinels of SWF,
		// and non-finite or absurd values (NaN/Inf and beyond-maxSWFSeconds
		// times parse fine but would poison every downstream computation).
		if !(submit >= 0) || submit > maxSWFSeconds ||
			!(runtime > 0) || runtime > maxSWFSeconds || procs <= 0 {
			skipped++
			continue
		}
		user := 0
		if len(f) >= 12 {
			if v, err := strconv.Atoi(f[11]); err == nil && v > 0 {
				user = v
			}
		}
		nodes := (procs + opts.ProcsPerNode - 1) / opts.ProcsPerNode
		demand := make([]int, opts.Resources)
		demand[0] = nodes
		jobs = append(jobs, &Job{
			ID:       id,
			Submit:   submit,
			Runtime:  runtime,
			Walltime: walltime,
			Demand:   demand,
			User:     user,
		})
		if opts.MaxJobs > 0 && len(jobs) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("job: read swf: %w", err)
	}
	SortBySubmit(jobs)
	return jobs, skipped, nil
}

// maxSWFSeconds and maxSWFProcs bound plausible log values: a century of
// seconds and a billion processors. Anything beyond (including +Inf, or
// floats whose int conversion would be implementation-defined) is treated
// as a damaged record, not a hard error.
const (
	maxSWFSeconds = 100 * 365 * 86400.0
	maxSWFProcs   = 1 << 30
)

func parseSWFFloat(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return -1
	}
	return v
}

// swfCount parses a processor count, collapsing sentinels, non-finite
// values, and counts beyond maxSWFProcs to -1 (skipped by the caller).
func swfCount(s string) int {
	v := parseSWFFloat(s)
	if !(v > 0) || v > maxSWFProcs {
		return -1
	}
	return int(v)
}

// WriteSWF emits jobs as SWF records (node demand written as both allocated
// and requested processors, multiplied back by ProcsPerNode; the user id in
// field 12 when set; unknown fields carry the SWF -1 sentinel). Round-trips
// through ReadSWF with the same options.
func WriteSWF(w io.Writer, jobs []*Job, opts SWFOptions) error {
	if opts.ProcsPerNode <= 0 {
		opts.ProcsPerNode = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; SWF export (see internal/job/swf.go for field mapping)")
	for _, j := range jobs {
		procs := j.Demand[0] * opts.ProcsPerNode
		user := j.User
		if user <= 0 {
			user = -1
		}
		fmt.Fprintf(bw, "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 %d -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, procs, procs, j.Walltime, user)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("job: write swf: %w", err)
	}
	return nil
}
