package job

import (
	"math"
	"strings"
	"testing"
)

// TestReadSWFHardening pins the damaged-record policy: non-finite and
// absurdly large values are skipped records (never imported, never a
// panic), and the user column survives the import when present.
func TestReadSWFHardening(t *testing.T) {
	swf := strings.Join([]string{
		"1 0 10 3600 64 -1 -1 64 7200 -1 1 5 5 1 1 -1 -1 -1",     // good, user 5
		"2 NaN 10 3600 64 -1 -1 64 7200 -1 1 5 5 1 1 -1 -1 -1",   // NaN submit
		"3 0 10 +Inf 64 -1 -1 64 7200 -1 1 5 5 1 1 -1 -1 -1",     // Inf runtime
		"4 0 10 3600 1e300 -1 -1 1e300 7200 -1 1 5 5 1 1 -1 -1 -1", // absurd procs
		"5 1e20 10 3600 64 -1 -1 64 7200 -1 1 5 5 1 1 -1 -1 -1",  // beyond a century
		"6 0 10 3600 64 -1 -1 64 NaN -1 1 5 5 1 1 -1 -1 -1",      // NaN walltime: runtime fallback
	}, "\n")
	jobs, skipped, err := ReadSWF(strings.NewReader(swf), SWFOptions{ProcsPerNode: 64, Resources: 2})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
	if len(jobs) != 2 || jobs[0].ID != 1 || jobs[1].ID != 6 {
		t.Fatalf("imported %v", jobs)
	}
	if jobs[0].User != 5 {
		t.Fatalf("user column lost: %+v", jobs[0])
	}
	if jobs[1].Walltime != jobs[1].Runtime {
		t.Fatalf("NaN walltime should fall back to runtime, got %g", jobs[1].Walltime)
	}
}

// TestSWFRoundTripUser pins that the user id survives WriteSWF -> ReadSWF.
func TestSWFRoundTripUser(t *testing.T) {
	orig := []*Job{
		{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Demand: []int{4, 0}, User: 17},
		{ID: 2, Submit: 50, Runtime: 300, Walltime: 300, Demand: []int{16, 0}}, // unattributed
	}
	opts := SWFOptions{ProcsPerNode: 64, Resources: 2}
	var buf strings.Builder
	if err := WriteSWF(&buf, orig, opts); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadSWF(strings.NewReader(buf.String()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].User != 17 || back[1].User != 0 {
		t.Fatalf("users after round trip: %d, %d", back[0].User, back[1].User)
	}
}

// FuzzParseSWF feeds arbitrary bytes to the SWF parser. The contract under
// fuzzing: ReadSWF returns an error for structurally broken input and never
// panics, and every job it does import is finite, well-formed, and sorted
// by submit time.
func FuzzParseSWF(f *testing.F) {
	f.Add([]byte(sampleSWF))
	f.Add([]byte("; comment only\n"))
	f.Add([]byte("# hash comment\n\n"))
	f.Add([]byte("1 0 10 3600 64 -1 -1 64 7200 -1 1 5 5 1 1 -1 -1 -1"))
	f.Add([]byte("1 0 10 3600 64"))                                     // truncated
	f.Add([]byte("x 0 10 3600 64 -1 -1 64 7200"))                       // bad job number
	f.Add([]byte("1 NaN 10 +Inf -Inf -1 -1 1e300 7200 -1 1 5"))        // non-finite soup
	f.Add([]byte("1 0 10 3600 9223372036854775807 -1 -1 1 1"))          // overflow-sized procs
	f.Add([]byte("2 100 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 -1 -1 -1\n1 50 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 -1 -1 -1\n"))
	f.Add([]byte("1\t0\t10\t3600\t64\t-1\t-1\t64\t7200"))               // tab-separated
	f.Add([]byte("-1 -1 -1 -1 -1 -1 -1 -1 -1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, skipped, err := ReadSWF(strings.NewReader(string(data)),
			SWFOptions{ProcsPerNode: 64, Resources: 2, MaxJobs: 4096})
		if err != nil {
			return // rejected loudly: exactly what damage should produce
		}
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		for i, j := range jobs {
			if err := j.Validate(nil); err != nil {
				t.Fatalf("imported job fails validation: %v", err)
			}
			for _, v := range []float64{j.Submit, j.Runtime, j.Walltime} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite field in imported job %+v", j)
				}
			}
			if len(j.Demand) != 2 {
				t.Fatalf("demand arity %d", len(j.Demand))
			}
			if i > 0 && jobs[i-1].Submit > j.Submit {
				t.Fatalf("import not sorted: %g > %g", jobs[i-1].Submit, j.Submit)
			}
		}
	})
}
