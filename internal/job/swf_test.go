package job

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSWF = `; Parallel Workloads Archive style header
; MaxJobs: 5
1 0 10 3600 64 -1 -1 64 7200 -1 1 5 5 1 1 -1 -1 -1
2 100 0 1800 128 -1 -1 128 3600 -1 1 5 5 1 1 -1 -1 -1
3 200 -1 -1 64 -1 -1 64 3600 -1 0 5 5 1 1 -1 -1 -1
4 300 5 60 -1 -1 -1 32 -1 -1 1 5 5 1 1 -1 -1 -1
`

func TestReadSWFBasics(t *testing.T) {
	jobs, skipped, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{ProcsPerNode: 64, Resources: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 has runtime -1: skipped.
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(jobs))
	}
	j1 := jobs[0]
	if j1.ID != 1 || j1.Submit != 0 || j1.Runtime != 3600 || j1.Walltime != 7200 {
		t.Fatalf("job1 = %+v", j1)
	}
	if j1.Demand[0] != 1 { // 64 procs / 64 per node
		t.Fatalf("job1 nodes = %d, want 1", j1.Demand[0])
	}
	if len(j1.Demand) != 2 || j1.Demand[1] != 0 {
		t.Fatalf("job1 demand arity: %v", j1.Demand)
	}
	// Job 4: allocated procs -1, falls back to requested 32 -> ceil(32/64)=1.
	j4 := jobs[2]
	if j4.ID != 4 || j4.Demand[0] != 1 {
		t.Fatalf("job4 = %+v", j4)
	}
	// Walltime fallback to runtime when requested time is -1.
	if j4.Walltime != 60 {
		t.Fatalf("job4 walltime = %v, want runtime fallback 60", j4.Walltime)
	}
}

func TestReadSWFMaxJobs(t *testing.T) {
	jobs, _, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("MaxJobs ignored: %d jobs", len(jobs))
	}
}

func TestReadSWFRejectsShortRecords(t *testing.T) {
	if _, _, err := ReadSWF(strings.NewReader("1 0 10 3600 64"), SWFOptions{}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, _, err := ReadSWF(strings.NewReader("x 0 10 3600 64 -1 -1 64 7200"), SWFOptions{}); err == nil {
		t.Fatal("bad job number accepted")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := []*Job{
		{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Demand: []int{4, 0}},
		{ID: 2, Submit: 50, Runtime: 300, Walltime: 300, Demand: []int{16, 0}},
	}
	opts := SWFOptions{ProcsPerNode: 64, Resources: 2}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig, opts); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadSWF(&buf, opts)
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if len(back) != 2 {
		t.Fatalf("%d jobs", len(back))
	}
	for i := range orig {
		if back[i].ID != orig[i].ID || back[i].Demand[0] != orig[i].Demand[0] ||
			back[i].Runtime != orig[i].Runtime || back[i].Walltime != orig[i].Walltime {
			t.Fatalf("job %d: %+v vs %+v", i, back[i], orig[i])
		}
	}
}

func TestSWFSortsBySubmit(t *testing.T) {
	swf := "2 100 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 -1 -1 -1\n" +
		"1 50 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 -1 -1 -1\n"
	jobs, _, err := ReadSWF(strings.NewReader(swf), SWFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].ID != 1 {
		t.Fatal("SWF import not sorted by submit time")
	}
}
