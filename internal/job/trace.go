package job

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace I/O: a line-oriented plain-text format in the spirit of the Standard
// Workload Format, extended with an arbitrary number of resource columns:
//
//	# comment
//	id submit runtime walltime demand0 demand1 ... demandR-1
//
// Fields are whitespace-separated; times are float seconds; demands are
// integer unit counts. All jobs in one trace must have the same number of
// resource columns.

// WriteTrace writes jobs to w in trace format, preceded by a header comment
// naming the resource columns.
func WriteTrace(w io.Writer, jobs []*Job, resourceNames []string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# id submit runtime walltime %s\n", strings.Join(resourceNames, " "))
	for _, j := range jobs {
		fmt.Fprintf(bw, "%d %.3f %.3f %.3f", j.ID, j.Submit, j.Runtime, j.Walltime)
		for _, d := range j.Demand {
			fmt.Fprintf(bw, " %d", d)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("job: write trace: %w", err)
	}
	return nil
}

// ReadTrace parses a trace written by WriteTrace. Comment lines (#) and
// blank lines are ignored.
func ReadTrace(r io.Reader) ([]*Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var jobs []*Job
	resources := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("job: trace line %d: need at least 5 fields, got %d", lineNo, len(fields))
		}
		if resources == -1 {
			resources = len(fields) - 4
		} else if len(fields)-4 != resources {
			return nil, fmt.Errorf("job: trace line %d: %d resource columns, expected %d", lineNo, len(fields)-4, resources)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("job: trace line %d: id: %w", lineNo, err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("job: trace line %d: submit: %w", lineNo, err)
		}
		runtime, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("job: trace line %d: runtime: %w", lineNo, err)
		}
		walltime, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("job: trace line %d: walltime: %w", lineNo, err)
		}
		demand := make([]int, resources)
		for i := 0; i < resources; i++ {
			demand[i], err = strconv.Atoi(fields[4+i])
			if err != nil {
				return nil, fmt.Errorf("job: trace line %d: demand %d: %w", lineNo, i, err)
			}
		}
		jobs = append(jobs, &Job{ID: id, Submit: submit, Runtime: runtime, Walltime: walltime, Demand: demand})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("job: read trace: %w", err)
	}
	SortBySubmit(jobs)
	return jobs, nil
}
