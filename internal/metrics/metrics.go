// Package metrics computes the paper's evaluation metrics (§IV-B): the
// system-level node and burst-buffer utilizations, the user-level average
// job wait time and average job slowdown, the §V-E average system power, the
// Kiviat normalization used by Figures 7 and 10, and the box-plot statistics
// of Figure 9.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// IdleNodeWatts is the idle draw per node used by the §V-E power accounting
// (60 W, from the PoLiMEr measurements the paper cites).
const IdleNodeWatts = 60.0

// Report summarizes one simulation run.
type Report struct {
	Method   string
	Workload string

	// Utilization per resource in [0,1] (§IV-B metrics 1 and 2).
	Utilization []float64
	// AvgWaitSec is the mean submit->start interval (§IV-B metric 3).
	AvgWaitSec float64
	// AvgSlowdown is the mean (wait+runtime)/runtime (§IV-B metric 4).
	AvgSlowdown float64
	// Jobs is the number of completed jobs; MakespanSec the span from the
	// first event to the last completion.
	Jobs        int
	MakespanSec float64

	// AvgSysPowerKW is the mean power draw of running jobs (kW), present
	// only for power-extended systems (§V-E); AvgTotalPowerKW adds the 60 W
	// idle draw of unused nodes.
	AvgSysPowerKW   float64
	AvgTotalPowerKW float64

	// Users is the number of distinct attributed job owners (Job.User > 0)
	// among the completed jobs; TopUserShare is the heaviest owner's share
	// of attributed node-seconds in [0,1]. Both are zero on unattributed
	// workloads, so reports without the zipf axis are unchanged.
	Users        int
	TopUserShare float64
}

// Collect builds a Report from a finished simulation. powerResource is the
// index of the power pool, or -1 when the system has none.
func Collect(method, workload string, s *sim.Simulator, powerResource int) Report {
	r := Report{Method: method, Workload: workload}
	cl := s.Cluster()
	for res := 0; res < cl.NumResources(); res++ {
		r.Utilization = append(r.Utilization, s.Utilization(res))
	}
	start, end := s.ElapsedWindow()
	r.MakespanSec = end - start

	var waitSum, sdSum float64
	userWork := make(map[int]float64) // attributed node-seconds per owner
	for _, j := range s.Finished() {
		waitSum += j.Wait()
		sdSum += j.Slowdown()
		if j.User > 0 {
			userWork[j.User] += float64(j.Demand[0]) * j.Runtime
		}
	}
	if len(userWork) > 0 {
		r.Users = len(userWork)
		var top, total float64
		for _, w := range userWork {
			total += w
			if w > top {
				top = w
			}
		}
		if total > 0 {
			r.TopUserShare = top / total
		}
	}
	r.Jobs = len(s.Finished())
	if r.Jobs > 0 {
		r.AvgWaitSec = waitSum / float64(r.Jobs)
		r.AvgSlowdown = sdSum / float64(r.Jobs)
	}

	if powerResource >= 0 && r.MakespanSec > 0 {
		// Power units are kW, so unit-seconds / elapsed = average kW.
		r.AvgSysPowerKW = s.ResourceSeconds(powerResource) / r.MakespanSec
		idleNodeSeconds := float64(cl.Capacity(0))*r.MakespanSec - s.ResourceSeconds(0)
		r.AvgTotalPowerKW = r.AvgSysPowerKW + IdleNodeWatts*idleNodeSeconds/r.MakespanSec/1000
	}
	return r
}

// AvgWaitHours converts the wait metric to the hours the paper plots.
func (r Report) AvgWaitHours() float64 { return r.AvgWaitSec / 3600 }

// String renders one summary line.
func (r Report) String() string {
	s := fmt.Sprintf("%-12s %-4s util=%v wait=%.2fh slowdown=%.2f jobs=%d",
		r.Method, r.Workload, fmtUtil(r.Utilization), r.AvgWaitHours(), r.AvgSlowdown, r.Jobs)
	if r.AvgSysPowerKW > 0 {
		s += fmt.Sprintf(" power=%.1fkW", r.AvgSysPowerKW)
	}
	if r.Users > 0 {
		s += fmt.Sprintf(" users=%d top=%.0f%%", r.Users, r.TopUserShare*100)
	}
	return s
}

func fmtUtil(u []float64) string {
	out := "["
	for i, v := range u {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f%%", v*100)
	}
	return out + "]"
}

// KiviatAxes returns the axis labels of the paper's radar charts for a
// report set: per-resource utilizations, 1/avg-wait, 1/avg-slowdown, and —
// when power is present — average system power (Figures 7 and 10).
func KiviatAxes(withPower bool) []string {
	axes := []string{"Node Utilization", "Burst Buffer Utilization"}
	if withPower {
		axes = append(axes, "Avg_SysPower")
	}
	return append(axes, "1/Avg_Wait", "1/Avg_Slowdown")
}

// Kiviat normalizes a set of method reports (one workload) onto [0,1] per
// axis, 1 = best method on that axis, exactly as Figures 7/10 are drawn.
// Rows are returned in the order of the input reports; columns follow
// KiviatAxes(withPower).
func Kiviat(reports []Report, withPower bool) [][]float64 {
	n := len(reports)
	if n == 0 {
		return nil
	}
	var cols [][]float64
	colVal := func(f func(Report) float64) []float64 {
		v := make([]float64, n)
		for i, r := range reports {
			v[i] = f(r)
		}
		return v
	}
	cols = append(cols, colVal(func(r Report) float64 { return r.Utilization[0] }))
	cols = append(cols, colVal(func(r Report) float64 { return r.Utilization[1] }))
	if withPower {
		cols = append(cols, colVal(func(r Report) float64 { return r.AvgSysPowerKW }))
	}
	cols = append(cols, colVal(func(r Report) float64 { return safeInv(r.AvgWaitSec) }))
	cols = append(cols, colVal(func(r Report) float64 { return safeInv(r.AvgSlowdown) }))

	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(cols))
	}
	for c, col := range cols {
		max := 0.0
		for _, v := range col {
			if v > max {
				max = v
			}
		}
		for i, v := range col {
			if max > 0 {
				out[i][c] = v / max
			} else {
				out[i][c] = 1
			}
		}
	}
	return out
}

func safeInv(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	return 1 / x
}

// KiviatArea returns the polygon area of one normalized row — the paper's
// "larger area outlined = better overall performance" reading.
func KiviatArea(row []float64) float64 {
	n := len(row)
	if n < 3 {
		return 0
	}
	area := 0.0
	for i := 0; i < n; i++ {
		area += row[i] * row[(i+1)%n]
	}
	return 0.5 * math.Sin(2*math.Pi/float64(n)) * area
}

// BoxStats are the five-number summary plus mean used by Figure 9.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes BoxStats over samples (which it copies and sorts). Empty
// input returns the zero value.
func Box(samples []float64) BoxStats {
	n := len(samples)
	if n == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return BoxStats{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[n-1],
		Mean:   sum / float64(n),
		N:      n,
	}
}

// quantile performs linear interpolation on sorted data.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
