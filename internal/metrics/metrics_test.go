package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

func run2R(t *testing.T, jobs []*job.Job) *sim.Simulator {
	t.Helper()
	cfg := cluster.Config{Name: "m", Resources: []string{"nodes", "bb"}, Capacities: []int{10, 4}}
	s := sim.New(cfg, sched.NewWindowPolicy(sched.FCFS{}, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCollectBasics(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Submit: 0, Runtime: 100, Walltime: 100, Demand: []int{10, 0}},
		{ID: 2, Submit: 0, Runtime: 100, Walltime: 100, Demand: []int{10, 4}},
	}
	s := run2R(t, jobs)
	r := Collect("FCFS", "T", s, -1)
	if r.Jobs != 2 {
		t.Fatalf("jobs = %d", r.Jobs)
	}
	// Job 2 waits 100s; avg wait 50s; slowdowns (1 + 2)/2.
	if math.Abs(r.AvgWaitSec-50) > 1e-9 {
		t.Fatalf("wait = %v", r.AvgWaitSec)
	}
	if math.Abs(r.AvgSlowdown-1.5) > 1e-9 {
		t.Fatalf("slowdown = %v", r.AvgSlowdown)
	}
	if math.Abs(r.Utilization[0]-1.0) > 1e-9 {
		t.Fatalf("node util = %v", r.Utilization[0])
	}
	if math.Abs(r.MakespanSec-200) > 1e-9 {
		t.Fatalf("makespan = %v", r.MakespanSec)
	}
	if r.AvgWaitHours() != 50.0/3600 {
		t.Fatal("hours conversion wrong")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCollectPower(t *testing.T) {
	cfg := cluster.Config{Name: "p", Resources: []string{"nodes", "bb", "kw"}, Capacities: []int{10, 4, 8}}
	s := sim.New(cfg, sched.NewWindowPolicy(sched.FCFS{}, 10))
	jobs := []*job.Job{
		{ID: 1, Submit: 0, Runtime: 100, Walltime: 100, Demand: []int{5, 0, 4}},
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r := Collect("FCFS", "S6", s, 2)
	// 4 kW for the whole window.
	if math.Abs(r.AvgSysPowerKW-4) > 1e-9 {
		t.Fatalf("sys power = %v", r.AvgSysPowerKW)
	}
	// Idle: 5 node-equivalents idle all along -> 5*60W = 0.3 kW extra.
	if math.Abs(r.AvgTotalPowerKW-4.3) > 1e-9 {
		t.Fatalf("total power = %v", r.AvgTotalPowerKW)
	}
}

func TestKiviatNormalization(t *testing.T) {
	reports := []Report{
		{Method: "A", Utilization: []float64{0.8, 0.4}, AvgWaitSec: 100, AvgSlowdown: 2},
		{Method: "B", Utilization: []float64{0.4, 0.8}, AvgWaitSec: 200, AvgSlowdown: 4},
	}
	rows := Kiviat(reports, false)
	if len(rows) != 2 || len(rows[0]) != 4 {
		t.Fatalf("kiviat shape %dx%d", len(rows), len(rows[0]))
	}
	// A is best on node util, wait, slowdown; B best on bb util.
	if rows[0][0] != 1 || rows[1][0] != 0.5 {
		t.Fatalf("node axis = %v / %v", rows[0][0], rows[1][0])
	}
	if rows[1][1] != 1 || rows[0][1] != 0.5 {
		t.Fatalf("bb axis = %v / %v", rows[0][1], rows[1][1])
	}
	if rows[0][2] != 1 || rows[1][2] != 0.5 {
		t.Fatalf("wait axis = %v / %v", rows[0][2], rows[1][2])
	}
	// Every normalized value must be in [0,1] and each column have a 1.
	for c := 0; c < 4; c++ {
		max := 0.0
		for r := range rows {
			if rows[r][c] < 0 || rows[r][c] > 1 {
				t.Fatal("normalization out of range")
			}
			if rows[r][c] > max {
				max = rows[r][c]
			}
		}
		if max != 1 {
			t.Fatalf("column %d has no best=1", c)
		}
	}
}

func TestKiviatWithPowerAxes(t *testing.T) {
	if len(KiviatAxes(false)) != 4 || len(KiviatAxes(true)) != 5 {
		t.Fatal("axis counts wrong")
	}
	reports := []Report{
		{Method: "A", Utilization: []float64{0.5, 0.5}, AvgWaitSec: 10, AvgSlowdown: 2, AvgSysPowerKW: 300},
		{Method: "B", Utilization: []float64{0.5, 0.5}, AvgWaitSec: 10, AvgSlowdown: 2, AvgSysPowerKW: 150},
	}
	rows := Kiviat(reports, true)
	if len(rows[0]) != 5 {
		t.Fatalf("power kiviat has %d axes", len(rows[0]))
	}
	if rows[0][2] != 1 || rows[1][2] != 0.5 {
		t.Fatalf("power axis = %v / %v", rows[0][2], rows[1][2])
	}
}

func TestKiviatAreaOrdering(t *testing.T) {
	big := KiviatArea([]float64{1, 1, 1, 1})
	small := KiviatArea([]float64{0.5, 0.5, 0.5, 0.5})
	if big <= small {
		t.Fatal("larger polygon should have larger area")
	}
	if got := KiviatArea([]float64{1, 1}); got != 0 {
		t.Fatalf("degenerate polygon area = %v", got)
	}
	// Unit square (4 axes at 1.0) has area 2 with this formula.
	if math.Abs(big-2) > 1e-12 {
		t.Fatalf("unit 4-gon area = %v, want 2", big)
	}
}

func TestBoxKnownValues(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Mean != 3 || b.N != 5 {
		t.Fatalf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v/%v", b.Q1, b.Q3)
	}
	empty := Box(nil)
	if empty.N != 0 {
		t.Fatal("empty box should be zero")
	}
	single := Box([]float64{7})
	if single.Min != 7 || single.Max != 7 || single.Median != 7 {
		t.Fatalf("single box = %+v", single)
	}
}

func TestBoxDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Box(in)
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("Box sorted the caller's slice")
	}
}

// Property: Min <= Q1 <= Median <= Q3 <= Max and Min <= Mean <= Max.
func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return true
		}
		b := Box(vals)
		ordered := b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
		meanOK := b.Mean >= b.Min-1e-9 && b.Mean <= b.Max+1e-9
		return ordered && meanOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) < 2 {
			return true
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := quantile(s, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
