package nn

import (
	"fmt"
	"math"
)

// LeakyReLU applies f(x) = x for x>0, alpha*x otherwise. The paper's state
// module uses leaky rectifiers between its fully-connected layers (§III-A).
// Backward routes on the sign of the retained *output* (for alpha>0 the
// output sign equals the input sign), so no input copy is needed and the
// caller may freely reuse its input slice. The element-wise kernel is
// shape-agnostic, so the batched variants simply reinterpret the buffer as
// bsz rows.
type LeakyReLU struct {
	Alpha float64

	outBuf Vec // layer-owned copy of the last forward output
	ginBuf Vec
	lastN  int // elements retained by the last forward (-1 = none yet)
}

// NewLeakyReLU returns a leaky rectifier with the conventional alpha=0.01
// slope when alpha<=0 is given.
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha <= 0 {
		alpha = 0.01
	}
	return &LeakyReLU{Alpha: alpha, lastN: -1}
}

// Forward applies the activation element-wise.
func (l *LeakyReLU) Forward(x Vec) Vec { return l.ForwardInto(make(Vec, len(x)), x) }

// ForwardInto applies the activation into dst. nil selects the layer-owned
// output buffer, which Backward's sign-routing reads — per the
// BufferedLayer contract the returned buffer must not be mutated before
// Backward.
func (l *LeakyReLU) ForwardInto(dst, x Vec) Vec {
	l.outBuf = Ensure(l.outBuf, len(x))
	l.lastN = len(x)
	for i, v := range x {
		if v > 0 {
			l.outBuf[i] = v
		} else {
			l.outBuf[i] = l.Alpha * v
		}
	}
	if dst == nil {
		return l.outBuf
	}
	if len(dst) != len(x) {
		panic(fmt.Sprintf("nn: LeakyReLU dst len %d, want %d", len(dst), len(x)))
	}
	copy(dst, l.outBuf)
	return dst
}

// Backward routes gradients through the active/leaky regions.
func (l *LeakyReLU) Backward(grad Vec) Vec { return l.BackwardInto(make(Vec, len(grad)), grad) }

// BackwardInto routes gradients into dst (nil selects a layer-owned buffer).
func (l *LeakyReLU) BackwardInto(dst, grad Vec) Vec {
	if l.lastN < 0 {
		panic("nn: LeakyReLU.Backward before Forward")
	}
	if len(grad) != l.lastN {
		panic(fmt.Sprintf("nn: LeakyReLU.Backward got %d grads, want %d", len(grad), l.lastN))
	}
	if dst == nil {
		l.ginBuf = Ensure(l.ginBuf, len(grad))
		dst = l.ginBuf
	}
	if len(dst) != len(grad) {
		panic(fmt.Sprintf("nn: LeakyReLU dst len %d, want %d", len(dst), len(grad)))
	}
	out := l.outBuf[:l.lastN]
	for i, g := range grad {
		if out[i] > 0 {
			dst[i] = g
		} else {
			dst[i] = l.Alpha * g
		}
	}
	return dst
}

// ForwardBatchInto implements BatchLayer; the kernel is element-wise, so the
// batch is just a longer vector.
func (l *LeakyReLU) ForwardBatchInto(dst, x Vec, bsz int) Vec { return l.ForwardInto(dst, x) }

// BackwardBatchInto implements BatchLayer.
func (l *LeakyReLU) BackwardBatchInto(dst, grad Vec, bsz int) Vec { return l.BackwardInto(dst, grad) }

// Params implements Layer (no parameters).
func (l *LeakyReLU) Params() []*Param { return nil }

// OutSize implements Layer.
func (l *LeakyReLU) OutSize(in int) int { return in }

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	outBuf  Vec // layer-owned copy of the last output (backward needs tanh(x))
	ginBuf  Vec
	scratch Vec
	lastN   int
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{lastN: -1} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x Vec) Vec { return t.ForwardInto(make(Vec, len(x)), x) }

// ForwardInto applies tanh into dst (nil selects a layer-owned buffer).
func (t *Tanh) ForwardInto(dst, x Vec) Vec {
	t.outBuf = Ensure(t.outBuf, len(x))
	t.lastN = len(x)
	for i, v := range x {
		t.outBuf[i] = math.Tanh(v)
	}
	if dst == nil {
		t.scratch = Ensure(t.scratch, len(x))
		dst = t.scratch
	}
	if len(dst) != len(x) {
		panic(fmt.Sprintf("nn: Tanh dst len %d, want %d", len(dst), len(x)))
	}
	copy(dst, t.outBuf)
	return dst
}

// Backward multiplies by 1-tanh^2.
func (t *Tanh) Backward(grad Vec) Vec { return t.BackwardInto(make(Vec, len(grad)), grad) }

// BackwardInto multiplies by 1-tanh^2 into dst (nil selects a layer-owned
// buffer).
func (t *Tanh) BackwardInto(dst, grad Vec) Vec {
	if t.lastN < 0 {
		panic("nn: Tanh.Backward before Forward")
	}
	if len(grad) != t.lastN {
		panic(fmt.Sprintf("nn: Tanh.Backward got %d grads, want %d", len(grad), t.lastN))
	}
	if dst == nil {
		t.ginBuf = Ensure(t.ginBuf, len(grad))
		dst = t.ginBuf
	}
	if len(dst) != len(grad) {
		panic(fmt.Sprintf("nn: Tanh dst len %d, want %d", len(dst), len(grad)))
	}
	for i, g := range grad {
		y := t.outBuf[i]
		dst[i] = g * (1 - y*y)
	}
	return dst
}

// ForwardBatchInto implements BatchLayer (element-wise kernel).
func (t *Tanh) ForwardBatchInto(dst, x Vec, bsz int) Vec { return t.ForwardInto(dst, x) }

// BackwardBatchInto implements BatchLayer.
func (t *Tanh) BackwardBatchInto(dst, grad Vec, bsz int) Vec { return t.BackwardInto(dst, grad) }

// Params implements Layer (no parameters).
func (t *Tanh) Params() []*Param { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize(in int) int { return in }

// SoftmaxLayer turns logits into a probability distribution. Backward
// applies the full softmax Jacobian, so it composes with any upstream loss
// gradient (the policy-gradient baseline feeds dL/dp directly). In batch
// mode each row is normalized independently.
type SoftmaxLayer struct {
	outBuf  Vec // layer-owned copy of the last output distribution(s)
	ginBuf  Vec
	scratch Vec
	lastN   int // total elements
	lastB   int // rows
}

// NewSoftmax returns a softmax output layer.
func NewSoftmax() *SoftmaxLayer { return &SoftmaxLayer{lastN: -1} }

// Forward computes a numerically-stable softmax.
func (s *SoftmaxLayer) Forward(x Vec) Vec { return s.ForwardInto(make(Vec, len(x)), x) }

// ForwardInto computes the softmax into dst (nil selects a layer-owned
// buffer).
func (s *SoftmaxLayer) ForwardInto(dst, x Vec) Vec { return s.ForwardBatchInto(dst, x, 1) }

// ForwardBatchInto normalizes each of the bsz rows independently.
func (s *SoftmaxLayer) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	if bsz <= 0 || len(x)%bsz != 0 {
		panic(fmt.Sprintf("nn: Softmax batch %d does not divide input %d", bsz, len(x)))
	}
	n := len(x) / bsz
	s.outBuf = Ensure(s.outBuf, len(x))
	s.lastN, s.lastB = len(x), bsz
	for b := 0; b < bsz; b++ {
		SoftmaxInto(s.outBuf[b*n:(b+1)*n], x[b*n:(b+1)*n])
	}
	if dst == nil {
		s.scratch = Ensure(s.scratch, len(x))
		dst = s.scratch
	}
	if len(dst) != len(x) {
		panic(fmt.Sprintf("nn: Softmax dst len %d, want %d", len(dst), len(x)))
	}
	copy(dst, s.outBuf)
	return dst
}

// Backward computes J^T grad where J is the softmax Jacobian.
func (s *SoftmaxLayer) Backward(grad Vec) Vec { return s.BackwardInto(make(Vec, len(grad)), grad) }

// BackwardInto computes J^T grad into dst (nil selects a layer-owned buffer).
func (s *SoftmaxLayer) BackwardInto(dst, grad Vec) Vec {
	if s.lastN < 0 {
		panic("nn: Softmax.Backward before Forward")
	}
	return s.BackwardBatchInto(dst, grad, s.lastB)
}

// BackwardBatchInto applies each row's softmax Jacobian independently.
func (s *SoftmaxLayer) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	if s.lastN < 0 {
		panic("nn: Softmax.Backward before Forward")
	}
	if len(grad) != s.lastN || bsz != s.lastB {
		panic(fmt.Sprintf("nn: Softmax.Backward got %d grads (%d rows), want %d (%d rows)",
			len(grad), bsz, s.lastN, s.lastB))
	}
	if dst == nil {
		s.ginBuf = Ensure(s.ginBuf, len(grad))
		dst = s.ginBuf
	}
	n := len(grad) / bsz
	for b := 0; b < bsz; b++ {
		p := s.outBuf[b*n : (b+1)*n]
		g := grad[b*n : (b+1)*n]
		d := dst[b*n : (b+1)*n]
		dot := Dot(g, p)
		for i := range p {
			d[i] = p[i] * (g[i] - dot)
		}
	}
	return dst
}

// Params implements Layer (no parameters).
func (s *SoftmaxLayer) Params() []*Param { return nil }

// OutSize implements Layer.
func (s *SoftmaxLayer) OutSize(in int) int { return in }

var (
	_ BatchLayer = (*LeakyReLU)(nil)
	_ BatchLayer = (*Tanh)(nil)
	_ BatchLayer = (*SoftmaxLayer)(nil)
)
