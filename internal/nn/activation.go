package nn

import (
	"fmt"
	"math"
)

// LeakyReLU applies f(x) = x for x>0, alpha*x otherwise. The paper's state
// module uses leaky rectifiers between its fully-connected layers (§III-A).
type LeakyReLU struct {
	Alpha  float64
	lastIn Vec
}

// NewLeakyReLU returns a leaky rectifier with the conventional alpha=0.01
// slope when alpha<=0 is given.
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha <= 0 {
		alpha = 0.01
	}
	return &LeakyReLU{Alpha: alpha}
}

// Forward applies the activation element-wise.
func (l *LeakyReLU) Forward(x Vec) Vec {
	l.lastIn = x
	out := make(Vec, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = l.Alpha * v
		}
	}
	return out
}

// Backward routes gradients through the active/leaky regions.
func (l *LeakyReLU) Backward(grad Vec) Vec {
	if l.lastIn == nil {
		panic("nn: LeakyReLU.Backward before Forward")
	}
	out := make(Vec, len(grad))
	for i, g := range grad {
		if l.lastIn[i] > 0 {
			out[i] = g
		} else {
			out[i] = l.Alpha * g
		}
	}
	return out
}

// Params implements Layer (no parameters).
func (l *LeakyReLU) Params() []*Param { return nil }

// OutSize implements Layer.
func (l *LeakyReLU) OutSize(in int) int { return in }

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	lastOut Vec
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x Vec) Vec {
	out := make(Vec, len(x))
	for i, v := range x {
		out[i] = math.Tanh(v)
	}
	t.lastOut = out
	return out
}

// Backward multiplies by 1-tanh^2.
func (t *Tanh) Backward(grad Vec) Vec {
	if t.lastOut == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	out := make(Vec, len(grad))
	for i, g := range grad {
		y := t.lastOut[i]
		out[i] = g * (1 - y*y)
	}
	return out
}

// Params implements Layer (no parameters).
func (t *Tanh) Params() []*Param { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize(in int) int { return in }

// SoftmaxLayer turns logits into a probability distribution. Backward
// applies the full softmax Jacobian, so it composes with any upstream loss
// gradient (the policy-gradient baseline feeds dL/dp directly).
type SoftmaxLayer struct {
	lastOut Vec
}

// NewSoftmax returns a softmax output layer.
func NewSoftmax() *SoftmaxLayer { return &SoftmaxLayer{} }

// Forward computes a numerically-stable softmax.
func (s *SoftmaxLayer) Forward(x Vec) Vec {
	out := Softmax(x)
	s.lastOut = out
	return out
}

// Backward computes J^T grad where J is the softmax Jacobian.
func (s *SoftmaxLayer) Backward(grad Vec) Vec {
	p := s.lastOut
	if p == nil {
		panic("nn: Softmax.Backward before Forward")
	}
	if len(grad) != len(p) {
		panic(fmt.Sprintf("nn: Softmax.Backward got %d grads, want %d", len(grad), len(p)))
	}
	dot := Dot(grad, p)
	out := make(Vec, len(p))
	for i := range p {
		out[i] = p[i] * (grad[i] - dot)
	}
	return out
}

// Params implements Layer (no parameters).
func (s *SoftmaxLayer) Params() []*Param { return nil }

// OutSize implements Layer.
func (s *SoftmaxLayer) OutSize(in int) int { return in }
