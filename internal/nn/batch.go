package nn

import "fmt"

// Batched returns a BatchLayer view of l. Layers with native minibatch
// kernels are returned as-is; anything else is wrapped in an adapter that
// runs the scalar path once per row, re-running the forward pass during
// backward so the wrapped layer's single-sample state is correct for each
// row. The adapter exists so exotic modules (MultiBranch, user-provided
// state modules) compose with the batched training engine; hot-path layers
// all implement BatchLayer natively.
func Batched(l Layer) BatchLayer {
	if bl, ok := l.(BatchLayer); ok {
		return bl
	}
	return &batchAdapter{l: l}
}

type batchAdapter struct {
	l Layer

	inBuf  Vec // copy of the batch input, for backward recomputation
	outBuf Vec
	ginBuf Vec
	inDim  int
	outDim int
	lastB  int
}

func (a *batchAdapter) Forward(x Vec) Vec     { return a.l.Forward(x) }
func (a *batchAdapter) Backward(grad Vec) Vec { return a.l.Backward(grad) }
func (a *batchAdapter) Params() []*Param      { return a.l.Params() }
func (a *batchAdapter) OutSize(in int) int    { return a.l.OutSize(in) }

func (a *batchAdapter) ForwardInto(dst, x Vec) Vec {
	if bl, ok := a.l.(BufferedLayer); ok {
		return bl.ForwardInto(dst, x)
	}
	y := a.l.Forward(x)
	if dst != nil {
		copy(dst, y)
		return dst
	}
	return y
}

func (a *batchAdapter) BackwardInto(dst, grad Vec) Vec {
	if bl, ok := a.l.(BufferedLayer); ok {
		return bl.BackwardInto(dst, grad)
	}
	g := a.l.Backward(grad)
	if dst != nil {
		copy(dst, g)
		return dst
	}
	return g
}

func (a *batchAdapter) forwardRow(dst, x Vec) Vec {
	if bl, ok := a.l.(BufferedLayer); ok {
		return bl.ForwardInto(dst, x)
	}
	return a.l.Forward(x)
}

// ForwardBatchInto runs the wrapped layer once per row.
func (a *batchAdapter) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	if bsz <= 0 || len(x)%bsz != 0 {
		panic(fmt.Sprintf("nn: Batched forward batch %d does not divide input %d", bsz, len(x)))
	}
	a.inDim = len(x) / bsz
	a.outDim = a.l.OutSize(a.inDim)
	a.lastB = bsz
	a.inBuf = Ensure(a.inBuf, len(x))
	copy(a.inBuf, x)
	if dst == nil {
		a.outBuf = Ensure(a.outBuf, bsz*a.outDim)
		dst = a.outBuf
	}
	if len(dst) != bsz*a.outDim {
		panic(fmt.Sprintf("nn: Batched forward dst len %d, want %d x %d", len(dst), bsz, a.outDim))
	}
	for bi := 0; bi < bsz; bi++ {
		a.forwardRow(dst[bi*a.outDim:(bi+1)*a.outDim], a.inBuf[bi*a.inDim:(bi+1)*a.inDim])
	}
	return dst
}

// BackwardBatchInto replays each row's forward pass to restore the wrapped
// layer's state, then runs its backward.
func (a *batchAdapter) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	if a.lastB == 0 {
		panic("nn: Batched backward before forward")
	}
	if bsz != a.lastB || len(grad) != bsz*a.outDim {
		panic(fmt.Sprintf("nn: Batched backward got %d grads (%d rows), want %d x %d", len(grad), bsz, a.lastB, a.outDim))
	}
	if dst == nil {
		a.ginBuf = Ensure(a.ginBuf, bsz*a.inDim)
		dst = a.ginBuf
	}
	if len(dst) != bsz*a.inDim {
		panic(fmt.Sprintf("nn: Batched backward dst len %d, want %d x %d", len(dst), bsz, a.inDim))
	}
	for bi := 0; bi < bsz; bi++ {
		row := a.inBuf[bi*a.inDim : (bi+1)*a.inDim]
		a.forwardRow(nil, row)
		d := dst[bi*a.inDim : (bi+1)*a.inDim]
		if bl, ok := a.l.(BufferedLayer); ok {
			bl.BackwardInto(d, grad[bi*a.outDim:(bi+1)*a.outDim])
		} else {
			copy(d, a.l.Backward(grad[bi*a.outDim:(bi+1)*a.outDim]))
		}
	}
	return dst
}

var _ BatchLayer = (*batchAdapter)(nil)

// SharedCloner lets user-provided layers participate in SharedClone.
type SharedCloner interface {
	// SharedClone returns a structural copy sharing parameter Values with
	// the receiver but owning fresh gradient buffers and forward state.
	SharedClone() Layer
}

// shadowParam returns a Param aliasing p's Value storage with a private
// gradient buffer. Workers read weights through the shared Value slice and
// accumulate into their own Grad, which the training engine reduces into the
// master gradient before the optimizer step.
func shadowParam(p *Param) *Param {
	return &Param{Name: p.Name, Value: p.Value, Grad: make(Vec, len(p.Grad))}
}

// SharedClone returns a copy of l that shares parameter Values with l but
// owns fresh gradient buffers and forward-pass state, so the copy can run
// concurrent forward/backward passes against the same weights (data-parallel
// minibatch training). The second result reports whether l (and every
// sub-layer) is of a supported type; custom layers can opt in via
// SharedCloner.
func SharedClone(l Layer) (Layer, bool) {
	return cloneWith(l, shadowParam, func(c Layer) (Layer, bool) {
		if sc, ok := c.(SharedCloner); ok {
			return sc.SharedClone(), true
		}
		return nil, false
	})
}

// cloneWith structurally copies a network, rebuilding each parameter through
// the given view (shadowParam for live-weight clones, snapshotParam for
// published-snapshot clones) with fresh forward state throughout. Layers
// outside the built-in set are delegated to custom (nil rejects them); the
// first unsupported sub-layer fails the whole clone.
func cloneWith(l Layer, view func(*Param) *Param, custom func(Layer) (Layer, bool)) (Layer, bool) {
	switch t := l.(type) {
	case *Dense:
		return &Dense{In: t.In, Out: t.Out, W: view(t.W), B: view(t.B)}, true
	case *LeakyReLU:
		return &LeakyReLU{Alpha: t.Alpha, lastN: -1}, true
	case *Tanh:
		return NewTanh(), true
	case *SoftmaxLayer:
		return NewSoftmax(), true
	case *Conv1D:
		return &Conv1D{
			InCh: t.InCh, OutCh: t.OutCh, InLen: t.InLen,
			Kernel: t.Kernel, Stride: t.Stride, outLen: t.outLen,
			W: view(t.W), B: view(t.B),
		}, true
	case *MaxPool1D:
		return &MaxPool1D{Ch: t.Ch, InLen: t.InLen, Pool: t.Pool, outLen: t.outLen}, true
	case *Sequential:
		layers := make([]Layer, len(t.Layers))
		for i, child := range t.Layers {
			c, ok := cloneWith(child, view, custom)
			if !ok {
				return nil, false
			}
			layers[i] = c
		}
		return &Sequential{Layers: layers}, true
	case *MultiBranch:
		branches := make([]Branch, len(t.Branches))
		for i, b := range t.Branches {
			c, ok := cloneWith(b.Net, view, custom)
			if !ok {
				return nil, false
			}
			branches[i] = Branch{Ranges: b.Ranges, Net: c}
		}
		return &MultiBranch{InSize: t.InSize, Branches: branches, outSizes: append([]int(nil), t.outSizes...)}, true
	}
	if custom != nil {
		return custom(l)
	}
	return nil, false
}
