package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the scratch-buffer and minibatch engine: every Into /
// Batch path must reproduce the scalar allocating path across randomized
// layer shapes, both forward values and accumulated gradients.

const kernelTol = 1e-12

func randVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func maxAbsDiff(a, b Vec) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// freshPair builds two structurally-identical layers with identical weights
// from the same seed, so one can run the reference path and the other the
// path under test without sharing gradient or forward state.
func freshPair(build func(rng *rand.Rand) Layer, seed int64) (ref, dut Layer) {
	return build(rand.New(rand.NewSource(seed))), build(rand.New(rand.NewSource(seed)))
}

func zeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

func compareGrads(t *testing.T, ref, dut Layer, label string) {
	t.Helper()
	rp, dp := ref.Params(), dut.Params()
	for i := range rp {
		if d := maxAbsDiff(rp[i].Grad, dp[i].Grad); d > kernelTol {
			t.Fatalf("%s: param %s grad diverges by %g", label, rp[i].Name, d)
		}
	}
}

// layerCase describes one randomized topology for the equivalence sweep.
type layerCase struct {
	name  string
	in    int
	build func(rng *rand.Rand) Layer
}

func sweepCases(rng *rand.Rand) []layerCase {
	in := 3 + rng.Intn(40)
	out := 1 + rng.Intn(30)
	hidden := 2 + rng.Intn(20)
	ch := 1 + rng.Intn(3)
	clen := 6 + rng.Intn(20)
	kernel := 2 + rng.Intn(4)
	stride := 1 + rng.Intn(2)
	pool := 2
	convOut := (clen-kernel)/stride + 1
	return []layerCase{
		{"dense", in, func(r *rand.Rand) Layer { return NewDense(in, out, HeInit, r) }},
		{"leakyrelu", in, func(r *rand.Rand) Layer { return NewLeakyReLU(0.01) }},
		{"tanh", in, func(r *rand.Rand) Layer { return NewTanh() }},
		{"softmax", in, func(r *rand.Rand) Layer { return NewSoftmax() }},
		{"conv1d", ch * clen, func(r *rand.Rand) Layer { return NewConv1D(ch, clen, 2, kernel, stride, r) }},
		{"maxpool", ch * clen, func(r *rand.Rand) Layer { return NewMaxPool1D(ch, clen, pool) }},
		{"sequential", in, func(r *rand.Rand) Layer {
			return NewSequential(in,
				NewDense(in, hidden, HeInit, r), NewLeakyReLU(0.01),
				NewDense(hidden, out, XavierInit, r),
			)
		}},
		{"conv-stack", clen, func(r *rand.Rand) Layer {
			conv := NewConv1D(1, clen, 2, kernel, stride, r)
			return NewSequential(clen,
				conv, NewLeakyReLU(0.01),
				NewDense(2*convOut, out, HeInit, r),
			)
		}},
		{"multibranch", in, func(r *rand.Rand) Layer {
			half := in / 2
			return NewMultiBranch(in,
				Branch{Ranges: [][2]int{{0, half}}, Net: NewDense(half, 4, HeInit, r)},
				Branch{Ranges: [][2]int{{half / 2, in}}, Net: NewDense(in-half/2, 3, HeInit, r)},
			)
		}},
	}
}

// TestForwardIntoMatchesForward: the scratch-buffer scalar path must equal
// the allocating path bit for bit, for caller-provided and layer-owned dst.
func TestForwardIntoMatchesForward(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		shapes := rand.New(rand.NewSource(int64(1000 + trial)))
		for _, tc := range sweepCases(shapes) {
			ref, dut := freshPair(tc.build, int64(trial))
			bdut, ok := dut.(BufferedLayer)
			if !ok {
				t.Fatalf("%s does not implement BufferedLayer", tc.name)
			}
			dataRng := rand.New(rand.NewSource(int64(5000 + trial)))
			x := randVec(dataRng, tc.in)
			want := ref.Forward(x)
			got := bdut.ForwardInto(nil, x)
			if d := maxAbsDiff(want, got); d > 0 {
				t.Fatalf("%s trial %d: ForwardInto(nil) diverges by %g", tc.name, trial, d)
			}
			dst := make(Vec, len(want))
			got = bdut.ForwardInto(dst, x)
			if d := maxAbsDiff(want, got); d > 0 {
				t.Fatalf("%s trial %d: ForwardInto(dst) diverges by %g", tc.name, trial, d)
			}
			// Backward through both paths with the same output gradient.
			g := randVec(dataRng, len(want))
			zeroGrads(ref)
			zeroGrads(dut)
			wantGin := ref.Backward(g)
			gotGin := bdut.BackwardInto(nil, g)
			if d := maxAbsDiff(wantGin, gotGin); d > 0 {
				t.Fatalf("%s trial %d: BackwardInto diverges by %g", tc.name, trial, d)
			}
			compareGrads(t, ref, dut, tc.name)
		}
	}
}

// TestBatchMatchesScalar: one ForwardBatchInto/BackwardBatchInto over B rows
// must reproduce B sequential scalar passes — outputs, input gradients, and
// accumulated parameter gradients.
func TestBatchMatchesScalar(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		shapes := rand.New(rand.NewSource(int64(2000 + trial)))
		bsz := 1 + shapes.Intn(9)
		for _, tc := range sweepCases(shapes) {
			ref, dut := freshPair(tc.build, int64(100+trial))
			bdut := Batched(dut)
			dataRng := rand.New(rand.NewSource(int64(7000 + trial)))
			outDim := ref.OutSize(tc.in)
			xs := randVec(dataRng, bsz*tc.in)
			gs := randVec(dataRng, bsz*outDim)

			// Reference: scalar loop in row order.
			zeroGrads(ref)
			wantOut := make(Vec, 0, bsz*outDim)
			wantGin := make(Vec, 0, bsz*tc.in)
			for b := 0; b < bsz; b++ {
				wantOut = append(wantOut, ref.Forward(xs[b*tc.in:(b+1)*tc.in])...)
			}
			// Scalar Backward must follow its own Forward per row, so rerun.
			for b := 0; b < bsz; b++ {
				ref.Forward(xs[b*tc.in : (b+1)*tc.in])
				wantGin = append(wantGin, ref.Backward(gs[b*outDim:(b+1)*outDim])...)
			}

			zeroGrads(dut)
			gotOut := bdut.ForwardBatchInto(nil, xs, bsz)
			if d := maxAbsDiff(wantOut, gotOut); d > kernelTol {
				t.Fatalf("%s trial %d bsz %d: batch forward diverges by %g", tc.name, trial, bsz, d)
			}
			gotGin := bdut.BackwardBatchInto(nil, gs, bsz)
			if d := maxAbsDiff(wantGin, gotGin); d > kernelTol {
				t.Fatalf("%s trial %d bsz %d: batch input grad diverges by %g", tc.name, trial, bsz, d)
			}
			// The reference accumulated two forward passes' worth of nothing
			// (forward does not touch grads) and one backward per row; the
			// batch path one backward over the batch. Grads must match.
			compareGrads(t, ref, dut, tc.name)
		}
	}
}

// TestBatchedDenseGradCheck: finite-difference check straight through the
// minibatch kernel, proving the matrix-matrix forward/backward pair is a
// consistent derivative, not just consistent with the scalar path.
func TestBatchedDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const in, out, bsz = 7, 5, 4
	d := NewDense(in, out, HeInit, rng)
	x := randVec(rng, bsz*in)
	target := randVec(rng, bsz*out)
	loss := func() float64 {
		y := d.ForwardBatchInto(nil, x, bsz)
		l, _ := MSE(y, target)
		return l
	}
	backward := func() {
		y := d.ForwardBatchInto(nil, x, bsz)
		_, g := MSE(y, target)
		d.BackwardBatchInto(nil, g, bsz)
	}
	if worst := GradCheck(d.Params(), loss, backward, 1e-5, 0); worst > 1e-4 {
		t.Fatalf("batched Dense gradient check failed: max rel err %v", worst)
	}
}

// TestDenseInputAliasing is the regression test for the input-retention
// hazard: Forward used to retain the caller's slice, so mutating it between
// Forward and Backward corrupted the weight gradient. Layers now copy.
func TestDenseInputAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref, dut := freshPair(func(r *rand.Rand) Layer { return NewDense(6, 4, HeInit, r) }, 42)
	x := randVec(rng, 6)
	g := randVec(rng, 4)

	xCopy := append(Vec(nil), x...)
	ref.Forward(xCopy)
	zeroGrads(ref)
	ref.Backward(g)

	dut.Forward(x)
	Fill(x, 1e9) // caller reuses its buffer before Backward
	zeroGrads(dut)
	dut.Backward(g)

	compareGrads(t, ref, dut, "dense-aliasing")
}

// TestActivationInputAliasing covers the same hazard for activations, which
// also used to retain the caller's slice.
func TestActivationInputAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewLeakyReLU(0.01)
	x := Vec{1, -2, 3, -4}
	l.Forward(x)
	x[0], x[1] = -1, 2 // flip signs after forward
	gin := l.Backward(Vec{1, 1, 1, 1})
	want := Vec{1, 0.01, 1, 0.01} // routing must follow the ORIGINAL input
	if d := maxAbsDiff(gin, want); d > 0 {
		t.Fatalf("LeakyReLU used mutated input: gin=%v want %v", gin, want)
	}
	_ = rng
}

// TestSharedClone: clones must share weight values (an update through the
// master is visible to the clone) but keep private gradients.
func TestSharedClone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	master := NewSequential(8,
		NewDense(8, 6, HeInit, rng), NewLeakyReLU(0.01),
		NewDense(6, 3, HeInit, rng),
	)
	cloneL, ok := SharedClone(master)
	if !ok {
		t.Fatal("SharedClone rejected a Dense stack")
	}
	clone := cloneL.(*Sequential)

	x := randVec(rng, 8)
	want := master.Forward(x)
	got := clone.Forward(x)
	if d := maxAbsDiff(want, got); d > 0 {
		t.Fatalf("clone forward diverges by %g", d)
	}

	// Mutate a master weight; the clone must see it (shared Values).
	master.Params()[0].Value[0] += 0.5
	want = master.Forward(x)
	got = clone.Forward(x)
	if d := maxAbsDiff(want, got); d > 0 {
		t.Fatalf("clone did not observe master weight update (diff %g)", d)
	}

	// Backward on the clone must not touch master gradients.
	zeroGrads(master)
	g := randVec(rng, 3)
	clone.Backward(g)
	for _, p := range master.Params() {
		for _, v := range p.Grad {
			if v != 0 {
				t.Fatal("clone backward leaked into master gradients")
			}
		}
	}

	if _, ok := SharedClone(&batchAdapter{}); ok {
		t.Fatal("SharedClone accepted an unsupported layer type")
	}
}

// TestSequentialForwardIntoZeroAlloc: after warm-up, the scratch-buffer path
// must not allocate — the property the §V-F decision-latency target rests
// on.
func TestSequentialForwardIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(32,
		NewDense(32, 24, HeInit, rng), NewLeakyReLU(0.01),
		NewDense(24, 8, HeInit, rng),
	)
	x := randVec(rng, 32)
	g := randVec(rng, 8)
	net.ForwardInto(nil, x)
	net.BackwardInto(nil, g)
	allocs := testing.AllocsPerRun(50, func() {
		net.ForwardInto(nil, x)
		net.BackwardInto(nil, g)
	})
	if allocs != 0 {
		t.Fatalf("scratch-buffer pass allocates %v times per run, want 0", allocs)
	}
}

// TestEnsure pins the scratch-buffer growth contract.
func TestEnsure(t *testing.T) {
	v := Ensure(nil, 4)
	if len(v) != 4 {
		t.Fatalf("Ensure(nil,4) len %d", len(v))
	}
	w := Ensure(v, 2)
	if &w[0] != &v[0] || len(w) != 2 {
		t.Fatal("Ensure must reuse capacity when shrinking")
	}
	u := Ensure(v, 100)
	if len(u) != 100 {
		t.Fatalf("Ensure growth len %d", len(u))
	}
}
