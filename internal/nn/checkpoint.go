// Durable training state. SaveWeights/LoadWeights (serialize.go) persist a
// model's weights only — enough to evaluate, not enough to resume training:
// Adam carries per-parameter moment vectors and a step counter, pipelined
// rollout-training additionally reads a published snapshot buffer per Param,
// and exploration draws from an rng whose position matters. TrainState
// captures all of it in one versioned, self-describing container, and
// CursorSource makes the rng position itself serializable.
//
// The contract shared by every loader in this family: decode and validate
// the WHOLE container first, mutate nothing until validation passes. A
// corrupt, truncated, or version-mismatched input fails with a descriptive
// error and leaves the receiver exactly as it was.
package nn

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// encoding/gob allocates type IDs from a process-global counter in
// first-encoded order, so the bytes a container encodes to depend on what
// the process happened to encode earlier — a checkpoint written mid-run
// and a model file written at exit would differ byte-for-byte from the
// same data written by a fresh process. This repo's outputs are supposed
// to be bitwise reproducible for fixed inputs, so every gob container
// package registers a warm-up that encodes its zero-valued containers to
// io.Discard, and every encode entry point calls GobWarmup first: all
// container types then claim their IDs in one fixed, package-init-driven
// order, making encoded bytes a pure function of the data for a given
// binary. (Decoding never needs this — gob streams describe their types
// inline.)

var (
	gobWarmMu   sync.Mutex
	gobWarmFns  []func(*gob.Encoder)
	gobWarmOnce sync.Once
)

// RegisterGobContainer registers a warm-up hook that encodes a package's
// zero-valued gob containers. Call it from package init; hooks run in
// registration (package-init) order, once, at the first GobWarmup call.
func RegisterGobContainer(f func(*gob.Encoder)) {
	gobWarmMu.Lock()
	defer gobWarmMu.Unlock()
	gobWarmFns = append(gobWarmFns, f)
}

// GobWarmup claims gob type IDs for every registered container in fixed
// order. Encode entry points call it before their first Encode.
func GobWarmup() {
	gobWarmOnce.Do(func() {
		enc := gob.NewEncoder(io.Discard)
		gobWarmMu.Lock()
		fns := gobWarmFns
		gobWarmMu.Unlock()
		for _, f := range fns {
			f(enc)
		}
	})
}

func init() {
	RegisterGobContainer(func(enc *gob.Encoder) {
		enc.Encode(&envelope{})
		enc.Encode(&weightsFile{})
		enc.Encode(&TrainState{})
	})
}

// envelopeMagic versions the checksummed framing itself.
const envelopeMagic = "mrsch-ckpt-envelope-v1"

// envelope is the outer frame of every checkpoint file: the gob-encoded
// payload plus its SHA-256. gob alone detects truncation and structural
// damage but happily decodes a flipped bit inside a float vector; the
// digest turns ANY byte-level corruption into a loud load error instead of
// silently training on damaged state.
type envelope struct {
	Magic string
	Sum   [32]byte
	Data  []byte
}

// EncodeChecksummed gob-encodes v and writes it to w wrapped in a
// SHA-256-checksummed envelope. The checkpoint containers (dfp, rl,
// experiments) all write through this frame.
func EncodeChecksummed(w io.Writer, v any) error {
	GobWarmup()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("nn: encoding payload: %w", err)
	}
	env := envelope{Magic: envelopeMagic, Sum: sha256.Sum256(buf.Bytes()), Data: buf.Bytes()}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("nn: encoding envelope: %w", err)
	}
	return nil
}

// DecodeChecksummed reads an envelope written by EncodeChecksummed,
// verifies the digest, and decodes the payload into v. Corrupt or
// truncated input fails before v sees a single byte.
func DecodeChecksummed(r io.Reader, v any) error {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("nn: decoding envelope (corrupt or truncated file?): %w", err)
	}
	if env.Magic != envelopeMagic {
		return fmt.Errorf("nn: bad envelope magic %q (want %q; not a checkpoint file or an incompatible version)", env.Magic, envelopeMagic)
	}
	if sha256.Sum256(env.Data) != env.Sum {
		return fmt.Errorf("nn: payload checksum mismatch: file is corrupt")
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Data)).Decode(v); err != nil {
		return fmt.Errorf("nn: decoding payload: %w", err)
	}
	return nil
}

const trainStateMagic = "mrsch-nn-train-v1"

// TrainState is the serializable training state of a parameter set: live
// weight vectors, the published copy-on-write snapshot of each Param that
// has one (pipelined training), and the Adam step counter with both moment
// vectors per parameter. It is the nn-layer section of agent checkpoints
// (dfp, rl) and is gob-encodable as-is.
type TrainState struct {
	Magic  string
	Params []savedParam
	// Snaps holds each param's published snapshot buffer, nil for params
	// that were never snapshotted (barrier-mode and inference agents).
	Snaps [][]float64
	// AdamT is the optimizer step counter; AdamM/AdamV the first and second
	// moment vectors per parameter (nil for parameters the optimizer has
	// never stepped).
	AdamT int
	AdamM [][]float64
	AdamV [][]float64
}

// CaptureTrainState snapshots the current training state of params under
// opt. The returned state holds copies; later training does not mutate it.
func CaptureTrainState(params []*Param, opt *Adam) TrainState {
	st := TrainState{
		Magic: trainStateMagic,
		Snaps: make([][]float64, len(params)),
		AdamT: opt.t,
		AdamM: make([][]float64, len(params)),
		AdamV: make([][]float64, len(params)),
	}
	for i, p := range params {
		st.Params = append(st.Params, savedParam{Name: p.Name, Values: Copy(p.Value)})
		if p.snap != nil {
			st.Snaps[i] = Copy(p.snap)
		}
		if m := opt.m[p]; m != nil {
			st.AdamM[i] = Copy(m)
			st.AdamV[i] = Copy(opt.v[p])
		}
	}
	return st
}

// Check validates the state against the parameter set without mutating
// anything: magic/version, parameter count, per-parameter name and length,
// snapshot and moment-vector lengths. It is the validation half of Apply,
// exposed so composite checkpoint loaders can verify every section before
// applying any of them.
func (st *TrainState) Check(params []*Param) error {
	if st.Magic != trainStateMagic {
		return fmt.Errorf("nn: train state: bad magic %q (want %q; wrong or newer format?)", st.Magic, trainStateMagic)
	}
	if len(st.Params) != len(params) {
		return fmt.Errorf("nn: train state: have %d params, state has %d", len(params), len(st.Params))
	}
	if len(st.Snaps) != len(params) || len(st.AdamM) != len(params) || len(st.AdamV) != len(params) {
		return fmt.Errorf("nn: train state: section lengths disagree (snaps=%d adamM=%d adamV=%d, want %d)",
			len(st.Snaps), len(st.AdamM), len(st.AdamV), len(params))
	}
	if st.AdamT < 0 {
		return fmt.Errorf("nn: train state: negative Adam step counter %d", st.AdamT)
	}
	for i, sp := range st.Params {
		p := params[i]
		if sp.Name != p.Name {
			return fmt.Errorf("nn: train state: param %d name %q, state has %q", i, p.Name, sp.Name)
		}
		if len(sp.Values) != len(p.Value) {
			return fmt.Errorf("nn: train state: param %q length %d, state has %d", p.Name, len(p.Value), len(sp.Values))
		}
		if st.Snaps[i] != nil && len(st.Snaps[i]) != len(p.Value) {
			return fmt.Errorf("nn: train state: param %q snapshot length %d, want %d", p.Name, len(st.Snaps[i]), len(p.Value))
		}
		if (st.AdamM[i] == nil) != (st.AdamV[i] == nil) {
			return fmt.Errorf("nn: train state: param %q has one Adam moment vector but not the other", p.Name)
		}
		if st.AdamM[i] != nil && (len(st.AdamM[i]) != len(p.Value) || len(st.AdamV[i]) != len(p.Value)) {
			return fmt.Errorf("nn: train state: param %q Adam moment lengths %d/%d, want %d",
				p.Name, len(st.AdamM[i]), len(st.AdamV[i]), len(p.Value))
		}
	}
	return nil
}

// Apply restores the state into params and opt: weight values and published
// snapshots are copied in place (existing SharedClone/SnapshotClone aliases
// keep following them), and the optimizer's step counter and moment vectors
// are replaced. Validation runs first; on error nothing is mutated.
func (st *TrainState) Apply(params []*Param, opt *Adam) error {
	if err := st.Check(params); err != nil {
		return err
	}
	for i, p := range params {
		copy(p.Value, st.Params[i].Values)
		if st.Snaps[i] != nil {
			if p.snap == nil {
				p.snap = make(Vec, len(p.Value))
			}
			copy(p.snap, st.Snaps[i])
		}
		if st.AdamM[i] == nil {
			delete(opt.m, p)
			delete(opt.v, p)
		} else {
			opt.m[p] = Copy(st.AdamM[i])
			opt.v[p] = Copy(st.AdamV[i])
		}
	}
	opt.t = st.AdamT
	return nil
}

// MaxRngCursor bounds the rng draw cursors agent checkpoints will replay
// on load: SeekTo costs one Int63 per draw, so an implausibly large
// cursor in a (checksummed but hand-crafted or writer-bugged) state file
// would hang the loader for hours instead of failing. 2^34 draws replay
// in under a minute and exceed any realistic training run by orders of
// magnitude; loaders reject cursors beyond it with a descriptive error.
const MaxRngCursor = uint64(1) << 34

// CursorSource is a rand.Source with a checkpointable position: it wraps
// the standard library source and counts Int63 draws, so an rng stream can
// be resumed exactly by replaying the same number of draws from the same
// seed (SeekTo). It deliberately implements only rand.Source — not
// Source64 — which routes every rand.Rand method through Int63 and keeps
// the cursor complete; the Int63-derived streams (Float64, Intn,
// NormFloat64, ...) are bit-identical to rand.NewSource's, so swapping a
// CursorSource under an existing rand.New call changes nothing.
//
// A CursorSource is not safe for concurrent use, matching rand.NewSource.
type CursorSource struct {
	seed int64
	n    uint64
	src  rand.Source
}

// NewCursorSource returns a source seeded like rand.NewSource(seed) with
// the cursor at zero.
func NewCursorSource(seed int64) *CursorSource {
	return &CursorSource{seed: seed, src: rand.NewSource(seed)}
}

// Int63 implements rand.Source, advancing the cursor.
func (s *CursorSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Seed implements rand.Source, resetting the cursor.
func (s *CursorSource) Seed(seed int64) {
	s.seed = seed
	s.src.Seed(seed)
	s.n = 0
}

// Cursor reports the number of Int63 draws consumed since the last seeding.
func (s *CursorSource) Cursor() uint64 { return s.n }

// SeekTo repositions the stream at exactly cursor draws past the seed by
// reseeding and discarding: after SeekTo(c), the source produces the same
// values a fresh source would after c draws. Replay costs one Int63 per
// discarded draw (a few ns each), the price of keeping the underlying
// generator's unexported state out of the checkpoint format.
func (s *CursorSource) SeekTo(cursor uint64) {
	s.src.Seed(s.seed)
	for i := uint64(0); i < cursor; i++ {
		s.src.Int63()
	}
	s.n = cursor
}
