package nn

import (
	"fmt"
	"math/rand"
)

// Conv1D is a one-dimensional convolution over a channel-major input layout
// ([ch0 pos0..posL-1, ch1 pos0..posL-1, ...]). It exists to reproduce the
// paper's Figure 3 ablation, which compares the original DFP's convolutional
// state module against MRSch's MLP state module. It implements BatchLayer;
// the batch variants run the row kernel per sample over a layer-owned copy
// of the batch input.
type Conv1D struct {
	InCh, OutCh int
	InLen       int
	Kernel      int
	Stride      int
	outLen      int
	W           *Param // OutCh x InCh x Kernel
	B           *Param // OutCh

	inBuf  Vec // layer-owned copy of the last forward input (lastB rows)
	outBuf Vec
	ginBuf Vec
	lastB  int
}

// NewConv1D builds a convolution layer. Output length is
// floor((inLen-kernel)/stride)+1; it panics if the geometry is infeasible.
func NewConv1D(inCh, inLen, outCh, kernel, stride int, rng *rand.Rand) *Conv1D {
	if kernel <= 0 || stride <= 0 || inLen < kernel {
		panic(fmt.Sprintf("nn: NewConv1D bad geometry inLen=%d kernel=%d stride=%d", inLen, kernel, stride))
	}
	outLen := (inLen-kernel)/stride + 1
	c := &Conv1D{
		InCh: inCh, OutCh: outCh, InLen: inLen,
		Kernel: kernel, Stride: stride, outLen: outLen,
		W: NewParam(fmt.Sprintf("conv1d_%dx%dx%d_w", outCh, inCh, kernel), outCh*inCh*kernel),
		B: NewParam(fmt.Sprintf("conv1d_%d_b", outCh), outCh),
	}
	initWeights(c.W.Value, inCh*kernel, outCh, HeInit, rng)
	return c
}

// OutLen reports the spatial length of the output per channel.
func (c *Conv1D) OutLen() int { return c.outLen }

func (c *Conv1D) wAt(oc, ic, k int) int { return (oc*c.InCh+ic)*c.Kernel + k }

func (c *Conv1D) inDim() int  { return c.InCh * c.InLen }
func (c *Conv1D) outDim() int { return c.OutCh * c.outLen }

// Forward performs the convolution. Input length must be InCh*InLen.
func (c *Conv1D) Forward(x Vec) Vec { return c.ForwardInto(make(Vec, c.outDim()), x) }

// ForwardInto performs the convolution into dst (nil selects a layer-owned
// buffer).
func (c *Conv1D) ForwardInto(dst, x Vec) Vec {
	if len(x) != c.inDim() {
		panic(fmt.Sprintf("nn: Conv1D.Forward got %d inputs, want %d", len(x), c.inDim()))
	}
	return c.ForwardBatchInto(dst, x, 1)
}

// ForwardBatchInto convolves bsz row-major samples in one call.
func (c *Conv1D) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	if bsz <= 0 || len(x) != bsz*c.inDim() {
		panic(fmt.Sprintf("nn: Conv1D.ForwardBatch got %d inputs, want %d x %d", len(x), bsz, c.inDim()))
	}
	c.inBuf = Ensure(c.inBuf, len(x))
	copy(c.inBuf, x)
	c.lastB = bsz
	if dst == nil {
		c.outBuf = Ensure(c.outBuf, bsz*c.outDim())
		dst = c.outBuf
	}
	if len(dst) != bsz*c.outDim() {
		panic(fmt.Sprintf("nn: Conv1D.ForwardBatch dst len %d, want %d x %d", len(dst), bsz, c.outDim()))
	}
	for bi := 0; bi < bsz; bi++ {
		c.forwardRow(dst[bi*c.outDim():(bi+1)*c.outDim()], c.inBuf[bi*c.inDim():(bi+1)*c.inDim()])
	}
	return dst
}

func (c *Conv1D) forwardRow(out, x Vec) {
	for oc := 0; oc < c.OutCh; oc++ {
		for p := 0; p < c.outLen; p++ {
			s := c.B.Value[oc]
			base := p * c.Stride
			for ic := 0; ic < c.InCh; ic++ {
				in := x[ic*c.InLen:]
				for k := 0; k < c.Kernel; k++ {
					s += c.W.Value[c.wAt(oc, ic, k)] * in[base+k]
				}
			}
			out[oc*c.outLen+p] = s
		}
	}
}

// Backward accumulates kernel/bias gradients and returns input gradients.
func (c *Conv1D) Backward(grad Vec) Vec {
	return c.BackwardInto(make(Vec, c.lastB*c.inDim()), grad)
}

// BackwardInto accumulates gradients and writes input gradients into dst
// (nil selects a layer-owned buffer).
func (c *Conv1D) BackwardInto(dst, grad Vec) Vec {
	if c.lastB == 0 {
		panic("nn: Conv1D.Backward before Forward")
	}
	return c.BackwardBatchInto(dst, grad, c.lastB)
}

// BackwardBatchInto is the batched backward: parameter gradients accumulate
// summed over rows.
func (c *Conv1D) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	if c.lastB != bsz {
		panic(fmt.Sprintf("nn: Conv1D.BackwardBatch bsz %d, forward saw %d", bsz, c.lastB))
	}
	if len(grad) != bsz*c.outDim() {
		panic(fmt.Sprintf("nn: Conv1D.Backward got %d grads, want %d x %d", len(grad), bsz, c.outDim()))
	}
	if dst == nil {
		c.ginBuf = Ensure(c.ginBuf, bsz*c.inDim())
		dst = c.ginBuf
	}
	if len(dst) != bsz*c.inDim() {
		panic(fmt.Sprintf("nn: Conv1D.BackwardBatch dst len %d, want %d x %d", len(dst), bsz, c.inDim()))
	}
	Fill(dst, 0)
	for bi := 0; bi < bsz; bi++ {
		c.backwardRow(dst[bi*c.inDim():(bi+1)*c.inDim()],
			grad[bi*c.outDim():(bi+1)*c.outDim()],
			c.inBuf[bi*c.inDim():(bi+1)*c.inDim()])
	}
	return dst
}

func (c *Conv1D) backwardRow(gin, grad, x Vec) {
	for oc := 0; oc < c.OutCh; oc++ {
		for p := 0; p < c.outLen; p++ {
			g := grad[oc*c.outLen+p]
			if g == 0 {
				continue
			}
			c.B.Grad[oc] += g
			base := p * c.Stride
			for ic := 0; ic < c.InCh; ic++ {
				in := x[ic*c.InLen:]
				ginCh := gin[ic*c.InLen:]
				for k := 0; k < c.Kernel; k++ {
					wi := c.wAt(oc, ic, k)
					c.W.Grad[wi] += g * in[base+k]
					ginCh[base+k] += g * c.W.Value[wi]
				}
			}
		}
	}
}

// Params returns kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// OutSize implements Layer.
func (c *Conv1D) OutSize(in int) int {
	if in != c.inDim() {
		panic(fmt.Sprintf("nn: Conv1D.OutSize input %d, layer expects %d", in, c.inDim()))
	}
	return c.outDim()
}

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of size Pool. It implements BatchLayer with a
// per-row argmax record.
type MaxPool1D struct {
	Ch, InLen, Pool int
	outLen          int

	argmax []int // winner index per output element, batch-relative
	outBuf Vec
	ginBuf Vec
	lastB  int
}

// NewMaxPool1D builds a max-pool layer; trailing elements that do not fill a
// complete window are dropped (TensorFlow "valid" semantics).
func NewMaxPool1D(ch, inLen, pool int) *MaxPool1D {
	if pool <= 0 || inLen < pool {
		panic(fmt.Sprintf("nn: NewMaxPool1D bad geometry inLen=%d pool=%d", inLen, pool))
	}
	return &MaxPool1D{Ch: ch, InLen: inLen, Pool: pool, outLen: inLen / pool}
}

// OutLen reports the pooled spatial length per channel.
func (m *MaxPool1D) OutLen() int { return m.outLen }

func (m *MaxPool1D) inDim() int  { return m.Ch * m.InLen }
func (m *MaxPool1D) outDim() int { return m.Ch * m.outLen }

// Forward records argmax indices for the backward pass.
func (m *MaxPool1D) Forward(x Vec) Vec { return m.ForwardInto(make(Vec, m.outDim()), x) }

// ForwardInto pools into dst (nil selects a layer-owned buffer).
func (m *MaxPool1D) ForwardInto(dst, x Vec) Vec {
	if len(x) != m.inDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.Forward got %d inputs, want %d", len(x), m.inDim()))
	}
	return m.ForwardBatchInto(dst, x, 1)
}

// ForwardBatchInto pools bsz row-major samples in one call.
func (m *MaxPool1D) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	if bsz <= 0 || len(x) != bsz*m.inDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.ForwardBatch got %d inputs, want %d x %d", len(x), bsz, m.inDim()))
	}
	if cap(m.argmax) < bsz*m.outDim() {
		m.argmax = make([]int, bsz*m.outDim())
	}
	m.argmax = m.argmax[:bsz*m.outDim()]
	m.lastB = bsz
	if dst == nil {
		m.outBuf = Ensure(m.outBuf, bsz*m.outDim())
		dst = m.outBuf
	}
	if len(dst) != bsz*m.outDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.ForwardBatch dst len %d, want %d x %d", len(dst), bsz, m.outDim()))
	}
	for bi := 0; bi < bsz; bi++ {
		xr := x[bi*m.inDim() : (bi+1)*m.inDim()]
		dr := dst[bi*m.outDim() : (bi+1)*m.outDim()]
		ar := m.argmax[bi*m.outDim() : (bi+1)*m.outDim()]
		for ch := 0; ch < m.Ch; ch++ {
			in := xr[ch*m.InLen:]
			for p := 0; p < m.outLen; p++ {
				best := p * m.Pool
				for k := 1; k < m.Pool; k++ {
					if in[p*m.Pool+k] > in[best] {
						best = p*m.Pool + k
					}
				}
				dr[ch*m.outLen+p] = in[best]
				ar[ch*m.outLen+p] = bi*m.inDim() + ch*m.InLen + best
			}
		}
	}
	return dst
}

// Backward routes each gradient to the position that won the max.
func (m *MaxPool1D) Backward(grad Vec) Vec {
	return m.BackwardInto(make(Vec, m.lastB*m.inDim()), grad)
}

// BackwardInto routes gradients into dst (nil selects a layer-owned buffer).
func (m *MaxPool1D) BackwardInto(dst, grad Vec) Vec {
	if m.lastB == 0 {
		panic("nn: MaxPool1D.Backward before Forward")
	}
	return m.BackwardBatchInto(dst, grad, m.lastB)
}

// BackwardBatchInto routes each row's gradients to its recorded winners.
func (m *MaxPool1D) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	if m.lastB != bsz {
		panic(fmt.Sprintf("nn: MaxPool1D.BackwardBatch bsz %d, forward saw %d", bsz, m.lastB))
	}
	if len(grad) != bsz*m.outDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.Backward got %d grads, want %d x %d", len(grad), bsz, m.outDim()))
	}
	if dst == nil {
		m.ginBuf = Ensure(m.ginBuf, bsz*m.inDim())
		dst = m.ginBuf
	}
	if len(dst) != bsz*m.inDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.BackwardBatch dst len %d, want %d x %d", len(dst), bsz, m.inDim()))
	}
	Fill(dst, 0)
	for i, g := range grad {
		dst[m.argmax[i]] += g
	}
	return dst
}

// Params implements Layer (no parameters).
func (m *MaxPool1D) Params() []*Param { return nil }

// OutSize implements Layer.
func (m *MaxPool1D) OutSize(in int) int {
	if in != m.inDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.OutSize input %d, layer expects %d", in, m.inDim()))
	}
	return m.outDim()
}

var (
	_ BatchLayer = (*Conv1D)(nil)
	_ BatchLayer = (*MaxPool1D)(nil)
)
