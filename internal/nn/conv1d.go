package nn

import (
	"fmt"
	"math/rand"
)

// Conv1D is a one-dimensional convolution over a channel-major input layout
// ([ch0 pos0..posL-1, ch1 pos0..posL-1, ...]). It exists to reproduce the
// paper's Figure 3 ablation, which compares the original DFP's convolutional
// state module against MRSch's MLP state module.
type Conv1D struct {
	InCh, OutCh int
	InLen       int
	Kernel      int
	Stride      int
	outLen      int
	W           *Param // OutCh x InCh x Kernel
	B           *Param // OutCh
	lastIn      Vec
}

// NewConv1D builds a convolution layer. Output length is
// floor((inLen-kernel)/stride)+1; it panics if the geometry is infeasible.
func NewConv1D(inCh, inLen, outCh, kernel, stride int, rng *rand.Rand) *Conv1D {
	if kernel <= 0 || stride <= 0 || inLen < kernel {
		panic(fmt.Sprintf("nn: NewConv1D bad geometry inLen=%d kernel=%d stride=%d", inLen, kernel, stride))
	}
	outLen := (inLen-kernel)/stride + 1
	c := &Conv1D{
		InCh: inCh, OutCh: outCh, InLen: inLen,
		Kernel: kernel, Stride: stride, outLen: outLen,
		W: NewParam(fmt.Sprintf("conv1d_%dx%dx%d_w", outCh, inCh, kernel), outCh*inCh*kernel),
		B: NewParam(fmt.Sprintf("conv1d_%d_b", outCh), outCh),
	}
	initWeights(c.W.Value, inCh*kernel, outCh, HeInit, rng)
	return c
}

// OutLen reports the spatial length of the output per channel.
func (c *Conv1D) OutLen() int { return c.outLen }

func (c *Conv1D) wAt(oc, ic, k int) int { return (oc*c.InCh+ic)*c.Kernel + k }

// Forward performs the convolution. Input length must be InCh*InLen.
func (c *Conv1D) Forward(x Vec) Vec {
	if len(x) != c.InCh*c.InLen {
		panic(fmt.Sprintf("nn: Conv1D.Forward got %d inputs, want %d", len(x), c.InCh*c.InLen))
	}
	c.lastIn = x
	out := make(Vec, c.OutCh*c.outLen)
	for oc := 0; oc < c.OutCh; oc++ {
		for p := 0; p < c.outLen; p++ {
			s := c.B.Value[oc]
			base := p * c.Stride
			for ic := 0; ic < c.InCh; ic++ {
				in := x[ic*c.InLen:]
				for k := 0; k < c.Kernel; k++ {
					s += c.W.Value[c.wAt(oc, ic, k)] * in[base+k]
				}
			}
			out[oc*c.outLen+p] = s
		}
	}
	return out
}

// Backward accumulates kernel/bias gradients and returns input gradients.
func (c *Conv1D) Backward(grad Vec) Vec {
	if len(grad) != c.OutCh*c.outLen {
		panic(fmt.Sprintf("nn: Conv1D.Backward got %d grads, want %d", len(grad), c.OutCh*c.outLen))
	}
	if c.lastIn == nil {
		panic("nn: Conv1D.Backward before Forward")
	}
	gin := make(Vec, len(c.lastIn))
	for oc := 0; oc < c.OutCh; oc++ {
		for p := 0; p < c.outLen; p++ {
			g := grad[oc*c.outLen+p]
			if g == 0 {
				continue
			}
			c.B.Grad[oc] += g
			base := p * c.Stride
			for ic := 0; ic < c.InCh; ic++ {
				in := c.lastIn[ic*c.InLen:]
				ginCh := gin[ic*c.InLen:]
				for k := 0; k < c.Kernel; k++ {
					wi := c.wAt(oc, ic, k)
					c.W.Grad[wi] += g * in[base+k]
					ginCh[base+k] += g * c.W.Value[wi]
				}
			}
		}
	}
	return gin
}

// Params returns kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// OutSize implements Layer.
func (c *Conv1D) OutSize(in int) int {
	if in != c.InCh*c.InLen {
		panic(fmt.Sprintf("nn: Conv1D.OutSize input %d, layer expects %d", in, c.InCh*c.InLen))
	}
	return c.OutCh * c.outLen
}

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of size Pool.
type MaxPool1D struct {
	Ch, InLen, Pool int
	outLen          int
	argmax          []int
}

// NewMaxPool1D builds a max-pool layer; trailing elements that do not fill a
// complete window are dropped (TensorFlow "valid" semantics).
func NewMaxPool1D(ch, inLen, pool int) *MaxPool1D {
	if pool <= 0 || inLen < pool {
		panic(fmt.Sprintf("nn: NewMaxPool1D bad geometry inLen=%d pool=%d", inLen, pool))
	}
	return &MaxPool1D{Ch: ch, InLen: inLen, Pool: pool, outLen: inLen / pool}
}

// OutLen reports the pooled spatial length per channel.
func (m *MaxPool1D) OutLen() int { return m.outLen }

// Forward records argmax indices for the backward pass.
func (m *MaxPool1D) Forward(x Vec) Vec {
	if len(x) != m.Ch*m.InLen {
		panic(fmt.Sprintf("nn: MaxPool1D.Forward got %d inputs, want %d", len(x), m.Ch*m.InLen))
	}
	out := make(Vec, m.Ch*m.outLen)
	m.argmax = make([]int, m.Ch*m.outLen)
	for c := 0; c < m.Ch; c++ {
		in := x[c*m.InLen:]
		for p := 0; p < m.outLen; p++ {
			best := p * m.Pool
			for k := 1; k < m.Pool; k++ {
				if in[p*m.Pool+k] > in[best] {
					best = p*m.Pool + k
				}
			}
			out[c*m.outLen+p] = in[best]
			m.argmax[c*m.outLen+p] = c*m.InLen + best
		}
	}
	return out
}

// Backward routes each gradient to the position that won the max.
func (m *MaxPool1D) Backward(grad Vec) Vec {
	if m.argmax == nil {
		panic("nn: MaxPool1D.Backward before Forward")
	}
	gin := make(Vec, m.Ch*m.InLen)
	for i, g := range grad {
		gin[m.argmax[i]] += g
	}
	return gin
}

// Params implements Layer (no parameters).
func (m *MaxPool1D) Params() []*Param { return nil }

// OutSize implements Layer.
func (m *MaxPool1D) OutSize(in int) int {
	if in != m.Ch*m.InLen {
		panic(fmt.Sprintf("nn: MaxPool1D.OutSize input %d, layer expects %d", in, m.Ch*m.InLen))
	}
	return m.Ch * m.outLen
}
