package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully-connected layer: y = W*x + b, with W stored row-major
// (out x in). It is the workhorse of every network in the paper: the state,
// measurement and goal modules, the dueling streams, and the policy-gradient
// baseline are all stacks of Dense layers.
//
// Dense implements BatchLayer: the Into variants run without allocation, and
// the batch variants process B row-major samples through one cache-blocked,
// 4-way-unrolled matrix-matrix kernel instead of B matrix-vector loops. The
// forward input is copied into a layer-owned buffer, so callers may mutate
// their input slice between Forward and Backward.
type Dense struct {
	In, Out int
	W       *Param // len In*Out, row-major (row = output neuron)
	B       *Param // len Out

	inBuf  Vec // layer-owned copy of the last forward input (lastB rows)
	outBuf Vec
	ginBuf Vec
	wtBuf  Vec // transposed weights (in x out), rebuilt per batched backward
	lastB  int // rows retained by the last forward (0 = none yet)
}

// NewDense constructs an in->out fully-connected layer with the given
// initialization scheme.
func NewDense(in, out int, scheme Init, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense invalid dims %dx%d", in, out))
	}
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("dense_%dx%d_w", in, out), in*out),
		B:   NewParam(fmt.Sprintf("dense_%dx%d_b", in, out), out),
	}
	initWeights(d.W.Value, in, out, scheme, rng)
	return d
}

// Forward computes W*x+b and retains a copy of x for Backward.
func (d *Dense) Forward(x Vec) Vec { return d.ForwardInto(make(Vec, d.Out), x) }

// ForwardInto computes W*x+b into dst (nil selects a layer-owned buffer).
func (d *Dense) ForwardInto(dst, x Vec) Vec {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward got %d inputs, want %d", len(x), d.In))
	}
	return d.ForwardBatchInto(dst, x, 1)
}

// ForwardBatchInto computes one batched forward pass over bsz row-major
// samples: x is bsz*In values, the result is bsz*Out values.
func (d *Dense) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	if bsz <= 0 || len(x) != bsz*d.In {
		panic(fmt.Sprintf("nn: Dense.ForwardBatch got %d inputs, want %d x %d", len(x), bsz, d.In))
	}
	d.inBuf = Ensure(d.inBuf, bsz*d.In)
	copy(d.inBuf, x)
	d.lastB = bsz
	if dst == nil {
		d.outBuf = Ensure(d.outBuf, bsz*d.Out)
		dst = d.outBuf
	}
	if len(dst) != bsz*d.Out {
		panic(fmt.Sprintf("nn: Dense.ForwardBatch dst len %d, want %d x %d", len(dst), bsz, d.Out))
	}
	denseForward(dst, d.inBuf, d.W.Value, d.B.Value, d.In, d.Out, bsz)
	return dst
}

// denseForward computes dst = x·Wᵀ + b for bsz row-major samples. The output
// rows are tiled so the active block of W stays L1-resident across the batch,
// and within a tile four output neurons share one streaming pass over the
// input row (4-way register blocking). Each output keeps its own sequential
// accumulator, so results are bitwise identical to the naive per-output dot
// product.
func denseForward(dst, x, w, b Vec, in, out, bsz int) {
	// ~16 KB of W per tile, leaving L1 room for the input rows and output;
	// at least one 4-row microkernel per tile.
	oblk := 2048 / in
	oblk -= oblk % 4
	if oblk < 4 {
		oblk = 4
	}
	for ob := 0; ob < out; ob += oblk {
		oe := ob + oblk
		if oe > out {
			oe = out
		}
		for bi := 0; bi < bsz; bi++ {
			xr := x[bi*in : (bi+1)*in]
			dr := dst[bi*out : (bi+1)*out]
			o := ob
			for ; o+4 <= oe; o += 4 {
				r0 := w[o*in : (o+1)*in]
				r1 := w[(o+1)*in : (o+2)*in]
				r2 := w[(o+2)*in : (o+3)*in]
				r3 := w[(o+3)*in : (o+4)*in]
				var s0, s1, s2, s3 float64
				for i, xi := range xr {
					s0 += r0[i] * xi
					s1 += r1[i] * xi
					s2 += r2[i] * xi
					s3 += r3[i] * xi
				}
				dr[o] = s0 + b[o]
				dr[o+1] = s1 + b[o+1]
				dr[o+2] = s2 + b[o+2]
				dr[o+3] = s3 + b[o+3]
			}
			for ; o < oe; o++ {
				row := w[o*in : (o+1)*in]
				var s float64
				for i, xi := range xr {
					s += row[i] * xi
				}
				dr[o] = s + b[o]
			}
		}
	}
}

// Backward accumulates dL/dW and dL/db and returns dL/dx.
func (d *Dense) Backward(grad Vec) Vec {
	return d.BackwardInto(make(Vec, d.lastB*d.In), grad)
}

// BackwardInto accumulates parameter gradients and writes dL/dx into dst
// (nil selects a layer-owned buffer). After a batched forward, grad must
// carry one row per batch sample and dst receives one input-gradient row per
// sample.
func (d *Dense) BackwardInto(dst, grad Vec) Vec {
	if d.lastB == 0 {
		panic("nn: Dense.Backward before Forward")
	}
	return d.BackwardBatchInto(dst, grad, d.lastB)
}

// BackwardBatchInto is the batched backward kernel: grad holds bsz rows of
// output gradients; parameter gradients accumulate summed over rows and dst
// receives bsz rows of input gradients.
func (d *Dense) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	if d.lastB != bsz {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch bsz %d, forward saw %d", bsz, d.lastB))
	}
	if len(grad) != bsz*d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward got %d grads, want %d x %d", len(grad), bsz, d.Out))
	}
	if dst == nil {
		d.ginBuf = Ensure(d.ginBuf, bsz*d.In)
		dst = d.ginBuf
	}
	if len(dst) != bsz*d.In {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch dst len %d, want %d x %d", len(dst), bsz, d.In))
	}
	if bsz == 1 {
		denseBackwardRow(dst, grad, d.inBuf, d.W.Value, d.W.Grad, d.B.Grad, d.In, d.Out)
		return dst
	}
	d.accumBatchGrads(grad, bsz)
	d.inputGradBatch(dst, grad, bsz)
	return dst
}

// BackwardBatchParams accumulates parameter gradients for a batch without
// computing input gradients. It is meant for a network's first layer, whose
// input is data rather than an upstream activation, so dL/dx is never
// consumed — eliding it removes a full matrix-matrix product from the
// backward pass.
func (d *Dense) BackwardBatchParams(grad Vec, bsz int) {
	if d.lastB != bsz {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch bsz %d, forward saw %d", bsz, d.lastB))
	}
	if len(grad) != bsz*d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward got %d grads, want %d x %d", len(grad), bsz, d.Out))
	}
	d.accumBatchGrads(grad, bsz)
}

// denseBackwardRow is the exact-order single-sample backward: parameter
// gradients accumulate element-wise in output order, bitwise identical to
// the pre-batch scalar path. Zero output-gradients skip their row entirely,
// which the sparse dueling backward in internal/dfp relies on.
func denseBackwardRow(gin, grad, x, w, gw, gb Vec, in, out int) {
	gi := gin[:in]
	Fill(gi, 0)
	for o, g := range grad[:out] {
		if g == 0 {
			continue
		}
		gb[o] += g
		row := w[o*in : (o+1)*in]
		grow := gw[o*in : (o+1)*in]
		i := 0
		for ; i+4 <= in; i += 4 {
			grow[i] += g * x[i]
			grow[i+1] += g * x[i+1]
			grow[i+2] += g * x[i+2]
			grow[i+3] += g * x[i+3]
			gi[i] += g * row[i]
			gi[i+1] += g * row[i+1]
			gi[i+2] += g * row[i+2]
			gi[i+3] += g * row[i+3]
		}
		for ; i < in; i++ {
			grow[i] += g * x[i]
			gi[i] += g * row[i]
		}
	}
}

// accumBatchGrads performs gb += Σ_rows grad and gw += gradᵀ·x with 4-way
// sample blocking: four samples' rank-1 updates merge into one streaming
// pass over each weight-gradient row, quartering the gw load/store traffic
// that dominates the naive per-sample backward.
func (d *Dense) accumBatchGrads(grad Vec, bsz int) {
	in, out := d.In, d.Out
	gw, gb := d.W.Grad, d.B.Grad
	x := d.inBuf
	for o := 0; o < out; o++ {
		var s float64
		for b := 0; b < bsz; b++ {
			s += grad[b*out+o]
		}
		gb[o] += s
	}
	b0 := 0
	for ; b0+8 <= bsz; b0 += 8 {
		g0r := grad[b0*out : (b0+1)*out]
		g1r := grad[(b0+1)*out : (b0+2)*out]
		g2r := grad[(b0+2)*out : (b0+3)*out]
		g3r := grad[(b0+3)*out : (b0+4)*out]
		g4r := grad[(b0+4)*out : (b0+5)*out]
		g5r := grad[(b0+5)*out : (b0+6)*out]
		g6r := grad[(b0+6)*out : (b0+7)*out]
		g7r := grad[(b0+7)*out : (b0+8)*out]
		x0 := x[b0*in : (b0+1)*in]
		x1 := x[(b0+1)*in : (b0+2)*in]
		x2 := x[(b0+2)*in : (b0+3)*in]
		x3 := x[(b0+3)*in : (b0+4)*in]
		x4 := x[(b0+4)*in : (b0+5)*in]
		x5 := x[(b0+5)*in : (b0+6)*in]
		x6 := x[(b0+6)*in : (b0+7)*in]
		x7 := x[(b0+7)*in : (b0+8)*in]
		for o := 0; o < out; o++ {
			g0, g1, g2, g3 := g0r[o], g1r[o], g2r[o], g3r[o]
			g4, g5, g6, g7 := g4r[o], g5r[o], g6r[o], g7r[o]
			if g0 == 0 && g1 == 0 && g2 == 0 && g3 == 0 &&
				g4 == 0 && g5 == 0 && g6 == 0 && g7 == 0 {
				// Masked temporal offsets zero whole gradient columns; skip
				// the row entirely (the sparse dueling backward relies on
				// the same property sample-wise).
				continue
			}
			grow := gw[o*in : (o+1)*in]
			for i := range grow {
				grow[i] += g0*x0[i] + g1*x1[i] + g2*x2[i] + g3*x3[i] +
					g4*x4[i] + g5*x5[i] + g6*x6[i] + g7*x7[i]
			}
		}
	}
	for ; b0+4 <= bsz; b0 += 4 {
		g0r := grad[b0*out : (b0+1)*out]
		g1r := grad[(b0+1)*out : (b0+2)*out]
		g2r := grad[(b0+2)*out : (b0+3)*out]
		g3r := grad[(b0+3)*out : (b0+4)*out]
		x0 := x[b0*in : (b0+1)*in]
		x1 := x[(b0+1)*in : (b0+2)*in]
		x2 := x[(b0+2)*in : (b0+3)*in]
		x3 := x[(b0+3)*in : (b0+4)*in]
		for o := 0; o < out; o++ {
			g0, g1, g2, g3 := g0r[o], g1r[o], g2r[o], g3r[o]
			if g0 == 0 && g1 == 0 && g2 == 0 && g3 == 0 {
				continue
			}
			grow := gw[o*in : (o+1)*in]
			for i := range grow {
				grow[i] += g0*x0[i] + g1*x1[i] + g2*x2[i] + g3*x3[i]
			}
		}
	}
	for ; b0 < bsz; b0++ {
		gr := grad[b0*out : (b0+1)*out]
		xr := x[b0*in : (b0+1)*in]
		for o, g := range gr {
			if g == 0 {
				continue
			}
			grow := gw[o*in : (o+1)*in]
			for i := range grow {
				grow[i] += g * xr[i]
			}
		}
	}
}

// inputGradBatch computes gin = grad·W through a freshly transposed weight
// copy: with Wᵀ stored in x out, each input gradient is a sequential dot
// product, and 4-way sample blocking reuses every Wᵀ row across four
// samples from registers. The transpose costs one in·out pass per batched
// backward — 1/bsz of the product it accelerates.
func (d *Dense) inputGradBatch(gin, grad Vec, bsz int) {
	in, out := d.In, d.Out
	w := d.W.Value
	d.wtBuf = Ensure(d.wtBuf, in*out)
	wt := d.wtBuf
	// 32x32 tiles keep both the read rows and the strided write columns
	// cache-resident during the transpose.
	const tile = 32
	for ot := 0; ot < out; ot += tile {
		oe := ot + tile
		if oe > out {
			oe = out
		}
		for it := 0; it < in; it += tile {
			ie := it + tile
			if ie > in {
				ie = in
			}
			for o := ot; o < oe; o++ {
				row := w[o*in : (o+1)*in]
				for i := it; i < ie; i++ {
					wt[i*out+o] = row[i]
				}
			}
		}
	}
	b0 := 0
	for ; b0+4 <= bsz; b0 += 4 {
		g0r := grad[b0*out : (b0+1)*out]
		g1r := grad[(b0+1)*out : (b0+2)*out]
		g2r := grad[(b0+2)*out : (b0+3)*out]
		g3r := grad[(b0+3)*out : (b0+4)*out]
		gi0 := gin[b0*in : (b0+1)*in]
		gi1 := gin[(b0+1)*in : (b0+2)*in]
		gi2 := gin[(b0+2)*in : (b0+3)*in]
		gi3 := gin[(b0+3)*in : (b0+4)*in]
		for i := 0; i < in; i++ {
			wti := wt[i*out : (i+1)*out]
			var a0, a1, a2, a3 float64
			for o, wv := range wti {
				a0 += g0r[o] * wv
				a1 += g1r[o] * wv
				a2 += g2r[o] * wv
				a3 += g3r[o] * wv
			}
			gi0[i] = a0
			gi1[i] = a1
			gi2[i] = a2
			gi3[i] = a3
		}
	}
	for ; b0 < bsz; b0++ {
		gr := grad[b0*out : (b0+1)*out]
		gi := gin[b0*in : (b0+1)*in]
		for i := 0; i < in; i++ {
			wti := wt[i*out : (i+1)*out]
			var a float64
			for o, wv := range wti {
				a += gr[o] * wv
			}
			gi[i] = a
		}
	}
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutSize implements Layer.
func (d *Dense) OutSize(in int) int {
	if in != d.In {
		panic(fmt.Sprintf("nn: Dense.OutSize input %d, layer expects %d", in, d.In))
	}
	return d.Out
}

var _ BatchLayer = (*Dense)(nil)
