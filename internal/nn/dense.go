package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully-connected layer: y = W*x + b, with W stored row-major
// (out x in). It is the workhorse of every network in the paper: the state,
// measurement and goal modules, the dueling streams, and the policy-gradient
// baseline are all stacks of Dense layers.
//
// Dense implements BatchLayer: the Into variants run without allocation, and
// the batch variants process B row-major samples through one cache-blocked,
// 4-way-unrolled matrix-matrix kernel instead of B matrix-vector loops. The
// forward input is copied into a layer-owned buffer, so callers may mutate
// their input slice between Forward and Backward.
type Dense struct {
	In, Out int
	W       *Param // len In*Out, row-major (row = output neuron)
	B       *Param // len Out

	inBuf  Vec // layer-owned copy of the last forward input (lastB rows)
	outBuf Vec
	ginBuf Vec
	wtBuf  Vec // transposed weights (in x out), rebuilt per batched backward
	lastB  int // rows retained by the last forward (0 = none yet)
}

// NewDense constructs an in->out fully-connected layer with the given
// initialization scheme.
func NewDense(in, out int, scheme Init, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense invalid dims %dx%d", in, out))
	}
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("dense_%dx%d_w", in, out), in*out),
		B:   NewParam(fmt.Sprintf("dense_%dx%d_b", in, out), out),
	}
	initWeights(d.W.Value, in, out, scheme, rng)
	return d
}

// Forward computes W*x+b and retains a copy of x for Backward.
func (d *Dense) Forward(x Vec) Vec { return d.ForwardInto(make(Vec, d.Out), x) }

// ForwardInto computes W*x+b into dst (nil selects a layer-owned buffer).
func (d *Dense) ForwardInto(dst, x Vec) Vec {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward got %d inputs, want %d", len(x), d.In))
	}
	return d.ForwardBatchInto(dst, x, 1)
}

// ForwardBatchInto computes one batched forward pass over bsz row-major
// samples: x is bsz*In values, the result is bsz*Out values.
func (d *Dense) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	if bsz <= 0 || len(x) != bsz*d.In {
		panic(fmt.Sprintf("nn: Dense.ForwardBatch got %d inputs, want %d x %d", len(x), bsz, d.In))
	}
	d.inBuf = Ensure(d.inBuf, bsz*d.In)
	copy(d.inBuf, x)
	d.lastB = bsz
	if dst == nil {
		d.outBuf = Ensure(d.outBuf, bsz*d.Out)
		dst = d.outBuf
	}
	if len(dst) != bsz*d.Out {
		panic(fmt.Sprintf("nn: Dense.ForwardBatch dst len %d, want %d x %d", len(dst), bsz, d.Out))
	}
	// The forward matmul is a kernel-set call: dst = x·Wᵀ + b through the
	// process-global set (pure-Go reference or CPUID-dispatched SIMD).
	kern.DenseForward(dst, d.inBuf, d.W.Value, d.B.Value, d.In, d.Out, bsz)
	return dst
}

// Backward accumulates dL/dW and dL/db and returns dL/dx.
func (d *Dense) Backward(grad Vec) Vec {
	return d.BackwardInto(make(Vec, d.lastB*d.In), grad)
}

// BackwardInto accumulates parameter gradients and writes dL/dx into dst
// (nil selects a layer-owned buffer). After a batched forward, grad must
// carry one row per batch sample and dst receives one input-gradient row per
// sample.
func (d *Dense) BackwardInto(dst, grad Vec) Vec {
	if d.lastB == 0 {
		panic("nn: Dense.Backward before Forward")
	}
	return d.BackwardBatchInto(dst, grad, d.lastB)
}

// BackwardBatchInto is the batched backward kernel: grad holds bsz rows of
// output gradients; parameter gradients accumulate summed over rows and dst
// receives bsz rows of input gradients.
func (d *Dense) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	if d.lastB != bsz {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch bsz %d, forward saw %d", bsz, d.lastB))
	}
	if len(grad) != bsz*d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward got %d grads, want %d x %d", len(grad), bsz, d.Out))
	}
	if dst == nil {
		d.ginBuf = Ensure(d.ginBuf, bsz*d.In)
		dst = d.ginBuf
	}
	if len(dst) != bsz*d.In {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch dst len %d, want %d x %d", len(dst), bsz, d.In))
	}
	if bsz == 1 {
		denseBackwardRow(dst, grad, d.inBuf, d.W.Value, d.W.Grad, d.B.Grad, d.In, d.Out)
		return dst
	}
	d.accumBatchGrads(grad, bsz)
	d.inputGradBatch(dst, grad, bsz)
	return dst
}

// BackwardBatchParams accumulates parameter gradients for a batch without
// computing input gradients. It is meant for a network's first layer, whose
// input is data rather than an upstream activation, so dL/dx is never
// consumed — eliding it removes a full matrix-matrix product from the
// backward pass.
func (d *Dense) BackwardBatchParams(grad Vec, bsz int) {
	if d.lastB != bsz {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch bsz %d, forward saw %d", bsz, d.lastB))
	}
	if len(grad) != bsz*d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward got %d grads, want %d x %d", len(grad), bsz, d.Out))
	}
	d.accumBatchGrads(grad, bsz)
}

// denseBackwardRow is the exact-order single-sample backward: parameter
// gradients accumulate element-wise in output order, bitwise identical to
// the pre-batch scalar path. Zero output-gradients skip their row entirely,
// which the sparse dueling backward in internal/dfp relies on.
func denseBackwardRow(gin, grad, x, w, gw, gb Vec, in, out int) {
	gi := gin[:in]
	Fill(gi, 0)
	for o, g := range grad[:out] {
		if g == 0 {
			continue
		}
		gb[o] += g
		row := w[o*in : (o+1)*in]
		grow := gw[o*in : (o+1)*in]
		i := 0
		for ; i+4 <= in; i += 4 {
			grow[i] += g * x[i]
			grow[i+1] += g * x[i+1]
			grow[i+2] += g * x[i+2]
			grow[i+3] += g * x[i+3]
			gi[i] += g * row[i]
			gi[i+1] += g * row[i+1]
			gi[i+2] += g * row[i+2]
			gi[i+3] += g * row[i+3]
		}
		for ; i < in; i++ {
			grow[i] += g * x[i]
			gi[i] += g * row[i]
		}
	}
}

// accumBatchGrads performs gb += Σ_rows grad and gw += gradᵀ·x through the
// active kernel set's sample-blocked accumulation kernel.
func (d *Dense) accumBatchGrads(grad Vec, bsz int) {
	kern.AccumGrads(d.W.Grad, d.B.Grad, grad, d.inBuf, d.In, d.Out, bsz)
}

// inputGradBatch computes gin = grad·W through a freshly transposed weight
// copy: with Wᵀ stored in x out, every input gradient becomes a sequential
// dot product for the kernel set's sample-blocked matmul. The transpose
// costs one in·out pass per batched backward — 1/bsz of the product it
// accelerates.
func (d *Dense) inputGradBatch(gin, grad Vec, bsz int) {
	in, out := d.In, d.Out
	w := d.W.Value
	d.wtBuf = Ensure(d.wtBuf, in*out)
	wt := d.wtBuf
	// 32x32 tiles keep both the read rows and the strided write columns
	// cache-resident during the transpose.
	const tile = 32
	for ot := 0; ot < out; ot += tile {
		oe := ot + tile
		if oe > out {
			oe = out
		}
		for it := 0; it < in; it += tile {
			ie := it + tile
			if ie > in {
				ie = in
			}
			for o := ot; o < oe; o++ {
				row := w[o*in : (o+1)*in]
				for i := it; i < ie; i++ {
					wt[i*out+o] = row[i]
				}
			}
		}
	}
	kern.InputGrad(gin, grad, wt, in, out, bsz)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutSize implements Layer.
func (d *Dense) OutSize(in int) int {
	if in != d.In {
		panic(fmt.Sprintf("nn: Dense.OutSize input %d, layer expects %d", in, d.In))
	}
	return d.Out
}

var _ BatchLayer = (*Dense)(nil)
