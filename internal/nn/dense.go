package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully-connected layer: y = W*x + b, with W stored row-major
// (out x in). It is the workhorse of every network in the paper: the state,
// measurement and goal modules, the dueling streams, and the policy-gradient
// baseline are all stacks of Dense layers.
type Dense struct {
	In, Out int
	W       *Param // len In*Out, row-major (row = output neuron)
	B       *Param // len Out

	lastIn Vec // input saved by Forward for Backward
}

// NewDense constructs an in->out fully-connected layer with the given
// initialization scheme.
func NewDense(in, out int, scheme Init, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense invalid dims %dx%d", in, out))
	}
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("dense_%dx%d_w", in, out), in*out),
		B:   NewParam(fmt.Sprintf("dense_%dx%d_b", in, out), out),
	}
	initWeights(d.W.Value, in, out, scheme, rng)
	return d
}

// Forward computes W*x+b and retains x for Backward.
func (d *Dense) Forward(x Vec) Vec {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward got %d inputs, want %d", len(x), d.In))
	}
	d.lastIn = x
	out := make(Vec, d.Out)
	w := d.W.Value
	for o := 0; o < d.Out; o++ {
		row := w[o*d.In : (o+1)*d.In]
		var s float64
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s + d.B.Value[o]
	}
	return out
}

// Backward accumulates dL/dW and dL/db and returns dL/dx.
func (d *Dense) Backward(grad Vec) Vec {
	if len(grad) != d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward got %d grads, want %d", len(grad), d.Out))
	}
	if d.lastIn == nil {
		panic("nn: Dense.Backward before Forward")
	}
	x := d.lastIn
	gw := d.W.Grad
	gin := make(Vec, d.In)
	w := d.W.Value
	for o, g := range grad {
		if g == 0 {
			continue
		}
		d.B.Grad[o] += g
		row := w[o*d.In : (o+1)*d.In]
		grow := gw[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			grow[i] += g * xi
			gin[i] += g * row[i]
		}
	}
	return gin
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutSize implements Layer.
func (d *Dense) OutSize(in int) int {
	if in != d.In {
		panic(fmt.Sprintf("nn: Dense.OutSize input %d, layer expects %d", in, d.In))
	}
	return d.Out
}
