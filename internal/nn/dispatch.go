package nn

import "repro/internal/nn/kernel"

// kern is the process-global kernel set every hot loop in this package calls
// through — Dense forward/backward and the fused Adam step alike. It is
// resolved exactly once, at kernel package init (before any nn code runs),
// so the single-sample inference path, the batched decision path, and the
// training engine are guaranteed to use the same arithmetic for the life of
// the process. See the kernel package and this package's doc.go for the
// resulting numerical contract, and MRSCH_KERNEL for forcing a set.
var kern = kernel.Active()

// KernelName reports the active kernel set ("go", "avx2") for startup logs
// and benchmark attribution.
func KernelName() string { return kernel.Name() }

// KernelFeatures reports the CPU features the kernel dispatcher detected.
func KernelFeatures() string { return kernel.Features() }
