// Package nn is a small, dependency-free neural-network substrate.
//
// The MRSch paper implements its agent in TensorFlow; this package is the
// stdlib-only substitute. It provides exactly what the paper's networks need:
// fully-connected (Dense) layers, 1-D convolution and pooling (for the CNN
// state-module ablation of Figure 3), leaky-rectifier activations, softmax,
// mean-squared-error and policy-gradient losses, SGD/Adam optimizers, and
// weight (de)serialization.
//
// All layers implement the Layer interface. Backward must be called after
// Forward on the same input; it accumulates parameter gradients and returns
// the gradient with respect to the layer input, so arbitrary directed
// compositions (such as DFP's three-branch, two-stream topology) can be
// wired by hand in higher-level packages.
//
// # Execution engine
//
// Three API tiers trade convenience for throughput:
//
//   - Layer (Forward/Backward) is the allocating single-sample path: every
//     call returns a fresh slice. Simple, and the arithmetic reference for
//     everything below.
//
//   - BufferedLayer (ForwardInto/BackwardInto) runs the same arithmetic
//     through caller-provided or lazily-grown layer-owned scratch buffers:
//     zero heap allocations in steady state. Buffered layers also copy (or
//     avoid retaining) their forward input, so callers may reuse their input
//     buffers between Forward and Backward — the allocating API wraps this
//     path.
//
//   - BatchLayer (ForwardBatchInto/BackwardBatchInto) processes a minibatch
//     of B row-major samples per call. Dense implements these as
//     cache-blocked, register-unrolled matrix-matrix kernels: the forward
//     tiles weight rows to stay L1-resident across the batch with a 4-wide
//     output microkernel, the weight-gradient accumulation merges 8 samples'
//     rank-1 updates into one streaming pass, and the input gradient runs
//     through a per-call transposed weight copy so every dot product is
//     sequential. Sequential composes batch kernels across layers and
//     Batched adapts any other Layer per-row, so whole networks run batched.
//
// For data-parallel training, SharedClone replicates a network so that the
// replica shares parameter Values with the original but owns private
// gradient buffers and forward state — each worker accumulates into its own
// gradients, which the caller reduces before the optimizer step
// (internal/dfp does this across Config.Workers goroutines).
//
// # Weight snapshots and versioning
//
// Pipelined training (internal/rollout) needs readers of round-k weights to
// run concurrently with the writer of round-k+1 weights. Each Param can
// therefore carry a versioned copy-on-write snapshot of its Value
// (snapshot.go):
//
//   - Param.Snapshot materializes a stable second buffer holding a copy of
//     the current Value; SnapshotClone builds a network replica whose params
//     alias those buffers (with private forward state), so any number of
//     replicas can run forward passes against a frozen weight version while
//     the live Values train.
//
//   - Param.Publish / PublishParams copies the live Value into the snapshot
//     buffer in place and bumps Param.Version. Because the buffer is shared
//     by every replica, Publish must only run at a synchronization point
//     with no replica mid-forward — internal/rollout's inter-round join.
//     Replicas observe the new version on their next forward pass without
//     re-cloning.
//
//   - Params that are never snapshotted skip the copy entirely, so
//     inference-only agents and barrier-mode training pay nothing
//     (the copy-on-write property).
//
// SharedClone and SnapshotClone are two views of one structural cloner
// (cloneWith): the former aliases live Values for same-weights data
// parallelism, the latter aliases published snapshots for lagged-weights
// pipelining. Custom SharedCloner layers alias live values by construction
// and therefore cannot participate in SnapshotClone; networks containing
// them must fall back to barrier-synchronized training.
//
// Equivalence between all tiers is enforced by property tests
// (batch_test.go): identical outputs and ≤1e-12 gradient agreement across
// randomized shapes, plus finite-difference checks on the batched kernels.
//
// # Kernel dispatch
//
// The four floating-point hot loops under the tiers above — the batched
// Dense forward, the transposed-matmul input gradient, the weight-gradient
// accumulation, and the fused Adam step — live in internal/nn/kernel as a
// function Set selected once at process start: the portable pure-Go
// reference set ("go", bit-for-bit the pre-dispatch engine), or a
// CPUID-dispatched AVX2/FMA assembly set ("avx2") on supporting amd64
// hosts. Every caller in this package funnels through the same
// process-global set, so the selection never splits a process's arithmetic.
//
// What that means for numerical contracts:
//
//   - Bitwise-stable within a process, under either set: batch forward rows
//     vs single-sample calls at every batch size, rollout determinism for a
//     fixed (Seed, Workers), checkpoint resume, and the serve daemon's
//     batched-vs-offline byte identity.
//
//   - ≤1e-12 relative across sets: the avx2 kernels reassociate reductions
//     into 4-wide lanes and contract multiply-add pairs, so cross-set
//     agreement is tolerance-based (property-tested in the kernel package,
//     including tail shapes). Artifacts compared byte-for-byte across
//     processes must therefore come from the same kernel set — automatic on
//     one host, and forceable anywhere with MRSCH_KERNEL=go.
//
// MRSCH_KERNEL=go|avx2 forces a set (panicking at init if unsupported);
// KernelName/KernelFeatures report what was selected for startup logs.
package nn
