// Package nn is a small, dependency-free neural-network substrate.
//
// The MRSch paper implements its agent in TensorFlow; this package is the
// stdlib-only substitute. It provides exactly what the paper's networks need:
// fully-connected (Dense) layers, 1-D convolution and pooling (for the CNN
// state-module ablation of Figure 3), leaky-rectifier activations, softmax,
// mean-squared-error and policy-gradient losses, SGD/Adam optimizers, and
// weight (de)serialization. Layers operate on single samples ([]float64);
// batching is performed by looping and accumulating gradients, which is both
// simple and fast enough for the layer sizes used in the paper (the largest
// is 11410 -> 4000).
//
// All layers implement the Layer interface. Backward must be called after
// Forward on the same input; it accumulates parameter gradients and returns
// the gradient with respect to the layer input, so arbitrary directed
// compositions (such as DFP's three-branch, two-stream topology) can be wired
// by hand in higher-level packages.
package nn
