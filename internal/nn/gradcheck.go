package nn

import "math"

// GradCheck compares analytic parameter gradients against central finite
// differences for an arbitrary scalar loss function. loss must run a full
// forward pass and return the scalar loss *without* mutating parameters;
// backward must populate parameter gradients for the same input. It returns
// the maximum relative error observed over all checked parameter elements.
//
// It is used by the test suites of this package and of internal/dfp to prove
// that hand-wired topologies (e.g. DFP's dueling streams) backpropagate
// correctly — the substitute for trusting a DL framework's autograd.
func GradCheck(params []*Param, loss func() float64, backward func(), eps float64, maxElems int) float64 {
	if eps <= 0 {
		eps = 1e-5
	}
	for _, p := range params {
		p.ZeroGrad()
	}
	backward()
	worst := 0.0
	for _, p := range params {
		n := len(p.Value)
		stride := 1
		if maxElems > 0 && n > maxElems {
			stride = n / maxElems
		}
		for i := 0; i < n; i += stride {
			orig := p.Value[i]
			p.Value[i] = orig + eps
			lp := loss()
			p.Value[i] = orig - eps
			lm := loss()
			p.Value[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.Grad[i]
			denom := math.Max(1e-8, math.Abs(num)+math.Abs(ana))
			rel := math.Abs(num-ana) / denom
			if rel > worst && math.Abs(num-ana) > 1e-7 {
				worst = rel
			}
		}
	}
	return worst
}
