// Package kernel is the SIMD kernel layer under internal/nn: the four
// floating-point hot loops of the training and inference engines — the
// batched Dense matmul forward, the transposed-matmul input gradient, the
// weight-gradient accumulation, and the fused Adam step — packaged as a
// Set of function pointers selected once at process start.
//
// # Kernel sets
//
// Two sets exist today:
//
//   - "go" — the portable pure-Go loops, retained verbatim from the
//     pre-dispatch engine (cache-blocked, 4/8-way register-unrolled). This
//     is the arithmetic reference set: it runs on every architecture and
//     its results are bit-for-bit the pre-dispatch engine's.
//
//   - "avx2" (amd64 only) — hand-written AVX2/FMA assembly primitives
//     (4-row fused-multiply-add dot products, 8/4-way rank-1 axpy updates,
//     a fully vectorized Adam step including VSQRTPD/VDIVPD) driven by the
//     same cache-blocking loop nests as the go set. Requires AVX2, FMA,
//     and OS AVX state support (OSXSAVE/XCR0), probed via CPUID.
//
// # Selection and the MRSCH_KERNEL override
//
// Selection happens exactly once, at package init, and is process-global:
// Active returns the same Set for the life of the process, and every
// caller — the single-sample inference path (Act/Pick), the batched
// decision path (BatchDecider), and the training engine (TrainStep) —
// funnels through it. The best supported set wins by default; the
// MRSCH_KERNEL environment variable forces one for testing:
//
//	MRSCH_KERNEL=go    # force the portable reference set
//	MRSCH_KERNEL=avx2  # force AVX2/FMA; panics at init if unsupported
//
// An unknown or unsupported forced name panics at init — a forced run
// must never silently fall back to a different set than it asked for.
//
// # Numerical contract
//
// Within one process all kernel users share one Set, so every intra-process
// bitwise guarantee of the stack holds unchanged under either set: batch
// rows are bitwise identical to single-sample calls at every batch size
// (each sample row is computed by the same primitive in the same order
// regardless of bsz — the serve daemon's byte-identity contract rides on
// this), rollout/pipelined training is bitwise reproducible for a fixed
// (Seed, Workers), and checkpoint resume reproduces the uninterrupted run.
//
// Across sets the results differ by floating-point reassociation and FMA
// contraction only: the avx2 set accumulates in 4-wide lanes and contracts
// multiply-add pairs, so a given output matches the go set to a relative
// ~1e-16 per operation, property-tested to ≤1e-12 end to end (including
// tail shapes where in/out/bsz are not multiples of the vector width).
// Artifacts that must be byte-comparable across processes (distributed
// collation, checkpoint files, served decisions vs offline picks) therefore
// require the same kernel set on both sides — automatic on one host, and
// forceable anywhere with MRSCH_KERNEL=go.
package kernel
