package kernel

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Set is one coherent family of engine kernels. All four functions of a
// Set use the same accumulation structure, so results are deterministic
// for a fixed Set and each batch row is bitwise independent of bsz.
type Set struct {
	// Name identifies the set ("go", "avx2").
	Name string

	// DenseForward computes dst = x·Wᵀ + b for bsz row-major samples:
	// x is bsz×in, w is out×in row-major, b is len out, dst is bsz×out.
	// Each sample row's outputs must be computed independently of bsz and
	// of the other rows (the batch-vs-single bitwise row identity the
	// serve contract relies on).
	DenseForward func(dst, x, w, b []float64, in, out, bsz int)

	// InputGrad computes gin = grad·W from the pre-transposed weights
	// wt (in×out row-major, built by the caller): grad is bsz×out, gin is
	// bsz×in. gin rows are overwritten, not accumulated.
	InputGrad func(gin, grad, wt []float64, in, out, bsz int)

	// AccumGrads accumulates one batch's parameter gradients:
	// gb += Σ_rows grad and gw += gradᵀ·x, with gw out×in row-major,
	// grad bsz×out, x bsz×in. Implementations may (and do) skip weight
	// rows whose gradient coefficients are all zero — masked temporal
	// offsets zero whole columns, and the sparse dueling backward zeroes
	// whole samples.
	AccumGrads func(gw, gb, grad, x []float64, in, out, bsz int)

	// AdamStep applies one fused Adam update over a parameter's value,
	// gradient, and moment vectors (all the same length): the effective
	// gradient is f*grad[i], grad is zeroed in the same pass, and
	//
	//	m = beta1*m + a1*g;  v = beta2*v + a2*g*g
	//	val -= lr * (m*invB1c) / (sqrt(v*invB2c) + eps)
	//
	// where a1 = 1-beta1, a2 = 1-beta2 and invB1c/invB2c are the step's
	// reciprocal bias corrections, all precomputed by the caller.
	AdamStep func(val, grad, m, v []float64, f, lr, beta1, beta2, a1, a2, invB1c, invB2c, eps float64)
}

// Reference is the portable pure-Go kernel set — the arithmetic reference
// every accelerated set is property-tested against, and bit-for-bit the
// pre-dispatch engine. It is always available.
var Reference = &Set{
	Name:         "go",
	DenseForward: goDenseForward,
	InputGrad:    goInputGrad,
	AccumGrads:   goAccumGrads,
	AdamStep:     goAdamStep,
}

var (
	active   *Set
	features string
)

func init() {
	features = cpuFeatures()
	s, err := Select(os.Getenv("MRSCH_KERNEL"))
	if err != nil {
		// A forced set that cannot be honored must fail loudly, never
		// silently fall back (the run would be attributed to the wrong
		// kernels).
		panic(err)
	}
	active = s
}

// Active returns the process-global kernel set, selected once at init:
// the best CPU-supported set, or whatever MRSCH_KERNEL forced.
func Active() *Set { return active }

// Name returns the active set's name.
func Name() string { return active.Name }

// Features returns the CPU features the dispatcher detected at init
// (e.g. "avx2 fma osxsave"), or "none" when no accelerated set exists
// for this architecture.
func Features() string {
	if features == "" {
		return "none"
	}
	return features
}

// Native returns this host's accelerated kernel set, or nil when the CPU
// (or architecture) does not support one. It is exported for equivalence
// tests, which compare it against Reference directly regardless of which
// set Active selected.
func Native() *Set { return nativeSet() }

// Names lists the kernel sets available on this host, reference first.
func Names() []string {
	names := []string{Reference.Name}
	if n := nativeSet(); n != nil {
		names = append(names, n.Name)
	}
	return names
}

// Select resolves a kernel-set name to a Set: "" or "auto" picks the best
// supported set, "go" forces the reference set, and an accelerated set's
// name ("avx2") forces that set or errors when this host cannot run it.
func Select(name string) (*Set, error) {
	switch name {
	case "", "auto":
		if n := nativeSet(); n != nil {
			return n, nil
		}
		return Reference, nil
	case Reference.Name:
		return Reference, nil
	default:
		if n := nativeSet(); n != nil && n.Name == name {
			return n, nil
		}
		return nil, fmt.Errorf("kernel: MRSCH_KERNEL=%q: unknown or unsupported kernel set on this host (available: %s)",
			name, strings.Join(Names(), "|"))
	}
}

// ---------------------------------------------------------------------------
// The portable reference set. These are the pre-dispatch engine loops,
// moved here verbatim from internal/nn (dense.go, optimizer.go) so the
// "go" set stays bit-for-bit the historical engine.

// goDenseForward computes dst = x·Wᵀ + b for bsz row-major samples. The
// output rows are tiled so the active block of W stays L1-resident across
// the batch, and within a tile four output neurons share one streaming
// pass over the input row (4-way register blocking). Each output keeps its
// own sequential accumulator, so results are bitwise identical to the
// naive per-output dot product.
func goDenseForward(dst, x, w, b []float64, in, out, bsz int) {
	// ~16 KB of W per tile, leaving L1 room for the input rows and output;
	// at least one 4-row microkernel per tile.
	oblk := 2048 / in
	oblk -= oblk % 4
	if oblk < 4 {
		oblk = 4
	}
	for ob := 0; ob < out; ob += oblk {
		oe := ob + oblk
		if oe > out {
			oe = out
		}
		for bi := 0; bi < bsz; bi++ {
			xr := x[bi*in : (bi+1)*in]
			dr := dst[bi*out : (bi+1)*out]
			o := ob
			for ; o+4 <= oe; o += 4 {
				r0 := w[o*in : (o+1)*in]
				r1 := w[(o+1)*in : (o+2)*in]
				r2 := w[(o+2)*in : (o+3)*in]
				r3 := w[(o+3)*in : (o+4)*in]
				var s0, s1, s2, s3 float64
				for i, xi := range xr {
					s0 += r0[i] * xi
					s1 += r1[i] * xi
					s2 += r2[i] * xi
					s3 += r3[i] * xi
				}
				dr[o] = s0 + b[o]
				dr[o+1] = s1 + b[o+1]
				dr[o+2] = s2 + b[o+2]
				dr[o+3] = s3 + b[o+3]
			}
			for ; o < oe; o++ {
				row := w[o*in : (o+1)*in]
				var s float64
				for i, xi := range xr {
					s += row[i] * xi
				}
				dr[o] = s + b[o]
			}
		}
	}
}

// goInputGrad computes gin = grad·W through the caller's transposed weight
// copy: with Wᵀ stored in×out, each input gradient is a sequential dot
// product, and 4-way sample blocking reuses every Wᵀ row across four
// samples from registers.
func goInputGrad(gin, grad, wt []float64, in, out, bsz int) {
	b0 := 0
	for ; b0+4 <= bsz; b0 += 4 {
		g0r := grad[b0*out : (b0+1)*out]
		g1r := grad[(b0+1)*out : (b0+2)*out]
		g2r := grad[(b0+2)*out : (b0+3)*out]
		g3r := grad[(b0+3)*out : (b0+4)*out]
		gi0 := gin[b0*in : (b0+1)*in]
		gi1 := gin[(b0+1)*in : (b0+2)*in]
		gi2 := gin[(b0+2)*in : (b0+3)*in]
		gi3 := gin[(b0+3)*in : (b0+4)*in]
		for i := 0; i < in; i++ {
			wti := wt[i*out : (i+1)*out]
			var a0, a1, a2, a3 float64
			for o, wv := range wti {
				a0 += g0r[o] * wv
				a1 += g1r[o] * wv
				a2 += g2r[o] * wv
				a3 += g3r[o] * wv
			}
			gi0[i] = a0
			gi1[i] = a1
			gi2[i] = a2
			gi3[i] = a3
		}
	}
	for ; b0 < bsz; b0++ {
		gr := grad[b0*out : (b0+1)*out]
		gi := gin[b0*in : (b0+1)*in]
		for i := 0; i < in; i++ {
			wti := wt[i*out : (i+1)*out]
			var a float64
			for o, wv := range wti {
				a += gr[o] * wv
			}
			gi[i] = a
		}
	}
}

// goAccumGrads performs gb += Σ_rows grad and gw += gradᵀ·x with 8/4-way
// sample blocking: several samples' rank-1 updates merge into one
// streaming pass over each weight-gradient row, dividing the gw load/store
// traffic that dominates the naive per-sample backward.
func goAccumGrads(gw, gb, grad, x []float64, in, out, bsz int) {
	for o := 0; o < out; o++ {
		var s float64
		for b := 0; b < bsz; b++ {
			s += grad[b*out+o]
		}
		gb[o] += s
	}
	b0 := 0
	for ; b0+8 <= bsz; b0 += 8 {
		g0r := grad[b0*out : (b0+1)*out]
		g1r := grad[(b0+1)*out : (b0+2)*out]
		g2r := grad[(b0+2)*out : (b0+3)*out]
		g3r := grad[(b0+3)*out : (b0+4)*out]
		g4r := grad[(b0+4)*out : (b0+5)*out]
		g5r := grad[(b0+5)*out : (b0+6)*out]
		g6r := grad[(b0+6)*out : (b0+7)*out]
		g7r := grad[(b0+7)*out : (b0+8)*out]
		x0 := x[b0*in : (b0+1)*in]
		x1 := x[(b0+1)*in : (b0+2)*in]
		x2 := x[(b0+2)*in : (b0+3)*in]
		x3 := x[(b0+3)*in : (b0+4)*in]
		x4 := x[(b0+4)*in : (b0+5)*in]
		x5 := x[(b0+5)*in : (b0+6)*in]
		x6 := x[(b0+6)*in : (b0+7)*in]
		x7 := x[(b0+7)*in : (b0+8)*in]
		for o := 0; o < out; o++ {
			g0, g1, g2, g3 := g0r[o], g1r[o], g2r[o], g3r[o]
			g4, g5, g6, g7 := g4r[o], g5r[o], g6r[o], g7r[o]
			if g0 == 0 && g1 == 0 && g2 == 0 && g3 == 0 &&
				g4 == 0 && g5 == 0 && g6 == 0 && g7 == 0 {
				// Masked temporal offsets zero whole gradient columns; skip
				// the row entirely (the sparse dueling backward relies on
				// the same property sample-wise).
				continue
			}
			grow := gw[o*in : (o+1)*in]
			for i := range grow {
				grow[i] += g0*x0[i] + g1*x1[i] + g2*x2[i] + g3*x3[i] +
					g4*x4[i] + g5*x5[i] + g6*x6[i] + g7*x7[i]
			}
		}
	}
	for ; b0+4 <= bsz; b0 += 4 {
		g0r := grad[b0*out : (b0+1)*out]
		g1r := grad[(b0+1)*out : (b0+2)*out]
		g2r := grad[(b0+2)*out : (b0+3)*out]
		g3r := grad[(b0+3)*out : (b0+4)*out]
		x0 := x[b0*in : (b0+1)*in]
		x1 := x[(b0+1)*in : (b0+2)*in]
		x2 := x[(b0+2)*in : (b0+3)*in]
		x3 := x[(b0+3)*in : (b0+4)*in]
		for o := 0; o < out; o++ {
			g0, g1, g2, g3 := g0r[o], g1r[o], g2r[o], g3r[o]
			if g0 == 0 && g1 == 0 && g2 == 0 && g3 == 0 {
				continue
			}
			grow := gw[o*in : (o+1)*in]
			for i := range grow {
				grow[i] += g0*x0[i] + g1*x1[i] + g2*x2[i] + g3*x3[i]
			}
		}
	}
	for ; b0 < bsz; b0++ {
		gr := grad[b0*out : (b0+1)*out]
		xr := x[b0*in : (b0+1)*in]
		for o, g := range gr {
			if g == 0 {
				continue
			}
			grow := gw[o*in : (o+1)*in]
			for i := range grow {
				grow[i] += g * xr[i]
			}
		}
	}
}

// goAdamStep is the fused scaled Adam update: the inner loop hoists the
// bias corrections into reciprocal multiplies and fuses gradient zeroing,
// leaving one unavoidable sqrt+divide per element. With f=1 it is bitwise
// the unscaled update (x*1.0 is exact for every float64).
func goAdamStep(val, grad, m, v []float64, f, lr, beta1, beta2, a1, a2, invB1c, invB2c, eps float64) {
	for i := range val {
		g := grad[i] * f
		grad[i] = 0
		mi := beta1*m[i] + a1*g
		vi := beta2*v[i] + a2*g*g
		m[i] = mi
		v[i] = vi
		val[i] -= lr * (mi * invB1c) / (math.Sqrt(vi*invB2c) + eps)
	}
}
