//go:build amd64

package kernel

import "strings"

// The avx2 set drives the same cache-blocking loop nests as the go set,
// but the innermost loops are AVX2/FMA assembly (kernel_amd64.s): 4-row
// fused dot products for the forward and input-gradient matmuls, 8/4-way
// rank-1 axpy updates for the weight gradients, and a fully vectorized
// Adam step. Every sample row still goes through the same primitives in
// the same order regardless of bsz, preserving the batch-vs-single
// bitwise row identity.

//go:noescape
func dot4(w *float64, stride int, x *float64, n int) (s0, s1, s2, s3 float64)

//go:noescape
func dot1(w, x *float64, n int) float64

//go:noescape
func axpy8(dst, x *float64, xstride int, gp *float64, gstride int, n int)

//go:noescape
func axpy4(dst, x *float64, xstride int, gp *float64, gstride int, n int)

//go:noescape
func axpy1(dst, x *float64, c float64, n int)

//go:noescape
func adamStep(val, grad, m, v *float64, n int, f, lr, beta1, beta2, a1, a2, invB1c, invB2c, eps float64)

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// hasAVX2FMA reports whether the CPU and OS support the avx2 set: AVX2 and
// FMA instruction sets, plus OS-managed YMM state (OSXSAVE and XCR0 bits
// 1-2). Returns the detected feature names for the startup log.
func hasAVX2FMA() (ok bool, feats []string) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false, nil
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit != 0 {
		feats = append(feats, "fma")
	}
	if ecx1&avxBit != 0 {
		feats = append(feats, "avx")
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit != 0 {
		feats = append(feats, "avx2")
	}
	if ecx1&osxsaveBit == 0 {
		return false, feats
	}
	xcr0, _ := xgetbv0()
	const ymmState = 0x6 // XMM (bit 1) + YMM (bit 2) state enabled
	if xcr0&ymmState != ymmState {
		return false, feats
	}
	feats = append(feats, "osxsave")
	ok = ecx1&fmaBit != 0 && ecx1&avxBit != 0 && ebx7&avx2Bit != 0
	return ok, feats
}

// avx2Set and archFeatures are package-level variable initializers, not an
// init() func: Go runs all variable initialization before any init(), so
// kernel.go's selecting init() — which sorts earlier by file name — always
// sees the probe's result regardless of init order.
var avx2Set, archFeatures = func() (*Set, string) {
	ok, feats := hasAVX2FMA()
	if !ok {
		return nil, strings.Join(feats, " ")
	}
	return &Set{
		Name:         "avx2",
		DenseForward: avx2DenseForward,
		InputGrad:    avx2InputGrad,
		AccumGrads:   avx2AccumGrads,
		AdamStep:     avx2AdamStep,
	}, strings.Join(feats, " ")
}()

func nativeSet() *Set     { return avx2Set }
func cpuFeatures() string { return archFeatures }

// avx2DenseForward mirrors goDenseForward's L1 tiling; each 4-output
// microkernel is one dot4 call (4 weight rows at stride in against one
// input row), remainder outputs go through dot1.
func avx2DenseForward(dst, x, w, b []float64, in, out, bsz int) {
	oblk := 2048 / in
	oblk -= oblk % 4
	if oblk < 4 {
		oblk = 4
	}
	for ob := 0; ob < out; ob += oblk {
		oe := ob + oblk
		if oe > out {
			oe = out
		}
		for bi := 0; bi < bsz; bi++ {
			xr := x[bi*in : (bi+1)*in]
			dr := dst[bi*out : (bi+1)*out]
			o := ob
			for ; o+4 <= oe; o += 4 {
				s0, s1, s2, s3 := dot4(&w[o*in], in, &xr[0], in)
				dr[o] = s0 + b[o]
				dr[o+1] = s1 + b[o+1]
				dr[o+2] = s2 + b[o+2]
				dr[o+3] = s3 + b[o+3]
			}
			for ; o < oe; o++ {
				dr[o] = dot1(&w[o*in], &xr[0], in) + b[o]
			}
		}
	}
}

// avx2InputGrad computes gin = grad·W through the caller's transposed
// weight copy: each Wᵀ row is dotted against four grad rows at once
// (stride out), reusing the row from registers across the sample block.
func avx2InputGrad(gin, grad, wt []float64, in, out, bsz int) {
	b0 := 0
	for ; b0+4 <= bsz; b0 += 4 {
		gi0 := gin[b0*in : (b0+1)*in]
		gi1 := gin[(b0+1)*in : (b0+2)*in]
		gi2 := gin[(b0+2)*in : (b0+3)*in]
		gi3 := gin[(b0+3)*in : (b0+4)*in]
		g := &grad[b0*out]
		for i := 0; i < in; i++ {
			s0, s1, s2, s3 := dot4(g, out, &wt[i*out], out)
			gi0[i] = s0
			gi1[i] = s1
			gi2[i] = s2
			gi3[i] = s3
		}
	}
	for ; b0 < bsz; b0++ {
		gr := grad[b0*out : (b0+1)*out]
		gi := gin[b0*in : (b0+1)*in]
		for i := 0; i < in; i++ {
			gi[i] = dot1(&gr[0], &wt[i*out], out)
		}
	}
}

// avx2AccumGrads keeps the go set's 8/4-way sample blocking and its
// zero-coefficient row skip (masked temporal offsets zero whole gradient
// columns); the merged rank-1 updates run through axpy8/axpy4, which
// broadcast the strided coefficients in registers.
func avx2AccumGrads(gw, gb, grad, x []float64, in, out, bsz int) {
	for o := 0; o < out; o++ {
		var s float64
		for b := 0; b < bsz; b++ {
			s += grad[b*out+o]
		}
		gb[o] += s
	}
	b0 := 0
	for ; b0+8 <= bsz; b0 += 8 {
		base := b0 * out
		for o := 0; o < out; o++ {
			if grad[base+o] == 0 && grad[base+out+o] == 0 &&
				grad[base+2*out+o] == 0 && grad[base+3*out+o] == 0 &&
				grad[base+4*out+o] == 0 && grad[base+5*out+o] == 0 &&
				grad[base+6*out+o] == 0 && grad[base+7*out+o] == 0 {
				continue
			}
			axpy8(&gw[o*in], &x[b0*in], in, &grad[base+o], out, in)
		}
	}
	for ; b0+4 <= bsz; b0 += 4 {
		base := b0 * out
		for o := 0; o < out; o++ {
			if grad[base+o] == 0 && grad[base+out+o] == 0 &&
				grad[base+2*out+o] == 0 && grad[base+3*out+o] == 0 {
				continue
			}
			axpy4(&gw[o*in], &x[b0*in], in, &grad[base+o], out, in)
		}
	}
	for ; b0 < bsz; b0++ {
		gr := grad[b0*out : (b0+1)*out]
		xr := x[b0*in : (b0+1)*in]
		for o, g := range gr {
			if g == 0 {
				continue
			}
			axpy1(&gw[o*in], &xr[0], g, in)
		}
	}
}

// avx2AdamStep runs the fused update fully vectorized, including the
// square root and divide (VSQRTPD/VDIVPD).
func avx2AdamStep(val, grad, m, v []float64, f, lr, beta1, beta2, a1, a2, invB1c, invB2c, eps float64) {
	if len(val) == 0 {
		return
	}
	adamStep(&val[0], &grad[0], &m[0], &v[0], len(val), f, lr, beta1, beta2, a1, a2, invB1c, invB2c, eps)
}
