//go:build amd64

#include "textflag.h"

// AVX2/FMA primitives for the avx2 kernel set.
//
// Register discipline: all routines are NOSPLIT leaf functions using ABI0
// frames; R14/R15 and X15 (the internal-ABI g and zero registers) are never
// touched so no restore dance is needed. Every routine ends in VZEROUPPER
// before RET to avoid AVX/SSE transition stalls in the surrounding Go code.
//
// Numerical discipline: vector accumulators are horizontally reduced BEFORE
// any scalar tail work — VEX-encoded scalar ops (VFMADD231SD etc.) zero bits
// 255:128 of the destination's YMM register, so a scalar op into a live
// vector accumulator would silently drop two lanes. Scalar tails mirror the
// vector code's association (same FMA chains) so an element's rounding does
// not depend on which loop produced it.

// func dot4(w *float64, stride int, x *float64, n int) (s0, s1, s2, s3 float64)
//
// Four simultaneous dot products: s_k = sum_i w[k*stride+i]*x[i]. Each of
// the four rows keeps two 4-lane FMA accumulators (8 YMM total), folded
// pairwise, reduced horizontally, then a scalar FMA tail for n%4.
TEXT ·dot4(SB), NOSPLIT, $0-64
	MOVQ w+0(FP), SI
	MOVQ stride+8(FP), R8
	SHLQ $3, R8
	MOVQ x+16(FP), DX
	MOVQ n+24(FP), CX

	LEAQ (SI)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, AX
	SHRQ $3, AX
	JZ   dot4_tail4

dot4_loop8:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VFMADD231PD (SI), Y8, Y0
	VFMADD231PD 32(SI), Y9, Y4
	VFMADD231PD (R9), Y8, Y1
	VFMADD231PD 32(R9), Y9, Y5
	VFMADD231PD (R10), Y8, Y2
	VFMADD231PD 32(R10), Y9, Y6
	VFMADD231PD (R11), Y8, Y3
	VFMADD231PD 32(R11), Y9, Y7
	ADDQ $64, DX
	ADDQ $64, SI
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ AX
	JNZ  dot4_loop8

dot4_tail4:
	TESTQ $4, CX
	JZ    dot4_fold
	VMOVUPD (DX), Y8
	VFMADD231PD (SI), Y8, Y0
	VFMADD231PD (R9), Y8, Y1
	VFMADD231PD (R10), Y8, Y2
	VFMADD231PD (R11), Y8, Y3
	ADDQ $32, DX
	ADDQ $32, SI
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11

dot4_fold:
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

	VEXTRACTF128 $1, Y0, X8
	VADDPD  X8, X0, X0
	VSHUFPD $1, X0, X0, X8
	VADDSD  X8, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD  X8, X1, X1
	VSHUFPD $1, X1, X1, X8
	VADDSD  X8, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD  X8, X2, X2
	VSHUFPD $1, X2, X2, X8
	VADDSD  X8, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD  X8, X3, X3
	VSHUFPD $1, X3, X3, X8
	VADDSD  X8, X3, X3

	MOVQ CX, AX
	ANDQ $3, AX
	JZ   dot4_done

dot4_tail1:
	VMOVSD (DX), X8
	VFMADD231SD (SI), X8, X0
	VFMADD231SD (R9), X8, X1
	VFMADD231SD (R10), X8, X2
	VFMADD231SD (R11), X8, X3
	ADDQ $8, DX
	ADDQ $8, SI
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ AX
	JNZ  dot4_tail1

dot4_done:
	VMOVSD X0, s0+32(FP)
	VMOVSD X1, s1+40(FP)
	VMOVSD X2, s2+48(FP)
	VMOVSD X3, s3+56(FP)
	VZEROUPPER
	RET

// func dot1(w, x *float64, n int) float64
//
// Single dot product with four 4-lane accumulators (16 elements in flight).
TEXT ·dot1(SB), NOSPLIT, $0-32
	MOVQ w+0(FP), SI
	MOVQ x+8(FP), DX
	MOVQ n+16(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	MOVQ CX, AX
	SHRQ $4, AX
	JZ   dot1_tail8

dot1_loop16:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VMOVUPD 64(DX), Y10
	VMOVUPD 96(DX), Y11
	VFMADD231PD (SI), Y8, Y0
	VFMADD231PD 32(SI), Y9, Y1
	VFMADD231PD 64(SI), Y10, Y2
	VFMADD231PD 96(SI), Y11, Y3
	ADDQ $128, DX
	ADDQ $128, SI
	DECQ AX
	JNZ  dot1_loop16

dot1_tail8:
	TESTQ $8, CX
	JZ    dot1_tail4
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VFMADD231PD (SI), Y8, Y0
	VFMADD231PD 32(SI), Y9, Y1
	ADDQ $64, DX
	ADDQ $64, SI

dot1_tail4:
	TESTQ $4, CX
	JZ    dot1_fold
	VMOVUPD (DX), Y8
	VFMADD231PD (SI), Y8, Y2
	ADDQ $32, DX
	ADDQ $32, SI

dot1_fold:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X8
	VADDPD  X8, X0, X0
	VSHUFPD $1, X0, X0, X8
	VADDSD  X8, X0, X0

	MOVQ CX, AX
	ANDQ $3, AX
	JZ   dot1_done

dot1_tail1:
	VMOVSD (DX), X8
	VFMADD231SD (SI), X8, X0
	ADDQ $8, DX
	ADDQ $8, SI
	DECQ AX
	JNZ  dot1_tail1

dot1_done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func axpy8(dst, x *float64, xstride int, gp *float64, gstride int, n int)
//
// Merged 8-sample rank-1 update: dst[i] += sum_{k<8} g[k*gstride]*x[k*xstride+i].
// The eight strided coefficients are broadcast once into Y0-Y7; the loop
// streams dst with two independent FMA chains (even rows into the dst load,
// odd rows into a fresh product) merged by one add. The scalar tail keeps
// the identical two-chain association.
TEXT ·axpy8(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ xstride+16(FP), R8
	SHLQ $3, R8
	MOVQ gp+24(FP), BX
	MOVQ gstride+32(FP), DX
	SHLQ $3, DX
	MOVQ n+40(FP), CX

	VBROADCASTSD (BX), Y0
	VBROADCASTSD (BX)(DX*1), Y1
	LEAQ (BX)(DX*2), AX
	VBROADCASTSD (AX), Y2
	VBROADCASTSD (AX)(DX*1), Y3
	LEAQ (AX)(DX*2), AX
	VBROADCASTSD (AX), Y4
	VBROADCASTSD (AX)(DX*1), Y5
	LEAQ (AX)(DX*2), AX
	VBROADCASTSD (AX), Y6
	VBROADCASTSD (AX)(DX*1), Y7

	LEAQ (SI)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	LEAQ (R11)(R8*1), R12
	LEAQ (R12)(R8*1), R13
	LEAQ (R13)(R8*1), DX
	LEAQ (DX)(R8*1), R8

	XORQ BX, BX
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   axpy8_tail

axpy8_loop4:
	VMOVUPD (DI)(BX*1), Y8
	VMULPD  (R9)(BX*1), Y1, Y9
	VFMADD231PD (SI)(BX*1), Y0, Y8
	VFMADD231PD (R10)(BX*1), Y2, Y8
	VFMADD231PD (R11)(BX*1), Y3, Y9
	VFMADD231PD (R12)(BX*1), Y4, Y8
	VFMADD231PD (R13)(BX*1), Y5, Y9
	VFMADD231PD (DX)(BX*1), Y6, Y8
	VFMADD231PD (R8)(BX*1), Y7, Y9
	VADDPD  Y9, Y8, Y8
	VMOVUPD Y8, (DI)(BX*1)
	ADDQ $32, BX
	DECQ AX
	JNZ  axpy8_loop4

axpy8_tail:
	ANDQ $3, CX
	JZ   axpy8_done

axpy8_tail1:
	VMOVSD (DI)(BX*1), X8
	VMULSD (R9)(BX*1), X1, X9
	VFMADD231SD (SI)(BX*1), X0, X8
	VFMADD231SD (R10)(BX*1), X2, X8
	VFMADD231SD (R11)(BX*1), X3, X9
	VFMADD231SD (R12)(BX*1), X4, X8
	VFMADD231SD (R13)(BX*1), X5, X9
	VFMADD231SD (DX)(BX*1), X6, X8
	VFMADD231SD (R8)(BX*1), X7, X9
	VADDSD X9, X8, X8
	VMOVSD X8, (DI)(BX*1)
	ADDQ $8, BX
	DECQ CX
	JNZ  axpy8_tail1

axpy8_done:
	VZEROUPPER
	RET

// func axpy4(dst, x *float64, xstride int, gp *float64, gstride int, n int)
//
// 4-sample variant of axpy8, same two-chain association.
TEXT ·axpy4(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ xstride+16(FP), R8
	SHLQ $3, R8
	MOVQ gp+24(FP), BX
	MOVQ gstride+32(FP), DX
	SHLQ $3, DX
	MOVQ n+40(FP), CX

	VBROADCASTSD (BX), Y0
	VBROADCASTSD (BX)(DX*1), Y1
	LEAQ (BX)(DX*2), AX
	VBROADCASTSD (AX), Y2
	VBROADCASTSD (AX)(DX*1), Y3

	LEAQ (SI)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11

	XORQ BX, BX
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   axpy4_tail

axpy4_loop4:
	VMOVUPD (DI)(BX*1), Y8
	VMULPD  (R9)(BX*1), Y1, Y9
	VFMADD231PD (SI)(BX*1), Y0, Y8
	VFMADD231PD (R10)(BX*1), Y2, Y8
	VFMADD231PD (R11)(BX*1), Y3, Y9
	VADDPD  Y9, Y8, Y8
	VMOVUPD Y8, (DI)(BX*1)
	ADDQ $32, BX
	DECQ AX
	JNZ  axpy4_loop4

axpy4_tail:
	ANDQ $3, CX
	JZ   axpy4_done

axpy4_tail1:
	VMOVSD (DI)(BX*1), X8
	VMULSD (R9)(BX*1), X1, X9
	VFMADD231SD (SI)(BX*1), X0, X8
	VFMADD231SD (R10)(BX*1), X2, X8
	VFMADD231SD (R11)(BX*1), X3, X9
	VADDSD X9, X8, X8
	VMOVSD X8, (DI)(BX*1)
	ADDQ $8, BX
	DECQ CX
	JNZ  axpy4_tail1

axpy4_done:
	VZEROUPPER
	RET

// func axpy1(dst, x *float64, c float64, n int)
//
// Single rank-1 row update: dst[i] += g*x[i].
TEXT ·axpy1(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	VBROADCASTSD c+16(FP), Y0
	MOVQ n+24(FP), CX

	XORQ BX, BX
	MOVQ CX, AX
	SHRQ $3, AX
	JZ   axpy1_tail4

axpy1_loop8:
	VMOVUPD (DI)(BX*1), Y8
	VMOVUPD 32(DI)(BX*1), Y9
	VFMADD231PD (SI)(BX*1), Y0, Y8
	VFMADD231PD 32(SI)(BX*1), Y0, Y9
	VMOVUPD Y8, (DI)(BX*1)
	VMOVUPD Y9, 32(DI)(BX*1)
	ADDQ $64, BX
	DECQ AX
	JNZ  axpy1_loop8

axpy1_tail4:
	TESTQ $4, CX
	JZ    axpy1_tails
	VMOVUPD (DI)(BX*1), Y8
	VFMADD231PD (SI)(BX*1), Y0, Y8
	VMOVUPD Y8, (DI)(BX*1)
	ADDQ $32, BX

axpy1_tails:
	ANDQ $3, CX
	JZ   axpy1_done

axpy1_tail1:
	VMOVSD (DI)(BX*1), X8
	VFMADD231SD (SI)(BX*1), X0, X8
	VMOVSD X8, (DI)(BX*1)
	ADDQ $8, BX
	DECQ CX
	JNZ  axpy1_tail1

axpy1_done:
	VZEROUPPER
	RET

// func adamStep(val, grad, m, v *float64, n int, f, lr, beta1, beta2, a1, a2, invB1c, invB2c, eps float64)
//
// Fused Adam update, fully vectorized including VSQRTPD/VDIVPD:
//
//	g = grad[i]*f; grad[i] = 0
//	m[i] = beta1*m[i] + a1*g
//	v[i] = beta2*v[i] + a2*g*g
//	val[i] -= lr * (m[i]*invB1c) / (sqrt(v[i]*invB2c) + eps)
//
// Constants live in Y6-Y14, zero in Y5, working set Y0-Y4; the scalar tail
// repeats the same operation sequence in SD form.
TEXT ·adamStep(SB), NOSPLIT, $0-112
	MOVQ val+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R9
	MOVQ v+24(FP), R10
	MOVQ n+32(FP), CX
	VBROADCASTSD f+40(FP), Y14
	VBROADCASTSD lr+48(FP), Y6
	VBROADCASTSD beta1+56(FP), Y13
	VBROADCASTSD beta2+64(FP), Y11
	VBROADCASTSD a1+72(FP), Y12
	VBROADCASTSD a2+80(FP), Y10
	VBROADCASTSD invB1c+88(FP), Y9
	VBROADCASTSD invB2c+96(FP), Y8
	VBROADCASTSD eps+104(FP), Y7
	VXORPD Y5, Y5, Y5

	XORQ BX, BX
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   adam_tail

adam_loop4:
	VMOVUPD (SI)(BX*1), Y0
	VMULPD  Y14, Y0, Y0
	VMOVUPD Y5, (SI)(BX*1)
	VMOVUPD (R9)(BX*1), Y1
	VMULPD  Y13, Y1, Y1
	VFMADD231PD Y12, Y0, Y1
	VMOVUPD Y1, (R9)(BX*1)
	VMOVUPD (R10)(BX*1), Y2
	VMULPD  Y11, Y2, Y2
	VMULPD  Y0, Y0, Y3
	VFMADD231PD Y10, Y3, Y2
	VMOVUPD Y2, (R10)(BX*1)
	VMULPD  Y9, Y1, Y3
	VMULPD  Y8, Y2, Y4
	VSQRTPD Y4, Y4
	VADDPD  Y7, Y4, Y4
	VDIVPD  Y4, Y3, Y3
	VMOVUPD (DI)(BX*1), Y4
	VFNMADD231PD Y6, Y3, Y4
	VMOVUPD Y4, (DI)(BX*1)
	ADDQ $32, BX
	DECQ AX
	JNZ  adam_loop4

adam_tail:
	ANDQ $3, CX
	JZ   adam_done

adam_tail1:
	VMOVSD (SI)(BX*1), X0
	VMULSD X14, X0, X0
	VMOVSD X5, (SI)(BX*1)
	VMOVSD (R9)(BX*1), X1
	VMULSD X13, X1, X1
	VFMADD231SD X12, X0, X1
	VMOVSD X1, (R9)(BX*1)
	VMOVSD (R10)(BX*1), X2
	VMULSD X11, X2, X2
	VMULSD X0, X0, X3
	VFMADD231SD X10, X3, X2
	VMOVSD X2, (R10)(BX*1)
	VMULSD X9, X1, X3
	VMULSD X8, X2, X4
	VSQRTSD X4, X4, X4
	VADDSD  X7, X4, X4
	VDIVSD  X4, X3, X3
	VMOVSD (DI)(BX*1), X4
	VFNMADD231SD X6, X3, X4
	VMOVSD X4, (DI)(BX*1)
	ADDQ $8, BX
	DECQ CX
	JNZ  adam_tail1

adam_done:
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
