//go:build !amd64

package kernel

// No accelerated kernel set exists for this architecture; the portable
// reference set is the only (and therefore the native-equivalent) choice.

func nativeSet() *Set     { return nil }
func cpuFeatures() string { return "" }
