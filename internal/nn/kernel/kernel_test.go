package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
)

// tol is the cross-set agreement bound from the package contract: sets may
// differ by lane reassociation and FMA contraction only, so even the paper-
// scale reductions stay far inside 1e-12 relative error.
const tol = 1e-12

func fill(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.NormFloat64()
	}
	return s
}

func within(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range want {
		d := math.Abs(got[i] - want[i])
		scale := math.Abs(want[i])
		if scale < 1 {
			scale = 1
		}
		if d > tol*scale {
			t.Fatalf("%s[%d]: got %v want %v (rel err %.3g > %.0g)",
				what, i, got[i], want[i], d/scale, tol)
		}
	}
}

// Shapes deliberately include sizes off every internal stride: below the
// 4-wide vector width, straddling the 4-way/8-way unrolls, and crossing the
// forward kernel's output tile.
var (
	testDims = []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 33, 64, 130}
	testBsz  = []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33}
)

// TestCrossSetAgreement property-tests every accelerated set against the
// Reference set on random tensors at tail shapes, for all four kernels.
func TestCrossSetAgreement(t *testing.T) {
	native := Native()
	if native == nil {
		t.Skip("no accelerated kernel set on this host")
	}
	r := rand.New(rand.NewSource(1))
	for _, in := range testDims {
		for _, out := range testDims {
			for _, bsz := range testBsz {
				x := fill(r, bsz*in)
				w := fill(r, out*in)
				b := fill(r, out)
				grad := fill(r, bsz*out)
				// Zero some gradient columns and one full sample so the
				// zero-skip paths in AccumGrads are exercised too.
				for o := 0; o < out; o += 3 {
					for bi := 0; bi < bsz; bi++ {
						grad[bi*out+o] = 0
					}
				}
				for o := 0; o < out; o++ {
					grad[(bsz-1)*out+o] = 0
				}
				wt := make([]float64, in*out)
				for o := 0; o < out; o++ {
					for i := 0; i < in; i++ {
						wt[i*out+o] = w[o*in+i]
					}
				}

				dstG := make([]float64, bsz*out)
				dstN := make([]float64, bsz*out)
				Reference.DenseForward(dstG, x, w, b, in, out, bsz)
				native.DenseForward(dstN, x, w, b, in, out, bsz)

				ginG := make([]float64, bsz*in)
				ginN := make([]float64, bsz*in)
				Reference.InputGrad(ginG, grad, wt, in, out, bsz)
				native.InputGrad(ginN, grad, wt, in, out, bsz)

				gwG := fill(r, out*in)
				gbG := fill(r, out)
				gwN := append([]float64(nil), gwG...)
				gbN := append([]float64(nil), gbG...)
				Reference.AccumGrads(gwG, gbG, grad, x, in, out, bsz)
				native.AccumGrads(gwN, gbN, grad, x, in, out, bsz)

				what := fmt.Sprintf("in=%d out=%d bsz=%d forward", in, out, bsz)
				within(t, what, dstN, dstG)
				within(t, fmt.Sprintf("in=%d out=%d bsz=%d inputgrad", in, out, bsz), ginN, ginG)
				within(t, fmt.Sprintf("in=%d out=%d bsz=%d gw", in, out, bsz), gwN, gwG)
				within(t, fmt.Sprintf("in=%d out=%d bsz=%d gb", in, out, bsz), gbN, gbG)
			}
		}
	}
}

// TestCrossSetAdam compares the fused Adam step across sets, including the
// gradient-zeroing side effect and moment updates, at tail lengths.
func TestCrossSetAdam(t *testing.T) {
	native := Native()
	if native == nil {
		t.Skip("no accelerated kernel set on this host")
	}
	r := rand.New(rand.NewSource(2))
	const (
		lr, beta1, beta2, eps = 3e-4, 0.9, 0.999, 1e-8
	)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65, 1000} {
		for _, f := range []float64{1, 0.37} {
			valG := fill(r, n)
			gradG := fill(r, n)
			mG := fill(r, n)
			vG := make([]float64, n)
			for i := range vG {
				vG[i] = math.Abs(r.NormFloat64()) // second moment is nonnegative
			}
			valN := append([]float64(nil), valG...)
			gradN := append([]float64(nil), gradG...)
			mN := append([]float64(nil), mG...)
			vN := append([]float64(nil), vG...)

			t8 := 8.0
			invB1c := 1 / (1 - math.Pow(beta1, t8))
			invB2c := 1 / (1 - math.Pow(beta2, t8))
			Reference.AdamStep(valG, gradG, mG, vG, f, lr, beta1, beta2, 1-beta1, 1-beta2, invB1c, invB2c, eps)
			native.AdamStep(valN, gradN, mN, vN, f, lr, beta1, beta2, 1-beta1, 1-beta2, invB1c, invB2c, eps)

			what := fmt.Sprintf("n=%d f=%v", n, f)
			within(t, what+" val", valN, valG)
			within(t, what+" m", mN, mG)
			within(t, what+" v", vN, vG)
			for i, g := range gradN {
				if g != 0 {
					t.Fatalf("%s: grad[%d] = %v, want 0 after fused zeroing", what, i, g)
				}
			}
		}
	}
}

// TestBatchRowIdentity checks the contract the serve daemon's byte-identity
// suite rides on: under a fixed set, forward row k of a batch is bitwise
// identical to the same sample pushed through bsz=1, at every batch size.
func TestBatchRowIdentity(t *testing.T) {
	for _, name := range Names() {
		s, err := Select(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(3))
			for _, in := range []int{3, 17, 64, 130} {
				for _, out := range []int{1, 5, 32, 130} {
					for _, bsz := range testBsz {
						x := fill(r, bsz*in)
						w := fill(r, out*in)
						b := fill(r, out)
						batch := make([]float64, bsz*out)
						s.DenseForward(batch, x, w, b, in, out, bsz)
						single := make([]float64, out)
						for bi := 0; bi < bsz; bi++ {
							s.DenseForward(single, x[bi*in:(bi+1)*in], w, b, in, out, 1)
							for o := 0; o < out; o++ {
								if batch[bi*out+o] != single[o] {
									t.Fatalf("in=%d out=%d bsz=%d row %d out %d: batch %v != single %v (must be bitwise identical)",
										in, out, bsz, bi, o, batch[bi*out+o], single[o])
								}
							}
						}
					}
				}
			}
		})
	}
}

func TestSelect(t *testing.T) {
	if s, err := Select("go"); err != nil || s != Reference {
		t.Fatalf("Select(go) = %v, %v; want Reference", s, err)
	}
	auto, err := Select("")
	if err != nil {
		t.Fatal(err)
	}
	if n := Native(); n != nil {
		if auto != n {
			t.Fatalf("Select(auto) = %q with native available; want %q", auto.Name, n.Name)
		}
		if s, err := Select(n.Name); err != nil || s != n {
			t.Fatalf("Select(%q) = %v, %v; want native set", n.Name, s, err)
		}
	} else if auto != Reference {
		t.Fatalf("Select(auto) = %q without native set; want go", auto.Name)
	}
	if _, err := Select("sse9"); err == nil {
		t.Fatal("Select(sse9): want error for unknown set, got nil")
	}
	if Active() == nil || Name() == "" {
		t.Fatal("no active set after init")
	}
	// Init-order regression: with no override, the selecting init must have
	// seen the arch probe's result (variable initialization precedes init()),
	// so the native set — when one exists — is what actually went live.
	switch forced := os.Getenv("MRSCH_KERNEL"); {
	case forced != "" && forced != "auto":
		if Active().Name != forced {
			t.Fatalf("Active() = %q with MRSCH_KERNEL=%q", Active().Name, forced)
		}
	case Native() != nil:
		if Active() != Native() {
			t.Fatalf("Active() = %q but native set %q exists and no override is set", Active().Name, Native().Name)
		}
	default:
		if Active() != Reference {
			t.Fatalf("Active() = %q with no native set", Active().Name)
		}
	}
	if Features() == "" {
		t.Fatal(`Features() = ""; want detected features or "none"`)
	}
	names := Names()
	if len(names) == 0 || names[0] != "go" {
		t.Fatalf("Names() = %v; want reference first", names)
	}
}

// benchShapes mirror the engine's real call sites: the MRSch default model's
// wide first layer and the serve batch path.
func benchSets() []*Set {
	sets := []*Set{Reference}
	if n := Native(); n != nil {
		sets = append(sets, n)
	}
	return sets
}

func BenchmarkDenseKernels(b *testing.B) {
	const in, out, bsz = 746, 128, 16
	r := rand.New(rand.NewSource(4))
	x := fill(r, bsz*in)
	w := fill(r, out*in)
	bias := fill(r, out)
	wt := make([]float64, in*out)
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			wt[i*out+o] = w[o*in+i]
		}
	}
	dst := make([]float64, bsz*out)
	grad := fill(r, bsz*out)
	gin := make([]float64, bsz*in)
	gw := make([]float64, out*in)
	gb := make([]float64, out)
	for _, s := range benchSets() {
		b.Run("Forward/"+s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.DenseForward(dst, x, w, bias, in, out, bsz)
			}
		})
		b.Run("InputGrad/"+s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.InputGrad(gin, grad, wt, in, out, bsz)
			}
		})
		b.Run("AccumGrads/"+s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.AccumGrads(gw, gb, grad, x, in, out, bsz)
			}
		})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	const n = 746 * 128
	r := rand.New(rand.NewSource(5))
	val := fill(r, n)
	grad0 := fill(r, n)
	grad := append([]float64(nil), grad0...)
	m := fill(r, n)
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Abs(r.NormFloat64())
	}
	for _, s := range benchSets() {
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Refill the gradient outside the timer: the kernel zeroes it,
				// and stepping on all-zero gradients decays the moments into
				// denormal range, which benchmarks sqrt/divide microcode
				// assists instead of the kernel.
				b.StopTimer()
				copy(grad, grad0)
				b.StartTimer()
				s.AdamStep(val, grad, m, v, 1, 3e-4, 0.9, 0.999, 0.1, 0.001, 1.2, 1.05, 1e-8)
			}
		})
	}
}
