package nn

import (
	"math"
	"math/rand"
)

// Param is a learnable tensor with its accumulated gradient. Optimizers
// update Value from Grad; Grad is accumulated across Backward calls until
// the optimizer zeroes it.
type Param struct {
	Name  string
	Value Vec
	Grad  Vec
}

// NewParam allocates a parameter of n elements named name.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, Value: make(Vec, n), Grad: make(Vec, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { Fill(p.Grad, 0) }

// Layer is a differentiable transformation of a single sample.
//
// Backward must be invoked after Forward with the gradient of the loss with
// respect to the layer's most recent output; it accumulates parameter
// gradients and returns the gradient with respect to the input. Layers keep
// whatever forward state they need, so a Layer value must not be shared by
// concurrent forward/backward passes.
type Layer interface {
	Forward(x Vec) Vec
	Backward(grad Vec) Vec
	Params() []*Param
	// OutSize reports the length of the output vector for an input of
	// length in. It lets Sequential validate composition at build time.
	OutSize(in int) int
}

// Init is a weight-initialization scheme.
type Init int

// Supported initializations. HeInit suits rectifier activations (used for
// the paper's leaky-ReLU stacks); XavierInit suits tanh/linear layers.
const (
	HeInit Init = iota
	XavierInit
	ZeroInit
)

// initWeights fills w (treated as fanOut x fanIn) according to scheme.
func initWeights(w Vec, fanIn, fanOut int, scheme Init, rng *rand.Rand) {
	switch scheme {
	case ZeroInit:
		Fill(w, 0)
	case XavierInit:
		// Uniform(-a, a) with a = sqrt(6/(fanIn+fanOut)).
		a := math.Sqrt(6.0 / float64(fanIn+fanOut))
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * a
		}
	default: // HeInit
		std := math.Sqrt(2.0 / float64(fanIn))
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
	}
}
