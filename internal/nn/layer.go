package nn

import (
	"math"
	"math/rand"
)

// Param is a learnable tensor with its accumulated gradient. Optimizers
// update Value from Grad; Grad is accumulated across Backward calls until
// the optimizer zeroes it.
//
// A Param additionally carries an optional versioned snapshot of Value
// (snapshot.go): Snapshot materializes a stable copy that concurrent readers
// may alias while the live Value keeps training, and Publish refreshes that
// copy at a synchronization point chosen by the caller. Params that are
// never snapshotted pay nothing.
type Param struct {
	Name  string
	Value Vec
	Grad  Vec

	// snap is the published copy-on-write view of Value, lazily allocated
	// by Snapshot; version counts Publish calls that refreshed it.
	snap    Vec
	version uint64
}

// NewParam allocates a parameter of n elements named name.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, Value: make(Vec, n), Grad: make(Vec, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { Fill(p.Grad, 0) }

// Layer is a differentiable transformation of a single sample.
//
// Backward must be invoked after Forward with the gradient of the loss with
// respect to the layer's most recent output; it accumulates parameter
// gradients and returns the gradient with respect to the input. Layers keep
// whatever forward state they need, so a Layer value must not be shared by
// concurrent forward/backward passes.
type Layer interface {
	Forward(x Vec) Vec
	Backward(grad Vec) Vec
	Params() []*Param
	// OutSize reports the length of the output vector for an input of
	// length in. It lets Sequential validate composition at build time.
	OutSize(in int) int
}

// BufferedLayer is a Layer whose forward and backward passes can run without
// heap allocation in steady state. ForwardInto/BackwardInto write their
// result into dst and return it; passing dst == nil selects a lazily-grown
// layer-owned scratch buffer, which stays valid until the next call on the
// same layer and must be treated as read-only — a layer may route its
// backward pass through the returned buffer (LeakyReLU routes on the output
// sign), so mutating it corrupts gradients. Buffered layers copy (or avoid
// retaining) their forward input, so callers may freely reuse or mutate the
// input slice between Forward and Backward.
//
// Forward and Backward on the allocating Layer interface remain available as
// thin wrappers that allocate a fresh result.
type BufferedLayer interface {
	Layer
	ForwardInto(dst, x Vec) Vec
	BackwardInto(dst, grad Vec) Vec
}

// BatchLayer is a BufferedLayer that additionally processes a minibatch of
// bsz row-major samples in one call: x holds bsz rows of the layer's input
// width back to back, and the result holds bsz rows of the output width.
// One batched call replaces bsz scalar calls, amortizing loop overhead and
// (for Dense) turning matrix-vector products into blocked matrix-matrix
// kernels. BackwardBatchInto must follow a ForwardBatchInto with the same
// bsz; parameter gradients accumulate summed over the batch rows.
type BatchLayer interface {
	BufferedLayer
	ForwardBatchInto(dst, x Vec, bsz int) Vec
	BackwardBatchInto(dst, grad Vec, bsz int) Vec
}

// Init is a weight-initialization scheme.
type Init int

// Supported initializations. HeInit suits rectifier activations (used for
// the paper's leaky-ReLU stacks); XavierInit suits tanh/linear layers.
const (
	HeInit Init = iota
	XavierInit
	ZeroInit
)

// initWeights fills w (treated as fanOut x fanIn) according to scheme.
func initWeights(w Vec, fanIn, fanOut int, scheme Init, rng *rand.Rand) {
	switch scheme {
	case ZeroInit:
		Fill(w, 0)
	case XavierInit:
		// Uniform(-a, a) with a = sqrt(6/(fanIn+fanOut)).
		a := math.Sqrt(6.0 / float64(fanIn+fanOut))
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * a
		}
	default: // HeInit
		std := math.Sqrt(2.0 / float64(fanIn))
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
	}
}
