package nn

import (
	"math"
	"math/rand"
	"testing"
)

// lossThrough builds a scalar loss from a network: squared distance of the
// output from a fixed target, for a fixed input.
func lossThrough(net Layer, in, target Vec) (loss func() float64, backward func()) {
	loss = func() float64 {
		out := net.Forward(in)
		l, _ := MSE(out, target)
		return l
	}
	backward = func() {
		out := net.Forward(in)
		_, g := MSE(out, target)
		net.Backward(g)
	}
	return loss, backward
}

func TestDenseForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, ZeroInit, rng)
	copy(d.W.Value, Vec{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(d.B.Value, Vec{10, 20})
	out := d.Forward(Vec{1, 1})
	if out[0] != 13 || out[1] != 27 {
		t.Fatalf("Forward = %v, want [13 27]", out)
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(5, 3, HeInit, rng)
	in := make(Vec, 5)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	target := Vec{0.1, -0.2, 0.3}
	loss, backward := lossThrough(d, in, target)
	if worst := GradCheck(d.Params(), loss, backward, 1e-5, 0); worst > 1e-4 {
		t.Fatalf("Dense gradient check failed: max rel err %v", worst)
	}
}

func TestDenseInputGradient(t *testing.T) {
	// Verify dL/dx numerically too, since composed networks depend on it.
	rng := rand.New(rand.NewSource(2))
	d := NewDense(4, 2, HeInit, rng)
	in := Vec{0.5, -0.3, 0.8, 0.1}
	target := Vec{1, -1}
	out := d.Forward(in)
	_, g := MSE(out, target)
	gin := d.Backward(g)
	eps := 1e-6
	for i := range in {
		orig := in[i]
		in[i] = orig + eps
		lp, _ := MSE(d.Forward(in), target)
		in[i] = orig - eps
		lm, _ := MSE(d.Forward(in), target)
		in[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-gin[i]) > 1e-5 {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, gin[i], num)
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	l := NewLeakyReLU(0.1)
	out := l.Forward(Vec{-2, 0, 3})
	if out[0] != -0.2 || out[1] != 0 || out[2] != 3 {
		t.Fatalf("LeakyReLU forward = %v", out)
	}
	gin := l.Backward(Vec{1, 1, 1})
	if gin[0] != 0.1 || gin[2] != 1 {
		t.Fatalf("LeakyReLU backward = %v", gin)
	}
}

func TestLeakyReLUDefaultAlpha(t *testing.T) {
	if NewLeakyReLU(0).Alpha != 0.01 {
		t.Fatal("default alpha should be 0.01")
	}
	if NewLeakyReLU(-5).Alpha != 0.01 {
		t.Fatal("negative alpha should fall back to 0.01")
	}
}

func TestTanhGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSequential(4, NewDense(4, 4, HeInit, rng), NewTanh(), NewDense(4, 2, HeInit, rng))
	in := Vec{0.2, -0.4, 0.6, -0.8}
	loss, backward := lossThrough(net, in, Vec{0.5, -0.5})
	if worst := GradCheck(net.Params(), loss, backward, 1e-5, 0); worst > 1e-4 {
		t.Fatalf("Tanh net gradient check failed: %v", worst)
	}
}

func TestSoftmaxLayerJacobian(t *testing.T) {
	s := NewSoftmax()
	in := Vec{0.3, -1.2, 0.8, 0.0}
	// Check J^T g numerically for an arbitrary upstream gradient.
	g := Vec{0.7, -0.1, 0.4, 0.2}
	s.Forward(in)
	gin := s.Backward(g)
	eps := 1e-6
	for i := range in {
		orig := in[i]
		in[i] = orig + eps
		pp := Softmax(in)
		in[i] = orig - eps
		pm := Softmax(in)
		in[i] = orig
		num := (Dot(pp, g) - Dot(pm, g)) / (2 * eps)
		if math.Abs(num-gin[i]) > 1e-6 {
			t.Fatalf("softmax grad[%d] = %v, numeric %v", i, gin[i], num)
		}
	}
}

func TestConv1DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(1, 4, 1, 2, 1, rng)
	copy(c.W.Value, Vec{1, -1})
	copy(c.B.Value, Vec{0.5})
	out := c.Forward(Vec{1, 2, 3, 5})
	// windows: (1-2), (2-3), (3-5) each +0.5
	want := Vec{-0.5, -0.5, -1.5}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("conv out = %v, want %v", out, want)
		}
	}
	if c.OutLen() != 3 {
		t.Fatalf("OutLen = %d, want 3", c.OutLen())
	}
}

func TestConv1DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewSequential(12,
		NewConv1D(2, 6, 3, 3, 1, rng), // in 2ch x 6 -> 3ch x 4
		NewLeakyReLU(0.01),
		NewDense(12, 2, HeInit, rng),
	)
	in := make(Vec, 12)
	for i := range in {
		in[i] = rng.NormFloat64() * 0.5
	}
	loss, backward := lossThrough(net, in, Vec{0.2, -0.3})
	if worst := GradCheck(net.Params(), loss, backward, 1e-5, 0); worst > 1e-4 {
		t.Fatalf("Conv1D gradient check failed: %v", worst)
	}
}

func TestConv1DStride(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(1, 10, 1, 4, 2, rng)
	if c.OutLen() != 4 { // (10-4)/2+1
		t.Fatalf("OutLen = %d, want 4", c.OutLen())
	}
	out := c.Forward(make(Vec, 10))
	if len(out) != 4 {
		t.Fatalf("len(out) = %d, want 4", len(out))
	}
}

func TestMaxPool1D(t *testing.T) {
	m := NewMaxPool1D(2, 4, 2)
	out := m.Forward(Vec{1, 3, 2, 0 /* ch0 */, 5, 4, 7, 8 /* ch1 */})
	want := Vec{3, 2, 5, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool out = %v, want %v", out, want)
		}
	}
	gin := m.Backward(Vec{1, 1, 1, 1})
	// Gradient must land on the argmax positions only.
	wantG := Vec{0, 1, 1, 0, 1, 0, 0, 1}
	for i := range wantG {
		if gin[i] != wantG[i] {
			t.Fatalf("pool grad = %v, want %v", gin, wantG)
		}
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewSequential(8,
		NewDense(8, 6, HeInit, rng),
		NewLeakyReLU(0.01),
		NewDense(6, 4, HeInit, rng),
		NewLeakyReLU(0.01),
		NewDense(4, 2, HeInit, rng),
	)
	if got := net.OutSize(8); got != 2 {
		t.Fatalf("OutSize = %d, want 2", got)
	}
	if net.NumParams() != 8*6+6+6*4+4+4*2+2 {
		t.Fatalf("NumParams = %d", net.NumParams())
	}
	out := net.Forward(make(Vec, 8))
	if len(out) != 2 {
		t.Fatalf("forward output len = %d", len(out))
	}
}

func TestSequentialRejectsBadComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible layers")
		}
	}()
	NewSequential(8, NewDense(8, 6, HeInit, rng), NewDense(7, 2, HeInit, rng))
}

func TestTrainingConvergesOnXOR(t *testing.T) {
	// End-to-end sanity: a 2-layer net must learn XOR, proving forward,
	// backward, and the optimizer cooperate.
	rng := rand.New(rand.NewSource(42))
	net := NewSequential(2,
		NewDense(2, 8, HeInit, rng),
		NewTanh(),
		NewDense(8, 1, XavierInit, rng),
	)
	opt := NewAdam(0.02)
	xs := []Vec{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []Vec{{0}, {1}, {1}, {0}}
	var last float64
	for epoch := 0; epoch < 800; epoch++ {
		last = 0
		for i, x := range xs {
			out := net.Forward(x)
			l, g := MSE(out, ys[i])
			last += l
			net.Backward(g)
		}
		opt.Step(net.Params())
	}
	if last/4 > 0.02 {
		t.Fatalf("XOR did not converge: final avg loss %v", last/4)
	}
}
