package nn

import (
	"fmt"
	"math"
)

// MSE returns the mean-squared-error loss between pred and target together
// with dL/dpred. The paper trains DFP by MSE between predicted and realized
// future measurement changes (Figure 4 reports this loss).
func MSE(pred, target Vec) (loss float64, grad Vec) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: MSE length mismatch %d vs %d", len(pred), len(target)))
	}
	grad = make(Vec, len(pred))
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}

// MaskedMSE computes MSE over only the positions where mask is true; other
// positions contribute zero loss and zero gradient. DFP regresses only the
// output slots of the action actually taken, so the remaining action slots
// must be masked out of the loss.
func MaskedMSE(pred, target Vec, mask []bool) (loss float64, grad Vec) {
	grad = make(Vec, len(pred))
	loss = MaskedMSEInto(grad, pred, target, mask)
	return loss, grad
}

// MaskedMSEInto is MaskedMSE writing the gradient into grad (which must have
// pred's length) and returning the loss — the zero-allocation variant used
// by the batched training engine.
func MaskedMSEInto(grad, pred, target Vec, mask []bool) (loss float64) {
	if len(pred) != len(target) || len(pred) != len(mask) || len(grad) != len(pred) {
		panic(fmt.Sprintf("nn: MaskedMSE length mismatch %d/%d/%d/%d", len(grad), len(pred), len(target), len(mask)))
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	if n == 0 {
		Fill(grad, 0)
		return 0
	}
	fn := float64(n)
	for i := range pred {
		if !mask[i] {
			grad[i] = 0
			continue
		}
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / fn
	}
	return loss / fn
}

// NLLGrad returns the policy-gradient loss contribution -advantage*log(p[a])
// and its gradient with respect to the probability vector p. It guards
// against log(0) with a small floor.
func NLLGrad(p Vec, action int, advantage float64) (loss float64, grad Vec) {
	if action < 0 || action >= len(p) {
		panic(fmt.Sprintf("nn: NLLGrad action %d out of range %d", action, len(p)))
	}
	const floor = 1e-12
	pa := p[action]
	if pa < floor {
		pa = floor
	}
	loss = -advantage * math.Log(pa)
	grad = make(Vec, len(p))
	grad[action] = -advantage / pa
	return loss, grad
}

// Huber returns the Huber loss (delta=1) and gradient; available as a more
// outlier-robust alternative to MSE for DFP training.
func Huber(pred, target Vec, delta float64) (loss float64, grad Vec) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: Huber length mismatch %d vs %d", len(pred), len(target)))
	}
	if delta <= 0 {
		delta = 1
	}
	grad = make(Vec, len(pred))
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
			grad[i] = d / n
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad[i] = delta / n
			} else {
				grad[i] = -delta / n
			}
		}
	}
	return loss / n, grad
}
