package nn

import "fmt"

// Branch is one sub-network of a MultiBranch layer. It consumes the
// concatenation of the given half-open index ranges of the layer input;
// ranges may overlap between branches (gradients from overlapping reads
// accumulate).
type Branch struct {
	Ranges [][2]int
	Net    Layer
}

func (b *Branch) inSize() int {
	n := 0
	for _, r := range b.Ranges {
		n += r[1] - r[0]
	}
	return n
}

// MultiBranch runs several sub-networks over (possibly overlapping) slices
// of its input and concatenates their outputs. It exists to reproduce the
// state-module design alternative discussed in §III-A of the paper: one
// neural network per resource, each seeing the job window plus its own
// resource's units — the configuration MRSch rejects in favour of a single
// network. Ablation benchmarks compare both.
type MultiBranch struct {
	InSize   int
	Branches []Branch
	outSizes []int
}

// NewMultiBranch validates the branch geometry against the input size.
func NewMultiBranch(inSize int, branches ...Branch) *MultiBranch {
	m := &MultiBranch{InSize: inSize, Branches: branches}
	for i, b := range branches {
		for _, r := range b.Ranges {
			if r[0] < 0 || r[1] > inSize || r[0] >= r[1] {
				panic(fmt.Sprintf("nn: MultiBranch branch %d range %v invalid for input %d", i, r, inSize))
			}
		}
		m.outSizes = append(m.outSizes, b.Net.OutSize(b.inSize()))
	}
	return m
}

// Forward gathers each branch's ranges, runs its net, and concatenates.
func (m *MultiBranch) Forward(x Vec) Vec {
	if len(x) != m.InSize {
		panic(fmt.Sprintf("nn: MultiBranch.Forward got %d inputs, want %d", len(x), m.InSize))
	}
	var out Vec
	for _, b := range m.Branches {
		in := make(Vec, 0, b.inSize())
		for _, r := range b.Ranges {
			in = append(in, x[r[0]:r[1]]...)
		}
		out = append(out, b.Net.Forward(in)...)
	}
	return out
}

// Backward splits the output gradient per branch and scatter-adds each
// branch's input gradient back into the shared input positions.
func (m *MultiBranch) Backward(grad Vec) Vec {
	gin := make(Vec, m.InSize)
	off := 0
	for i, b := range m.Branches {
		g := grad[off : off+m.outSizes[i]]
		off += m.outSizes[i]
		gBranch := b.Net.Backward(g)
		pos := 0
		for _, r := range b.Ranges {
			n := r[1] - r[0]
			for k := 0; k < n; k++ {
				gin[r[0]+k] += gBranch[pos+k]
			}
			pos += n
		}
	}
	if off != len(grad) {
		panic(fmt.Sprintf("nn: MultiBranch.Backward got %d grads, want %d", len(grad), off))
	}
	return gin
}

// Params returns all branches' parameters.
func (m *MultiBranch) Params() []*Param {
	var ps []*Param
	for _, b := range m.Branches {
		ps = append(ps, b.Net.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (m *MultiBranch) OutSize(in int) int {
	if in != m.InSize {
		panic(fmt.Sprintf("nn: MultiBranch.OutSize input %d, layer expects %d", in, m.InSize))
	}
	total := 0
	for _, n := range m.outSizes {
		total += n
	}
	return total
}

var _ Layer = (*MultiBranch)(nil)
