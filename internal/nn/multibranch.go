package nn

import "fmt"

// Branch is one sub-network of a MultiBranch layer. It consumes the
// concatenation of the given half-open index ranges of the layer input;
// ranges may overlap between branches (gradients from overlapping reads
// accumulate).
type Branch struct {
	Ranges [][2]int
	Net    Layer
}

func (b *Branch) inSize() int {
	n := 0
	for _, r := range b.Ranges {
		n += r[1] - r[0]
	}
	return n
}

// MultiBranch runs several sub-networks over (possibly overlapping) slices
// of its input and concatenates their outputs. It exists to reproduce the
// state-module design alternative discussed in §III-A of the paper: one
// neural network per resource, each seeing the job window plus its own
// resource's units — the configuration MRSch rejects in favour of a single
// network. Ablation benchmarks compare both.
type MultiBranch struct {
	InSize   int
	Branches []Branch
	outSizes []int

	gatherBufs [][]float64 // per-branch gathered-input scratch
	outBuf     Vec
	ginBuf     Vec
}

// NewMultiBranch validates the branch geometry against the input size.
func NewMultiBranch(inSize int, branches ...Branch) *MultiBranch {
	m := &MultiBranch{InSize: inSize, Branches: branches}
	for i, b := range branches {
		for _, r := range b.Ranges {
			if r[0] < 0 || r[1] > inSize || r[0] >= r[1] {
				panic(fmt.Sprintf("nn: MultiBranch branch %d range %v invalid for input %d", i, r, inSize))
			}
		}
		m.outSizes = append(m.outSizes, b.Net.OutSize(b.inSize()))
	}
	return m
}

// Forward gathers each branch's ranges, runs its net, and concatenates.
func (m *MultiBranch) Forward(x Vec) Vec {
	return m.ForwardInto(make(Vec, m.OutSize(len(x))), x)
}

// ForwardInto gathers each branch's ranges into layer-owned scratch buffers,
// runs each branch net (writing directly into the branch's slice of dst),
// and returns the concatenation. dst == nil selects a layer-owned buffer.
func (m *MultiBranch) ForwardInto(dst, x Vec) Vec {
	if len(x) != m.InSize {
		panic(fmt.Sprintf("nn: MultiBranch.Forward got %d inputs, want %d", len(x), m.InSize))
	}
	total := 0
	for _, n := range m.outSizes {
		total += n
	}
	if dst == nil {
		m.outBuf = Ensure(m.outBuf, total)
		dst = m.outBuf
	}
	if len(dst) != total {
		panic(fmt.Sprintf("nn: MultiBranch dst len %d, want %d", len(dst), total))
	}
	if m.gatherBufs == nil {
		m.gatherBufs = make([][]float64, len(m.Branches))
	}
	off := 0
	for i := range m.Branches {
		b := &m.Branches[i]
		in := Ensure(m.gatherBufs[i], b.inSize())
		m.gatherBufs[i] = in
		pos := 0
		for _, r := range b.Ranges {
			pos += copy(in[pos:], x[r[0]:r[1]])
		}
		d := dst[off : off+m.outSizes[i]]
		if bl, ok := b.Net.(BufferedLayer); ok {
			bl.ForwardInto(d, in)
		} else {
			copy(d, b.Net.Forward(in))
		}
		off += m.outSizes[i]
	}
	return dst
}

// Backward splits the output gradient per branch and scatter-adds each
// branch's input gradient back into the shared input positions.
func (m *MultiBranch) Backward(grad Vec) Vec {
	return m.BackwardInto(make(Vec, m.InSize), grad)
}

// BackwardInto is the scratch-buffer backward; dst == nil selects a
// layer-owned buffer. dst is zeroed before the scatter-add, since ranges may
// overlap between branches.
func (m *MultiBranch) BackwardInto(dst, grad Vec) Vec {
	if dst == nil {
		m.ginBuf = Ensure(m.ginBuf, m.InSize)
		dst = m.ginBuf
	}
	if len(dst) != m.InSize {
		panic(fmt.Sprintf("nn: MultiBranch dst len %d, want %d", len(dst), m.InSize))
	}
	Fill(dst, 0)
	off := 0
	for i := range m.Branches {
		b := &m.Branches[i]
		g := grad[off : off+m.outSizes[i]]
		off += m.outSizes[i]
		var gBranch Vec
		if bl, ok := b.Net.(BufferedLayer); ok {
			gBranch = bl.BackwardInto(nil, g)
		} else {
			gBranch = b.Net.Backward(g)
		}
		pos := 0
		for _, r := range b.Ranges {
			n := r[1] - r[0]
			for k := 0; k < n; k++ {
				dst[r[0]+k] += gBranch[pos+k]
			}
			pos += n
		}
	}
	if off != len(grad) {
		panic(fmt.Sprintf("nn: MultiBranch.Backward got %d grads, want %d", len(grad), off))
	}
	return dst
}

// Params returns all branches' parameters.
func (m *MultiBranch) Params() []*Param {
	var ps []*Param
	for _, b := range m.Branches {
		ps = append(ps, b.Net.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (m *MultiBranch) OutSize(in int) int {
	if in != m.InSize {
		panic(fmt.Sprintf("nn: MultiBranch.OutSize input %d, layer expects %d", in, m.InSize))
	}
	total := 0
	for _, n := range m.outSizes {
		total += n
	}
	return total
}

var _ BufferedLayer = (*MultiBranch)(nil)
