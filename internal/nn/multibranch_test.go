package nn

import (
	"math/rand"
	"testing"
)

func TestMultiBranchForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Input of 10: branch A sees [0,4), branch B sees [0,2)+[4,10) (overlap
	// on the first two elements, like per-resource nets sharing job slots).
	m := NewMultiBranch(10,
		Branch{Ranges: [][2]int{{0, 4}}, Net: NewDense(4, 3, HeInit, rng)},
		Branch{Ranges: [][2]int{{0, 2}, {4, 10}}, Net: NewDense(8, 5, HeInit, rng)},
	)
	if got := m.OutSize(10); got != 8 {
		t.Fatalf("OutSize = %d, want 8", got)
	}
	out := m.Forward(make(Vec, 10))
	if len(out) != 8 {
		t.Fatalf("forward len = %d", len(out))
	}
}

func TestMultiBranchRejectsBadRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][2]int{{-1, 3}, {2, 12}, {5, 5}, {6, 2}}
	for _, r := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v accepted", r)
				}
			}()
			NewMultiBranch(10, Branch{Ranges: [][2]int{r}, Net: NewDense(r[1]-r[0], 2, HeInit, rng)})
		}()
	}
}

func TestMultiBranchGradCheckWithOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMultiBranch(12,
		Branch{Ranges: [][2]int{{0, 4}, {4, 8}}, Net: NewSequential(8,
			NewDense(8, 5, HeInit, rng), NewLeakyReLU(0.01), NewDense(5, 3, HeInit, rng))},
		Branch{Ranges: [][2]int{{0, 4}, {8, 12}}, Net: NewSequential(8,
			NewDense(8, 5, HeInit, rng), NewLeakyReLU(0.01), NewDense(5, 3, HeInit, rng))},
	)
	in := make(Vec, 12)
	for i := range in {
		in[i] = rng.NormFloat64() * 0.4
	}
	target := Vec{0.1, -0.2, 0.3, 0, 0.2, -0.1}
	loss := func() float64 {
		l, _ := MSE(m.Forward(in), target)
		return l
	}
	backward := func() {
		_, g := MSE(m.Forward(in), target)
		m.Backward(g)
	}
	if worst := GradCheck(m.Params(), loss, backward, 1e-5, 0); worst > 1e-4 {
		t.Fatalf("MultiBranch gradient check failed: %v", worst)
	}
}

func TestMultiBranchInputGradientOverlapAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Two identity-ish branches over the same range: input grads must sum.
	d1 := NewDense(2, 2, ZeroInit, rng)
	copy(d1.W.Value, Vec{1, 0, 0, 1})
	d2 := NewDense(2, 2, ZeroInit, rng)
	copy(d2.W.Value, Vec{1, 0, 0, 1})
	m := NewMultiBranch(2,
		Branch{Ranges: [][2]int{{0, 2}}, Net: d1},
		Branch{Ranges: [][2]int{{0, 2}}, Net: d2},
	)
	m.Forward(Vec{1, 2})
	gin := m.Backward(Vec{1, 1, 1, 1})
	if gin[0] != 2 || gin[1] != 2 {
		t.Fatalf("overlap grads = %v, want [2 2]", gin)
	}
}
