package nn

import "fmt"

// Sequential chains layers, feeding each output into the next layer.
//
// Sequential implements BatchLayer: the Into variants thread layer-owned
// scratch buffers through the chain (zero steady-state allocations when
// every child is a BufferedLayer), and the batch variants run each child's
// minibatch kernel, transparently wrapping children that lack one with the
// Batched per-row adapter.
type Sequential struct {
	Layers []Layer

	adapters []BatchLayer // lazily built batch view per child
}

// NewSequential validates that the layers compose for the given input size
// and returns the network. inSize <= 0 skips validation (useful when the
// caller wires sizes dynamically).
func NewSequential(inSize int, layers ...Layer) *Sequential {
	if inSize > 0 {
		n := inSize
		for i, l := range layers {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("nn: Sequential layer %d rejects input size %d: %v", i, n, r))
					}
				}()
				n = l.OutSize(n)
			}()
		}
	}
	return &Sequential{Layers: layers}
}

// Forward runs the input through every layer in order.
func (s *Sequential) Forward(x Vec) Vec {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardInto runs the chain through layer-owned scratch buffers, writing
// the final output into dst (nil selects the last layer's own buffer).
func (s *Sequential) ForwardInto(dst, x Vec) Vec {
	last := len(s.Layers) - 1
	for i, l := range s.Layers {
		d := Vec(nil)
		if i == last {
			d = dst
		}
		if bl, ok := l.(BufferedLayer); ok {
			x = bl.ForwardInto(d, x)
		} else {
			x = l.Forward(x)
			if d != nil {
				copy(d, x)
				x = d
			}
		}
	}
	if dst != nil && last < 0 {
		copy(dst, x)
		return dst
	}
	return x
}

// Backward propagates the output gradient through the layers in reverse and
// returns the gradient with respect to the network input.
func (s *Sequential) Backward(grad Vec) Vec {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// BackwardInto propagates the gradient through layer-owned scratch buffers,
// writing the input gradient into dst (nil selects the first layer's own
// buffer).
func (s *Sequential) BackwardInto(dst, grad Vec) Vec {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		d := Vec(nil)
		if i == 0 {
			d = dst
		}
		if bl, ok := s.Layers[i].(BufferedLayer); ok {
			grad = bl.BackwardInto(d, grad)
		} else {
			grad = s.Layers[i].Backward(grad)
			if d != nil {
				copy(d, grad)
				grad = d
			}
		}
	}
	if dst != nil && len(s.Layers) == 0 {
		copy(dst, grad)
		return dst
	}
	return grad
}

// batchLayer returns the batch view of child i, building it on first use.
func (s *Sequential) batchLayer(i int) BatchLayer {
	if s.adapters == nil {
		s.adapters = make([]BatchLayer, len(s.Layers))
	}
	if s.adapters[i] == nil {
		s.adapters[i] = Batched(s.Layers[i])
	}
	return s.adapters[i]
}

// ForwardBatchInto runs one minibatch pass through every child's batch
// kernel.
func (s *Sequential) ForwardBatchInto(dst, x Vec, bsz int) Vec {
	last := len(s.Layers) - 1
	for i := range s.Layers {
		d := Vec(nil)
		if i == last {
			d = dst
		}
		x = s.batchLayer(i).ForwardBatchInto(d, x, bsz)
	}
	if dst != nil && last < 0 {
		copy(dst, x)
		return dst
	}
	return x
}

// BackwardBatchNoInput propagates a minibatch of gradients like
// BackwardBatchInto but elides the first layer's input-gradient computation
// when that layer supports it (Dense). For networks whose input is data —
// the DFP state, measurement, and goal modules — dL/dx of the first layer is
// never consumed, and skipping it removes one full matrix-matrix product
// from every training step.
func (s *Sequential) BackwardBatchNoInput(grad Vec, bsz int) {
	for i := len(s.Layers) - 1; i >= 1; i-- {
		grad = s.batchLayer(i).BackwardBatchInto(nil, grad, bsz)
	}
	if len(s.Layers) == 0 {
		return
	}
	if d, ok := s.Layers[0].(*Dense); ok && bsz > 1 {
		d.BackwardBatchParams(grad, bsz)
		return
	}
	s.batchLayer(0).BackwardBatchInto(nil, grad, bsz)
}

// BackwardBatchInto propagates a minibatch of gradients in reverse.
func (s *Sequential) BackwardBatchInto(dst, grad Vec, bsz int) Vec {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		d := Vec(nil)
		if i == 0 {
			d = dst
		}
		grad = s.batchLayer(i).BackwardBatchInto(d, grad, bsz)
	}
	if dst != nil && len(s.Layers) == 0 {
		copy(dst, grad)
		return dst
	}
	return grad
}

// Params returns all learnable parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer, so Sequentials can nest.
func (s *Sequential) OutSize(in int) int {
	for _, l := range s.Layers {
		in = l.OutSize(in)
	}
	return in
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.Value)
	}
	return n
}

var _ BatchLayer = (*Sequential)(nil)
