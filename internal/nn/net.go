package nn

import "fmt"

// Sequential chains layers, feeding each output into the next layer.
type Sequential struct {
	Layers []Layer
}

// NewSequential validates that the layers compose for the given input size
// and returns the network. inSize <= 0 skips validation (useful when the
// caller wires sizes dynamically).
func NewSequential(inSize int, layers ...Layer) *Sequential {
	if inSize > 0 {
		n := inSize
		for i, l := range layers {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("nn: Sequential layer %d rejects input size %d: %v", i, n, r))
					}
				}()
				n = l.OutSize(n)
			}()
		}
	}
	return &Sequential{Layers: layers}
}

// Forward runs the input through every layer in order.
func (s *Sequential) Forward(x Vec) Vec {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through the layers in reverse and
// returns the gradient with respect to the network input.
func (s *Sequential) Backward(grad Vec) Vec {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all learnable parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer, so Sequentials can nest.
func (s *Sequential) OutSize(in int) int {
	for _, l := range s.Layers {
		in = l.OutSize(in)
	}
	return in
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.Value)
	}
	return n
}

var _ Layer = (*Sequential)(nil)
