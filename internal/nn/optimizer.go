package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]Vec
}

// NewSGD returns an SGD optimizer with learning rate lr and momentum mu
// (mu = 0 disables momentum).
func NewSGD(lr, mu float64) *SGD {
	return &SGD{LR: lr, Momentum: mu, velocity: make(map[*Param]Vec)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum != 0 {
			v := o.velocity[p]
			if v == nil {
				v = make(Vec, len(p.Value))
				o.velocity[p] = v
			}
			for i := range p.Value {
				v[i] = o.Momentum*v[i] - o.LR*p.Grad[i]
				p.Value[i] += v[i]
			}
		} else {
			for i := range p.Value {
				p.Value[i] -= o.LR * p.Grad[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba), the de-facto default for
// DFP training in the original implementation.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]Vec
}

// NewAdam returns an Adam optimizer; zero-valued hyperparameters take the
// standard defaults (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]Vec), v: make(map[*Param]Vec),
	}
}

// Step implements Optimizer. The update runs through the active kernel
// set's fused Adam kernel: bias corrections are hoisted into reciprocal
// multiplies and gradient zeroing is fused into the same pass, leaving one
// unavoidable sqrt+divide per element. Step is StepScaled with f=1, which
// is bitwise the unscaled update (x*1.0 is exact for every float64).
func (o *Adam) Step(params []*Param) {
	o.t++
	invB1c := 1 / (1 - math.Pow(o.Beta1, float64(o.t)))
	invB2c := 1 / (1 - math.Pow(o.Beta2, float64(o.t)))
	a1, a2 := 1-o.Beta1, 1-o.Beta2
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make(Vec, len(p.Value))
			v = make(Vec, len(p.Value))
			o.m[p], o.v[p] = m, v
		}
		kern.AdamStep(p.Value, p.Grad, m, v, 1, o.LR, o.Beta1, o.Beta2, a1, a2, invB1c, invB2c, o.Eps)
	}
}

// StepScaled applies one Adam update treating each parameter's effective
// gradient as scale*Grad, clipped to maxNorm when maxNorm > 0 — folding
// what would otherwise be two extra passes (Scale, ClipGrads) into the
// update loop. It matches Scale+ClipGrads+Step to floating-point
// reassociation.
func (o *Adam) StepScaled(params []*Param, scale, maxNorm float64) {
	o.t++
	invB1c := 1 / (1 - math.Pow(o.Beta1, float64(o.t)))
	invB2c := 1 / (1 - math.Pow(o.Beta2, float64(o.t)))
	a1, a2 := 1-o.Beta1, 1-o.Beta2
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make(Vec, len(p.Value))
			v = make(Vec, len(p.Value))
			o.m[p], o.v[p] = m, v
		}
		f := scale
		if maxNorm > 0 {
			if n := scale * L2Norm(p.Grad); n > maxNorm && n > 0 {
				f = scale * (maxNorm / n)
			}
		}
		kern.AdamStep(p.Value, p.Grad, m, v, f, o.LR, o.Beta1, o.Beta2, a1, a2, invB1c, invB2c, o.Eps)
	}
}

// ClipGrads rescales every parameter's gradient so its L2 norm does not
// exceed max. Useful to stabilize early RL training.
func ClipGrads(params []*Param, max float64) {
	for _, p := range params {
		ClipNorm(p.Grad, max)
	}
}
