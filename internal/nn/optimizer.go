package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]Vec
}

// NewSGD returns an SGD optimizer with learning rate lr and momentum mu
// (mu = 0 disables momentum).
func NewSGD(lr, mu float64) *SGD {
	return &SGD{LR: lr, Momentum: mu, velocity: make(map[*Param]Vec)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum != 0 {
			v := o.velocity[p]
			if v == nil {
				v = make(Vec, len(p.Value))
				o.velocity[p] = v
			}
			for i := range p.Value {
				v[i] = o.Momentum*v[i] - o.LR*p.Grad[i]
				p.Value[i] += v[i]
			}
		} else {
			for i := range p.Value {
				p.Value[i] -= o.LR * p.Grad[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba), the de-facto default for
// DFP training in the original implementation.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]Vec
}

// NewAdam returns an Adam optimizer; zero-valued hyperparameters take the
// standard defaults (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]Vec), v: make(map[*Param]Vec),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	b1c := 1 - math.Pow(o.Beta1, float64(o.t))
	b2c := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make(Vec, len(p.Value))
			v = make(Vec, len(p.Value))
			o.m[p], o.v[p] = m, v
		}
		for i := range p.Value {
			g := p.Grad[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / b1c
			vh := v[i] / b2c
			p.Value[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// ClipGrads rescales every parameter's gradient so its L2 norm does not
// exceed max. Useful to stabilize early RL training.
func ClipGrads(params []*Param, max float64) {
	for _, p := range params {
		ClipNorm(p.Grad, max)
	}
}
