package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// quadratic builds params for minimizing f(w) = sum (w_i - c_i)^2.
func quadratic(n int, rng *rand.Rand) (*Param, Vec) {
	p := NewParam("w", n)
	c := make(Vec, n)
	for i := range c {
		c[i] = rng.NormFloat64()
		p.Value[i] = rng.NormFloat64() * 3
	}
	return p, c
}

func gradQuadratic(p *Param, c Vec) float64 {
	var loss float64
	for i := range p.Value {
		d := p.Value[i] - c[i]
		loss += d * d
		p.Grad[i] += 2 * d
	}
	return loss
}

func TestSGDConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, c := quadratic(10, rng)
	opt := NewSGD(0.05, 0)
	for i := 0; i < 200; i++ {
		gradQuadratic(p, c)
		opt.Step([]*Param{p})
	}
	if l := gradQuadratic(p, c); l > 1e-6 {
		t.Fatalf("SGD did not converge: loss %v", l)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, c := quadratic(10, rng)
	opt := NewSGD(0.02, 0.9)
	for i := 0; i < 300; i++ {
		gradQuadratic(p, c)
		opt.Step([]*Param{p})
	}
	if l := gradQuadratic(p, c); l > 1e-4 {
		t.Fatalf("SGD+momentum did not converge: loss %v", l)
	}
}

func TestAdamConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, c := quadratic(10, rng)
	opt := NewAdam(0.1)
	for i := 0; i < 400; i++ {
		gradQuadratic(p, c)
		opt.Step([]*Param{p})
	}
	if l := gradQuadratic(p, c); l > 1e-4 {
		t.Fatalf("Adam did not converge: loss %v", l)
	}
}

func TestStepZeroesGradients(t *testing.T) {
	p := NewParam("w", 3)
	p.Grad[0] = 1
	NewSGD(0.1, 0).Step([]*Param{p})
	for _, g := range p.Grad {
		if g != 0 {
			t.Fatal("SGD.Step left gradients set")
		}
	}
	p.Grad[1] = 2
	NewAdam(0.1).Step([]*Param{p})
	for _, g := range p.Grad {
		if g != 0 {
			t.Fatal("Adam.Step left gradients set")
		}
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad[0], p.Grad[1] = 30, 40
	ClipGrads([]*Param{p}, 5)
	if n := L2Norm(p.Grad); math.Abs(n-5) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 5", n)
	}
}

func TestMSE(t *testing.T) {
	l, g := MSE(Vec{1, 2}, Vec{0, 0})
	if !almostEq(l, 2.5, 1e-12) {
		t.Fatalf("MSE = %v, want 2.5", l)
	}
	if !almostEq(g[0], 1, 1e-12) || !almostEq(g[1], 2, 1e-12) {
		t.Fatalf("MSE grad = %v", g)
	}
}

func TestMaskedMSE(t *testing.T) {
	l, g := MaskedMSE(Vec{1, 5, 2}, Vec{0, 0, 0}, []bool{true, false, true})
	if !almostEq(l, 2.5, 1e-12) {
		t.Fatalf("MaskedMSE = %v, want 2.5", l)
	}
	if g[1] != 0 {
		t.Fatal("masked position received gradient")
	}
	// All-false mask yields zero loss and gradient, not NaN.
	l, g = MaskedMSE(Vec{1}, Vec{0}, []bool{false})
	if l != 0 || g[0] != 0 {
		t.Fatal("all-false mask should be zero loss/grad")
	}
}

func TestNLLGrad(t *testing.T) {
	p := Vec{0.25, 0.75}
	l, g := NLLGrad(p, 1, 2.0)
	want := -2 * math.Log(0.75)
	if !almostEq(l, want, 1e-12) {
		t.Fatalf("NLL = %v, want %v", l, want)
	}
	if !almostEq(g[1], -2/0.75, 1e-12) || g[0] != 0 {
		t.Fatalf("NLL grad = %v", g)
	}
	// Zero probability must not produce Inf.
	l, _ = NLLGrad(Vec{0, 1}, 0, 1)
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatal("NLLGrad with p=0 must be finite")
	}
}

func TestHuber(t *testing.T) {
	// Inside delta: matches 0.5*d^2.
	l, g := Huber(Vec{0.5}, Vec{0}, 1)
	if !almostEq(l, 0.125, 1e-12) || !almostEq(g[0], 0.5, 1e-12) {
		t.Fatalf("Huber inside = %v grad %v", l, g)
	}
	// Outside delta: linear region.
	l, g = Huber(Vec{3}, Vec{0}, 1)
	if !almostEq(l, 2.5, 1e-12) || !almostEq(g[0], 1, 1e-12) {
		t.Fatalf("Huber outside = %v grad %v", l, g)
	}
}

func TestSaveLoadWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(4, NewDense(4, 3, HeInit, rng), NewLeakyReLU(0.01), NewDense(3, 2, HeInit, rng))
	in := Vec{0.1, 0.2, 0.3, 0.4}
	want := net.Forward(in)

	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}

	rng2 := rand.New(rand.NewSource(1234))
	net2 := NewSequential(4, NewDense(4, 3, HeInit, rng2), NewLeakyReLU(0.01), NewDense(3, 2, HeInit, rng2))
	if err := LoadWeights(&buf, net2.Params()); err != nil {
		t.Fatal(err)
	}
	got := net2.Forward(in)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-15) {
			t.Fatalf("restored output %v, want %v", got, want)
		}
	}
}

func TestLoadWeightsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(4, NewDense(4, 3, HeInit, rng))
	var buf bytes.Buffer
	if err := SaveWeights(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewSequential(5, NewDense(5, 3, HeInit, rng))
	if err := LoadWeights(&buf, other.Params()); err == nil {
		t.Fatal("expected error loading mismatched architecture")
	}
}
