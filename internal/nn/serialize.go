package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// weightsFile is the on-disk format: a named flat vector per parameter, in
// parameter order. The architecture itself is reconstructed by the caller
// (model code is versioned with the repository; only weights need persisting).
type weightsFile struct {
	Magic  string
	Params []savedParam
}

type savedParam struct {
	Name   string
	Values []float64
}

const weightsMagic = "mrsch-nn-weights-v1"

// SaveWeights serializes the given parameters to w using encoding/gob.
func SaveWeights(w io.Writer, params []*Param) error {
	GobWarmup()
	f := weightsFile{Magic: weightsMagic}
	for _, p := range params {
		f.Params = append(f.Params, savedParam{Name: p.Name, Values: Copy(p.Value)})
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("nn: save weights: %w", err)
	}
	return nil
}

// LoadWeights restores parameter values previously written by SaveWeights.
// Parameters are matched positionally and checked by name and length, so a
// mismatch between the saved model and the reconstructed architecture is
// reported rather than silently corrupting the network.
func LoadWeights(r io.Reader, params []*Param) error {
	var f weightsFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("nn: load weights: %w", err)
	}
	if f.Magic != weightsMagic {
		return fmt.Errorf("nn: load weights: bad magic %q", f.Magic)
	}
	if len(f.Params) != len(params) {
		return fmt.Errorf("nn: load weights: have %d params, file has %d", len(params), len(f.Params))
	}
	for i, sp := range f.Params {
		p := params[i]
		if sp.Name != p.Name {
			return fmt.Errorf("nn: load weights: param %d name %q, file has %q", i, p.Name, sp.Name)
		}
		if len(sp.Values) != len(p.Value) {
			return fmt.Errorf("nn: load weights: param %q length %d, file has %d", p.Name, len(p.Value), len(sp.Values))
		}
		copy(p.Value, sp.Values)
	}
	return nil
}
