// Versioned copy-on-write weight snapshots. A snapshot is a second, stable
// buffer per Param that rollout actors read while the optimizer keeps
// mutating the live Value — the mechanism that lets internal/rollout overlap
// episode collection with gradient steps (pipelined training).
//
// The protocol has two sides:
//
//   - Readers call SnapshotClone on a network. The clone's params alias each
//     Param's snapshot buffer (materialized as a copy of Value on first use),
//     so any number of clones can run concurrent forward passes against a
//     frozen weight version.
//
//   - The single writer calls Publish (or PublishParams) at a point where no
//     reader is mid-forward — e.g. internal/rollout's inter-round join — to
//     copy the live Value into the snapshot buffer in place and bump the
//     version. Existing clones see the new weights on their next forward
//     pass without re-cloning.
//
// Publish between synchronization points, never concurrently with readers:
// the snapshot buffer is shared by all clones, so refreshing it mid-read
// would race. Params nobody snapshotted skip the copy entirely (the
// copy-on-write property: inference-only and barrier-mode agents never pay).
package nn

// Snapshot returns the param's published value buffer, materializing it as a
// copy of the current Value on first call. The returned slice is stable: all
// later Publish calls refresh it in place, so readers that alias it follow
// the published version without re-acquiring.
func (p *Param) Snapshot() Vec {
	if p.snap == nil {
		p.snap = Copy(p.Value)
	}
	return p.snap
}

// Publish copies the live Value into the snapshot buffer and bumps the
// version. It is a no-op for params that were never snapshotted. The caller
// must guarantee no concurrent reader of the snapshot (see the file doc).
func (p *Param) Publish() {
	if p.snap == nil {
		return
	}
	copy(p.snap, p.Value)
	p.version++
}

// Version reports how many times the snapshot has been refreshed by Publish
// (0 while it still holds the value captured at materialization).
func (p *Param) Version() uint64 { return p.version }

// SnapshotParams materializes the snapshot of every param, so a subsequent
// PublishParams covers them all.
func SnapshotParams(ps []*Param) {
	for _, p := range ps {
		p.Snapshot()
	}
}

// PublishParams publishes every param's live value into its snapshot.
func PublishParams(ps []*Param) {
	for _, p := range ps {
		p.Publish()
	}
}

// snapshotParam returns a Param whose Value aliases p's published snapshot
// buffer, with a private gradient buffer. It is the param view behind
// SnapshotClone, the read-side of the pipelined-training protocol.
func snapshotParam(p *Param) *Param {
	return &Param{Name: p.Name, Value: p.Snapshot(), Grad: make(Vec, len(p.Grad))}
}

// SnapshotClone returns a copy of l whose parameters read the published
// weight snapshot (materializing it from the current live values on first
// use) instead of the live Value buffers, with private forward state. The
// clone's weights stay frozen at the last published version while the
// original trains, and advance when the owner calls Publish/PublishParams at
// a synchronization point. The second result reports whether every sub-layer
// is of a supported built-in type; custom SharedCloner layers cannot opt in
// (they alias live values by construction), so networks containing them
// report false and callers must fall back to barrier-synchronized training.
func SnapshotClone(l Layer) (Layer, bool) {
	return cloneWith(l, snapshotParam, nil)
}
