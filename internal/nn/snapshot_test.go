package nn

import (
	"math/rand"
	"testing"
)

func testNet(rng *rand.Rand) *Sequential {
	return NewSequential(6,
		NewDense(6, 8, HeInit, rng), NewLeakyReLU(0.01),
		NewDense(8, 4, XavierInit, rng),
	)
}

// Snapshot materializes a copy of the live value once, stays stable while the
// live value mutates, and follows Publish in place (same backing array).
func TestParamSnapshotPublishVersioning(t *testing.T) {
	p := NewParam("w", 4)
	copy(p.Value, []float64{1, 2, 3, 4})

	// Publish before any snapshot is a no-op and does not bump the version.
	p.Publish()
	if p.Version() != 0 {
		t.Fatalf("version %d after publish without snapshot", p.Version())
	}

	snap := p.Snapshot()
	if &snap[0] == &p.Value[0] {
		t.Fatal("snapshot aliases the live value")
	}
	for i, v := range []float64{1, 2, 3, 4} {
		if snap[i] != v {
			t.Fatalf("snap[%d] = %v, want %v", i, snap[i], v)
		}
	}

	// Live mutation is invisible until Publish.
	p.Value[0] = 99
	if snap[0] != 1 {
		t.Fatalf("snapshot moved with live value: %v", snap[0])
	}
	p.Publish()
	if snap[0] != 99 {
		t.Fatalf("snapshot did not follow Publish: %v", snap[0])
	}
	if p.Version() != 1 {
		t.Fatalf("version %d after one publish", p.Version())
	}

	// Snapshot is idempotent: the same backing buffer every time.
	if again := p.Snapshot(); &again[0] != &snap[0] {
		t.Fatal("Snapshot returned a different buffer on second call")
	}
}

// SnapshotClone outputs are frozen at the published version while the
// original's live weights change, and advance on PublishParams without
// re-cloning. SharedClone, by contrast, follows live weights immediately.
func TestSnapshotCloneFreezesUntilPublish(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := testNet(rng)
	x := []float64{0.3, -0.2, 0.8, 0.1, -0.5, 0.4}

	snapC, ok := SnapshotClone(net)
	if !ok {
		t.Fatal("SnapshotClone rejected a built-in network")
	}
	sharedC, ok := SharedClone(net)
	if !ok {
		t.Fatal("SharedClone rejected a built-in network")
	}
	before := Copy(net.Forward(x))

	// Perturb the live weights.
	for _, p := range net.Params() {
		for i := range p.Value {
			p.Value[i] += 0.1
		}
	}
	after := Copy(net.Forward(x))

	snapOut := snapC.Forward(x)
	for i := range snapOut {
		if snapOut[i] != before[i] {
			t.Fatalf("snapshot clone output[%d] = %v, want frozen %v", i, snapOut[i], before[i])
		}
	}
	sharedOut := sharedC.Forward(x)
	for i := range sharedOut {
		if sharedOut[i] != after[i] {
			t.Fatalf("shared clone output[%d] = %v, want live %v", i, sharedOut[i], after[i])
		}
	}

	PublishParams(net.Params())
	snapOut = snapC.Forward(x)
	for i := range snapOut {
		if snapOut[i] != after[i] {
			t.Fatalf("published snapshot clone output[%d] = %v, want %v", i, snapOut[i], after[i])
		}
	}
}

// Two snapshot clones of one network alias the same published buffers, so a
// single Publish updates both.
func TestSnapshotClonesShareOneVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := testNet(rng)
	x := []float64{1, 0, -1, 0.5, 0.2, -0.3}

	a, _ := SnapshotClone(net)
	b, _ := SnapshotClone(net)
	net.Params()[0].Value[0] += 2.5
	PublishParams(net.Params())

	ao, bo := a.Forward(x), b.Forward(x)
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("clone outputs diverge at %d: %v vs %v", i, ao[i], bo[i])
		}
	}
}

type customLayer struct{ Layer }

func (c customLayer) SharedClone() Layer { return c }

// Custom SharedCloner layers alias live values by construction, so
// SnapshotClone must reject networks containing them (barrier fallback).
func TestSnapshotCloneRejectsCustomLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSequential(0, customLayer{NewDense(4, 4, HeInit, rng)})
	if _, ok := SnapshotClone(net); ok {
		t.Fatal("SnapshotClone accepted a custom SharedCloner layer")
	}
	if _, ok := SharedClone(net); !ok {
		t.Fatal("SharedClone must still accept custom SharedCloner layers")
	}
}

// SnapshotParams materializes every param so one PublishParams covers the
// whole network even for params first read later.
func TestSnapshotParamsMaterializesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := testNet(rng)
	ps := net.Params()
	SnapshotParams(ps)
	for i, p := range ps {
		p.Value[0] += 1
		p.Publish()
		if p.Version() != 1 {
			t.Fatalf("param %d version %d, want 1", i, p.Version())
		}
		if got := p.Snapshot()[0]; got != p.Value[0] {
			t.Fatalf("param %d snapshot %v, want %v", i, got, p.Value[0])
		}
	}
}
