package nn

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector. It is the currency of this package: layer
// inputs, outputs, and gradients are all Vecs.
type Vec = []float64

// Zeros returns a vector of n zeros.
func Zeros(n int) Vec { return make(Vec, n) }

// Copy returns a fresh copy of v.
func Copy(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func Fill(v Vec, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Ensure returns a slice of length n, reusing buf's storage when it has the
// capacity and allocating otherwise. Contents are unspecified; callers that
// need zeros must Fill. It is the growth primitive behind every scratch
// buffer in this package: after warm-up, Ensure never allocates.
func Ensure(buf Vec, n int) Vec {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make(Vec, n)
}

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("nn: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Add returns a+b as a new vector.
func Add(a, b Vec) Vec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("nn: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddTo accumulates src into dst in place.
func AddTo(dst, src Vec) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: AddTo length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range src {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of v by s in place.
func Scale(v Vec, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Scaled returns s*v as a new vector.
func Scaled(v Vec, s float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Concat concatenates vectors into one new vector.
func Concat(vs ...Vec) Vec {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vec, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// ArgMax returns the index of the largest element, or -1 for an empty vector.
func ArgMax(v Vec) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Mean returns the arithmetic mean of v (0 for an empty vector).
func Mean(v Vec) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Softmax returns the softmax distribution of v, computed stably.
func Softmax(v Vec) Vec {
	if len(v) == 0 {
		return nil
	}
	out := make(Vec, len(v))
	SoftmaxInto(out, v)
	return out
}

// SoftmaxInto writes the stable softmax of v into dst (same length, may
// alias v) without allocating.
func SoftmaxInto(dst, v Vec) {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("nn: SoftmaxInto length mismatch %d vs %d", len(dst), len(v)))
	}
	if len(v) == 0 {
		return
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// L2Norm returns the Euclidean norm of v. Four parallel accumulators hide
// the floating-point add latency on the long gradient vectors the optimizer
// clips every step.
func L2Norm(v Vec) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i] * v[i]
	}
	return math.Sqrt(s0 + s1 + s2 + s3)
}

// ClipNorm rescales v in place so its L2 norm does not exceed max.
// It returns the norm before clipping.
func ClipNorm(v Vec, max float64) float64 {
	n := L2Norm(v)
	if n > max && n > 0 {
		Scale(v, max/n)
	}
	return n
}

// IsFinite reports whether every element of v is finite (no NaN or Inf).
func IsFinite(v Vec) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
