package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot(Vec{1, 2, 3}, Vec{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(Vec{}, Vec{}); got != 0 {
		t.Fatalf("Dot empty = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestAddScaleConcat(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, 4}
	sum := Add(a, b)
	if sum[0] != 4 || sum[1] != 6 {
		t.Fatalf("Add = %v", sum)
	}
	Scale(sum, 0.5)
	if sum[0] != 2 || sum[1] != 3 {
		t.Fatalf("Scale = %v", sum)
	}
	c := Concat(a, b, Vec{5})
	if len(c) != 5 || c[4] != 5 {
		t.Fatalf("Concat = %v", c)
	}
	// Concat must copy: mutating the result must not alias the inputs.
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("Concat aliased its input")
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(Vec{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", got)
	}
	// Ties resolve to the first occurrence.
	if got := ArgMax(Vec{2, 2, 2}); got != 0 {
		t.Fatalf("ArgMax tie = %d, want 0", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(Vec, len(raw))
		for i, x := range raw {
			// Bound inputs to keep exp finite but still exercise spread.
			v[i] = math.Mod(x, 50)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		p := Softmax(v)
		var sum float64
		for _, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	v := Vec{1, 2, 3}
	shifted := Vec{101, 102, 103}
	a, b := Softmax(v), Softmax(shifted)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-12) {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestClipNorm(t *testing.T) {
	v := Vec{3, 4}
	n := ClipNorm(v, 1)
	if !almostEq(n, 5, 1e-12) {
		t.Fatalf("pre-clip norm = %v, want 5", n)
	}
	if !almostEq(L2Norm(v), 1, 1e-12) {
		t.Fatalf("post-clip norm = %v, want 1", L2Norm(v))
	}
	// Vectors under the cap are untouched.
	w := Vec{0.1, 0.1}
	ClipNorm(w, 10)
	if w[0] != 0.1 {
		t.Fatal("ClipNorm modified a vector under the cap")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(Vec{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if IsFinite(Vec{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if IsFinite(Vec{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestMeanAndCopy(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean(Vec{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	v := Vec{1, 2}
	c := Copy(v)
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Copy aliased")
	}
}

func TestInitWeightsSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := make(Vec, 1000)
	initWeights(w, 100, 10, HeInit, rng)
	var sum, sq float64
	for _, x := range w {
		sum += x
		sq += x * x
	}
	mean := sum / 1000
	std := math.Sqrt(sq/1000 - mean*mean)
	want := math.Sqrt(2.0 / 100)
	if math.Abs(std-want) > want/3 {
		t.Fatalf("He init std = %v, want ~%v", std, want)
	}

	initWeights(w, 100, 10, XavierInit, rng)
	bound := math.Sqrt(6.0 / 110)
	for _, x := range w {
		if x < -bound || x > bound {
			t.Fatalf("Xavier weight %v out of bound %v", x, bound)
		}
	}

	initWeights(w, 100, 10, ZeroInit, rng)
	for _, x := range w {
		if x != 0 {
			t.Fatal("ZeroInit left nonzero weight")
		}
	}
}
