package rl

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/sched"
)

// Actor is a read-only rollout clone of a Scheduler: its policy network
// aliases the master's weights (nn.SharedClone) while its forward caches,
// sampling rng, and trajectory record are private, so multiple
// concurrency-safe actors can sample episodes in parallel against one set of
// weights. Actors always act in training mode (stochastic prefix sampling);
// the recorded trajectory is handed back with TakeTrajectory and applied to
// the master with Scheduler.IngestTrajectory.
type Actor struct {
	s     *Scheduler // read-only: cfg, enc, reward weights
	net   *nn.Sequential
	rng   *rand.Rand
	steps []step
}

// Actor returns a rollout actor for the scheduler. The second result reports
// whether the actor is safe to run concurrently with other actors; when the
// network cannot be replicated by nn.SharedClone the actor borrows the
// master's own layers and must be the only one in use.
func (s *Scheduler) Actor() (*Actor, bool) {
	c, ok := nn.SharedClone(s.net)
	if !ok {
		return &Actor{s: s, net: s.net, rng: rand.New(rand.NewSource(s.cfg.Seed))}, false
	}
	return &Actor{s: s, net: c.(*nn.Sequential), rng: rand.New(rand.NewSource(s.cfg.Seed))}, true
}

// SnapshotActor returns a rollout actor whose policy network reads the
// published copy-on-write weight snapshot (nn.SnapshotClone) instead of the
// live weights, so it may sample episodes concurrently with REINFORCE
// updates on the master — the scalar-RL side of pipelined rollout-training.
// The weights it sees advance only at PublishWeights, which must run with no
// snapshot actor mid-rollout. It reports false when the network cannot be
// snapshot-cloned; there is no borrow-the-master fallback.
func (s *Scheduler) SnapshotActor() (*Actor, bool) {
	c, ok := nn.SnapshotClone(s.net)
	if !ok {
		return nil, false
	}
	return &Actor{s: s, net: c.(*nn.Sequential), rng: rand.New(rand.NewSource(s.cfg.Seed))}, true
}

// PublishWeights copies the live policy weights into the snapshot read by
// SnapshotActor clones (nn.PublishParams). Call it only at a synchronization
// point with no snapshot actor mid-rollout.
func (s *Scheduler) PublishWeights() { nn.PublishParams(s.net.Params()) }

var _ sched.Picker = (*Actor)(nil)

// Reset prepares the actor for one episode: a fresh sampling rng at the
// given seed and an empty trajectory.
func (a *Actor) Reset(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
	a.steps = nil
}

// Pick implements sched.Picker with the master's training-mode decision
// logic: stochastic sampling over the valid window prefix, recording the
// fixed-weight scalar reward of the selection.
func (a *Actor) Pick(ctx *sched.PickContext) int {
	state := a.s.enc.Encode(ctx)
	probs := a.net.Forward(state)
	valid := len(ctx.Window)
	if valid > a.s.cfg.Window {
		valid = a.s.cfg.Window
	}
	action := samplePrefix(probs, valid, a.rng)
	a.steps = append(a.steps, step{
		state:  state,
		action: action,
		valid:  valid,
		reward: a.s.reward(ctx, action),
	})
	return action
}

// Policy wraps the actor in the shared scheduling framework with the
// master's window size.
func (a *Actor) Policy() *sched.WindowPolicy {
	return sched.NewWindowPolicy(a, a.s.cfg.Window)
}

// Trajectory is one episode's recorded decisions, opaque to callers. It is
// produced by Actor.TakeTrajectory and consumed by Scheduler.IngestTrajectory.
type Trajectory struct {
	steps []step
}

// Len returns the number of recorded decisions.
func (t *Trajectory) Len() int { return len(t.steps) }

// TakeTrajectory detaches and returns the episode recorded since the last
// Reset, leaving the actor empty for the next rollout.
func (a *Actor) TakeTrajectory() *Trajectory {
	t := &Trajectory{steps: a.steps}
	a.steps = nil
	return t
}

// IngestTrajectory applies one REINFORCE update over an actor-collected
// episode, exactly as EndEpisode does for episodes recorded by the master
// itself, and returns the mean policy loss.
func (s *Scheduler) IngestTrajectory(t *Trajectory) float64 {
	return s.ingest(t.steps)
}
