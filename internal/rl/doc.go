// Package rl implements the paper's "Scalar RL" comparison method (§IV-D):
// a policy-gradient (REINFORCE) agent that collapses the multi-resource
// objective into one scalar reward with fixed weights — 0.5*CPU utilization
// + 0.5*burst-buffer utilization for two resources, 1/R each in general.
// It observes the same vector state encoding as MRSch and schedules through
// the same window/reservation/backfilling framework, so the only difference
// the experiments measure is fixed versus dynamic resource prioritizing.
//
// # Determinism and seeding
//
// All stochastic behaviour — weight initialization and training-time action
// sampling — derives from Config.Seed, so a serial training run is
// reproducible bit for bit. For parallel episode collection, Scheduler.Actor
// returns read-only clones whose policy network aliases the master weights
// (nn.SharedClone) while the sampling rng and trajectory record are private;
// actors are reseeded per episode and their trajectories applied in episode
// order by Scheduler.IngestTrajectory. The canonical statement of the
// per-episode seeding and ordering rules lives in the internal/rollout
// package documentation.
package rl
