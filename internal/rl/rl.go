package rl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/encode"
	"repro/internal/nn"
	"repro/internal/sched"
)

// Config tunes the policy-gradient agent.
type Config struct {
	// Window is W (default 10).
	Window int
	// Hidden are the policy network's hidden-layer widths.
	Hidden []int
	// Weights are the fixed per-resource reward weights; nil means uniform
	// 1/R (the paper's 0.5/0.5 for two resources).
	Weights []float64
	// LR is the Adam learning rate; Gamma the discount factor.
	LR, Gamma float64
	// GradClip caps per-parameter gradient norms (0 disables).
	GradClip float64
	// Seed fixes stochastic behaviour.
	Seed int64
}

// DefaultConfig returns the experiment-scale settings.
func DefaultConfig() Config {
	return Config{Window: 10, Hidden: []int{64, 32}, LR: 1e-3, Gamma: 0.99, GradClip: 5, Seed: 1}
}

type step struct {
	state  []float64
	action int
	valid  int
	reward float64
}

// Scheduler is the scalar-reward policy-gradient picker.
type Scheduler struct {
	cfg Config
	enc encode.Config
	net *nn.Sequential // state -> logits -> softmax probabilities

	// Train enables stochastic action sampling and episode recording.
	Train bool

	rng *rand.Rand
	// rngSrc is rng's underlying source; its draw cursor is what
	// SaveState/LoadState (state.go) persist to resume the stream exactly.
	rngSrc  *nn.CursorSource
	opt     *nn.Adam
	episode []step
}

// New builds a scalar-RL scheduler for the given system.
func New(sys cluster.Config, cfg Config) *Scheduler {
	if cfg.Window <= 0 {
		cfg.Window = 10
	}
	if cfg.Gamma <= 0 || cfg.Gamma > 1 {
		cfg.Gamma = 0.99
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64, 32}
	}
	enc := encode.NewConfig(cfg.Window, sys.Capacities)
	r := enc.Resources()
	if cfg.Weights == nil {
		cfg.Weights = make([]float64, r)
		for i := range cfg.Weights {
			cfg.Weights[i] = 1 / float64(r)
		}
	}
	if len(cfg.Weights) != r {
		panic(fmt.Sprintf("rl: %d reward weights for %d resources", len(cfg.Weights), r))
	}
	// The agent rng rides a CursorSource so its position can be
	// checkpointed; the draw streams are bit-identical to rand.NewSource.
	src := nn.NewCursorSource(cfg.Seed)
	rng := rand.New(src)
	layers := []nn.Layer{}
	in := enc.StateDim()
	for _, h := range cfg.Hidden {
		layers = append(layers, nn.NewDense(in, h, nn.HeInit, rng), nn.NewLeakyReLU(0.01))
		in = h
	}
	layers = append(layers, nn.NewDense(in, cfg.Window, nn.XavierInit, rng), nn.NewSoftmax())
	return &Scheduler{
		cfg:    cfg,
		enc:    enc,
		net:    nn.NewSequential(enc.StateDim(), layers...),
		rng:    rng,
		rngSrc: src,
		opt:    nn.NewAdam(cfg.LR),
	}
}

var _ sched.Picker = (*Scheduler)(nil)

// Policy wraps the agent in the shared scheduling framework.
func (s *Scheduler) Policy() *sched.WindowPolicy {
	return sched.NewWindowPolicy(s, s.cfg.Window)
}

// Pick implements sched.Picker. The scalar reward recorded for the step is
// the fixed-weight utilization the system would reach after the action — the
// immediate effect of the selection under the static priorities.
func (s *Scheduler) Pick(ctx *sched.PickContext) int {
	state := s.enc.Encode(ctx)
	probs := s.net.Forward(state)
	valid := len(ctx.Window)
	if valid > s.cfg.Window {
		valid = s.cfg.Window
	}
	var action int
	if s.Train {
		action = samplePrefix(probs, valid, s.rng)
	} else {
		action = nn.ArgMax(probs[:valid])
	}
	if s.Train {
		s.episode = append(s.episode, step{
			state:  state,
			action: action,
			valid:  valid,
			reward: s.reward(ctx, action),
		})
	}
	return action
}

// reward is the fixed-weight scalar: sum_r w_r * util_r after hypothetically
// starting the chosen job (if it fits).
func (s *Scheduler) reward(ctx *sched.PickContext, action int) float64 {
	cl := ctx.Cluster
	j := ctx.Window[action]
	fits := cl.CanFit(j.Demand)
	total := 0.0
	for r := 0; r < cl.NumResources(); r++ {
		used := cl.Used(r)
		if fits {
			used += j.Demand[r]
		}
		total += s.cfg.Weights[r] * float64(used) / float64(cl.Capacity(r))
	}
	return total
}

// samplePrefix draws an index from probs[:valid] renormalized.
func samplePrefix(probs []float64, valid int, rng *rand.Rand) int {
	var sum float64
	for _, p := range probs[:valid] {
		sum += p
	}
	if sum <= 0 {
		return rng.Intn(valid)
	}
	x := rng.Float64() * sum
	for i, p := range probs[:valid] {
		x -= p
		if x <= 0 {
			return i
		}
	}
	return valid - 1
}

// EndEpisode applies one REINFORCE update over the recorded episode and
// clears it. It returns the mean policy loss (0 for an empty episode).
// Actor-collected episodes go through the same update via IngestTrajectory
// (actor.go).
func (s *Scheduler) EndEpisode() float64 {
	steps := s.episode
	s.episode = nil
	return s.ingest(steps)
}

func (s *Scheduler) ingest(steps []step) float64 {
	n := len(steps)
	if n == 0 {
		return 0
	}
	// Discounted returns.
	returns := make([]float64, n)
	g := 0.0
	for t := n - 1; t >= 0; t-- {
		g = steps[t].reward + s.cfg.Gamma*g
		returns[t] = g
	}
	// Standardized advantages (mean-zero baseline).
	mean := 0.0
	for _, r := range returns {
		mean += r
	}
	mean /= float64(n)
	variance := 0.0
	for _, r := range returns {
		d := r - mean
		variance += d * d
	}
	std := math.Sqrt(variance / float64(n))
	if std < 1e-8 {
		std = 1
	}

	totalLoss := 0.0
	for t, st := range steps {
		adv := (returns[t] - mean) / std
		probs := s.net.Forward(st.state)
		loss, grad := prefixNLLGrad(probs, st.action, st.valid, adv)
		totalLoss += loss
		s.net.Backward(grad)
	}
	params := s.net.Params()
	for _, p := range params {
		nn.Scale(p.Grad, 1/float64(n))
	}
	if s.cfg.GradClip > 0 {
		nn.ClipGrads(params, s.cfg.GradClip)
	}
	s.opt.Step(params)
	return totalLoss / float64(n)
}

// prefixNLLGrad computes L = -adv * log(p_a / S) with S = sum(probs[:valid])
// and its gradient with respect to the probability vector. Restricting to
// the valid prefix keeps the policy correct when the queue is shorter than
// the window.
func prefixNLLGrad(probs []float64, action, valid int, adv float64) (float64, []float64) {
	const floor = 1e-12
	var sum float64
	for _, p := range probs[:valid] {
		sum += p
	}
	if sum < floor {
		sum = floor
	}
	pa := probs[action]
	if pa < floor {
		pa = floor
	}
	loss := -adv * math.Log(pa/sum)
	grad := make([]float64, len(probs))
	for i := 0; i < valid; i++ {
		grad[i] = adv / sum
	}
	grad[action] -= adv / pa
	return loss, grad
}
