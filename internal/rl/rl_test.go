package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

func sys() cluster.Config {
	return cluster.Config{Name: "r", Resources: []string{"nodes", "bb"}, Capacities: []int{16, 8}}
}

func mk(id int, submit, wall float64, nodes, bb int) *job.Job {
	return &job.Job{ID: id, Submit: submit, Runtime: wall, Walltime: wall, Demand: []int{nodes, bb}}
}

func tinyConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Window = 4
	cfg.Hidden = []int{16}
	cfg.Seed = seed
	return cfg
}

func ctxWith(cl *cluster.Cluster, now float64, queue []*job.Job) *sched.PickContext {
	w := queue
	if len(w) > 4 {
		w = w[:4]
	}
	return &sched.PickContext{Now: now, Window: w, Queue: queue, Cluster: cl, Usage: cl.Usage()}
}

func TestDefaultWeightsUniform(t *testing.T) {
	s := New(sys(), tinyConfig(1))
	if len(s.cfg.Weights) != 2 || s.cfg.Weights[0] != 0.5 || s.cfg.Weights[1] != 0.5 {
		t.Fatalf("weights = %v, want paper's fixed 0.5/0.5", s.cfg.Weights)
	}
}

func TestRewardComputation(t *testing.T) {
	s := New(sys(), tinyConfig(1))
	cl := cluster.New(sys())
	if err := cl.Allocate(9, []int{8, 0}, 0, 100); err != nil {
		t.Fatal(err)
	}
	queue := []*job.Job{mk(1, 0, 100, 4, 4)}
	ctx := ctxWith(cl, 0, queue)
	// Fits: nodes (8+4)/16 = 0.75, bb (0+4)/8 = 0.5 -> 0.5*0.75+0.5*0.5 = 0.625.
	if got := s.reward(ctx, 0); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("reward = %v, want 0.625", got)
	}
	// Non-fitting job: reward is current utilization only.
	queue = []*job.Job{mk(2, 0, 100, 16, 0)}
	ctx = ctxWith(cl, 0, queue)
	if got := s.reward(ctx, 0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("non-fitting reward = %v, want 0.25", got)
	}
}

func TestPickWithinWindow(t *testing.T) {
	s := New(sys(), tinyConfig(2))
	cl := cluster.New(sys())
	queue := []*job.Job{mk(1, 0, 10, 1, 0), mk(2, 0, 10, 2, 1)}
	for trial := 0; trial < 20; trial++ {
		if got := s.Pick(ctxWith(cl, 0, queue)); got < 0 || got >= 2 {
			t.Fatalf("pick %d out of range", got)
		}
	}
}

func TestSamplePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	probs := []float64{0.1, 0.9, 0.0, 0.0}
	counts := [2]int{}
	for i := 0; i < 2000; i++ {
		k := samplePrefix(probs, 2, rng)
		if k < 0 || k > 1 {
			t.Fatalf("sample out of prefix: %d", k)
		}
		counts[k]++
	}
	if counts[1] < 1500 {
		t.Fatalf("sampling ignores probabilities: %v", counts)
	}
	// Degenerate all-zero prefix falls back to uniform.
	if k := samplePrefix([]float64{0, 0, 1}, 2, rng); k < 0 || k > 1 {
		t.Fatalf("degenerate sample = %d", k)
	}
}

func TestPrefixNLLGradMatchesFiniteDifference(t *testing.T) {
	probs := []float64{0.2, 0.5, 0.3, 0.0}
	valid, action, adv := 3, 1, 1.7
	loss, grad := prefixNLLGrad(probs, action, valid, adv)
	wantLoss := -adv * math.Log(0.5/1.0)
	if math.Abs(loss-wantLoss) > 1e-12 {
		t.Fatalf("loss = %v, want %v", loss, wantLoss)
	}
	eps := 1e-7
	for i := 0; i < valid; i++ {
		p2 := append([]float64(nil), probs...)
		p2[i] += eps
		lp, _ := prefixNLLGrad(p2, action, valid, adv)
		num := (lp - loss) / eps
		if math.Abs(num-grad[i]) > 1e-4 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad[i], num)
		}
	}
	if grad[3] != 0 {
		t.Fatal("gradient leaked past the valid prefix")
	}
}

func TestEndEpisodeEmpty(t *testing.T) {
	s := New(sys(), tinyConfig(3))
	if got := s.EndEpisode(); got != 0 {
		t.Fatalf("empty episode loss = %v", got)
	}
}

func TestEndToEndSimulationCompletes(t *testing.T) {
	s := New(sys(), tinyConfig(4))
	rng := rand.New(rand.NewSource(5))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 40; i++ {
		clk += float64(rng.Intn(50))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(400)+10), rng.Intn(16)+1, rng.Intn(9)))
	}
	simu := sim.New(sys(), s.Policy())
	if err := simu.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := simu.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State != job.Finished {
			t.Fatalf("job %d unfinished", j.ID)
		}
	}
}

func TestTrainingEpisodeUpdatesPolicy(t *testing.T) {
	s := New(sys(), tinyConfig(6))
	s.Train = true
	rng := rand.New(rand.NewSource(7))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 25; i++ {
		clk += float64(rng.Intn(40))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(200)+10), rng.Intn(12)+1, rng.Intn(7)))
	}
	simu := sim.New(sys(), s.Policy())
	if err := simu.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := simu.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.episode) == 0 {
		t.Fatal("training mode recorded no steps")
	}
	before := snapshot(s)
	if loss := s.EndEpisode(); math.IsNaN(loss) {
		t.Fatal("NaN policy loss")
	}
	if len(s.episode) != 0 {
		t.Fatal("episode not cleared")
	}
	after := snapshot(s)
	if before == after {
		t.Fatal("update did not change the policy parameters")
	}
}

func snapshot(s *Scheduler) float64 {
	sum := 0.0
	for _, p := range s.net.Params() {
		for _, v := range p.Value {
			sum += v
		}
	}
	return sum
}

// A bandit-style check: two jobs, one tiny and one huge; rewards favour
// picking the job that lifts utilization. After repeated single-step
// episodes the policy probability mass must shift toward the fitting,
// high-utilization action.
func TestPolicyLearnsUtilizationBandit(t *testing.T) {
	cfg := tinyConfig(8)
	cfg.LR = 5e-3
	s := New(sys(), cfg)
	cl := cluster.New(sys())
	queue := []*job.Job{
		mk(1, 0, 100, 1, 0),  // low reward
		mk(2, 0, 100, 14, 7), // high reward
	}
	s.Train = true
	for ep := 0; ep < 300; ep++ {
		// Multi-pull episodes: with a mean baseline, a single-step episode
		// has zero advantage, so each episode makes several decisions.
		for pull := 0; pull < 6; pull++ {
			s.Pick(ctxWith(cl, 0, queue))
		}
		s.EndEpisode()
	}
	s.Train = false
	counts := [2]int{}
	for i := 0; i < 50; i++ {
		counts[s.Pick(ctxWith(cl, 0, queue))]++
	}
	if counts[1] < 40 {
		t.Fatalf("policy failed to prefer high-reward action: %v", counts)
	}
}
