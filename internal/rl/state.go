// Durable scheduler state, mirroring internal/dfp's split: Save/Load
// persist the policy weights only (the model-file form campaign model
// stores keep), while SaveState/LoadState persist everything REINFORCE
// training needs to resume bit-for-bit — weights, published snapshot
// buffers, Adam moments and step counter, the rng cursor, and any
// in-flight episode record. LoadState validates the whole container before
// mutating anything.
package rl

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/nn"
)

const stateMagic = "mrsch-rl-state-v1"

func init() {
	// Fixed-order gob type-ID claim, keeping encoded bytes history-free
	// (see nn.GobWarmup).
	nn.RegisterGobContainer(func(enc *gob.Encoder) { enc.Encode(&schedulerState{}) })
}

// savedRLStep mirrors step (whose fields are unexported) for gob.
type savedRLStep struct {
	State  []float64
	Action int
	Valid  int
	Reward float64
}

// schedulerState is the gob container written by SaveState.
type schedulerState struct {
	Magic string

	StateDim int
	Window   int
	Seed     int64

	Train     nn.TrainState
	RngCursor uint64

	Episode []savedRLStep
}

// Save writes the policy-network weights to w (the evaluation model file).
func (s *Scheduler) Save(w io.Writer) error { return nn.SaveWeights(w, s.net.Params()) }

// Load restores weights written by Save into an identically-configured
// scheduler.
func (s *Scheduler) Load(r io.Reader) error { return nn.LoadWeights(r, s.net.Params()) }

// SaveState writes the scheduler's full training state to w. The scheduler
// must be quiescent — no update or rollout in flight.
func (s *Scheduler) SaveState(w io.Writer) error {
	st := schedulerState{
		Magic:     stateMagic,
		StateDim:  s.enc.StateDim(),
		Window:    s.cfg.Window,
		Seed:      s.cfg.Seed,
		Train:     nn.CaptureTrainState(s.net.Params(), s.opt),
		RngCursor: s.rngSrc.Cursor(),
	}
	for _, rec := range s.episode {
		st.Episode = append(st.Episode, savedRLStep{
			State: rec.state, Action: rec.action, Valid: rec.valid, Reward: rec.reward,
		})
	}
	if err := nn.EncodeChecksummed(w, &st); err != nil {
		return fmt.Errorf("rl: save state: %w", err)
	}
	return nil
}

// LoadState restores state previously written by SaveState into a
// scheduler constructed with the same Config and system. Corrupt,
// truncated, or mismatched input fails with a descriptive error and
// applies nothing.
func (s *Scheduler) LoadState(r io.Reader) error {
	var st schedulerState
	if err := nn.DecodeChecksummed(r, &st); err != nil {
		return fmt.Errorf("rl: load state: %w", err)
	}
	if st.Magic != stateMagic {
		return fmt.Errorf("rl: load state: bad magic %q (want %q; corrupt file or incompatible format version)", st.Magic, stateMagic)
	}
	if st.StateDim != s.enc.StateDim() || st.Window != s.cfg.Window {
		return fmt.Errorf("rl: load state: architecture mismatch: state was saved for dim=%d window=%d, scheduler has dim=%d window=%d",
			st.StateDim, st.Window, s.enc.StateDim(), s.cfg.Window)
	}
	if st.Seed != s.cfg.Seed {
		return fmt.Errorf("rl: load state: seed mismatch: state was saved at seed %d, scheduler runs seed %d", st.Seed, s.cfg.Seed)
	}
	if st.RngCursor > nn.MaxRngCursor {
		return fmt.Errorf("rl: load state: rng cursor %d exceeds the plausible maximum %d (corrupt or hand-crafted state; replaying it would hang the loader)", st.RngCursor, uint64(nn.MaxRngCursor))
	}
	if err := st.Train.Check(s.net.Params()); err != nil {
		return fmt.Errorf("rl: load state: %w", err)
	}
	for i := range st.Episode {
		rec := &st.Episode[i]
		if len(rec.State) != s.enc.StateDim() {
			return fmt.Errorf("rl: load state: episode step %d state length %d, want %d", i, len(rec.State), s.enc.StateDim())
		}
		if rec.Action < 0 || rec.Action >= s.cfg.Window || rec.Valid <= 0 || rec.Valid > s.cfg.Window {
			return fmt.Errorf("rl: load state: episode step %d action %d / valid %d out of range for window %d", i, rec.Action, rec.Valid, s.cfg.Window)
		}
	}

	if err := st.Train.Apply(s.net.Params(), s.opt); err != nil {
		return fmt.Errorf("rl: load state: %w", err) // unreachable: checked above
	}
	s.rngSrc.SeekTo(st.RngCursor)
	s.episode = nil
	for _, rec := range st.Episode {
		s.episode = append(s.episode, step{
			state: rec.State, action: rec.Action, valid: rec.Valid, reward: rec.Reward,
		})
	}
	return nil
}
