package rl

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

func rlStateBytes(t *testing.T, s *Scheduler) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func rlWeightBytes(t *testing.T, s *Scheduler) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// trainEpisodes runs n deterministic training episodes through the
// simulator (stochastic sampling draws from the scheduler rng).
func trainEpisodes(t *testing.T, s *Scheduler, n int, seed int64) {
	t.Helper()
	s.Train = true
	rng := rand.New(rand.NewSource(seed))
	for ep := 0; ep < n; ep++ {
		var jobs []*job.Job
		clk := 0.0
		for i := 1; i <= 25; i++ {
			clk += float64(rng.Intn(50))
			jobs = append(jobs, mk(ep*100+i, clk, float64(rng.Intn(400)+10), rng.Intn(16)+1, rng.Intn(9)))
		}
		simu := sim.New(sys(), s.Policy())
		if err := simu.Load(jobs); err != nil {
			t.Fatal(err)
		}
		if err := simu.Run(); err != nil {
			t.Fatal(err)
		}
		s.EndEpisode()
	}
}

// SaveState -> LoadState must reproduce REINFORCE training bit-for-bit:
// identical re-serialization and an identical continuation.
func TestSchedulerStateRoundTrip(t *testing.T) {
	a := New(sys(), tinyConfig(3))
	trainEpisodes(t, a, 3, 11)
	saved := rlStateBytes(t, a)

	b := New(sys(), tinyConfig(3))
	if err := b.LoadState(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if got := rlStateBytes(t, b); !bytes.Equal(got, saved) {
		t.Fatal("re-serialized state differs from the loaded bytes")
	}
	trainEpisodes(t, a, 2, 12)
	trainEpisodes(t, b, 2, 12)
	if !bytes.Equal(rlWeightBytes(t, a), rlWeightBytes(t, b)) {
		t.Fatal("weights diverged after resumed training")
	}
}

// Corrupt and mismatched input fails loudly with nothing applied.
func TestSchedulerLoadStateRejects(t *testing.T) {
	a := New(sys(), tinyConfig(3))
	trainEpisodes(t, a, 2, 11)
	saved := rlStateBytes(t, a)

	b := New(sys(), tinyConfig(3))
	before := rlStateBytes(t, b)
	for off := 0; off < len(saved); off += len(saved)/53 + 1 {
		mutated := append([]byte(nil), saved...)
		mutated[off] ^= 0x10
		if err := b.LoadState(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("bitflip at %d accepted", off)
		}
	}
	if err := b.LoadState(bytes.NewReader(saved[:len(saved)/2])); err == nil {
		t.Fatal("truncated state accepted")
	}
	if after := rlStateBytes(t, b); !bytes.Equal(before, after) {
		t.Fatal("failed loads mutated the scheduler")
	}

	c := New(sys(), tinyConfig(4)) // different seed
	if err := c.LoadState(bytes.NewReader(saved)); err == nil || !strings.Contains(err.Error(), "seed mismatch") {
		t.Fatalf("want seed mismatch, got %v", err)
	}
	wide := tinyConfig(3)
	wide.Window = 6
	d := New(sys(), wide)
	if err := d.LoadState(bytes.NewReader(saved)); err == nil || !strings.Contains(err.Error(), "architecture mismatch") {
		t.Fatalf("want architecture mismatch, got %v", err)
	}
}
