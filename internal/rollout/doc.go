// Package rollout is the parallel episode-collection harness: it runs N
// independent sim.Simulator environments across worker goroutines and feeds
// the collected transitions to the batched trainers (internal/dfp for MRSch,
// internal/rl for the scalar baseline). Training campaigns and scenario
// sweeps (Map) share one worker-pool engine, so wall-clock scales with cores
// wherever episodes are independent.
//
// # The determinism and seeding contract
//
// This is the canonical statement of the repo-wide reproducibility rules;
// the sim, sched, core, dfp, rl, and workload package docs cross-reference
// it rather than restating it.
//
//  1. Episode identity, not worker identity, drives randomness. Episode i
//     explores through a private rng seeded EpisodeSeed(Config.Seed, i) and
//     acts at the exploration rate of schedule slot i
//     (dfp.Config.EpsilonAt). Which worker goroutine happens to run the
//     episode is irrelevant to its transcript.
//
//  2. Reduction happens in episode order. Rollouts proceed in rounds of
//     Config.Workers episodes collected concurrently against the weight
//     snapshot at round start; at the round barrier the transcripts are
//     folded into the learner in ascending episode index on a single
//     goroutine. Replay-buffer contents, gradient arithmetic, and optimizer
//     steps are therefore a pure function of (seed, worker count).
//
//  3. Fixed (seed, workers) ⇒ bitwise-identical runs: the same
//     core.EpisodeResult stream and the same final network weights, run
//     after run, machine after machine (modulo dfp.Config.Workers, which
//     shards gradient summation and has the same pin-it-explicitly rule).
//     Cross-machine identity additionally requires the same nn kernel set
//     on both hosts (internal/nn "Kernel dispatch"): sets agree to ≤1e-12,
//     not bit-for-bit. MRSCH_KERNEL=go pins the portable set anywhere.
//
//  4. Workers=1 reproduces TrainSerial, the retained inline reference loop,
//     exactly — the analogue of dfp.TrainStepReference for the batched
//     training engine. Different worker counts produce different (equally
//     valid) interleavings of collection and training, because a round of k
//     episodes shares the weights from its start; they are each individually
//     reproducible but not equal to one another.
//
//  5. The simulator itself is deterministic and free of wall-clock or map
//     iteration effects (see internal/sim), so an episode's transcript is a
//     pure function of its job set, the policy weights, and the episode rng.
//
//  6. Pipelined mode (Config.Pipelined) overlaps round k+1's collection
//     with round k's reduction. Actors then read the published copy-on-write
//     weight snapshot (nn.Param versioning, via SnapshotLearner) instead of
//     the live weights; the snapshot advances only at round boundaries, with
//     no rollout in flight. Collection of round r therefore acts on the
//     weights as of the end of round r-2's reduction — a one-round policy
//     lag.
//
//  7. Pipelined runs keep rules 1-2 (episode-keyed rngs, episode-order
//     reduction on one goroutine), so a fixed (Seed, Workers) pair is
//     bitwise reproducible run to run in pipelined mode too. Pipelined and
//     barrier runs differ from each other — the lagged snapshot is a
//     different (equally valid) interleaving, exactly as two worker counts
//     are — and Pipelined=false remains the barrier reference, unchanged.
//
//  8. AfterEpisode always runs on the reduction goroutine with the live
//     weights stable. In barrier mode no rollouts are in flight at all; in
//     pipelined mode the next round's rollouts are in flight but touch only
//     the published snapshot, so read-only evaluation of the learner (the
//     §IV-A validation protocol) remains race-free.
//
//  9. Checkpoints happen at round boundaries only, with the learner
//     quiescent: every transcript of rounds [0, k) reduced, no rollout in
//     flight, and (pipelined) the in-flight collection joined but the
//     round's weights not yet published. Config.Checkpoint runs exactly
//     there; a checkpoint therefore captures a pure function of
//     (seed, workers, pipelined) — the same state every run with those
//     settings passes through. Resuming from it (Config.Resume = episodes
//     done, learner state restored via the agent's LoadState) continues
//     that same trajectory: kill-at-round-k + resume is bitwise identical
//     to the uninterrupted run — the same EpisodeResult stream (the resumed
//     run returns the tail) and the same final weights. Resume must match
//     the checkpoint's (Seed, Workers, Pipelined) and job sets; Train
//     rejects offsets that do not land on a round boundary, and mode or
//     worker-count changes across a resume are undefined (callers persist
//     and verify them alongside the state — see experiments' manifest).
//
//  10. A pipelined checkpoint captures TWO weight buffers: the live
//     weights (end of round k's reduction) and the published snapshot (end
//     of round k-1's), because the interrupted run had already collected
//     round k+1 against the latter. Resume restores both, re-collects
//     round k+1 against the restored snapshot, then publishes the live
//     weights — re-entering the steady-state pipeline exactly where the
//     interrupted run left it. This is why the checkpoint hook runs before
//     the boundary's Publish, and why resumed pipelined runs skip the
//     initial publish.
//
//  11. Telemetry is contract-neutral. Wiring Config.Metrics/Config.Journal
//     (internal/telemetry) adds atomic instrument updates after each
//     reduction and clock reads at round boundaries and around gradient
//     steps — observation boundaries only, never inside rollout or
//     reduction computation, and never feeding scheduling, seeding, or
//     weight math — so rules 1-10, including checkpoint-resume bitwise
//     equivalence, hold with telemetry enabled. The resume-equivalence
//     suite runs with instruments active to enforce this.
//
// The serial paths retained elsewhere (core.TrainCurriculum and the
// training-mode Act of dfp.Agent/rl.Scheduler) draw exploration and replay
// sampling from one shared agent rng; the harness instead gives each episode
// its own stream (rule 1) so episode transcripts cannot depend on collection
// order. The two designs produce different but statistically equivalent
// runs; harness results are self-consistent under rules 3-4.
package rollout
