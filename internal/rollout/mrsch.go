package rollout

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// mrschLearner adapts an MRSch agent to the harness: actors are
// core.MRSchActor clones sharing the master weights, Reduce ingests each
// transcript into the replay buffer and runs the per-episode gradient steps.
type mrschLearner struct {
	m    *core.MRSch
	cfg  core.TrainConfig
	acfg dfp.Config // snapshot of the agent config (epsilon schedule)

	// Instruments, wired by Instrument (rollout.Instrumented); nil-safe
	// orphans until then, and `timed` gates the clock reads around
	// gradient steps (observe-only: doc rule 11).
	timed     bool
	trainStep *telemetry.Histogram
	replayOcc *telemetry.Gauge
}

// NewMRSchLearner adapts an MRSch agent for Train/TrainSerial. cfg follows
// core.TrainConfig semantics with one extension: StepsPerEpisode < 0 runs no
// gradient steps at all (pure episode collection, used by the throughput
// benchmark), while 0 keeps the package default of 16.
func NewMRSchLearner(m *core.MRSch, cfg core.TrainConfig) Learner {
	return &mrschLearner{m: m, cfg: cfg, acfg: m.Agent.Config()}
}

// Instrument implements Instrumented: the adapter exports the DFP engine's
// per-gradient-step latency and replay-buffer occupancy.
func (l *mrschLearner) Instrument(reg *telemetry.Registry) {
	l.timed = true
	l.trainStep = reg.Histogram("dfp_train_step_ns")
	l.replayOcc = reg.Gauge("dfp_replay_occupancy")
}

func (l *mrschLearner) Spawn() (Actor, bool) {
	a, parallel := l.m.Actor()
	return &mrschActor{l: l, a: a}, parallel
}

// SpawnSnapshot implements SnapshotLearner: actors read the published
// weight snapshot (core.MRSch.SnapshotActor), so they may roll out while
// Reduce's gradient steps mutate the live weights (Config.Pipelined).
func (l *mrschLearner) SpawnSnapshot() (Actor, bool) {
	a, ok := l.m.SnapshotActor()
	if !ok {
		return nil, false
	}
	return &mrschActor{l: l, a: a}, true
}

// Publish implements SnapshotLearner: advance the snapshot to the live
// weights at a round boundary.
func (l *mrschLearner) Publish() { l.m.PublishWeights() }

func (l *mrschLearner) Reduce(ep Episode, tr Transcript) (core.EpisodeResult, error) {
	t, ok := tr.(*dfp.Transcript)
	if !ok {
		return core.EpisodeResult{}, fmt.Errorf("rollout: MRSch reduce got %T", tr)
	}
	l.m.Ingest(t)
	steps := l.cfg.StepsPerEpisode
	if steps == 0 {
		steps = 16
	}
	total, n := 0.0, 0
	for i := 0; i < steps; i++ {
		// The clock reads bracket TrainStep — an observation boundary —
		// and happen only when instrumented; the step itself is untouched.
		var t0 time.Time
		if l.timed {
			t0 = time.Now()
		}
		loss := l.m.Agent.TrainStep()
		if l.timed {
			l.trainStep.RecordDuration(time.Since(t0))
		}
		if loss >= 0 {
			total += loss
			n++
		}
	}
	if l.timed {
		l.replayOcc.Set(float64(l.m.Agent.ReplaySize()))
	}
	res := core.EpisodeResult{Set: ep.Set.Kind, Epsilon: l.m.Agent.Epsilon(), Loss: -1}
	if n > 0 {
		res.Loss = total / float64(n)
	}
	return res, nil
}

type mrschActor struct {
	l *mrschLearner
	a *core.MRSchActor
}

// Rollout replays the job set through a fresh simulator with the actor
// exploring at the episode's slot in the epsilon schedule, so the
// exploration stream depends only on (harness seed, episode index) — never
// on which worker runs the episode or how many workers exist.
func (w *mrschActor) Rollout(ep Episode) (Transcript, error) {
	w.a.Reset(ep.Seed, w.l.acfg.EpsilonAt(ep.Index))
	s := sim.New(w.l.cfg.System, w.a.Policy())
	if w.l.cfg.MaxEventsPerEpisode > 0 {
		s.SetMaxEvents(w.l.cfg.MaxEventsPerEpisode)
	}
	if err := s.Load(job.CloneAll(ep.Set.Jobs)); err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return w.a.TakeTranscript(), nil
}
