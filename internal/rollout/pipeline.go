// Pipelined rollout-training: collection of round k+1 overlaps the gradient
// steps on round k's transcripts. The barrier mode (rollout.go) serializes
// the two phases for its reproducibility-reference role; on a multicore host
// that leaves the learner idle while workers roll out and the workers idle
// while the learner trains. Pipelining removes the idle halves by splitting
// the weights in two:
//
//   - Actors read the published copy-on-write weight snapshot (nn.Param
//     versioning via SnapshotLearner.SpawnSnapshot), frozen for the duration
//     of a round.
//
//   - The learner reduces transcripts and steps the live weights on the
//     reduction goroutine, concurrently with the in-flight collection.
//
// At each round boundary — the only synchronization point — the in-flight
// collection is joined and the live weights are published into the snapshot.
// Collection of round r therefore acts on the weights as of the end of round
// r-2's reduction: a one-round policy lag, the classic trade of asynchronous
// actor-learner schedulers (MARS and the original A3C line), in exchange for
// hiding rollout latency behind training. Determinism is preserved: episode
// rngs are keyed to the episode index (rule 1 of the package contract),
// transcripts are reduced in episode order on one goroutine, and the
// snapshot a round sees is a pure function of (seed, workers), so a fixed
// (Seed, Workers) pair is bitwise reproducible run to run — it just differs
// from the barrier interleaving, exactly as two worker counts differ from
// each other.
package rollout

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// SnapshotLearner is a Learner whose actors can roll out against a published
// copy-on-write weight snapshot while the live weights train — the
// capability Config.Pipelined requires. Implemented by the MRSch and
// scalar-RL adapters over dfp.Agent.SnapshotActor / rl.Scheduler.
type SnapshotLearner interface {
	Learner
	// SpawnSnapshot returns a per-worker actor reading the published weight
	// snapshot. false means the learner cannot snapshot its networks (e.g. a
	// custom module outside nn.SnapshotClone's substrate); pipelined
	// training is then impossible and Train reports a clear error rather
	// than borrowing master state.
	SpawnSnapshot() (Actor, bool)
	// Publish copies the live weights into the snapshot the actors read.
	// The harness calls it only at round boundaries, with no rollout in
	// flight.
	Publish()
}

// pipeRound is one double-buffered collection slot: the transcripts and
// rollout errors of episodes [start, start+cnt).
type pipeRound struct {
	trs   []Transcript
	errs  []error
	start int
	cnt   int
}

// trainPipelined runs Train's pipelined mode: round r+1 is collected by a
// background goroutine against the current snapshot while round r reduces
// inline, with a join + publish at every round boundary. See the file doc
// for the synchronization argument and the package doc for the determinism
// contract (rules 6-8).
func trainPipelined(l Learner, cfg Config, sets []core.JobSet) ([]core.EpisodeResult, error) {
	sl, ok := l.(SnapshotLearner)
	if !ok {
		return nil, fmt.Errorf("rollout: Config.Pipelined requires a SnapshotLearner, %T is not one (unset Pipelined for barrier mode)", l)
	}
	n := len(sets)
	if n == 0 {
		return nil, nil
	}
	w := cfg.resolveWorkers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	actors := make([]Actor, w)
	for i := range actors {
		a, parallel := sl.SpawnSnapshot()
		if !parallel {
			return nil, fmt.Errorf("rollout: Config.Pipelined requires snapshot-capable actors, but %T cannot clone its networks (custom module?); unset Pipelined for barrier mode", l)
		}
		actors[i] = a
	}
	if err := cfg.validateResume(w, n); err != nil {
		return nil, err
	}
	m := newRolloutMetrics(l, cfg)
	if cfg.Resume >= n {
		return nil, nil // everything already reduced before the crash
	}
	if cfg.Resume == 0 {
		// Materialize + publish the initial snapshot before any rollout.
		sl.Publish()
	}
	// On resume the snapshot buffers were restored from the checkpoint and
	// already hold the weights the first re-collected round must act on —
	// the version published one round before the checkpoint (rule 10), NOT
	// the live weights. Publishing here would overwrite them; the live
	// weights publish after the priming collection below, exactly where the
	// interrupted run published them.

	newRound := func() *pipeRound {
		return &pipeRound{trs: make([]Transcript, w), errs: make([]error, w)}
	}
	collect := func(r *pipeRound, start, cnt int) {
		r.start, r.cnt = start, cnt
		dispatch(cnt, cnt, func(worker, i int) {
			r.trs[i], r.errs[i] = actors[worker].Rollout(episodeAt(cfg, sets, start+i))
		})
	}

	cur, nxt := newRound(), newRound()
	collect(cur, cfg.Resume, min(w, n-cfg.Resume)) // prime the pipeline: nothing to overlap yet
	if cfg.Resume > 0 {
		// The interrupted run published its post-reduction weights right
		// after the checkpoint was written, i.e. after this round's
		// collection had joined; re-publish them now that the priming
		// collection (which read the restored pre-crash snapshot) is done.
		sl.Publish()
	}

	results := make([]core.EpisodeResult, 0, n-cfg.Resume)
	for {
		// Clock reads sit at round boundaries only, and only when telemetry
		// is wired — they never influence collection, reduction, or publish.
		var t0 time.Time
		if m.timed {
			t0 = time.Now()
		}
		// Launch the next round against the current snapshot before
		// reducing this one — the overlap that is the point of the mode.
		var done chan struct{}
		if next := cur.start + cur.cnt; next < n {
			done = make(chan struct{})
			go func(r *pipeRound, start, cnt int) {
				defer close(done)
				collect(r, start, cnt)
			}(nxt, next, min(w, n-next))
		}

		// Reduce the current round inline, in episode order.
		var loopErr error
		for i := 0; i < cur.cnt; i++ {
			if results, loopErr = reduceEpisode(l, cfg, m, sets, cur.start+i, cur.trs[i], cur.errs[i], results); loopErr != nil {
				break
			}
		}

		// Round boundary: join the in-flight collection even on error (no
		// goroutine may outlive the call), checkpoint while the live weights
		// and the still-unpublished snapshot are both quiescent, then
		// publish the post-reduction weights for the round after next.
		if done != nil {
			<-done
		}
		if loopErr != nil {
			return results, loopErr
		}
		if err := runCheckpoint(cfg, cur.start+cur.cnt); err != nil {
			return results, err
		}
		var dt time.Duration
		if m.timed {
			dt = time.Since(t0)
		}
		m.roundDone(cfg.Journal, cur.start+cur.cnt, cur.cnt, dt)
		if done == nil {
			return results, nil
		}
		sl.Publish()
		cur, nxt = nxt, cur
	}
}
