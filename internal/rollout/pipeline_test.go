package rollout

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rl"
)

func runTrainPipelined(t *testing.T, workers int, seed int64) ([]core.EpisodeResult, []byte) {
	t.Helper()
	sys := testSystem()
	sets := testSets(sys, 6, 25, 41)
	m := testAgent(sys, seed)
	cfg := Config{Workers: workers, Seed: 23, Pipelined: true}
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets)
	if err != nil {
		t.Fatal(err)
	}
	return results, weightsOf(t, m)
}

// Pipelined runs obey contract rule 7: same seed + same worker count ⇒
// identical EpisodeResult streams and identical final weights, even though
// collection and training overlap.
func TestPipelinedDeterministicForFixedWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		r1, w1 := runTrainPipelined(t, workers, 17)
		r2, w2 := runTrainPipelined(t, workers, 17)
		if !resultsEqual(r1, r2) {
			t.Fatalf("pipelined workers=%d: result streams differ across runs:\n%v\n%v", workers, r1, r2)
		}
		if !bytes.Equal(w1, w2) {
			t.Fatalf("pipelined workers=%d: final weights differ across runs", workers)
		}
	}
}

// Pipelined training must still learn: full coverage of the sets, finite
// losses once replay fills, a non-empty replay buffer at the end.
func TestPipelinedProducesWorkingAgent(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 6, 25, 43)
	m := testAgent(sys, 19)
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), Config{Workers: 3, Seed: 29, Pipelined: true}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sets) {
		t.Fatalf("%d results for %d sets", len(results), len(sets))
	}
	sawLoss := false
	for _, r := range results {
		if r.Loss >= 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("no pipelined episode produced a training loss")
	}
	if m.Agent.ReplaySize() == 0 {
		t.Fatal("replay buffer empty after pipelined training")
	}
}

// The scalar-RL adapter supports pipelined mode with the same determinism
// guarantee.
func TestPipelinedScalarRLDeterminism(t *testing.T) {
	run := func() ([]core.EpisodeResult, float64) {
		sys := testSystem()
		sets := testSets(sys, 5, 20, 53)
		cfg := rl.DefaultConfig()
		cfg.Window = 6
		cfg.Seed = 7
		agent := rl.New(sys, cfg)
		l := NewScalarRLLearner(agent, core.TrainConfig{System: sys, MaxEventsPerEpisode: 4000})
		results, err := Train(l, Config{Workers: 2, Seed: 59, Pipelined: true}, sets)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, r := range results {
			sum += r.Loss
		}
		return results, sum
	}
	r1, s1 := run()
	r2, s2 := run()
	if !resultsEqual(r1, r2) || s1 != s2 {
		t.Fatal("pipelined scalar RL: fixed (seed, workers) not reproducible")
	}
}

// AfterEpisode still observes every episode in order, and its errors abort
// the run with partial results — with the in-flight round joined first.
func TestPipelinedAfterEpisodeOrdering(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 5, 20, 47)
	m := testAgent(sys, 21)
	var seen []int
	cfg := Config{Workers: 2, Seed: 31, Pipelined: true, AfterEpisode: func(i int, r core.EpisodeResult) error {
		seen = append(seen, i)
		return nil
	}}
	if _, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(sets) {
		t.Fatalf("hook ran %d times for %d sets", len(seen), len(sets))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("hook order %v", seen)
		}
	}

	m2 := testAgent(sys, 21)
	stop := errors.New("stop")
	cfg.AfterEpisode = func(i int, r core.EpisodeResult) error {
		if i == 2 {
			return stop
		}
		return nil
	}
	results, err := Train(NewMRSchLearner(m2, trainCfg(sys)), cfg, sets)
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results before abort, want 3", len(results))
	}
}

// barrierOnlyLearner implements Learner but not SnapshotLearner.
type barrierOnlyLearner struct{ l Learner }

func (b *barrierOnlyLearner) Spawn() (Actor, bool) { return b.l.Spawn() }
func (b *barrierOnlyLearner) Reduce(ep Episode, tr Transcript) (core.EpisodeResult, error) {
	return b.l.Reduce(ep, tr)
}

// Requesting pipelined mode from a learner that cannot snapshot its weights
// is a clear error, never a silent fall back to barrier collection.
func TestPipelinedRequiresSnapshotLearner(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 3, 15, 61)
	m := testAgent(sys, 25)
	l := &barrierOnlyLearner{l: NewMRSchLearner(m, trainCfg(sys))}
	_, err := Train(l, Config{Workers: 2, Seed: 67, Pipelined: true}, sets)
	if err == nil {
		t.Fatal("pipelined Train accepted a non-snapshot learner")
	}
	if !strings.Contains(err.Error(), "Pipelined") {
		t.Fatalf("error %q does not name the Pipelined requirement", err)
	}
}

// An empty set list is a no-op in pipelined mode too.
func TestPipelinedEmptySets(t *testing.T) {
	sys := testSystem()
	m := testAgent(sys, 27)
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), Config{Workers: 2, Seed: 71, Pipelined: true}, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("results %v, err %v", results, err)
	}
}

// The pipelined schedule publishes once per round boundary and hands every
// episode to Reduce in order — verified through a probe learner that records
// the call sequence (rollouts themselves are trivial).
type probeLearner struct {
	published int
	reduced   []int
}

type probeActor struct{}

func (probeActor) Rollout(ep Episode) (Transcript, error) { return ep.Index, nil }

func (p *probeLearner) Spawn() (Actor, bool)         { return probeActor{}, true }
func (p *probeLearner) SpawnSnapshot() (Actor, bool) { return probeActor{}, true }
func (p *probeLearner) Publish()                     { p.published++ }
func (p *probeLearner) Reduce(ep Episode, tr Transcript) (core.EpisodeResult, error) {
	if tr.(int) != ep.Index {
		return core.EpisodeResult{}, errors.New("transcript/episode mismatch")
	}
	p.reduced = append(p.reduced, ep.Index)
	return core.EpisodeResult{Set: ep.Set.Kind}, nil
}

func TestPipelinedScheduleShape(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 7, 5, 73) // 7 episodes, workers=3 -> rounds of 3,3,1
	p := &probeLearner{}
	results, err := Train(p, Config{Workers: 3, Seed: 79, Pipelined: true}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("%d results", len(results))
	}
	for i, idx := range p.reduced {
		if idx != i {
			t.Fatalf("reduce order %v", p.reduced)
		}
	}
	// One initial publish plus one per round boundary between the 3 rounds.
	if p.published != 3 {
		t.Fatalf("published %d times, want 3 (initial + 2 boundaries)", p.published)
	}
}
