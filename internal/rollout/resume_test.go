package rollout

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// The crash-resume equivalence suite: killing a training run at a round
// boundary and resuming from the checkpoint written there must be bitwise
// identical to never having been interrupted — the same final weights and
// the same EpisodeResult stream (contract rules 9-10). Exercised for
// barrier and pipelined modes, Workers 1 and 4, and checkpoints at the
// first, a middle, and the final round boundary.

// errSimulatedCrash is the sentinel a Checkpoint hook returns to model the
// process dying right after the checkpoint write.
var errSimulatedCrash = errors.New("simulated crash")

// resumeBoundaries returns the round-boundary episode counts of a run of n
// episodes with effective round width w: first, a middle one, and the last.
func resumeBoundaries(w, n int) []int {
	var all []int
	for b := w; b < n; b += w {
		all = append(all, b)
	}
	all = append(all, n)
	switch len(all) {
	case 1:
		return all
	case 2:
		return all
	default:
		return []int{all[0], all[len(all)/2], all[len(all)-1]}
	}
}

// trainToCrash trains a fresh agent until the checkpoint at `at` episodes,
// captures the agent state written there, and returns it with the results
// reduced before the crash.
func trainToCrash(t *testing.T, cfg Config, at int) ([]core.EpisodeResult, []byte) {
	t.Helper()
	sys := testSystem()
	sets := testSets(sys, 8, 25, 41)
	m := testAgent(sys, 17)
	// The crash and resume runs train with instruments and a journal live
	// while the reference run (runReference) does not: equivalence of the
	// final weights is then also the proof that telemetry is observe-only
	// (doc rule 11).
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Journal = telemetry.NewJournal(io.Discard)
	var state bytes.Buffer
	cfg.Checkpoint = func(done int) error {
		if done != at {
			return nil
		}
		if err := m.SaveState(&state); err != nil {
			return err
		}
		return errSimulatedCrash
	}
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets)
	if !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("crash run: want simulated crash at episode %d, got err=%v", at, err)
	}
	if len(results) != at {
		t.Fatalf("crash run: %d results reduced before the crash, want %d", len(results), at)
	}
	if state.Len() == 0 {
		t.Fatalf("crash run: checkpoint at %d never captured", at)
	}
	return results, state.Bytes()
}

// resumeFrom restores the captured state into a fresh agent and finishes
// the run, returning the tail results and the final weights.
func resumeFrom(t *testing.T, cfg Config, state []byte, from int) ([]core.EpisodeResult, []byte) {
	t.Helper()
	sys := testSystem()
	sets := testSets(sys, 8, 25, 41)
	m := testAgent(sys, 17)
	if err := m.LoadState(bytes.NewReader(state)); err != nil {
		t.Fatalf("resume: load state: %v", err)
	}
	cfg.Resume = from
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Journal = telemetry.NewJournal(io.Discard)
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets)
	if err != nil {
		t.Fatalf("resume from %d: %v", from, err)
	}
	return results, weightsOf(t, m)
}

func runReference(t *testing.T, cfg Config) ([]core.EpisodeResult, []byte) {
	t.Helper()
	sys := testSystem()
	sets := testSets(sys, 8, 25, 41)
	m := testAgent(sys, 17)
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets)
	if err != nil {
		t.Fatal(err)
	}
	return results, weightsOf(t, m)
}

func TestCrashResumeEquivalence(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			mode := "barrier"
			if pipelined {
				mode = "pipelined"
			}
			cfg := Config{Workers: workers, Seed: 23, Pipelined: pipelined}
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				refResults, refWeights := runReference(t, cfg)
				n := len(refResults)
				w := workers
				if w > n {
					w = n
				}
				for _, at := range resumeBoundaries(w, n) {
					prefix, state := trainToCrash(t, cfg, at)
					tail, weights := resumeFrom(t, cfg, state, at)
					if !bytes.Equal(weights, refWeights) {
						t.Errorf("resume at %d: final weights differ from the uninterrupted run", at)
					}
					combined := append(append([]core.EpisodeResult{}, prefix...), tail...)
					if !resultsEqual(combined, refResults) {
						t.Errorf("resume at %d: crash-prefix + resume-tail results differ from the uninterrupted stream", at)
					}
				}
			})
		}
	}
}

// A checkpoint written at the final boundary resumes to an immediate,
// result-free completion with the reference weights intact.
func TestResumeAtCompletion(t *testing.T) {
	cfg := Config{Workers: 4, Seed: 23}
	refResults, refWeights := runReference(t, cfg)
	_, state := trainToCrash(t, cfg, len(refResults))
	tail, weights := resumeFrom(t, cfg, state, len(refResults))
	if len(tail) != 0 {
		t.Fatalf("resume at completion reduced %d episodes, want 0", len(tail))
	}
	if !bytes.Equal(weights, refWeights) {
		t.Fatal("resume at completion: weights differ from the uninterrupted run")
	}
}

// Resume offsets that don't land on a round boundary are rejected loudly
// in both modes — silently re-collecting a partial round would break the
// equivalence contract.
func TestResumeRejectsMidRound(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 8, 25, 41)
	for _, pipelined := range []bool{false, true} {
		m := testAgent(sys, 17)
		cfg := Config{Workers: 4, Seed: 23, Pipelined: pipelined, Resume: 3}
		if _, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets); err == nil {
			t.Errorf("pipelined=%v: mid-round Resume=3 with Workers=4 accepted, want error", pipelined)
		}
		m = testAgent(sys, 17)
		cfg.Resume = 9
		if _, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets); err == nil {
			t.Errorf("pipelined=%v: out-of-range Resume=9 accepted, want error", pipelined)
		}
	}
}

// The checkpoint hook fires at every round boundary with the cumulative
// episode count, including the final one.
func TestCheckpointBoundaries(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 6, 25, 41)
	for _, pipelined := range []bool{false, true} {
		m := testAgent(sys, 17)
		var got []int
		cfg := Config{Workers: 4, Seed: 23, Pipelined: pipelined,
			Checkpoint: func(done int) error { got = append(got, done); return nil }}
		if _, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets); err != nil {
			t.Fatal(err)
		}
		want := []int{4, 6}
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("pipelined=%v: checkpoint boundaries %v, want %v", pipelined, got, want)
		}
	}
}
