package rollout

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Config tunes the harness.
type Config struct {
	// Workers is the number of simulator environments rolled out
	// concurrently. 0 or negative uses runtime.GOMAXPROCS(0), mirroring
	// dfp.Config.Workers. Any fixed value is deterministic run to run; pin
	// it explicitly (e.g. 1) when reproducibility across machines matters,
	// because different worker counts produce different (equally valid)
	// training interleavings.
	Workers int
	// Seed roots the per-episode rng derivation: episode i explores with a
	// private rng seeded EpisodeSeed(Seed, i), independent of which worker
	// runs it and of the worker count.
	Seed int64
	// Pipelined overlaps episode collection with training: while the
	// learner reduces round k's transcripts, round k+1 is already rolling
	// out against the weight snapshot published at the previous round
	// boundary (see pipeline.go and the package doc's pipelined rules). It
	// requires a SnapshotLearner — Train returns an error otherwise rather
	// than silently falling back to barrier mode. false keeps the barrier
	// reference: collect, then train, with no overlap.
	Pipelined bool
	// AfterEpisode, when non-nil, runs on the reduction goroutine after each
	// episode is folded into the learner, in episode order. Model-selection
	// protocols (§IV-A validation) hook in here; returning an error aborts
	// the run. The learner's live weights are stable during the call: in
	// barrier mode no rollouts are in flight at all, and in pipelined mode
	// the only concurrent rollouts read the published snapshot, never the
	// live weights, so read-only evaluation of the learner remains safe.
	AfterEpisode func(episode int, r core.EpisodeResult) error
	// Checkpoint, when non-nil, runs at every round boundary with the
	// number of episodes fully reduced into the learner so far (including
	// the final boundary, where done == len(sets)). The learner is
	// quiescent during the call: no rollout is in flight, the round's
	// transcripts are reduced, and — in pipelined mode — the hook runs
	// after the in-flight collection joins and BEFORE the round's weights
	// publish, so the live weights and the published snapshot are exactly
	// the pair a resumed run must restore (rules 9-10 of the package doc).
	// Returning an error aborts the run.
	Checkpoint func(done int) error
	// Resume skips episodes [0, Resume): their effects must already be in
	// the learner, restored from a checkpoint written by a run with the
	// same (Seed, Workers, Pipelined) over the same job sets. Train
	// validates that Resume lands on a round boundary (a multiple of the
	// effective round width) and errors otherwise — resuming mid-round
	// would re-collect part of a round against post-round weights and
	// silently break bitwise equivalence.
	Resume int
	// Metrics, when set, receives the harness's rollout_* instruments
	// (rounds, episodes, throughput, epsilon, loss) and is offered to the
	// learner via the Instrumented extension. Telemetry is observe-only:
	// results and weights are bitwise identical with and without it (doc
	// rule 11).
	Metrics *telemetry.Registry
	// Journal, when set, receives one JSONL event per round boundary.
	Journal *telemetry.Journal
}

// ResolveWorkers applies the package-wide worker-count default: n <= 0
// means runtime.GOMAXPROCS(0). It is the single place the convention is
// implemented; callers that display or persist an effective worker count
// use it rather than re-deriving the default.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func (c Config) resolveWorkers() int { return ResolveWorkers(c.Workers) }

// Episode identifies one rollout: its global index in the run, the job set
// it replays, and the deterministic seed of its private exploration rng.
type Episode struct {
	Index int
	Seed  int64
	Set   core.JobSet
}

// Transcript is an opaque episode record passed from an Actor to its
// Learner's Reduce (dfp.Transcript for MRSch, rl.Trajectory for scalar RL).
type Transcript any

// Actor rolls out one episode at a time on behalf of one worker. Distinct
// actors returned by a Learner reporting parallel=true may run concurrently;
// a single actor is never invoked concurrently with itself.
type Actor interface {
	Rollout(ep Episode) (Transcript, error)
}

// Learner is the master-side trainer driving a rollout run.
type Learner interface {
	// Spawn returns a per-worker actor. The second result reports whether
	// the actor may run concurrently with other spawned actors; the first
	// false collapses the pool to a single worker (un-cloneable custom
	// network modules).
	Spawn() (Actor, bool)
	// Reduce folds one episode's transcript into the learner — replay
	// ingestion and gradient steps for MRSch, the REINFORCE update for
	// scalar RL. The harness calls it on one goroutine, in episode order,
	// with no rollouts in flight.
	Reduce(ep Episode, tr Transcript) (core.EpisodeResult, error)
}

// Train collects the job sets as episodes across the worker pool and reduces
// them into the learner in episode order.
//
// The run proceeds in rounds of Workers episodes. Within a round every
// episode is rolled out concurrently against the weight snapshot at round
// start; at the round barrier the transcripts are reduced in episode order
// (deterministic floating-point and replay-ingestion order), the learner
// updates its weights, and the next round begins. Episode i's exploration is
// driven by a private rng seeded EpisodeSeed(cfg.Seed, i) and the episode's
// own slot in the exploration schedule, so for a fixed (Seed, Workers) pair
// the full result stream — including final network weights — is bitwise
// reproducible run to run, and Workers=1 reproduces TrainSerial exactly.
//
// With cfg.Pipelined set, Train instead overlaps round k+1's collection with
// round k's reduction against a versioned weight snapshot (pipeline.go); the
// barrier loop below is retained verbatim as the bitwise-reproducibility
// reference that Pipelined=false must (and trivially does) match.
func Train(l Learner, cfg Config, sets []core.JobSet) ([]core.EpisodeResult, error) {
	if cfg.Pipelined {
		return trainPipelined(l, cfg, sets)
	}
	return trainBarrier(l, cfg, sets)
}

// trainBarrier is the round-barrier training loop: collect a round, then
// reduce it, with no overlap between the phases.
func trainBarrier(l Learner, cfg Config, sets []core.JobSet) ([]core.EpisodeResult, error) {
	n := len(sets)
	w := cfg.resolveWorkers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	actors := make([]Actor, 0, w)
	for i := 0; i < w; i++ {
		a, parallel := l.Spawn()
		actors = append(actors, a)
		if !parallel {
			actors = actors[:1] // serial fallback: the actor borrows master state
			break
		}
	}
	w = len(actors)
	if err := cfg.validateResume(w, n); err != nil {
		return nil, err
	}
	m := newRolloutMetrics(l, cfg)

	results := make([]core.EpisodeResult, 0, n-cfg.Resume)
	trs := make([]Transcript, w)
	errs := make([]error, w)
	for start := cfg.Resume; start < n; start += w {
		// Clock reads sit at round boundaries only, and only when telemetry
		// is wired — they never influence collection or reduction.
		var t0 time.Time
		if m.timed {
			t0 = time.Now()
		}
		cnt := w
		if start+cnt > n {
			cnt = n - start
		}
		dispatch(cnt, cnt, func(worker, i int) {
			trs[i], errs[i] = actors[worker].Rollout(episodeAt(cfg, sets, start+i))
		})
		for i := 0; i < cnt; i++ {
			var err error
			if results, err = reduceEpisode(l, cfg, m, sets, start+i, trs[i], errs[i], results); err != nil {
				return results, err
			}
		}
		if err := runCheckpoint(cfg, start+cnt); err != nil {
			return results, err
		}
		var dt time.Duration
		if m.timed {
			dt = time.Since(t0)
		}
		m.roundDone(cfg.Journal, start+cnt, cnt, dt)
	}
	return results, nil
}

// validateResume rejects a Resume offset that does not land on a round
// boundary of the effective round width w over n episodes.
func (c Config) validateResume(w, n int) error {
	if c.Resume == 0 {
		return nil
	}
	if c.Resume < 0 || c.Resume > n {
		return fmt.Errorf("rollout: Resume %d outside [0, %d]", c.Resume, n)
	}
	if c.Resume%w != 0 && c.Resume != n {
		return fmt.Errorf("rollout: Resume %d is not a round boundary (round width %d): checkpoints are written at round boundaries only, so the checkpoint and this run disagree on Workers", c.Resume, w)
	}
	return nil
}

// runCheckpoint invokes the round-boundary checkpoint hook, wrapping its
// error with the boundary position.
func runCheckpoint(cfg Config, done int) error {
	if cfg.Checkpoint == nil {
		return nil
	}
	if err := cfg.Checkpoint(done); err != nil {
		return fmt.Errorf("rollout: checkpoint at episode %d: %w", done, err)
	}
	return nil
}

// reduceEpisode folds one collected episode into the learner: surface the
// rollout error, Reduce the transcript, record the result, and run the
// AfterEpisode hook. It is the per-episode sequence shared by trainBarrier
// and trainPipelined, so the two modes cannot drift apart in error wrapping
// or hook semantics; TrainSerial keeps its own inline copy as the
// independent reference loop.
func reduceEpisode(l Learner, cfg Config, m rolloutMetrics, sets []core.JobSet, idx int, tr Transcript, rollErr error, results []core.EpisodeResult) ([]core.EpisodeResult, error) {
	if rollErr != nil {
		return results, fmt.Errorf("rollout: episode %d (%s): %w", idx, sets[idx].Kind, rollErr)
	}
	r, err := l.Reduce(episodeAt(cfg, sets, idx), tr)
	if err != nil {
		return results, fmt.Errorf("rollout: reduce episode %d (%s): %w", idx, sets[idx].Kind, err)
	}
	m.episodeDone(r.Epsilon, r.Loss)
	results = append(results, r)
	if cfg.AfterEpisode != nil {
		if err := cfg.AfterEpisode(idx, r); err != nil {
			return results, err
		}
	}
	return results, nil
}

// TrainSerial is the retained serial reference: one actor, one inline loop,
// no goroutines or round structure, with the same per-episode seed
// derivation as Train. Train with Workers=1 must produce an identical result
// stream and identical final weights — the property the package's
// determinism tests pin, mirroring dfp.TrainStepReference's role for the
// batched engine.
func TrainSerial(l Learner, cfg Config, sets []core.JobSet) ([]core.EpisodeResult, error) {
	actor, _ := l.Spawn()
	results := make([]core.EpisodeResult, 0, len(sets))
	for i := range sets {
		ep := episodeAt(cfg, sets, i)
		tr, err := actor.Rollout(ep)
		if err != nil {
			return results, fmt.Errorf("rollout: episode %d (%s): %w", i, sets[i].Kind, err)
		}
		r, err := l.Reduce(ep, tr)
		if err != nil {
			return results, fmt.Errorf("rollout: reduce episode %d (%s): %w", i, sets[i].Kind, err)
		}
		results = append(results, r)
		if cfg.AfterEpisode != nil {
			if err := cfg.AfterEpisode(i, r); err != nil {
				return results, err
			}
		}
	}
	return results, nil
}

func episodeAt(cfg Config, sets []core.JobSet, i int) Episode {
	return Episode{Index: i, Seed: EpisodeSeed(cfg.Seed, i), Set: sets[i]}
}

// EpisodeSeed derives episode i's exploration-rng seed from the harness base
// seed with a splitmix64 finalizer, so neighboring episodes get decorrelated
// streams and the mapping is independent of worker count and scheduling.
func EpisodeSeed(base int64, episode int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(episode)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// dispatch runs fn(worker, item) for every item in [0, n) across up to
// `workers` goroutines, worker w handling items w, w+workers, w+2*workers, …
// The worker→item mapping is deterministic so per-worker state (actors,
// scratch) sees a reproducible item sequence. Execution goroutines are
// additionally capped at GOMAXPROCS: rollouts are CPU-bound, so running a
// logical round of k environments on fewer cores serializes some of them
// without changing any result (each item fully resets its worker state),
// and a single-core host pays no goroutine overhead at all. workers<=1 runs
// inline on the caller's goroutine. dispatch returns when all items are
// done.
func dispatch(workers, n int, fn func(worker, item int)) {
	if workers > n {
		workers = n
	}
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Map runs fn over items across up to `workers` goroutines (0 = all cores)
// and returns the results in input order — the episode-sweep primitive that
// shares the worker-pool engine with Train. fn receives the worker slot (for
// per-worker scratch), the item index, and the item; the first error in item
// order is returned after all items finish.
func Map[T, R any](workers int, items []T, fn func(worker, index int, item T) (R, error)) ([]R, error) {
	out, errs := MapCollect(workers, items, fn)
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("rollout: item %d: %w", i, err)
		}
	}
	return out, nil
}

// MapCollect is Map with per-item error reporting: every item runs to
// completion and the caller receives the full parallel error slice (nil for
// successful items) instead of only the first failure. Campaign runners use
// it to name every failed grid cell in one pass.
func MapCollect[T, R any](workers int, items []T, fn func(worker, index int, item T) (R, error)) ([]R, []error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	dispatch(Config{Workers: workers}.resolveWorkers(), len(items), func(w, i int) {
		out[i], errs[i] = fn(w, i, items[i])
	})
	return out, errs
}
