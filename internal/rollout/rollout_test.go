package rollout

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/job"
	"repro/internal/rl"
	"repro/internal/workload"
)

// testSystem is a small two-resource machine.
func testSystem() cluster.Config {
	return workload.ThetaScaled(64)
}

// testSets builds nsets deterministic job sets over the test system.
func testSets(sys cluster.Config, nsets, size int, seed int64) []core.JobSet {
	base := workload.GenerateBase(workload.GeneratorConfig{
		System:           sys,
		Duration:         0.4 * 86400,
		MeanInterarrival: 150,
		Seed:             seed,
	})
	pool := workload.AssignDarshanBB(base, sys.Capacities[1], seed+1)
	sc, err := workload.ScenarioByName("S2")
	if err != nil {
		panic(err)
	}
	raw := workload.SampledSets(base, nsets, size, seed+2)
	sets := make([]core.JobSet, 0, nsets)
	for i, jobs := range raw {
		sets = append(sets, core.JobSet{
			Kind: core.Sampled,
			Jobs: workload.Apply(jobs, pool, sc, sys, seed+3+int64(i)),
		})
	}
	return sets
}

// testAgent builds a small MRSch agent with the single-threaded training
// engine, so weight evolution is bitwise comparable across hosts.
func testAgent(sys cluster.Config, seed int64) *core.MRSch {
	return core.New(sys, core.Options{
		Window:  6,
		Seed:    seed,
		Workers: 1,
		Mutate: func(c *dfp.Config) {
			c.StateHidden = []int{24}
			c.StateOut = 12
			c.ModuleHidden = 8
			c.StreamHidden = 12
			c.Offsets = []int{1, 2, 4}
			c.TemporalWeights = []float64{0, 0.5, 1}
			c.EpsDecay = 0.8
		},
	})
}

func trainCfg(sys cluster.Config) core.TrainConfig {
	return core.TrainConfig{System: sys, StepsPerEpisode: 4, MaxEventsPerEpisode: 4000}
}

func weightsOf(t *testing.T, m *core.MRSch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runTrain(t *testing.T, workers int, serial bool) ([]core.EpisodeResult, []byte) {
	t.Helper()
	sys := testSystem()
	sets := testSets(sys, 6, 25, 41)
	m := testAgent(sys, 17)
	cfg := Config{Workers: workers, Seed: 23}
	var (
		results []core.EpisodeResult
		err     error
	)
	if serial {
		results, err = TrainSerial(NewMRSchLearner(m, trainCfg(sys)), cfg, sets)
	} else {
		results, err = Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets)
	}
	if err != nil {
		t.Fatal(err)
	}
	return results, weightsOf(t, m)
}

func resultsEqual(a, b []core.EpisodeResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Same seed + same worker count ⇒ identical EpisodeResult streams and
// identical final weights (contract rule 3).
func TestTrainDeterministicForFixedWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		r1, w1 := runTrain(t, workers, false)
		r2, w2 := runTrain(t, workers, false)
		if !resultsEqual(r1, r2) {
			t.Fatalf("workers=%d: result streams differ across runs:\n%v\n%v", workers, r1, r2)
		}
		if !bytes.Equal(w1, w2) {
			t.Fatalf("workers=%d: final weights differ across runs", workers)
		}
	}
}

// One worker must match the retained serial reference loop exactly
// (contract rule 4).
func TestOneWorkerMatchesSerialReference(t *testing.T) {
	rp, wp := runTrain(t, 1, false)
	rs, ws := runTrain(t, 1, true)
	if !resultsEqual(rp, rs) {
		t.Fatalf("Workers=1 diverges from TrainSerial:\nparallel: %v\nserial:   %v", rp, rs)
	}
	if !bytes.Equal(wp, ws) {
		t.Fatal("Workers=1 final weights diverge from TrainSerial")
	}
}

// Training across the harness must actually learn something usable: the
// returned results cover every set, losses are finite once the replay buffer
// fills, and the trained agent still schedules a workload to completion.
func TestTrainProducesWorkingAgent(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 6, 25, 43)
	m := testAgent(sys, 19)
	results, err := Train(NewMRSchLearner(m, trainCfg(sys)), Config{Workers: 3, Seed: 29}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sets) {
		t.Fatalf("%d results for %d sets", len(results), len(sets))
	}
	sawLoss := false
	for i, r := range results {
		if r.Set != core.Sampled {
			t.Fatalf("episode %d kind %v", i, r.Set)
		}
		if r.Loss >= 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("no episode produced a training loss")
	}
	if m.Agent.ReplaySize() == 0 {
		t.Fatal("replay buffer empty after training")
	}
}

// AfterEpisode observes every episode, in order, with no rollouts in flight.
func TestAfterEpisodeOrdering(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 5, 20, 47)
	m := testAgent(sys, 21)
	var seen []int
	cfg := Config{Workers: 2, Seed: 31, AfterEpisode: func(i int, r core.EpisodeResult) error {
		seen = append(seen, i)
		return nil
	}}
	if _, err := Train(NewMRSchLearner(m, trainCfg(sys)), cfg, sets); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(sets) {
		t.Fatalf("hook ran %d times for %d sets", len(seen), len(sets))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("hook order %v", seen)
		}
	}
	// An AfterEpisode error aborts the run with partial results.
	m2 := testAgent(sys, 21)
	stop := errors.New("stop")
	cfg.AfterEpisode = func(i int, r core.EpisodeResult) error {
		if i == 2 {
			return stop
		}
		return nil
	}
	results, err := Train(NewMRSchLearner(m2, trainCfg(sys)), cfg, sets)
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results before abort, want 3", len(results))
	}
}

// The scalar-RL adapter obeys the same contract: fixed (seed, workers) is
// reproducible and Workers=1 matches the serial reference.
func TestScalarRLDeterminism(t *testing.T) {
	run := func(workers int, serial bool) ([]core.EpisodeResult, float64) {
		sys := testSystem()
		sets := testSets(sys, 5, 20, 53)
		cfg := rl.DefaultConfig()
		cfg.Window = 6
		cfg.Seed = 7
		agent := rl.New(sys, cfg)
		l := NewScalarRLLearner(agent, core.TrainConfig{System: sys, MaxEventsPerEpisode: 4000})
		var (
			results []core.EpisodeResult
			err     error
		)
		if serial {
			results, err = TrainSerial(l, Config{Workers: workers, Seed: 59}, sets)
		} else {
			results, err = Train(l, Config{Workers: workers, Seed: 59}, sets)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Loss-sum fingerprint: REINFORCE losses depend on every sampled
		// action and every preceding weight update, so identical sums across
		// runs mean the trajectories and update order matched. (Weight bytes
		// are compared in the MRSch variant, which has a Save API.)
		sum := 0.0
		for _, r := range results {
			sum += r.Loss
		}
		return results, sum
	}
	r1, s1 := run(2, false)
	r2, s2 := run(2, false)
	if !resultsEqual(r1, r2) || s1 != s2 {
		t.Fatal("scalar RL: fixed (seed, workers) not reproducible")
	}
	rp, sp := run(1, false)
	rs, ss := run(1, true)
	if !resultsEqual(rp, rs) || sp != ss {
		t.Fatal("scalar RL: Workers=1 diverges from TrainSerial")
	}
}

// On a genuinely multicore host, parallel collection must beat serial
// collection by a comfortable margin — the regression guard for the scaling
// property the harness exists to deliver (BENCH_rollout.json documents the
// full methodology; this test only catches "accidentally serialized"
// regressions, so the bar is deliberately loose against CI timing noise).
func TestParallelRolloutScalesOnMulticore(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if cpus := runtime.NumCPU(); procs < 4 || cpus < 4 {
		t.Skipf("GOMAXPROCS=%d, NumCPU=%d: parallel speedup not observable", procs, cpus)
	}
	sys := testSystem()
	sets := testSets(sys, 8, 40, 71)
	collect := func(workers int) time.Duration {
		m := testAgent(sys, 33)
		// StepsPerEpisode < 0: pure collection, the parallelized portion.
		l := NewMRSchLearner(m, core.TrainConfig{System: sys, StepsPerEpisode: -1})
		best := time.Duration(1<<62 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if _, err := Train(l, Config{Workers: workers, Seed: 73}, sets); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := collect(1)
	parallel := collect(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, workers=4 %v (%.2fx)", serial, parallel, speedup)
	if speedup < 1.3 {
		t.Fatalf("workers=4 speedup %.2fx on a %d-core host; parallel collection appears serialized", speedup, procs)
	}
}

// EpisodeSeed decorrelates neighbors and never depends on worker count.
func TestEpisodeSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := EpisodeSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate seed at episode %d", i)
		}
		seen[s] = true
	}
	if EpisodeSeed(1, 5) == EpisodeSeed(2, 5) {
		t.Fatal("base seed ignored")
	}
}

// Map returns results in input order regardless of worker interleaving and
// surfaces the first error by item order.
func TestMapOrderingAndErrors(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	var calls atomic.Int64
	out, err := Map(8, items, func(worker, idx int, v int) (int, error) {
		calls.Add(1)
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 64 {
		t.Fatalf("%d calls", calls.Load())
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	_, err = Map(4, items, func(worker, idx int, v int) (int, error) {
		if v%10 == 3 {
			return 0, fmt.Errorf("boom %d", v)
		}
		return v, nil
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("boom 3")) {
		t.Fatalf("err = %v, want first error (item 3)", err)
	}
}

// MapCollect runs every item to completion and reports per-item errors
// instead of only the first.
func TestMapCollectPerItemErrors(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	out, errs := MapCollect(3, items, func(worker, idx int, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("odd %d", v)
		}
		return v * 10, nil
	})
	if len(out) != len(items) || len(errs) != len(items) {
		t.Fatalf("lengths %d/%d, want %d", len(out), len(errs), len(items))
	}
	for i, v := range items {
		if v%2 == 1 {
			if errs[i] == nil || errs[i].Error() != fmt.Sprintf("odd %d", v) {
				t.Fatalf("errs[%d] = %v", i, errs[i])
			}
		} else {
			if errs[i] != nil || out[i] != v*10 {
				t.Fatalf("item %d: out=%d err=%v", i, out[i], errs[i])
			}
		}
	}
}

// Job sets handed to the harness are never mutated: each rollout clones its
// jobs, so a set can be replayed by later episodes or other campaigns.
func TestRolloutDoesNotMutateJobSets(t *testing.T) {
	sys := testSystem()
	sets := testSets(sys, 3, 15, 61)
	snapshot := make([][]job.Job, len(sets))
	for i, set := range sets {
		for _, j := range set.Jobs {
			snapshot[i] = append(snapshot[i], *j)
		}
	}
	m := testAgent(sys, 25)
	if _, err := Train(NewMRSchLearner(m, trainCfg(sys)), Config{Workers: 2, Seed: 67}, sets); err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		for k, j := range set.Jobs {
			if j.State != snapshot[i][k].State || j.Start != snapshot[i][k].Start {
				t.Fatalf("set %d job %d mutated: %+v vs %+v", i, k, *j, snapshot[i][k])
			}
		}
	}
}
