package rollout

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/rl"
	"repro/internal/sim"
)

// scalarRLLearner adapts the policy-gradient baseline to the harness: actors
// are rl.Actor clones sampling trajectories against shared weights, Reduce
// applies the REINFORCE update per episode in order.
type scalarRLLearner struct {
	s   *rl.Scheduler
	cfg core.TrainConfig
}

// NewScalarRLLearner adapts a scalar-RL scheduler for Train/TrainSerial.
// Only cfg.System and cfg.MaxEventsPerEpisode are consulted — REINFORCE
// takes exactly one update per episode, so StepsPerEpisode does not apply.
func NewScalarRLLearner(s *rl.Scheduler, cfg core.TrainConfig) Learner {
	return &scalarRLLearner{s: s, cfg: cfg}
}

func (l *scalarRLLearner) Spawn() (Actor, bool) {
	a, parallel := l.s.Actor()
	return &scalarRLActor{l: l, a: a}, parallel
}

// SpawnSnapshot implements SnapshotLearner: actors sample trajectories
// against the published weight snapshot (rl.Scheduler.SnapshotActor), so
// collection may overlap the REINFORCE updates (Config.Pipelined).
func (l *scalarRLLearner) SpawnSnapshot() (Actor, bool) {
	a, ok := l.s.SnapshotActor()
	if !ok {
		return nil, false
	}
	return &scalarRLActor{l: l, a: a}, true
}

// Publish implements SnapshotLearner: advance the snapshot to the live
// weights at a round boundary.
func (l *scalarRLLearner) Publish() { l.s.PublishWeights() }

func (l *scalarRLLearner) Reduce(ep Episode, tr Transcript) (core.EpisodeResult, error) {
	t, ok := tr.(*rl.Trajectory)
	if !ok {
		return core.EpisodeResult{}, fmt.Errorf("rollout: scalar-RL reduce got %T", tr)
	}
	loss := l.s.IngestTrajectory(t)
	return core.EpisodeResult{Set: ep.Set.Kind, Loss: loss}, nil
}

type scalarRLActor struct {
	l *scalarRLLearner
	a *rl.Actor
}

func (w *scalarRLActor) Rollout(ep Episode) (Transcript, error) {
	w.a.Reset(ep.Seed)
	s := sim.New(w.l.cfg.System, w.a.Policy())
	if w.l.cfg.MaxEventsPerEpisode > 0 {
		s.SetMaxEvents(w.l.cfg.MaxEventsPerEpisode)
	}
	if err := s.Load(job.CloneAll(ep.Set.Jobs)); err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return w.a.TakeTrajectory(), nil
}
