package rollout

import (
	"time"

	"repro/internal/telemetry"
)

// Instrumented is an optional Learner extension: a learner that wants its
// own instruments (e.g. the MRSch adapter's dfp_train_step_ns histogram and
// replay-occupancy gauge) registers them here. Train calls it once, before
// the first rollout, whenever Config.Metrics is set.
type Instrumented interface {
	Instrument(reg *telemetry.Registry)
}

// rolloutMetrics caches the harness instruments at wire-up time. With a nil
// registry the instruments are live orphans and `timed` is false, skipping
// every clock read — rollouts, reductions, and checkpoints are identical
// either way (doc rule 11).
type rolloutMetrics struct {
	timed          bool
	rounds         *telemetry.Counter
	episodes       *telemetry.Counter
	episodesPerSec *telemetry.Gauge
	epsilon        *telemetry.Gauge
	loss           *telemetry.Gauge
}

func newRolloutMetrics(l Learner, cfg Config) rolloutMetrics {
	if il, ok := l.(Instrumented); ok && cfg.Metrics != nil {
		il.Instrument(cfg.Metrics)
	}
	reg := cfg.Metrics
	return rolloutMetrics{
		timed:          reg != nil,
		rounds:         reg.Counter("rollout_rounds_total"),
		episodes:       reg.Counter("rollout_episodes_total"),
		episodesPerSec: reg.Gauge("rollout_episodes_per_sec"),
		epsilon:        reg.Gauge("rollout_epsilon"),
		loss:           reg.Gauge("rollout_loss"),
	}
}

// episodeDone mirrors one reduced episode's result into the gauges.
func (m rolloutMetrics) episodeDone(eps, loss float64) {
	m.episodes.Inc()
	m.epsilon.Set(eps)
	if loss >= 0 {
		m.loss.Set(loss)
	}
}

// roundDone marks a round boundary: counter, throughput gauge, and one
// journal line. dt is zero when the harness is not timing (nil registry);
// the journal then carries only the progress fields.
func (m rolloutMetrics) roundDone(j *telemetry.Journal, done, cnt int, dt time.Duration) {
	m.rounds.Inc()
	if dt > 0 {
		m.episodesPerSec.Set(float64(cnt) / dt.Seconds())
	}
	j.Event("rollout_round", "episodes_done", done, "round_episodes", cnt)
}
