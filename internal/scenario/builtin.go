package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Builtins returns the ten paper scenarios as specs: the Table III
// burst-buffer ladder S1-S5 and the §V-E power-capped S6-S10. The specs are
// generated from internal/workload's tables, which stay the single source
// of the mix parameters.
func Builtins() []ScenarioSpec {
	var out []ScenarioSpec
	for _, sc := range workload.Scenarios() {
		out = append(out, fromMix(sc))
	}
	for _, psc := range workload.PowerScenarios() {
		sp := fromMix(psc.Scenario)
		sp.Power = true
		sp.MinW = psc.MinW
		sp.MaxW = psc.MaxW
		out = append(out, sp)
	}
	return out
}

func fromMix(sc workload.Scenario) ScenarioSpec {
	return ScenarioSpec{
		Name:       sc.Name,
		BBProb:     sc.BBProb,
		MinTB:      sc.MinTB,
		MaxTB:      sc.MaxTB,
		HalveNodes: sc.HalveNodes,
	}
}

// ByName resolves a scenario name: a builtin ("S4"), or a builtin with
// theta-variant suffixes ("S4@wtn=0.5", "S4@div=16,ia=0.75"). Variant keys
// are the Axes() names or their short forms: div, ia (interarrival), wtn
// (walltime-noise).
func ByName(name string) (ScenarioSpec, error) {
	base, suffix, hasVariant := strings.Cut(name, "@")
	var spec ScenarioSpec
	found := false
	for _, s := range Builtins() {
		if s.Name == base {
			spec, found = s, true
			break
		}
	}
	if !found {
		return ScenarioSpec{}, fmt.Errorf("scenario: unknown scenario %q (builtins: S1-S10)", base)
	}
	if !hasVariant {
		return spec, nil
	}
	for _, part := range strings.Split(suffix, ",") {
		key, valStr, ok := strings.Cut(part, "=")
		if !ok {
			return ScenarioSpec{}, fmt.Errorf("scenario: variant %q is not key=value", part)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return ScenarioSpec{}, fmt.Errorf("scenario: variant %s value %q: %w", key, valStr, err)
		}
		spec, err = Variant(spec, key, val)
		if err != nil {
			return ScenarioSpec{}, err
		}
	}
	return spec, nil
}

// The three theta-variant axis names.
const (
	AxisDiv           = "div"
	AxisInterarrival  = "interarrival"
	AxisWalltimeNoise = "walltime-noise"
)

// Axis is one theta-variant dimension with its default ladder of values.
type Axis struct {
	Name        string    `json:"name"`
	Short       string    `json:"short"`
	Description string    `json:"description"`
	Values      []float64 `json:"values"`
}

// Axes returns the theta-variant dimensions the builtin variant campaign
// sweeps, with the default ladders.
func Axes() []Axis {
	return []Axis{
		{
			Name: AxisDiv, Short: "div",
			Description: "machine-size ladder: override the campaign's Theta divisor (smaller = larger machine)",
			Values:      []float64{16, 64},
		},
		{
			Name: AxisInterarrival, Short: "ia",
			Description: "interarrival stress: multiply the base trace's mean interarrival (< 1 = denser queue)",
			Values:      []float64{0.75, 1.5},
		},
		{
			Name: AxisWalltimeNoise, Short: "wtn",
			Description: "walltime-estimate noise: multiplicative lognormal sigma on user estimates at evaluation",
			Values:      []float64{0.25, 0.5},
		},
	}
}

// Variant derives a theta-variant spec from a base scenario: the axis value
// is applied, the name gains an "@key=value" suffix, and the family is
// pinned to the base so the variant shares the base's trained model.
func Variant(base ScenarioSpec, axis string, value float64) (ScenarioSpec, error) {
	out := base
	out.Family = base.FamilyName()
	var short string
	switch axis {
	case AxisDiv:
		if value < 1 || value != math.Trunc(value) {
			return ScenarioSpec{}, fmt.Errorf("scenario: div variant value %g must be a positive integer", value)
		}
		out.Div = int(value)
		short = "div"
	case AxisInterarrival, "ia":
		if value <= 0 {
			return ScenarioSpec{}, fmt.Errorf("scenario: interarrival variant value %g must be positive", value)
		}
		out.InterarrivalScale = value
		short = "ia"
	case AxisWalltimeNoise, "wtn":
		if value <= 0 {
			return ScenarioSpec{}, fmt.Errorf("scenario: walltime-noise variant value %g must be positive", value)
		}
		out.WalltimeNoiseSigma = value
		short = "wtn"
	default:
		return ScenarioSpec{}, fmt.Errorf("scenario: unknown variant axis %q (want div, interarrival/ia, or walltime-noise/wtn)", axis)
	}
	out.Name = fmt.Sprintf("%s@%s=%s", base.Name, short, trimFloat(value))
	return out, nil
}

// QuickScaleSpec is the CI-sized campaign sizing: a 1/32 Theta and a
// compressed training budget. Figures keep their qualitative shape at this
// scale; absolute numbers shift.
func QuickScaleSpec() ScaleSpec {
	return ScaleSpec{
		Name:             "quick",
		Div:              32,
		TraceDuration:    1.0 * 86400,
		MeanInterarrival: 110,
		Window:           10,
		SetsPerKind:      5,
		SetSize:          80,
		StepsPerEpisode:  32,
		EpsDecay:         0.78,
		Seed:             1,
	}
}

// StandardScaleSpec is a heavier sizing for standalone runs: a 1/16 Theta,
// a two-day trace, and a longer curriculum.
func StandardScaleSpec() ScaleSpec {
	return ScaleSpec{
		Name:             "standard",
		Div:              16,
		TraceDuration:    2 * 86400,
		MeanInterarrival: 110,
		Window:           10,
		SetsPerKind:      8,
		SetSize:          100,
		StepsPerEpisode:  32,
		EpsDecay:         0.88,
		Seed:             1,
	}
}

// TinyScaleSpec is the smallest sizing: a smoke-test replica for CI
// campaign runs and the cmd binaries' -scale tiny.
func TinyScaleSpec() ScaleSpec {
	s := QuickScaleSpec()
	s.Name = "tiny"
	s.Div = 64
	s.TraceDuration = 0.4 * 86400
	s.SetsPerKind = 2
	s.SetSize = 30
	return s
}

// ScaleByName resolves a builtin sizing name.
func ScaleByName(name string) (ScaleSpec, error) {
	for _, s := range []ScaleSpec{QuickScaleSpec(), StandardScaleSpec(), TinyScaleSpec()} {
		if s.Name == name {
			return s, nil
		}
	}
	return ScaleSpec{}, fmt.Errorf("scenario: unknown scale %q (builtins: quick, standard, tiny)", name)
}

// PaperCampaign is the paper's evaluation grid as run by the legacy sweep
// mode: every builtin scenario under the training-free methods. Its
// expansion reproduces the legacy SweepGrid(nil) cells exactly, order
// included.
func PaperCampaign(scale ScaleSpec) CampaignSpec {
	return CampaignSpec{
		Name:        "paper",
		Description: "Table III S1-S5 and the power-capped S6-S10 under the training-free methods (the legacy -fig sweep grid)",
		Scale:       scale,
		Scenarios:   Builtins(),
		Methods: []MethodSpec{
			{Kind: KindHeuristic},
			{Kind: KindOptimize},
		},
	}
}

// ThetaVariantCampaign sweeps the three theta-variant axes over the S4
// family (the paper's reference heavy-contention mix): every Axes() value
// becomes one derived scenario, evaluated under the training-free methods.
func ThetaVariantCampaign(scale ScaleSpec) CampaignSpec {
	base, err := ByName("S4")
	if err != nil {
		panic(err) // builtin table broken
	}
	var variants []ScenarioSpec
	for _, ax := range Axes() {
		for _, v := range ax.Values {
			sp, err := Variant(base, ax.Name, v)
			if err != nil {
				panic(err) // Axes() values must be valid for their axis
			}
			variants = append(variants, sp)
		}
	}
	return CampaignSpec{
		Name:        "theta-variants",
		Description: "S4 stressed along the div / interarrival / walltime-noise axes under the training-free methods",
		Scale:       scale,
		Scenarios:   variants,
		Methods: []MethodSpec{
			{Kind: KindHeuristic},
			{Kind: KindOptimize},
		},
	}
}

// BuiltinCampaigns returns the named campaigns -dump-campaign can emit, at
// the given sizing.
func BuiltinCampaigns(scale ScaleSpec) []CampaignSpec {
	return []CampaignSpec{PaperCampaign(scale), ThetaVariantCampaign(scale)}
}

// CampaignByName resolves a builtin campaign name at the given sizing.
func CampaignByName(name string, scale ScaleSpec) (CampaignSpec, error) {
	for _, c := range BuiltinCampaigns(scale) {
		if c.Name == name {
			return c, nil
		}
	}
	return CampaignSpec{}, fmt.Errorf("scenario: unknown campaign %q (builtins: paper, theta-variants)", name)
}
