package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Builtins returns the ten paper scenarios as specs: the Table III
// burst-buffer ladder S1-S5 and the §V-E power-capped S6-S10. The specs are
// generated from internal/workload's tables, which stay the single source
// of the mix parameters.
func Builtins() []ScenarioSpec {
	var out []ScenarioSpec
	for _, sc := range workload.Scenarios() {
		out = append(out, fromMix(sc))
	}
	for _, psc := range workload.PowerScenarios() {
		sp := fromMix(psc.Scenario)
		sp.Power = true
		sp.MinW = psc.MinW
		sp.MaxW = psc.MaxW
		out = append(out, sp)
	}
	return out
}

func fromMix(sc workload.Scenario) ScenarioSpec {
	return ScenarioSpec{
		Name:       sc.Name,
		BBProb:     sc.BBProb,
		MinTB:      sc.MinTB,
		MaxTB:      sc.MaxTB,
		HalveNodes: sc.HalveNodes,
	}
}

// TraceBuiltins returns the cross-machine transfer family: the Table III
// mixes T1-T5 (mirroring S1-S5) applied to the builtin "t1" ingested trace
// instead of the synthetic generator. Each T-scenario is its own family —
// training on it trains against the trace — while transfer evaluation of
// an S-family model uses a method's Model file, so the per-family training
// contract is untouched.
func TraceBuiltins() []ScenarioSpec {
	var out []ScenarioSpec
	for i, sc := range workload.Scenarios() {
		sp := fromMix(sc)
		sp.Name = fmt.Sprintf("T%d", i+1)
		sp.Trace = "t1"
		sp.Description = fmt.Sprintf("the %s burst-buffer mix replayed over the ingested t1 trace (cross-machine transfer)", sc.Name)
		out = append(out, sp)
	}
	return out
}

// ByName resolves a scenario name: a builtin ("S4", trace family "T4"), or
// a builtin with variant suffixes ("S4@wtn=0.5", "S4@zipf=0.9,burst=5x0.25").
// Variant keys are the Axes() names or their short forms — div, ia
// (interarrival), wtn (walltime-noise), zipf (zipf-theta) — plus burst,
// whose value is <factor>x<fraction>. Each axis may appear once; empty
// entries (trailing or doubled commas) and unknown keys are rejected with
// the offending token named.
func ByName(name string) (ScenarioSpec, error) {
	base, suffix, hasVariant := strings.Cut(name, "@")
	var spec ScenarioSpec
	found := false
	for _, s := range append(Builtins(), TraceBuiltins()...) {
		if s.Name == base {
			spec, found = s, true
			break
		}
	}
	if !found {
		return ScenarioSpec{}, fmt.Errorf("scenario: unknown scenario %q (builtins: S1-S10, trace family T1-T5)", base)
	}
	if !hasVariant {
		return spec, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(suffix, ",") {
		if part == "" {
			return ScenarioSpec{}, fmt.Errorf("scenario: variant list %q has an empty entry (trailing or doubled comma)", suffix)
		}
		key, valStr, ok := strings.Cut(part, "=")
		if !ok {
			return ScenarioSpec{}, fmt.Errorf("scenario: variant %q is not key=value", part)
		}
		canon, ok := canonicalAxis(key)
		if !ok {
			return ScenarioSpec{}, fmt.Errorf("scenario: unknown variant axis %q in %q (want div, interarrival/ia, walltime-noise/wtn, zipf-theta/zipf, or burst)", key, part)
		}
		if seen[canon] {
			return ScenarioSpec{}, fmt.Errorf("scenario: variant axis %q appears twice in %q", key, suffix)
		}
		seen[canon] = true
		var err error
		if canon == AxisBurst {
			spec, err = parseBurstVariant(spec, valStr)
		} else {
			var val float64
			val, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				return ScenarioSpec{}, fmt.Errorf("scenario: variant %s value %q: %w", key, valStr, err)
			}
			spec, err = Variant(spec, canon, val)
		}
		if err != nil {
			return ScenarioSpec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return ScenarioSpec{}, err
	}
	return spec, nil
}

func parseBurstVariant(base ScenarioSpec, valStr string) (ScenarioSpec, error) {
	factorStr, fracStr, ok := strings.Cut(valStr, "x")
	if !ok {
		return ScenarioSpec{}, fmt.Errorf("scenario: burst variant value %q is not <factor>x<fraction> (e.g. burst=5x0.25)", valStr)
	}
	factor, ferr := strconv.ParseFloat(factorStr, 64)
	frac, perr := strconv.ParseFloat(fracStr, 64)
	if ferr != nil || perr != nil {
		return ScenarioSpec{}, fmt.Errorf("scenario: burst variant value %q: factor and fraction must both be numbers", valStr)
	}
	return BurstVariant(base, factor, frac)
}

// The variant axis names.
const (
	AxisDiv           = "div"
	AxisInterarrival  = "interarrival"
	AxisWalltimeNoise = "walltime-noise"
	AxisZipf          = "zipf-theta"
	AxisBurst         = "burst"
)

// canonicalAxis maps an axis name or short form to its canonical name.
func canonicalAxis(key string) (string, bool) {
	switch key {
	case AxisDiv:
		return AxisDiv, true
	case AxisInterarrival, "ia":
		return AxisInterarrival, true
	case AxisWalltimeNoise, "wtn":
		return AxisWalltimeNoise, true
	case AxisZipf, "zipf":
		return AxisZipf, true
	case AxisBurst:
		return AxisBurst, true
	}
	return "", false
}

// Axis is one theta-variant dimension with its default ladder of values.
type Axis struct {
	Name        string    `json:"name"`
	Short       string    `json:"short"`
	Description string    `json:"description"`
	Values      []float64 `json:"values"`
}

// Axes returns the theta-variant dimensions the builtin variant campaign
// sweeps, with the default ladders.
func Axes() []Axis {
	return []Axis{
		{
			Name: AxisDiv, Short: "div",
			Description: "machine-size ladder: override the campaign's Theta divisor (smaller = larger machine)",
			Values:      []float64{16, 64},
		},
		{
			Name: AxisInterarrival, Short: "ia",
			Description: "interarrival stress: multiply the base trace's mean interarrival (< 1 = denser queue)",
			Values:      []float64{0.75, 1.5},
		},
		{
			Name: AxisWalltimeNoise, Short: "wtn",
			Description: "walltime-estimate noise: multiplicative lognormal sigma on user estimates at evaluation",
			Values:      []float64{0.25, 0.5},
		},
		{
			Name: AxisZipf, Short: "zipf",
			Description: "zipf user skew: label jobs with user ids drawn Zipf(theta) over a fixed population (0 = uniform; accounting only, schedulers stay user-blind)",
			Values:      []float64{0.5, 0.9, 0.99},
		},
	}
}

// Variant derives a theta-variant spec from a base scenario: the axis value
// is applied, the name gains an "@key=value" suffix, and the family is
// pinned to the base so the variant shares the base's trained model.
func Variant(base ScenarioSpec, axis string, value float64) (ScenarioSpec, error) {
	out := base
	out.Family = base.FamilyName()
	var short string
	switch axis {
	case AxisDiv:
		if value < 1 || value != math.Trunc(value) {
			return ScenarioSpec{}, fmt.Errorf("scenario: div variant value %g must be a positive integer", value)
		}
		out.Div = int(value)
		short = "div"
	case AxisInterarrival, "ia":
		if value <= 0 {
			return ScenarioSpec{}, fmt.Errorf("scenario: interarrival variant value %g must be positive", value)
		}
		out.InterarrivalScale = value
		short = "ia"
	case AxisWalltimeNoise, "wtn":
		if value <= 0 {
			return ScenarioSpec{}, fmt.Errorf("scenario: walltime-noise variant value %g must be positive", value)
		}
		out.WalltimeNoiseSigma = value
		short = "wtn"
	case AxisZipf, "zipf":
		if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
			return ScenarioSpec{}, fmt.Errorf("scenario: zipf-theta variant value %g must be a finite value >= 0", value)
		}
		out.ZipfTheta = value
		out.ZipfUsers = workload.DefaultZipfUsers
		short = "zipf"
	default:
		return ScenarioSpec{}, fmt.Errorf("scenario: unknown variant axis %q (want div, interarrival/ia, walltime-noise/wtn, or zipf-theta/zipf; burst uses BurstVariant)", axis)
	}
	out.Name = variantName(base.Name, fmt.Sprintf("%s=%s", short, trimFloat(value)))
	return out, nil
}

// BurstVariant derives a bursty-arrival variant: Variant's counterpart for
// the two-component burst axis (factor = in-burst rate multiplier, frac =
// stationary burst fraction; see BurstSpec). Like Variant, the name gains a
// suffix and the family pins to the base.
func BurstVariant(base ScenarioSpec, factor, frac float64) (ScenarioSpec, error) {
	out := base
	out.Family = base.FamilyName()
	b := &BurstSpec{Factor: factor, Frac: frac}
	if err := b.Validate(); err != nil {
		return ScenarioSpec{}, fmt.Errorf("scenario: %s variant of %s: %w", AxisBurst, base.Name, err)
	}
	out.Burst = b
	out.Name = variantName(base.Name, fmt.Sprintf("burst=%sx%s", trimFloat(factor), trimFloat(frac)))
	return out, nil
}

// variantName appends one key=value token to a scenario name: the first
// token opens the @-suffix, later ones join it comma-separated, so chained
// variants produce exactly the ByName syntax and round-trip through it.
func variantName(baseName, token string) string {
	if strings.Contains(baseName, "@") {
		return baseName + "," + token
	}
	return baseName + "@" + token
}

// QuickScaleSpec is the CI-sized campaign sizing: a 1/32 Theta and a
// compressed training budget. Figures keep their qualitative shape at this
// scale; absolute numbers shift.
func QuickScaleSpec() ScaleSpec {
	return ScaleSpec{
		Name:             "quick",
		Div:              32,
		TraceDuration:    1.0 * 86400,
		MeanInterarrival: 110,
		Window:           10,
		SetsPerKind:      5,
		SetSize:          80,
		StepsPerEpisode:  32,
		EpsDecay:         0.78,
		Seed:             1,
	}
}

// StandardScaleSpec is a heavier sizing for standalone runs: a 1/16 Theta,
// a two-day trace, and a longer curriculum.
func StandardScaleSpec() ScaleSpec {
	return ScaleSpec{
		Name:             "standard",
		Div:              16,
		TraceDuration:    2 * 86400,
		MeanInterarrival: 110,
		Window:           10,
		SetsPerKind:      8,
		SetSize:          100,
		StepsPerEpisode:  32,
		EpsDecay:         0.88,
		Seed:             1,
	}
}

// TinyScaleSpec is the smallest sizing: a smoke-test replica for CI
// campaign runs and the cmd binaries' -scale tiny.
func TinyScaleSpec() ScaleSpec {
	s := QuickScaleSpec()
	s.Name = "tiny"
	s.Div = 64
	s.TraceDuration = 0.4 * 86400
	s.SetsPerKind = 2
	s.SetSize = 30
	return s
}

// ScaleByName resolves a builtin sizing name.
func ScaleByName(name string) (ScaleSpec, error) {
	for _, s := range []ScaleSpec{QuickScaleSpec(), StandardScaleSpec(), TinyScaleSpec()} {
		if s.Name == name {
			return s, nil
		}
	}
	return ScaleSpec{}, fmt.Errorf("scenario: unknown scale %q (builtins: quick, standard, tiny)", name)
}

// PaperCampaign is the paper's evaluation grid as run by the legacy sweep
// mode: every builtin scenario under the training-free methods. Its
// expansion reproduces the legacy SweepGrid(nil) cells exactly, order
// included.
func PaperCampaign(scale ScaleSpec) CampaignSpec {
	return CampaignSpec{
		Name:        "paper",
		Description: "Table III S1-S5 and the power-capped S6-S10 under the training-free methods (the legacy -fig sweep grid)",
		Scale:       scale,
		Scenarios:   Builtins(),
		Methods: []MethodSpec{
			{Kind: KindHeuristic},
			{Kind: KindOptimize},
		},
	}
}

// ThetaVariantCampaign sweeps the three theta-variant axes over the S4
// family (the paper's reference heavy-contention mix): every Axes() value
// becomes one derived scenario, evaluated under the training-free methods.
func ThetaVariantCampaign(scale ScaleSpec) CampaignSpec {
	base, err := ByName("S4")
	if err != nil {
		panic(err) // builtin table broken
	}
	var variants []ScenarioSpec
	for _, ax := range Axes() {
		for _, v := range ax.Values {
			sp, err := Variant(base, ax.Name, v)
			if err != nil {
				panic(err) // Axes() values must be valid for their axis
			}
			variants = append(variants, sp)
		}
	}
	return CampaignSpec{
		Name:        "theta-variants",
		Description: "S4 stressed along the div / interarrival / walltime-noise / zipf axes under the training-free methods",
		Scale:       scale,
		Scenarios:   variants,
		Methods: []MethodSpec{
			{Kind: KindHeuristic},
			{Kind: KindOptimize},
		},
	}
}

// ThetaSkewCampaign sweeps the realism axes over the S4 family: the Zipf
// user-skew theta ladder 0 -> 0.99 (0 = uniform baseline over the same
// population) plus two bursty-arrival settings, next to plain S4 as the
// unattributed reference, under the training-free methods.
func ThetaSkewCampaign(scale ScaleSpec) CampaignSpec {
	base, err := ByName("S4")
	if err != nil {
		panic(err) // builtin table broken
	}
	scenarios := []ScenarioSpec{base}
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		sp, err := Variant(base, AxisZipf, theta)
		if err != nil {
			panic(err) // ladder values must be valid zipf thetas
		}
		scenarios = append(scenarios, sp)
	}
	for _, b := range []struct{ factor, frac float64 }{{4, 0.3}, {8, 0.2}} {
		sp, err := BurstVariant(base, b.factor, b.frac)
		if err != nil {
			panic(err) // ladder values must be valid burst settings
		}
		scenarios = append(scenarios, sp)
	}
	return CampaignSpec{
		Name:        "theta-skew",
		Description: "S4 under the realistic-workload axes: the zipf user-skew theta ladder and Markov-modulated bursty arrivals, training-free methods",
		Scale:       scale,
		Scenarios:   scenarios,
		Methods: []MethodSpec{
			{Kind: KindHeuristic},
			{Kind: KindOptimize},
		},
	}
}

// BuiltinCampaigns returns the named campaigns -dump-campaign can emit, at
// the given sizing.
func BuiltinCampaigns(scale ScaleSpec) []CampaignSpec {
	return []CampaignSpec{PaperCampaign(scale), ThetaVariantCampaign(scale), ThetaSkewCampaign(scale)}
}

// CampaignByName resolves a builtin campaign name at the given sizing.
func CampaignByName(name string, scale ScaleSpec) (CampaignSpec, error) {
	for _, c := range BuiltinCampaigns(scale) {
		if c.Name == name {
			return c, nil
		}
	}
	return CampaignSpec{}, fmt.Errorf("scenario: unknown campaign %q (builtins: paper, theta-variants, theta-skew)", name)
}
