package scenario

import (
	"fmt"

	"repro/internal/workload"
)

// DefaultBurstDwell is the mean burst run length, in arrivals, a BurstSpec
// implies when it doesn't choose its own.
const DefaultBurstDwell = 16

// BurstSpec is the declarative form of the Markov-modulated bursty-arrival
// axis (workload.Burst): specs state the two observable quantities — how
// much denser arrivals get and how much of the trace is bursty — and the
// conversion to chain parameters lives in Config, so every campaign derives
// the transition probabilities the same way.
type BurstSpec struct {
	// Factor is the arrival-rate multiplier inside a burst: gaps shrink to
	// 1/Factor of the calm mean. Factor 1 is the degenerate chain whose two
	// states are indistinguishable (the metamorphic identity the generator
	// suite pins against the plain interarrival axis).
	Factor float64 `json:"factor"`
	// Frac is the stationary fraction of arrivals drawn in the burst state,
	// strictly between 0 and 1.
	Frac float64 `json:"frac"`
	// Dwell is the mean burst run length in arrivals (geometric); zero means
	// DefaultBurstDwell.
	Dwell float64 `json:"dwell,omitempty"`
}

func (b BurstSpec) dwell() float64 {
	if b.Dwell > 0 {
		return b.Dwell
	}
	return DefaultBurstDwell
}

// Validate rejects parameters with no consistent two-state chain.
func (b BurstSpec) Validate() error {
	if !(b.Factor >= 1) {
		return fmt.Errorf("burst factor %g must be >= 1 (1 = no modulation)", b.Factor)
	}
	if !(b.Frac > 0) || b.Frac >= 1 {
		return fmt.Errorf("burst frac %g outside (0,1)", b.Frac)
	}
	if b.Dwell < 0 {
		return fmt.Errorf("burst dwell %g must be >= 0 (0 = default %d)", b.Dwell, DefaultBurstDwell)
	}
	if d := b.dwell(); b.Frac/(1-b.Frac) > d {
		return fmt.Errorf("burst frac %g needs a calm->burst probability above 1 at dwell %g; raise dwell or lower frac",
			b.Frac, d)
	}
	return nil
}

// Config converts the spec to chain parameters. The calm state keeps the
// campaign's mean interarrival (scale 1) and the burst state compresses it
// by Factor; transition probabilities are solved from (Frac, Dwell):
// P(exit) = 1/Dwell gives the dwell, and P(enter) = Frac/(1-Frac)/Dwell
// makes Frac the stationary burst probability.
func (b BurstSpec) Config() workload.Burst {
	d := b.dwell()
	return workload.Burst{
		CalmScale:  1,
		BurstScale: 1 / b.Factor,
		PEnter:     b.Frac / (1 - b.Frac) / d,
		PExit:      1 / d,
	}
}

// Describe returns the one-line rendering used by Describe() and -list.
func (b BurstSpec) Describe() string {
	return fmt.Sprintf("bursty arrivals %sx denser over %s of submissions (dwell %s)",
		trimFloat(b.Factor), trimFloat(b.Frac), trimFloat(b.dwell()))
}
