package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
)

// CampaignSpec declares a full evaluation campaign: a sizing, the scenario
// axis, the method axis, and an optional seed axis. Expand turns the axes
// into a flat, deterministically ordered list of cells.
type CampaignSpec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Scale sizes the shared base materials every non-variant scenario
	// evaluates against.
	Scale ScaleSpec `json:"scale"`
	// Scenarios and Methods are the grid axes, in evaluation order.
	Scenarios []ScenarioSpec `json:"scenarios"`
	Methods   []MethodSpec   `json:"methods"`
	// Seeds replicates every (scenario, method) pair once per entry,
	// replacing the scale seed for that cell's materials and policies. An
	// empty list runs one replicate at the scale seed (recorded as seed 0,
	// meaning "inherit").
	Seeds []int64 `json:"seeds,omitempty"`
}

// Cell is one expanded grid point. Index is the cell's position in the
// expansion; per-cell policy seeding derives from it, so an identical spec
// always reproduces identical cells.
type Cell struct {
	Index    int
	Scenario ScenarioSpec
	Method   MethodSpec
	// Seed is the replicate seed (0 = inherit the campaign scale's seed).
	Seed int64
}

// Label renders the cell for logs and error messages.
func (c Cell) Label() string {
	l := fmt.Sprintf("%s/%s", c.Scenario.Name, c.Method.DisplayName())
	if c.Seed != 0 {
		l += fmt.Sprintf("/seed=%d", c.Seed)
	}
	return l
}

// Validate rejects malformed campaigns with the first offending axis named.
func (c CampaignSpec) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: campaign has no name")
	}
	if err := c.Scale.Validate(); err != nil {
		return fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	if len(c.Scenarios) == 0 {
		return fmt.Errorf("campaign %s: no scenarios", c.Name)
	}
	if len(c.Methods) == 0 {
		return fmt.Errorf("campaign %s: no methods", c.Name)
	}
	seen := make(map[string]bool, len(c.Scenarios))
	for _, s := range c.Scenarios {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		if seen[s.Name] {
			return fmt.Errorf("campaign %s: duplicate scenario %s", c.Name, s.Name)
		}
		seen[s.Name] = true
	}
	for _, m := range c.Methods {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("campaign %s: %w", c.Name, err)
		}
	}
	for _, seed := range c.Seeds {
		if seed < 0 {
			return fmt.Errorf("campaign %s: negative seed %d", c.Name, seed)
		}
	}
	return nil
}

// Expand flattens the axes into cells: scenario-major, then method, then
// seed — the order the legacy S1-S10 x method SweepGrid used, so the paper
// campaign reproduces its cells exactly. Expansion is a pure function of
// the spec; expanding an unmarshalled copy yields identical cells.
func (c CampaignSpec) Expand() []Cell {
	seeds := c.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	cells := make([]Cell, 0, len(c.Scenarios)*len(c.Methods)*len(seeds))
	for _, sc := range c.Scenarios {
		for _, m := range c.Methods {
			for _, seed := range seeds {
				cells = append(cells, Cell{Index: len(cells), Scenario: sc, Method: m, Seed: seed})
			}
		}
	}
	return cells
}

// Load reads a campaign spec from JSON, rejecting unknown fields (a typoed
// axis name must not silently run the default campaign) and validating it.
func Load(r io.Reader) (CampaignSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		return CampaignSpec{}, fmt.Errorf("scenario: decoding campaign spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return CampaignSpec{}, err
	}
	return spec, nil
}

// Fingerprint digests the spec's canonical Dump form. Two specs share a
// fingerprint exactly when they expand to identical grids over identical
// sizing — the property the distributed runner's handshake relies on to
// refuse mixing workers configured from a different campaign.
func (c CampaignSpec) Fingerprint() (string, error) {
	var buf bytes.Buffer
	if err := c.Dump(&buf); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return fmt.Sprintf("%x", sum[:16]), nil
}

// Dump writes the spec as stable, indented JSON (the golden-file format:
// field order is fixed by the struct, floats render minimally, and a
// trailing newline terminates the document).
func (c CampaignSpec) Dump(w io.Writer) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("scenario: encoding campaign spec: %w", err)
	}
	_, err := w.Write(buf.Bytes())
	return err
}
