// Package scenario is the declarative spec layer of the evaluation surface:
// instead of threading string keys ("S1".."S10", method names) through every
// call site, campaigns are described by three composable, JSON-round-
// trippable specs and expanded deterministically into grid cells.
//
// # Spec grammar
//
// A ScenarioSpec declares one evaluation scenario: the Table III workload
// mix (bb_prob, min_tb/max_tb, halve_nodes), the optional §V-E power
// extension (power, min_w/max_w, power_budget_kw), and the theta-variant
// axes that stress the base trace itself (div, interarrival_scale,
// walltime_noise_sigma). Zero-valued variant fields inherit from the
// campaign scale; a spec with no variant overrides evaluates against the
// campaign's shared base materials. Scenarios that share one trained model
// name a common family (a theta variant of S4 has family "S4").
//
// A MethodSpec declares one scheduling method by kind — fcfs, optimization,
// scalar-rl, mrsch — plus, for trained kinds, either a model file reused
// across every cell of a scenario family, or train=true to train one model
// per family in-process before the grid fans out.
//
// A CampaignSpec is scenario axis x method axis x optional seed axis over
// one ScaleSpec (the serializable sizing). ByName resolves builtin
// scenarios and variant syntax ("S4@wtn=0.5", "S4@div=16,ia=0.75");
// PaperCampaign and ThetaVariantCampaign are the builtin campaigns.
//
// # Determinism contract
//
//  1. Expand is a pure function of the spec: scenario-major, then method,
//     then seed, with Cell.Index equal to the cell's expansion position.
//     Marshal -> unmarshal -> Expand yields identical cells.
//  2. Cell.Index — not worker identity or completion order — seeds every
//     per-cell policy, so campaign results are identical for every worker
//     count (cells are independent evaluation episodes; see
//     internal/rollout for the training-side contract).
//  3. The paper campaign's expansion reproduces the legacy
//     experiments.SweepGrid(nil) cells exactly, order included; the legacy
//     helpers survive as thin adapters over this package.
//  4. Load rejects unknown JSON fields, so a typoed axis never silently
//     runs the default campaign; Dump emits stable indented JSON suitable
//     for golden files (specs/paper-campaign.json in CI).
package scenario
