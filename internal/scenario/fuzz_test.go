package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzLoad drives arbitrary bytes through the campaign-spec loader.
// Invariants: Load never panics, and a spec it accepts is valid and
// survives a Dump -> Load round trip unchanged (the golden-file property
// CI relies on). The seeded corpus includes the two committed spec files.
func FuzzLoad(f *testing.F) {
	for _, name := range []string{"paper-campaign.json", "theta-smoke.json"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "specs", name)); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","scale":{"name":"s","div":1,"trace_duration":1,"mean_interarrival":1,"window":1,"sets_per_kind":1,"set_size":1,"eps_decay":0.9},"scenarios":[{"name":"a","bb_prob":0,"min_tb":0,"max_tb":0}],"methods":[{"kind":"fcfs"}]}`))
	f.Add([]byte(`{"name":"x","unknown_axis":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("Load accepted an invalid spec: %v", verr)
		}
		var dump bytes.Buffer
		if err := spec.Dump(&dump); err != nil {
			t.Fatalf("accepted spec fails to Dump: %v", err)
		}
		again, err := Load(bytes.NewReader(dump.Bytes()))
		if err != nil {
			t.Fatalf("Dump output fails to re-Load: %v", err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatal("Dump -> Load round trip changed the spec")
		}
	})
}
