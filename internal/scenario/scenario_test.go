package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestBuiltinsMatchThePaperTable(t *testing.T) {
	specs := Builtins()
	if len(specs) != 10 {
		t.Fatalf("%d builtins, want 10", len(specs))
	}
	wantNames := []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10"}
	for i, sp := range specs {
		if sp.Name != wantNames[i] {
			t.Fatalf("builtin %d = %s, want %s", i, sp.Name, wantNames[i])
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("builtin %s invalid: %v", sp.Name, err)
		}
		if got, want := sp.Power, i >= 5; got != want {
			t.Fatalf("%s power = %v, want %v", sp.Name, got, want)
		}
		if sp.IsVariant() {
			t.Fatalf("%s is a builtin but reports variant overrides", sp.Name)
		}
		if sp.Describe() == "" {
			t.Fatalf("%s has no generated description", sp.Name)
		}
	}
	// Spot-check one row of Table III survives the round trip to specs.
	s5, err := ByName("S5")
	if err != nil {
		t.Fatal(err)
	}
	if s5.BBProb != 0.75 || s5.MinTB != 20 || s5.MaxTB != 285 || !s5.HalveNodes {
		t.Fatalf("S5 spec drifted from Table III: %+v", s5)
	}
}

func TestByNameVariantSyntax(t *testing.T) {
	sp, err := ByName("S4@div=16,wtn=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Div != 16 || sp.WalltimeNoiseSigma != 0.5 {
		t.Fatalf("variant fields not applied: %+v", sp)
	}
	if sp.FamilyName() != "S4" {
		t.Fatalf("variant family = %s, want S4", sp.FamilyName())
	}
	if !sp.IsVariant() {
		t.Fatal("variant spec does not report IsVariant")
	}
	if !strings.Contains(sp.Name, "@") {
		t.Fatalf("variant name %q lacks suffix", sp.Name)
	}

	for _, bad := range []string{"S11", "S4@div=0.5", "S4@bogus=1", "S4@ia=-1", "S4@wtn"} {
		if _, err := ByName(bad); err == nil {
			t.Fatalf("ByName(%q) accepted", bad)
		}
	}
}

func TestTraceBuiltins(t *testing.T) {
	specs := TraceBuiltins()
	if len(specs) != 5 {
		t.Fatalf("%d trace builtins, want 5", len(specs))
	}
	for i, sp := range specs {
		want := fmt.Sprintf("T%d", i+1)
		if sp.Name != want {
			t.Fatalf("trace builtin %d = %s, want %s", i, sp.Name, want)
		}
		if sp.Trace != "t1" {
			t.Fatalf("%s trace = %q, want t1", sp.Name, sp.Trace)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", sp.Name, err)
		}
		if !sp.IsVariant() {
			t.Fatalf("%s replays a trace but does not report variant materials", sp.Name)
		}
		if sp.FamilyName() != sp.Name {
			t.Fatalf("%s family = %s; trace scenarios are their own family", sp.Name, sp.FamilyName())
		}
		back, err := ByName(sp.Name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", sp.Name, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("ByName(%s) = %+v, want %+v", sp.Name, back, sp)
		}
	}
	// T-mixes mirror the Table III S-mixes row for row.
	s3, _ := ByName("S3")
	t3, _ := ByName("T3")
	if t3.BBProb != s3.BBProb || t3.MinTB != s3.MinTB || t3.MaxTB != s3.MaxTB || t3.HalveNodes != s3.HalveNodes {
		t.Fatalf("T3 mix drifted from S3: %+v vs %+v", t3, s3)
	}
}

func TestByNameNewAxes(t *testing.T) {
	sp, err := ByName("S4@zipf=0.9,burst=5x0.1")
	if err != nil {
		t.Fatal(err)
	}
	if sp.ZipfTheta != 0.9 || sp.ZipfUsers == 0 {
		t.Fatalf("zipf axis not applied: %+v", sp)
	}
	if sp.Burst == nil || sp.Burst.Factor != 5 || sp.Burst.Frac != 0.1 {
		t.Fatalf("burst axis not applied: %+v", sp.Burst)
	}
	if sp.FamilyName() != "S4" {
		t.Fatalf("variant family = %s, want S4", sp.FamilyName())
	}
	if sp.Name != "S4@zipf=0.9,burst=5x0.1" {
		t.Fatalf("variant name = %q; chained variants must reproduce the ByName syntax", sp.Name)
	}
	back, err := ByName(sp.Name)
	if err != nil {
		t.Fatalf("round-tripping %s: %v", sp.Name, err)
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("ByName(%s) changed the spec across the round trip", sp.Name)
	}

	// zipf=0 is a real variant (uniform ownership over the default
	// population), not a no-op.
	zero, err := ByName("S4@zipf=0")
	if err != nil {
		t.Fatal(err)
	}
	if zero.ZipfTheta != 0 || zero.ZipfUsers == 0 || !zero.IsVariant() {
		t.Fatalf("zipf=0 variant: %+v", zero)
	}
}

// The satellite contract: every malformed variant list is rejected loudly,
// naming the offending token.
func TestByNameVariantErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		want string // substring the error must carry (the offending token)
	}{
		{"S4@bogus=1", "bogus"},
		{"S4@zipf=0.5,zipf=0.9", "twice"},
		{"S4@zipf=0.5,zipf-theta=0.9", "twice"}, // short and long form are one axis
		{"S4@ia=2,interarrival=0.5", "twice"},
		{"S4@burst=5", "5"},         // missing the x separator
		{"S4@burst=ax0.1", "ax0.1"}, // non-numeric factor
		{"S4@burst=0.5x0.1", "0.5"}, // factor below 1
		{"S4@burst=4x1.5", "1.5"},   // fraction outside (0,1)
		{"S4@ia=abc", "abc"},
		{"S4@zipf=0.5,", "empty"},
		{"S4@,zipf=0.5", "empty"},
		{"S4@zipf=0.5,,ia=2", "empty"},
		{"S4@zipf=-1", "-1"},
		{"T4@burst=4x0.1", "mutually exclusive"}, // trace carries its own arrivals
		{"T9", "unknown"},
	}
	for _, tc := range cases {
		_, err := ByName(tc.name)
		if err == nil {
			t.Fatalf("ByName(%q) accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("ByName(%q) error %q does not name the offending token %q", tc.name, err, tc.want)
		}
	}
}

func TestThetaSkewCampaign(t *testing.T) {
	c := ThetaSkewCampaign(TinyScaleSpec())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Scenarios) != 7 {
		t.Fatalf("%d scenarios, want 7 (S4 + zipf ladder 0/0.5/0.9/0.99 + two burst settings)", len(c.Scenarios))
	}
	for _, sp := range c.Scenarios {
		if sp.FamilyName() != "S4" {
			t.Fatalf("%s family = %s, want S4", sp.Name, sp.FamilyName())
		}
	}
	if _, err := CampaignByName("theta-skew", TinyScaleSpec()); err != nil {
		t.Fatalf("theta-skew not registered: %v", err)
	}
}

func TestAxesLaddersAreValidVariants(t *testing.T) {
	base, err := ByName("S4")
	if err != nil {
		t.Fatal(err)
	}
	for _, ax := range Axes() {
		if ax.Description == "" {
			t.Fatalf("axis %s has no description", ax.Name)
		}
		for _, v := range ax.Values {
			sp, err := Variant(base, ax.Name, v)
			if err != nil {
				t.Fatalf("axis %s value %g: %v", ax.Name, v, err)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("axis %s value %g produced invalid spec: %v", ax.Name, v, err)
			}
			// The short key resolves the same spec through name syntax.
			back, err := ByName(sp.Name)
			if err != nil {
				t.Fatalf("round-tripping %s: %v", sp.Name, err)
			}
			if !reflect.DeepEqual(sp, back) {
				t.Fatalf("ByName(%s) = %+v, want %+v", sp.Name, back, sp)
			}
		}
	}
}

func TestExpandOrderAndDeterminism(t *testing.T) {
	c := PaperCampaign(QuickScaleSpec())
	cells := c.Expand()
	if len(cells) != 20 {
		t.Fatalf("%d cells, want 20 (10 scenarios x 2 methods)", len(cells))
	}
	for i, cell := range cells {
		if cell.Index != i {
			t.Fatalf("cell %d carries index %d", i, cell.Index)
		}
		wantScenario := c.Scenarios[i/2].Name
		wantMethod := c.Methods[i%2].Kind
		if cell.Scenario.Name != wantScenario || cell.Method.Kind != wantMethod {
			t.Fatalf("cell %d = %s/%s, want %s/%s (scenario-major order)",
				i, cell.Scenario.Name, cell.Method.Kind, wantScenario, wantMethod)
		}
	}
	if !reflect.DeepEqual(cells, c.Expand()) {
		t.Fatal("Expand is not deterministic")
	}
}

func TestExpandSeedAxis(t *testing.T) {
	c := PaperCampaign(QuickScaleSpec())
	c.Scenarios = c.Scenarios[:1]
	c.Methods = c.Methods[:1]
	c.Seeds = []int64{3, 9}
	cells := c.Expand()
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	if cells[0].Seed != 3 || cells[1].Seed != 9 {
		t.Fatalf("seed axis out of order: %d, %d", cells[0].Seed, cells[1].Seed)
	}
}

// The satellite contract: JSON marshal -> unmarshal -> Expand is identical
// to direct expansion for every builtin campaign.
func TestCampaignJSONRoundTrip(t *testing.T) {
	for _, c := range BuiltinCampaigns(QuickScaleSpec()) {
		var buf bytes.Buffer
		if err := c.Dump(&buf); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !reflect.DeepEqual(c, loaded) {
			t.Fatalf("%s: spec changed across the JSON round trip:\n%+v\nvs\n%+v", c.Name, c, loaded)
		}
		if !reflect.DeepEqual(c.Expand(), loaded.Expand()) {
			t.Fatalf("%s: round-tripped expansion differs", c.Name)
		}
		// Dumping the loaded spec reproduces the bytes (golden-file
		// stability).
		var buf2 bytes.Buffer
		if err := loaded.Dump(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: Dump is not byte-stable", c.Name)
		}
	}
}

func TestLoadRejectsUnknownFieldsAndBadSpecs(t *testing.T) {
	good := PaperCampaign(QuickScaleSpec())
	var buf bytes.Buffer
	if err := good.Dump(&buf); err != nil {
		t.Fatal(err)
	}

	// Unknown field.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	raw["scenarioss"] = []any{}
	b, _ := json.Marshal(raw)
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("Load accepted an unknown field")
	}

	// Invalid scale sizing must fail loudly at Load.
	bad := good
	bad.Scale.Div = 0
	var badBuf bytes.Buffer
	enc := json.NewEncoder(&badBuf)
	if err := enc.Encode(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&badBuf); err == nil || !strings.Contains(err.Error(), "div") {
		t.Fatalf("Load(div=0) error = %v, want a div complaint", err)
	}
}

func TestValidationCatchesFieldErrors(t *testing.T) {
	base, _ := ByName("S1")
	cases := []struct {
		name   string
		mutate func(*ScenarioSpec)
	}{
		{"negative bbprob", func(s *ScenarioSpec) { s.BBProb = -0.1 }},
		{"bbprob above one", func(s *ScenarioSpec) { s.BBProb = 1.5 }},
		{"zero min_tb", func(s *ScenarioSpec) { s.MinTB = 0 }},
		{"max below min", func(s *ScenarioSpec) { s.MaxTB = s.MinTB - 1 }},
		{"negative div", func(s *ScenarioSpec) { s.Div = -1 }},
		{"negative ia scale", func(s *ScenarioSpec) { s.InterarrivalScale = -0.5 }},
		{"negative wtn sigma", func(s *ScenarioSpec) { s.WalltimeNoiseSigma = -1 }},
		{"power fields without power", func(s *ScenarioSpec) { s.MinW = 100 }},
		{"no name", func(s *ScenarioSpec) { s.Name = "" }},
	}
	for _, tc := range cases {
		sp := base
		tc.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted %+v", tc.name, sp)
		}
	}

	scaleCases := []func(*ScaleSpec){
		func(s *ScaleSpec) { s.Div = 0 },
		func(s *ScaleSpec) { s.Window = -1 },
		func(s *ScaleSpec) { s.SetSize = 0 },
		func(s *ScaleSpec) { s.TraceDuration = 0 },
		func(s *ScaleSpec) { s.SetsPerKind = 0 },
		func(s *ScaleSpec) { s.MeanInterarrival = -5 },
		func(s *ScaleSpec) { s.EpsDecay = 0 },
	}
	for i, mutate := range scaleCases {
		sc := QuickScaleSpec()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Fatalf("scale case %d: Validate accepted %+v", i, sc)
		}
	}

	methodCases := []MethodSpec{
		{Kind: "bogus"},
		{Kind: KindHeuristic, Train: true},
		{Kind: KindScalarRL, Model: "x.model"},
		{Kind: KindMRSch, Model: "x.model", Train: true},
		{Kind: KindOptimize, CNN: true},
	}
	for i, m := range methodCases {
		if err := m.Validate(); err == nil {
			t.Fatalf("method case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestMethodByName(t *testing.T) {
	for _, k := range Kinds() {
		for _, name := range []string{string(k), k.DisplayName()} {
			m, err := MethodByName(name)
			if err != nil {
				t.Fatalf("MethodByName(%q): %v", name, err)
			}
			if m.Kind != k {
				t.Fatalf("MethodByName(%q) = %s, want %s", name, m.Kind, k)
			}
		}
	}
	if _, err := MethodByName("sjf"); err == nil {
		t.Fatal("MethodByName accepted an unknown method")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "standard", "tiny"} {
		sc, err := ScaleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name {
			t.Fatalf("ScaleByName(%q).Name = %q", name, sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("builtin scale %s invalid: %v", name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Fatal("ScaleByName accepted an unknown scale")
	}
}
