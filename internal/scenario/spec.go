package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// ScenarioSpec declares one evaluation scenario: a workload mix (the
// Table III burst-buffer transform), an optional third power resource
// (§V-E), and the theta-variant axes that stress the base trace itself.
// The zero value of every variant field means "inherit from the campaign
// scale"; a spec with no variant overrides evaluates against the campaign's
// shared base materials, byte-identical to the legacy string-keyed path.
type ScenarioSpec struct {
	// Name identifies the scenario; grid cells and reports carry it.
	Name string `json:"name"`
	// Family groups scenarios that share one trained model (a theta
	// variant of S4 belongs to family S4). Empty means the scenario is its
	// own family.
	Family string `json:"family,omitempty"`
	// Description is an optional free-form note; Describe() generates a
	// canonical one-liner from the fields when it is empty.
	Description string `json:"description,omitempty"`

	// Workload mix — Table III: with probability BBProb a job receives a
	// burst-buffer request resampled from the trace's request pool
	// restricted to [MinTB, MaxTB]; HalveNodes halves node demands (S5).
	BBProb     float64 `json:"bb_prob"`
	MinTB      float64 `json:"min_tb"`
	MaxTB      float64 `json:"max_tb"`
	HalveNodes bool    `json:"halve_nodes,omitempty"`

	// Power extends the system with the §V-E power resource: per-node
	// draws uniform in [MinW, MaxW] watts against a machine budget of
	// PowerBudgetKW (0 = the paper's 500 kW), scaled with the system.
	Power         bool    `json:"power,omitempty"`
	MinW          float64 `json:"min_w,omitempty"`
	MaxW          float64 `json:"max_w,omitempty"`
	PowerBudgetKW int     `json:"power_budget_kw,omitempty"`

	// Theta-variant axes. Div overrides the campaign's machine divisor
	// (the Div ladder); InterarrivalScale multiplies the base trace's mean
	// interarrival (values < 1 stress the queue); WalltimeNoiseSigma
	// perturbs user walltime estimates with multiplicative lognormal noise
	// of that sigma at evaluation time. Zero means "off / inherit".
	Div                int     `json:"div,omitempty"`
	InterarrivalScale  float64 `json:"interarrival_scale,omitempty"`
	WalltimeNoiseSigma float64 `json:"walltime_noise_sigma,omitempty"`

	// ZipfTheta/ZipfUsers label the workload's jobs with Zipf-skewed user
	// ownership: ZipfUsers > 0 enables the axis (theta 0 = uniform over that
	// population). Ownership is metadata — schedulers stay user-blind — so
	// the axis perturbs per-user accounting, never placement.
	ZipfTheta float64 `json:"zipf_theta,omitempty"`
	ZipfUsers int     `json:"zipf_users,omitempty"`
	// Burst modulates the base trace's arrivals with a two-state Markov
	// chain (see BurstSpec); nil means Poisson-with-diurnal-profile only.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Trace replaces the synthetic base trace with an ingested SWF log: a
	// builtin trace name (workload.BuiltinTraces) or an SWF file path. The
	// T-family scenarios use this for cross-machine transfer evaluation.
	Trace string `json:"trace,omitempty"`
}

// Arity is the number of schedulable resources the scenario needs.
func (s ScenarioSpec) Arity() int {
	if s.Power {
		return 3
	}
	return 2
}

// FamilyName resolves the model-sharing family (Name when Family is empty).
func (s ScenarioSpec) FamilyName() string {
	if s.Family != "" {
		return s.Family
	}
	return s.Name
}

// IsVariant reports whether the spec overrides any theta-variant axis and
// therefore needs its own base materials instead of the campaign's.
func (s ScenarioSpec) IsVariant() bool {
	return s.Div > 0 ||
		(s.InterarrivalScale > 0 && s.InterarrivalScale != 1) ||
		s.WalltimeNoiseSigma > 0 ||
		s.ZipfUsers > 0 ||
		s.Burst != nil ||
		s.Trace != ""
}

// Mix converts the spec to the workload-layer Table III transform.
func (s ScenarioSpec) Mix() workload.Scenario {
	return workload.Scenario{
		Name:       s.Name,
		BBProb:     s.BBProb,
		MinTB:      s.MinTB,
		MaxTB:      s.MaxTB,
		HalveNodes: s.HalveNodes,
	}
}

// PowerMix converts a power spec to the workload-layer §V-E transform.
func (s ScenarioSpec) PowerMix() workload.PowerScenario {
	return workload.PowerScenario{Scenario: s.Mix(), MinW: s.MinW, MaxW: s.MaxW}
}

// Describe returns the Description, or a one-liner generated from the
// fields (the -list output is built from this, not a hand-written table).
func (s ScenarioSpec) Describe() string {
	if s.Description != "" {
		return s.Description
	}
	parts := []string{fmt.Sprintf("BB prob %.2f, requests %g-%g TB", s.BBProb, s.MinTB, s.MaxTB)}
	if s.HalveNodes {
		parts = append(parts, "halved node demands")
	}
	if s.Power {
		budget := s.PowerBudgetKW
		if budget == 0 {
			budget = workload.ThetaPowerBudgetKW
		}
		parts = append(parts, fmt.Sprintf("power %g-%g W/node under %d kW", s.MinW, s.MaxW, budget))
	}
	if s.Div > 0 {
		parts = append(parts, fmt.Sprintf("machine 1/%d", s.Div))
	}
	if s.InterarrivalScale > 0 && s.InterarrivalScale != 1 {
		parts = append(parts, fmt.Sprintf("interarrival x%s", trimFloat(s.InterarrivalScale)))
	}
	if s.WalltimeNoiseSigma > 0 {
		parts = append(parts, fmt.Sprintf("walltime noise sigma %s", trimFloat(s.WalltimeNoiseSigma)))
	}
	if s.ZipfUsers > 0 {
		parts = append(parts, fmt.Sprintf("zipf user skew theta %s over %d users", trimFloat(s.ZipfTheta), s.ZipfUsers))
	}
	if s.Burst != nil {
		parts = append(parts, s.Burst.Describe())
	}
	if s.Trace != "" {
		parts = append(parts, fmt.Sprintf("replays trace %s", s.Trace))
	}
	return strings.Join(parts, ", ")
}

// Validate rejects malformed specs with a field-naming error.
func (s ScenarioSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.BBProb < 0 || s.BBProb > 1 {
		return fmt.Errorf("scenario %s: bb_prob %g outside [0,1]", s.Name, s.BBProb)
	}
	if s.BBProb > 0 {
		if s.MinTB <= 0 {
			return fmt.Errorf("scenario %s: min_tb %g must be positive", s.Name, s.MinTB)
		}
		if s.MaxTB < s.MinTB {
			return fmt.Errorf("scenario %s: max_tb %g below min_tb %g", s.Name, s.MaxTB, s.MinTB)
		}
	}
	if s.Power {
		if s.MinW <= 0 {
			return fmt.Errorf("scenario %s: min_w %g must be positive on a power scenario", s.Name, s.MinW)
		}
		if s.MaxW < s.MinW {
			return fmt.Errorf("scenario %s: max_w %g below min_w %g", s.Name, s.MaxW, s.MinW)
		}
	} else if s.MinW != 0 || s.MaxW != 0 || s.PowerBudgetKW != 0 {
		return fmt.Errorf("scenario %s: power profile fields set without power=true", s.Name)
	}
	if s.PowerBudgetKW < 0 {
		return fmt.Errorf("scenario %s: power_budget_kw %d must be >= 0", s.Name, s.PowerBudgetKW)
	}
	if s.Div < 0 {
		return fmt.Errorf("scenario %s: div %d must be >= 0 (0 inherits the campaign scale)", s.Name, s.Div)
	}
	if s.InterarrivalScale < 0 {
		return fmt.Errorf("scenario %s: interarrival_scale %g must be >= 0", s.Name, s.InterarrivalScale)
	}
	if s.WalltimeNoiseSigma < 0 {
		return fmt.Errorf("scenario %s: walltime_noise_sigma %g must be >= 0", s.Name, s.WalltimeNoiseSigma)
	}
	if s.ZipfUsers < 0 {
		return fmt.Errorf("scenario %s: zipf_users %d must be >= 0 (0 disables the axis)", s.Name, s.ZipfUsers)
	}
	if s.ZipfTheta < 0 || math.IsNaN(s.ZipfTheta) || math.IsInf(s.ZipfTheta, 0) {
		return fmt.Errorf("scenario %s: zipf_theta %g must be a finite value >= 0", s.Name, s.ZipfTheta)
	}
	if s.ZipfTheta != 0 && s.ZipfUsers == 0 {
		return fmt.Errorf("scenario %s: zipf_theta set without zipf_users (the population size; the zipf variant syntax implies %d)",
			s.Name, workload.DefaultZipfUsers)
	}
	if s.Burst != nil {
		if s.Trace != "" {
			return fmt.Errorf("scenario %s: trace and burst are mutually exclusive (a replayed trace carries its own arrival process)", s.Name)
		}
		if err := s.Burst.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// MethodKind enumerates the §IV-D scheduling methods.
type MethodKind string

const (
	KindHeuristic MethodKind = "fcfs"
	KindOptimize  MethodKind = "optimization"
	KindScalarRL  MethodKind = "scalar-rl"
	KindMRSch     MethodKind = "mrsch"
)

// DisplayName is the paper's label for the kind.
func (k MethodKind) DisplayName() string {
	switch k {
	case KindHeuristic:
		return "Heuristic"
	case KindOptimize:
		return "Optimization"
	case KindScalarRL:
		return "Scalar RL"
	case KindMRSch:
		return "MRSch"
	}
	return string(k)
}

// Trained reports whether the kind needs a trained model.
func (k MethodKind) Trained() bool { return k == KindScalarRL || k == KindMRSch }

// Kinds lists the methods in the paper's plotting order.
func Kinds() []MethodKind {
	return []MethodKind{KindMRSch, KindOptimize, KindScalarRL, KindHeuristic}
}

// MethodSpec declares one scheduling method of a campaign.
type MethodSpec struct {
	Kind MethodKind `json:"kind"`
	// Label overrides the display name in reports (e.g. to distinguish two
	// mrsch entries with different models).
	Label string `json:"label,omitempty"`
	// Model is a weights file (cmd/mrsch-train output) loaded into an
	// untrained campaign-architecture agent; the same model is reused
	// across every grid cell of a scenario family. mrsch only.
	Model string `json:"model,omitempty"`
	// Train trains one model per scenario family in-process before the
	// grid cells fan out, then reuses it across that family's cells.
	// mrsch and scalar-rl only.
	Train bool `json:"train,omitempty"`
	// CNN selects the convolutional state module (Figure 3). mrsch only.
	CNN bool `json:"cnn,omitempty"`
}

// DisplayName is the method's report label.
func (m MethodSpec) DisplayName() string {
	if m.Label != "" {
		return m.Label
	}
	return m.Kind.DisplayName()
}

// Describe returns a generated one-liner for the method.
func (m MethodSpec) Describe() string {
	switch m.Kind {
	case KindHeuristic:
		return "FCFS with EASY backfilling (training-free)"
	case KindOptimize:
		return "per-window NSGA-II optimization (training-free)"
	case KindScalarRL:
		return "fixed-weight scalar policy-gradient RL (trained per scenario family)"
	case KindMRSch:
		return "the paper's DFP agent (trained per family, or loaded from a model file)"
	}
	return string(m.Kind)
}

// Validate rejects malformed method specs.
func (m MethodSpec) Validate() error {
	switch m.Kind {
	case KindHeuristic, KindOptimize, KindScalarRL, KindMRSch:
	default:
		return fmt.Errorf("scenario: unknown method kind %q (want %s, %s, %s, or %s)",
			m.Kind, KindHeuristic, KindOptimize, KindScalarRL, KindMRSch)
	}
	if m.Model != "" && m.Kind != KindMRSch {
		return fmt.Errorf("scenario: method %s: model files apply to %s only", m.Kind, KindMRSch)
	}
	if m.Train && !m.Kind.Trained() {
		return fmt.Errorf("scenario: method %s is training-free; drop train=true", m.Kind)
	}
	if m.Model != "" && m.Train {
		return fmt.Errorf("scenario: method %s: model and train are mutually exclusive", m.Kind)
	}
	if m.CNN && m.Kind != KindMRSch {
		return fmt.Errorf("scenario: method %s: cnn applies to %s only", m.Kind, KindMRSch)
	}
	return nil
}

// MethodByName resolves a method kind or display name ("fcfs" and
// "Heuristic" both work) to its spec.
func MethodByName(name string) (MethodSpec, error) {
	for _, k := range Kinds() {
		if name == string(k) || name == k.DisplayName() {
			return MethodSpec{Kind: k}, nil
		}
	}
	return MethodSpec{}, fmt.Errorf("scenario: unknown method %q", name)
}

// ScaleSpec is the serializable campaign sizing — the declarative form of
// experiments.Scale (runtime knobs like worker counts are not part of the
// spec; they belong to flags).
type ScaleSpec struct {
	Name string `json:"name"`
	// Div scales the Theta machine (nodes and burst buffer divided by Div).
	Div int `json:"div"`
	// TraceDuration (seconds) and MeanInterarrival shape the base trace.
	TraceDuration    float64 `json:"trace_duration"`
	MeanInterarrival float64 `json:"mean_interarrival"`
	// Window is W (the paper uses 10).
	Window int `json:"window"`
	// SetsPerKind and SetSize size the §III-D curriculum.
	SetsPerKind int `json:"sets_per_kind"`
	SetSize     int `json:"set_size"`
	// StepsPerEpisode is gradient steps after each training episode.
	StepsPerEpisode int `json:"steps_per_episode"`
	// EpsDecay is the per-episode exploration decay.
	EpsDecay float64 `json:"eps_decay"`
	// Seed roots all randomness.
	Seed int64 `json:"seed"`
	// Burst, when set, modulates the campaign's shared base trace — and the
	// training curriculum derived from it — with the two-state bursty
	// arrival chain, so models can be trained on bursty workloads rather
	// than only evaluated against them. Scenario-level burst overrides win
	// for that scenario's materials.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Trace replaces the campaign's synthetic base trace with an ingested
	// SWF log (builtin trace name or file path). Mutually exclusive with
	// Burst: a replayed trace carries its own arrival process.
	Trace string `json:"trace,omitempty"`
}

// Validate rejects sizing that would silently generate a degenerate trace
// or curriculum.
func (s ScaleSpec) Validate() error {
	if s.Div <= 0 {
		return fmt.Errorf("scale %s: div %d must be positive", s.Name, s.Div)
	}
	if s.TraceDuration <= 0 {
		return fmt.Errorf("scale %s: trace_duration %g must be positive", s.Name, s.TraceDuration)
	}
	if s.MeanInterarrival <= 0 {
		return fmt.Errorf("scale %s: mean_interarrival %g must be positive", s.Name, s.MeanInterarrival)
	}
	if s.Window <= 0 {
		return fmt.Errorf("scale %s: window %d must be positive", s.Name, s.Window)
	}
	if s.SetsPerKind <= 0 {
		return fmt.Errorf("scale %s: sets_per_kind %d must be positive", s.Name, s.SetsPerKind)
	}
	if s.SetSize <= 0 {
		return fmt.Errorf("scale %s: set_size %d must be positive", s.Name, s.SetSize)
	}
	if s.StepsPerEpisode < 0 {
		return fmt.Errorf("scale %s: steps_per_episode %d must be >= 0", s.Name, s.StepsPerEpisode)
	}
	if s.EpsDecay <= 0 || s.EpsDecay > 1 {
		return fmt.Errorf("scale %s: eps_decay %g outside (0,1]", s.Name, s.EpsDecay)
	}
	if s.Burst != nil {
		if s.Trace != "" {
			return fmt.Errorf("scale %s: trace and burst are mutually exclusive (a replayed trace carries its own arrival process)", s.Name)
		}
		if err := s.Burst.Validate(); err != nil {
			return fmt.Errorf("scale %s: %w", s.Name, err)
		}
	}
	return nil
}

// trimFloat renders a float without trailing zeros ("0.5", "16").
func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
