package sched

// Additional list-scheduling pickers from the related work (§II-A), provided
// for context experiments beyond the paper's three baselines. Both operate
// within the same window/reservation/backfilling framework, so they satisfy
// the HPC starvation-avoidance requirements the paper insists on — unlike
// their data-center originals.

// Tetris scores each window job by the alignment of its demand vector with
// the currently free resources (the multi-dimensional packing heuristic of
// Grandl et al., SIGCOMM 2014, adapted to rigid HPC jobs): pick the fitting
// job whose normalized demand has the largest dot product with the
// normalized free vector. Falls back to the queue head when nothing fits.
type Tetris struct{}

// Pick implements Picker.
func (Tetris) Pick(ctx *PickContext) int {
	cl := ctx.Cluster
	best, bestScore := -1, -1.0
	for i, j := range ctx.Window {
		if !cl.CanFit(j.Demand) {
			continue
		}
		score := 0.0
		for r, d := range j.Demand {
			cap := float64(cl.Capacity(r))
			score += (float64(d) / cap) * (float64(cl.Free(r)) / cap)
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best >= 0 {
		return best
	}
	return 0
}

// SJF picks the fitting window job with the shortest user-supplied walltime
// estimate — classic shortest-job-first list scheduling, a strong
// slowdown-oriented heuristic. Falls back to the queue head when nothing
// fits (preserving FCFS reservation semantics so large jobs cannot starve).
type SJF struct{}

// Pick implements Picker.
func (SJF) Pick(ctx *PickContext) int {
	best, bestWall := -1, 0.0
	for i, j := range ctx.Window {
		if !ctx.Cluster.CanFit(j.Demand) {
			continue
		}
		if best < 0 || j.Walltime < bestWall {
			best, bestWall = i, j.Walltime
		}
	}
	if best >= 0 {
		return best
	}
	return 0
}

// LargestFirst picks the fitting job with the largest primary-resource
// demand — a utilization-oriented greedy that pairs naturally with
// backfilling (big blocks first, small jobs fill the gaps).
type LargestFirst struct{}

// Pick implements Picker.
func (LargestFirst) Pick(ctx *PickContext) int {
	best, bestNodes := -1, -1
	for i, j := range ctx.Window {
		if !ctx.Cluster.CanFit(j.Demand) {
			continue
		}
		if j.Demand[0] > bestNodes {
			best, bestNodes = i, j.Demand[0]
		}
	}
	if best >= 0 {
		return best
	}
	return 0
}
