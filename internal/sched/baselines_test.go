package sched

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
)

func pickCtx(cl *cluster.Cluster, window ...*job.Job) *PickContext {
	return &PickContext{Now: 0, Window: window, Queue: window, Cluster: cl, Usage: cl.Usage()}
}

func TestTetrisPrefersAlignedJob(t *testing.T) {
	cl := cluster.New(cfg()) // 16 nodes, 8 bb
	// Consume most BB: free = (12, 1). A node-heavy job aligns better than
	// a BB-heavy one.
	if err := cl.Allocate(99, []int{4, 7}, 0, 100); err != nil {
		t.Fatal(err)
	}
	window := []*job.Job{
		mk(1, 0, 100, 2, 1),  // bb-heavy relative to free
		mk(2, 0, 100, 10, 0), // node-heavy: aligned with free vector
	}
	if got := (Tetris{}).Pick(pickCtx(cl, window...)); got != 1 {
		t.Fatalf("Tetris picked %d, want 1", got)
	}
}

func TestTetrisFallsBackWhenNothingFits(t *testing.T) {
	cl := cluster.New(cfg())
	if err := cl.Allocate(99, []int{16, 8}, 0, 100); err != nil {
		t.Fatal(err)
	}
	window := []*job.Job{mk(1, 0, 100, 2, 1), mk(2, 0, 100, 1, 0)}
	if got := (Tetris{}).Pick(pickCtx(cl, window...)); got != 0 {
		t.Fatalf("Tetris fallback = %d, want 0 (head)", got)
	}
}

func TestSJFPicksShortestFitting(t *testing.T) {
	cl := cluster.New(cfg())
	window := []*job.Job{
		mk(1, 0, 500, 4, 0),
		mk(2, 0, 50, 4, 0),
		mk(3, 0, 200, 4, 0),
	}
	if got := (SJF{}).Pick(pickCtx(cl, window...)); got != 1 {
		t.Fatalf("SJF picked %d, want 1", got)
	}
	// The shortest job does not fit: next shortest fitting wins.
	if err := cl.Allocate(99, []int{13, 0}, 0, 1000); err != nil {
		t.Fatal(err)
	}
	window[1].Demand = []int{4, 0} // still doesn't fit (free 3)
	window[2].Demand = []int{3, 0}
	window[0].Demand = []int{3, 0}
	if got := (SJF{}).Pick(pickCtx(cl, window...)); got != 2 {
		t.Fatalf("SJF picked %d, want 2 (shortest fitting)", got)
	}
}

func TestLargestFirstPicksBiggest(t *testing.T) {
	cl := cluster.New(cfg())
	window := []*job.Job{
		mk(1, 0, 100, 4, 0),
		mk(2, 0, 100, 12, 0),
		mk(3, 0, 100, 8, 0),
	}
	if got := (LargestFirst{}).Pick(pickCtx(cl, window...)); got != 1 {
		t.Fatalf("LargestFirst picked %d, want 1", got)
	}
}

// All three heuristics must complete random workloads without starvation
// (the window+reservation framework guarantees progress regardless of the
// picker).
func TestBaselinePickersCompleteWorkloads(t *testing.T) {
	pickers := map[string]Picker{"tetris": Tetris{}, "sjf": SJF{}, "largest": LargestFirst{}}
	for name, p := range pickers {
		rng := rand.New(rand.NewSource(11))
		var jobs []*job.Job
		clk := 0.0
		for i := 1; i <= 80; i++ {
			clk += float64(rng.Intn(25))
			jobs = append(jobs, mk(i, clk, float64(rng.Intn(300)+1), rng.Intn(16)+1, rng.Intn(9)))
		}
		s := sim.New(cfg(), NewWindowPolicy(p, 10))
		if err := s.Load(jobs); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, j := range jobs {
			if j.State != job.Finished {
				t.Fatalf("%s starved job %d", name, j.ID)
			}
		}
	}
}

func TestSJFImprovesSlowdownOverFCFS(t *testing.T) {
	// A filler occupies the machine while a long job and many short jobs
	// queue behind it; SJF should cut average slowdown relative to FCFS
	// (the classic result).
	var jobs []*job.Job
	jobs = append(jobs, mk(1, 0, 100, 16, 0))  // filler: whole machine
	jobs = append(jobs, mk(2, 1, 1000, 10, 0)) // long job at the queue head
	for i := 3; i <= 30; i++ {
		jobs = append(jobs, mk(i, float64(i), 20, 10, 0))
	}
	slowdown := func(p Picker) float64 {
		js := job.CloneAll(jobs)
		s := sim.New(cfg(), NewWindowPolicy(p, 10))
		if err := s.Load(js); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, j := range js {
			total += j.Slowdown()
		}
		return total / float64(len(js))
	}
	if sjf, fcfs := slowdown(SJF{}), slowdown(FCFS{}); sjf >= fcfs {
		t.Fatalf("SJF slowdown %v >= FCFS %v", sjf, fcfs)
	}
}
