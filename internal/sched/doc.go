// Package sched implements the HPC scheduling framework shared by every
// method the paper compares: the window over the front of the waiting queue,
// advance reservation of the first unplaceable selection, and EASY
// backfilling (§II-A and §III-C). Individual scheduling methods plug in as
// Pickers: FCFS (this package), the genetic-algorithm optimizer
// (internal/ga), the scalar-reward policy gradient (internal/rl), and MRSch
// itself (internal/core).
//
// # Determinism
//
// The framework itself is deterministic: WindowPolicy consults its Picker
// and the simulator in fixed order, backfilling scans the queue snapshot in
// arrival order, and no randomness or map iteration enters any decision.
// All stochastic behaviour lives inside Pickers and is seeded there — a
// WindowPolicy over a deterministic Picker replays identically. Rollout
// actors (core.MRSchActor, rl.Actor) are Pickers too, so parallel episode
// collection reuses this exact driver; the repo-wide determinism and
// seeding contract is documented in internal/rollout.
package sched
