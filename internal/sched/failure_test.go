package sched

import (
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

// Failure-injection tests: the framework must stay correct when user
// estimates are wrong or the workload is adversarial.

func TestUnderestimatedWalltimesStillComplete(t *testing.T) {
	// Users sometimes underestimate runtimes; planning data (EstEnd,
	// shadow times) is then wrong, but the simulation must stay sound and
	// every job must still run.
	rng := rand.New(rand.NewSource(77))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 60; i++ {
		clk += float64(rng.Intn(30))
		runtime := float64(rng.Intn(400) + 10)
		wall := runtime
		if rng.Float64() < 0.4 {
			wall = runtime / 2 // severe underestimate
		}
		if wall < 1 {
			wall = 1
		}
		jobs = append(jobs, &job.Job{
			ID: i, Submit: clk, Runtime: runtime, Walltime: wall,
			Demand: []int{rng.Intn(16) + 1, rng.Intn(9)},
		})
	}
	s := sim.New(cfg(), NewWindowPolicy(FCFS{}, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State != job.Finished {
			t.Fatalf("job %d unfinished under walltime underestimates", j.ID)
		}
	}
	if err := s.Cluster().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialPickerCannotCorruptState(t *testing.T) {
	// A picker that returns garbage indices (negative, huge, random) must
	// degrade to FCFS behaviour, never panic or starve.
	rng := rand.New(rand.NewSource(88))
	adversary := PickerFunc(func(ctx *PickContext) int {
		switch rng.Intn(3) {
		case 0:
			return -5
		case 1:
			return len(ctx.Window) + 100
		default:
			return rng.Intn(len(ctx.Window))
		}
	})
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 50; i++ {
		clk += float64(rng.Intn(30))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(200)+1), rng.Intn(16)+1, rng.Intn(9)))
	}
	s := sim.New(cfg(), NewWindowPolicy(adversary, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State != job.Finished {
			t.Fatalf("job %d starved under adversarial picker", j.ID)
		}
	}
}

func TestZeroSecondaryDemandJobs(t *testing.T) {
	// CPU-only jobs (zero burst buffer) must flow through multi-resource
	// scheduling untouched — the base trace before the Table III transform.
	var jobs []*job.Job
	for i := 1; i <= 20; i++ {
		jobs = append(jobs, mk(i, float64(i), 50, 4, 0))
	}
	s := sim.New(cfg(), NewWindowPolicy(Tetris{}, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Utilization(1) != 0 {
		t.Fatalf("bb utilization %v for a CPU-only workload", s.Utilization(1))
	}
}

func TestSimultaneousArrivalBurst(t *testing.T) {
	// 100 jobs at t=0 (a flash crowd): the scheduler must drain them all
	// and keep FIFO fairness among equals under FCFS.
	var jobs []*job.Job
	for i := 1; i <= 100; i++ {
		jobs = append(jobs, mk(i, 0, 30, 8, 2))
	}
	s := sim.New(cfg(), NewWindowPolicy(FCFS{}, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 16 nodes / 8 per job = 2 concurrent; FCFS must start them in ID order.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Start < jobs[i-1].Start {
			t.Fatalf("FCFS order violated: job %d before job %d", jobs[i].ID, jobs[i-1].ID)
		}
	}
}

func TestFullMachineJob(t *testing.T) {
	// A job demanding every unit of every resource must run (alone).
	jobs := []*job.Job{
		mk(1, 0, 100, 10, 3),
		mk(2, 1, 100, 16, 8), // whole machine
		mk(3, 2, 100, 1, 1),
	}
	s := sim.New(cfg(), NewWindowPolicy(FCFS{}, 10))
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	big := jobs[1]
	if big.State != job.Finished {
		t.Fatal("full-machine job never ran")
	}
	// While it ran, nothing else could overlap.
	for _, other := range []*job.Job{jobs[0], jobs[2]} {
		overlap := other.Start < big.End && big.Start < other.End
		if overlap {
			t.Fatalf("job %d overlapped the full-machine job", other.ID)
		}
	}
}
