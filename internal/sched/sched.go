package sched

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
)

// PickContext is the information available to a scheduling method at one
// decision instant: the window of candidate jobs, the whole queue, the live
// cluster, and the instantaneous measurement vector.
type PickContext struct {
	Now     float64
	Window  []*job.Job
	Queue   []*job.Job
	Cluster *cluster.Cluster
	Usage   []float64 // used fraction per resource (the measurement vector)
}

// Picker selects which window job to schedule next, returning an index into
// ctx.Window. Out-of-range returns are treated as 0 (head of queue), which
// makes FCFS the universal fallback.
type Picker interface {
	Pick(ctx *PickContext) int
}

// PickerFunc adapts a function to the Picker interface.
type PickerFunc func(ctx *PickContext) int

// Pick implements Picker.
func (f PickerFunc) Pick(ctx *PickContext) int { return f(ctx) }

// FCFS picks the oldest waiting job — the paper's Heuristic baseline, the
// multi-resource extension of first-come-first-serve list scheduling.
type FCFS struct{}

// Pick implements Picker.
func (FCFS) Pick(*PickContext) int { return 0 }

// WindowPolicy is the shared scheduling driver (§III-C). At every scheduling
// instance it repeatedly asks the Picker for a job from the window at the
// front of the queue: jobs that fit start immediately; the first selection
// that does not fit is reserved (its resources held via the shadow-time
// computation) and the remaining queue is EASY-backfilled around the
// reservation. A window size of 10 matches the paper's experiments.
type WindowPolicy struct {
	Picker   Picker
	W        int
	Backfill bool

	// OnDecision, when set, observes every pick (training and analysis hook:
	// the RL methods record trajectories with it, Figures 8/9 sample the
	// goal vector with it).
	OnDecision func(ctx *PickContext, pick int)
}

// NewWindowPolicy builds a policy with EASY backfilling enabled.
func NewWindowPolicy(p Picker, w int) *WindowPolicy {
	if w <= 0 {
		w = 10
	}
	return &WindowPolicy{Picker: p, W: w, Backfill: true}
}

// OnSchedule implements sim.Policy.
func (wp *WindowPolicy) OnSchedule(s *sim.Simulator) {
	for {
		queue := s.Queue()
		if len(queue) == 0 {
			s.Reserved = nil
			return
		}
		w := wp.W
		if w > len(queue) {
			w = len(queue)
		}
		window := queue[:w]
		ctx := &PickContext{
			Now:     s.Now(),
			Window:  window,
			Queue:   queue,
			Cluster: s.Cluster(),
			Usage:   s.Cluster().Usage(),
		}
		idx := wp.Picker.Pick(ctx)
		if idx < 0 || idx >= w {
			idx = 0
		}
		if wp.OnDecision != nil {
			wp.OnDecision(ctx, idx)
		}
		j := window[idx]
		if s.Cluster().CanFit(j.Demand) {
			if err := s.StartJob(j); err != nil {
				// CanFit held, so failure indicates a framework bug.
				panic(fmt.Sprintf("sched: start after CanFit: %v", err))
			}
			continue
		}
		// The selected job cannot start: reserve it and backfill around it.
		s.Reserved = j
		if wp.Backfill {
			easyBackfill(s, j)
		}
		return
	}
}

// easyBackfill implements multi-resource EASY backfilling: queued jobs may
// jump ahead of the reserved job only if they do not delay it — either they
// finish (by walltime estimate) before the reservation's shadow time, or
// they fit entirely within the resources left over at the shadow time.
func easyBackfill(s *sim.Simulator, reserved *job.Job) {
	cl := s.Cluster()
	now := s.Now()
	shadow, freeAtShadow := cl.EarliestFit(reserved.Demand, now)
	if shadow < 0 {
		return
	}
	extra := make([]int, len(freeAtShadow))
	for r := range extra {
		extra[r] = freeAtShadow[r] - reserved.Demand[r]
	}
	// Snapshot the queue: StartJob mutates it while we iterate.
	candidates := make([]*job.Job, 0, len(s.Queue()))
	for _, c := range s.Queue() {
		if c != reserved {
			candidates = append(candidates, c)
		}
	}
	for _, cand := range candidates {
		if !cl.CanFit(cand.Demand) {
			continue
		}
		endsBeforeShadow := now+cand.Walltime <= shadow
		fitsExtra := true
		for r, d := range cand.Demand {
			if d > extra[r] {
				fitsExtra = false
				break
			}
		}
		if !endsBeforeShadow && !fitsExtra {
			continue
		}
		if err := s.StartJob(cand); err != nil {
			panic(fmt.Sprintf("sched: backfill start: %v", err))
		}
		if !endsBeforeShadow {
			// The job borrows shadow-time capacity; charge it against the
			// reservation's leftovers so later candidates cannot overdraw.
			for r, d := range cand.Demand {
				extra[r] -= d
			}
		}
	}
}

// Shadow exposes the reservation shadow-time computation for tests and
// analysis: the earliest start for demand and the spare capacity vector
// after the reserved job claims its share at that time.
func Shadow(cl *cluster.Cluster, demand []int, now float64) (shadow float64, extra []int) {
	shadow, freeAtShadow := cl.EarliestFit(demand, now)
	if shadow < 0 {
		return -1, nil
	}
	extra = make([]int, len(freeAtShadow))
	for r := range extra {
		extra[r] = freeAtShadow[r] - demand[r]
	}
	return shadow, extra
}
