package sched

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
)

func cfg() cluster.Config {
	return cluster.Config{Name: "t", Resources: []string{"nodes", "bb"}, Capacities: []int{16, 8}}
}

func mk(id int, submit, runtime float64, nodes, bb int) *job.Job {
	return &job.Job{ID: id, Submit: submit, Runtime: runtime, Walltime: runtime, Demand: []int{nodes, bb}}
}

func runFCFS(t *testing.T, jobs []*job.Job, backfill bool) *sim.Simulator {
	t.Helper()
	p := NewWindowPolicy(FCFS{}, 10)
	p.Backfill = backfill
	s := sim.New(cfg(), p)
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFCFSOrder(t *testing.T) {
	jobs := []*job.Job{
		mk(1, 0, 100, 8, 0),
		mk(2, 1, 100, 8, 0),
		mk(3, 2, 100, 8, 0),
	}
	runFCFS(t, jobs, true)
	if jobs[0].Start != 0 || jobs[1].Start != 1 {
		t.Fatalf("starts: %v %v", jobs[0].Start, jobs[1].Start)
	}
	// Job 3 needs 8 nodes; 16 are busy until t=100.
	if jobs[2].Start != 100 {
		t.Fatalf("job 3 start = %v, want 100", jobs[2].Start)
	}
}

func TestBackfillShortJobSkipsAhead(t *testing.T) {
	// Head job 2 is blocked until t=100; job 3 is short and small enough to
	// finish before the shadow time, so EASY lets it start immediately.
	jobs := []*job.Job{
		mk(1, 0, 100, 12, 0),
		mk(2, 1, 50, 12, 0), // reserved; shadow = 100
		mk(3, 2, 50, 4, 0),  // ends at 52 <= 100: backfills
	}
	runFCFS(t, jobs, true)
	if jobs[2].Start != 2 {
		t.Fatalf("backfill start = %v, want 2", jobs[2].Start)
	}
	if jobs[1].Start != 100 {
		t.Fatalf("reserved job start = %v, want 100", jobs[1].Start)
	}
}

func TestBackfillNeverDelaysReservedJob(t *testing.T) {
	// Job 3 runs for 200s and would overlap the shadow time while using the
	// nodes the reserved job needs; EASY must hold it back.
	jobs := []*job.Job{
		mk(1, 0, 100, 12, 0),
		mk(2, 1, 50, 12, 0), // reserved; shadow = 100, extra = 16-12=4 nodes
		mk(3, 2, 200, 4, 0), // fits extra: may start (4 <= 4)
		mk(4, 3, 200, 2, 0), // extra exhausted: must NOT start before 51
	}
	runFCFS(t, jobs, true)
	if jobs[1].Start != 100 {
		t.Fatalf("reserved start = %v, want 100 (delayed by backfill?)", jobs[1].Start)
	}
	if jobs[2].Start != 2 {
		t.Fatalf("job 3 should backfill into extra capacity, start = %v", jobs[2].Start)
	}
	if jobs[3].Start < 100 {
		t.Fatalf("job 4 backfilled illegally at %v", jobs[3].Start)
	}
}

func TestNoBackfillLeavesHole(t *testing.T) {
	jobs := []*job.Job{
		mk(1, 0, 100, 12, 0),
		mk(2, 1, 50, 12, 0),
		mk(3, 2, 50, 4, 0),
	}
	runFCFS(t, jobs, false)
	if jobs[2].Start == 2 {
		t.Fatal("job 3 started early despite backfill disabled")
	}
}

func TestMultiResourceBackfillRespectsSecondResource(t *testing.T) {
	// Candidate fits the node extra but would steal burst buffer needed by
	// the reserved job at shadow time.
	jobs := []*job.Job{
		mk(1, 0, 100, 12, 6),
		mk(2, 1, 50, 4, 8),  // reserved: needs all BB; shadow=100; extra BB = 8-8 = 0
		mk(3, 2, 200, 2, 1), // long, needs 1 BB > extra 0: must wait
	}
	runFCFS(t, jobs, true)
	if jobs[1].Start != 100 {
		t.Fatalf("reserved start = %v, want 100", jobs[1].Start)
	}
	if jobs[2].Start < 51 {
		t.Fatalf("job 3 must not backfill, started %v", jobs[2].Start)
	}
}

func TestStarvationPrevention(t *testing.T) {
	// A full-machine job arrives at t=1 followed by a stream of small jobs.
	// Without reservation it starves; with it, it must start by the time the
	// initial allocation drains.
	jobs := []*job.Job{mk(1, 0, 50, 8, 0), mk(2, 1, 100, 16, 8)}
	id := 3
	for tt := 2.0; tt < 200; tt += 5 {
		jobs = append(jobs, mk(id, tt, 30, 2, 1))
		id++
	}
	runFCFS(t, jobs, true)
	big := jobs[1]
	if big.Start != 50 {
		t.Fatalf("big job starved: start = %v, want 50", big.Start)
	}
}

func TestPickerOutOfRangeFallsBackToHead(t *testing.T) {
	bad := PickerFunc(func(ctx *PickContext) int { return 99 })
	p := NewWindowPolicy(bad, 5)
	s := sim.New(cfg(), p)
	jobs := []*job.Job{mk(1, 0, 10, 4, 0)}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if jobs[0].State != job.Finished {
		t.Fatal("job not run under fallback")
	}
}

func TestOnDecisionObservesPicks(t *testing.T) {
	picks := 0
	p := NewWindowPolicy(FCFS{}, 10)
	p.OnDecision = func(ctx *PickContext, pick int) {
		picks++
		if pick != 0 {
			t.Errorf("FCFS picked %d", pick)
		}
		if len(ctx.Usage) != 2 {
			t.Errorf("usage arity %d", len(ctx.Usage))
		}
	}
	s := sim.New(cfg(), p)
	jobs := []*job.Job{mk(1, 0, 10, 4, 0), mk(2, 0, 10, 4, 0)}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if picks == 0 {
		t.Fatal("OnDecision never called")
	}
}

func TestWindowBoundsSelection(t *testing.T) {
	// A picker that always chooses the last window slot must never see more
	// than W jobs.
	maxSeen := 0
	p := NewWindowPolicy(PickerFunc(func(ctx *PickContext) int {
		if len(ctx.Window) > maxSeen {
			maxSeen = len(ctx.Window)
		}
		return len(ctx.Window) - 1
	}), 3)
	s := sim.New(cfg(), p)
	var jobs []*job.Job
	for i := 1; i <= 8; i++ {
		jobs = append(jobs, mk(i, 0, 10, 2, 0))
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSeen > 3 {
		t.Fatalf("window exposed %d jobs, max 3", maxSeen)
	}
}

// Property-style test: for random workloads, (a) every job finishes,
// (b) the reserved job at any decision instant is never delayed past the
// shadow time computed at reservation (walltime==runtime in this test, so
// shadow times are exact upper bounds).
func TestEASYInvariantRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var jobs []*job.Job
		clk := 0.0
		for i := 1; i <= 60; i++ {
			clk += float64(rng.Intn(30))
			jobs = append(jobs, mk(i, clk, float64(rng.Intn(300)+1), rng.Intn(16)+1, rng.Intn(9)))
		}
		reservations := map[int]float64{} // job ID -> earliest shadow recorded
		p := NewWindowPolicy(FCFS{}, 10)
		s := sim.New(cfg(), p)
		p.OnDecision = func(ctx *PickContext, pick int) {
			j := ctx.Window[pick]
			if !ctx.Cluster.CanFit(j.Demand) {
				sh, _ := Shadow(ctx.Cluster, j.Demand, ctx.Now)
				if _, seen := reservations[j.ID]; !seen {
					reservations[j.ID] = sh
				} else if sh < reservations[j.ID] {
					reservations[j.ID] = sh // shadow can only improve as jobs end early
				}
			}
		}
		if err := s.Load(jobs); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, j := range jobs {
			if j.State != job.Finished {
				t.Fatalf("seed %d: job %d never finished", seed, j.ID)
			}
		}
		for id, shadow := range reservations {
			for _, j := range jobs {
				if j.ID == id && j.Start > shadow+1e-9 {
					t.Fatalf("seed %d: reserved job %d started %v after shadow %v", seed, id, j.Start, shadow)
				}
			}
		}
	}
}

func TestBackfillImprovesUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var jobs []*job.Job
	clk := 0.0
	for i := 1; i <= 80; i++ {
		clk += float64(rng.Intn(20))
		jobs = append(jobs, mk(i, clk, float64(rng.Intn(400)+10), rng.Intn(14)+1, rng.Intn(8)))
	}
	withBF := runFCFS(t, job.CloneAll(jobs), true)
	withoutBF := runFCFS(t, job.CloneAll(jobs), false)
	if withBF.Utilization(0) < withoutBF.Utilization(0)-1e-9 {
		t.Fatalf("backfill reduced node utilization: %v vs %v",
			withBF.Utilization(0), withoutBF.Utilization(0))
	}
}
