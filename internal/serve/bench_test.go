package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// BenchmarkDecisionsPerSec measures the engine's decision throughput at
// the admission batch sizes the daemon actually dispatches: the per-batch
// forward-pass amortization is the whole point of admission batching, and
// this benchmark is what BENCH_serve.json's engine numbers come from.
func BenchmarkDecisionsPerSec(b *testing.B) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(61))
	const total = 64
	ctxs := make([]*sched.PickContext, total)
	for i := range ctxs {
		req := randomRequest(rng, sys)
		ctx, err := buildContext(sys, 6, &req)
		if err != nil {
			b.Fatal(err)
		}
		ctxs[i] = ctx
	}
	eng, err := newEngine(testAgent(sys, 21))
	if err != nil {
		b.Fatal(err)
	}
	for _, bs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			var dst []int
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				lo := (n * bs) % total
				if lo+bs > total {
					lo = 0
				}
				dst, _ = eng.decide(ctxs[lo:lo+bs], dst)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*bs)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}
