package serve

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// RequestError is a request-level failure: the daemon rejected one request
// (invalid cluster state, draining, failed swap) but the connection — and
// every other request on it — is unaffected.
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

// Client is a synchronous connection to a decision daemon. A Client
// serializes its own requests (one in flight at a time); open several
// clients for concurrency — the daemon's admission batching coalesces
// them.
type Client struct {
	mu      sync.Mutex
	rwc     io.ReadWriteCloser
	nextID  uint64
	welcome message
}

// Dial connects to a daemon at addr and performs the handshake.
func Dial(addr string) (*Client, error) {
	rwc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c, err := NewClient(rwc)
	if err != nil {
		rwc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the client side of the handshake over an established
// connection. It rejects a daemon speaking another protocol revision,
// naming the peer's version.
func NewClient(rwc io.ReadWriteCloser) (*Client, error) {
	if err := writeMessage(rwc, &message{Type: msgHello, Proto: ProtocolVersion}); err != nil {
		return nil, fmt.Errorf("serve: sending hello: %w", err)
	}
	welcome, err := readMessage(rwc)
	if err != nil {
		return nil, fmt.Errorf("serve: reading welcome: %w", err)
	}
	if welcome.Type != msgWelcome {
		return nil, fmt.Errorf("serve: handshake answered with %s, want welcome", welcome.Type)
	}
	if welcome.Err != "" {
		return nil, &RequestError{Msg: welcome.Err}
	}
	if welcome.Proto != ProtocolVersion {
		return nil, fmt.Errorf("serve: server speaks protocol %d, client %d", welcome.Proto, ProtocolVersion)
	}
	return &Client{rwc: rwc, welcome: *welcome}, nil
}

// ModelVersion reports the daemon's model version at handshake time.
func (c *Client) ModelVersion() uint64 { return c.welcome.ModelVersion }

// Window reports the served model's window size W: decisions index into
// the first W jobs of the request queue.
func (c *Client) Window() int { return c.welcome.Window }

// System reports the served cluster geometry (resource names and unit
// capacities) so a caller can validate its state model before asking.
func (c *Client) System() (resources []string, capacities []int) {
	return c.welcome.Resources, c.welcome.Capacities
}

// Decide asks the daemon for one scheduling decision, returning the window
// index to schedule and the model version that decided it. A *RequestError
// leaves the connection usable; any other error means the connection is
// dead.
func (c *Client) Decide(req *Request) (pick int, version uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	if err := writeMessage(c.rwc, &message{Type: msgDecide, ID: id, Req: *req}); err != nil {
		return -1, 0, fmt.Errorf("serve: sending request: %w", err)
	}
	m, err := readMessage(c.rwc)
	if err != nil {
		return -1, 0, fmt.Errorf("serve: reading decision: %w", err)
	}
	if m.Type != msgDecision || m.ID != id {
		return -1, 0, fmt.Errorf("serve: request %d answered with %s frame (id %d)", id, m.Type, m.ID)
	}
	if m.Err != "" {
		return -1, 0, &RequestError{Msg: m.Err}
	}
	return m.Pick, m.ModelVersion, nil
}

// Swap sends new model weights (nn.SaveWeights bytes) over the admin
// frame and returns the daemon's new model version. A *RequestError means
// the daemon refused the weights and kept serving the previous version.
func (c *Client) Swap(weights []byte) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	if err := writeMessage(c.rwc, &message{Type: msgSwap, ID: id, Weights: weights}); err != nil {
		return 0, fmt.Errorf("serve: sending swap: %w", err)
	}
	m, err := readMessage(c.rwc)
	if err != nil {
		return 0, fmt.Errorf("serve: reading swap ack: %w", err)
	}
	if m.Type != msgSwapped || m.ID != id {
		return 0, fmt.Errorf("serve: swap %d answered with %s frame (id %d)", id, m.Type, m.ID)
	}
	if m.Err != "" {
		return m.ModelVersion, &RequestError{Msg: m.Err}
	}
	return m.ModelVersion, nil
}

// Close hangs up.
func (c *Client) Close() error { return c.rwc.Close() }
