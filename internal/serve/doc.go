// Package serve is the scheduler-as-a-service decision daemon: it loads a
// trained MRSch model and answers "here is the queue and the cluster state,
// what do I schedule next?" over the same length-prefixed, CRC-checked
// frame protocol (internal/wire) the distributed campaign runner speaks.
// Around the model it wraps the three production mechanics a decision
// service needs — admission batching, zero-downtime weight swaps, and
// graceful drain — without ever compromising the one property that makes a
// served decision trustworthy: it is the decision the offline simulator
// would have made.
//
// # The serving contract
//
// This is the canonical statement of the daemon's rules; the engine,
// server, client, and protocol sources cross-reference it by number.
//
//  1. Served decisions are byte-identical to offline ones. For any request,
//     the daemon's answer equals core.MRSch.Pick (Train=false) on the same
//     model and the same decision instant — bit for bit, at every batch
//     size. Three mechanisms compose into this guarantee: gob preserves
//     float64 bits on the wire, the daemon reconstructs the decision
//     instant through the same cluster/encoder arithmetic the simulator
//     uses (protocol.go), and the batched forward pass is row-wise bitwise
//     identical to the single-sample path (dfp.BatchDecider; see
//     internal/dfp/decide.go for the kernel argument). The
//     serve-equivalence suite enforces this at batch sizes {1, 4, max},
//     under whichever nn kernel set the process selected — the row-identity
//     argument holds per set, and one process never mixes sets. Comparing
//     served decisions against picks computed in another process requires
//     the same kernel set on both sides (internal/nn "Kernel dispatch").
//
//  2. Admission batching is invisible. Concurrent requests coalesce into
//     one batched forward pass — the first request of a batch waits at most
//     MaxWait for at most MaxBatch-1 companions — but by rule 1 the batch a
//     request lands in never changes its answer, only its latency.
//
//  3. Swaps are atomic per batch. A weight swap (admin frame or SIGHUP)
//     takes the engine's write lock, loads, publishes, and increments the
//     model version; every batch is decided entirely under one version —
//     old or new across a concurrent swap, never a blend — and carries that
//     version in its responses. A swap that fails to load publishes
//     nothing: the previous version keeps serving, untouched.
//
//  4. Request-level failures keep the connection. A malformed request (bad
//     geometry, overcommitted cluster state, empty queue) or a refused swap
//     is answered with an error reply on an intact connection. Only frame
//     damage — bad length, checksum, or encoding — kills the connection,
//     with no resynchronization attempt (the internal/distrib rule 5
//     discipline: damage is death).
//
//  5. Both sides reject a protocol mismatch, naming the peer. The daemon
//     refuses a hello from another protocol revision and the client refuses
//     such a welcome, each stating the peer's version and its own, so the
//     operator of a mixed deployment knows which binary to upgrade.
//
//  6. Shutdown drains. After Shutdown begins, new connections and new
//     requests are refused, but every already-admitted request is answered
//     before its connection closes.
//
//  7. Telemetry is contract-neutral. Wiring Config.Metrics/Config.Journal
//     (internal/telemetry) adds atomic instrument updates and
//     observation-boundary clock reads around the batched forward pass —
//     never inside it, and never feeding batching or pick computation — so
//     rules 1-6 hold bit for bit with telemetry enabled. The
//     serve-equivalence suite runs with instruments active to enforce
//     this.
package serve
