package serve

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// engine owns the served model and answers batched decision requests
// concurrently with zero-downtime weight swaps.
//
// Concurrency design: decisions read the agent's published copy-on-write
// weight snapshot through pooled core.BatchDecider clones (each clone
// aliases the shared snapshot buffers but owns private scratch, so any
// number may decide at once). Publication refreshes those shared buffers in
// place, so it must not run concurrently with a reader — the RWMutex
// provides exactly that: decide holds the read lock, swap the write lock.
// Swaps therefore wait only for in-flight forward passes (microseconds),
// never for connections; requests queued behind a swap are answered by the
// new version.
type engine struct {
	mu      sync.RWMutex
	master  *core.MRSch
	version uint64

	pool sync.Pool // of *core.BatchDecider
}

func newEngine(m *core.MRSch) (*engine, error) {
	m.Train = false
	first, ok := m.BatchDecider()
	if !ok {
		return nil, fmt.Errorf("serve: the agent's state module does not support weight snapshots")
	}
	e := &engine{master: m, version: 1}
	e.pool.New = func() any {
		d, _ := m.BatchDecider() // cannot fail: the first clone succeeded
		return d
	}
	e.pool.Put(first)
	return e, nil
}

// decide answers one admission batch, writing picks into dst (grown as
// needed) and returning the model version that produced every one of them.
// The version is read under the same lock hold as the forward pass, so a
// batch is always attributable to exactly one version — old or new across a
// concurrent swap, never a blend.
func (e *engine) decide(ctxs []*sched.PickContext, dst []int) ([]int, uint64) {
	d := e.pool.Get().(*core.BatchDecider)
	e.mu.RLock()
	dst = d.Decide(ctxs, dst)
	v := e.version
	e.mu.RUnlock()
	e.pool.Put(d)
	return dst, v
}

// swap loads new weights into the master agent and publishes them to every
// pooled decider, returning the new model version. On a load error nothing
// is published: readers keep answering from the previous version untouched
// (the load may have partially written the master's live values, but those
// are invisible until the next successful publish).
func (e *engine) swap(r io.Reader) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.master.Load(r); err != nil {
		return e.version, fmt.Errorf("serve: loading swap weights: %w", err)
	}
	e.master.PublishWeights()
	e.version++
	return e.version, nil
}

// modelVersion reports the currently served version.
func (e *engine) modelVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}
