package serve

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"
)

// FuzzDecodeRequest wires the serve protocol's gob layer to the shared
// fuzz discipline (wire.FuzzDecodeFrame, distrib.FuzzDecodeMessage): an
// arbitrary CRC-verified payload must either decode into a message or fail
// loudly with ErrCorruptFrame — never panic, never succeed silently with a
// half-decoded struct that later trips the server. The corpus seeds every
// real frame type plus the standard damage taxonomy (truncation, bitflip,
// garbage).
func FuzzDecodeRequest(f *testing.F) {
	encode := func(m *message) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rng := rand.New(rand.NewSource(53))
	req := randomRequest(rng, testSystem())

	hello := encode(&message{Type: msgHello, Proto: ProtocolVersion})
	welcome := encode(&message{Type: msgWelcome, Proto: ProtocolVersion, ModelVersion: 3, Window: 6,
		Resources: []string{"node", "bb"}, Capacities: []int{12, 8}})
	decide := encode(&message{Type: msgDecide, ID: 17, Req: req})
	decision := encode(&message{Type: msgDecision, ID: 17, Pick: 2, ModelVersion: 3})
	swap := encode(&message{Type: msgSwap, ID: 18, Weights: []byte{1, 2, 3, 4}})
	rejected := encode(&message{Type: msgDecision, ID: 19, Pick: -1, Err: "serve: nope"})

	f.Add([]byte(nil))
	f.Add(hello)
	f.Add(welcome)
	f.Add(decide)
	f.Add(decision)
	f.Add(swap)
	f.Add(rejected)
	f.Add(decide[:len(decide)/2])
	bitflip := append([]byte(nil), decide...)
	bitflip[len(bitflip)/3] ^= 0x04
	f.Add(bitflip)
	f.Add([]byte("MRSCH SERVE, BUT NOT GOB"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeMessage(payload)
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("decode failure %v does not wrap ErrCorruptFrame", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil message with nil error")
		}
		// Whatever decoded must survive a round trip: re-encode and
		// re-decode to an identical request payload.
		re, err := decodeMessage(encode(m))
		if err != nil {
			t.Fatalf("re-decoding a decoded message: %v", err)
		}
		if re.Type != m.Type || re.ID != m.ID || re.Pick != m.Pick || len(re.Req.Queue) != len(m.Req.Queue) {
			t.Fatalf("round trip changed the message: %+v -> %+v", m, re)
		}
	})
}
