package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// SampleRequests harvests realistic decision instants for load generation:
// it replays the job trace under FCFS with the daemon's window size,
// capturing every scheduling decision's (queue, cluster) state as a wire
// request. When the replay yields more than max instants they are strided
// down to max, preserving the trace's coverage from empty-cluster start to
// saturated steady state.
func SampleRequests(sys cluster.Config, jobs []*job.Job, window, max int) ([]Request, error) {
	policy := sched.NewWindowPolicy(sched.FCFS{}, window)
	var reqs []Request
	policy.OnDecision = func(ctx *sched.PickContext, pick int) {
		reqs = append(reqs, RequestFromContext(ctx))
	}
	s := sim.New(sys, policy)
	if err := s.Load(job.CloneAll(jobs)); err != nil {
		return nil, fmt.Errorf("serve: sampling requests: %w", err)
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("serve: sampling requests: %w", err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: the trace produced no scheduling decisions")
	}
	if max > 0 && len(reqs) > max {
		sampled := make([]Request, max)
		for i := range sampled {
			sampled[i] = reqs[i*len(reqs)/max]
		}
		reqs = sampled
	}
	return reqs, nil
}

// LoadgenOptions configure one load-generation run.
type LoadgenOptions struct {
	// Addr is the daemon's TCP address.
	Addr string
	// Clients is the number of concurrent synchronous clients (default 1).
	Clients int
	// PerClient is the number of requests each client issues (default 100).
	PerClient int
	// Rate is each client's target request rate in requests/second; 0
	// replays closed-loop (next request immediately after the previous
	// answer).
	Rate float64
	// Trace is the request pool; client k starts at offset k·len/Clients
	// and wraps, so concurrent clients exercise different states.
	Trace []Request
}

// LatencyMs summarizes a latency distribution in milliseconds.
type LatencyMs struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

// LoadgenResult is one run's scorecard.
type LoadgenResult struct {
	Clients         int       `json:"clients"`
	Decisions       int       `json:"decisions"`
	Errors          int       `json:"errors"`
	ElapsedSec      float64   `json:"elapsed_sec"`
	DecisionsPerSec float64   `json:"decisions_per_sec"`
	Latency         LatencyMs `json:"latency"`
}

// RunLoadgen replays the trace against a live daemon from N concurrent
// clients and reports decision throughput and latency percentiles.
func RunLoadgen(opt LoadgenOptions) (LoadgenResult, error) {
	if opt.Clients <= 0 {
		opt.Clients = 1
	}
	if opt.PerClient <= 0 {
		opt.PerClient = 100
	}
	if len(opt.Trace) == 0 {
		return LoadgenResult{}, fmt.Errorf("serve: loadgen needs a non-empty trace")
	}

	type clientStats struct {
		errors int
		err    error // fatal (connection-level) failure
	}
	// All clients record round-trip times into one shared concurrent
	// histogram; quantile extraction keeps the nearest-rank convention of
	// the retired sort-based percentiles (see telemetry.HistSnapshot).
	var lat telemetry.Histogram
	stats := make([]clientStats, opt.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < opt.Clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			st := &stats[k]
			c, err := Dial(opt.Addr)
			if err != nil {
				st.err = err
				return
			}
			defer c.Close()
			var interval time.Duration
			if opt.Rate > 0 {
				interval = time.Duration(float64(time.Second) / opt.Rate)
			}
			next := time.Now()
			offset := k * len(opt.Trace) / opt.Clients
			for i := 0; i < opt.PerClient; i++ {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				req := &opt.Trace[(offset+i)%len(opt.Trace)]
				t0 := time.Now()
				pick, _, err := c.Decide(req)
				if err != nil {
					if _, ok := err.(*RequestError); ok {
						st.errors++
						continue
					}
					st.err = err
					return
				}
				if pick < 0 || pick >= len(req.Queue) {
					st.errors++
					continue
				}
				lat.RecordDuration(time.Since(t0))
			}
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := LoadgenResult{Clients: opt.Clients, ElapsedSec: elapsed}
	for k := range stats {
		if stats[k].err != nil {
			return res, fmt.Errorf("serve: loadgen client %d: %w", k, stats[k].err)
		}
		res.Errors += stats[k].errors
	}
	snap := lat.Snapshot()
	res.Decisions = int(snap.Count())
	if elapsed > 0 {
		res.DecisionsPerSec = float64(res.Decisions) / elapsed
	}
	const msPerNs = 1 / float64(time.Millisecond)
	res.Latency = LatencyMs{
		P50:  float64(snap.Quantile(0.50)) * msPerNs,
		P99:  float64(snap.Quantile(0.99)) * msPerNs,
		P999: float64(snap.Quantile(0.999)) * msPerNs,
		Max:  float64(snap.Max()) * msPerNs,
	}
	return res, nil
}
