package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/wire"
)

// The serve wire format: one gob-encoded message per internal/wire frame,
// exactly like the distributed-campaign protocol (internal/distrib) — the
// two protocols share the frame codec and differ only in their message
// vocabulary.

// ProtocolVersion gates the handshake in both directions: the daemon rejects
// a hello carrying another version and the client rejects a welcome carrying
// another version, each naming the peer's version in the error.
const ProtocolVersion = 1

// ErrCorruptFrame aliases wire.ErrCorruptFrame for errors.Is across layers.
var ErrCorruptFrame = wire.ErrCorruptFrame

type msgType uint8

const (
	// msgHello (client → server) opens the handshake.
	msgHello msgType = iota + 1
	// msgWelcome (server → client) answers it with the protocol version,
	// model version, and decision geometry (or a refusal in Err).
	msgWelcome
	// msgDecide (client → server) asks for one scheduling decision.
	msgDecide
	// msgDecision (server → client) answers one msgDecide by ID. A
	// request-level failure travels in Err with the connection intact.
	msgDecision
	// msgSwap (client → server) is the admin frame: publish new model
	// weights without dropping a single request.
	msgSwap
	// msgSwapped (server → client) acknowledges a swap with the new model
	// version (or the load error, with the previous model still serving).
	msgSwapped
)

func (t msgType) String() string {
	switch t {
	case msgHello:
		return "hello"
	case msgWelcome:
		return "welcome"
	case msgDecide:
		return "decide"
	case msgDecision:
		return "decision"
	case msgSwap:
		return "swap"
	case msgSwapped:
		return "swapped"
	}
	return fmt.Sprintf("msgType(%d)", uint8(t))
}

// Job is one queued job as the wire carries it: exactly the fields the
// state encoding and the Eq. (1) goal vector consume.
type Job struct {
	Demand   []int
	Walltime float64 // user-supplied runtime estimate, seconds
	Submit   float64 // submission time, seconds from trace start
}

// Alloc is one running job's holdings. JobID matters: the encoder orders
// running allocations by (EstEnd, JobID), so the daemon must reproduce the
// client's IDs to reproduce the client's encoding.
type Alloc struct {
	JobID  int
	Demand []int
	Start  float64
	EstEnd float64
}

// Request is one decision instant: "here is the queue and the cluster
// state, what do I schedule next?". Queue is the FULL waiting queue in
// queue order — the goal vector weighs every queued job, not just the
// window; the daemon takes the window as the queue's first W entries (W
// fixed by the served model). The answer indexes into that window.
type Request struct {
	Now     float64
	Queue   []Job
	Running []Alloc
}

// message is the single payload type of every frame; which fields are
// meaningful depends on Type. One struct keeps the protocol boring, exactly
// like distrib's.
type message struct {
	Type msgType

	// Hello and Welcome: protocol version of the sending binary.
	Proto int

	// Welcome: the served model's version and decision geometry, so a
	// client can validate its cluster model before asking anything.
	ModelVersion uint64
	Window       int
	Resources    []string
	Capacities   []int

	// Decide and Decision: the request ID (echoed), the request, and the
	// decision — a window index and the model version that produced it.
	ID   uint64
	Req  Request
	Pick int

	// Swap: gob-encoded model weights (nn.SaveWeights bytes).
	Weights []byte

	// Any reply: a request-level error. The connection stays usable.
	Err string
}

// writeMessage encodes m and writes it as one frame. Writers serialize
// frames themselves (the server interleaves decisions and swap acks from
// multiple goroutines behind a per-connection mutex).
func writeMessage(w io.Writer, m *message) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("serve: encoding %s frame: %w", m.Type, err)
	}
	return wire.WriteFrame(w, buf.Bytes())
}

// readMessage reads and decodes one frame. io.EOF passes through untouched;
// any damage wraps ErrCorruptFrame (via wire or decodeMessage).
func readMessage(r io.Reader) (*message, error) {
	payload, err := wire.ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return decodeMessage(payload)
}

// decodeMessage decodes one verified frame payload; gob damage wraps
// ErrCorruptFrame like any other frame corruption. It is the layer
// FuzzDecodeRequest drives.
func decodeMessage(payload []byte) (*message, error) {
	var m message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorruptFrame, err)
	}
	return &m, nil
}

// buildContext validates a request against the served system and
// reconstructs the decision instant: a live cluster with the request's
// allocations applied, the queue, the window (the queue's first W entries),
// and the measurement vector. Every reconstruction is exact — gob preserves
// float64 bits and the cluster derives Usage from the same integer
// arithmetic the simulator uses — which is what makes served decisions
// byte-identical to offline ones. Validation is exhaustive: anything that
// could panic the encoder is rejected here, with the connection intact.
func buildContext(sys cluster.Config, window int, req *Request) (*sched.PickContext, error) {
	r := len(sys.Capacities)
	if len(req.Queue) == 0 {
		return nil, fmt.Errorf("serve: request has an empty queue; there is nothing to schedule")
	}
	cl := cluster.New(sys)
	for i, a := range req.Running {
		if len(a.Demand) != r {
			return nil, fmt.Errorf("serve: running[%d] demands %d resources, system has %d", i, len(a.Demand), r)
		}
		if err := cl.Allocate(a.JobID, a.Demand, a.Start, a.EstEnd); err != nil {
			return nil, fmt.Errorf("serve: request cluster state: %w", err)
		}
	}
	queue := make([]*job.Job, len(req.Queue))
	for i, q := range req.Queue {
		if len(q.Demand) != r {
			return nil, fmt.Errorf("serve: queue[%d] demands %d resources, system has %d", i, len(q.Demand), r)
		}
		queue[i] = &job.Job{ID: i, Submit: q.Submit, Walltime: q.Walltime, Demand: q.Demand}
	}
	w := window
	if w > len(queue) {
		w = len(queue)
	}
	return &sched.PickContext{
		Now:     req.Now,
		Window:  queue[:w],
		Queue:   queue,
		Cluster: cl,
		Usage:   cl.Usage(),
	}, nil
}

// RequestFromContext converts a live decision instant into its wire form —
// the bridge between an in-process scheduling loop and the daemon, used by
// the load generator's trace capture and the equivalence tests.
func RequestFromContext(ctx *sched.PickContext) Request {
	req := Request{Now: ctx.Now, Queue: make([]Job, len(ctx.Queue))}
	for i, j := range ctx.Queue {
		req.Queue[i] = Job{
			Demand:   append([]int(nil), j.Demand...),
			Walltime: j.Walltime,
			Submit:   j.Submit,
		}
	}
	running := ctx.Cluster.Running()
	req.Running = make([]Alloc, len(running))
	for i, a := range running {
		req.Running[i] = Alloc{
			JobID:  a.JobID,
			Demand: append([]int(nil), a.Demand...),
			Start:  a.Start,
			EstEnd: a.EstEnd,
		}
	}
	return req
}
