package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfp"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// testSystem is a small two-resource cluster, fast enough for property
// tests to hammer.
func testSystem() cluster.Config {
	return cluster.Config{Name: "serve-test", Resources: []string{"node", "bb"}, Capacities: []int{12, 8}}
}

// testAgent builds a small deterministic MRSch agent: two calls with the
// same seed produce bitwise-identical weights, which is what lets the tests
// hold an untouched offline twin of the served model.
func testAgent(sys cluster.Config, seed int64) *core.MRSch {
	return core.New(sys, core.Options{
		Window:  6,
		Seed:    seed,
		Workers: 1,
		Mutate: func(c *dfp.Config) {
			c.StateHidden = []int{24}
			c.StateOut = 12
			c.ModuleHidden = 8
			c.StreamHidden = 12
			c.Offsets = []int{1, 2, 4}
			c.TemporalWeights = []float64{0, 0.5, 1}
		},
	})
}

// randomRequest draws a random but valid decision instant: running jobs
// that fit the cluster, and a queue of 1-10 jobs with arbitrary demands.
func randomRequest(rng *rand.Rand, sys cluster.Config) Request {
	r := len(sys.Capacities)
	now := 10000 + rng.Float64()*100000
	free := append([]int(nil), sys.Capacities...)
	var running []Alloc
	for id := 0; id < rng.Intn(4); id++ {
		d := make([]int, r)
		any := false
		for k := 0; k < r; k++ {
			d[k] = rng.Intn(free[k] + 1)
			any = any || d[k] > 0
		}
		if !any {
			continue
		}
		for k := range d {
			free[k] -= d[k]
		}
		start := now - rng.Float64()*3600
		running = append(running, Alloc{JobID: 100 + id, Demand: d, Start: start, EstEnd: start + rng.Float64()*7200})
	}
	queue := make([]Job, 1+rng.Intn(10))
	for i := range queue {
		d := make([]int, r)
		for k := 0; k < r; k++ {
			d[k] = rng.Intn(sys.Capacities[k] + 1)
		}
		queue[i] = Job{Demand: d, Walltime: 60 + rng.Float64()*7200, Submit: now - rng.Float64()*3600}
	}
	return Request{Now: now, Queue: queue, Running: running}
}

// offlinePicks answers every request with an in-process agent — the
// reference the daemon must match bit for bit (contract rule 1).
func offlinePicks(t *testing.T, agent *core.MRSch, sys cluster.Config, reqs []Request) []int {
	t.Helper()
	agent.Train = false
	picks := make([]int, len(reqs))
	for i := range reqs {
		ctx, err := buildContext(sys, agent.Enc.Window, &reqs[i])
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		picks[i] = agent.Pick(ctx)
	}
	return picks
}

// startServer runs a daemon on a loopback listener and tears it down with
// the test.
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestEngineDecidesLikePickAtEveryBatchSize is the serve-equivalence
// property at the engine layer with deterministic batch composition: the
// same requests decided in batches of 1, 4, and all-at-once must all equal
// the offline Pick answers.
func TestEngineDecidesLikePickAtEveryBatchSize(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(17))
	const total = 32
	reqs := make([]Request, total)
	ctxs := make([]*sched.PickContext, total)
	for i := range reqs {
		reqs[i] = randomRequest(rng, sys)
		ctx, err := buildContext(sys, 6, &reqs[i])
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		ctxs[i] = ctx
	}
	want := offlinePicks(t, testAgent(sys, 3), sys, reqs)

	srv, err := NewServer(testAgent(sys, 3), sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	for _, bs := range []int{1, 4, total} {
		var got []int
		for lo := 0; lo < total; lo += bs {
			hi := lo + bs
			if hi > total {
				hi = total
			}
			picks, version := srv.eng.decide(ctxs[lo:hi], nil)
			if version != 1 {
				t.Fatalf("batch size %d: version %d, want 1", bs, version)
			}
			got = append(got, picks...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch size %d: request %d served %d, offline Pick chose %d", bs, i, got[i], want[i])
			}
		}
	}
}

// TestDaemonMatchesOfflineOverTheWire drives a real daemon over TCP from
// concurrent clients with admission batching live: whatever batches the
// requests coalesce into, every response must equal the offline decision
// for that request. The daemon runs with telemetry instruments active,
// enforcing rule 7 (telemetry is contract-neutral) alongside rule 1.
func TestDaemonMatchesOfflineOverTheWire(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(23))
	const total = 24
	reqs := make([]Request, total)
	for i := range reqs {
		reqs[i] = randomRequest(rng, sys)
	}
	want := offlinePicks(t, testAgent(sys, 5), sys, reqs)

	reg := telemetry.NewRegistry()
	srv, err := NewServer(testAgent(sys, 5), sys, Config{
		MaxBatch: 4,
		MaxWait:  2 * time.Millisecond,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if c.Window() != 6 {
				errs <- fmt.Errorf("client %d: window %d, want 6", k, c.Window())
				return
			}
			for i := range reqs {
				pick, version, err := c.Decide(&reqs[i])
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", k, i, err)
					return
				}
				if version != 1 {
					errs <- fmt.Errorf("client %d request %d: version %d, want 1", k, i, version)
					return
				}
				if pick != want[i] {
					errs <- fmt.Errorf("client %d request %d: served %d, offline Pick chose %d", k, i, pick, want[i])
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The instruments must have observed the run without perturbing it.
	snap := reg.Snapshot()
	m := make(map[string]uint64)
	for _, c := range snap.Counters {
		m[c.Name] = c.Value
	}
	if m["serve_decisions_total"] != clients*total {
		t.Errorf("serve_decisions_total = %d, want %d", m["serve_decisions_total"], clients*total)
	}
	if m["serve_batches_total"] == 0 {
		t.Error("serve_batches_total = 0, want > 0")
	}
	for _, h := range snap.Histograms {
		if h.Name == "serve_batch_size" {
			if h.Count != m["serve_batches_total"] || h.Max > 4 {
				t.Errorf("serve_batch_size: count %d (batches %d), max %d (MaxBatch 4)", h.Count, m["serve_batches_total"], h.Max)
			}
		}
	}
}

// TestHotSwapServesOldOrNewNeverABlend swaps models mid-flight while
// clients hammer the daemon. Every response must be attributable to exactly
// one version — the decision the response's reported version would make
// offline — and after the swap completes the daemon serves the new model.
func TestHotSwapServesOldOrNewNeverABlend(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(29))
	const total = 16
	reqs := make([]Request, total)
	for i := range reqs {
		reqs[i] = randomRequest(rng, sys)
	}
	// Two models with different seeds; their decisions differ on at least
	// some of the requests (checked below, so the test cannot pass vacuously).
	wantOld := offlinePicks(t, testAgent(sys, 7), sys, reqs)
	wantNew := offlinePicks(t, testAgent(sys, 8), sys, reqs)
	differ := false
	for i := range wantOld {
		differ = differ || wantOld[i] != wantNew[i]
	}
	if !differ {
		t.Fatal("the two test models agree on every request; pick different seeds")
	}
	var newWeights bytes.Buffer
	if err := testAgent(sys, 8).Save(&newWeights); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(testAgent(sys, 7), sys, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	const clients = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	stop := make(chan struct{})
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (k + round) % total
				pick, version, err := c.Decide(&reqs[i])
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", k, err)
					return
				}
				switch version {
				case 1:
					if pick != wantOld[i] {
						errs <- fmt.Errorf("request %d at version 1 served %d, offline old model chose %d", i, pick, wantOld[i])
						return
					}
				case 2:
					if pick != wantNew[i] {
						errs <- fmt.Errorf("request %d at version 2 served %d, offline new model chose %d", i, pick, wantNew[i])
						return
					}
				default:
					errs <- fmt.Errorf("request %d served by unknown version %d", i, version)
					return
				}
			}
		}(k)
	}

	// Let the clients get going, then swap over the admin frame.
	time.Sleep(10 * time.Millisecond)
	admin, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := admin.Swap(newWeights.Bytes())
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
	if v != 2 {
		t.Fatalf("swap produced version %d, want 2", v)
	}
	// Post-swap decisions come from the new model.
	for i := range reqs {
		pick, version, err := admin.Decide(&reqs[i])
		if err != nil {
			t.Fatalf("post-swap request %d: %v", i, err)
		}
		if version != 2 || pick != wantNew[i] {
			t.Fatalf("post-swap request %d: version %d pick %d, want version 2 pick %d", i, version, pick, wantNew[i])
		}
	}
	admin.Close()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRejectedSwapKeepsServing feeds the daemon unloadable weights: the
// swap is refused with a request-level error, the version does not move,
// and decisions keep coming from the old model (contract rule 3).
func TestRejectedSwapKeepsServing(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(31))
	req := randomRequest(rng, sys)
	want := offlinePicks(t, testAgent(sys, 9), sys, []Request{req})[0]

	srv, err := NewServer(testAgent(sys, 9), sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Swap([]byte("these are not weights"))
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("garbage swap returned %v, want a request-level error", err)
	}
	pick, version, err := c.Decide(&req)
	if err != nil {
		t.Fatalf("decide after refused swap: %v", err)
	}
	if version != 1 || pick != want {
		t.Fatalf("after refused swap: version %d pick %d, want version 1 pick %d", version, pick, want)
	}
}

// TestRequestErrorKeepsConnection sends semantically invalid requests —
// overcommitted cluster state, empty queue, wrong geometry — and expects
// request-level errors with the connection still answering (contract rule
// 4).
func TestRequestErrorKeepsConnection(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(37))
	good := randomRequest(rng, sys)
	want := offlinePicks(t, testAgent(sys, 11), sys, []Request{good})[0]

	srv, err := NewServer(testAgent(sys, 11), sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := []Request{
		{Now: 1, Queue: nil},
		{Now: 1, Queue: []Job{{Demand: []int{999, 999}, Walltime: 60}},
			Running: []Alloc{{JobID: 1, Demand: []int{999, 999}, Start: 0, EstEnd: 100}}},
		{Now: 1, Queue: []Job{{Demand: []int{1}, Walltime: 60}}},
	}
	for i := range bad {
		_, _, err := c.Decide(&bad[i])
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Fatalf("bad request %d returned %v, want a request-level error", i, err)
		}
	}
	pick, _, err := c.Decide(&good)
	if err != nil {
		t.Fatalf("good request after rejections: %v", err)
	}
	if pick != want {
		t.Fatalf("good request served %d, offline Pick chose %d", pick, want)
	}
}

// TestHandshakeRejectsProtocolMismatch covers both directions of contract
// rule 5: the daemon names a mismatched client's version, and the client
// names a mismatched daemon's version.
func TestHandshakeRejectsProtocolMismatch(t *testing.T) {
	sys := testSystem()
	srv, err := NewServer(testAgent(sys, 13), sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	// Daemon side: a hello from the future is refused, naming both versions.
	rwc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rwc.Close()
	if err := writeMessage(rwc, &message{Type: msgHello, Proto: ProtocolVersion + 7}); err != nil {
		t.Fatal(err)
	}
	welcome, err := readMessage(rwc)
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Err == "" {
		t.Fatal("daemon accepted a mismatched protocol")
	}
	for _, fragment := range []string{"protocol 8", "server 1"} {
		if !strings.Contains(welcome.Err, fragment) {
			t.Fatalf("rejection %q does not contain %q", welcome.Err, fragment)
		}
	}

	// Client side: a welcome from the future is refused, naming both
	// versions. A goroutine plays the time-traveling daemon.
	cliEnd, srvEnd := net.Pipe()
	defer cliEnd.Close()
	defer srvEnd.Close()
	go func() {
		if _, err := readMessage(srvEnd); err != nil {
			return
		}
		writeMessage(srvEnd, &message{Type: msgWelcome, Proto: ProtocolVersion + 7})
	}()
	_, err = NewClient(cliEnd)
	if err == nil {
		t.Fatal("client accepted a mismatched protocol")
	}
	for _, fragment := range []string{"protocol 8", "client 1"} {
		if !strings.Contains(err.Error(), fragment) {
			t.Fatalf("client rejection %q does not contain %q", err, fragment)
		}
	}
}

// TestShutdownDrains pins contract rule 6's observable half: a served
// request completes, Shutdown closes the connection, and the daemon
// refuses new connections afterwards.
func TestShutdownDrains(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(41))
	req := randomRequest(rng, sys)

	srv, err := NewServer(testAgent(sys, 15), sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decide(&req); err != nil {
		t.Fatalf("pre-shutdown decide: %v", err)
	}
	srv.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Shutdown, want nil", err)
	}
	if _, _, err := c.Decide(&req); err == nil {
		t.Fatal("decide succeeded on a drained daemon")
	}
	c.Close()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded on a drained daemon")
	}
}
