package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Config tunes the daemon's admission batching.
type Config struct {
	// MaxBatch caps how many concurrent requests coalesce into one batched
	// forward pass (default 16).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is dispatched anyway (default 200µs). Zero
	// or negative disables waiting: a batch takes whatever is already
	// queued and dispatches immediately.
	MaxWait time.Duration
	// Logf, when set, receives connection-level events (accepts, protocol
	// rejections, swaps). The default is silence.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the daemon's serve_* instruments.
	// Telemetry is observe-only: decisions are byte-identical with and
	// without it (doc.go, rule 7).
	Metrics *telemetry.Registry
	// Journal, when set, receives model lifecycle events (swaps and swap
	// failures) as JSONL.
	Journal *telemetry.Journal
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 16
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// serveMetrics caches the daemon's instruments at wire-up time so record
// paths never touch the registry. With a nil registry the instruments are
// live orphans and `timed` is false, skipping the clock reads around the
// forward pass — either way the decision path computes identical picks.
type serveMetrics struct {
	timed           bool
	decisions       *telemetry.Counter
	batches         *telemetry.Counter
	rejected        *telemetry.Counter
	swaps           *telemetry.Counter
	swapFailures    *telemetry.Counter
	batchSize       *telemetry.Histogram
	batchWait       *telemetry.Histogram
	decisionLatency *telemetry.Histogram
	modelVersion    *telemetry.Gauge
	connsActive     *telemetry.Gauge
}

func newServeMetrics(reg *telemetry.Registry) serveMetrics {
	return serveMetrics{
		timed:           reg != nil,
		decisions:       reg.Counter("serve_decisions_total"),
		batches:         reg.Counter("serve_batches_total"),
		rejected:        reg.Counter("serve_requests_rejected_total"),
		swaps:           reg.Counter("serve_swaps_total"),
		swapFailures:    reg.Counter("serve_swap_failures_total"),
		batchSize:       reg.Histogram("serve_batch_size"),
		batchWait:       reg.Histogram("serve_batch_wait_ns"),
		decisionLatency: reg.Histogram("serve_decision_latency_ns"),
		modelVersion:    reg.Gauge("serve_model_version"),
		connsActive:     reg.Gauge("serve_conns_active"),
	}
}

// Server is the decision daemon: it owns a served model and answers
// decision requests from any number of client connections, coalescing
// concurrent requests into batched forward passes. See doc.go for the
// delivery contract.
type Server struct {
	cfg    Config
	eng    *engine
	sys    cluster.Config
	window int
	m      serveMetrics

	admit chan *pending

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	inflight sync.WaitGroup // admitted, unanswered decision requests

	batcherDone chan struct{}
	connWG      sync.WaitGroup
}

// pending is one admitted decision request parked in the batcher's queue.
type pending struct {
	c   *conn
	id  uint64
	ctx *sched.PickContext
}

// conn is one client connection; the write mutex serializes decision
// replies (written by the batcher) with swap acks and rejections (written
// by the connection's reader).
type conn struct {
	rwc io.ReadWriteCloser
	wmu sync.Mutex
}

func (c *conn) send(m *message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeMessage(c.rwc, m)
}

// NewServer builds a daemon serving the agent's decisions for the given
// system. The agent is put in inference mode (Train=false) and must not be
// used by the caller afterwards except through Swap. The system's
// capacities must match the encoding the agent was built with.
func NewServer(agent *core.MRSch, sys cluster.Config, cfg Config) (*Server, error) {
	if len(sys.Capacities) != agent.Enc.Resources() {
		return nil, fmt.Errorf("serve: system has %d resources, the served model encodes %d", len(sys.Capacities), agent.Enc.Resources())
	}
	for r, units := range agent.Enc.Units {
		if sys.Capacities[r] != units {
			return nil, fmt.Errorf("serve: resource %q has %d units, the served model encodes %d", sys.Resources[r], sys.Capacities[r], units)
		}
	}
	eng, err := newEngine(agent)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg.withDefaults(),
		eng:         eng,
		sys:         sys,
		window:      agent.Enc.Window,
		m:           newServeMetrics(cfg.Metrics),
		admit:       make(chan *pending, 256),
		conns:       make(map[*conn]struct{}),
		batcherDone: make(chan struct{}),
	}
	s.m.modelVersion.Set(float64(eng.modelVersion()))
	go s.batcher()
	return s, nil
}

// ModelVersion reports the currently served model version (1 at startup,
// incremented by each successful swap).
func (s *Server) ModelVersion() uint64 { return s.eng.modelVersion() }

// Swap atomically replaces the served weights with those read from r
// (nn.SaveWeights format) and returns the new model version. On error the
// previous version keeps serving and the returned version is unchanged.
// In-flight requests finish on whichever version their batch started with.
func (s *Server) Swap(r io.Reader) (uint64, error) {
	v, err := s.eng.swap(r)
	if err == nil {
		s.cfg.Logf("serve: model swapped, now serving version %d", v)
		s.m.swaps.Inc()
		s.m.modelVersion.Set(float64(v))
		s.cfg.Journal.Event("model_swap", "version", v)
	} else {
		s.m.swapFailures.Inc()
		s.cfg.Journal.Event("model_swap_failed", "serving_version", v, "error", err.Error())
	}
	return v, err
}

// Serve accepts connections on ln until Shutdown, answering decision
// requests. It returns after Shutdown completes (nil) or on a listener
// error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("serve: server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		rwc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		c := &conn{rwc: rwc}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			rwc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Shutdown drains the daemon gracefully: stop accepting, answer every
// admitted request, then close connections. Safe to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.connWG.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	// draining is set, so no request can be admitted anymore: once the
	// in-flight count drains, the admission queue is empty for good.
	s.inflight.Wait()
	close(s.admit)
	<-s.batcherDone

	s.mu.Lock()
	for c := range s.conns {
		c.rwc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

// serveConn runs one connection: handshake, then a read loop dispatching
// decide and swap frames until the peer hangs up or corrupts the stream.
func (s *Server) serveConn(c *conn) {
	s.m.connsActive.Add(1)
	defer s.m.connsActive.Add(-1)
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.rwc.Close()
	}()

	hello, err := readMessage(c.rwc)
	if err != nil || hello.Type != msgHello {
		s.cfg.Logf("serve: dropping connection without a valid hello: %v", err)
		return
	}
	if hello.Proto != ProtocolVersion {
		c.send(&message{
			Type:  msgWelcome,
			Proto: ProtocolVersion,
			Err:   fmt.Sprintf("serve: client speaks protocol %d, server %d", hello.Proto, ProtocolVersion),
		})
		s.cfg.Logf("serve: rejected client speaking protocol %d", hello.Proto)
		return
	}
	welcome := &message{
		Type:         msgWelcome,
		Proto:        ProtocolVersion,
		ModelVersion: s.eng.modelVersion(),
		Window:       s.window,
		Resources:    s.sys.Resources,
		Capacities:   s.sys.Capacities,
	}
	if err := c.send(welcome); err != nil {
		return
	}

	for {
		m, err := readMessage(c.rwc)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logf("serve: connection read: %v", err)
			}
			return
		}
		switch m.Type {
		case msgDecide:
			s.handleDecide(c, m)
		case msgSwap:
			v, err := s.Swap(bytes.NewReader(m.Weights))
			ack := &message{Type: msgSwapped, ID: m.ID, ModelVersion: v}
			if err != nil {
				ack.Err = err.Error()
			}
			if err := c.send(ack); err != nil {
				return
			}
		default:
			s.cfg.Logf("serve: dropping connection after unexpected %s frame", m.Type)
			return
		}
	}
}

// handleDecide validates and admits one decision request, or answers it
// with a request-level error leaving the connection intact.
func (s *Server) handleDecide(c *conn, m *message) {
	reject := func(err error) {
		s.m.rejected.Inc()
		c.send(&message{Type: msgDecision, ID: m.ID, Pick: -1, Err: err.Error()})
	}
	ctx, err := buildContext(s.sys, s.window, &m.Req)
	if err != nil {
		reject(err)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		reject(fmt.Errorf("serve: server is draining"))
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	s.admit <- &pending{c: c, id: m.ID, ctx: ctx}
}

// batcher is the admission loop: block for the first pending request, then
// coalesce whatever arrives within MaxWait (up to MaxBatch) into one
// batched forward pass.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	var (
		batch []*pending
		ctxs  []*sched.PickContext
		picks []int
	)
	for first := range s.admit {
		// Clock reads happen only here, at observation boundaries, and only
		// when telemetry is wired: they never influence batching or picks.
		var tAdmit time.Time
		if s.m.timed {
			tAdmit = time.Now()
		}
		batch = append(batch[:0], first)
		if s.cfg.MaxWait > 0 {
			timer := time.NewTimer(s.cfg.MaxWait)
		wait:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case p, ok := <-s.admit:
					if !ok {
						break wait
					}
					batch = append(batch, p)
				case <-timer.C:
					break wait
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case p, ok := <-s.admit:
					if !ok {
						break drain
					}
					batch = append(batch, p)
				default:
					break drain
				}
			}
		}

		ctxs = ctxs[:0]
		for _, p := range batch {
			ctxs = append(ctxs, p.ctx)
		}
		var tDecide time.Time
		if s.m.timed {
			tDecide = time.Now()
			s.m.batchWait.RecordDuration(tDecide.Sub(tAdmit))
		}
		var version uint64
		picks, version = s.eng.decide(ctxs, picks)
		if s.m.timed {
			s.m.decisionLatency.RecordDuration(time.Since(tDecide))
		}
		s.m.batches.Inc()
		s.m.batchSize.Record(int64(len(batch)))
		s.m.decisions.Add(uint64(len(batch)))
		for i, p := range batch {
			p.c.send(&message{Type: msgDecision, ID: p.id, Pick: picks[i], ModelVersion: version})
			s.inflight.Done()
		}
	}
}
