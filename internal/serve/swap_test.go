package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sched"
)

// TestConcurrentDecideAndSwap is the hot-swap race suite: N reader
// goroutines loop batched decides while the main goroutine publishes
// alternating weight sets. Run under -race in CI, it proves the engine's
// lock discipline (contract rule 3); its assertions prove version
// atomicity — every batch's decisions match the exact model its reported
// version names, even mid-publish.
func TestConcurrentDecideAndSwap(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(43))
	const total = 12
	reqs := make([]Request, total)
	ctxs := make([]*sched.PickContext, total)
	for i := range reqs {
		reqs[i] = randomRequest(rng, sys)
		ctx, err := buildContext(sys, 6, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		ctxs[i] = ctx
	}

	// Swaps alternate between two weight sets, so version v serves seed 17
	// when odd and seed 18 when even — giving every reader an exact
	// reference for any version it observes.
	wantOdd := offlinePicks(t, testAgent(sys, 17), sys, reqs)
	wantEven := offlinePicks(t, testAgent(sys, 18), sys, reqs)
	var weightsOdd, weightsEven bytes.Buffer
	if err := testAgent(sys, 17).Save(&weightsOdd); err != nil {
		t.Fatal(err)
	}
	if err := testAgent(sys, 18).Save(&weightsEven); err != nil {
		t.Fatal(err)
	}

	eng, err := newEngine(testAgent(sys, 17))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	stop := make(chan struct{})
	for k := 0; k < readers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var dst []int
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := (k + round) % total
				hi := lo + 1 + (round % 4)
				if hi > total {
					hi = total
				}
				var version uint64
				dst, version = eng.decide(ctxs[lo:hi], dst)
				want := wantOdd
				if version%2 == 0 {
					want = wantEven
				}
				for i := range dst {
					if dst[i] != want[lo+i] {
						errs <- fmt.Errorf("reader %d: request %d at version %d served %d, that version's model chooses %d",
							k, lo+i, version, dst[i], want[lo+i])
						return
					}
				}
			}
		}(k)
	}

	const swaps = 25
	for n := 0; n < swaps; n++ {
		weights := weightsEven.Bytes() // versions 2, 4, ... serve seed 18
		if n%2 == 1 {
			weights = weightsOdd.Bytes()
		}
		if _, err := eng.swap(bytes.NewReader(weights)); err != nil {
			t.Fatalf("swap %d: %v", n, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := eng.modelVersion(); v != swaps+1 {
		t.Fatalf("after %d swaps the engine serves version %d, want %d", swaps, v, swaps+1)
	}
}

// TestFailedSwapLeavesReadersUntouched races readers against repeated
// garbage swaps: every load fails, nothing is ever published, and every
// decision keeps coming from version 1's model.
func TestFailedSwapLeavesReadersUntouched(t *testing.T) {
	sys := testSystem()
	rng := rand.New(rand.NewSource(47))
	const total = 8
	reqs := make([]Request, total)
	ctxs := make([]*sched.PickContext, total)
	for i := range reqs {
		reqs[i] = randomRequest(rng, sys)
		ctx, err := buildContext(sys, 6, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		ctxs[i] = ctx
	}
	want := offlinePicks(t, testAgent(sys, 19), sys, reqs)

	eng, err := newEngine(testAgent(sys, 19))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	stop := make(chan struct{})
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var dst []int
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				var version uint64
				dst, version = eng.decide(ctxs, dst)
				if version != 1 {
					errs <- fmt.Errorf("reader %d: version moved to %d on failed swaps", k, version)
					return
				}
				for i := range dst {
					if dst[i] != want[i] {
						errs <- fmt.Errorf("reader %d: request %d served %d, want %d", k, i, dst[i], want[i])
						return
					}
				}
			}
		}(k)
	}
	for n := 0; n < 20; n++ {
		if _, err := eng.swap(bytes.NewReader([]byte("junk weights"))); err == nil {
			t.Fatal("garbage swap succeeded")
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
