package sim

import (
	"math"
	"testing"

	"repro/internal/job"
)

// almostEq compares accounting integrals with a tight tolerance.
func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// ResourceSeconds and Utilization must report the integral over the
// processed prefix of the simulation only: at a SetMaxEvents cutoff with
// jobs still running, a running job contributes exactly the usage accrued up
// to the last processed event time — nothing of its remaining runtime.
// This pins the documented cutoff semantics.
func TestResourceSecondsAtMaxEventsCutoff(t *testing.T) {
	s := New(cfg2(), greedyFCFS())
	jobs := []*job.Job{
		mk(1, 0, 1000, 4, 2),  // starts at t=0, would finish at t=1000
		mk(2, 50, 1000, 2, 1), // starts at t=50, would finish at t=1050
	}
	if err := s.Load(jobs); err != nil {
		t.Fatal(err)
	}
	// Rounds: t=0 (submit+start job 1), t=50 (submit+start job 2), t=1000
	// (job 1 finishes) — then the bound of 2 trips (the check runs after a
	// round completes), leaving job 2 running with 50 s of runtime left.
	s.SetMaxEvents(2)
	err := s.Run()
	if err == nil {
		t.Fatal("expected the maxEvents bound to trip")
	}
	if jobs[0].State != job.Finished || jobs[1].State != job.Running {
		t.Fatalf("states = %v/%v, want finished/running", jobs[0].State, jobs[1].State)
	}

	start, end := s.ElapsedWindow()
	if start != 0 || end != 1000 {
		t.Fatalf("window = [%v, %v], want [0, 1000]", start, end)
	}
	elapsed := end - start

	// Job 1 used 4 nodes over its full [0, 1000] run; job 2 used 2 nodes
	// over [50, 1000] only — the 50 s it runs past the cutoff clock
	// contribute nothing.
	wantNodeSec := 4*elapsed + 2*(elapsed-50)
	if got := s.ResourceSeconds(0); !almostEq(got, wantNodeSec) {
		t.Fatalf("node ResourceSeconds = %v, want %v (window end %v)", got, wantNodeSec, end)
	}
	wantBBSec := 2*elapsed + 1*(elapsed-50)
	if got := s.ResourceSeconds(1); !almostEq(got, wantBBSec) {
		t.Fatalf("bb ResourceSeconds = %v, want %v", got, wantBBSec)
	}

	// Utilization is the same integral over capacity x truncated window.
	if got, want := s.Utilization(0), wantNodeSec/(10*elapsed); !almostEq(got, want) {
		t.Fatalf("node utilization = %v, want %v", got, want)
	}
	if got, want := s.Utilization(1), wantBBSec/(8*elapsed); !almostEq(got, want) {
		t.Fatalf("bb utilization = %v, want %v", got, want)
	}
}

// Mid-run queries driven by Step directly obey the same prefix semantics.
func TestAccountingMidRunPrefix(t *testing.T) {
	s := New(cfg2(), greedyFCFS())
	if err := s.Load([]*job.Job{mk(1, 0, 100, 5, 0), mk(2, 20, 100, 5, 0)}); err != nil {
		t.Fatal(err)
	}
	step := func() {
		t.Helper()
		more, err := s.Step()
		if err != nil || !more {
			t.Fatalf("step: more=%v err=%v", more, err)
		}
	}
	step() // t=0: job 1 starts
	if got := s.ResourceSeconds(0); got != 0 {
		t.Fatalf("ResourceSeconds after first event = %v, want 0 (no time elapsed)", got)
	}
	step() // t=20: job 2 arrives and starts; job 1 accrued 5 nodes x 20 s
	if got := s.ResourceSeconds(0); !almostEq(got, 100) {
		t.Fatalf("ResourceSeconds at t=20 = %v, want 100", got)
	}
	if got := s.Utilization(0); !almostEq(got, 100.0/(10*20)) {
		t.Fatalf("mid-run utilization = %v", got)
	}
}
