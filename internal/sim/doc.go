// Package sim is the reproduction of CQSim: a trace-based, event-driven HPC
// job-scheduling simulator (§IV of the paper). It imports jobs from a trace,
// advances a simulation clock on job-arrival and job-completion events, and
// on every queue/system change hands control to a scheduling Policy, exactly
// as CQSim sends scheduling requests to the MRSch agent.
//
// # Determinism
//
// The simulator is fully deterministic: it owns no randomness, reads no wall
// clock, and iterates no maps on any path that affects results. Events at
// equal timestamps are processed in push order, and the waiting queue
// preserves arrival order. An episode's outcome is therefore a pure function
// of the loaded jobs and the policy's decisions — the property the parallel
// episode-collection harness builds on; see the internal/rollout package
// documentation for the repo-wide determinism and seeding contract.
//
// # Accounting at cutoffs
//
// ResourceSeconds and Utilization integrate usage over the processed prefix
// of the event stream, [first event, current clock]. Mid-run — or when
// SetMaxEvents truncates an episode with jobs still running — a running job
// contributes only the usage accrued up to the last processed event; its
// remaining runtime is not forecast into the metrics. The §IV-B evaluation
// metrics (internal/metrics) assume a normally-completed run.
package sim
