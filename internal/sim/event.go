package sim

import "container/heap"

// eventKind distinguishes the two triggers the paper names (§IV): a new job
// entering the queue and a running job leaving the system.
type eventKind int

const (
	evSubmit eventKind = iota
	evFinish
)

type event struct {
	time  float64
	kind  eventKind
	jobID int
	seq   int // tie-breaker preserving insertion order at equal times
}

// eventQueue is a min-heap on (time, kind, seq): finishes apply before
// submits at the same instant so freed resources are visible to the arriving
// job's scheduling round.
type eventQueue struct {
	items []event
	next  int
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind == evFinish
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

func (q *eventQueue) push(t float64, k eventKind, jobID int) {
	heap.Push(q, event{time: t, kind: k, jobID: jobID, seq: q.next})
	q.next++
}

func (q *eventQueue) pop() event { return heap.Pop(q).(event) }

func (q *eventQueue) peek() (event, bool) {
	if len(q.items) == 0 {
		return event{}, false
	}
	return q.items[0], true
}
