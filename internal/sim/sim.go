package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/job"
)

// Policy is a scheduling strategy. OnSchedule is invoked by the simulator
// whenever the waiting queue or the system state changes (job submitted or
// finished); the policy examines the simulator and starts jobs via StartJob.
type Policy interface {
	OnSchedule(s *Simulator)
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(s *Simulator)

// OnSchedule implements Policy.
func (f PolicyFunc) OnSchedule(s *Simulator) { f(s) }

// Simulator replays a job trace against a cluster under a Policy.
type Simulator struct {
	clk      float64
	clock0   float64 // time of the first event (metrics window start)
	started  bool
	cl       *cluster.Cluster
	events   eventQueue
	queue    []*job.Job // waiting jobs in arrival order
	byID     map[int]*job.Job
	finished []*job.Job
	policy   Policy

	// Reserved is the job currently holding an advance reservation, if any.
	// It is set by the scheduling framework (internal/sched) and cleared
	// when the job starts; the simulator itself only reports it.
	Reserved *job.Job

	acct accounting

	// Decisions counts policy invocations; DecisionHook, when non-nil, runs
	// after every scheduling round (used to sample r_BB for Figures 8/9 and
	// utilization traces without touching scheduler internals).
	Decisions    int
	DecisionHook func(s *Simulator)

	maxEvents int
}

// New builds a simulator over a fresh cluster with the given policy.
func New(cfg cluster.Config, p Policy) *Simulator {
	return &Simulator{
		cl:        cluster.New(cfg),
		byID:      make(map[int]*job.Job),
		policy:    p,
		maxEvents: 0,
	}
}

// Cluster exposes the simulated system.
func (s *Simulator) Cluster() *cluster.Cluster { return s.cl }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.clk }

// Queue returns the waiting jobs in arrival order. Callers must not mutate
// the returned slice.
func (s *Simulator) Queue() []*job.Job { return s.queue }

// Finished returns all completed jobs.
func (s *Simulator) Finished() []*job.Job { return s.finished }

// Load validates and registers jobs, pushing their submit events. It must be
// called before Run; jobs must have IDs unique within the simulation.
func (s *Simulator) Load(jobs []*job.Job) error {
	caps := s.cl.Config().Capacities
	for _, j := range jobs {
		if err := j.Validate(caps); err != nil {
			return fmt.Errorf("sim: load: %w", err)
		}
		if _, dup := s.byID[j.ID]; dup {
			return fmt.Errorf("sim: load: duplicate job ID %d", j.ID)
		}
		j.State = job.Queued
		s.byID[j.ID] = j
		s.events.push(j.Submit, evSubmit, j.ID)
	}
	return nil
}

// StartJob begins executing a waiting job now. It allocates resources,
// schedules the completion event, and removes the job from the queue.
// Policies must only call it for jobs that currently fit.
func (s *Simulator) StartJob(j *job.Job) error {
	if j.State != job.Queued {
		return fmt.Errorf("sim: start job %d in state %v", j.ID, j.State)
	}
	if err := s.cl.Allocate(j.ID, j.Demand, s.clk, s.clk+j.Walltime); err != nil {
		return fmt.Errorf("sim: start: %w", err)
	}
	j.State = job.Running
	j.Start = s.clk
	s.events.push(s.clk+j.Runtime, evFinish, j.ID)
	s.removeFromQueue(j.ID)
	if s.Reserved == j {
		s.Reserved = nil
	}
	return nil
}

func (s *Simulator) removeFromQueue(id int) {
	for i, q := range s.queue {
		if q.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Step processes all events at the next event time, then invokes the policy
// once. It returns false when no events remain.
func (s *Simulator) Step() (bool, error) {
	head, ok := s.events.peek()
	if !ok {
		return false, nil
	}
	if !s.started {
		s.started = true
		s.clock0 = head.time
		s.acct.init(s.cl, head.time)
	}
	if head.time < s.clk {
		return false, fmt.Errorf("sim: time went backwards: %v -> %v", s.clk, head.time)
	}
	s.acct.advance(s.cl, head.time)
	s.clk = head.time
	for {
		e, ok := s.events.peek()
		if !ok || e.time != s.clk {
			break
		}
		s.events.pop()
		j := s.byID[e.jobID]
		switch e.kind {
		case evSubmit:
			s.queue = append(s.queue, j)
		case evFinish:
			if err := s.cl.Release(j.ID); err != nil {
				return false, fmt.Errorf("sim: finish: %w", err)
			}
			j.State = job.Finished
			j.End = s.clk
			s.finished = append(s.finished, j)
		}
	}
	s.policy.OnSchedule(s)
	s.Decisions++
	if s.DecisionHook != nil {
		s.DecisionHook(s)
	}
	return true, nil
}

// Run drives the simulation to completion. It errors if jobs remain queued
// after all events drain (a policy that starves jobs forever).
func (s *Simulator) Run() error {
	steps := 0
	for {
		more, err := s.Step()
		if err != nil {
			return err
		}
		if !more {
			break
		}
		steps++
		if s.maxEvents > 0 && steps > s.maxEvents {
			return fmt.Errorf("sim: exceeded %d steps; likely livelock", s.maxEvents)
		}
	}
	if len(s.queue) > 0 {
		return fmt.Errorf("sim: %d jobs never started (first: job %d); policy starves", len(s.queue), s.queue[0].ID)
	}
	return nil
}

// SetMaxEvents bounds Run to n scheduling rounds (0 = unlimited). When the
// bound trips, Run returns an error with jobs potentially still queued or
// running; the accounting queries below remain well-defined in that state.
func (s *Simulator) SetMaxEvents(n int) { s.maxEvents = n }

// ElapsedWindow returns the metrics window [first event, current clock].
func (s *Simulator) ElapsedWindow() (start, end float64) { return s.clock0, s.clk }

// ResourceSeconds returns the integral of used units over time for resource
// r (the numerator of the utilization metrics in §IV-B), accumulated over
// the window [first event, current clock].
//
// The integral covers exactly the events processed so far. If the
// simulation is mid-run — or was cut short by the SetMaxEvents bound with
// jobs still running — a running job contributes only the usage accrued up
// to the last processed event time: nothing of its remaining runtime is
// counted, and nothing between the current clock and its eventual
// completion. (TestResourceSecondsAtMaxEventsCutoff pins this behavior.)
func (s *Simulator) ResourceSeconds(r int) float64 { return s.acct.usedSeconds[r] }

// Utilization returns ResourceSeconds(r) / (capacity * elapsed) for
// resource r, where elapsed is the ElapsedWindow span so far.
//
// Like ResourceSeconds, this is exact for the processed prefix of the
// simulation: at a SetMaxEvents cutoff the denominator ends at the last
// processed event, so the ratio reflects utilization over the truncated
// window — not a forecast of what completing the still-running jobs would
// yield. The §IV-B metrics in internal/metrics assume a run that completed
// normally; utilization of a truncated run is reported for the truncated
// window only.
func (s *Simulator) Utilization(r int) float64 {
	elapsed := s.clk - s.clock0
	if elapsed <= 0 {
		return 0
	}
	return s.acct.usedSeconds[r] / (float64(s.cl.Capacity(r)) * elapsed)
}

// accounting integrates per-resource usage over time.
type accounting struct {
	lastTime    float64
	usedSeconds []float64
}

func (a *accounting) init(cl *cluster.Cluster, t0 float64) {
	a.lastTime = t0
	a.usedSeconds = make([]float64, cl.NumResources())
}

func (a *accounting) advance(cl *cluster.Cluster, t float64) {
	if a.usedSeconds == nil {
		return
	}
	dt := t - a.lastTime
	if dt <= 0 {
		return
	}
	for r := range a.usedSeconds {
		a.usedSeconds[r] += float64(cl.Used(r)) * dt
	}
	a.lastTime = t
}
